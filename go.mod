module memqlat

go 1.22
