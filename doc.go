// Package memqlat is a Go reproduction of "Modeling and Analyzing
// Latency in the Memcached system" (Cheng, Ren, Jiang, Zhang —
// ICDCS 2017): an analytical latency model for Memcached (fork-join
// with unbalanced load, GI^X/M/1 cache servers, an M/M/1 miss stage)
// together with every substrate its evaluation needs — a working
// memcached server/client/protocol stack, a simulated database, a
// mutilate-like load generator, and a discrete-event simulator — plus a
// harness that regenerates every table and figure of the paper.
//
// Packages (under internal/):
//
//   - core:        the paper's model — Theorem 1, Propositions 1–2,
//     cliff analysis (Table 4), asymptotic laws
//   - queueing:    GI^X/M/1 and M/M/1 theory (δ root, quantiles)
//   - dist:        distributions incl. Generalized Pareto (eq. 24)
//   - sim:         the virtual-time measurement testbed
//   - cache, protocol, server, client, backend, loadgen: the live stack
//   - workload:    the paper's §5.1 Facebook configuration and sweeps
//   - experiments: one runner per paper table/figure
//
// Entry points: cmd/repro (regenerate all results), cmd/latency-model
// (Theorem 1 calculator), cmd/memcached-server and cmd/mcbench (live
// stack), and the runnable walkthroughs under examples/.
package memqlat
