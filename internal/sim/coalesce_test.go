package sim

import (
	"math"
	"testing"

	"memqlat/internal/core"
	"memqlat/internal/telemetry"
)

// hotMissModel is a small cluster with a heavy miss ratio so the
// coalesced draw sees plenty of overlapping fetch windows.
func hotMissModel() *core.Config {
	return &core.Config{
		N:              10,
		LoadRatios:     core.BalancedLoad(2),
		TotalKeyRate:   20000,
		Q:              0.1,
		Xi:             0.15,
		MuS:            80000,
		MissRatio:      0.3,
		MuD:            200,
		NetworkLatency: 20e-6,
	}
}

// TestCoalescedMissInvariants pins the coalesced draw's accounting:
// every miss is either a backend fetch or a delayed hit, a hot Zipf
// keyspace collapses most fetches, and the delayed hits land in the
// coalesce_wait stage while fetches keep miss_penalty.
func TestCoalescedMissInvariants(t *testing.T) {
	col := telemetry.NewCollector()
	res, err := SimulateRequests(RequestConfig{
		Model:     hotMissModel(),
		Requests:  8000,
		Seed:      7,
		Coalesce:  true,
		MissKeys:  50,
		MissZipfS: 1.2,
		Recorder:  col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BackendFetches+res.DelayedHits != res.MissCount {
		t.Fatalf("fetches(%d) + delayed(%d) != misses(%d)",
			res.BackendFetches, res.DelayedHits, res.MissCount)
	}
	if res.DelayedHits == 0 {
		t.Fatal("hot-key coalesced run produced no delayed hits")
	}
	if res.BackendFetches*2 > res.MissCount {
		t.Fatalf("fetches = %d of %d misses; hot keyspace should collapse most fetches",
			res.BackendFetches, res.MissCount)
	}
	b := col.Breakdown()
	if got := b[telemetry.StageCoalesceWait].Count; got != res.DelayedHits {
		t.Errorf("coalesce_wait count = %d, want %d delayed hits", got, res.DelayedHits)
	}
	if got := b[telemetry.StageMissPenalty].Count; got != res.BackendFetches {
		t.Errorf("miss_penalty count = %d, want %d fetches", got, res.BackendFetches)
	}
}

// TestNaiveMissUnchanged: with Coalesce off every miss fetches, no
// delayed hits appear, and the draw stays byte-identical to the
// pre-coalescing simulator (same seed, same TD histogram).
func TestNaiveMissUnchanged(t *testing.T) {
	run := func(coalesce bool) *RequestResult {
		res, err := SimulateRequests(RequestConfig{
			Model:    hotMissModel(),
			Requests: 4000,
			Seed:     7,
			Coalesce: coalesce,
			MissKeys: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	naive := run(false)
	if naive.BackendFetches != naive.MissCount || naive.DelayedHits != 0 {
		t.Fatalf("naive run: fetches=%d delayed=%d misses=%d, want every miss to fetch",
			naive.BackendFetches, naive.DelayedHits, naive.MissCount)
	}
	again := run(false)
	if naive.Total.Mean() != again.Total.Mean() || naive.MissCount != again.MissCount {
		t.Fatal("naive run is not deterministic under the seed")
	}
}

// TestCoalescedTDDistributionMatchesNaive: by memorylessness the
// residual of an Exp(µ_D) window is Exp(µ_D), so coalescing must not
// move the per-miss latency distribution — that is what keeps the
// cross-plane consistency band valid with coalescing on.
func TestCoalescedTDDistributionMatchesNaive(t *testing.T) {
	run := func(coalesce bool) *RequestResult {
		res, err := SimulateRequests(RequestConfig{
			Model:     hotMissModel(),
			Requests:  20000,
			Seed:      11,
			Coalesce:  coalesce,
			MissKeys:  50,
			MissZipfS: 1.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	naive, coal := run(false), run(true)
	want := 1.0 / hotMissModel().MuD
	for label, res := range map[string]*RequestResult{"naive": naive, "coalesced": coal} {
		got := res.DBLat.Mean()
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s per-miss latency mean = %v, want ~%v (Exp(µ_D))", label, got, want)
		}
	}
	// Correlation, not the marginal, is what coalescing changes: misses
	// of one request that share a window all join at the SAME fetch, so
	// the per-request max over misses shrinks versus max-of-iid. Totals
	// may therefore only improve (bounded here at ~15% for this very
	// hot config), never regress.
	if coal.Total.Mean() > naive.Total.Mean()*1.01 {
		t.Errorf("coalesced total mean %v exceeds naive %v; coalescing must not add latency",
			coal.Total.Mean(), naive.Total.Mean())
	}
	if coal.Total.Mean() < naive.Total.Mean()*0.85 {
		t.Errorf("coalesced total mean %v is implausibly far below naive %v",
			coal.Total.Mean(), naive.Total.Mean())
	}
}
