package sim

import (
	"fmt"
	"math"

	"memqlat/internal/core"
	"memqlat/internal/dist"
	"memqlat/internal/fault"
	"memqlat/internal/otrace"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
	"memqlat/internal/tenant"
)

// RequestConfig parameterizes the fork-join composition stage: it takes
// a model configuration and measurement sizes and produces end-user
// request latencies the way the paper's testbed does (per-server key
// streams + statistical composition over each request's N keys).
type RequestConfig struct {
	// Model is the deployment/workload description.
	Model *core.Config
	// Requests is the number of end-user requests to synthesize.
	Requests int
	// KeysPerServer is the per-server key-stream sample size feeding the
	// composition (default 200_000).
	KeysPerServer int
	// ReadReplicas, when > 1, hedges every key across that many replicas
	// and keeps the fastest response (the redundancy extension; see
	// core.ExpectedTSPointRedundant). The duplicated traffic is charged
	// to the servers: each per-server stream runs at ReadReplicas times
	// the configured key rate.
	ReadReplicas int
	// FreeReplicas suppresses the load inflation of ReadReplicas — the
	// hypothetical "free replicas" bound.
	FreeReplicas bool
	// ProxyModel, when set, threads every key through an interposed
	// proxy tier simulated as one extra GI^X/M/1 stream receiving the
	// aggregate key rate (a single-server core.Config). Each request's
	// proxy contribution is the max of its N keys' proxy sojourns, added
	// in series to the fork-join total; per-key sojourns are recorded as
	// telemetry.StageProxyHop.
	ProxyModel *core.Config
	// Seed makes the run deterministic.
	Seed uint64
	// Recorder, when set, receives the per-stage decomposition: queue
	// wait and service from the per-server streams, miss penalty per
	// missed key, and fork-join overhead (max-over-N minus mean) per
	// composed request — plus, under faults, the resilience stages
	// (retry, hedge_wait, breaker_shed).
	Recorder telemetry.Recorder
	// Faults injects the seeded fault schedule into every per-server
	// key stream (and, for Database rules, the miss path). The empty
	// schedule is the healthy run.
	Faults fault.Schedule
	// Resilience enables the composition-stage recovery policies that
	// mirror the live client's: retries, hedged reads, circuit
	// breakers. The zero value replays failures to the caller raw.
	Resilience fault.Resilience
	// Tracer, when set, emits virtual-time spans for every composed
	// request: a sim/request root on the virtual request timeline with
	// sim/proxy, sim/memcached and sim/db stage children laid out in
	// series — the simulator's counterpart of the live plane's
	// wall-clock traces. Nil disables tracing.
	Tracer *otrace.Tracer
	// Coalesce gives every miss a key identity and single-flights the
	// backend fetch per key on the virtual timeline: a miss whose key
	// already has a fetch in flight rides it as a delayed hit, paying
	// only the residual wait (recorded as StageCoalesceWait) instead of
	// issuing its own fetch. Because the exponential miss latency is
	// memoryless, the residual is itself Exp(µ_D)-distributed, so the
	// per-miss TD distribution — and the cross-plane totals — match the
	// naive draw; only the backend fetch count drops. False keeps the
	// naive one-fetch-per-miss draw byte-identical to prior runs.
	Coalesce bool
	// MissKeys sizes the miss-key population the coalesced draw samples
	// from (default 2000, the live plane's loadgen keyspace). Ignored
	// without Coalesce.
	MissKeys int
	// MissZipfS skews miss-key popularity by a Zipf(s) law (0 =
	// uniform): hot keys overlap their fetch windows, which is what
	// makes coalescing collapse the herd. Ignored without Coalesce.
	MissZipfS float64
	// Extstore, when non-nil, interposes the SSD cache tier on the miss
	// path: each miss is absorbed by the disk tier with probability
	// DiskHitFraction (rng stream 108, drawn only on tiered runs so
	// untiered runs keep their draw sequence byte-identical), paying a
	// disk read from the configured service-time family instead of the
	// Exp(µ_D) backend fetch. Disk hits are local reads, so they never
	// enter the coalescing windows or the Database fault path; they are
	// recorded as telemetry.StageDiskRead and counted in DiskHits.
	Extstore *ExtstoreSim
	// Tenants arms the multi-tenant QoS admission ahead of every key
	// draw: each request draws its tenant from the Share mix (rng
	// stream 107) and each of its N keys charges one op token to that
	// tenant's bucket at the request's virtual arrival time — the same
	// tenant.Admit the live proxy runs, on virtual time. A shed key
	// skips the proxy/server/miss draws entirely (shed-before-queue)
	// and is recorded as telemetry.StageTenantShed; a request whose
	// keys all shed is excluded from the latency sample (its caller
	// saw only error lines). Empty keeps every draw sequence
	// byte-identical to prior runs.
	Tenants []tenant.Spec
	// OfferedKeyRate is the pre-shedding aggregate key rate Λ driving
	// the virtual request clock when Tenants is set; Model.TotalKeyRate
	// should then carry the admitted Λ' the surviving streams are
	// priced at. Zero defaults to Model.TotalKeyRate.
	OfferedKeyRate float64
	// Observer, when set, watches the composition loop on its virtual
	// timeline: BeginRequest fires at each request's arrival instant
	// (before any draw), request-loop stage observations are teed to
	// its Observe, and RequestTotal reports each composed request's
	// end-to-end latency. Per-server stream stages (queue_wait,
	// service) are simulated up front outside the request timeline, so
	// they are not replayed through the observer. Nil adds no work and
	// draws nothing, keeping existing runs byte-identical — this is the
	// seam the SLO watchdog replays deterministically.
	Observer RequestObserver
}

// RequestObserver receives the composition loop's virtual-time events
// (see RequestConfig.Observer). slo.Watchdog implements it.
type RequestObserver interface {
	telemetry.Recorder
	// BeginRequest observes a request arriving at virtual time now.
	BeginRequest(now float64)
	// RequestTotal observes a composed request's end-to-end latency at
	// virtual time now. Requests whose keys all shed produce no sample.
	RequestTotal(now, total float64)
}

// ExtstoreSim parameterizes the simulated SSD tier.
type ExtstoreSim struct {
	// DiskHitFraction is β = P{disk hit | RAM miss}, typically the
	// mrc.TierSplit prediction the plane layer computes.
	DiskHitFraction float64
	// MuDisk is the disk read service rate (mean read 1/MuDisk).
	MuDisk float64
	// Dist selects the disk service-time family: "exp" (default) or
	// "lognormal" (mean preserved at 1/MuDisk).
	Dist string
	// Sigma is the lognormal shape parameter (default 0.5).
	Sigma float64
}

// RequestResult aggregates the measured latency decomposition, mirroring
// the paper's Table 3 columns.
type RequestResult struct {
	// Total is T(N): the end-user request latency.
	Total *stats.Histogram
	// TS is T_S(N): the max Memcached processing latency per request.
	TS *stats.Histogram
	// TD is T_D(N): the max database latency per request.
	TD *stats.Histogram
	// TN is T_N(N): the max network latency per request (constant under
	// the model).
	TN float64
	// Servers exposes the per-server key-latency samples (Fig. 4 uses
	// the heaviest server's quantiles).
	Servers []*ServerResult
	// DBLat records the per-miss penalty sample: backend fetches,
	// coalesced residual waits, and (on tiered runs) disk reads — the
	// full cost a RAM miss pays, whoever serves it.
	DBLat *stats.Histogram
	// TP is T_P(N): the max proxy-stage sojourn per request (nil when
	// the run had no proxy tier).
	TP *stats.Histogram
	// ProxyKeys is the per-key proxy sojourn sample (nil without a
	// proxy tier).
	ProxyKeys *stats.Histogram
	// MissCount is the total number of missed keys.
	MissCount int64
	// KeyCount is the total number of composed keys.
	KeyCount int64
	// Requests is the number of composed requests.
	Requests int64
	// RequestsWithMiss counts requests that suffered >= 1 miss.
	RequestsWithMiss int64
	// Replicas records the hedging degree the run used (>= 1).
	Replicas int
	// FailedKeys counts key reads that ended unanswered after the
	// resilience pipeline (injected faults the policies could not mask).
	FailedKeys int64
	// ShedKeys counts key reads fast-failed by an open circuit breaker
	// (a subset of FailedKeys).
	ShedKeys int64
	// DegradedRequests counts requests that completed with >= 1 failed
	// key — the degraded-mode fork-join outcome.
	DegradedRequests int64
	// BackendFetches counts misses that issued their own backend fetch.
	// Without coalescing or a disk tier every miss fetches, so this
	// equals MissCount.
	BackendFetches int64
	// DelayedHits counts misses that rode an already-in-flight fetch
	// for their key instead of fetching (coalesced runs only).
	// BackendFetches + DelayedHits + DiskHits == MissCount always.
	DelayedHits int64
	// DiskHits counts misses the simulated SSD tier absorbed (tiered
	// runs only; see RequestConfig.Extstore).
	DiskHits int64
	// Tenants carries the per-tenant QoS outcome in declaration order
	// (nil without tenant specs).
	Tenants []TenantSimResult
	// TenantShedKeys counts keys refused by tenant admission; shed
	// keys never enter KeyCount or any queue.
	TenantShedKeys int64
	// ShedRequests counts requests whose N keys were all shed — the
	// caller saw nothing but error lines, so they contribute no
	// latency sample.
	ShedRequests int64
}

// TenantSimResult is one tenant's simulated outcome: the final bucket
// and counter snapshot plus the latency histogram of its requests that
// had at least one admitted key.
type TenantSimResult struct {
	Snapshot tenant.Snapshot
	Latency  *stats.Histogram
}

// SimulateRequests runs the two-stage experiment: simulate each server's
// GI^X/M/1 key stream, then compose Requests fork-join requests whose N
// keys are assigned to servers multinomially by {p_j}, each key reading
// a latency sample from its server, missing with probability r into an
// exponential database stage, and joining at the max (paper §4.1).
func SimulateRequests(cfg RequestConfig) (*RequestResult, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("sim: nil model config")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("sim: requests=%d must be >= 1", cfg.Requests)
	}
	keysPerServer := cfg.KeysPerServer
	if keysPerServer == 0 {
		keysPerServer = 200000
	}
	replicas := cfg.ReadReplicas
	if replicas == 0 {
		replicas = 1
	}
	if replicas < 1 {
		return nil, fmt.Errorf("sim: read replicas %d must be >= 1", replicas)
	}
	m := cfg.Model

	var inj *fault.Injector
	if !cfg.Faults.Empty() {
		var err error
		inj, err = fault.NewInjector(cfg.Faults, m.M())
		if err != nil {
			return nil, err
		}
	}
	faultAware := inj != nil || cfg.Resilience.Enabled()
	if faultAware && replicas > 1 {
		return nil, fmt.Errorf("sim: ReadReplicas > 1 cannot combine with faults/resilience (hedging is the Resilience knob)")
	}

	// Stage 1: per-server key streams.
	servers := make([]*ServerResult, m.M())
	for j := 0; j < m.M(); j++ {
		if m.LoadRatios[j] == 0 {
			continue
		}
		lam := m.ServerKeyRate(j)
		if replicas > 1 && !cfg.FreeReplicas {
			lam *= float64(replicas)
		}
		arrival, err := serverArrival(m, lam)
		if err != nil {
			return nil, fmt.Errorf("server %d: %w", j, err)
		}
		res, err := SimulateServer(ServerConfig{
			Interarrival: arrival,
			Q:            m.Q,
			MuS:          m.MuS,
			Keys:         keysPerServer,
			Seed:         cfg.Seed + uint64(j)*1000003,
			Recorder:     cfg.Recorder,
			Fault:        inj,
			Server:       j,
		})
		if err != nil {
			return nil, fmt.Errorf("server %d: %w", j, err)
		}
		servers[j] = res
	}

	// Optional proxy stage: one more GI^X/M/1 stream at the aggregate
	// key rate. Every key passes the proxy exactly once — replicated
	// reads fan out on the proxy's upstream side, not its queue — so the
	// stream's rate is the configured Λ regardless of ReadReplicas.
	var proxySrv *ServerResult
	if cfg.ProxyModel != nil {
		pm := cfg.ProxyModel
		if err := pm.Validate(); err != nil {
			return nil, fmt.Errorf("sim: proxy model: %w", err)
		}
		arrival, err := serverArrival(pm, pm.TotalKeyRate)
		if err != nil {
			return nil, fmt.Errorf("sim: proxy stage: %w", err)
		}
		proxySrv, err = SimulateServer(ServerConfig{
			Interarrival: arrival,
			Q:            pm.Q,
			MuS:          pm.MuS,
			Keys:         keysPerServer,
			Seed:         cfg.Seed + 777000777,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: proxy stage: %w", err)
		}
	}

	// Stage 2: fork-join composition.
	assign, err := dist.NewWeighted(m.LoadRatios)
	if err != nil {
		return nil, err
	}
	out := &RequestResult{
		Total:    stats.NewHistogram(),
		TS:       stats.NewHistogram(),
		TD:       stats.NewHistogram(),
		DBLat:    stats.NewHistogram(),
		TN:       m.NetworkLatency,
		Servers:  servers,
		Replicas: replicas,
	}
	if proxySrv != nil {
		out.TP = stats.NewHistogram()
		out.ProxyKeys = proxySrv.Hist
	}
	var (
		rngAssign = dist.SubRand(cfg.Seed, 101)
		rngSample = dist.SubRand(cfg.Seed, 102)
		rngMiss   = dist.SubRand(cfg.Seed, 103)
		rngDB     = dist.SubRand(cfg.Seed, 104)
		rngProxy  = dist.SubRand(cfg.Seed, 105)
	)
	rec := telemetry.OrNop(cfg.Recorder)
	if cfg.Observer != nil {
		rec = telemetry.Tee(rec, cfg.Observer)
	}
	rs := newSimResilience(cfg.Resilience, m, servers)
	// Tenant QoS state: the limiter runs the same bucket code the live
	// proxy runs, on the virtual request clock. The tenant rng (stream
	// 107) is drawn only when tenants are declared, so untenanted runs
	// keep their draw sequence byte-identical.
	var (
		lim       *tenant.Limiter
		tenants   []*tenant.Tenant
		tenantMix *dist.Weighted
		rngTenant = dist.SubRand(cfg.Seed, 107)
		tenantLat []*stats.Histogram
	)
	if len(cfg.Tenants) > 0 {
		lim, err = tenant.New(cfg.Tenants)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		tenants = lim.Tenants()
		tenantMix, err = dist.NewWeighted(tenant.Shares(cfg.Tenants))
		if err != nil {
			return nil, fmt.Errorf("sim: tenant shares: %w", err)
		}
		tenantLat = make([]*stats.Histogram, len(cfg.Tenants))
		for i := range tenantLat {
			tenantLat[i] = stats.NewHistogram()
		}
	}
	// Coalescing state: per-key in-flight fetch windows on the virtual
	// timeline. The key rng (stream 106) is drawn only on coalesced
	// runs, so naive runs keep their draw sequence byte-identical.
	var (
		rngMissKey    = dist.SubRand(cfg.Seed, 106)
		missZipf      *dist.Zipf
		inflightUntil []float64 // fetch window end per key (virtual s)
		inflightFail  []bool    // window's fetch failed: error fans out
	)
	if cfg.Coalesce {
		nKeys := cfg.MissKeys
		if nKeys <= 0 {
			nKeys = 2000
		}
		if cfg.MissZipfS > 0 {
			z, err := dist.NewZipf(nKeys, cfg.MissZipfS)
			if err != nil {
				return nil, err
			}
			missZipf = z
		}
		inflightUntil = make([]float64, nKeys)
		inflightFail = make([]bool, nKeys)
	}
	// Tiered miss state: the disk rng (stream 108) is drawn only on
	// tiered runs — both for the β coin and the service draw — so
	// untiered runs keep their draw sequence byte-identical.
	var (
		rngDisk  = dist.SubRand(cfg.Seed, 108)
		diskDraw func() float64
	)
	if e := cfg.Extstore; e != nil {
		if e.DiskHitFraction < 0 || e.DiskHitFraction > 1 {
			return nil, fmt.Errorf("sim: extstore disk-hit fraction %v out of [0, 1]", e.DiskHitFraction)
		}
		if e.MuDisk <= 0 {
			return nil, fmt.Errorf("sim: extstore MuDisk=%v must be positive", e.MuDisk)
		}
		switch e.Dist {
		case "", "exp":
			diskDraw = func() float64 { return rngDisk.ExpFloat64() / e.MuDisk }
		case "lognormal":
			sigma := e.Sigma
			if sigma == 0 {
				sigma = 0.5
			}
			// µ = ln(mean) − σ²/2 preserves the 1/MuDisk mean.
			ln, err := dist.NewLogNormal(math.Log(1/e.MuDisk)-sigma*sigma/2, sigma)
			if err != nil {
				return nil, fmt.Errorf("sim: extstore: %w", err)
			}
			diskDraw = func() float64 { return ln.Sample(rngDisk) }
		default:
			return nil, fmt.Errorf("sim: extstore disk dist %q unknown (exp, lognormal)", e.Dist)
		}
	}
	// Virtual request clock for Database fault windows and tenant
	// buckets: requests arrive at the aggregate rate Λ/N, matching the
	// per-server streams' own virtual timelines. Under QoS the clock
	// runs at the OFFERED rate — sheds happen at arrival, before any
	// queue, so the admission process sees the pre-shedding stream.
	offeredRate := cfg.OfferedKeyRate
	if offeredRate <= 0 {
		offeredRate = m.TotalKeyRate
	}
	reqRate := offeredRate / float64(m.N)
	for req := 0; req < cfg.Requests; req++ {
		var (
			maxTS, maxTD, maxTP, sumTS float64
			misses, failedKeys         int
			admittedKeys               int
		)
		now := float64(req) / reqRate
		if cfg.Observer != nil {
			cfg.Observer.BeginRequest(now)
		}
		var tn *tenant.Tenant
		tenantIdx := -1
		if lim != nil {
			tenantIdx = tenantMix.SampleInt(rngTenant)
			tn = tenants[tenantIdx]
		}
		for i := 0; i < m.N; i++ {
			if tn != nil && !tn.Admit(now, 1, 0) {
				// Shed before queue: the key never reaches the proxy or
				// a server, so it draws nothing downstream.
				out.TenantShedKeys++
				rec.Observe(telemetry.StageTenantShed, 0)
				continue
			}
			admittedKeys++
			if proxySrv != nil {
				tp := proxySrv.Sample(rngProxy)
				if tp > maxTP {
					maxTP = tp
				}
				rec.Observe(telemetry.StageProxyHop, tp)
			}
			j := assign.SampleInt(rngAssign)
			var (
				s      float64
				failed bool
			)
			if faultAware {
				draw := func() (float64, bool) {
					idx := servers[j].SampleIdx(rngSample)
					return servers[j].Sojourns[idx], servers[j].FailedAt(idx)
				}
				var shed bool
				s, failed, shed = rs.resolveKey(j, draw, rec)
				if shed {
					out.ShedKeys++
				}
				if failed {
					failedKeys++
					out.FailedKeys++
				}
			} else {
				s = servers[j].Sample(rngSample)
				// Hedged reads: fastest of `replicas` independent draws
				// (replicas live on distinct servers; with balanced load the
				// same server's distribution represents each).
				for rep := 1; rep < replicas; rep++ {
					alt := servers[assign.SampleInt(rngAssign)].Sample(rngSample)
					if alt < s {
						s = alt
					}
				}
			}
			if s > maxTS {
				maxTS = s
			}
			sumTS += s
			out.KeyCount++
			// A failed key returns no value, so it cannot miss into the
			// database; the caller sees its error instead.
			if !failed && m.MissRatio > 0 && rngMiss.Float64() < m.MissRatio {
				var d float64
				delayed := false
				diskHit := false
				if diskDraw != nil && rngDisk.Float64() < cfg.Extstore.DiskHitFraction {
					// Disk hit: the SSD tier absorbs the RAM miss — a
					// local segment read, so no backend fetch, no
					// coalescing window and no Database fault exposure.
					d = diskDraw()
					diskHit = true
				} else if cfg.Coalesce {
					var k int
					if missZipf != nil {
						k = missZipf.SampleInt(rngMissKey)
					} else {
						k = rngMissKey.IntN(len(inflightUntil))
					}
					if end := inflightUntil[k]; end > now {
						// Delayed hit: the key's fetch is already in
						// flight, so this miss pays only the residual
						// wait. The leader's fault delay is inside the
						// window, and a failed fetch fans its error out
						// to everyone attached.
						d = end - now
						delayed = true
						if inflightFail[k] {
							failedKeys++
							out.FailedKeys++
						}
					} else {
						d = rngDB.ExpFloat64() / m.MuD
						fetchFailed := false
						if act := inj.At(fault.Database, now); act.Faulted() {
							d += act.Delay
							if act.Outcome != fault.OK {
								fetchFailed = true
								failedKeys++
								out.FailedKeys++
							}
						}
						inflightUntil[k] = now + d
						inflightFail[k] = fetchFailed
					}
				} else {
					d = rngDB.ExpFloat64() / m.MuD
					if act := inj.At(fault.Database, now); act.Faulted() {
						d += act.Delay
						if act.Outcome != fault.OK {
							// Database outage: the fill fails after the delay
							// and the key goes unanswered.
							failedKeys++
							out.FailedKeys++
						}
					}
				}
				misses++
				out.MissCount++
				out.DBLat.Record(d)
				switch {
				case diskHit:
					out.DiskHits++
					rec.Observe(telemetry.StageDiskRead, d)
				case delayed:
					out.DelayedHits++
					rec.Observe(telemetry.StageCoalesceWait, d)
				default:
					out.BackendFetches++
					rec.Observe(telemetry.StageMissPenalty, d)
				}
				if d > maxTD {
					maxTD = d
				}
			}
		}
		out.Requests++
		if misses > 0 {
			out.RequestsWithMiss++
		}
		if failedKeys > 0 {
			out.DegradedRequests++
		}
		if admittedKeys == 0 {
			// Every key was shed: the caller saw only error lines, so
			// the request leaves no latency sample on any plane.
			out.ShedRequests++
			continue
		}
		out.TS.Record(maxTS)
		out.TD.Record(maxTD)
		if out.TP != nil {
			out.TP.Record(maxTP)
		}
		total := m.NetworkLatency + maxTS + maxTD + maxTP
		out.Total.Record(total)
		if cfg.Observer != nil {
			cfg.Observer.RequestTotal(now, total)
		}
		if tenantIdx >= 0 {
			tenantLat[tenantIdx].Record(total)
		}
		rec.Observe(telemetry.StageForkJoin, maxTS-sumTS/float64(admittedKeys))
		if cfg.Tracer.Enabled() {
			emitRequestSpans(cfg.Tracer, now, total, maxTP, maxTS, maxTD)
		}
	}
	if lim != nil {
		out.Tenants = make([]TenantSimResult, len(tenants))
		for i, h := range tenants {
			out.Tenants[i] = TenantSimResult{Snapshot: h.Snapshot(), Latency: tenantLat[i]}
		}
	}
	return out, nil
}

// emitRequestSpans records one composed request on the virtual request
// timeline: a sim/request root spanning the end-user latency, with the
// stage maxima laid out in series underneath it the way Theorem 1 adds
// them. Start times are virtual seconds (request index over Λ/N), so
// the exported Chrome trace shows the simulated run's own clock.
func emitRequestSpans(tr *otrace.Tracer, now, total, maxTP, maxTS, maxTD float64) {
	root := otrace.Span{
		Trace: tr.NewID(), ID: tr.NewID(), Comp: "sim", Name: "request",
		Server: -1, Start: now, Dur: total,
	}
	tr.Emit(root)
	at := now
	emit := func(name string, dur float64) {
		if dur <= 0 {
			return
		}
		tr.Emit(otrace.Span{
			Trace: root.Trace, ID: tr.NewID(), Parent: root.ID,
			Comp: "sim", Name: name, Server: -1, Start: at, Dur: dur,
		})
		at += dur
	}
	emit("proxy", maxTP)
	emit("memcached", maxTS)
	emit("db", maxTD)
}

// TDQuantileEstimate measures E[T_D(N)] the way the paper's eqs. 21–23
// do, but from empirical quantities: the measured probability of any
// miss P{K>0} times the K̄/(K̄+1)-quantile of the measured per-miss
// database latency, K̄ being the measured E[K | K>0]. The mean of
// per-request maxima (TD.Mean()) exceeds this by the same
// maximal-statistics bias as TS — see EXPERIMENTS.md.
func (r *RequestResult) TDQuantileEstimate() (float64, error) {
	if r.RequestsWithMiss == 0 {
		return 0, nil
	}
	pAny := float64(r.RequestsWithMiss) / float64(r.Requests)
	kBar := float64(r.MissCount) / float64(r.RequestsWithMiss)
	q, err := r.DBLat.Quantile(kBar / (kBar + 1))
	if err != nil {
		return 0, err
	}
	return pAny * q, nil
}

// TPQuantileEstimate measures E[T_P(N)] the way TSQuantileEstimate
// measures the memcached stage: as the N/(N+1)-quantile of the proxy
// stage's per-key sojourn distribution (a single queue, so the
// composite CDF is its own). Zero when the run had no proxy tier.
func (r *RequestResult) TPQuantileEstimate(n int) (float64, error) {
	if r.ProxyKeys == nil || r.ProxyKeys.Count() == 0 {
		return 0, nil
	}
	return r.ProxyKeys.Quantile(float64(n) / float64(n+1))
}

// TSQuantileEstimate measures E[T_S(N)] the way the paper does (§4.5):
// as the N/(N+1)-quantile of the composite per-key latency distribution
// T_S(1)(t) = Π_j [F_j(t)]^{p_j} (eq. 11), evaluated on the empirical
// per-server CDFs. This is the estimator the paper's "Experiment"
// columns report; the mean of per-request maxima (TS.Mean()) exceeds it
// by the Euler–Mascheroni bias of the maximal-statistics approximation
// (≈ γ/ln(N+1), ~11% at N=150) — see EXPERIMENTS.md.
func (r *RequestResult) TSQuantileEstimate(m *core.Config) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("sim: nil model")
	}
	k := float64(m.N) / float64(m.N+1)
	logK := math.Log(k)
	replicas := r.Replicas
	if replicas == 0 {
		replicas = 1
	}
	logCDF := func(t float64) float64 {
		if replicas > 1 {
			// Hedged composition: every draw (primary and alternates)
			// samples the load-weighted mixture G(t) = Σ p_j F_j(t), and
			// the key keeps the fastest of `replicas` draws:
			// H(t) = 1 − (1−G(t))^d, identical for every key.
			var g float64
			for j, srv := range r.Servers {
				p := m.LoadRatios[j]
				if p == 0 || srv == nil {
					continue
				}
				g += p * srv.Hist.CDF(t)
			}
			if g <= 0 {
				return math.Inf(-1)
			}
			h := -math.Expm1(float64(replicas) * math.Log1p(-g))
			if h <= 0 {
				return math.Inf(-1)
			}
			return math.Log(h)
		}
		var s float64
		for j, srv := range r.Servers {
			p := m.LoadRatios[j]
			if p == 0 || srv == nil {
				continue
			}
			f := srv.Hist.CDF(t)
			if f <= 0 {
				return math.Inf(-1)
			}
			s += p * math.Log(f)
		}
		return s
	}
	if logCDF(0) >= logK {
		return 0, nil
	}
	hi := 1e-6
	for i := 0; i < 200 && logCDF(hi) < logK; i++ {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if logCDF(mid) < logK {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// serverArrival builds the batch inter-arrival distribution for a
// server with the given key rate, honoring a Config override.
func serverArrival(m *core.Config, lambdaKeys float64) (dist.Interarrival, error) {
	batchRate := (1 - m.Q) * lambdaKeys
	if m.Arrival != nil {
		return m.Arrival(batchRate)
	}
	return dist.NewGeneralizedPareto(m.Xi, batchRate)
}
