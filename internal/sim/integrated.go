package sim

import (
	"fmt"
	"math/rand/v2"

	"memqlat/internal/core"
	"memqlat/internal/dist"
	"memqlat/internal/fault"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
)

// DBMode selects how the integrated simulation services cache misses.
type DBMode int

const (
	// DBInfiniteServer delays each miss by an independent Exp(µ_D)
	// draw — the paper's ρ_D ≈ 0 approximation (default).
	DBInfiniteServer DBMode = iota + 1
	// DBSingleQueue routes misses through one FIFO M/M/1 database
	// server, exposing queueing effects the model neglects.
	DBSingleQueue
)

// IntegratedConfig drives the full event-scheduled fork-join system:
// Poisson end-user requests fork into N keys, keys are hashed to servers
// by {p_j}, queue FIFO with exponential service, misses visit the
// database, and the request joins when its last key completes. Unlike
// RequestSim, per-server arrival processes here *emerge* from the
// request stream (keys of one request land simultaneously, creating
// batches), so this mode stress-tests the model's independence and
// GI^X assumptions rather than assuming them.
type IntegratedConfig struct {
	Model *core.Config
	// Requests to complete (after WarmupRequests).
	Requests int
	// WarmupRequests are discarded (default Requests/10).
	WarmupRequests int
	// DB selects the miss-stage discipline (default DBInfiniteServer).
	DB DBMode
	// Seed makes the run deterministic.
	Seed uint64
	// Recorder, when set, receives the per-stage decomposition of every
	// measured key/request (queue wait, service, miss penalty,
	// fork-join overhead) in virtual time.
	Recorder telemetry.Recorder
	// Faults applies the shared schedule in virtual time. The integrated
	// mode models servers (not connections), so connection-level
	// outcomes collapse via Injector.DelayAt: an unresponsive window
	// holds the server busy until it recovers.
	Faults fault.Schedule
}

// IntegratedResult mirrors RequestResult for the integrated mode.
type IntegratedResult struct {
	Total     *stats.Histogram
	TS        *stats.Histogram
	TD        *stats.Histogram
	KeyLat    *stats.Histogram // per-key memcached sojourn
	MissCount int64
	KeyCount  int64
	// Completed counts requests measured (post-warmup).
	Completed int
	// BusyTime accumulates per-server busy seconds (virtual time),
	// indexed like the model's servers; Elapsed is the measured virtual
	// span. Utilization(j) = BusyTime[j]/Elapsed — used to verify the
	// emergent load matches ρ_j and, with KeyLat, Little's law.
	BusyTime []float64
	// Elapsed is the virtual time spanned by the measured phase.
	Elapsed float64
}

// Utilization returns the measured busy fraction of server j.
func (r *IntegratedResult) Utilization(j int) float64 {
	if j < 0 || j >= len(r.BusyTime) || r.Elapsed <= 0 {
		return 0
	}
	return r.BusyTime[j] / r.Elapsed
}

// station is a FIFO single-server queue with exponential service.
type station struct {
	mu      float64
	rng     *rand.Rand
	engine  *Engine
	busy    bool
	pending []*key // waiting keys (head is next to serve)
	onDone  func(*key)
	// busyAcc, when set, accumulates total service seconds (the busy
	// time of a single-server queue).
	busyAcc *float64
	// rec, when set, receives queue-wait/service observations for
	// measured keys.
	rec telemetry.Recorder
	// inj/target, when set, stretch service by the schedule's collapsed
	// delay at the key's service start (DelayAt semantics).
	inj    *fault.Injector
	target int
}

type key struct {
	req        *request
	arrived    float64
	sojourn    float64 // set by the station that just served the key
	memSojourn float64 // memcached-stage sojourn, preserved across the DB stage
	willMiss   bool
	dbLatency  float64
	netLatency float64
}

type request struct {
	start     float64
	remaining int
	maxTS     float64
	maxTD     float64
	sumTS     float64
	measured  bool
}

func (s *station) enqueue(k *key) {
	k.arrived = s.engine.Now()
	s.pending = append(s.pending, k)
	if !s.busy {
		s.startNext()
	}
}

func (s *station) startNext() {
	if len(s.pending) == 0 {
		s.busy = false
		return
	}
	s.busy = true
	k := s.pending[0]
	s.pending = s.pending[1:]
	service := s.rng.ExpFloat64() / s.mu
	service += s.inj.DelayAt(s.target, s.engine.Now())
	if s.busyAcc != nil {
		*s.busyAcc += service
	}
	if s.rec != nil && k.req.measured {
		s.rec.Observe(telemetry.StageQueueWait, s.engine.Now()-k.arrived)
		s.rec.Observe(telemetry.StageService, service)
	}
	// The callback must tolerate being scheduled on a zero-value engine
	// only via SimulateIntegrated, which always sets engine; errors are
	// impossible for non-negative service times.
	_ = s.engine.Schedule(service, func() {
		k.sojourn = s.engine.Now() - k.arrived
		s.onDone(k)
		s.startNext()
	})
}

// SimulateIntegrated runs the event-scheduled fork-join system.
func SimulateIntegrated(cfg IntegratedConfig) (*IntegratedResult, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("sim: nil model config")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("sim: requests=%d must be >= 1", cfg.Requests)
	}
	warmup := cfg.WarmupRequests
	if warmup == 0 {
		warmup = cfg.Requests / 10
	}
	dbMode := cfg.DB
	if dbMode == 0 {
		dbMode = DBInfiniteServer
	}
	m := cfg.Model

	var inj *fault.Injector
	if !cfg.Faults.Empty() {
		var err error
		inj, err = fault.NewInjector(cfg.Faults, m.M())
		if err != nil {
			return nil, err
		}
	}

	var eng Engine
	res := &IntegratedResult{
		Total:  stats.NewHistogram(),
		TS:     stats.NewHistogram(),
		TD:     stats.NewHistogram(),
		KeyLat: stats.NewHistogram(),
	}
	assign, err := dist.NewWeighted(m.LoadRatios)
	if err != nil {
		return nil, err
	}
	var (
		rngReq    = dist.SubRand(cfg.Seed, 201)
		rngAssign = dist.SubRand(cfg.Seed, 202)
		rngMiss   = dist.SubRand(cfg.Seed, 203)
		rngDB     = dist.SubRand(cfg.Seed, 204)
	)

	// Database: either an infinite server or one more station.
	rec := telemetry.OrNop(cfg.Recorder)
	var dbStation *station
	finishKey := func(k *key) {
		r := k.req
		if k.memSojourn > r.maxTS {
			r.maxTS = k.memSojourn
		}
		if k.dbLatency > r.maxTD {
			r.maxTD = k.dbLatency
		}
		r.sumTS += k.memSojourn
		r.remaining--
		if r.remaining == 0 && r.measured {
			res.Total.Record(eng.Now() - r.start)
			res.TS.Record(r.maxTS)
			res.TD.Record(r.maxTD)
			res.Completed++
			rec.Observe(telemetry.StageForkJoin, r.maxTS-r.sumTS/float64(m.N))
		}
	}
	memcachedDone := func(k *key) {
		k.memSojourn = k.sojourn
		if k.req.measured {
			res.KeyLat.Record(k.sojourn)
			res.KeyCount++
		}
		if !k.willMiss {
			finishKey(k)
			return
		}
		if k.req.measured {
			res.MissCount++
		}
		switch dbMode {
		case DBSingleQueue:
			dbStation.enqueue(k)
		default: // DBInfiniteServer
			d := rngDB.ExpFloat64() / m.MuD
			d += inj.DelayAt(fault.Database, eng.Now())
			k.dbLatency = d
			if k.req.measured {
				rec.Observe(telemetry.StageMissPenalty, d)
			}
			_ = eng.Schedule(d, func() { finishKey(k) })
		}
	}
	res.BusyTime = make([]float64, m.M())
	servers := make([]*station, m.M())
	for j := range servers {
		servers[j] = &station{
			mu:      m.MuS,
			rng:     dist.SubRand(cfg.Seed, 300+uint64(j)),
			engine:  &eng,
			onDone:  memcachedDone,
			busyAcc: &res.BusyTime[j],
			rec:     cfg.Recorder,
			inj:     inj,
			target:  j,
		}
	}
	if dbMode == DBSingleQueue {
		dbStation = &station{
			mu:     m.MuD,
			rng:    rngDB,
			engine: &eng,
			inj:    inj,
			target: fault.Database,
			onDone: func(k *key) {
				// The station wrote the DB-stage sojourn into k.sojourn;
				// move it to its own slot (memSojourn keeps the cache
				// stage).
				k.dbLatency = k.sojourn
				if k.req.measured {
					rec.Observe(telemetry.StageMissPenalty, k.dbLatency)
				}
				finishKey(k)
			},
		}
	}

	// Request generator: Poisson stream with rate Λ/N so the aggregate
	// key rate equals Λ.
	reqRate := m.TotalKeyRate / float64(m.N)
	total := warmup + cfg.Requests
	launched := 0
	var launch func()
	launch = func() {
		if launched >= total {
			return
		}
		launched++
		r := &request{
			start:     eng.Now(),
			remaining: m.N,
			measured:  launched > warmup,
		}
		for i := 0; i < m.N; i++ {
			k := &key{
				req:        r,
				willMiss:   m.MissRatio > 0 && rngMiss.Float64() < m.MissRatio,
				netLatency: m.NetworkLatency,
			}
			j := assign.SampleInt(rngAssign)
			srv := servers[j]
			_ = eng.Schedule(m.NetworkLatency, func() { srv.enqueue(k) })
		}
		gap := rngReq.ExpFloat64() / reqRate
		_ = eng.Schedule(gap, launch)
	}
	launch()
	// Run to (virtual) completion: the event queue drains once all
	// requests finish.
	const horizon = 1e12
	eng.Run(horizon)
	res.Elapsed = eng.LastEventAt()
	if res.Completed < cfg.Requests {
		return nil, fmt.Errorf("sim: only %d/%d requests completed (system overloaded?)",
			res.Completed, cfg.Requests)
	}
	return res, nil
}
