// Package sim is the measurement testbed of the reproduction: a
// deterministic, seedable discrete-event simulator of the Memcached
// system exactly as the paper models it — GI^X/M/1 key queues at each
// Memcached server, an exponential-service database stage for misses,
// constant network delay, and fork-join composition of a request's N
// keys (paper §3, Fig. 3).
//
// Two complementary simulation modes are provided:
//
//   - ServerSim + RequestSim mirror the paper's testbed methodology:
//     per-server key streams are generated (Generalized Pareto gaps,
//     geometric batches) and request latency is composed from sampled
//     key latencies (the paper's mutilate + statistical composition).
//     ServerSim uses the Lindley recursion, the exact event-by-event
//     evolution of a FIFO single-server queue, so it is a discrete-event
//     simulation computed without a scheduler.
//
//   - IntegratedSim drives the full system from a request stream through
//     an event scheduler: requests fork into keys, keys queue at
//     servers, misses visit the database, and the request joins when its
//     last key completes. It validates the model's independence
//     assumptions end-to-end.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback in virtual time.
type event struct {
	at  float64
	seq uint64 // tie-break so simultaneous events run FIFO
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a minimal discrete-event scheduler in virtual seconds.
// The zero value is ready to use.
type Engine struct {
	now    float64
	lastAt float64
	seq    uint64
	events eventHeap
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// LastEventAt returns the timestamp of the most recently executed
// event (0 if none ran). Unlike Now it does not advance to the Run
// horizon when the queue drains early.
func (e *Engine) LastEventAt() float64 { return e.lastAt }

// Schedule runs fn after delay seconds of virtual time. Negative delays
// are clamped to zero (run "now", after currently pending events at the
// same timestamp).
func (e *Engine) Schedule(delay float64, fn func()) error {
	if math.IsNaN(delay) {
		return fmt.Errorf("sim: NaN delay scheduled")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + delay, seq: e.seq, fn: fn})
	return nil
}

// Run executes events in timestamp order until the queue drains or
// virtual time passes until. Events scheduled exactly at the horizon
// still run.
func (e *Engine) Run(until float64) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.lastAt = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }
