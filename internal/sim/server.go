package sim

import (
	"fmt"
	"math/rand/v2"

	"memqlat/internal/dist"
	"memqlat/internal/fault"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
)

// ServerConfig parameterizes the GI^X/M/1 key stream at one simulated
// Memcached server.
type ServerConfig struct {
	// Interarrival is the batch inter-arrival gap distribution.
	Interarrival dist.Interarrival
	// Q is the concurrent probability (geometric batch sizes).
	Q float64
	// MuS is the per-key exponential service rate.
	MuS float64
	// Keys is the number of keys to simulate after warmup.
	Keys int
	// WarmupKeys are discarded to let the queue reach steady state
	// (default: 10% of Keys).
	WarmupKeys int
	// Seed makes the run deterministic.
	Seed uint64
	// Recorder, when set, receives StageQueueWait / StageService
	// observations for every measured key.
	Recorder telemetry.Recorder
	// Fault, when set, evaluates every key against the shared fault
	// schedule at its virtual arrival time; Server is this stream's
	// target index in the schedule. Nil = healthy.
	Fault  *fault.Injector
	Server int
}

// ServerResult holds the per-key processing-latency sample of one
// simulated server.
type ServerResult struct {
	// Sojourns are the recorded per-key latencies (queueing + service),
	// in arrival order. For faulted keys the entry is what the CLIENT
	// observes: the drop timeout stand-in, or ~0 for a fast
	// reset/refuse failure.
	Sojourns []float64
	// Failed marks the sojourn entries whose key did not get an answer
	// (dropped reply, reset or refused connection). Nil on healthy runs.
	Failed []bool
	// FailedKeys counts the Failed entries.
	FailedKeys int
	// Hist is the same sample as a quantile-queryable histogram.
	Hist *stats.Histogram
	// Batches is the number of batches simulated (post-warmup).
	Batches int
}

// Mean returns the sample mean per-key latency.
func (r *ServerResult) Mean() float64 { return r.Hist.Mean() }

// Quantile returns the k-th per-key latency quantile.
func (r *ServerResult) Quantile(k float64) (float64, error) { return r.Hist.Quantile(k) }

// Sample draws one recorded sojourn uniformly at random — the
// statistical composition step of RequestSim.
func (r *ServerResult) Sample(rng *rand.Rand) float64 {
	return r.Sojourns[rng.IntN(len(r.Sojourns))]
}

// SampleIdx draws an index into Sojourns/Failed — the fault-aware
// composition uses it to learn both the latency and whether the key
// got an answer.
func (r *ServerResult) SampleIdx(rng *rand.Rand) int {
	return rng.IntN(len(r.Sojourns))
}

// FailedAt reports whether sample i was a failure (false on healthy runs).
func (r *ServerResult) FailedAt(i int) bool {
	return r.Failed != nil && r.Failed[i]
}

// SimulateServer runs the GI^X/M/1 queue with the Lindley recursion:
// the unfinished-work process of a FIFO single-server queue evolves as
//
//	U ← max(0, U − gap) at each batch arrival,
//	sojourn(key) = U + Σ service of keys ahead in the batch + own service,
//
// which is the exact discrete-event dynamics of the modeled server.
func SimulateServer(cfg ServerConfig) (*ServerResult, error) {
	if cfg.Interarrival == nil {
		return nil, fmt.Errorf("sim: nil interarrival")
	}
	if cfg.Q < 0 || cfg.Q >= 1 {
		return nil, fmt.Errorf("sim: q=%v out of [0,1)", cfg.Q)
	}
	if !(cfg.MuS > 0) {
		return nil, fmt.Errorf("sim: muS=%v must be positive", cfg.MuS)
	}
	if cfg.Keys < 1 {
		return nil, fmt.Errorf("sim: keys=%d must be >= 1", cfg.Keys)
	}
	warmup := cfg.WarmupKeys
	if warmup == 0 {
		warmup = cfg.Keys / 10
	}
	batch, err := dist.NewGeometricBatch(cfg.Q)
	if err != nil {
		return nil, err
	}

	var (
		rngArrival = dist.SubRand(cfg.Seed, 1)
		rngBatch   = dist.SubRand(cfg.Seed, 2)
		rngService = dist.SubRand(cfg.Seed, 3)
	)
	res := &ServerResult{
		Sojourns: make([]float64, 0, cfg.Keys),
		Hist:     stats.NewHistogram(),
	}
	rec := telemetry.OrNop(cfg.Recorder)
	if cfg.Fault != nil {
		res.Failed = make([]bool, 0, cfg.Keys)
	}
	var (
		backlog   float64 // unfinished work at the current arrival instant
		clock     float64 // virtual stream time (fault windows key off it)
		seenKeys  int
		totalKeys = warmup + cfg.Keys
	)
	for seenKeys < totalKeys {
		gap := cfg.Interarrival.Sample(rngArrival)
		clock += gap
		backlog -= gap
		if backlog < 0 {
			backlog = 0
		}
		n := batch.SampleInt(rngBatch)
		for i := 0; i < n && seenKeys < totalKeys; i++ {
			act := cfg.Fault.At(cfg.Server, clock)
			wait := backlog // work ahead of this key = its queueing delay
			seenKeys++
			measured := seenKeys > warmup
			if act.Outcome == fault.Reset || act.Outcome == fault.Refuse {
				// Fast connection-level failure: no service consumed, the
				// client learns instantly.
				if measured {
					res.record(0, true)
				}
				continue
			}
			service := rngService.ExpFloat64() / cfg.MuS
			if act.Outcome != fault.Drop {
				// Slow/stall windows hold the server busy longer; a drop's
				// Delay is the client-side timeout stand-in, not work.
				service += act.Delay
			}
			backlog += service
			if !measured {
				continue
			}
			if act.Outcome == fault.Drop {
				// The server did the work but the reply is lost: the
				// client observes the timeout stand-in.
				obs := act.Delay
				if obs < backlog {
					obs = backlog
				}
				res.record(obs, true)
				continue
			}
			res.record(backlog, false)
			rec.Observe(telemetry.StageQueueWait, wait)
			rec.Observe(telemetry.StageService, service)
		}
		if seenKeys > warmup {
			res.Batches++
		}
	}
	return res, nil
}

// record appends one observed key latency.
func (r *ServerResult) record(obs float64, failed bool) {
	r.Sojourns = append(r.Sojourns, obs)
	r.Hist.Record(obs)
	if r.Failed != nil {
		r.Failed = append(r.Failed, failed)
	}
	if failed {
		r.FailedKeys++
	}
}
