package sim

import (
	"fmt"
	"math/rand/v2"

	"memqlat/internal/dist"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
)

// ServerConfig parameterizes the GI^X/M/1 key stream at one simulated
// Memcached server.
type ServerConfig struct {
	// Interarrival is the batch inter-arrival gap distribution.
	Interarrival dist.Interarrival
	// Q is the concurrent probability (geometric batch sizes).
	Q float64
	// MuS is the per-key exponential service rate.
	MuS float64
	// Keys is the number of keys to simulate after warmup.
	Keys int
	// WarmupKeys are discarded to let the queue reach steady state
	// (default: 10% of Keys).
	WarmupKeys int
	// Seed makes the run deterministic.
	Seed uint64
	// Recorder, when set, receives StageQueueWait / StageService
	// observations for every measured key.
	Recorder telemetry.Recorder
}

// ServerResult holds the per-key processing-latency sample of one
// simulated server.
type ServerResult struct {
	// Sojourns are the recorded per-key latencies (queueing + service),
	// in arrival order.
	Sojourns []float64
	// Hist is the same sample as a quantile-queryable histogram.
	Hist *stats.Histogram
	// Batches is the number of batches simulated (post-warmup).
	Batches int
}

// Mean returns the sample mean per-key latency.
func (r *ServerResult) Mean() float64 { return r.Hist.Mean() }

// Quantile returns the k-th per-key latency quantile.
func (r *ServerResult) Quantile(k float64) (float64, error) { return r.Hist.Quantile(k) }

// Sample draws one recorded sojourn uniformly at random — the
// statistical composition step of RequestSim.
func (r *ServerResult) Sample(rng *rand.Rand) float64 {
	return r.Sojourns[rng.IntN(len(r.Sojourns))]
}

// SimulateServer runs the GI^X/M/1 queue with the Lindley recursion:
// the unfinished-work process of a FIFO single-server queue evolves as
//
//	U ← max(0, U − gap) at each batch arrival,
//	sojourn(key) = U + Σ service of keys ahead in the batch + own service,
//
// which is the exact discrete-event dynamics of the modeled server.
func SimulateServer(cfg ServerConfig) (*ServerResult, error) {
	if cfg.Interarrival == nil {
		return nil, fmt.Errorf("sim: nil interarrival")
	}
	if cfg.Q < 0 || cfg.Q >= 1 {
		return nil, fmt.Errorf("sim: q=%v out of [0,1)", cfg.Q)
	}
	if !(cfg.MuS > 0) {
		return nil, fmt.Errorf("sim: muS=%v must be positive", cfg.MuS)
	}
	if cfg.Keys < 1 {
		return nil, fmt.Errorf("sim: keys=%d must be >= 1", cfg.Keys)
	}
	warmup := cfg.WarmupKeys
	if warmup == 0 {
		warmup = cfg.Keys / 10
	}
	batch, err := dist.NewGeometricBatch(cfg.Q)
	if err != nil {
		return nil, err
	}

	var (
		rngArrival = dist.SubRand(cfg.Seed, 1)
		rngBatch   = dist.SubRand(cfg.Seed, 2)
		rngService = dist.SubRand(cfg.Seed, 3)
	)
	res := &ServerResult{
		Sojourns: make([]float64, 0, cfg.Keys),
		Hist:     stats.NewHistogram(),
	}
	rec := telemetry.OrNop(cfg.Recorder)
	var (
		backlog   float64 // unfinished work at the current arrival instant
		seenKeys  int
		totalKeys = warmup + cfg.Keys
	)
	for seenKeys < totalKeys {
		gap := cfg.Interarrival.Sample(rngArrival)
		backlog -= gap
		if backlog < 0 {
			backlog = 0
		}
		n := batch.SampleInt(rngBatch)
		for i := 0; i < n && seenKeys < totalKeys; i++ {
			wait := backlog // work ahead of this key = its queueing delay
			service := rngService.ExpFloat64() / cfg.MuS
			backlog += service
			seenKeys++
			if seenKeys > warmup {
				res.Sojourns = append(res.Sojourns, backlog)
				res.Hist.Record(backlog)
				rec.Observe(telemetry.StageQueueWait, wait)
				rec.Observe(telemetry.StageService, service)
			}
		}
		if seenKeys > warmup {
			res.Batches++
		}
	}
	return res, nil
}
