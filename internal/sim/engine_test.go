package sim

import (
	"math"
	"testing"
)

func TestEngineRunsInTimestampOrder(t *testing.T) {
	var eng Engine
	var order []int
	if err := eng.Schedule(3, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Schedule(1, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Schedule(2, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	eng.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != 10 {
		t.Errorf("now = %v, want horizon 10", eng.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	var eng Engine
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := eng.Schedule(1, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var eng Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			_ = eng.Schedule(1, tick)
		}
	}
	if err := eng.Schedule(0, tick); err != nil {
		t.Fatal(err)
	}
	eng.Run(100)
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if eng.Pending() != 0 {
		t.Errorf("pending = %d", eng.Pending())
	}
}

func TestEngineHorizonStopsEarly(t *testing.T) {
	var eng Engine
	ran := false
	_ = eng.Schedule(5, func() { ran = true })
	eng.Run(4)
	if ran {
		t.Error("event past horizon ran")
	}
	if eng.Pending() != 1 {
		t.Errorf("pending = %d", eng.Pending())
	}
	eng.Run(5) // inclusive horizon
	if !ran {
		t.Error("event at horizon did not run")
	}
}

func TestEngineNegativeAndNaNDelay(t *testing.T) {
	var eng Engine
	ran := false
	if err := eng.Schedule(-1, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run(0)
	if !ran {
		t.Error("clamped negative delay did not run at now")
	}
	if err := eng.Schedule(math.NaN(), func() {}); err == nil {
		t.Error("NaN delay accepted")
	}
}
