package sim

import (
	"testing"
)

func TestSimulateIntegratedValidation(t *testing.T) {
	if _, err := SimulateIntegrated(IntegratedConfig{Model: nil, Requests: 1}); err == nil {
		t.Error("nil model accepted")
	}
	m := facebookModel()
	if _, err := SimulateIntegrated(IntegratedConfig{Model: m, Requests: 0}); err == nil {
		t.Error("zero requests accepted")
	}
	bad := facebookModel()
	bad.MuS = 0
	if _, err := SimulateIntegrated(IntegratedConfig{Model: bad, Requests: 1}); err == nil {
		t.Error("invalid model accepted")
	}
}

// The integrated event-driven system, run at moderate load, should agree
// with the composition simulator and the Theorem 1 ballpark on E[TS(N)].
func TestSimulateIntegratedAgreesWithModel(t *testing.T) {
	m := facebookModel()
	m.N = 20 // keep the event count tractable for CI
	m.TotalKeyRate = 4 * 40000
	m.MissRatio = 0.01
	res, err := SimulateIntegrated(IntegratedConfig{
		Model:    m,
		Requests: 4000,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 4000 {
		t.Fatalf("completed %d", res.Completed)
	}
	est, err := m.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// The integrated system violates the model's independence assumptions
	// (keys of one request arrive in one burst), so allow a generous
	// envelope: within a factor [0.5, 2] of the theorem interval.
	gotTS := res.TS.Mean()
	if gotTS < est.TS.Lo*0.5 || gotTS > est.TS.Hi*2 {
		t.Errorf("integrated E[TS] = %v, theorem [%v, %v]", gotTS, est.TS.Lo, est.TS.Hi)
	}
	// TD should be near the closed form (misses are rare and the DB is
	// an independent exponential stage in this mode).
	if est.TD > 0 && (res.TD.Mean() < est.TD*0.5 || res.TD.Mean() > est.TD*2) {
		t.Errorf("integrated E[TD] = %v, theorem %v", res.TD.Mean(), est.TD)
	}
	// Total latency must at least include the network constant.
	if res.Total.Mean() <= m.NetworkLatency {
		t.Errorf("total mean %v too small", res.Total.Mean())
	}
}

func TestSimulateIntegratedSingleQueueDB(t *testing.T) {
	m := facebookModel()
	m.N = 10
	m.TotalKeyRate = 4 * 20000
	m.MissRatio = 0.001 // keep the single DB queue stable: 80/s << 1000/s
	res, err := SimulateIntegrated(IntegratedConfig{
		Model:    m,
		Requests: 3000,
		DB:       DBSingleQueue,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 3000 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.MissCount == 0 {
		t.Error("no misses routed through the DB queue")
	}
	// With light DB load the single-queue mean should be near 1/muD per
	// missed key; TD(N) mean is diluted by the many all-hit requests, so
	// just require positivity and a sane bound.
	if res.TD.Mean() <= 0 || res.TD.Mean() > 0.1 {
		t.Errorf("TD mean = %v", res.TD.Mean())
	}
}

func TestSimulateIntegratedDeterministic(t *testing.T) {
	m := facebookModel()
	m.N = 5
	m.TotalKeyRate = 4 * 10000
	cfg := IntegratedConfig{Model: m, Requests: 500, Seed: 7}
	a, err := SimulateIntegrated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateIntegrated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total.Mean() != b.Total.Mean() {
		t.Error("same seed, different integrated results")
	}
}

// Per-key latency in the integrated M/M/1-like regime (q irrelevant,
// light load): sojourn ≈ exp with rate mu - lambda at each server.
func TestSimulateIntegratedKeyLatencySanity(t *testing.T) {
	m := facebookModel()
	m.N = 1
	m.MissRatio = 0
	m.Xi = 0
	m.Q = 0
	m.TotalKeyRate = 4 * 40000 // rho = 0.5 per server
	res, err := SimulateIntegrated(IntegratedConfig{Model: m, Requests: 60000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With N=1 the request stream is Poisson per server at 40K, so this
	// IS an M/M/1: mean sojourn 1/(80K-40K) = 25µs.
	want := 1.0 / 40000
	if !almostEqual(res.KeyLat.Mean(), want, 0.05) {
		t.Errorf("key latency mean = %v, want %v", res.KeyLat.Mean(), want)
	}
}

// The emergent utilization of the integrated system must match the
// configured rho, and Little's law (L = lambda * W) must hold for the
// per-server key latency.
func TestSimulateIntegratedUtilizationAndLittlesLaw(t *testing.T) {
	// N=1 keeps the per-server arrival process Poisson (thinned request
	// stream), so the M/M/1 closed form applies exactly; larger N makes
	// arrivals batchy and only raises W (see the ext-integrated ablation).
	m := facebookModel()
	m.N = 1
	m.Xi = 0
	m.Q = 0
	m.MissRatio = 0
	m.NetworkLatency = 0
	m.TotalKeyRate = 4 * 48000 // rho = 0.6 per server
	res, err := SimulateIntegrated(IntegratedConfig{Model: m, Requests: 40000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
	for j := 0; j < 4; j++ {
		got := res.Utilization(j)
		if !almostEqual(got, 0.6, 0.05) {
			t.Errorf("server %d utilization = %v, want ~0.6", j, got)
		}
	}
	if res.Utilization(-1) != 0 || res.Utilization(99) != 0 {
		t.Error("out-of-range utilization should be 0")
	}
	// Little's law on the whole cache tier: mean number of keys in
	// system L = lambda * W. We approximate L via lambda*W and check it
	// against the M/M/1 closed form rho/(1-rho) per server.
	lambdaPerServer := 48000.0
	w := res.KeyLat.Mean()
	l := lambdaPerServer * w
	want := 0.6 / 0.4 // M/M/1 mean number in system
	if !almostEqual(l, want, 0.1) {
		t.Errorf("Little's law L = %v, want ~%v", l, want)
	}
}
