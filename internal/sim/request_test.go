package sim

import (
	"math"
	"testing"

	"memqlat/internal/core"
	"memqlat/internal/otrace"
)

func facebookModel() *core.Config {
	return &core.Config{
		N:              150,
		LoadRatios:     core.BalancedLoad(4),
		TotalKeyRate:   4 * 62500,
		Q:              0.1,
		Xi:             0.15,
		MuS:            80000,
		MissRatio:      0.01,
		MuD:            1000,
		NetworkLatency: 20e-6,
	}
}

func TestSimulateRequestsValidation(t *testing.T) {
	if _, err := SimulateRequests(RequestConfig{Model: nil, Requests: 10}); err == nil {
		t.Error("nil model accepted")
	}
	bad := facebookModel()
	bad.N = 0
	if _, err := SimulateRequests(RequestConfig{Model: bad, Requests: 10}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := SimulateRequests(RequestConfig{Model: facebookModel(), Requests: 0}); err == nil {
		t.Error("zero requests accepted")
	}
}

// The headline validation (paper Table 3): the simulated Facebook
// workload must land inside the Theorem 1 bounds.
func TestSimulateRequestsMatchesTheorem1(t *testing.T) {
	model := facebookModel()
	res, err := SimulateRequests(RequestConfig{
		Model:         model,
		Requests:      20000,
		KeysPerServer: 300000,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := model.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// E[TS(N)] with the paper's §4.5 estimator (composite N/(N+1)
	// quantile): paper experiment 368µs within [351µs, 366µs] ±.
	gotTS, err := res.TSQuantileEstimate(model)
	if err != nil {
		t.Fatal(err)
	}
	if !est.TS.Contains(gotTS, 0.08) {
		t.Errorf("E[TS(N)] quantile estimate = %v, theorem bounds [%v, %v]",
			gotTS, est.TS.Lo, est.TS.Hi)
	}
	// The mean of per-request maxima exceeds the quantile approximation
	// by the Euler–Mascheroni bias (~gamma/rate), but stays within ~25%
	// of the theorem interval.
	meanMax := res.TS.Mean()
	if meanMax < gotTS {
		t.Errorf("mean of maxima %v below quantile estimate %v", meanMax, gotTS)
	}
	if meanMax > est.TS.Hi*1.25 {
		t.Errorf("mean of maxima %v too far above theorem upper %v", meanMax, est.TS.Hi)
	}
	// E[TD(N)] with the paper's eq. 21–23 estimator: paper experiment
	// 867µs vs theory 836µs (~4% off).
	gotTD, err := res.TDQuantileEstimate()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gotTD, est.TD, 0.08) {
		t.Errorf("E[TD(N)] quantile estimate = %v, theorem %v", gotTD, est.TD)
	}
	// The mean of per-request maxima again exceeds the quantile
	// estimate by the maximal-statistics bias (E[H_K]/µD vs
	// ln(K̄+1)/µD ≈ +30% here), but by no more than ~40%.
	if res.TD.Mean() < gotTD || res.TD.Mean() > est.TD*1.45 {
		t.Errorf("TD mean of maxima = %v vs estimate %v, theory %v",
			res.TD.Mean(), gotTD, est.TD)
	}
	// Total within [max, sum] with headroom for the mean-of-max bias on
	// both the TS and TD components (paper experiment: 1144µs in
	// [836µs, 1222µs]).
	gotT := res.Total.Mean()
	if gotT < est.Total.Lo*0.95 || gotT > est.Total.Hi*1.30 {
		t.Errorf("E[T(N)] = %v outside [%v, %v]", gotT, est.Total.Lo, est.Total.Hi)
	}
	// Network latency constant.
	if res.TN != 20e-6 {
		t.Errorf("TN = %v", res.TN)
	}
	// Miss accounting: ~1% of keys.
	missRate := float64(res.MissCount) / float64(res.KeyCount)
	if !almostEqual(missRate, 0.01, 0.1) {
		t.Errorf("miss rate = %v", missRate)
	}
}

func TestSimulateRequestsZeroMiss(t *testing.T) {
	model := facebookModel()
	model.MissRatio = 0
	res, err := SimulateRequests(RequestConfig{
		Model: model, Requests: 2000, KeysPerServer: 50000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissCount != 0 {
		t.Errorf("misses = %d", res.MissCount)
	}
	if res.TD.Mean() != 0 {
		t.Errorf("TD mean = %v", res.TD.Mean())
	}
}

func TestSimulateRequestsUnbalancedSkipsZeroServers(t *testing.T) {
	model := facebookModel()
	model.LoadRatios = []float64{1, 0, 0, 0}
	model.TotalKeyRate = 62500
	res, err := SimulateRequests(RequestConfig{
		Model: model, Requests: 1000, KeysPerServer: 50000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers[1] != nil || res.Servers[2] != nil {
		t.Error("zero-load servers were simulated")
	}
	if res.Servers[0] == nil {
		t.Error("loaded server missing")
	}
}

func TestSimulateRequestsDeterministic(t *testing.T) {
	cfg := RequestConfig{Model: facebookModel(), Requests: 500, KeysPerServer: 20000, Seed: 9}
	a, err := SimulateRequests(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRequests(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total.Mean() != b.Total.Mean() || a.TS.Mean() != b.TS.Mean() {
		t.Error("same seed, different results")
	}
}

// Growing N must grow E[TS(N)] roughly logarithmically (Fig. 12 shape).
func TestSimulateRequestsLogNGrowth(t *testing.T) {
	means := make([]float64, 0, 3)
	for _, n := range []int{10, 100, 1000} {
		model := facebookModel()
		model.N = n
		model.MissRatio = 0
		res, err := SimulateRequests(RequestConfig{
			Model: model, Requests: 4000, KeysPerServer: 150000, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		means = append(means, res.TS.Mean())
	}
	inc1 := means[1] - means[0]
	inc2 := means[2] - means[1]
	if inc1 <= 0 || inc2 <= 0 {
		t.Fatalf("TS not increasing with N: %v", means)
	}
	// Log growth: equal per-decade increments within 35%.
	if math.Abs(inc2-inc1)/inc1 > 0.35 {
		t.Errorf("increments %v vs %v not log-like", inc1, inc2)
	}
}

// The composition simulator must emit virtual-time spans: one
// sim/request root per composed request with its stage children laid
// out in series on the virtual request timeline.
func TestSimulateRequestsEmitsVirtualSpans(t *testing.T) {
	tr := otrace.New(otrace.Options{RingSize: 4096})
	const requests = 50
	res, err := SimulateRequests(RequestConfig{
		Model: facebookModel(), Requests: requests, KeysPerServer: 20000,
		Seed: 7, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	var roots, kids []otrace.Span
	for _, sp := range spans {
		if sp.Comp != "sim" {
			t.Fatalf("unexpected component %q", sp.Comp)
		}
		if sp.Name == "request" {
			roots = append(roots, sp)
		} else {
			kids = append(kids, sp)
		}
	}
	if len(roots) != requests {
		t.Fatalf("sim/request roots = %d, want %d", len(roots), requests)
	}
	// Roots sit on the virtual arrival timeline (rate Λ/N), strictly
	// increasing from 0.
	for i := 1; i < len(roots); i++ {
		if roots[i].Start <= roots[i-1].Start {
			t.Fatalf("root starts not increasing: %v then %v", roots[i-1].Start, roots[i].Start)
		}
	}
	byID := make(map[uint64]otrace.Span, len(roots))
	for _, r := range roots {
		byID[r.ID] = r
	}
	sums := make(map[uint64]float64)
	for _, k := range kids {
		root, ok := byID[k.Parent]
		if !ok || k.Trace != root.Trace {
			t.Fatalf("child %+v not under a request root", k)
		}
		if k.Dur <= 0 {
			t.Fatalf("child %+v has non-positive duration", k)
		}
		sums[k.Parent] += k.Dur
	}
	// Stage children plus the constant network latency reconstruct the
	// root's duration.
	tn := facebookModel().NetworkLatency
	for id, sum := range sums {
		if root := byID[id]; math.Abs(sum+tn-root.Dur) > 1e-12 {
			t.Fatalf("stage durations %v + TN %v != total %v", sum, tn, root.Dur)
		}
	}
	if res.Requests != requests {
		t.Fatalf("res.Requests = %d", res.Requests)
	}
}

// Tracing must not perturb the simulation: same seed, same histogram.
func TestSimulateRequestsTracerNeutral(t *testing.T) {
	cfg := RequestConfig{Model: facebookModel(), Requests: 300, KeysPerServer: 20000, Seed: 11}
	plain, err := SimulateRequests(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = otrace.New(otrace.Options{})
	traced, err := SimulateRequests(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Total.Mean() != traced.Total.Mean() || plain.Total.Count() != traced.Total.Count() {
		t.Errorf("tracing changed the measurement: %v/%d vs %v/%d",
			plain.Total.Mean(), plain.Total.Count(), traced.Total.Mean(), traced.Total.Count())
	}
}
