package sim

import (
	"fmt"
	"math"

	"memqlat/internal/dist"
	"memqlat/internal/stats"
)

// MissStageConfig drives the database-stage-only simulation used by the
// Fig. 11/13 sweeps, where N reaches 10⁶ and per-key composition would
// be wasteful: per request the miss count K ~ Binomial(N, r) is drawn
// directly and the max of K exponential database latencies is sampled
// in O(1) by CDF inversion.
type MissStageConfig struct {
	// N is the keys per request.
	N int
	// MissRatio is r.
	MissRatio float64
	// MuD is the database service rate.
	MuD float64
	// Requests is the sample size.
	Requests int
	// Seed makes the run deterministic.
	Seed uint64
}

// MissStageResult reports the measured T_D(N) statistics.
type MissStageResult struct {
	// TD is the per-request max database latency (0 for all-hit
	// requests).
	TD *stats.Histogram
	// RequestsWithMiss counts requests with K > 0.
	RequestsWithMiss int64
	// MissKeys sums K over all requests.
	MissKeys int64
	// Requests is the number simulated.
	Requests int64
}

// TDQuantileEstimate applies the paper's eq. 21–23 empirical estimator
// (see RequestResult.TDQuantileEstimate) using the exact exponential
// quantile, since the DB latency law is known here.
func (r *MissStageResult) TDQuantileEstimate(muD float64) float64 {
	if r.RequestsWithMiss == 0 {
		return 0
	}
	pAny := float64(r.RequestsWithMiss) / float64(r.Requests)
	kBar := float64(r.MissKeys) / float64(r.RequestsWithMiss)
	// (T_D)_{kBar/(kBar+1)} of Exp(muD) = ln(kBar+1)/muD (paper eq. 21).
	return pAny * logOnePlus(kBar) / muD
}

func logOnePlus(x float64) float64 { return math.Log1p(x) }

// SimulateMissStage runs the database stage in isolation.
func SimulateMissStage(cfg MissStageConfig) (*MissStageResult, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("sim: N=%d must be >= 1", cfg.N)
	}
	if cfg.MissRatio < 0 || cfg.MissRatio > 1 {
		return nil, fmt.Errorf("sim: miss ratio %v out of [0,1]", cfg.MissRatio)
	}
	if !(cfg.MuD > 0) {
		return nil, fmt.Errorf("sim: muD=%v must be positive", cfg.MuD)
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("sim: requests=%d must be >= 1", cfg.Requests)
	}
	rngK := dist.SubRand(cfg.Seed, 501)
	rngMax := dist.SubRand(cfg.Seed, 502)
	res := &MissStageResult{TD: stats.NewHistogram(), Requests: int64(cfg.Requests)}
	for i := 0; i < cfg.Requests; i++ {
		k := dist.SampleBinomial(rngK, int64(cfg.N), cfg.MissRatio)
		if k == 0 {
			res.TD.Record(0)
			continue
		}
		res.RequestsWithMiss++
		res.MissKeys += k
		res.TD.Record(dist.SampleMaxExponential(rngMax, cfg.MuD, k))
	}
	return res, nil
}
