package sim

import (
	"math"
	"testing"

	"memqlat/internal/dist"
	"memqlat/internal/queueing"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	// Relative comparison with a tiny absolute floor so that
	// microsecond-scale quantities are compared meaningfully.
	return math.Abs(a-b) <= tol*math.Max(1e-15, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSimulateServerValidation(t *testing.T) {
	exp, _ := dist.NewExponential(100)
	cases := []ServerConfig{
		{Interarrival: nil, MuS: 1, Keys: 10},
		{Interarrival: exp, Q: -1, MuS: 1, Keys: 10},
		{Interarrival: exp, Q: 1, MuS: 1, Keys: 10},
		{Interarrival: exp, Q: 0, MuS: 0, Keys: 10},
		{Interarrival: exp, Q: 0, MuS: 1, Keys: 0},
	}
	for i, c := range cases {
		if _, err := SimulateServer(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// M/M/1 sanity: Poisson arrivals (q=0) at rho=0.5 must reproduce the
// textbook mean sojourn 1/(mu - lambda).
func TestSimulateServerMM1Mean(t *testing.T) {
	exp, err := dist.NewExponential(40000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateServer(ServerConfig{
		Interarrival: exp,
		Q:            0,
		MuS:          80000,
		Keys:         400000,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / (80000 - 40000)
	if !almostEqual(res.Mean(), want, 0.03) {
		t.Errorf("mean sojourn = %v, want %v", res.Mean(), want)
	}
	if len(res.Sojourns) != 400000 {
		t.Errorf("recorded %d sojourns", len(res.Sojourns))
	}
	if res.Batches == 0 {
		t.Error("no batches counted")
	}
}

// M/M/1 sojourn is exponential with rate mu - lambda: check the p90.
func TestSimulateServerMM1Quantile(t *testing.T) {
	exp, _ := dist.NewExponential(40000)
	res, err := SimulateServer(ServerConfig{
		Interarrival: exp, Q: 0, MuS: 80000, Keys: 400000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Quantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(10) / 40000
	if !almostEqual(got, want, 0.05) {
		t.Errorf("p90 = %v, want %v", got, want)
	}
}

// Fig. 4 check at unit scale: under the Facebook workload the simulated
// per-key latency quantiles must fall within the eq. 9 bounds.
func TestSimulateServerWithinEq9Bounds(t *testing.T) {
	gp, err := dist.NewGeneralizedPareto(0.15, (1-0.1)*62500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateServer(ServerConfig{
		Interarrival: gp, Q: 0.1, MuS: 80000, Keys: 600000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	bq, err := queueing.NewBatchQueue(gp, 0.1, 80000)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		lo, hi, err := bq.KeyLatencyBounds(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Quantile(k)
		if err != nil {
			t.Fatal(err)
		}
		// 10% slack for finite-sample and histogram-resolution noise.
		if got < lo*0.9 || got > hi*1.1 {
			t.Errorf("k=%v: quantile %v outside [%v, %v]", k, got, lo, hi)
		}
	}
}

// Batching increases latency: same key rate, more concurrency.
func TestSimulateServerBatchingHurts(t *testing.T) {
	run := func(q float64) float64 {
		gp, err := dist.NewGeneralizedPareto(0.15, (1-q)*62500)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulateServer(ServerConfig{
			Interarrival: gp, Q: q, MuS: 80000, Keys: 300000, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Mean()
	}
	if !(run(0.4) > run(0)) {
		t.Error("q=0.4 not slower than q=0")
	}
}

// Determinism: equal seeds give identical samples; different seeds differ.
func TestSimulateServerDeterminism(t *testing.T) {
	gp, _ := dist.NewGeneralizedPareto(0.15, 56250)
	cfg := ServerConfig{Interarrival: gp, Q: 0.1, MuS: 80000, Keys: 1000, Seed: 42}
	a, err := SimulateServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sojourns {
		if a.Sojourns[i] != b.Sojourns[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Sojourns[i], b.Sojourns[i])
		}
	}
	cfg.Seed = 43
	c, err := SimulateServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sojourns[0] == c.Sojourns[0] && a.Sojourns[1] == c.Sojourns[1] {
		t.Error("different seeds produced identical start")
	}
}

func TestSimulateServerWarmupDiscard(t *testing.T) {
	exp, _ := dist.NewExponential(10000)
	res, err := SimulateServer(ServerConfig{
		Interarrival: exp, Q: 0, MuS: 80000, Keys: 5000, WarmupKeys: 2000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sojourns) != 5000 {
		t.Errorf("recorded %d, want 5000 post-warmup keys", len(res.Sojourns))
	}
}
