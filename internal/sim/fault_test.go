package sim

import (
	"testing"

	"memqlat/internal/dist"
	"memqlat/internal/fault"
	"memqlat/internal/telemetry"
)

func mustSchedule(t *testing.T, spec string) fault.Schedule {
	t.Helper()
	s, err := fault.ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = 42
	return s
}

func serverCfg(t *testing.T, seed uint64) ServerConfig {
	t.Helper()
	arrival, err := dist.NewGeneralizedPareto(0.15, 0.9*50000)
	if err != nil {
		t.Fatal(err)
	}
	return ServerConfig{
		Interarrival: arrival,
		Q:            0.1,
		MuS:          80000,
		Keys:         30000,
		Seed:         seed,
	}
}

// TestFaultSimServerSlowWindow: a permanent slowdown must shift the
// per-key latency distribution by at least the injected delay.
func TestFaultSimServerSlowWindow(t *testing.T) {
	healthy, err := SimulateServer(serverCfg(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := serverCfg(t, 5)
	inj, err := fault.NewInjector(mustSchedule(t, "slow:srv=0,delay=1ms"), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault, cfg.Server = inj, 0
	slowed, err := SimulateServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := slowed.Mean() - healthy.Mean(); got < 1e-3 {
		t.Errorf("slow fault added %.0fµs mean, want >= 1000µs", got*1e6)
	}
	if slowed.FailedKeys != 0 {
		t.Errorf("slowdown marked %d keys failed", slowed.FailedKeys)
	}
}

// TestFaultSimServerDropMarksFailed: a certain drop fails every key at
// the timeout stand-in latency.
func TestFaultSimServerDropMarksFailed(t *testing.T) {
	cfg := serverCfg(t, 6)
	cfg.Keys = 5000
	inj, err := fault.NewInjector(mustSchedule(t, "drop:srv=0,p=1,delay=50ms"), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault, cfg.Server = inj, 0
	res, err := SimulateServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedKeys != len(res.Sojourns) {
		t.Fatalf("%d/%d keys failed, want all", res.FailedKeys, len(res.Sojourns))
	}
	for i, s := range res.Sojourns {
		if s < 0.05 {
			t.Fatalf("dropped key %d observed %.1fms, want >= 50ms stand-in", i, s*1e3)
		}
		if !res.FailedAt(i) {
			t.Fatalf("key %d not marked failed", i)
		}
	}
}

// TestFaultSimRequestsDegraded: with one server refusing for the whole
// run, the composition must report failed keys and degraded requests,
// and the schedule determinism must hold run to run.
func TestFaultSimRequestsDegraded(t *testing.T) {
	run := func() *RequestResult {
		res, err := SimulateRequests(RequestConfig{
			Model:         facebookModel(),
			Requests:      400,
			KeysPerServer: 20000,
			Seed:          9,
			Faults:        mustSchedule(t, "refuse:srv=0"),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FailedKeys == 0 || a.DegradedRequests == 0 {
		t.Fatalf("refusing server produced no failures: %+v", a)
	}
	if a.DegradedRequests != a.Requests {
		// With N=150 keys and ~1/4 on the dead server, every request
		// should see at least one failure.
		t.Errorf("only %d/%d requests degraded", a.DegradedRequests, a.Requests)
	}
	if a.FailedKeys != b.FailedKeys || a.Total.Mean() != b.Total.Mean() {
		t.Errorf("faulted run not deterministic: %d/%v vs %d/%v",
			a.FailedKeys, a.Total.Mean(), b.FailedKeys, b.Total.Mean())
	}
}

// TestFaultSimRetryMasksPartialDrops: with 20% of one server's replies
// dropped, two retries must recover most failed reads (independent
// redraws fail ~0.8% of the time vs 20%).
func TestFaultSimRetryMasksPartialDrops(t *testing.T) {
	base := RequestConfig{
		Model:         facebookModel(),
		Requests:      400,
		KeysPerServer: 20000,
		Seed:          11,
		Faults:        mustSchedule(t, "drop:srv=0,p=0.2,delay=5ms"),
	}
	raw, err := SimulateRequests(base)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	withRetry := base
	withRetry.Recorder = col
	withRetry.Resilience = fault.Resilience{Retries: 2, RetryBackoff: 1e-4}
	cured, err := SimulateRequests(withRetry)
	if err != nil {
		t.Fatal(err)
	}
	if raw.FailedKeys == 0 {
		t.Fatal("baseline drop schedule produced no failures")
	}
	if cured.FailedKeys*5 > raw.FailedKeys {
		t.Errorf("retries left %d failed keys of %d baseline, want < 20%%",
			cured.FailedKeys, raw.FailedKeys)
	}
	if col.Breakdown()[telemetry.StageRetry].Count == 0 {
		t.Error("no StageRetry observations under retry policy")
	}
}

// TestFaultSimBreakerShedsDropTimeouts: a breaker must convert slow
// drop-timeout failures into fast sheds, pulling the mean request
// latency down.
func TestFaultSimBreakerShedsDropTimeouts(t *testing.T) {
	base := RequestConfig{
		Model:         facebookModel(),
		Requests:      400,
		KeysPerServer: 20000,
		Seed:          13,
		Faults:        mustSchedule(t, "drop:srv=0,p=1,delay=20ms"),
	}
	raw, err := SimulateRequests(base)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	shedded := base
	shedded.Recorder = col
	shedded.Resilience = fault.Resilience{BreakerThreshold: 0.5, BreakerWindow: 20, BreakerCooldown: 0.05}
	cured, err := SimulateRequests(shedded)
	if err != nil {
		t.Fatal(err)
	}
	if cured.ShedKeys == 0 {
		t.Fatal("breaker never opened against a 100% drop server")
	}
	if cured.Total.Mean() >= raw.Total.Mean() {
		t.Errorf("breaker did not cut latency: %.1fms with vs %.1fms without",
			cured.Total.Mean()*1e3, raw.Total.Mean()*1e3)
	}
	if col.Breakdown()[telemetry.StageBreakerShed].Count == 0 {
		t.Error("no StageBreakerShed observations")
	}
}

// TestFaultSimHedgeRecoversDrops: a hedge draw races any read stuck
// past the trigger, so most dropped reads (stand-in >> trigger) get a
// second, usually successful, attempt.
func TestFaultSimHedgeRecoversDrops(t *testing.T) {
	base := RequestConfig{
		Model:         facebookModel(),
		Requests:      400,
		KeysPerServer: 20000,
		Seed:          17,
		Faults:        mustSchedule(t, "drop:srv=0,p=0.3,delay=10ms"),
	}
	raw, err := SimulateRequests(base)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	hedged := base
	hedged.Recorder = col
	hedged.Resilience = fault.Resilience{HedgeDelay: 2e-3}
	cured, err := SimulateRequests(hedged)
	if err != nil {
		t.Fatal(err)
	}
	if raw.FailedKeys == 0 {
		t.Fatal("baseline drop schedule produced no failures")
	}
	// Independent hedge draws fail ~0.3×0.3 = 9% of the time vs 30%.
	if cured.FailedKeys*2 > raw.FailedKeys {
		t.Errorf("hedging left %d failed keys of %d baseline, want < 50%%",
			cured.FailedKeys, raw.FailedKeys)
	}
	if col.Breakdown()[telemetry.StageHedgeWait].Count == 0 {
		t.Error("no StageHedgeWait observations")
	}
}

// TestFaultSimIntegratedSlow: the event-driven mode must also honor the
// schedule (via the collapsed-delay view).
func TestFaultSimIntegratedSlow(t *testing.T) {
	model := facebookModel()
	healthy, err := SimulateIntegrated(IntegratedConfig{Model: model, Requests: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	slowed, err := SimulateIntegrated(IntegratedConfig{
		Model:    model,
		Requests: 400,
		Seed:     3,
		Faults:   mustSchedule(t, "slow:srv=all,delay=100us"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := slowed.TS.Mean() - healthy.TS.Mean(); got < 100e-6 {
		t.Errorf("integrated slow fault added %.0fµs TS mean, want >= 100µs", got*1e6)
	}
}

// TestFaultSimHealthyUnchanged: the zero schedule must not perturb the
// healthy simulation (no RNG stream drift from the fault seam).
func TestFaultSimHealthyUnchanged(t *testing.T) {
	a, err := SimulateRequests(RequestConfig{
		Model: facebookModel(), Requests: 300, KeysPerServer: 20000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRequests(RequestConfig{
		Model: facebookModel(), Requests: 300, KeysPerServer: 20000, Seed: 21,
		Faults: fault.Schedule{}, Resilience: fault.Resilience{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total.Mean() != b.Total.Mean() || a.KeyCount != b.KeyCount {
		t.Errorf("zero schedule perturbed the healthy run: %v vs %v",
			a.Total.Mean(), b.Total.Mean())
	}
}
