package sim

import (
	"math"

	"memqlat/internal/core"
	"memqlat/internal/fault"
	"memqlat/internal/telemetry"
)

// simResilience interprets the plane-neutral fault.Resilience spec in
// the composition stage, mirroring what the live client does with the
// same knobs: budget-free capped-backoff retries of failed key reads,
// a hedge draw once a read exceeds the trigger, and a per-server
// circuit breaker whose open state sheds draws. The composition has no
// wall clock, so the breaker cooldown converts to a per-server draw
// count via the server's key rate (draws ≈ rate × seconds).
type simResilience struct {
	spec     fault.Resilience
	breakers []*simBreaker
	// hedgeThreshold per server, in seconds; +Inf disables.
	hedgeThreshold []float64
}

func newSimResilience(spec fault.Resilience, m *core.Config, servers []*ServerResult) *simResilience {
	if !spec.Enabled() {
		return nil
	}
	spec = spec.WithDefaults()
	rs := &simResilience{spec: spec}
	if spec.BreakerThreshold > 0 {
		rs.breakers = make([]*simBreaker, len(servers))
		for j := range servers {
			cooldown := int(spec.BreakerCooldown * m.ServerKeyRate(j))
			if cooldown < 1 {
				cooldown = 1
			}
			rs.breakers[j] = &simBreaker{
				window:    spec.BreakerWindow,
				threshold: spec.BreakerThreshold,
				cooldown:  cooldown,
			}
		}
	}
	rs.hedgeThreshold = make([]float64, len(servers))
	for j := range rs.hedgeThreshold {
		rs.hedgeThreshold[j] = math.Inf(1)
		if servers[j] == nil {
			continue
		}
		switch {
		case spec.HedgeDelay > 0:
			rs.hedgeThreshold[j] = spec.HedgeDelay
		case spec.HedgePercentile > 0 && spec.HedgePercentile < 1:
			if q, err := servers[j].Hist.Quantile(spec.HedgePercentile); err == nil {
				rs.hedgeThreshold[j] = q
			}
		}
	}
	return rs
}

// resolveKey runs one key read through the resilience pipeline. draw
// samples the server's latency distribution and reports whether that
// sample was a failed (unanswered) read. The returned shed flag marks
// breaker fast-fails.
func (rs *simResilience) resolveKey(j int, draw func() (float64, bool), rec telemetry.Recorder) (obs float64, failed, shed bool) {
	var br *simBreaker
	if rs != nil && rs.breakers != nil {
		br = rs.breakers[j]
	}
	if br != nil && !br.allow() {
		rec.Observe(telemetry.StageBreakerShed, 0)
		return 0, true, true
	}
	obs, failed = draw()
	if br != nil {
		br.record(failed)
	}
	if rs == nil {
		return obs, failed, false
	}
	// Retries: the observed latency accumulates each failed attempt plus
	// its backoff, exactly as the live read path pays them in sequence.
	for k := 1; failed && k <= rs.spec.Retries; k++ {
		if br != nil && !br.allow() {
			rec.Observe(telemetry.StageBreakerShed, 0)
			break
		}
		backoff := rs.spec.RetryBackoff * math.Pow(2, float64(k-1))
		if cap := 8 * rs.spec.RetryBackoff; backoff > cap {
			backoff = cap
		}
		rec.Observe(telemetry.StageRetry, backoff)
		s, f := draw()
		if br != nil {
			br.record(f)
		}
		obs += backoff + s
		failed = f
	}
	// Hedge: once the read is outstanding past the trigger, a duplicate
	// draw races it; the client keeps whichever answers first.
	if h := rs.hedgeThresholdFor(j); obs > h {
		rec.Observe(telemetry.StageHedgeWait, h)
		s2, f2 := draw()
		if br != nil {
			br.record(f2)
		}
		if !f2 {
			if hedged := h + s2; failed || hedged < obs {
				obs = hedged
				failed = false
			}
		}
	}
	return obs, failed, false
}

func (rs *simResilience) hedgeThresholdFor(j int) float64 {
	if rs == nil || rs.hedgeThreshold == nil {
		return math.Inf(1)
	}
	return rs.hedgeThreshold[j]
}

// simBreaker is the composition-stage circuit breaker: same sliding
// window and threshold as the live client's, with the open-state
// cooldown measured in shed draws instead of seconds.
type simBreaker struct {
	window    int
	threshold float64
	cooldown  int

	outcomes []bool
	idx      int
	filled   int
	fails    int
	openLeft int  // draws remaining in the open state
	halfOpen bool // next draw is the probe
}

// allow reports whether the next draw may proceed.
func (b *simBreaker) allow() bool {
	if b.openLeft > 0 {
		b.openLeft--
		if b.openLeft == 0 {
			b.halfOpen = true
		}
		return false
	}
	return true
}

// record feeds one draw outcome.
func (b *simBreaker) record(failure bool) {
	if b.halfOpen {
		b.halfOpen = false
		if failure {
			b.trip()
		} else {
			b.clearWindow()
		}
		return
	}
	if b.outcomes == nil {
		b.outcomes = make([]bool, b.window)
	}
	if b.filled == len(b.outcomes) {
		if b.outcomes[b.idx] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.outcomes[b.idx] = failure
	if failure {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.outcomes)
	minSamples := b.window / 2
	if minSamples == 0 {
		minSamples = 1
	}
	if b.filled >= minSamples && float64(b.fails)/float64(b.filled) >= b.threshold {
		b.trip()
	}
}

func (b *simBreaker) trip() {
	b.openLeft = b.cooldown
	b.clearWindow()
}

func (b *simBreaker) clearWindow() {
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.idx, b.filled, b.fails = 0, 0, 0
}
