package sim

import (
	"math"
	"testing"
)

func TestSimulateMissStageValidation(t *testing.T) {
	bad := []MissStageConfig{
		{N: 0, MissRatio: 0.1, MuD: 1000, Requests: 10},
		{N: 10, MissRatio: -0.1, MuD: 1000, Requests: 10},
		{N: 10, MissRatio: 1.5, MuD: 1000, Requests: 10},
		{N: 10, MissRatio: 0.1, MuD: 0, Requests: 10},
		{N: 10, MissRatio: 0.1, MuD: 1000, Requests: 0},
	}
	for i, c := range bad {
		if _, err := SimulateMissStage(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// The miss-stage fast path must reproduce eq. 23 for the Facebook
// workload (theory 836µs).
func TestMissStageMatchesEq23(t *testing.T) {
	res, err := SimulateMissStage(MissStageConfig{
		N: 150, MissRatio: 0.01, MuD: 1000, Requests: 100000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.TDQuantileEstimate(1000)
	if !almostEqual(got, 836e-6, 0.03) {
		t.Errorf("TD estimate = %v, want ~836µs", got)
	}
	// Mean of maxima carries the maximal-statistics bias upward.
	if res.TD.Mean() < got {
		t.Errorf("mean %v below quantile estimate %v", res.TD.Mean(), got)
	}
}

func TestMissStageZeroMiss(t *testing.T) {
	res, err := SimulateMissStage(MissStageConfig{
		N: 100, MissRatio: 0, MuD: 1000, Requests: 1000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestsWithMiss != 0 || res.TDQuantileEstimate(1000) != 0 {
		t.Errorf("zero-miss result: %+v", res)
	}
}

// Large-N regime: E[TD(N)] -> ln(N r + 1)/muD (paper §5.2.4).
func TestMissStageLargeNLogLaw(t *testing.T) {
	res, err := SimulateMissStage(MissStageConfig{
		N: 1000000, MissRatio: 0.01, MuD: 1000, Requests: 20000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(1000000*0.01+1) / 1000
	if !almostEqual(res.TDQuantileEstimate(1000), want, 0.03) {
		t.Errorf("TD estimate = %v, want ~%v", res.TDQuantileEstimate(1000), want)
	}
}

// Small-N regime: TD is linear in r (doubling r doubles the estimate).
func TestMissStageSmallNLinearLaw(t *testing.T) {
	run := func(r float64) float64 {
		res, err := SimulateMissStage(MissStageConfig{
			N: 1, MissRatio: r, MuD: 1000, Requests: 400000, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TDQuantileEstimate(1000)
	}
	ratio := run(0.02) / run(0.01)
	if !almostEqual(ratio, 2, 0.1) {
		t.Errorf("small-N ratio = %v, want ~2", ratio)
	}
}

func TestMissStageDeterministic(t *testing.T) {
	cfg := MissStageConfig{N: 150, MissRatio: 0.01, MuD: 1000, Requests: 1000, Seed: 5}
	a, _ := SimulateMissStage(cfg)
	b, _ := SimulateMissStage(cfg)
	if a.TD.Mean() != b.TD.Mean() || a.MissKeys != b.MissKeys {
		t.Error("same seed, different results")
	}
}
