package route

import (
	"sync"
	"time"
)

// BreakerPolicy is the per-server circuit breaker: closed → open when
// the failure rate over a sliding outcome window crosses the threshold,
// open → half-open after a cooldown, half-open → closed after probe
// successes (or back to open on a probe failure). The client uses it to
// shed load; the proxy's failover policy uses it to steer keys to ring
// successors while the primary is open.
type BreakerPolicy struct {
	// Window is the sliding outcome-window size in operations (default 20).
	Window int
	// FailureThreshold opens the breaker when fails/window ≥ it
	// (default 0.5).
	FailureThreshold float64
	// MinSamples gates tripping until the window holds at least this
	// many outcomes (default Window/2).
	MinSamples int
	// Cooldown is how long the breaker stays open before probing
	// (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker (default 1).
	HalfOpenProbes int
}

// WithDefaults returns a copy with zero fields filled in.
func (p *BreakerPolicy) WithDefaults() *BreakerPolicy {
	out := *p
	if out.Window <= 0 {
		out.Window = 20
	}
	if out.FailureThreshold <= 0 {
		out.FailureThreshold = 0.5
	}
	if out.MinSamples <= 0 {
		out.MinSamples = out.Window / 2
		if out.MinSamples == 0 {
			out.MinSamples = 1
		}
	}
	if out.Cooldown <= 0 {
		out.Cooldown = time.Second
	}
	if out.HalfOpenProbes <= 0 {
		out.HalfOpenProbes = 1
	}
	return &out
}

// breakerState is the circuit breaker's state machine position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker tracks one server's health. All methods are safe for
// concurrent use.
type Breaker struct {
	pol BreakerPolicy

	mu        sync.Mutex
	state     breakerState
	outcomes  []bool // ring; true = failure
	idx       int
	filled    int
	fails     int
	openedAt  time.Time
	probes    int // half-open probes admitted
	successes int // half-open probe successes
}

// NewBreaker constructs a closed breaker under pol (which should have
// passed through WithDefaults).
func NewBreaker(pol BreakerPolicy) *Breaker {
	return &Breaker{pol: pol, outcomes: make([]bool, pol.Window)}
}

// Allow reports whether an operation may proceed, transitioning
// open → half-open once the cooldown elapses.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.pol.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probes = 0
		b.successes = 0
	}
	// Half-open: admit a bounded number of probes.
	if b.probes < b.pol.HalfOpenProbes {
		b.probes++
		return true
	}
	return false
}

// Record feeds one operation outcome into the state machine.
func (b *Breaker) Record(failure bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		// A straggler from before the trip; the window restarts on probe.
		return
	case breakerHalfOpen:
		if failure {
			b.trip(now)
			return
		}
		b.successes++
		if b.successes >= b.pol.HalfOpenProbes {
			b.reset()
		}
		return
	}
	if b.filled == len(b.outcomes) {
		if b.outcomes[b.idx] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.outcomes[b.idx] = failure
	if failure {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.outcomes)
	if b.filled >= b.pol.MinSamples &&
		float64(b.fails)/float64(b.filled) >= b.pol.FailureThreshold {
		b.trip(now)
	}
}

// trip opens the breaker and clears the window (caller holds mu).
func (b *Breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.clearWindow()
}

// reset closes the breaker with a fresh window (caller holds mu).
func (b *Breaker) reset() {
	b.state = breakerClosed
	b.clearWindow()
}

func (b *Breaker) clearWindow() {
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.idx, b.filled, b.fails = 0, 0, 0
	b.probes, b.successes = 0, 0
}

// State returns the state name (test/stats introspection).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
