package route

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestModuloSelector(t *testing.T) {
	if _, err := NewModuloSelector(0); err == nil {
		t.Error("n=0 accepted")
	}
	m, err := NewModuloSelector(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Errorf("N = %d", m.N())
	}
	for i := 0; i < 100; i++ {
		idx := m.Pick(fmt.Sprintf("key-%d", i))
		if idx < 0 || idx >= 4 {
			t.Fatalf("pick out of range: %d", idx)
		}
	}
}

func TestRingSelectorValidation(t *testing.T) {
	if _, err := NewRingSelector(0, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRingSelectorBalance(t *testing.T) {
	r, err := NewRingSelector(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Pick(fmt.Sprintf("key-%d", i))]++
	}
	for s, c := range counts {
		share := float64(c) / n
		if share < 0.15 || share > 0.35 {
			t.Errorf("server %d share = %v, want ~0.25", s, share)
		}
	}
}

func TestRingSelectorStability(t *testing.T) {
	// Removing one server moves only ~1/n of the keys.
	r4, _ := NewRingSelector(4, 0)
	r3, _ := NewRingSelector(3, 0)
	moved := 0
	const n = 20000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		a, b := r4.Pick(key), r3.Pick(key)
		// Keys on servers 0-2 should mostly stay put.
		if a < 3 && a != b {
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.25 {
		t.Errorf("consistent hashing moved %v of stable keys", frac)
	}
}

func TestRingSelectorDeterministic(t *testing.T) {
	a, _ := NewRingSelector(5, 100)
	b, _ := NewRingSelector(5, 100)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Pick(key) != b.Pick(key) {
			t.Fatal("ring not deterministic")
		}
	}
}

// TestRingSelectorIncrementalRemove is the consistent-hashing promise
// stated precisely: deleting one server's vnodes in place moves only
// that server's keys (~1/n of the total), every other key keeps its
// owner exactly, and Add restores the original ring bit-for-bit.
func TestRingSelectorIncrementalRemove(t *testing.T) {
	const servers, n = 5, 20000
	r, err := NewRingSelector(servers, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, n)
	for i := range before {
		before[i] = r.Pick(fmt.Sprintf("key-%d", i))
	}
	const victim = 2
	if err := r.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if r.Contains(victim) || r.Live() != servers-1 || r.N() != servers {
		t.Fatalf("membership after remove: contains=%v live=%d n=%d",
			r.Contains(victim), r.Live(), r.N())
	}
	moved, victims := 0, 0
	for i := range before {
		after := r.Pick(fmt.Sprintf("key-%d", i))
		if after == victim {
			t.Fatalf("key-%d still routed to removed server", i)
		}
		if before[i] == victim {
			victims++
			continue
		}
		if after != before[i] {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving servers; want 0", moved)
	}
	// The victim owned ~1/n of the keys, so that is all that moved.
	if frac := float64(victims) / n; math.Abs(frac-1.0/servers) > 0.1 {
		t.Errorf("victim owned %.3f of keys, want ~%.3f", frac, 1.0/servers)
	}
	if err := r.Add(victim); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if got := r.Pick(fmt.Sprintf("key-%d", i)); got != before[i] {
			t.Fatalf("key-%d owner %d after add, want %d (ring not restored)", i, got, before[i])
		}
	}
}

func TestRingSelectorMembershipErrors(t *testing.T) {
	r, _ := NewRingSelector(2, 8)
	if err := r.Remove(5); err == nil {
		t.Error("out-of-range remove accepted")
	}
	if err := r.Add(0); err == nil {
		t.Error("double add accepted")
	}
	if err := r.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(0); err == nil {
		t.Error("double remove accepted")
	}
	if err := r.Remove(1); err == nil {
		t.Error("removing the last server accepted")
	}
}

func TestRingSelectorAddGrows(t *testing.T) {
	r, _ := NewRingSelector(3, 0)
	if err := r.Add(3); err != nil {
		t.Fatal(err)
	}
	if r.N() != 4 || r.Live() != 4 {
		t.Fatalf("N=%d live=%d after growth, want 4/4", r.N(), r.Live())
	}
	fresh, _ := NewRingSelector(4, 0)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r.Pick(key) != fresh.Pick(key) {
			t.Fatal("grown ring disagrees with a fresh 4-server ring")
		}
	}
}

func TestWeightedSelectorValidation(t *testing.T) {
	if _, err := NewWeightedSelector(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewWeightedSelector([]float64{-1, 2}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedSelectorProportions(t *testing.T) {
	w, err := NewWeightedSelector([]float64{0.7, 0.1, 0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 4 {
		t.Errorf("N = %d", w.N())
	}
	counts := make([]int, 4)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[w.Pick(fmt.Sprintf("key-%d", i))]++
	}
	if share := float64(counts[0]) / n; math.Abs(share-0.7) > 0.03 {
		t.Errorf("heavy server share = %v, want ~0.7", share)
	}
	for s := 1; s < 4; s++ {
		if share := float64(counts[s]) / n; math.Abs(share-0.1) > 0.02 {
			t.Errorf("light server %d share = %v, want ~0.1", s, share)
		}
	}
}

// Property: every selector is deterministic per key, in range, and
// PickB agrees with Pick on identical bytes.
func TestPropertySelectorsDeterministicInRange(t *testing.T) {
	mod, _ := NewModuloSelector(7)
	ring, _ := NewRingSelector(7, 40)
	wt, _ := NewWeightedSelector([]float64{1, 2, 3, 4, 5, 6, 7})
	sels := []Selector{mod, ring, wt}
	f := func(key string) bool {
		for _, s := range sels {
			a := s.Pick(key)
			if a != s.Pick(key) {
				return false
			}
			if a < 0 || a >= s.N() {
				return false
			}
			if PickKey(s, []byte(key)) != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	pol := (&BreakerPolicy{Window: 4, MinSamples: 2, Cooldown: 10 * time.Millisecond}).WithDefaults()
	b := NewBreaker(*pol)
	now := time.Now()
	if !b.Allow(now) || b.State() != "closed" {
		t.Fatal("fresh breaker not closed")
	}
	b.Record(true, now)
	b.Record(true, now)
	if b.State() != "open" {
		t.Fatalf("state %q after failures, want open", b.State())
	}
	if b.Allow(now) {
		t.Error("open breaker admitted an operation")
	}
	later := now.Add(pol.Cooldown + time.Millisecond)
	if !b.Allow(later) || b.State() != "half-open" {
		t.Fatalf("state %q after cooldown, want half-open probe", b.State())
	}
	b.Record(false, later)
	if b.State() != "closed" {
		t.Fatalf("state %q after probe success, want closed", b.State())
	}
}
