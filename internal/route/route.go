// Package route is the key-to-server routing substrate shared by the
// client and the proxy tier: the Selector implementations (modulo,
// ketama ring with incremental membership, weighted) and the per-server
// circuit breaker that drives failover. The client re-exports these
// types, so both tiers agree byte-for-byte on key ownership — a proxied
// deployment routes exactly where a direct client would.
package route

import (
	"fmt"
	"sort"

	"memqlat/internal/dist"
)

// Selector maps a key to a server index in [0, n).
type Selector interface {
	// Pick returns the index of the server responsible for key.
	Pick(key string) int
	// N returns the number of servers.
	N() int
}

// ByteSelector is implemented by selectors that can pick from a byte
// key without materializing a string — the proxy's zero-allocation
// routing path. Every selector in this package implements it.
type ByteSelector interface {
	// PickB is Pick for a byte-slice key.
	PickB(key []byte) int
}

// PickKey routes a byte key through s, using the allocation-free PickB
// when s supports it.
func PickKey(s Selector, key []byte) int {
	if bs, ok := s.(ByteSelector); ok {
		return bs.PickB(key)
	}
	return s.Pick(string(key))
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash64 hashes a string key (FNV-1a finalized by SplitMix64).
func Hash64(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return mix64(h)
}

// Hash64B is Hash64 for a byte-slice key; identical output for
// identical bytes.
func Hash64B(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return mix64(h)
}

// mix64 is a SplitMix64 finalizer: FNV alone clusters badly on similar
// strings (sequential keys, vnode labels), which skews ring balance;
// the avalanche spreads the points uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ModuloSelector is the simplest key-to-server mapping: hash mod n.
type ModuloSelector struct {
	n int
}

var (
	_ Selector     = (*ModuloSelector)(nil)
	_ ByteSelector = (*ModuloSelector)(nil)
)

// NewModuloSelector validates n >= 1.
func NewModuloSelector(n int) (*ModuloSelector, error) {
	if n < 1 {
		return nil, fmt.Errorf("route: modulo selector needs n >= 1, got %d", n)
	}
	return &ModuloSelector{n: n}, nil
}

// Pick implements Selector.
func (m *ModuloSelector) Pick(key string) int { return int(Hash64(key) % uint64(m.n)) }

// PickB implements ByteSelector.
func (m *ModuloSelector) PickB(key []byte) int { return int(Hash64B(key) % uint64(m.n)) }

// N implements Selector.
func (m *ModuloSelector) N() int { return m.n }

// RingSelector is a ketama-style consistent-hash ring with virtual
// nodes. Membership changes are incremental: Remove deletes one
// server's virtual nodes (moving only ~1/n of the keys to ring
// successors) and Add re-inserts them, without rehashing or re-sorting
// the rest of the ring. The index space is stable — removing server j
// never renumbers the survivors.
type RingSelector struct {
	points  []ringPoint
	n       int
	vnodes  int
	present []bool // per-index membership; false after Remove
}

type ringPoint struct {
	hash   uint64
	server int
}

var (
	_ Selector     = (*RingSelector)(nil)
	_ ByteSelector = (*RingSelector)(nil)
)

// NewRingSelector builds a ring over n servers with the given number of
// virtual nodes per server (default 160 when vnodes <= 0).
func NewRingSelector(n, vnodes int) (*RingSelector, error) {
	if n < 1 {
		return nil, fmt.Errorf("route: ring selector needs n >= 1, got %d", n)
	}
	if vnodes <= 0 {
		vnodes = 160
	}
	points := make([]ringPoint, 0, n*vnodes)
	for s := 0; s < n; s++ {
		points = appendVnodes(points, s, vnodes)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].hash < points[j].hash })
	present := make([]bool, n)
	for i := range present {
		present[i] = true
	}
	return &RingSelector{points: points, n: n, vnodes: vnodes, present: present}, nil
}

// appendVnodes appends server s's virtual-node points (unsorted).
func appendVnodes(points []ringPoint, s, vnodes int) []ringPoint {
	for v := 0; v < vnodes; v++ {
		points = append(points, ringPoint{
			hash:   Hash64(fmt.Sprintf("server-%d#vnode-%d", s, v)),
			server: s,
		})
	}
	return points
}

// Pick implements Selector: the first ring point clockwise of the key's
// hash owns it.
func (r *RingSelector) Pick(key string) int { return r.owner(Hash64(key)) }

// PickB implements ByteSelector.
func (r *RingSelector) PickB(key []byte) int { return r.owner(Hash64B(key)) }

// owner finds the first point with hash >= h, wrapping at the top of
// the ring. Hand-rolled binary search: sort.Search would force the
// closure (and h) to escape, costing an allocation per pick.
func (r *RingSelector) owner(h uint64) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.points[lo].server
}

// N implements Selector: the size of the index space, which Remove
// deliberately does not shrink.
func (r *RingSelector) N() int { return r.n }

// Live returns how many servers currently hold ring points.
func (r *RingSelector) Live() int {
	live := 0
	for _, p := range r.present {
		if p {
			live++
		}
	}
	return live
}

// Contains reports whether server s currently holds ring points.
func (r *RingSelector) Contains(s int) bool {
	return s >= 0 && s < r.n && r.present[s]
}

// Remove deletes server s's virtual nodes: its keys redistribute to
// their ring successors while every other key keeps its owner. The
// index space is unchanged (N() still counts s), so the surviving
// servers keep their indices. One pass over the ring; no rehashing.
func (r *RingSelector) Remove(s int) error {
	if s < 0 || s >= r.n {
		return fmt.Errorf("route: remove server %d out of range [0,%d)", s, r.n)
	}
	if !r.present[s] {
		return fmt.Errorf("route: server %d already removed", s)
	}
	if r.Live() == 1 {
		return fmt.Errorf("route: cannot remove the last server")
	}
	kept := r.points[:0]
	for _, p := range r.points {
		if p.server != s {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.present[s] = false
	return nil
}

// Add inserts server s's virtual nodes: s == N() grows the ring by a
// fresh server, s < N() restores one that Remove took out. Only s's
// vnodes are hashed; they merge into the sorted ring in one pass.
func (r *RingSelector) Add(s int) error {
	switch {
	case s < 0 || s > r.n:
		return fmt.Errorf("route: add server %d out of range [0,%d]", s, r.n)
	case s == r.n:
		r.n++
		r.present = append(r.present, false)
	case r.present[s]:
		return fmt.Errorf("route: server %d already on the ring", s)
	}
	fresh := appendVnodes(make([]ringPoint, 0, r.vnodes), s, r.vnodes)
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].hash < fresh[j].hash })
	merged := make([]ringPoint, 0, len(r.points)+len(fresh))
	i, j := 0, 0
	for i < len(r.points) && j < len(fresh) {
		if r.points[i].hash <= fresh[j].hash {
			merged = append(merged, r.points[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, r.points[i:]...)
	merged = append(merged, fresh[j:]...)
	r.points = merged
	r.present[s] = true
	return nil
}

// WeightedSelector realizes an arbitrary load distribution {p_j}: key
// ownership is assigned by deterministic hashing into the cumulative
// weight table, so repeated Picks of one key agree while the aggregate
// key stream splits in the requested proportions. It is how the Fig. 10
// imbalance experiments steer p1 of the load to one server.
type WeightedSelector struct {
	weights *dist.Weighted
}

var (
	_ Selector     = (*WeightedSelector)(nil)
	_ ByteSelector = (*WeightedSelector)(nil)
)

// NewWeightedSelector validates the weight vector.
func NewWeightedSelector(weights []float64) (*WeightedSelector, error) {
	w, err := dist.NewWeighted(weights)
	if err != nil {
		return nil, fmt.Errorf("route: weighted selector: %w", err)
	}
	return &WeightedSelector{weights: w}, nil
}

// Pick implements Selector: the key's hash, mapped to [0,1), indexes the
// cumulative weight table.
func (w *WeightedSelector) Pick(key string) int { return w.pickHash(Hash64(key)) }

// PickB implements ByteSelector.
func (w *WeightedSelector) PickB(key []byte) int { return w.pickHash(Hash64B(key)) }

func (w *WeightedSelector) pickHash(h uint64) int {
	u := float64(h>>11) / float64(1<<53)
	// Binary search over the cumulative table via Prob sums would cost
	// allocations; reuse dist.Weighted's search by turning u into a
	// quantile lookup.
	return w.weights.PickQuantile(u)
}

// N implements Selector.
func (w *WeightedSelector) N() int { return w.weights.N() }
