// Package telemetry is the per-stage latency seam shared by every
// evaluation plane (model, simulator, live TCP stack): a Recorder
// interface that the server, backend, simulator and load generator call
// at each stage boundary, and a thread-safe Collector that aggregates
// the observations into the Breakdown the analytical model predicts
// stage by stage — queue wait, service, miss penalty, fork-join
// overhead. Because all three planes report the same decomposition,
// any scenario's latency budget can be diffed across planes directly.
package telemetry

import (
	"fmt"
	"strings"
	"sync"

	"memqlat/internal/stats"
)

// Stage identifies one component of the end-to-end latency budget.
type Stage int

const (
	// StageQueueWait is the time a key waits at its Memcached server
	// before service starts (the W of the GI^X/M/1 queue).
	StageQueueWait Stage = iota
	// StageService is the key's own service duration (mean 1/µ_S).
	StageService
	// StageMissPenalty is the database latency of one missed key
	// (mean 1/µ_D under the paper's ρ_D ≈ 0 stage).
	StageMissPenalty
	// StageForkJoin is the per-request join overhead: the latency the
	// max over a request's N keys adds beyond the mean key latency
	// (the maximal-statistics inflation Theorem 1 prices at
	// ln(N+1)/((1−δ)(1−q)µ_S) versus a single key's sojourn).
	StageForkJoin
	// StageRetry is the extra latency a retried read pays per retry
	// (backoff wait; the re-issued attempt's own latency lands in the
	// ordinary stages). Zero observations on a healthy run.
	StageRetry
	// StageHedgeWait is the delay a hedged read waited before firing its
	// hedge — the percentile-based trigger of the resilience policy.
	StageHedgeWait
	// StageBreakerShed is observed once per operation an open circuit
	// breaker fast-failed; the value is the (near-zero) shed latency, so
	// the Count is the signal.
	StageBreakerShed
	// StageLockWait is the time a command blocked acquiring a cache
	// shard lock. The sharded store's TryLock fast path records nothing
	// when uncontended, so healthy runs keep this stage zero-elided and
	// the paper's queue_wait/service decomposition unchanged; a non-zero
	// count is direct evidence of a lock convoy the service-time model
	// does not describe.
	StageLockWait
	// StageProxyHop is the latency the proxy tier adds to a command:
	// downstream parse + route + upstream enqueue on the live proxy's
	// data plane, the extra GI^X/M/1 stage's sojourn on the model and
	// simulator planes. Zero observations on a direct (unproxied) run,
	// so existing topologies keep their decomposition unchanged.
	StageProxyHop
	// StageCoalesceWait is the time a delayed hit spent attached to
	// another request's in-flight backend fetch (single-flight miss
	// coalescing): the residual of the leader's miss penalty. Zero
	// observations with coalescing off, so naive topologies keep their
	// decomposition unchanged; under coalescing the miss cost of a
	// request is either a miss_penalty (it led the fetch) or a
	// coalesce_wait (it fanned in), never both.
	StageCoalesceWait
	// StageTenantShed is observed once per key the proxy's tenant QoS
	// layer shed before it could queue upstream (token/byte bucket
	// empty for a silver/bronze tenant); the value is the (near-zero)
	// admission-check latency, so the Count is the signal. Zero
	// observations without tenant specs, so single-tenant topologies
	// keep their decomposition unchanged.
	StageTenantShed
	// StageDiskRead is the extstore tier's service time: a RAM miss
	// that the SSD log absorbs pays one segment read instead of a
	// backend fetch. Observed per disk hit on every plane (analytic
	// mean on the model, drawn service times in the sim, measured
	// reads live); zero observations without a tiered-storage spec, so
	// RAM-only topologies keep their decomposition unchanged.
	StageDiskRead
	numStages
)

// Stages lists every stage in reporting order.
func Stages() []Stage {
	return []Stage{StageQueueWait, StageService, StageMissPenalty, StageForkJoin,
		StageRetry, StageHedgeWait, StageBreakerShed, StageLockWait, StageProxyHop,
		StageCoalesceWait, StageTenantShed, StageDiskRead}
}

// String returns the stable snake_case stage name used in reports and
// the server's "stats telemetry" protocol section.
func (s Stage) String() string {
	switch s {
	case StageQueueWait:
		return "queue_wait"
	case StageService:
		return "service"
	case StageMissPenalty:
		return "miss_penalty"
	case StageForkJoin:
		return "fork_join"
	case StageRetry:
		return "retry"
	case StageHedgeWait:
		return "hedge_wait"
	case StageBreakerShed:
		return "breaker_shed"
	case StageLockWait:
		return "lock_wait"
	case StageProxyHop:
		return "proxy_hop"
	case StageCoalesceWait:
		return "coalesce_wait"
	case StageTenantShed:
		return "tenant_shed"
	case StageDiskRead:
		return "disk_read"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Recorder receives per-stage latency observations. Implementations
// must be safe for concurrent use: the live server records from one
// goroutine per connection and the load generator from every worker.
type Recorder interface {
	// Observe records one latency sample (in seconds) for the stage.
	Observe(stage Stage, seconds float64)
}

// Nop is the zero-overhead Recorder used when telemetry is disabled.
var Nop Recorder = nopRecorder{}

type nopRecorder struct{}

func (nopRecorder) Observe(Stage, float64) {}

// OrNop returns r, or Nop when r is nil, so call sites can thread an
// optional Recorder without nil checks on the hot path.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// Sharder is implemented by recorders that can hand out low-contention
// per-worker handles: a handle's observations land in the same
// aggregate, but concurrent workers holding distinct handles do not
// serialize on one mutex. The live server requests one handle per
// connection so that telemetry never becomes the cross-connection lock
// the latency model does not describe.
type Sharder interface {
	// Shard returns a Recorder handle for the worker identified by hint.
	Shard(hint uint64) Recorder
}

// Shard returns a per-worker handle of r when r supports sharding, and
// r itself otherwise — call sites thread a hint without caring.
func Shard(r Recorder, hint uint64) Recorder {
	if s, ok := r.(Sharder); ok {
		return s.Shard(hint)
	}
	return OrNop(r)
}

// Tee fans every observation out to both recorders (e.g. a server's own
// stats collector plus a harness-wide one). Nil arguments are dropped.
func Tee(a, b Recorder) Recorder {
	switch {
	case a == nil:
		return OrNop(b)
	case b == nil:
		return a
	}
	return teeRecorder{a, b}
}

type teeRecorder struct{ a, b Recorder }

func (t teeRecorder) Observe(stage Stage, seconds float64) {
	t.a.Observe(stage, seconds)
	t.b.Observe(stage, seconds)
}

// Shard implements Sharder by sharding both sides.
func (t teeRecorder) Shard(hint uint64) Recorder {
	return Tee(Shard(t.a, hint), Shard(t.b, hint))
}

// StageStats summarizes the observations of one stage.
type StageStats struct {
	// Count is the number of observations.
	Count int64
	// Mean is the sample mean latency in seconds.
	Mean float64
	// P50 / P95 / P99 are sample quantiles in seconds (0 when Count
	// is 0).
	P50 float64
	P95 float64
	P99 float64
	// Total is the summed latency in seconds.
	Total float64
}

// Breakdown is the per-stage latency decomposition of one run, indexed
// by Stage.
type Breakdown map[Stage]StageStats

// Empty reports whether no stage recorded any observation.
func (b Breakdown) Empty() bool {
	for _, st := range b {
		if st.Count > 0 {
			return false
		}
	}
	return true
}

// MeanOf returns the mean of the stage (0 when unobserved).
func (b Breakdown) MeanOf(stage Stage) float64 { return b[stage].Mean }

// StageSet returns the names of the stages that recorded at least one
// observation, in canonical stage order — the shape of a run's latency
// decomposition with the magnitudes stripped. Tests use it to assert
// that two implementations exercise identical stages.
func (b Breakdown) StageSet() []string {
	var out []string
	for _, stage := range Stages() {
		if b[stage].Count > 0 {
			out = append(out, stage.String())
		}
	}
	return out
}

// String renders the breakdown compactly for logs and CLI output.
// Resilience stages (retry, hedge_wait, breaker_shed) are elided when
// unobserved so healthy-run output stays unchanged.
func (b Breakdown) String() string {
	var sb strings.Builder
	for _, stage := range Stages() {
		st := b[stage]
		if st.Count == 0 && stage > StageForkJoin {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%s mean=%.1fµs n=%d", stage, st.Mean*1e6, st.Count)
	}
	return sb.String()
}

// collectorStripes is the number of independent lock domains inside a
// Collector. Power of two so Shard can mask instead of divide.
const collectorStripes = 8

// stripe is one lock domain of a Collector; it is itself a Recorder, so
// Collector.Shard can hand it out directly.
type stripe struct {
	mu    sync.Mutex
	hists [numStages]*stats.Histogram
}

// Observe implements Recorder.
func (s *stripe) Observe(stage Stage, seconds float64) {
	if stage < 0 || stage >= numStages {
		return
	}
	s.mu.Lock()
	s.hists[stage].Record(seconds)
	s.mu.Unlock()
}

// Collector is a thread-safe Recorder that aggregates observations into
// a Breakdown. Internally it is striped: workers that obtain handles via
// Shard serialize only within their stripe, so a cluster-wide collector
// does not become a cluster-wide lock. The zero value is NOT ready; use
// NewCollector.
type Collector struct {
	stripes [collectorStripes]stripe
}

// NewCollector constructs an empty Collector.
func NewCollector() *Collector {
	c := &Collector{}
	for s := range c.stripes {
		for i := range c.stripes[s].hists {
			c.stripes[s].hists[i] = stats.NewHistogram()
		}
	}
	return c
}

// Observe implements Recorder. Unsharded callers all land in stripe 0;
// hot paths should take a per-worker handle via Shard instead.
func (c *Collector) Observe(stage Stage, seconds float64) {
	c.stripes[0].Observe(stage, seconds)
}

// Shard implements Sharder: observations through the returned handle
// only contend with workers mapped to the same stripe.
func (c *Collector) Shard(hint uint64) Recorder {
	return &c.stripes[hint&(collectorStripes-1)]
}

// Breakdown snapshots the current per-stage statistics, merged across
// stripes.
func (c *Collector) Breakdown() Breakdown {
	merged := [numStages]*stats.Histogram{}
	for i := range merged {
		merged[i] = stats.NewHistogram()
	}
	for s := range c.stripes {
		st := &c.stripes[s]
		st.mu.Lock()
		for i, h := range st.hists {
			// Identical bucketing by construction; Merge cannot fail.
			_ = merged[i].Merge(h)
		}
		st.mu.Unlock()
	}
	out := make(Breakdown, numStages)
	for i, h := range merged {
		st := StageStats{Count: h.Count()}
		if st.Count > 0 {
			st.Mean = h.Mean()
			st.Total = h.Mean() * float64(st.Count)
			st.P50 = h.MustQuantile(0.5)
			st.P95 = h.MustQuantile(0.95)
			st.P99 = h.MustQuantile(0.99)
		}
		out[Stage(i)] = st
	}
	return out
}

// Histograms snapshots the full per-stage distributions, merged across
// stripes — the export surface the Prometheus registry scrapes so its
// bucket counts agree with the Breakdown's quantiles. The returned
// histograms are private copies; callers may mutate them freely.
func (c *Collector) Histograms() map[Stage]*stats.Histogram {
	merged := [numStages]*stats.Histogram{}
	for i := range merged {
		merged[i] = stats.NewHistogram()
	}
	for s := range c.stripes {
		st := &c.stripes[s]
		st.mu.Lock()
		for i, h := range st.hists {
			// Identical bucketing by construction; Merge cannot fail.
			_ = merged[i].Merge(h)
		}
		st.mu.Unlock()
	}
	out := make(map[Stage]*stats.Histogram, numStages)
	for i, h := range merged {
		out[Stage(i)] = h
	}
	return out
}
