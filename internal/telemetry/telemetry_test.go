package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageQueueWait:    "queue_wait",
		StageService:      "service",
		StageMissPenalty:  "miss_penalty",
		StageForkJoin:     "fork_join",
		StageRetry:        "retry",
		StageHedgeWait:    "hedge_wait",
		StageBreakerShed:  "breaker_shed",
		StageLockWait:     "lock_wait",
		StageProxyHop:     "proxy_hop",
		StageCoalesceWait: "coalesce_wait",
		StageTenantShed:   "tenant_shed",
		StageDiskRead:     "disk_read",
	}
	if len(Stages()) != len(want) {
		t.Fatalf("Stages() = %d entries, want %d", len(Stages()), len(want))
	}
	for stage, name := range want {
		if stage.String() != name {
			t.Errorf("%d.String() = %q, want %q", stage, stage.String(), name)
		}
	}
	if got := Stage(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown stage string = %q", got)
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.Observe(StageService, float64(i)*1e-6)
	}
	c.Observe(StageMissPenalty, 1e-3)
	b := c.Breakdown()
	if b.Empty() {
		t.Fatal("breakdown empty after observations")
	}
	svc := b[StageService]
	if svc.Count != 100 {
		t.Errorf("service count = %d", svc.Count)
	}
	if math.Abs(svc.Mean-50.5e-6) > 1e-6 {
		t.Errorf("service mean = %v, want ~50.5µs", svc.Mean)
	}
	if svc.P50 <= 0 || svc.P99 < svc.P50 {
		t.Errorf("quantiles inconsistent: p50=%v p99=%v", svc.P50, svc.P99)
	}
	if math.Abs(svc.Total-svc.Mean*100) > 1e-12 {
		t.Errorf("total = %v, want mean*count", svc.Total)
	}
	if b[StageQueueWait].Count != 0 {
		t.Errorf("queue_wait observed without records")
	}
	if b.MeanOf(StageMissPenalty) != 1e-3 {
		t.Errorf("miss_penalty mean = %v", b.MeanOf(StageMissPenalty))
	}
	if !strings.Contains(b.String(), "service") {
		t.Errorf("String() = %q missing stage name", b.String())
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Observe(StageQueueWait, 1e-6)
				c.Observe(StageService, 2e-6)
			}
		}()
	}
	wg.Wait()
	b := c.Breakdown()
	if b[StageQueueWait].Count != 8000 || b[StageService].Count != 8000 {
		t.Errorf("counts = %d/%d, want 8000/8000",
			b[StageQueueWait].Count, b[StageService].Count)
	}
}

func TestNopAndOrNop(t *testing.T) {
	Nop.Observe(StageService, 1) // must not panic
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	c := NewCollector()
	if OrNop(c) != Recorder(c) {
		t.Error("OrNop(c) != c")
	}
	c.Observe(Stage(-1), 1) // out of range: ignored
	c.Observe(Stage(99), 1)
	if !c.Breakdown().Empty() {
		t.Error("out-of-range stages recorded")
	}
}

func TestCollectorShardHandles(t *testing.T) {
	c := NewCollector()
	// Handles with different hints map to a bounded set of stripes; all
	// of their observations must land in one merged Breakdown.
	for hint := uint64(0); hint < 32; hint++ {
		h := Shard(c, hint)
		for i := 0; i < 10; i++ {
			h.Observe(StageService, 1e-6)
		}
	}
	if got := c.Breakdown()[StageService].Count; got != 320 {
		t.Errorf("merged count = %d, want 320", got)
	}
	// Same hint -> same stripe (stable routing).
	if Shard(c, 3) != Shard(c, 3) {
		t.Error("Shard not stable for equal hints")
	}
}

func TestShardFallbacks(t *testing.T) {
	// A non-Sharder recorder falls back to itself; nil falls back to Nop.
	if Shard(Nop, 7) != Nop {
		t.Error("Shard(Nop) != Nop")
	}
	if Shard(nil, 7) != Nop {
		t.Error("Shard(nil) != Nop")
	}
}

func TestTeeShards(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	h := Shard(Tee(a, b), 5)
	h.Observe(StageQueueWait, 2e-6)
	if a.Breakdown()[StageQueueWait].Count != 1 || b.Breakdown()[StageQueueWait].Count != 1 {
		t.Error("sharded tee did not fan out to both collectors")
	}
}

func TestCollectorShardConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := Shard(c, uint64(w))
			for i := 0; i < 1000; i++ {
				h.Observe(StageService, 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Breakdown()[StageService].Count; got != 16000 {
		t.Errorf("count = %d, want 16000", got)
	}
}

// TestCollectorConcurrentMerge hammers striped handles from many
// goroutines while Breakdown and Histograms merge snapshots in
// parallel: the striped-recorder merge path must be race-free and the
// final merged counts exact.
func TestCollectorConcurrentMerge(t *testing.T) {
	c := NewCollector()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent mergers: snapshot while recording is in flight.
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := c.Breakdown()
				if b[StageService].Count < 0 {
					t.Error("negative count in mid-run snapshot")
				}
				hs := c.Histograms()
				if hs[StageService].Count() < 0 {
					t.Error("negative histogram count in mid-run snapshot")
				}
			}
		}()
	}
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func(w int) {
			defer rec.Done()
			h := Shard(c, uint64(w))
			for i := 0; i < perWorker; i++ {
				h.Observe(StageService, float64(i+1)*1e-7)
				h.Observe(StageQueueWait, 1e-6)
			}
		}(w)
	}
	rec.Wait()
	close(stop)
	wg.Wait()
	b := c.Breakdown()
	if b[StageService].Count != workers*perWorker {
		t.Errorf("service count = %d, want %d", b[StageService].Count, workers*perWorker)
	}
	if b[StageQueueWait].Count != workers*perWorker {
		t.Errorf("queue_wait count = %d, want %d", b[StageQueueWait].Count, workers*perWorker)
	}
	// The snapshot histograms must agree with the Breakdown quantiles —
	// they are merged from the same stripes.
	hs := c.Histograms()
	svc := hs[StageService]
	if svc.Count() != b[StageService].Count {
		t.Errorf("histogram count %d != breakdown count %d", svc.Count(), b[StageService].Count)
	}
	for q, want := range map[float64]float64{
		0.5: b[StageService].P50, 0.95: b[StageService].P95, 0.99: b[StageService].P99,
	} {
		if got := svc.MustQuantile(q); got != want {
			t.Errorf("histogram q%v = %v, breakdown says %v", q, got, want)
		}
	}
	// Snapshots are private copies: mutating one must not leak back.
	svc.Record(1e3)
	if c.Histograms()[StageService].Count() != b[StageService].Count {
		t.Error("mutating a Histograms() snapshot leaked into the collector")
	}
}

func TestBreakdownP95Ordering(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 1000; i++ {
		c.Observe(StageService, float64(i)*1e-6)
	}
	st := c.Breakdown()[StageService]
	if !(st.P50 <= st.P95 && st.P95 <= st.P99) {
		t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v", st.P50, st.P95, st.P99)
	}
	// Uniform 1..1000µs: p95 must sit near 950µs within bucket error.
	if st.P95 < 900e-6 || st.P95 > 1000e-6 {
		t.Errorf("p95 = %v, want ~950µs", st.P95)
	}
}
