package telemetry

import (
	"strconv"
	"sync/atomic"
)

// Exemplar is one raw traced observation of a stage: the value, the
// trace that produced it (hex-encoded, the way mq_trace headers carry
// it), and the wall time it was observed. Metrics exposition attaches
// it to the histogram bucket containing Value, OpenMetrics-style, so a
// dashboard can jump from a suspicious bucket straight to the trace.
type Exemplar struct {
	TraceID string
	Value   float64 // seconds
	Unix    float64 // observation wall time, unix seconds
}

// ExemplarStore retains the most recent traced observation per stage.
// Writes are lock-free pointer swaps and reads are loads, so recording
// costs the hot path one allocation only on the (rare) traced commands
// and scraping never blocks a recorder. The nil store records and
// returns nothing, so call sites need no gating.
type ExemplarStore struct {
	slots [numStages]atomic.Pointer[Exemplar]
}

// NewExemplarStore returns an empty store.
func NewExemplarStore() *ExemplarStore { return &ExemplarStore{} }

// Record stores stage's latest exemplar. Zero trace IDs (untraced) and
// out-of-range stages are dropped.
func (s *ExemplarStore) Record(stage Stage, traceID uint64, seconds, unix float64) {
	if s == nil || traceID == 0 || stage < 0 || stage >= numStages {
		return
	}
	s.slots[stage].Store(&Exemplar{
		TraceID: FormatTraceID(traceID),
		Value:   seconds,
		Unix:    unix,
	})
}

// Stage returns stage's most recent exemplar, nil when none was ever
// recorded (or the store is nil).
func (s *ExemplarStore) Stage(stage Stage) *Exemplar {
	if s == nil || stage < 0 || stage >= numStages {
		return nil
	}
	return s.slots[stage].Load()
}

// FormatTraceID renders a trace ID the way exposition labels carry it:
// 16 hex digits, zero-padded.
func FormatTraceID(id uint64) string {
	const zeros = "0000000000000000"
	h := strconv.FormatUint(id, 16)
	return zeros[len(h):] + h
}
