package stats

import (
	"math"
	"testing"
)

func TestHistogramScale(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(float64(i) * 1e-3)
	}
	p50, p99 := h.MustQuantile(0.5), h.MustQuantile(0.99)
	mean := h.Mean()
	h.Scale(8)
	if got := h.Count(); got != 800 {
		t.Fatalf("scaled count = %d, want 800", got)
	}
	// Scaling is a pure count reweighting: location statistics are
	// invariant.
	if h.MustQuantile(0.5) != p50 || h.MustQuantile(0.99) != p99 {
		t.Fatalf("quantiles moved under Scale: p50 %v->%v p99 %v->%v",
			p50, h.MustQuantile(0.5), p99, h.MustQuantile(0.99))
	}
	if h.Mean() != mean {
		t.Fatalf("mean moved under Scale: %v -> %v", mean, h.Mean())
	}
	if got := h.CumulativeCount(50e-3); got < 350 || got > 450 {
		t.Fatalf("scaled CumulativeCount(50ms) = %d, want ~400", got)
	}
	// Scale by k <= 1 is a no-op.
	h.Scale(1)
	h.Scale(0)
	if h.Count() != 800 {
		t.Fatalf("no-op scale changed count to %d", h.Count())
	}
}

func TestMomentsScale(t *testing.T) {
	var m Moments
	for i := 1; i <= 10; i++ {
		m.Add(float64(i))
	}
	sd := m.StdDev()
	m.Scale(4)
	if m.Count() != 40 || m.Mean() != 5.5 || m.Min() != 1 || m.Max() != 10 {
		t.Fatalf("scaled moments: %v", m.String())
	}
	// Variance uses n-1; scaling n and m2 together keeps StdDev within
	// the finite-sample correction of the original.
	if math.Abs(m.StdDev()-sd)/sd > 0.05 {
		t.Fatalf("StdDev drifted under Scale: %v -> %v", sd, m.StdDev())
	}
	var empty Moments
	empty.Scale(8)
	if empty.Count() != 0 {
		t.Fatalf("scaling empty moments invented samples")
	}
}
