package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	// Relative comparison with a tiny absolute floor so that
	// microsecond-scale quantities are compared meaningfully.
	return math.Abs(a-b) <= tol*math.Max(1e-15, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Count() != 0 || m.Mean() != 0 || m.Variance() != 0 {
		t.Fatalf("zero-value moments not empty: %v", m.String())
	}
	if m.Min() != 0 || m.Max() != 0 {
		t.Fatalf("empty min/max should be 0")
	}
}

func TestMomentsKnownValues(t *testing.T) {
	tests := []struct {
		name     string
		give     []float64
		wantMean float64
		wantVar  float64
	}{
		{name: "single", give: []float64{5}, wantMean: 5, wantVar: 0},
		{name: "pair", give: []float64{2, 4}, wantMean: 3, wantVar: 2},
		{name: "constant", give: []float64{7, 7, 7, 7}, wantMean: 7, wantVar: 0},
		{name: "mixed", give: []float64{1, 2, 3, 4, 5}, wantMean: 3, wantVar: 2.5},
		{name: "negatives", give: []float64{-1, 1}, wantMean: 0, wantVar: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var m Moments
			for _, x := range tt.give {
				m.Add(x)
			}
			if !almostEqual(m.Mean(), tt.wantMean, 1e-12) {
				t.Errorf("mean = %v, want %v", m.Mean(), tt.wantMean)
			}
			if !almostEqual(m.Variance(), tt.wantVar, 1e-12) {
				t.Errorf("variance = %v, want %v", m.Variance(), tt.wantVar)
			}
			if m.Count() != int64(len(tt.give)) {
				t.Errorf("count = %d, want %d", m.Count(), len(tt.give))
			}
		})
	}
}

func TestMomentsMinMax(t *testing.T) {
	var m Moments
	for _, x := range []float64{3, -2, 9, 0.5} {
		m.Add(x)
	}
	if m.Min() != -2 || m.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want -2/9", m.Min(), m.Max())
	}
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var a, b, all Moments
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 1
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-10) {
		t.Errorf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-10) {
		t.Errorf("merged variance %v != %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestMomentsMergeEmptySides(t *testing.T) {
	var a, b Moments
	b.Add(4)
	a.Merge(b) // empty receiver
	if a.Count() != 1 || a.Mean() != 4 {
		t.Fatalf("merge into empty failed: %s", a.String())
	}
	var empty Moments
	a.Merge(empty) // empty argument
	if a.Count() != 1 || a.Mean() != 4 {
		t.Fatalf("merge of empty changed state: %s", a.String())
	}
}

func TestMomentsAddN(t *testing.T) {
	var a, b Moments
	a.AddN(2.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(2.5)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Fatalf("AddN mismatch: %s vs %s", a.String(), b.String())
	}
}

func TestMomentsReset(t *testing.T) {
	var m Moments
	m.Add(1)
	m.Reset()
	if m.Count() != 0 || m.Mean() != 0 {
		t.Fatalf("reset did not clear state")
	}
}

// Property: mean always lies within [min, max] and variance is
// non-negative, for any input vector.
func TestMomentsPropertyBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var m Moments
		ok := true
		for _, x := range xs {
			// Skip values whose squares overflow float64: Welford's m2
			// accumulator legitimately saturates there.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				continue
			}
			m.Add(x)
		}
		if m.Count() == 0 {
			return true
		}
		if m.Variance() < 0 {
			ok = false
		}
		if m.Mean() < m.Min()-1e-9 || m.Mean() > m.Max()+1e-9 {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is order-insensitive in its result (commutative up to
// floating-point noise).
func TestMomentsPropertyMergeCommutative(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			var out []float64
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a1, b1, a2, b2 Moments
		for _, x := range xs {
			a1.Add(x)
			a2.Add(x)
		}
		for _, y := range ys {
			b1.Add(y)
			b2.Add(y)
		}
		a1.Merge(b1)
		b2.Merge(a2)
		return a1.Count() == b2.Count() &&
			almostEqual(a1.Mean(), b2.Mean(), 1e-9) &&
			almostEqual(a1.Variance(), b2.Variance(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
