// Package stats provides streaming statistics, latency histograms,
// confidence intervals and curve-analysis helpers used throughout the
// memqlat simulator, load generator and experiment harness.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoSamples is returned by estimators that require at least one sample.
var ErrNoSamples = errors.New("stats: no samples")

// Moments accumulates count, mean and variance of a stream of float64
// observations using Welford's numerically stable online algorithm.
// The zero value is ready to use.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// AddN records the same observation k times (k >= 1).
func (m *Moments) AddN(x float64, k int64) {
	for i := int64(0); i < k; i++ {
		m.Add(x)
	}
}

// Merge folds other into m, producing the moments of the concatenated
// streams (Chan et al. parallel variance combination).
func (m *Moments) Merge(other Moments) {
	if other.n == 0 {
		return
	}
	if m.n == 0 {
		*m = other
		return
	}
	n := m.n + other.n
	delta := other.mean - m.mean
	m.mean += delta * float64(other.n) / float64(n)
	m.m2 += other.m2 + delta*delta*float64(m.n)*float64(other.n)/float64(n)
	if other.min < m.min {
		m.min = other.min
	}
	if other.max > m.max {
		m.max = other.max
	}
	m.n = n
}

// Count reports the number of observations.
func (m *Moments) Count() int64 { return m.n }

// Mean reports the sample mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Min reports the smallest observation (0 when empty).
func (m *Moments) Min() float64 {
	if m.n == 0 {
		return 0
	}
	return m.min
}

// Max reports the largest observation (0 when empty).
func (m *Moments) Max() float64 {
	if m.n == 0 {
		return 0
	}
	return m.max
}

// Variance reports the unbiased sample variance (0 with <2 samples).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev reports the unbiased sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// StdErr reports the standard error of the mean.
func (m *Moments) StdErr() float64 {
	if m.n == 0 {
		return 0
	}
	return m.StdDev() / math.Sqrt(float64(m.n))
}

// Scale multiplies the observation count by k >= 1, as if every
// observation had been recorded k times: the Horvitz–Thompson
// correction for a 1-in-k sampled stream. Mean, min and max are
// location statistics and are unchanged; m2 (the summed squared
// deviation) scales with the count so the variance estimate stays
// consistent.
func (m *Moments) Scale(k int64) {
	if k <= 1 || m.n == 0 {
		return
	}
	m.n *= k
	m.m2 *= float64(k)
}

// Reset discards all state.
func (m *Moments) Reset() { *m = Moments{} }

// String implements fmt.Stringer for debugging output.
func (m *Moments) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		m.n, m.Mean(), m.StdDev(), m.Min(), m.Max())
}
