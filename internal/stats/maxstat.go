package stats

import "fmt"

// MaxOrderQuantile returns the quantile level used by the maximal-statistics
// approximation of the paper (§4.3.2 / §4.4): the expectation of the
// maximum of n i.i.d. draws of a random variable T is approximated by the
// n/(n+1)-th quantile of T,
//
//	E[max(T_1..T_n)] ≈ (T)_{n/(n+1)}.
//
// It returns an error for n < 1.
func MaxOrderQuantile(n int64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("stats: max order over %d draws", n)
	}
	return float64(n) / float64(n+1), nil
}

// ExpectedMax applies the maximal-statistics approximation to an empirical
// distribution: it reads the n/(n+1) quantile off h.
func ExpectedMax(h *Histogram, n int64) (float64, error) {
	q, err := MaxOrderQuantile(n)
	if err != nil {
		return 0, err
	}
	return h.Quantile(q)
}
