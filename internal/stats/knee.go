package stats

import (
	"fmt"
	"math"
)

// Knee locates the "cliff point" of a monotonically increasing convex
// curve y(x) using the kneedle construction: normalize both axes to
// [0, 1] and return the x at which the normalized curve is farthest above
// the straight chord from the first to the last point. For latency-vs-
// utilization curves this picks out the utilization at which latency
// growth transitions from gentle to explosive — the paper's cliff.
//
// xs must be strictly increasing and len(xs) == len(ys) >= 3.
func Knee(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: knee input length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 3 {
		return 0, fmt.Errorf("stats: knee needs >= 3 points, got %d", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return 0, fmt.Errorf("stats: knee xs not strictly increasing at %d", i)
		}
	}
	x0, x1 := xs[0], xs[len(xs)-1]
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		yMin = math.Min(yMin, y)
		yMax = math.Max(yMax, y)
	}
	if yMax == yMin {
		return 0, fmt.Errorf("stats: knee of a flat curve is undefined")
	}
	bestX, bestD := xs[0], math.Inf(-1)
	for i := range xs {
		xn := (xs[i] - x0) / (x1 - x0)
		yn := (ys[i] - yMin) / (yMax - yMin)
		// Distance above the y=x chord of the normalized curve. For a
		// convex increasing curve the farthest point *below* the chord is
		// the knee, so we use chord minus curve.
		d := xn - yn
		if d > bestD {
			bestD = d
			bestX = xs[i]
		}
	}
	return bestX, nil
}
