package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a log-bucketed latency histogram in the spirit of
// HdrHistogram: values are bucketed with bounded relative error so that
// quantiles over many orders of magnitude stay accurate while memory use
// stays constant. Values are non-negative float64 (typically seconds).
//
// The zero value is not usable; construct with NewHistogram.
type Histogram struct {
	// growth is the per-bucket geometric growth factor (> 1).
	growth float64
	// logGrowth caches math.Log(growth).
	logGrowth float64
	// smallest is the lower bound of bucket index 1. Values in
	// [0, smallest) land in bucket 0.
	smallest float64
	counts   []int64
	moments  Moments
}

// Default bucketing: 1% relative error starting at 1 nanosecond
// (expressed in seconds), which covers sub-ns to years in ~4600 buckets.
const (
	defaultGrowth   = 1.02
	defaultSmallest = 1e-9
)

// NewHistogram returns a histogram with ~1% quantile resolution for
// values >= 1 ns (values in seconds).
func NewHistogram() *Histogram {
	h, err := NewHistogramWith(defaultSmallest, defaultGrowth)
	if err != nil {
		// Static parameters are known-valid; this cannot happen.
		panic(err)
	}
	return h
}

// NewHistogramWith returns a histogram whose bucket boundaries grow
// geometrically by growth starting at smallest. growth must exceed 1 and
// smallest must be positive.
func NewHistogramWith(smallest, growth float64) (*Histogram, error) {
	if !(growth > 1) {
		return nil, fmt.Errorf("stats: histogram growth %v must be > 1", growth)
	}
	if !(smallest > 0) {
		return nil, fmt.Errorf("stats: histogram smallest %v must be > 0", smallest)
	}
	return &Histogram{
		growth:    growth,
		logGrowth: math.Log(growth),
		smallest:  smallest,
	}, nil
}

// bucketIndex maps a value to its bucket.
func (h *Histogram) bucketIndex(v float64) int {
	if v < h.smallest {
		return 0
	}
	return 1 + int(math.Log(v/h.smallest)/h.logGrowth)
}

// bucketUpper returns the (exclusive) upper boundary of bucket i.
func (h *Histogram) bucketUpper(i int) float64 {
	if i == 0 {
		return h.smallest
	}
	return h.smallest * math.Pow(h.growth, float64(i))
}

// bucketMid returns a representative value for bucket i (geometric
// midpoint for i > 0).
func (h *Histogram) bucketMid(i int) float64 {
	if i == 0 {
		return h.smallest / 2
	}
	lo := h.bucketUpper(i - 1)
	hi := h.bucketUpper(i)
	return math.Sqrt(lo * hi)
}

// Record adds a single non-negative observation. Negative or NaN values
// are recorded as zero so that corrupted inputs cannot poison quantiles.
func (h *Histogram) Record(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	i := h.bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]int64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.moments.Add(v)
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 { return h.moments.Count() }

// Mean reports the exact (not bucketed) mean of recorded observations.
func (h *Histogram) Mean() float64 { return h.moments.Mean() }

// StdDev reports the exact sample standard deviation.
func (h *Histogram) StdDev() float64 { return h.moments.StdDev() }

// Min reports the smallest recorded observation.
func (h *Histogram) Min() float64 { return h.moments.Min() }

// Max reports the largest recorded observation.
func (h *Histogram) Max() float64 { return h.moments.Max() }

// Quantile returns an estimate of the q-th quantile, q in [0, 1].
// It returns ErrNoSamples when the histogram is empty and an error for
// q outside [0, 1].
func (h *Histogram) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	total := h.Count()
	if total == 0 {
		return 0, ErrNoSamples
	}
	// Rank of the desired observation, 1-based, ceil(q*n) clamped to [1,n].
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := h.bucketMid(i)
			// Clamp to the observed range: exact min/max beat bucket
			// midpoints at the extremes.
			return clamp(v, h.Min(), h.Max()), nil
		}
	}
	return h.Max(), nil
}

// MustQuantile is Quantile for static q known to be valid; it returns 0
// for an empty histogram.
func (h *Histogram) MustQuantile(q float64) float64 {
	v, err := h.Quantile(q)
	if err != nil {
		return 0
	}
	return v
}

// Merge folds other's observations into h. The histograms must share
// bucketing parameters.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.growth != other.growth || h.smallest != other.smallest {
		return fmt.Errorf("stats: merging histograms with different bucketing")
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]int64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.moments.Merge(other.moments)
	return nil
}

// Reset discards all recorded observations, keeping bucketing parameters.
func (h *Histogram) Reset() {
	h.counts = h.counts[:0]
	h.moments.Reset()
}

// CDF evaluates the empirical cumulative distribution at v.
func (h *Histogram) CDF(v float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	idx := h.bucketIndex(v)
	var cum int64
	for i, c := range h.counts {
		if i > idx {
			break
		}
		cum += c
	}
	return float64(cum) / float64(total)
}

// Summary renders a short human-readable digest.
func (h *Histogram) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.4g", h.Count(), h.Mean())
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(&b, " p%g=%.4g", q*100, h.MustQuantile(q))
	}
	return b.String()
}

// Quantiles evaluates several quantiles at once, more cheaply than
// repeated Quantile calls. qs must be sorted ascending in [0,1].
func (h *Histogram) Quantiles(qs []float64) ([]float64, error) {
	if !sort.Float64sAreSorted(qs) {
		return nil, fmt.Errorf("stats: quantiles must be sorted")
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		v, err := h.Quantile(q)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// QuantileBounds returns the bucket that holds the q-th quantile as the
// half-open interval [lo, hi): the tightest statement the bucketing can
// make about where the true quantile lies. Bucket 0 reports [0,
// smallest). It returns ErrNoSamples when the histogram is empty.
func (h *Histogram) QuantileBounds(q float64) (lo, hi float64, err error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	total := h.Count()
	if total == 0 {
		return 0, 0, ErrNoSamples
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0, h.smallest, nil
			}
			return h.bucketUpper(i - 1), h.bucketUpper(i), nil
		}
	}
	return h.Max(), h.Max(), nil
}

// EachBucket calls fn for every non-empty bucket in ascending value
// order with the bucket's exclusive upper bound and its count. Bucket 0
// covers [0, smallest).
func (h *Histogram) EachBucket(fn func(upper float64, count int64)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		fn(h.bucketUpper(i), c)
	}
}

// CumulativeCount reports how many recorded observations the bucketing
// places at or below v: the count of every bucket whose range ends at
// or before v's bucket. It is the integer-valued companion of CDF.
func (h *Histogram) CumulativeCount(v float64) int64 {
	idx := h.bucketIndex(v)
	var cum int64
	for i, c := range h.counts {
		if i > idx {
			break
		}
		cum += c
	}
	return cum
}

// Scale multiplies every bucket count (and the moment count) by k >= 1,
// as if each recorded observation had been seen k times. It is the
// Horvitz–Thompson estimator for a uniformly 1-in-k sampled stream:
// each sample stands for k population observations, so inflating the
// counts recovers unbiased estimates of the population's count, CDF and
// quantiles (quantiles are count-rank statistics, so unequal per-bucket
// weighting — the bias this corrects — would otherwise skew them
// whenever the scrape mixes sampled and unsampled sources).
func (h *Histogram) Scale(k int64) {
	if k <= 1 {
		return
	}
	for i := range h.counts {
		h.counts[i] *= k
	}
	h.moments.Scale(k)
}

// Clone returns an independent copy of h; mutating either afterwards
// leaves the other untouched.
func (h *Histogram) Clone() *Histogram {
	dup := *h
	dup.counts = make([]int64, len(h.counts))
	copy(dup.counts, h.counts)
	return &dup
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
