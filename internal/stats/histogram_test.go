package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("empty histogram count %d", h.Count())
	}
	if _, err := h.Quantile(0.5); err != ErrNoSamples {
		t.Fatalf("quantile of empty histogram: err = %v, want ErrNoSamples", err)
	}
}

func TestHistogramInvalidParams(t *testing.T) {
	if _, err := NewHistogramWith(0, 1.5); err == nil {
		t.Error("smallest=0 accepted")
	}
	if _, err := NewHistogramWith(1e-9, 1.0); err == nil {
		t.Error("growth=1 accepted")
	}
	if _, err := NewHistogramWith(-1, 0.5); err == nil {
		t.Error("negative params accepted")
	}
}

func TestHistogramQuantileArgRange(t *testing.T) {
	h := NewHistogram()
	h.Record(1)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := h.Quantile(q); err == nil {
			t.Errorf("quantile(%v) accepted", q)
		}
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(0.001)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.MustQuantile(q)
		if !almostEqual(got, 0.001, 0.02) {
			t.Errorf("quantile(%v) = %v, want ~0.001", q, got)
		}
	}
	if h.Mean() != 0.001 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Uniform values over [1ms, 100ms]: the p-quantile should be within a
	// few percent of the exact empirical quantile.
	rng := rand.New(rand.NewPCG(7, 7))
	h := NewHistogram()
	var raw []float64
	for i := 0; i < 50000; i++ {
		v := 0.001 + 0.099*rng.Float64()
		raw = append(raw, v)
		h.Record(v)
	}
	sort.Float64s(raw)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := raw[int(q*float64(len(raw)-1))]
		got := h.MustQuantile(q)
		if !almostEqual(got, exact, 0.03) {
			t.Errorf("q=%v: got %v, exact %v", q, got, exact)
		}
	}
}

func TestHistogramExponentialTail(t *testing.T) {
	// Exponential(rate 1e4): p99 should be near ln(100)/1e4 = 460µs.
	rng := rand.New(rand.NewPCG(3, 9))
	h := NewHistogram()
	for i := 0; i < 200000; i++ {
		h.Record(rng.ExpFloat64() / 1e4)
	}
	want := math.Log(100) / 1e4
	got := h.MustQuantile(0.99)
	if !almostEqual(got, want, 0.05) {
		t.Errorf("p99 = %v, want ~%v", got, want)
	}
}

func TestHistogramNegativeAndNaN(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	h.Record(math.NaN())
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if got := h.MustQuantile(1); got != 0 {
		t.Errorf("max quantile = %v, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	all := NewHistogram()
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < 10000; i++ {
		v := rng.ExpFloat64() / 5e4
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if !almostEqual(a.MustQuantile(q), all.MustQuantile(q), 1e-9) {
			t.Errorf("q=%v: merged %v != direct %v", q, a.MustQuantile(q), all.MustQuantile(q))
		}
	}
}

func TestHistogramMergeIncompatible(t *testing.T) {
	a := NewHistogram()
	b, err := NewHistogramWith(1e-6, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Error("merge of incompatible histograms accepted")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merge nil: %v", err)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0.001, 0.002, 0.003, 0.004} {
		h.Record(v)
	}
	if got := h.CDF(0.0025); !almostEqual(got, 0.5, 0.01) {
		t.Errorf("CDF(0.0025) = %v, want 0.5", got)
	}
	if got := h.CDF(1); got != 1 {
		t.Errorf("CDF(1) = %v, want 1", got)
	}
	if got := h.CDF(1e-12); got != 0 {
		t.Errorf("CDF(~0) = %v, want 0", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(1)
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(2) // still usable
	if h.Count() != 1 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestHistogramQuantilesBatch(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(float64(i) / 1000)
	}
	out, err := h.Quantiles([]float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(out) {
		t.Errorf("batch quantiles not monotone: %v", out)
	}
	if _, err := h.Quantiles([]float64{0.9, 0.1}); err == nil {
		t.Error("unsorted quantile request accepted")
	}
}

// Property: quantiles are monotone in q and bounded by [Min, Max].
func TestHistogramPropertyQuantileMonotone(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		h := NewHistogram()
		count := int(n)%200 + 1
		for i := 0; i < count; i++ {
			h.Record(rng.ExpFloat64() / 1e3)
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.MustQuantile(q)
			if v < prev-1e-12 {
				return false
			}
			if v < h.Min()-1e-12 || v > h.Max()+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CDF is monotone non-decreasing.
func TestHistogramPropertyCDFMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		h := NewHistogram()
		for i := 0; i < 100; i++ {
			h.Record(rng.Float64())
		}
		prev := 0.0
		for x := 0.0; x < 1.2; x += 0.01 {
			c := h.CDF(x)
			if c < prev {
				return false
			}
			prev = c
		}
		return prev == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExpectedMax(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 100000; i++ {
		h.Record(rng.ExpFloat64() / 1e3)
	}
	// E[max of N exp(µ)] = H_N/µ ≈ (ln N + γ)/µ; the quantile approximation
	// gives ln(N+1)/µ. Both should agree within ~10%.
	got, err := ExpectedMax(h, 150)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(151) / 1e3
	if !almostEqual(got, want, 0.1) {
		t.Errorf("expected max = %v, want ~%v", got, want)
	}
	if _, err := ExpectedMax(h, 0); err == nil {
		t.Error("ExpectedMax(0) accepted")
	}
}

func TestMaxOrderQuantile(t *testing.T) {
	tests := []struct {
		give int64
		want float64
	}{
		{1, 0.5},
		{9, 0.9},
		{99, 0.99},
	}
	for _, tt := range tests {
		got, err := MaxOrderQuantile(tt.give)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("MaxOrderQuantile(%d) = %v, want %v", tt.give, got, tt.want)
		}
	}
	if _, err := MaxOrderQuantile(-1); err == nil {
		t.Error("negative n accepted")
	}
}

// TestHistogramMergeQuantileRoundTrip splits one sample stream across
// several histograms, merges them back, and requires every quantile of
// the merged histogram to agree with a single histogram that saw the
// whole stream — within bucket resolution, i.e. exactly, because both
// place each observation in the same bucket.
func TestHistogramMergeQuantileRoundTrip(t *testing.T) {
	whole := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	rng := rand.New(rand.NewPCG(17, 23))
	for i := 0; i < 60000; i++ {
		v := rng.ExpFloat64() / 1e4
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	merged := NewHistogram()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		mv := merged.MustQuantile(q)
		wv := whole.MustQuantile(q)
		// Same buckets, same counts: midpoints must match bit-for-bit,
		// and both must land inside the whole histogram's bucket bounds.
		if mv != wv {
			t.Errorf("q=%v: merged %v, whole %v", q, mv, wv)
		}
		lo, hi, err := whole.QuantileBounds(q)
		if err != nil {
			t.Fatal(err)
		}
		// The reported value is clamped to observed min/max, so allow
		// the interval check to widen by that clamp.
		lo = math.Min(lo, whole.Min())
		hi = math.Max(hi, whole.Max())
		if mv < lo || mv > hi {
			t.Errorf("q=%v: merged quantile %v outside bucket bounds [%v, %v]", q, mv, lo, hi)
		}
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	if _, _, err := h.QuantileBounds(0.5); err != ErrNoSamples {
		t.Fatalf("empty QuantileBounds err = %v, want ErrNoSamples", err)
	}
	if _, _, err := h.QuantileBounds(1.5); err == nil {
		t.Fatal("QuantileBounds(1.5) accepted")
	}
	h.Record(1e-3)
	lo, hi, err := h.QuantileBounds(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= 1e-3 && 1e-3 < hi) {
		t.Errorf("bounds [%v, %v) do not contain 1e-3", lo, hi)
	}
	// ~1% bucket resolution: the interval must be tight.
	if hi/lo > 1.03 {
		t.Errorf("bucket [%v, %v) wider than growth factor", lo, hi)
	}
	h.Record(0) // bucket 0 reports [0, smallest)
	lo, hi, err = h.QuantileBounds(0)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != defaultSmallest {
		t.Errorf("bucket-0 bounds [%v, %v), want [0, %v)", lo, hi, defaultSmallest)
	}
}

func TestHistogramEachBucketAndCumulative(t *testing.T) {
	h := NewHistogram()
	vals := []float64{1e-6, 1e-6, 5e-4, 2e-2}
	for _, v := range vals {
		h.Record(v)
	}
	var total int64
	last := -1.0
	h.EachBucket(func(upper float64, count int64) {
		if upper <= last {
			t.Errorf("bucket uppers not ascending: %v after %v", upper, last)
		}
		last = upper
		if count <= 0 {
			t.Errorf("EachBucket emitted empty bucket at %v", upper)
		}
		total += count
	})
	if total != int64(len(vals)) {
		t.Errorf("EachBucket total %d, want %d", total, len(vals))
	}
	if got := h.CumulativeCount(1e-5); got != 2 {
		t.Errorf("CumulativeCount(1e-5) = %d, want 2", got)
	}
	if got := h.CumulativeCount(1); got != int64(len(vals)) {
		t.Errorf("CumulativeCount(1) = %d, want %d", got, len(vals))
	}
	// CumulativeCount and CDF must agree on the same bucketing.
	for _, v := range []float64{0, 1e-6, 1e-4, 1e-1} {
		want := h.CDF(v) * float64(h.Count())
		if got := float64(h.CumulativeCount(v)); got != want {
			t.Errorf("CumulativeCount(%v) = %v, CDF says %v", v, got, want)
		}
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(float64(i) * 1e-5)
	}
	c := h.Clone()
	if c.Count() != h.Count() || c.MustQuantile(0.5) != h.MustQuantile(0.5) {
		t.Fatal("clone does not match original")
	}
	c.Record(10)
	if c.Count() == h.Count() || h.Max() == 10 {
		t.Error("mutating clone leaked into original")
	}
}
