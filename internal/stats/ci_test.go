package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNormQuantileKnownValues(t *testing.T) {
	tests := []struct {
		give float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.84134, 1.0},
	}
	for _, tt := range tests {
		got := normQuantile(tt.give)
		if !almostEqual(got, tt.want, 1e-3) {
			t.Errorf("normQuantile(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("edge quantiles should be infinite")
	}
}

func TestNormQuantileInvertsCDF(t *testing.T) {
	for p := 0.001; p < 1; p += 0.037 {
		x := normQuantile(p)
		if !almostEqual(NormCDF(x), p, 1e-6) {
			t.Errorf("CDF(quantile(%v)) = %v", p, NormCDF(x))
		}
	}
}

func TestZQuantile(t *testing.T) {
	if got := zQuantile(0.95); !almostEqual(got, 1.96, 1e-2) {
		t.Errorf("z(0.95) = %v", got)
	}
	if got := zQuantile(0.99); !almostEqual(got, 2.576, 1e-2) {
		t.Errorf("z(0.99) = %v", got)
	}
	if zQuantile(0) != 0 || zQuantile(1) != 0 {
		t.Error("invalid levels should give 0")
	}
}

func TestMeanCICoverage(t *testing.T) {
	// Over many resamples of a known-mean population, the 95% CI should
	// contain the true mean roughly 95% of the time.
	rng := rand.New(rand.NewPCG(21, 22))
	const trueMean = 10.0
	hits, trials := 0, 400
	for i := 0; i < trials; i++ {
		var m Moments
		for j := 0; j < 200; j++ {
			m.Add(trueMean + rng.NormFloat64()*4)
		}
		if MeanCI(&m, 0.95).Contains(trueMean) {
			hits++
		}
	}
	rate := float64(hits) / float64(trials)
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("CI coverage = %v, want ~0.95", rate)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Point: 5, Lo: 4, Hi: 6, Level: 0.95}
	if iv.Width() != 2 {
		t.Errorf("width = %v", iv.Width())
	}
	if !iv.Contains(4) || !iv.Contains(6) || iv.Contains(3.9) {
		t.Error("contains semantics wrong")
	}
	if iv.String() == "" {
		t.Error("empty String()")
	}
}

func TestMeanCISingleSample(t *testing.T) {
	var m Moments
	m.Add(3)
	iv := MeanCI(&m, 0.95)
	if iv.Lo != 3 || iv.Hi != 3 {
		t.Errorf("single-sample CI should collapse: %v", iv)
	}
}

func TestKneeFindsCliff(t *testing.T) {
	// y = 1/(1-x): the kneedle knee of this curve on (0, 0.99) is in the
	// 0.7-0.9 range (where growth turns explosive).
	var xs, ys []float64
	for x := 0.01; x <= 0.99; x += 0.01 {
		xs = append(xs, x)
		ys = append(ys, 1/(1-x))
	}
	knee, err := Knee(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if knee < 0.6 || knee > 0.95 {
		t.Errorf("knee = %v, want in [0.6, 0.95]", knee)
	}
}

func TestKneeErrors(t *testing.T) {
	if _, err := Knee([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Knee([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few points accepted")
	}
	if _, err := Knee([]float64{1, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("non-increasing xs accepted")
	}
	if _, err := Knee([]float64{1, 2, 3}, []float64{5, 5, 5}); err == nil {
		t.Error("flat curve accepted")
	}
}
