package stats

import (
	"fmt"
	"math"
)

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point float64
	Lo    float64
	Hi    float64
	Level float64 // confidence level, e.g. 0.95
}

// String renders the interval like the paper's Table 3, e.g.
// "867µs [855µs, 879µs]" when formatted by the caller; here plain numbers.
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g [%.6g, %.6g] @%g%%", iv.Point, iv.Lo, iv.Hi, iv.Level*100)
}

// Width reports Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies inside the interval (inclusive).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// MeanCI computes a normal-approximation confidence interval for the mean
// of the observations accumulated in m. With fewer than 2 samples the
// interval collapses to the point estimate.
func MeanCI(m *Moments, level float64) Interval {
	point := m.Mean()
	z := zQuantile(level)
	half := z * m.StdErr()
	return Interval{Point: point, Lo: point - half, Hi: point + half, Level: level}
}

// HistMeanCI computes the same normal-approximation interval for the
// mean of the observations recorded in a histogram (which tracks exact
// streaming moments alongside its buckets).
func HistMeanCI(h *Histogram, level float64) Interval {
	point := h.Mean()
	var se float64
	if n := h.Count(); n > 0 {
		se = h.StdDev() / math.Sqrt(float64(n))
	}
	half := zQuantile(level) * se
	return Interval{Point: point, Lo: point - half, Hi: point + half, Level: level}
}

// zQuantile returns the two-sided standard-normal critical value for the
// given confidence level (e.g. 0.95 -> 1.96).
func zQuantile(level float64) float64 {
	if level <= 0 || level >= 1 {
		return 0
	}
	p := 1 - (1-level)/2
	return normQuantile(p)
}

// normQuantile inverts the standard normal CDF using the
// Beasley–Springer–Moro / Acklam rational approximation (relative error
// below 1.15e-9 over the full domain).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// NormCDF evaluates the standard normal cumulative distribution.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
