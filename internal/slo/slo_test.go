package slo

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"memqlat/internal/telemetry"
)

// expQuantiles builds the predicted StageStats of an exponential stage
// with the given mean, matching the model plane's expStage helper.
func expQuantiles(mean float64) telemetry.StageStats {
	return telemetry.StageStats{
		Count: 1,
		Mean:  mean,
		P50:   -math.Log(0.5) * mean,
		P95:   -math.Log(0.05) * mean,
		P99:   -math.Log(0.01) * mean,
		Total: mean,
	}
}

// pointQuantiles builds a point-mass prediction (the closed-form mean).
func pointQuantiles(v float64) telemetry.StageStats {
	return telemetry.StageStats{Count: 1, Mean: v, P50: v, P95: v, P99: v, Total: v}
}

func testConfig() Config {
	return Config{
		Window: 0.25,
		K:      2,
		Band:   2,
		Predicted: telemetry.Breakdown{
			telemetry.StageMissPenalty: expQuantiles(2e-3),
			telemetry.StageQueueWait:   pointQuantiles(500e-6),
			telemetry.StageService:     pointQuantiles(500e-6),
		},
		MinSamples: 10,
	}
}

// feed records n in-band miss-penalty samples around the predicted
// exponential distribution.
func feedStage(w *Watchdog, stage telemetry.Stage, n int, scale float64, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		w.Observe(stage, rng.ExpFloat64()*2e-3*scale)
	}
}

func TestNewWatchdogValidation(t *testing.T) {
	if _, err := NewWatchdog(Config{Window: -1}); err == nil {
		t.Errorf("negative window: want error")
	}
	if _, err := NewWatchdog(Config{K: -2}); err == nil {
		t.Errorf("negative k: want error")
	}
	if _, err := NewWatchdog(Config{Band: 0.5}); err == nil {
		t.Errorf("band <= 1: want error")
	}
	if _, err := NewWatchdog(Config{RelativeError: 0.9}); err == nil {
		t.Errorf("bad alpha: want error")
	}
}

func TestDriftDetectionAndAttribution(t *testing.T) {
	var alerts strings.Builder
	cfg := testConfig()
	cfg.AlertWriter = &alerts
	w, err := NewWatchdog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Window() != 0.25 {
		t.Fatalf("Window() = %v, want 0.25", w.Window())
	}

	// Pre-arm observations are dropped.
	w.Observe(telemetry.StageMissPenalty, 1)
	w.Arm()
	if !w.Armed() {
		t.Fatal("Armed() = false after Arm")
	}

	rng := rand.New(rand.NewSource(1))
	// Windows 0-1: on-model. Windows 2+: miss penalty shifted 6x up.
	now := 0.0
	for win := 0; win < 6; win++ {
		scale := 1.0
		if win >= 2 {
			scale = 6
		}
		feedStage(w, telemetry.StageMissPenalty, 200, scale, rng)
		feedStage(w, telemetry.StageQueueWait, 200, 0.25, rng) // median ~0.35ms, in band
		now += 0.25
		w.Advance(now)
	}
	st := w.Status()
	if st.WindowsClosed != 6 {
		t.Fatalf("windows closed = %d, want 6", st.WindowsClosed)
	}
	// Fault hits window 2; K=2 means the alert fires when window 3 closes.
	if got := st.FirstDriftWindow("miss_penalty"); got != 3 {
		t.Fatalf("first drift window = %d, want 3", got)
	}
	if st.TopDrift != "miss_penalty" {
		t.Fatalf("top drift = %q, want miss_penalty", st.TopDrift)
	}
	if st.DriftAlerts != 1 {
		t.Fatalf("drift alerts = %d, want exactly 1 (episode de-dup)", st.DriftAlerts)
	}
	line := alerts.String()
	if !strings.Contains(line, "slo alert kind=drift") || !strings.Contains(line, "stage=miss_penalty") {
		t.Fatalf("alert line %q missing kind/stage", line)
	}
	var row *StageStatus
	for i := range st.Stages {
		if st.Stages[i].Stage == "miss_penalty" {
			row = &st.Stages[i]
		}
	}
	if row == nil || !row.Drifting || row.Magnitude < 3 {
		t.Fatalf("miss_penalty row = %+v, want drifting with magnitude >~6", row)
	}
	if row.Predicted == nil || row.BandHigh <= row.BandLow {
		t.Fatalf("miss_penalty band missing: %+v", row)
	}

	// Recovery: two on-model windows clear the streak and re-arm the
	// episode alert.
	for win := 0; win < 2; win++ {
		feedStage(w, telemetry.StageMissPenalty, 200, 1, rng)
		now += 0.25
		w.Advance(now)
	}
	st = w.Status()
	if st.TopDrift != "" {
		t.Fatalf("top drift after recovery = %q, want empty", st.TopDrift)
	}
	// Second episode fires a second alert.
	for win := 0; win < 2; win++ {
		feedStage(w, telemetry.StageMissPenalty, 200, 6, rng)
		now += 0.25
		w.Advance(now)
	}
	if st = w.Status(); st.DriftAlerts != 2 {
		t.Fatalf("drift alerts after second episode = %d, want 2", st.DriftAlerts)
	}
}

func TestPointMassBandJudgesMedianOnly(t *testing.T) {
	w, err := NewWatchdog(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	w.Arm()
	// Service prediction is a 500µs point mass. Exponential service
	// observations have p99 ≈ 4.6x the mean — far outside a 2x band —
	// but the median (~0.69x) is inside, so no drift may fire.
	rng := rand.New(rand.NewSource(2))
	now := 0.0
	for win := 0; win < 4; win++ {
		for i := 0; i < 200; i++ {
			w.Observe(telemetry.StageService, rng.ExpFloat64()*500e-6)
		}
		now += 0.25
		w.Advance(now)
	}
	if st := w.Status(); st.DriftAlerts != 0 || st.TopDrift != "" {
		t.Fatalf("point-mass service stage drifted: %+v", st)
	}
}

func TestMinSamplesKeepsStreak(t *testing.T) {
	cfg := testConfig()
	w, err := NewWatchdog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Arm()
	rng := rand.New(rand.NewSource(3))
	// One out-of-band window, then an empty window, then another
	// out-of-band window: the streak must survive the quiet window and
	// the alert fires on the second evaluated violation.
	feedStage(w, telemetry.StageMissPenalty, 100, 8, rng)
	w.Advance(0.25)
	w.Advance(0.50) // empty window: below MinSamples
	feedStage(w, telemetry.StageMissPenalty, 100, 8, rng)
	w.Advance(0.75)
	st := w.Status()
	if got := st.FirstDriftWindow("miss_penalty"); got != 2 {
		t.Fatalf("first drift window = %d, want 2 (streak kept across quiet window)", got)
	}
}

func TestBurnRateAlerting(t *testing.T) {
	var alerts strings.Builder
	cfg := testConfig()
	cfg.Target = 10e-3
	cfg.Budget = 0.01
	cfg.Burn = 5
	cfg.ShortWindows = 2
	cfg.LongWindows = 4
	cfg.AlertWriter = &alerts
	w, err := NewWatchdog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Arm()
	now := 0.0
	// Healthy windows: nothing above target.
	for win := 0; win < 4; win++ {
		for i := 0; i < 100; i++ {
			w.OnLatency(1e-3)
		}
		now += 0.25
		w.Advance(now)
	}
	if st := w.Status(); st.BurnActive || st.BurnAlerts != 0 {
		t.Fatalf("healthy burn state: %+v", st)
	}
	// Burning windows: 50%% above target = burn rate 50x budget.
	for win := 0; win < 4; win++ {
		for i := 0; i < 100; i++ {
			lat := 1e-3
			if i%2 == 0 {
				lat = 20e-3
			}
			w.OnLatency(lat)
		}
		now += 0.25
		w.Advance(now)
	}
	st := w.Status()
	if !st.BurnActive || st.BurnAlerts != 1 {
		t.Fatalf("burn state after violation: active=%v alerts=%d short=%.1f long=%.1f",
			st.BurnActive, st.BurnAlerts, st.BurnShort, st.BurnLong)
	}
	if st.BurnShort < cfg.Burn || st.BurnLong < cfg.Burn {
		t.Fatalf("burn rates %.1f/%.1f below threshold %v", st.BurnShort, st.BurnLong, cfg.Burn)
	}
	if !strings.Contains(alerts.String(), "slo alert kind=burn") {
		t.Fatalf("burn alert line missing from %q", alerts.String())
	}
	// Recovery clears the alert latch.
	for win := 0; win < 6; win++ {
		for i := 0; i < 100; i++ {
			w.OnLatency(1e-3)
		}
		now += 0.25
		w.Advance(now)
	}
	if st = w.Status(); st.BurnActive {
		t.Fatalf("burn still active after recovery: short=%.1f long=%.1f", st.BurnShort, st.BurnLong)
	}
}

func TestShardHandlesAndSimObserver(t *testing.T) {
	w, err := NewWatchdog(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	w.Arm()
	var rec telemetry.Recorder = w
	sh := telemetry.Shard(rec, 5)
	for i := 0; i < 50; i++ {
		sh.Observe(telemetry.StageMissPenalty, 2e-3)
		sh.Observe(telemetry.Stage(999), 1) // out of range: dropped
	}
	// Sim-observer path: BeginRequest advances the virtual clock,
	// RequestTotal records end-to-end latency.
	w.BeginRequest(0.1)
	w.RequestTotal(0.26, 3e-3)
	st := w.Status()
	if st.WindowsClosed != 1 {
		t.Fatalf("windows closed = %d, want 1 (virtual clock advanced past 0.25)", st.WindowsClosed)
	}
	for _, row := range st.Stages {
		if row.Stage == "miss_penalty" && row.Count != 50 {
			t.Fatalf("sharded observations lost: count=%d, want 50", row.Count)
		}
	}
}

func TestFlushClosesPartialWindow(t *testing.T) {
	w, err := NewWatchdog(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Flush before Arm is a no-op.
	w.Flush()
	w.Arm()
	rng := rand.New(rand.NewSource(4))
	feedStage(w, telemetry.StageMissPenalty, 100, 1, rng)
	if st := w.Status(); st.WindowsClosed != 0 {
		t.Fatalf("windows closed before flush = %d, want 0", st.WindowsClosed)
	}
	w.Flush()
	st := w.Status()
	if st.WindowsClosed != 1 {
		t.Fatalf("windows closed after flush = %d, want 1", st.WindowsClosed)
	}
	for _, row := range st.Stages {
		if row.Stage == "miss_penalty" && row.Count != 100 {
			t.Fatalf("flushed window count = %d, want 100", row.Count)
		}
	}
}

func TestAdvanceIgnoresBogusClock(t *testing.T) {
	w, err := NewWatchdog(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	w.Arm()
	w.Advance(math.Inf(-1)) // fault.Clock before Start
	w.Advance(math.NaN())
	w.Advance(-5)
	if st := w.Status(); st.WindowsClosed != 0 {
		t.Fatalf("bogus clocks closed %d windows", st.WindowsClosed)
	}
}

func TestServeHTTP(t *testing.T) {
	w, err := NewWatchdog(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	w.Arm()
	rng := rand.New(rand.NewSource(5))
	for win := 0; win < 3; win++ {
		feedStage(w, telemetry.StageMissPenalty, 100, 8, rng)
		w.Advance(float64(win+1) * 0.25)
	}
	rec := httptest.NewRecorder()
	w.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/watch", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("unmarshal /debug/watch: %v", err)
	}
	if st.TopDrift != "miss_penalty" || len(st.Alerts) == 0 {
		t.Fatalf("served status: top=%q alerts=%d", st.TopDrift, len(st.Alerts))
	}
	if st.FirstDriftWindow("nope") != -1 {
		t.Fatalf("FirstDriftWindow for unknown stage should be -1")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, m, err := ParseSpec(
		"window=250ms,k=3,band=2.5,target=5ms,budget=0.002,burn=8,short=2,long=6,alpha=0.02,min-samples=30," +
			"lambda=2000,mus=2000,mud=500,q=0.1,xi=1,miss=0.2,n=10")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Window != 0.25 || cfg.K != 3 || cfg.Band != 2.5 || cfg.Target != 5e-3 ||
		cfg.Budget != 0.002 || cfg.Burn != 8 || cfg.ShortWindows != 2 || cfg.LongWindows != 6 ||
		cfg.RelativeError != 0.02 || cfg.MinSamples != 30 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if m.Lambda != 2000 || m.MuS != 2000 || m.MuD != 500 || m.Q != 0.1 || m.Xi != 1 ||
		m.Miss != 0.2 || m.N != 10 {
		t.Fatalf("model = %+v", m)
	}
	// Bare-seconds durations.
	cfg, _, err = ParseSpec("window=0.5,target=0.01")
	if err != nil || cfg.Window != 0.5 || cfg.Target != 0.01 {
		t.Fatalf("bare seconds: cfg=%+v err=%v", cfg, err)
	}
	// Empty spec is valid (all defaults).
	if _, _, err := ParseSpec("  "); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{"window", "nope=1", "k=abc", "window=xyz"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
}

// BenchmarkWatchdogTick is benchdiff-gated in BENCH_slo.json: one
// window close over a realistically loaded watchdog (three active
// stages plus the end-to-end sketch).
func BenchmarkWatchdogTick(b *testing.B) {
	cfg := testConfig()
	cfg.Target = 5e-3
	w, err := NewWatchdog(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w.Arm()
	rng := rand.New(rand.NewSource(6))
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 50; j++ {
			w.Observe(telemetry.StageMissPenalty, rng.ExpFloat64()*2e-3)
			w.Observe(telemetry.StageQueueWait, rng.ExpFloat64()*200e-6)
			w.Observe(telemetry.StageService, rng.ExpFloat64()*500e-6)
			w.OnLatency(rng.ExpFloat64() * 3e-3)
		}
		now += 0.25
		w.Advance(now)
	}
}
