package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Quantiles is a p50/p95/p99 triple in seconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Alert is one fired watchdog alert: a stage drifting out of its
// model band ("drift") or the error budget burning too fast ("burn").
type Alert struct {
	Kind      string     `json:"kind"`
	Window    int64      `json:"window"`
	Stage     string     `json:"stage,omitempty"`
	Streak    int        `json:"streak,omitempty"`
	Magnitude float64    `json:"magnitude,omitempty"`
	Observed  *Quantiles `json:"observed,omitempty"`
	Predicted *Quantiles `json:"predicted,omitempty"`
	BurnShort float64    `json:"burn_short,omitempty"`
	BurnLong  float64    `json:"burn_long,omitempty"`
}

// Line renders the alert as the stable one-line format smoke tests
// grep from server/bench output.
func (a Alert) Line(cfg Config) string {
	switch a.Kind {
	case "drift":
		return fmt.Sprintf(
			"slo alert kind=drift window=%d stage=%s streak=%d magnitude=%.2f observed_p50=%.3g predicted_p50=%.3g observed_p99=%.3g predicted_p99=%.3g band=%.2f",
			a.Window, a.Stage, a.Streak, a.Magnitude,
			a.Observed.P50, a.Predicted.P50, a.Observed.P99, a.Predicted.P99, cfg.Band)
	case "burn":
		return fmt.Sprintf(
			"slo alert kind=burn window=%d short=%.2f long=%.2f target=%.3g budget=%.3g",
			a.Window, a.BurnShort, a.BurnLong, cfg.Target, cfg.Budget)
	default:
		return fmt.Sprintf("slo alert kind=%s window=%d", a.Kind, a.Window)
	}
}

// StageStatus is one stage's row in Status: the model band, the last
// evaluated window's observations, and the drift bookkeeping.
type StageStatus struct {
	Stage string `json:"stage"`
	// Predicted is nil for stages the model scenario does not produce.
	Predicted *Quantiles `json:"predicted,omitempty"`
	// BandLow/BandHigh bound the p50 band ([predicted/band,
	// predicted·band]); only upward exits alert.
	BandLow  float64   `json:"band_low,omitempty"`
	BandHigh float64   `json:"band_high,omitempty"`
	Observed Quantiles `json:"observed"`
	Count    int64     `json:"count"`
	Streak   int       `json:"streak"`
	Drifting bool      `json:"drifting"`
	// Magnitude is the worst observed/predicted ratio of the last
	// evaluated window (1 ≈ on-model).
	Magnitude float64 `json:"magnitude"`
}

// Status is the watchdog's full observable state: what /debug/watch
// serves and what Result.SLO carries back from a plane run.
type Status struct {
	Armed         bool          `json:"armed"`
	WindowSeconds float64       `json:"window_seconds"`
	K             int           `json:"k"`
	Band          float64       `json:"band"`
	WindowsClosed int64         `json:"windows_closed"`
	Stages        []StageStatus `json:"stages"`
	// TopDrift names the highest-magnitude currently-drifting stage —
	// the watchdog's attribution of which stage moved ("" when quiet).
	TopDrift    string  `json:"top_drift,omitempty"`
	Target      float64 `json:"target,omitempty"`
	Budget      float64 `json:"budget,omitempty"`
	BurnShort   float64 `json:"burn_short"`
	BurnLong    float64 `json:"burn_long"`
	BurnActive  bool    `json:"burn_active"`
	DriftAlerts int64   `json:"drift_alerts"`
	BurnAlerts  int64   `json:"burn_alerts"`
	Alerts      []Alert `json:"alerts,omitempty"`
}

// Status snapshots the watchdog's current state.
func (w *Watchdog) Status() *Status {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := &Status{
		Armed:         w.armed.Load(),
		WindowSeconds: w.cfg.Window,
		K:             w.cfg.K,
		Band:          w.cfg.Band,
		WindowsClosed: w.windowsClosed,
		TopDrift:      w.topDrift,
		Target:        w.cfg.Target,
		Budget:        w.cfg.Budget,
		BurnShort:     w.burnShort,
		BurnLong:      w.burnLong,
		BurnActive:    w.burnActive,
		DriftAlerts:   w.driftAlerts,
		BurnAlerts:    w.burnAlerts,
		Alerts:        append([]Alert(nil), w.alerts...),
	}
	for _, ss := range w.stages {
		if ss == nil {
			continue
		}
		row := StageStatus{
			Stage: ss.stage.String(),
			Observed: Quantiles{
				P50: ss.lastObs[0], P95: ss.lastObs[1], P99: ss.lastObs[2],
			},
			Count:     ss.lastCount,
			Streak:    ss.streak,
			Drifting:  ss.drifting,
			Magnitude: ss.magnitude,
		}
		if ss.hasBand {
			row.Predicted = &Quantiles{P50: ss.pred[0], P95: ss.pred[1], P99: ss.pred[2]}
			row.BandLow = ss.pred[0] / w.cfg.Band
			row.BandHigh = ss.pred[0] * w.cfg.Band
		}
		st.Stages = append(st.Stages, row)
	}
	return st
}

// FirstDriftWindow returns the window index of the first drift alert
// for the named stage, or -1 when none fired. Experiments use it to
// measure detection latency.
func (s *Status) FirstDriftWindow(stage string) int64 {
	for _, a := range s.Alerts {
		if a.Kind == "drift" && a.Stage == stage {
			return a.Window
		}
	}
	return -1
}

// ServeHTTP implements the /debug/watch admin endpoint: the Status as
// JSON.
func (w *Watchdog) ServeHTTP(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	_ = enc.Encode(w.Status())
}
