package slo

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Model carries the queueing parameters a standalone binary's -slo spec
// supplies so it can compute Theorem-1 bands without a harness-built
// scenario: the per-process arrival rate λ, service rates µ_S/µ_D, the
// utilization shape (q, ξ), the miss ratio δ and the request batch
// size N. Lambda > 0 marks the model as present.
type Model struct {
	Lambda float64
	MuS    float64
	MuD    float64
	Q      float64
	Xi     float64
	Miss   float64
	N      int
}

// ParseSpec parses a -slo flag value: comma-separated key=value pairs.
//
// Detector keys: window (duration), k (int), band (float), target
// (duration), budget (float), burn (float), short/long (windows),
// alpha (float), min-samples (int). Durations accept Go syntax
// ("250ms") or bare seconds ("0.25").
//
// Model keys (for binaries that are not already running a scenario):
// lambda, mus, mud, q, xi, miss, n.
//
// The returned Config has no Predicted breakdown yet — the caller
// anchors it (plane.PredictedBands or equivalent) before NewWatchdog.
func ParseSpec(spec string) (Config, Model, error) {
	var cfg Config
	var m Model
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, m, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, m, fmt.Errorf("slo: spec %q: %q is not key=value", spec, part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "window":
			cfg.Window, err = parseSeconds(val)
		case "k":
			cfg.K, err = strconv.Atoi(val)
		case "band":
			cfg.Band, err = strconv.ParseFloat(val, 64)
		case "target":
			cfg.Target, err = parseSeconds(val)
		case "budget":
			cfg.Budget, err = strconv.ParseFloat(val, 64)
		case "burn":
			cfg.Burn, err = strconv.ParseFloat(val, 64)
		case "short":
			cfg.ShortWindows, err = strconv.Atoi(val)
		case "long":
			cfg.LongWindows, err = strconv.Atoi(val)
		case "alpha":
			cfg.RelativeError, err = strconv.ParseFloat(val, 64)
		case "min-samples", "minsamples":
			var n int
			n, err = strconv.Atoi(val)
			cfg.MinSamples = int64(n)
		case "lambda":
			m.Lambda, err = strconv.ParseFloat(val, 64)
		case "mus":
			m.MuS, err = strconv.ParseFloat(val, 64)
		case "mud":
			m.MuD, err = strconv.ParseFloat(val, 64)
		case "q":
			m.Q, err = strconv.ParseFloat(val, 64)
		case "xi":
			m.Xi, err = strconv.ParseFloat(val, 64)
		case "miss":
			m.Miss, err = strconv.ParseFloat(val, 64)
		case "n":
			m.N, err = strconv.Atoi(val)
		default:
			return cfg, m, fmt.Errorf("slo: spec %q: unknown key %q", spec, key)
		}
		if err != nil {
			return cfg, m, fmt.Errorf("slo: spec %q: key %q: %v", spec, key, err)
		}
	}
	return cfg, m, nil
}

// parseSeconds accepts a Go duration ("250ms") or bare seconds
// ("0.25"), matching the fault-schedule grammar.
func parseSeconds(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is neither a duration nor seconds", s)
	}
	return v, nil
}
