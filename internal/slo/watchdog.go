// Package slo implements the model-anchored SLO watchdog: a rolling-
// window drift detector that compares observed per-stage latency
// quantiles against the band the paper's Theorem 1 predicts for the
// running scenario, attributes drift to the stage that moved, and
// drives multi-window burn-rate alerting against an error budget.
//
// The watchdog is a telemetry.Recorder (and Sharder), so it tees into
// the exact observation stream the planes already produce: every stage
// observation lands in a per-stage streaming quantile sketch
// (internal/sketch; zero-alloc Record). At each window boundary —
// real time on the live plane, virtual time on the simulator — the
// sketches are snapshotted, reset, and the frozen window is judged:
//
//   - A stage drifts when an observed quantile exceeds its predicted
//     value by more than the band factor for K consecutive evaluated
//     windows. Only upward exits alert (latency regressions); the lower
//     band edge is reported for context but running faster than the
//     model predicts is not a failure. Stages whose model prediction is
//     a point mass (the closed-form mean, e.g. queue_wait) are judged
//     on their median only; stages with a full predicted distribution
//     (exponential tiers like miss_penalty) are judged on p50/p95/p99.
//   - Drifting stages are ranked by magnitude (max observed/predicted
//     ratio), so the top-ranked stage attributes *which* part of the
//     latency budget moved — the predictor signal the model-driven
//     autoscaler roadmap item consumes.
//   - End-to-end request latencies feed a burn-rate alert: the fraction
//     of requests above Target per window, averaged over a short and a
//     long window ring and divided by Budget. Both rates exceeding the
//     Burn threshold fires the alert (multi-window, à la error-budget
//     alerting), which keeps one noisy window from paging.
//
// The package deliberately does not import internal/plane: the caller
// hands in the predicted telemetry.Breakdown (see plane.PredictedBands)
// so the plane package can embed a watchdog without an import cycle.
package slo

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"memqlat/internal/sketch"
	"memqlat/internal/telemetry"
)

// quantile labels in evaluation order; pred/obs triples index alike.
var qlabels = [3]string{"p50", "p95", "p99"}

var qprobs = [3]float64{0.5, 0.95, 0.99}

// Config parameterizes a Watchdog. The zero value of every field picks
// a sensible default (see withDefaults); Predicted is the one input a
// useful watchdog needs.
type Config struct {
	// Window is the rolling-window length in seconds (default 0.25).
	Window float64
	// K is how many consecutive out-of-band windows a stage needs
	// before it is flagged as drifting (default 2).
	K int
	// Band is the multiplicative tolerance around the predicted
	// quantiles: observed > predicted·Band exits the band (default 2).
	Band float64
	// Target is the end-to-end latency SLO target in seconds; requests
	// above it burn error budget. 0 disables burn-rate alerting.
	Target float64
	// Budget is the allowed fraction of requests above Target
	// (default 1e-3).
	Budget float64
	// Burn is the burn-rate alert threshold: alert when both the short
	// and long window burn rates reach it (default 10).
	Burn float64
	// ShortWindows / LongWindows size the two burn-rate rings in
	// windows (defaults 4 and 16).
	ShortWindows int
	LongWindows  int
	// RelativeError is the sketch accuracy α (default 0.01).
	RelativeError float64
	// MinSamples is the per-stage observation floor below which a
	// window is not evaluated for that stage — the drift streak is
	// kept, not reset, so a stalled tier cannot launder its drift by
	// going quiet (default 20).
	MinSamples int64
	// Predicted anchors the bands: the Theorem-1 per-stage breakdown
	// of the running scenario (plane.PredictedBands). Stages with no
	// predicted observations get no band and never drift.
	Predicted telemetry.Breakdown
	// AlertWriter, when non-nil, receives one "slo alert ..." line per
	// fired alert — the machine-parseable surface smoke tests grep.
	AlertWriter io.Writer
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 0.25
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.Band == 0 {
		c.Band = 2
	}
	if c.Budget == 0 {
		c.Budget = 1e-3
	}
	if c.Burn == 0 {
		c.Burn = 10
	}
	if c.ShortWindows == 0 {
		c.ShortWindows = 4
	}
	if c.LongWindows == 0 {
		c.LongWindows = 16
	}
	if c.RelativeError == 0 {
		c.RelativeError = 0.01
	}
	if c.MinSamples == 0 {
		c.MinSamples = 20
	}
	return c
}

// stageState is the per-stage half of the watchdog: the live window
// sketch plus the drift bookkeeping the evaluator updates at window
// boundaries (under Watchdog.mu).
type stageState struct {
	stage     telemetry.Stage
	sk        *sketch.Sketch
	pred      [3]float64
	hasBand   bool
	pointMass bool
	lastObs   [3]float64
	lastCount int64
	streak    int
	drifting  bool
	magnitude float64
	alerted   bool
}

// Watchdog is the model-anchored drift detector. Construct with
// NewWatchdog, tee it into a telemetry chain, Arm it when the measured
// phase starts, and Advance it with the plane's clock.
type Watchdog struct {
	cfg    Config
	armed  atomic.Bool
	stages []*stageState // indexed by int(telemetry.Stage); nil gaps allowed
	total  *sketch.Sketch
	shards [8]shardRec

	// next is the index of the oldest unclosed window; Advance's fast
	// path reads it without taking mu.
	next atomic.Int64

	mu            sync.Mutex
	windowsClosed int64
	shortRing     []float64
	longRing      []float64
	burnShort     float64
	burnLong      float64
	burnActive    bool
	burnAlerted   bool
	topDrift      string
	alerts        []Alert
	driftAlerts   int64
	burnAlerts    int64
}

// NewWatchdog constructs a watchdog from cfg. Stages present in
// cfg.Predicted with at least one predicted observation are banded;
// every telemetry stage is sketched regardless so /debug/watch shows
// the full observed decomposition.
func NewWatchdog(cfg Config) (*Watchdog, error) {
	cfg = cfg.withDefaults()
	if !(cfg.Window > 0) {
		return nil, fmt.Errorf("slo: window %v must be positive", cfg.Window)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("slo: k %d must be >= 1", cfg.K)
	}
	if !(cfg.Band > 1) {
		return nil, fmt.Errorf("slo: band factor %v must exceed 1", cfg.Band)
	}
	maxStage := 0
	for _, st := range telemetry.Stages() {
		if int(st) > maxStage {
			maxStage = int(st)
		}
	}
	w := &Watchdog{cfg: cfg, stages: make([]*stageState, maxStage+1)}
	for _, st := range telemetry.Stages() {
		sk, err := sketch.New(sketch.Options{RelativeError: cfg.RelativeError})
		if err != nil {
			return nil, err
		}
		ss := &stageState{stage: st, sk: sk}
		if p, ok := cfg.Predicted[st]; ok && p.Count > 0 {
			ss.pred = [3]float64{p.P50, p.P95, p.P99}
			ss.hasBand = ss.pred[0] > 0 || ss.pred[1] > 0 || ss.pred[2] > 0
			ss.pointMass = p.P50 == p.P95 && p.P95 == p.P99
		}
		w.stages[int(st)] = ss
	}
	tot, err := sketch.New(sketch.Options{RelativeError: cfg.RelativeError})
	if err != nil {
		return nil, err
	}
	w.total = tot
	for i := range w.shards {
		w.shards[i] = shardRec{w: w, hint: uint64(i)}
	}
	return w, nil
}

// Window reports the configured window length in seconds.
func (w *Watchdog) Window() float64 { return w.cfg.Window }

// Arm starts accepting observations. Before Arm every Observe is
// dropped, so warm-up traffic (cache population) cannot pollute the
// first window.
func (w *Watchdog) Arm() { w.armed.Store(true) }

// Armed reports whether the watchdog is accepting observations.
func (w *Watchdog) Armed() bool { return w.armed.Load() }

// Observe implements telemetry.Recorder (stripe 0). Hot paths obtain a
// striped handle via Shard.
func (w *Watchdog) Observe(stage telemetry.Stage, seconds float64) {
	if !w.armed.Load() {
		return
	}
	i := int(stage)
	if i < 0 || i >= len(w.stages) || w.stages[i] == nil {
		return
	}
	w.stages[i].sk.Record(seconds)
}

// Shard implements telemetry.Sharder. The handles are preallocated, so
// sharding a watchdog never allocates.
func (w *Watchdog) Shard(hint uint64) telemetry.Recorder {
	return &w.shards[hint&uint64(len(w.shards)-1)]
}

type shardRec struct {
	w    *Watchdog
	hint uint64
}

func (r *shardRec) Observe(stage telemetry.Stage, seconds float64) {
	w := r.w
	if !w.armed.Load() {
		return
	}
	i := int(stage)
	if i < 0 || i >= len(w.stages) || w.stages[i] == nil {
		return
	}
	w.stages[i].sk.Stripe(r.hint).Record(seconds)
}

// OnLatency records one end-to-end request latency for burn-rate
// accounting (the loadgen's per-request hook on the live plane).
func (w *Watchdog) OnLatency(seconds float64) {
	if !w.armed.Load() {
		return
	}
	w.total.Record(seconds)
}

// BeginRequest and RequestTotal implement the simulator's request
// observer: the virtual timeline drives the window clock, making the
// detector's firing window a deterministic function of the run seed.
func (w *Watchdog) BeginRequest(now float64) { w.Advance(now) }

// RequestTotal records a simulated request's end-to-end latency at
// virtual time now.
func (w *Watchdog) RequestTotal(now, total float64) {
	w.Advance(now)
	if w.armed.Load() {
		w.total.Record(total)
	}
}

// Advance closes every rolling window that ended before now (seconds
// since the run clock started). The fast path — no window boundary
// crossed — is a single atomic load, so the simulator can call it once
// per request.
func (w *Watchdog) Advance(now float64) {
	if !w.armed.Load() || !(now >= 0) {
		return
	}
	target := int64(math.Floor(now / w.cfg.Window))
	if target <= w.next.Load() {
		return
	}
	w.mu.Lock()
	for w.next.Load() < target {
		w.closeWindowLocked(w.next.Load())
		w.next.Add(1)
	}
	w.mu.Unlock()
}

// Flush closes the in-progress partial window, so short runs still get
// their trailing observations judged. Call once at the end of a run.
func (w *Watchdog) Flush() {
	if !w.armed.Load() {
		return
	}
	w.mu.Lock()
	w.closeWindowLocked(w.next.Load())
	w.next.Add(1)
	w.mu.Unlock()
}

// closeWindowLocked snapshots and resets every sketch, judges the
// frozen window idx, and fires any alerts. Caller holds w.mu.
func (w *Watchdog) closeWindowLocked(idx int64) {
	w.windowsClosed++
	var drifting []*stageState
	for _, ss := range w.stages {
		if ss == nil {
			continue
		}
		snap := ss.sk.Snapshot()
		ss.sk.Reset()
		ss.lastCount = snap.Count()
		if snap.Count() >= w.cfg.MinSamples {
			obs := [3]float64{}
			for j, q := range qprobs {
				obs[j] = snap.Quantile(q)
			}
			ss.lastObs = obs
			if ss.hasBand {
				out := false
				mag := 0.0
				for j, p := range ss.pred {
					if p <= 0 || (ss.pointMass && j > 0) {
						continue
					}
					if r := obs[j] / p; r > mag {
						mag = r
					}
					if obs[j] > p*w.cfg.Band {
						out = true
					}
				}
				ss.magnitude = mag
				if out {
					ss.streak++
				} else {
					ss.streak = 0
					ss.alerted = false
				}
			}
		}
		// Below MinSamples the window is not evidence either way: the
		// streak is kept, so a tier that stalls outright (and stops
		// reporting) stays flagged.
		ss.drifting = ss.hasBand && ss.streak >= w.cfg.K
		if ss.drifting {
			drifting = append(drifting, ss)
		}
	}
	sort.Slice(drifting, func(i, j int) bool { return drifting[i].magnitude > drifting[j].magnitude })
	w.topDrift = ""
	if len(drifting) > 0 {
		w.topDrift = drifting[0].stage.String()
	}
	for _, ss := range drifting {
		if ss.alerted {
			continue
		}
		ss.alerted = true
		w.driftAlerts++
		a := Alert{
			Kind:      "drift",
			Window:    idx,
			Stage:     ss.stage.String(),
			Streak:    ss.streak,
			Magnitude: ss.magnitude,
			Observed:  &Quantiles{P50: ss.lastObs[0], P95: ss.lastObs[1], P99: ss.lastObs[2]},
			Predicted: &Quantiles{P50: ss.pred[0], P95: ss.pred[1], P99: ss.pred[2]},
		}
		w.pushAlertLocked(a)
	}

	// Burn-rate accounting over the end-to-end latency sketch.
	tsnap := w.total.Snapshot()
	w.total.Reset()
	frac := 0.0
	if w.cfg.Target > 0 && tsnap.Count() > 0 {
		frac = tsnap.FractionAbove(w.cfg.Target)
	}
	w.shortRing = pushRing(w.shortRing, frac, w.cfg.ShortWindows)
	w.longRing = pushRing(w.longRing, frac, w.cfg.LongWindows)
	w.burnShort = ringMean(w.shortRing) / w.cfg.Budget
	w.burnLong = ringMean(w.longRing) / w.cfg.Budget
	w.burnActive = w.cfg.Target > 0 && w.burnShort >= w.cfg.Burn && w.burnLong >= w.cfg.Burn
	if w.burnActive {
		if !w.burnAlerted {
			w.burnAlerted = true
			w.burnAlerts++
			w.pushAlertLocked(Alert{
				Kind:      "burn",
				Window:    idx,
				BurnShort: w.burnShort,
				BurnLong:  w.burnLong,
			})
		}
	} else {
		w.burnAlerted = false
	}
}

// maxAlerts bounds the retained alert history (oldest dropped).
const maxAlerts = 128

func (w *Watchdog) pushAlertLocked(a Alert) {
	if len(w.alerts) >= maxAlerts {
		copy(w.alerts, w.alerts[1:])
		w.alerts = w.alerts[:len(w.alerts)-1]
	}
	w.alerts = append(w.alerts, a)
	if w.cfg.AlertWriter != nil {
		fmt.Fprintln(w.cfg.AlertWriter, a.Line(w.cfg))
	}
}

func pushRing(ring []float64, v float64, size int) []float64 {
	ring = append(ring, v)
	if len(ring) > size {
		copy(ring, ring[len(ring)-size:])
		ring = ring[:size]
	}
	return ring
}

func ringMean(ring []float64) float64 {
	if len(ring) == 0 {
		return 0
	}
	var s float64
	for _, v := range ring {
		s += v
	}
	return s / float64(len(ring))
}
