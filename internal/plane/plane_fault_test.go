package plane

import (
	"context"
	"testing"
	"time"

	"memqlat/internal/fault"
	"memqlat/internal/telemetry"
)

func faultScenario(t *testing.T, spec string, res fault.Resilience) Scenario {
	t.Helper()
	sched, err := fault.ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	sched.Seed = 7
	return Scenario{
		Name:          "fault",
		N:             10,
		LoadRatios:    []float64{0.5, 0.5},
		TotalKeyRate:  4000,
		Q:             0.1,
		Xi:            0.15,
		MuS:           2000,
		MuD:           1000,
		Ops:           600,
		Requests:      600,
		KeysPerServer: 30000,
		Workers:       16,
		Duration:      30 * time.Second,
		Seed:          3,
		Faults:        sched,
		Resilience:    res,
	}
}

// TestFaultCrossPlaneInjectedSequence is the acceptance check for the
// shared-schedule design: the injector the SimPlane builds and the one
// the LivePlane builds (same Schedule, same server count) must make the
// identical per-target decision sequence, regardless of when each
// target is consulted or how queries to different targets interleave —
// because decisions are a pure hash of (seed, rule, target, per-target
// op counter), never of time or global order.
func TestFaultCrossPlaneInjectedSequence(t *testing.T) {
	sched, err := fault.ParseSchedule("drop:srv=all,p=0.4,delay=1ms;slow:srv=1,p=0.5,delay=200us")
	if err != nil {
		t.Fatal(err)
	}
	sched.Seed = 99
	simInj, err := fault.NewInjector(sched, 2)
	if err != nil {
		t.Fatal(err)
	}
	liveInj, err := fault.NewInjector(sched, 2)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 500
	// Sim walk: virtual time, strictly per-target (server 0 first, then
	// server 1), regular spacing.
	var simSeq [2][]fault.Action
	for target := 0; target < 2; target++ {
		for i := 0; i < ops; i++ {
			simSeq[target] = append(simSeq[target], simInj.At(target, float64(i)*1e-4))
		}
	}
	// Live walk: wall-clock-like irregular times, targets interleaved the
	// way concurrent workers would hit them.
	var liveSeq [2][]fault.Action
	for i := 0; i < ops; i++ {
		now := float64(i)*3.3e-5 + float64(i%7)*1e-6
		liveSeq[1] = append(liveSeq[1], liveInj.At(1, now))
		liveSeq[0] = append(liveSeq[0], liveInj.At(0, now))
	}
	for target := 0; target < 2; target++ {
		for i := range simSeq[target] {
			if simSeq[target][i] != liveSeq[target][i] {
				t.Fatalf("server %d op %d: sim injected %+v, live injected %+v",
					target, i, simSeq[target][i], liveSeq[target][i])
			}
		}
	}
}

// TestFaultSimPlaneDegrades: the composition plane under a reset fault
// reports failures that the healthy run does not.
func TestFaultSimPlaneDegrades(t *testing.T) {
	s := faultScenario(t, "reset:srv=0", fault.Resilience{})
	res, err := SimPlane{}.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.FailedKeys == 0 || res.Sim.DegradedRequests == 0 {
		t.Fatalf("faulted sim plane reported no failures: %+v", res.Sim)
	}
	healthy := s
	healthy.Faults = fault.Schedule{}
	hres, err := SimPlane{}.Run(context.Background(), healthy)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Sim.FailedKeys != 0 {
		t.Fatalf("healthy sim plane reported %d failed keys", hres.Sim.FailedKeys)
	}
}

// TestFaultLivePlaneSameSchedule runs the LIVE TCP stack under the same
// reset schedule the sim test uses: every command on server 0 tears the
// connection down, so ~half the single-key gets must error while the
// healthy half keeps answering — the live realization of the degraded
// behavior the simulator predicts.
func TestFaultLivePlaneSameSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane needs real time")
	}
	s := faultScenario(t, "reset:srv=0", fault.Resilience{})
	res, err := LivePlane{}.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	lg := res.Live
	if lg.Errors == 0 {
		t.Fatal("live plane under reset:srv=0 reported no errors")
	}
	if lg.Hits == 0 {
		t.Fatal("live plane under reset:srv=0 lost the healthy server too")
	}
	// Balanced hashing puts ~half the keyspace on the dead server; allow
	// wide slack for the key distribution.
	frac := float64(lg.Errors) / float64(lg.Issued)
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("error fraction %.2f, want roughly the dead server's key share", frac)
	}
}

// TestFaultLivePlaneBreakerSheds: with the circuit breaker on, the same
// live fault turns slow transport errors into fast breaker sheds,
// visible both in the loadgen counters and the telemetry stage.
func TestFaultLivePlaneBreakerSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane needs real time")
	}
	s := faultScenario(t, "reset:srv=0", fault.Resilience{
		BreakerThreshold: 0.5,
		BreakerWindow:    4,
		BreakerCooldown:  0.05,
	})
	res, err := LivePlane{}.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Live.Shed == 0 {
		t.Fatal("breaker never shed under a 100% reset fault")
	}
	if res.Breakdown.MeanOf(telemetry.StageBreakerShed) < 0 ||
		res.Breakdown[telemetry.StageBreakerShed].Count == 0 {
		t.Error("no StageBreakerShed telemetry from the live plane")
	}
}
