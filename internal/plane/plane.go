// Package plane unifies the repo's three evaluation paths — the
// analytical model (internal/core), the simulator (internal/sim) and
// the live TCP stack (internal/server + internal/loadgen) — behind one
// interface. A Scenario describes a deployment/workload in the paper's
// terms (Table 1) plus measurement effort; a Plane runs it and returns
// a Result whose shape is identical across planes: latency bounds, the
// TN/TS/TD decomposition of Theorem 1, and the per-stage telemetry
// Breakdown (queue wait, service, miss penalty, fork-join overhead).
//
// The paper's whole evaluation is a cross-validation exercise — the
// same scenario judged by algebra, by simulation, and by measurement.
// Making that a first-class operation ("run these Scenarios on these
// Planes and diff") is what lets every table/figure runner, the CLIs,
// and future workloads compare planes for free.
package plane

import (
	"context"
	"fmt"
	"os"
	"time"

	"memqlat/internal/backend"
	"memqlat/internal/coalesce"
	"memqlat/internal/core"
	"memqlat/internal/fault"
	"memqlat/internal/loadgen"
	"memqlat/internal/otrace"
	"memqlat/internal/proxy"
	"memqlat/internal/sim"
	"memqlat/internal/slo"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
	"memqlat/internal/tenant"
)

// ProxySpec interposes the proxy tier (internal/proxy) between the
// clients and the servers of a Scenario. The model and simulator planes
// price the proxy as one extra GI^X/M/1 stage in series: a single
// queue receiving the aggregate key rate Λ at service rate Rate, whose
// per-request contribution is the fork-join max over the request's N
// keys — exactly the Theorem 1 treatment of the memcached stage. The
// live plane interposes a real TCP proxy and points the client at it.
type ProxySpec struct {
	// Rate is the proxy's per-key service rate µ_P (default MuS × M: one
	// proxy fronting M servers runs at the per-server utilization).
	Rate float64
	// Policy is the route policy ("direct", "failover", "replicate";
	// default direct). The model plane prices every policy identically —
	// routing does not change the queueing structure; the composition
	// simulator realizes "replicate" as hedged reads; the live plane
	// runs the policy for real.
	Policy string
	// Replicas is the replication degree under "replicate" (default 2).
	Replicas int
}

// Scenario is one deployment + workload + measurement budget, the unit
// of cross-plane comparison. Rates are per second, times in seconds.
type Scenario struct {
	// Name labels the scenario in reports (e.g. "facebook", "fig5 q=0.3").
	Name string

	// N is the number of Memcached keys per end-user request.
	N int
	// LoadRatios is the load split {p_j} over the M servers (must be
	// non-negative, summing to 1). The live plane spreads keys with
	// consistent hashing, so it realizes a balanced split; unbalanced
	// scenarios are the model/simulator's domain.
	LoadRatios []float64
	// TotalKeyRate is Λ, the aggregate key arrival rate.
	TotalKeyRate float64
	// Q is the concurrent probability (geometric batch sizes).
	Q float64
	// Xi is the burst degree of the Generalized Pareto gaps.
	Xi float64
	// MuS is the per-key Memcached service rate.
	MuS float64
	// MissRatio is r, the per-key cache miss probability.
	MissRatio float64
	// MuD is the database service rate.
	MuD float64
	// NetworkLatency is the constant per-key network latency T_N.
	NetworkLatency float64
	// Arrival optionally overrides the batch inter-arrival family
	// (default: Generalized Pareto with shape Xi). Model and simulator
	// planes honor it; the live plane's pacer is GPareto-only.
	Arrival core.ArrivalFactory

	// Faults is the shared fault schedule. The simulator planes evaluate
	// it in virtual time; the live plane injects the same rules in wall
	// time (a shared fault.Clock starts when the load does), so both
	// planes see the identical deterministic per-rule decision sequence.
	// The model plane ignores it — Theorem 1 has no failure modes, which
	// is exactly the gap the faulted planes measure.
	Faults fault.Schedule
	// Resilience configures the recovery policies (retries, hedging,
	// circuit breaking) the measured planes apply. Zero value = none.
	Resilience fault.Resilience

	// Requests is the number of end-user requests to measure
	// (simulator planes; default 4000).
	Requests int
	// KeysPerServer sizes the per-server key streams of the
	// composition simulator (default 120000).
	KeysPerServer int
	// Ops is the number of key operations the live plane issues
	// (default 2000 — real-time pacing bounds the live rate).
	Ops int
	// Workers bounds the live plane's in-flight operations (default 32).
	Workers int
	// Duration caps the live run's wall time (default 2 minutes).
	Duration time.Duration
	// Seed roots all randomness, making model/sim runs deterministic.
	Seed uint64

	// Proxy, when non-nil, interposes the proxy tier on every plane.
	Proxy *ProxySpec

	// Tenants, when non-empty, arms the multi-tenant QoS layer (which
	// lives at the proxy, so Proxy must be set too). Each spec's Share
	// is its slice of the offered load Λ; its bucket decides how much
	// of that slice is admitted. The model plane prices each tenant's
	// admitted rate as its own arrival stream into the shared stages
	// (Λ' = Σ_t admitted_t replaces Λ, so the victim tenants' Theorem-1
	// band is computable with the aggressor's excess shed out of λ);
	// the composition sim draws per-request tenants from the Share mix
	// and runs the same token buckets on virtual time; the live plane
	// runs the real limiter at the proxy under a tenant-mixed loadgen.
	Tenants []tenant.Spec

	// Coalesce turns on single-flight miss coalescing on every plane:
	// the live client's GetThrough single-flights its backend fills,
	// the composition sim gives misses key identities with per-key
	// in-flight windows, and the model prices the delayed-hit stage
	// (coalesce_wait = residual Exp(µ_D) wait) in its breakdown. Off
	// keeps the naive one-fetch-per-miss path everywhere.
	Coalesce bool
	// Keys sizes the keyspace the live load generator (and the sim's
	// coalesced miss draw) samples from (default 2000).
	Keys int
	// ZipfS skews key popularity by a Zipf(s) law on the live and sim
	// planes (0 = uniform). Hot keys are what give coalescing windows
	// to collapse.
	ZipfS float64
	// FillTTL is the live plane's write-back TTL for filled misses
	// (0 = never expires). Short TTLs keep a hot key re-missing, which
	// the hot-key experiment uses to sustain a miss stream.
	FillTTL time.Duration
	// DBQueueDepth, when > 0, runs the live backend in single-queue
	// mode with this backlog bound, so hot-key miss storms surface as
	// queue-depth high-watermarks and ErrOverloaded drops. 0 keeps the
	// concurrent backend (the paper's ρ_D ≈ 0 stage).
	DBQueueDepth int

	// ValueDist selects the live plane's per-key value-size law
	// (loadgen.ValueDistFixed or loadgen.ValueDistLogNormal; "" =
	// fixed). The lognormal keeps the fixed law's 100-byte mean — the
	// tier sizing assumes it — but gives the disk tier mixed object
	// sizes. ValueSigma is its shape (0 = loadgen's default). The
	// model and sim planes ignore both: they price service stages,
	// not payloads.
	ValueDist  string
	ValueSigma float64

	// Extstore, when non-nil, adds a log-structured SSD cache tier
	// behind the RAM tier on every plane. All three planes derive the
	// tier split from the same miss-ratio curve (see ExtstoreSpec and
	// ExtstoreSplit): the model blends the miss-stage service rate and
	// prices a disk_read breakdown stage, the composition simulator
	// draws per-miss disk reads with the predicted hit fraction, and
	// the live plane runs real segment files in a temp dir behind a
	// capacity-sized RAM cache.
	Extstore *ExtstoreSpec

	// ConnCore selects the live-plane servers' connection core
	// (server.CoreGoroutines by default; server.CoreEventLoop multiplexes
	// every connection onto a few epoll loops). Model and simulator
	// planes ignore it — connection handling is exactly the machinery
	// they abstract away.
	ConnCore string

	// SLO, when set, arms the model-anchored watchdog on the measured
	// planes. The live plane tees it into every tier's telemetry,
	// arms it when the run clock starts and advances its rolling
	// windows on a wall-clock ticker; the composition simulator
	// replays the same detector on the virtual request timeline, so a
	// given seed detects drift at an identical window index on every
	// run. The model plane ignores it (nothing executes). Anchor its
	// bands with PredictedBands before the run.
	SLO *slo.Watchdog

	// Tracer, when set, records request-scoped spans from every tier of
	// the measured planes: wall-clock spans across client, proxy, server
	// and backend on the live plane; virtual-time spans per composed
	// request on the simulator. The model plane ignores it (nothing
	// executes). Nil disables tracing at zero cost.
	Tracer *otrace.Tracer
}

// withDefaults fills measurement-budget zero values.
func (s Scenario) withDefaults() Scenario {
	if s.Requests == 0 {
		s.Requests = 4000
	}
	if s.KeysPerServer == 0 {
		s.KeysPerServer = 120000
	}
	if s.Ops == 0 {
		s.Ops = 2000
	}
	if s.Workers == 0 {
		s.Workers = 32
	}
	if s.Duration == 0 {
		s.Duration = 2 * time.Minute
	}
	if s.Keys == 0 {
		s.Keys = 2000
	}
	if s.ConnCore == "" {
		// CI matrixes the live plane over both connection cores by
		// exporting MEMQLAT_CONN_CORE; explicit scenarios still win.
		s.ConnCore = os.Getenv("MEMQLAT_CONN_CORE")
	}
	if s.Proxy != nil {
		p := *s.Proxy
		if p.Rate == 0 {
			p.Rate = s.MuS * float64(len(s.LoadRatios))
		}
		if p.Replicas == 0 {
			p.Replicas = 2
		}
		s.Proxy = &p
	}
	if s.Extstore != nil {
		e := s.Extstore.withDefaults()
		s.Extstore = &e
	}
	return s
}

// validateTenants checks the QoS side of a scenario: tenant specs must
// parse and the proxy tier must be present (admission lives there).
func (s Scenario) validateTenants() (*tenant.Limiter, error) {
	if len(s.Tenants) == 0 {
		return nil, nil
	}
	if s.Proxy == nil {
		return nil, fmt.Errorf("plane: scenario %q declares tenants but no proxy (QoS lives at the proxy tier)", s.Name)
	}
	l, err := tenant.New(s.Tenants)
	if err != nil {
		return nil, fmt.Errorf("plane: scenario %q: %w", s.Name, err)
	}
	return l, nil
}

// tenantRates prices the QoS layer the way every plane agrees on: each
// declared tenant offers Share_t × Λ; its bucket sustains
// admitted_t = min(offered_t, Rate_t) (gold and unlimited tenants pass
// through); Λ' = Σ_t admitted_t is the post-shedding aggregate rate the
// shared stages actually see.
func (s Scenario) tenantRates() (offered, admitted []float64, total float64) {
	shares := tenant.Shares(s.Tenants)
	offered = make([]float64, len(s.Tenants))
	admitted = make([]float64, len(s.Tenants))
	for i, sp := range s.Tenants {
		offered[i] = shares[i] * s.TotalKeyRate
		admitted[i] = sp.AdmittedRate(offered[i])
		total += admitted[i]
	}
	return offered, admitted, total
}

// admittedScenario returns the scenario with Λ replaced by the
// admitted Λ', which is what the shared GI^X/M/1 stages are priced at
// when QoS sheds traffic ahead of them. Without tenants it is the
// identity.
func (s Scenario) admittedScenario() Scenario {
	if len(s.Tenants) == 0 {
		return s
	}
	_, _, total := s.tenantRates()
	s.TotalKeyRate = total
	return s
}

// proxyConfig lowers the proxy stage to its own single-queue model
// configuration: the aggregate key stream Λ through one queue at rate
// µ_P, with the workload's batching (Q) and burstiness (Xi) intact —
// the proxy sees the union of the arrival processes the servers see.
// MissRatio is zero (the proxy always forwards, never touches the
// database); MuD is carried over only to satisfy validation.
func (s Scenario) proxyConfig() (*core.Config, error) {
	if s.Proxy == nil {
		return nil, fmt.Errorf("plane: scenario %q has no proxy spec", s.Name)
	}
	if _, err := proxy.ParsePolicy(s.Proxy.Policy); err != nil {
		return nil, fmt.Errorf("plane: scenario %q: %w", s.Name, err)
	}
	c := &core.Config{
		N:            s.N,
		LoadRatios:   []float64{1},
		TotalKeyRate: s.TotalKeyRate,
		Q:            s.Q,
		Xi:           s.Xi,
		MuS:          s.Proxy.Rate,
		MuD:          s.MuD,
		Arrival:      s.Arrival,
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("plane: scenario %q proxy stage: %w", s.Name, err)
	}
	return c, nil
}

// FromConfig lifts a model configuration into a Scenario.
func FromConfig(name string, c *core.Config) Scenario {
	return Scenario{
		Name:           name,
		N:              c.N,
		LoadRatios:     append([]float64(nil), c.LoadRatios...),
		TotalKeyRate:   c.TotalKeyRate,
		Q:              c.Q,
		Xi:             c.Xi,
		MuS:            c.MuS,
		MissRatio:      c.MissRatio,
		MuD:            c.MuD,
		NetworkLatency: c.NetworkLatency,
		Arrival:        c.Arrival,
	}
}

// Config lowers the Scenario to the model configuration all planes
// derive their parameters from.
func (s Scenario) Config() (*core.Config, error) {
	c := &core.Config{
		N:              s.N,
		LoadRatios:     s.LoadRatios,
		TotalKeyRate:   s.TotalKeyRate,
		Q:              s.Q,
		Xi:             s.Xi,
		MuS:            s.MuS,
		MissRatio:      s.MissRatio,
		MuD:            s.MuD,
		NetworkLatency: s.NetworkLatency,
		Arrival:        s.Arrival,
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("plane: scenario %q: %w", s.Name, err)
	}
	return c, nil
}

// Result is the plane-independent outcome of running one Scenario.
type Result struct {
	// Plane names the plane that produced the result.
	Plane string
	// Scenario echoes the input (post-defaulting).
	Scenario Scenario

	// Total bounds E[T(N)]: exact Theorem 1 bounds on the model plane,
	// a collapsed point estimate (Lo == Hi) on measured planes.
	Total core.Bounds
	// TN / TS / TD are the paper's stage decomposition: constant
	// network latency, Memcached stage bounds, database stage estimate.
	TN float64
	TS core.Bounds
	TD float64

	// Sample is the measured latency histogram (per composed request
	// on the simulator planes, per key on the live plane; nil on the
	// model plane).
	Sample *stats.Histogram
	// MeanCI is the 95% confidence interval on Sample's mean (zero
	// value on the model plane).
	MeanCI stats.Interval
	// Breakdown is the per-stage latency decomposition. Measured
	// planes populate it from telemetry; the model plane fills in the
	// stage means Theorem 1's ingredients predict.
	Breakdown telemetry.Breakdown
	// Elapsed is the wall time of the run.
	Elapsed time.Duration

	// Plane-specific detail for renderers that need more than the
	// common surface (per-server samples, hit counters, ...).
	Sim        *sim.RequestResult
	Integrated *sim.IntegratedResult
	Live       *loadgen.Result
	// Coalesce carries the live client's single-flight counters when
	// the scenario enables coalescing (nil otherwise; the simulator
	// reports its equivalents on Sim.BackendFetches/DelayedHits).
	Coalesce *coalesce.Stats
	// DB carries the live backend's counters — lookups (= backend
	// fetches) and, in single-queue mode, the queue-depth high-water
	// mark. Nil on the model and simulator planes.
	DB *backend.Stats
	// Tenants carries the per-tenant QoS outcome when the scenario
	// declares tenants (declaration order; empty otherwise).
	Tenants []TenantResult
	// SLO carries the watchdog's end-of-run status when the scenario
	// arms one: per-stage bands vs observed quantiles, drift streaks,
	// burn rates and the alert log (nil otherwise, and on the model
	// plane).
	SLO *slo.Status
	// Extstore carries the tiered-storage surface when the scenario
	// arms the SSD tier: the shared MRC prediction plus the plane's
	// measured disk-hit counters (nil otherwise).
	Extstore *ExtstoreResult
}

// TenantResult is one tenant's cross-plane surface: the model plane
// fills the analytic rates; measured planes add realized counters and
// the admitted-traffic latency histogram.
type TenantResult struct {
	// Name / Class echo the spec.
	Name  string
	Class string
	// Offered is the tenant's offered key rate λ_t = Share_t × Λ.
	Offered float64
	// Admitted is the post-bucket key rate the shared stages see: the
	// analytic min(λ_t, Rate_t) on the model plane, the realized rate
	// on measured planes.
	Admitted float64
	// Issued / Shed count keys on the measured planes (zero on model).
	Issued int64
	Shed   int64
	// Latency is the admitted-traffic latency histogram: per composed
	// request on the sim plane, per key op on the live plane; nil on
	// the model plane.
	Latency *stats.Histogram
}

// Point returns the scalar each plane nominates for cross-plane
// diffing: the midpoint of the Theorem 1 band on the model plane, the
// §4.5-estimator total on measured planes.
func (r *Result) Point() float64 { return r.Total.Mid() }

// Plane runs Scenarios. Implementations must be safe for reuse across
// runs (they hold no per-run state).
type Plane interface {
	// Name identifies the plane ("model", "sim", "sim-integrated",
	// "live").
	Name() string
	// Run evaluates the scenario. ctx bounds wall time (the model and
	// simulator planes complete in virtual time and only check for
	// early cancellation).
	Run(ctx context.Context, s Scenario) (*Result, error)
}

// Planes returns the default plane set in comparison order:
// model, simulator, live.
func Planes() []Plane {
	return []Plane{ModelPlane{}, SimPlane{}, LivePlane{}}
}

// ByName returns the named plane; it understands every Name() of the
// built-in planes plus "sim-integrated" for the event-driven simulator.
func ByName(name string) (Plane, error) {
	switch name {
	case "model":
		return ModelPlane{}, nil
	case "sim":
		return SimPlane{}, nil
	case "sim-integrated":
		return SimPlane{Mode: SimIntegrated}, nil
	case "live":
		return LivePlane{}, nil
	}
	return nil, fmt.Errorf("plane: unknown plane %q (known: model, sim, sim-integrated, live)", name)
}

// ci95 is the confidence level every measured plane reports.
const ci95 = 0.95
