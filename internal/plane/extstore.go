package plane

import (
	"fmt"
	"math"
	"strconv"

	"memqlat/internal/dist"
	"memqlat/internal/mrc"
	"memqlat/internal/telemetry"
)

// Disk service-time families the model and simulator planes can price
// for the extstore tier.
const (
	DiskDistExp       = "exp"
	DiskDistLogNormal = "lognormal"
)

// extstoreTraceStream is the rng sub-stream seeding the synthetic MRC
// trace, disjoint from the loadgen (1, 11–15, 2000+) and sim (101–108)
// streams so arming the tier never perturbs their draw sequences.
const extstoreTraceStream = 901

// ExtstoreSpec arms the log-structured SSD cache tier (internal/
// extstore) behind the RAM tier on every plane. The tier split — what
// fraction of RAM misses the disk absorbs — is not an input: all three
// planes derive it from the same miss-ratio curve, computed over a
// seeded synthetic trace of the scenario's own key popularity (Keys,
// ZipfS), evaluated at the two capacity points RAMItems and TotalItems
// (mrc.Curve.Split). The model plane prices the miss stage at the
// blended service rate 1/µ' = β/µ_disk + (1−β)/µ_D; the composition
// simulator draws per-miss disk reads with probability β; the live
// plane runs real segment files in a temp dir and must realize β
// within measurement error.
//
// Scenario.MissRatio stays exogenous, as everywhere else in the model:
// for a coherent tiered scenario set it to the MRC's RAM miss ratio
// (1 − Split().RAMHit), which is what the live plane's capacity-sized
// cache realizes on its own.
type ExtstoreSpec struct {
	// RAMItems is the RAM tier's capacity in items across the cluster.
	RAMItems int
	// TotalItems is the combined RAM+SSD capacity in items; the SSD
	// budget is the difference.
	TotalItems int
	// MuDisk is the disk read service rate µ_disk (mean read 1/µ_disk)
	// the model and simulator planes price. The live plane ignores it —
	// its disk reads cost whatever the filesystem charges.
	MuDisk float64
	// DiskDist selects the simulated disk service-time family:
	// DiskDistExp (default) or DiskDistLogNormal (mean preserved at
	// 1/µ_disk, shape DiskSigma).
	DiskDist string
	// DiskSigma is the lognormal shape parameter (default 0.5).
	DiskSigma float64
	// TraceLen sizes the synthetic MRC trace (default 50000 accesses).
	TraceLen int
}

// withDefaults fills the spec's zero values.
func (e ExtstoreSpec) withDefaults() ExtstoreSpec {
	if e.DiskDist == "" {
		e.DiskDist = DiskDistExp
	}
	if e.DiskSigma == 0 {
		e.DiskSigma = 0.5
	}
	if e.TraceLen == 0 {
		e.TraceLen = 50000
	}
	return e
}

// validate rejects specs no plane can realize.
func (e ExtstoreSpec) validate(name string) error {
	if e.RAMItems < 1 {
		return fmt.Errorf("plane: scenario %q: extstore RAMItems=%d must be >= 1", name, e.RAMItems)
	}
	if e.TotalItems <= e.RAMItems {
		return fmt.Errorf("plane: scenario %q: extstore TotalItems=%d must exceed RAMItems=%d (otherwise there is no SSD tier)",
			name, e.TotalItems, e.RAMItems)
	}
	if !(e.MuDisk > 0) {
		return fmt.Errorf("plane: scenario %q: extstore MuDisk=%v must be positive", name, e.MuDisk)
	}
	switch e.DiskDist {
	case DiskDistExp, DiskDistLogNormal:
	default:
		return fmt.Errorf("plane: scenario %q: extstore DiskDist=%q unknown (exp, lognormal)", name, e.DiskDist)
	}
	if !(e.DiskSigma > 0) {
		return fmt.Errorf("plane: scenario %q: extstore DiskSigma=%v must be positive", name, e.DiskSigma)
	}
	return nil
}

// ExtstoreSplit evaluates the scenario's miss-ratio curve at the two
// tier capacities, yielding the RAM-hit / disk-hit / DB-miss split
// every plane prices the SSD tier from. The trace is synthesized from
// the scenario's own key-popularity law — Zipf(ZipfS) over Keys keys
// (uniform when ZipfS = 0) on a seeded sub-stream — so the prediction
// and the live loadgen draw from the same law.
func (s Scenario) ExtstoreSplit() (mrc.TierSplit, error) {
	if s.Extstore == nil {
		return mrc.TierSplit{}, fmt.Errorf("plane: scenario %q has no extstore spec", s.Name)
	}
	e := s.Extstore.withDefaults()
	if err := e.validate(s.Name); err != nil {
		return mrc.TierSplit{}, err
	}
	keys := s.Keys
	if keys == 0 {
		keys = 2000
	}
	rng := dist.SubRand(s.Seed, extstoreTraceStream)
	draw := func() int { return rng.IntN(keys) }
	if s.ZipfS > 0 {
		z, err := dist.NewZipf(keys, s.ZipfS)
		if err != nil {
			return mrc.TierSplit{}, fmt.Errorf("plane: scenario %q: %w", s.Name, err)
		}
		draw = func() int { return z.SampleInt(rng) }
	}
	a := mrc.NewAnalyzer()
	for i := 0; i < e.TraceLen; i++ {
		a.Add("k" + strconv.Itoa(draw()))
	}
	curve, err := a.Curve()
	if err != nil {
		return mrc.TierSplit{}, fmt.Errorf("plane: scenario %q: %w", s.Name, err)
	}
	split, err := curve.Split(e.RAMItems, e.TotalItems)
	if err != nil {
		return mrc.TierSplit{}, fmt.Errorf("plane: scenario %q: %w", s.Name, err)
	}
	return split, nil
}

// ExtstoreResult is the tiered-storage surface of one run: the MRC
// prediction every plane shares plus whatever the plane measures.
type ExtstoreResult struct {
	// Predicted is the two-point MRC evaluation (RAM vs RAM+SSD) the
	// tier split was priced from — identical across planes for the same
	// scenario, which is what makes the measured counters diffable.
	Predicted mrc.TierSplit
	// DiskHits counts RAM misses the disk tier absorbed: real segment
	// reads on the live plane, β-coin draws on the simulator, zero on
	// the model plane (it prices rates, not counts).
	DiskHits int64
	// RAMMisses counts RAM-tier misses (the denominator of the realized
	// disk-hit fraction). Zero on the model plane.
	RAMMisses int64
	// Promotions counts disk hits re-inserted into RAM (live only).
	Promotions int64
	// SegmentBytes / Segments / Compactions / Drops snapshot the live
	// tier's physical state (zero on model and sim).
	SegmentBytes int64
	Segments     int
	Compactions  int64
	Drops        int64
}

// DiskHitFraction is the realized P{disk hit | RAM miss} — the number
// Predicted.DiskHitFraction() claims it should be.
func (e *ExtstoreResult) DiskHitFraction() float64 {
	if e.RAMMisses == 0 {
		return 0
	}
	return float64(e.DiskHits) / float64(e.RAMMisses)
}

// diskStage predicts the disk_read stage's distributional shape:
// exponential around 1/µ_disk by default; lognormal with the same mean
// (µ = ln(1/µ_disk) − σ²/2) when the spec selects it, with quantiles
// from the standard-normal points z₅₀=0, z₉₅=1.6449, z₉₉=2.3263.
func diskStage(e ExtstoreSpec) telemetry.StageStats {
	e = e.withDefaults()
	mean := 1 / e.MuDisk
	if e.DiskDist != DiskDistLogNormal {
		return expStage(mean)
	}
	sigma := e.DiskSigma
	mu := math.Log(mean) - sigma*sigma/2
	q := func(z float64) float64 { return math.Exp(mu + sigma*z) }
	return telemetry.StageStats{
		Count: 1, Mean: mean, Total: mean,
		P50: q(0), P95: q(1.6449), P99: q(2.3263),
	}
}
