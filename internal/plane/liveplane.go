package plane

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"time"

	"memqlat/internal/backend"
	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/coalesce"
	"memqlat/internal/core"
	"memqlat/internal/extstore"
	"memqlat/internal/fault"
	"memqlat/internal/loadgen"
	"memqlat/internal/mrc"
	"memqlat/internal/proxy"
	"memqlat/internal/server"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
)

// liveValueSize is the loadgen payload the live plane stores (the
// loadgen default, pinned here because the tier sizing below converts
// the spec's item budgets into byte budgets at this value size).
const liveValueSize = 100

// liveExtSegmentBytes keeps live-plane segments small so modest SSD
// budgets still roll across several segments (eviction granularity is
// a whole segment).
const liveExtSegmentBytes = 16 << 10

// liveTier sizes one server's share of a tiered scenario: a RAM cache
// holding ~RAMItems/M items and an extstore budget for the SSD share,
// both converted to bytes at the loadgen's key/value sizes.
func liveTier(s Scenario, m int) (cache.Options, extstore.Options) {
	e := s.Extstore
	keyLen := len("mq:" + strconv.Itoa(s.Keys-1))
	ramPer := (e.RAMItems + m - 1) / m
	diskPer := (e.TotalItems - e.RAMItems + m - 1) / m
	copts := cache.Options{
		// One shard: a sharded LRU partitions its budget per shard,
		// which blurs the item capacity this sizing is trying to pin.
		MaxBytes:    int64(ramPer) * cache.ItemCost(keyLen, liveValueSize),
		Shards:      1,
		MaxItemSize: 1024,
	}
	eopts := extstore.Options{
		SegmentBytes: liveExtSegmentBytes,
		// One segment of slack absorbs footers and the active segment's
		// unsealed tail.
		MaxBytes: int64(diskPer)*extstore.FrameCost(keyLen, liveValueSize) + liveExtSegmentBytes,
	}
	return copts, eopts
}

// LivePlane evaluates a Scenario on the real TCP stack: it brings up
// one shaped memcached server per load-ratio entry, a simulated
// database backend, a pooled client, and the mutilate-like load
// generator, all sharing a single telemetry collector so the measured
// Breakdown decomposes exactly like the model's and the simulator's.
//
// Real-time pacing cannot sustain the paper's 62.5 Kps per server on
// one machine, so live Scenarios use scaled rates; the Sample is
// per-key latency (keys spread by consistent hashing, which realizes a
// balanced load split).
type LivePlane struct {
	// PoolSize caps client connections per server (default: Workers).
	PoolSize int
}

// Name implements Plane.
func (LivePlane) Name() string { return "live" }

// Run implements Plane.
func (p LivePlane) Run(ctx context.Context, s Scenario) (*Result, error) {
	start := time.Now()
	s = s.withDefaults()
	model, err := s.Config()
	if err != nil {
		return nil, err
	}
	lim, err := s.validateTenants()
	if err != nil {
		return nil, err
	}
	collector := telemetry.NewCollector()
	// With a watchdog armed, every tier's stage observations tee into
	// its rolling-window sketches alongside the collector; the tee
	// preserves sharding, so hot-path recording stays lock-striped.
	var rec telemetry.Recorder = collector
	if s.SLO != nil {
		rec = telemetry.Tee(collector, s.SLO)
	}

	// --- faults ---
	// One injector shared by all servers and the backend, clocked from a
	// common epoch that starts when the load does — so populate runs
	// healthy and the wall-time fault windows line up with the schedule
	// the simulator evaluates in virtual time.
	var (
		clock fault.Clock
		inj   *fault.Injector
	)
	if !s.Faults.Empty() {
		inj, err = fault.NewInjector(s.Faults, model.M())
		if err != nil {
			return nil, err
		}
	}
	pointFor := func(target int) *fault.Point {
		if inj == nil {
			return nil
		}
		return &fault.Point{Inj: inj, Server: target, Now: clock.Now}
	}

	// --- tiered storage ---
	// The MRC prediction is computed up front (it is also the Result's
	// cross-plane surface); per-server stores live in temp dirs removed
	// AFTER the servers close (defer order matters: reads race Close).
	var (
		split   mrc.TierSplit
		exts    []*extstore.Store
		extDirs []string
		caches  []*cache.Cache
	)
	defer func() {
		for _, e := range exts {
			_ = e.Close()
		}
		for _, d := range extDirs {
			_ = os.RemoveAll(d)
		}
	}()
	if s.Extstore != nil {
		split, err = s.ExtstoreSplit()
		if err != nil {
			return nil, err
		}
	}

	// --- cluster ---
	addrs := make([]string, model.M())
	var servers []*server.Server
	defer func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
	}()
	for i := range addrs {
		copts := cache.Options{}
		var ext *extstore.Store
		if s.Extstore != nil {
			var eopts extstore.Options
			copts, eopts = liveTier(s, model.M())
			dir, err := os.MkdirTemp("", "memqlat-extstore-*")
			if err != nil {
				return nil, err
			}
			extDirs = append(extDirs, dir)
			eopts.Dir = dir
			ext, err = extstore.Open(eopts)
			if err != nil {
				return nil, err
			}
			exts = append(exts, ext)
		}
		c, err := cache.New(copts)
		if err != nil {
			return nil, err
		}
		caches = append(caches, c)
		srv, err := server.New(server.Options{
			Cache:       c,
			Extstore:    ext,
			ServiceRate: s.MuS,
			Seed:        s.Seed + uint64(i),
			Logger:      log.New(io.Discard, "", 0),
			Recorder:    rec,
			Fault:       pointFor(i),
			Tracer:      s.Tracer,
			ID:          i,
			ConnCore:    s.ConnCore,
		})
		if err != nil {
			return nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		servers = append(servers, srv)
		go func() { _ = srv.Serve(l) }()
	}
	dbOpts := backend.Options{
		MuD:      s.MuD,
		Seed:     s.Seed,
		Recorder: rec,
		Fault:    pointFor(fault.Database),
		Tracer:   s.Tracer,
	}
	if s.DBQueueDepth > 0 {
		// A bounded single-worker database makes hot-key herds visible:
		// without coalescing the herd stacks up in the queue (watch
		// QueuePeak), with it the backend sees ~1 fetch per miss window.
		dbOpts.Mode = backend.ModeSingleQueue
		dbOpts.QueueDepth = s.DBQueueDepth
	}
	db, err := backend.New(dbOpts)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	// --- proxy tier ---
	// With a ProxySpec the client talks to a single real proxy process
	// that multiplexes onto the server pool; it shares the telemetry
	// collector, so forward-path proxy work lands in StageProxyHop.
	clientAddrs := addrs
	if s.Proxy != nil {
		pol, err := proxy.ParsePolicy(s.Proxy.Policy)
		if err != nil {
			return nil, err
		}
		px, err := proxy.New(proxy.Options{
			Upstreams: addrs,
			Policy:    pol,
			Replicas:  s.Proxy.Replicas,
			Recorder:  rec,
			Logger:    log.New(io.Discard, "", 0),
			Tracer:    s.Tracer,
			// The QoS buckets meter on the shared run clock: -Inf until
			// clock.Start() fires (populate admits unthrottled), then
			// seconds from the same epoch the fault schedule and the
			// sim's virtual timeline use.
			Tenants:     lim,
			TenantClock: clock.Now,
		})
		if err != nil {
			return nil, err
		}
		pl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() { _ = px.Serve(pl) }()
		defer func() { _ = px.Close() }()
		clientAddrs = []string{pl.Addr().String()}
	}

	poolSize := p.PoolSize
	if poolSize == 0 {
		poolSize = s.Workers
	}
	clOpts := client.Options{
		Servers:    clientAddrs,
		Filler:     db,
		FillTTL:    s.FillTTL,
		PoolSize:   poolSize,
		Resilience: client.ResilienceFromSpec(s.Resilience),
		Recorder:   rec,
		Tracer:     s.Tracer,
		Seed:       s.Seed,
	}
	if s.Coalesce {
		clOpts.Coalesce = &coalesce.Policy{}
	}
	cl, err := client.New(clOpts)
	if err != nil {
		return nil, err
	}
	defer func() { _ = cl.Close() }()

	// --- drive ---
	opts := loadgen.Options{
		Client:     cl,
		Keys:       s.Keys,
		ValueSize:  liveValueSize,
		ValueDist:  s.ValueDist,
		ValueSigma: s.ValueSigma,
		ZipfS:      s.ZipfS,
		Lambda:     s.TotalKeyRate,
		Xi:         s.Xi,
		Q:          s.Q,
		MissRatio:  s.MissRatio,
		Ops:        s.Ops,
		Workers:    s.Workers,
		Seed:       s.Seed,
		// A tiered run's misses are capacity misses (the RAM cache holds
		// only RAMItems of the populated keyspace), and whatever falls
		// past the disk tier must still read through to the backend.
		UseGetThrough: s.MissRatio > 0 || s.Extstore != nil,
		Recorder:      rec,
		Tenants:       s.Tenants,
	}
	if s.SLO != nil {
		opts.OnLatency = s.SLO.OnLatency
	}
	if err := loadgen.Populate(opts); err != nil {
		return nil, err
	}
	for _, e := range exts {
		// Drain the eviction queues so the measured run starts with the
		// populate spill fully indexed on disk.
		e.Flush()
	}
	runCtx, cancel := context.WithTimeout(ctx, s.Duration)
	defer cancel()
	clock.Start()
	if wd := s.SLO; wd != nil {
		// Arm only once the run clock starts: populate traffic is warmup,
		// not SLO traffic. Windows advance on the same epoch the fault
		// schedule uses, so "fault at t=1s" and "window 4" line up.
		wd.Arm()
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			t := time.NewTicker(time.Duration(wd.Window() * float64(time.Second)))
			defer t.Stop()
			for {
				select {
				case <-t.C:
					wd.Advance(clock.Now())
				case <-stopWatch:
					return
				}
			}
		}()
	}
	lg, err := loadgen.Run(runCtx, opts)
	if err != nil {
		return nil, err
	}
	if wd := s.SLO; wd != nil {
		wd.Advance(clock.Now())
		wd.Flush()
	}
	if lg.Issued == 0 {
		// A context that expired during populate yields an empty run;
		// surface it instead of reporting a zero-latency "result".
		return nil, fmt.Errorf("plane: live run issued no operations (duration %v too short?)", s.Duration)
	}

	// --- summarize on the common surface ---
	b := collector.Breakdown()
	mean := lg.Latency.Mean()
	tsMean := b.MeanOf(telemetry.StageQueueWait) + b.MeanOf(telemetry.StageService)
	var missFrac float64
	if lg.Issued > 0 {
		missFrac = float64(lg.Misses) / float64(lg.Issued)
	}
	td := b.MeanOf(telemetry.StageMissPenalty) * missFrac
	if s.Coalesce {
		// Under coalescing a miss is either a fetch leader (miss_penalty)
		// or a fan-in (coalesce_wait); the per-key database cost is the
		// combined stage mass amortized over every issued key.
		td = (b[telemetry.StageMissPenalty].Total +
			b[telemetry.StageCoalesceWait].Total) / float64(lg.Issued)
	}
	if s.Extstore != nil {
		// A tiered run splits the per-miss cost across backend fills,
		// coalesced waits and disk reads; amortizing the combined stage
		// mass over issued keys matches the model's blended TD stage.
		td = (b[telemetry.StageMissPenalty].Total +
			b[telemetry.StageCoalesceWait].Total +
			b[telemetry.StageDiskRead].Total) / float64(lg.Issued)
	}
	res := &Result{
		Plane:    "live",
		Scenario: s,
		// Live totals are per-key (the loadgen issues single-key gets);
		// the network stage is physically included in the sample, so TN
		// reads 0 rather than the modeled constant.
		Total:     core.Bounds{Lo: mean, Hi: mean},
		TN:        0,
		TS:        core.Bounds{Lo: tsMean, Hi: tsMean},
		TD:        td,
		Sample:    lg.Latency,
		MeanCI:    stats.HistMeanCI(lg.Latency, ci95),
		Breakdown: b,
		Elapsed:   time.Since(start),
		Live:      lg,
	}
	dbStats := db.Stats()
	res.DB = &dbStats
	if s.SLO != nil {
		res.SLO = s.SLO.Status()
	}
	if s.Extstore != nil {
		er := &ExtstoreResult{Predicted: split}
		for _, srv := range servers {
			dh, pr := srv.ExtstoreCounts()
			er.DiskHits += dh
			er.Promotions += pr
		}
		for _, c := range caches {
			// Populate only writes, so Misses counts the measured gets.
			er.RAMMisses += c.Stats().Misses
		}
		for _, e := range exts {
			st := e.Stats()
			er.SegmentBytes += st.SegmentBytes
			er.Segments += st.Segments
			er.Compactions += st.Compactions
			er.Drops += st.Drops
		}
		res.Extstore = er
	}
	if g := cl.Coalescer(); g.Coalescing() {
		cs := g.Stats()
		res.Coalesce = &cs
	}
	if len(lg.Tenants) > 0 {
		offered, _, _ := s.tenantRates()
		handles := lim.Tenants()
		res.Tenants = make([]TenantResult, len(lg.Tenants))
		for i, ts := range lg.Tenants {
			admittedRate := 0.0
			if lg.Elapsed > 0 {
				admittedRate = float64(ts.Issued-ts.Sheds) / lg.Elapsed.Seconds()
			}
			res.Tenants[i] = TenantResult{
				Name:     ts.Name,
				Class:    handles[i].Snapshot().Class,
				Offered:  offered[i],
				Admitted: admittedRate,
				Issued:   ts.Issued,
				Shed:     ts.Sheds,
				Latency:  ts.Latency,
			}
		}
	}
	return res, nil
}
