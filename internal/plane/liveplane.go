package plane

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"memqlat/internal/backend"
	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/coalesce"
	"memqlat/internal/core"
	"memqlat/internal/fault"
	"memqlat/internal/loadgen"
	"memqlat/internal/proxy"
	"memqlat/internal/server"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
)

// LivePlane evaluates a Scenario on the real TCP stack: it brings up
// one shaped memcached server per load-ratio entry, a simulated
// database backend, a pooled client, and the mutilate-like load
// generator, all sharing a single telemetry collector so the measured
// Breakdown decomposes exactly like the model's and the simulator's.
//
// Real-time pacing cannot sustain the paper's 62.5 Kps per server on
// one machine, so live Scenarios use scaled rates; the Sample is
// per-key latency (keys spread by consistent hashing, which realizes a
// balanced load split).
type LivePlane struct {
	// PoolSize caps client connections per server (default: Workers).
	PoolSize int
}

// Name implements Plane.
func (LivePlane) Name() string { return "live" }

// Run implements Plane.
func (p LivePlane) Run(ctx context.Context, s Scenario) (*Result, error) {
	start := time.Now()
	s = s.withDefaults()
	model, err := s.Config()
	if err != nil {
		return nil, err
	}
	lim, err := s.validateTenants()
	if err != nil {
		return nil, err
	}
	collector := telemetry.NewCollector()

	// --- faults ---
	// One injector shared by all servers and the backend, clocked from a
	// common epoch that starts when the load does — so populate runs
	// healthy and the wall-time fault windows line up with the schedule
	// the simulator evaluates in virtual time.
	var (
		clock fault.Clock
		inj   *fault.Injector
	)
	if !s.Faults.Empty() {
		inj, err = fault.NewInjector(s.Faults, model.M())
		if err != nil {
			return nil, err
		}
	}
	pointFor := func(target int) *fault.Point {
		if inj == nil {
			return nil
		}
		return &fault.Point{Inj: inj, Server: target, Now: clock.Now}
	}

	// --- cluster ---
	addrs := make([]string, model.M())
	var servers []*server.Server
	defer func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
	}()
	for i := range addrs {
		c, err := cache.New(cache.Options{})
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Options{
			Cache:       c,
			ServiceRate: s.MuS,
			Seed:        s.Seed + uint64(i),
			Logger:      log.New(io.Discard, "", 0),
			Recorder:    collector,
			Fault:       pointFor(i),
			Tracer:      s.Tracer,
			ID:          i,
			ConnCore:    s.ConnCore,
		})
		if err != nil {
			return nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		servers = append(servers, srv)
		go func() { _ = srv.Serve(l) }()
	}
	dbOpts := backend.Options{
		MuD:      s.MuD,
		Seed:     s.Seed,
		Recorder: collector,
		Fault:    pointFor(fault.Database),
		Tracer:   s.Tracer,
	}
	if s.DBQueueDepth > 0 {
		// A bounded single-worker database makes hot-key herds visible:
		// without coalescing the herd stacks up in the queue (watch
		// QueuePeak), with it the backend sees ~1 fetch per miss window.
		dbOpts.Mode = backend.ModeSingleQueue
		dbOpts.QueueDepth = s.DBQueueDepth
	}
	db, err := backend.New(dbOpts)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	// --- proxy tier ---
	// With a ProxySpec the client talks to a single real proxy process
	// that multiplexes onto the server pool; it shares the telemetry
	// collector, so forward-path proxy work lands in StageProxyHop.
	clientAddrs := addrs
	if s.Proxy != nil {
		pol, err := proxy.ParsePolicy(s.Proxy.Policy)
		if err != nil {
			return nil, err
		}
		px, err := proxy.New(proxy.Options{
			Upstreams: addrs,
			Policy:    pol,
			Replicas:  s.Proxy.Replicas,
			Recorder:  collector,
			Logger:    log.New(io.Discard, "", 0),
			Tracer:    s.Tracer,
			// The QoS buckets meter on the shared run clock: -Inf until
			// clock.Start() fires (populate admits unthrottled), then
			// seconds from the same epoch the fault schedule and the
			// sim's virtual timeline use.
			Tenants:     lim,
			TenantClock: clock.Now,
		})
		if err != nil {
			return nil, err
		}
		pl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() { _ = px.Serve(pl) }()
		defer func() { _ = px.Close() }()
		clientAddrs = []string{pl.Addr().String()}
	}

	poolSize := p.PoolSize
	if poolSize == 0 {
		poolSize = s.Workers
	}
	clOpts := client.Options{
		Servers:    clientAddrs,
		Filler:     db,
		FillTTL:    s.FillTTL,
		PoolSize:   poolSize,
		Resilience: client.ResilienceFromSpec(s.Resilience),
		Recorder:   collector,
		Tracer:     s.Tracer,
		Seed:       s.Seed,
	}
	if s.Coalesce {
		clOpts.Coalesce = &coalesce.Policy{}
	}
	cl, err := client.New(clOpts)
	if err != nil {
		return nil, err
	}
	defer func() { _ = cl.Close() }()

	// --- drive ---
	opts := loadgen.Options{
		Client:        cl,
		Keys:          s.Keys,
		ZipfS:         s.ZipfS,
		Lambda:        s.TotalKeyRate,
		Xi:            s.Xi,
		Q:             s.Q,
		MissRatio:     s.MissRatio,
		Ops:           s.Ops,
		Workers:       s.Workers,
		Seed:          s.Seed,
		UseGetThrough: s.MissRatio > 0,
		Recorder:      collector,
		Tenants:       s.Tenants,
	}
	if err := loadgen.Populate(opts); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithTimeout(ctx, s.Duration)
	defer cancel()
	clock.Start()
	lg, err := loadgen.Run(runCtx, opts)
	if err != nil {
		return nil, err
	}
	if lg.Issued == 0 {
		// A context that expired during populate yields an empty run;
		// surface it instead of reporting a zero-latency "result".
		return nil, fmt.Errorf("plane: live run issued no operations (duration %v too short?)", s.Duration)
	}

	// --- summarize on the common surface ---
	b := collector.Breakdown()
	mean := lg.Latency.Mean()
	tsMean := b.MeanOf(telemetry.StageQueueWait) + b.MeanOf(telemetry.StageService)
	var missFrac float64
	if lg.Issued > 0 {
		missFrac = float64(lg.Misses) / float64(lg.Issued)
	}
	td := b.MeanOf(telemetry.StageMissPenalty) * missFrac
	if s.Coalesce {
		// Under coalescing a miss is either a fetch leader (miss_penalty)
		// or a fan-in (coalesce_wait); the per-key database cost is the
		// combined stage mass amortized over every issued key.
		td = (b[telemetry.StageMissPenalty].Total +
			b[telemetry.StageCoalesceWait].Total) / float64(lg.Issued)
	}
	res := &Result{
		Plane:    "live",
		Scenario: s,
		// Live totals are per-key (the loadgen issues single-key gets);
		// the network stage is physically included in the sample, so TN
		// reads 0 rather than the modeled constant.
		Total:     core.Bounds{Lo: mean, Hi: mean},
		TN:        0,
		TS:        core.Bounds{Lo: tsMean, Hi: tsMean},
		TD:        td,
		Sample:    lg.Latency,
		MeanCI:    stats.HistMeanCI(lg.Latency, ci95),
		Breakdown: b,
		Elapsed:   time.Since(start),
		Live:      lg,
	}
	dbStats := db.Stats()
	res.DB = &dbStats
	if g := cl.Coalescer(); g.Coalescing() {
		cs := g.Stats()
		res.Coalesce = &cs
	}
	if len(lg.Tenants) > 0 {
		offered, _, _ := s.tenantRates()
		handles := lim.Tenants()
		res.Tenants = make([]TenantResult, len(lg.Tenants))
		for i, ts := range lg.Tenants {
			admittedRate := 0.0
			if lg.Elapsed > 0 {
				admittedRate = float64(ts.Issued-ts.Sheds) / lg.Elapsed.Seconds()
			}
			res.Tenants[i] = TenantResult{
				Name:     ts.Name,
				Class:    handles[i].Snapshot().Class,
				Offered:  offered[i],
				Admitted: admittedRate,
				Issued:   ts.Issued,
				Shed:     ts.Sheds,
				Latency:  ts.Latency,
			}
		}
	}
	return res, nil
}
