package plane

import (
	"context"
	"math"
	"testing"
	"time"

	"memqlat/internal/otrace"
	"memqlat/internal/telemetry"
	"memqlat/internal/tenant"
	"memqlat/internal/workload"
)

// scenarios returns the seeded cross-plane test matrix: the paper's
// Facebook workload plus parameter excursions along each model axis.
func scenarios() []Scenario {
	fb := FromConfig("facebook", workload.Facebook())
	light := FromConfig("light-load", workload.WithLambda(30000))
	bursty := FromConfig("bursty", workload.WithXi(0.3))
	batched := FromConfig("batched", workload.WithQ(0.3))
	smallN := FromConfig("small-n", workload.WithN(10))
	out := []Scenario{fb, light, bursty, batched, smallN}
	for i := range out {
		out[i].Requests = 8000
		out[i].KeysPerServer = 150000
		out[i].Seed = 7
	}
	return out
}

func TestByName(t *testing.T) {
	for _, name := range []string{"model", "sim", "sim-integrated", "live"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("quantum"); err == nil {
		t.Error("unknown plane accepted")
	}
}

func TestModelPlaneDeterministic(t *testing.T) {
	s := FromConfig("facebook", workload.Facebook())
	a, err := ModelPlane{}.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ModelPlane{}.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Point() != b.Point() {
		t.Errorf("model plane not deterministic: %v vs %v", a.Point(), b.Point())
	}
	if a.Total.Lo > a.Total.Hi {
		t.Errorf("inverted bounds [%v, %v]", a.Total.Lo, a.Total.Hi)
	}
	for _, st := range telemetry.Stages() {
		if st == telemetry.StageMissPenalty && s.MissRatio == 0 {
			continue
		}
		switch st {
		case telemetry.StageRetry, telemetry.StageHedgeWait, telemetry.StageBreakerShed:
			// Resilience stages only materialize under fault schedules,
			// which the healthy analytic baseline never carries.
			continue
		case telemetry.StageLockWait:
			// Shard-lock contention is a live-plane-only diagnostic; the
			// analytic model has no lock convoys by construction.
			continue
		case telemetry.StageProxyHop:
			// The proxy stage only materializes when the scenario carries
			// a ProxySpec; the direct baseline never does.
			continue
		case telemetry.StageCoalesceWait:
			// Delayed hits only materialize when the scenario enables
			// miss coalescing; the naive baseline never does.
			continue
		case telemetry.StageTenantShed:
			// Tenant sheds only materialize when the scenario declares
			// tenant specs; the single-tenant baseline never does.
			continue
		case telemetry.StageDiskRead:
			// Disk reads only materialize when the scenario arms the
			// extstore tier; the RAM-only baseline never does.
			continue
		}
		if _, ok := a.Breakdown[st]; !ok {
			t.Errorf("model breakdown missing stage %v", st)
		}
	}
}

func TestSimPlaneDeterministic(t *testing.T) {
	s := scenarios()[0]
	s.Requests = 2000
	s.KeysPerServer = 60000
	a, err := (SimPlane{}).Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (SimPlane{}).Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Point() != b.Point() {
		t.Errorf("sim plane not deterministic under fixed seed: %v vs %v", a.Point(), b.Point())
	}
}

// TestCrossPlaneConsistency is the harness's reason to exist: for every
// scenario in the matrix, the simulator plane's point estimate must
// land inside the model plane's Theorem 1 band (widened by the same 8%
// stochastic slack the simulator's own tests use), and the model's
// point must be plausible against the simulator's sampled mean.
func TestCrossPlaneConsistency(t *testing.T) {
	ctx := context.Background()
	for _, s := range scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			mres, err := ModelPlane{}.Run(ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			sres, err := (SimPlane{}).Run(ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			if !mres.Total.Contains(sres.Point(), 0.08) {
				t.Errorf("sim total %v outside model band [%v, %v] (+8%%)",
					sres.Point(), mres.Total.Lo, mres.Total.Hi)
			}
			// The memcached stage must agree too — it is where all the
			// queueing structure lives.
			if !mres.TS.Contains(sres.TS.Mid(), 0.08) {
				t.Errorf("sim TS %v outside model band [%v, %v] (+8%%)",
					sres.TS.Mid(), mres.TS.Lo, mres.TS.Hi)
			}
			// Breakdown stages that both planes populate must agree on
			// per-stage means within a loose factor (the model's stage
			// split is approximate, the sim's is measured).
			for _, st := range []telemetry.Stage{telemetry.StageQueueWait, telemetry.StageService} {
				mm := mres.Breakdown.MeanOf(st)
				sm := sres.Breakdown.MeanOf(st)
				if mm <= 0 || sm <= 0 {
					t.Fatalf("stage %v missing: model %v, sim %v", st, mm, sm)
				}
				if r := sm / mm; r < 0.5 || r > 2 {
					t.Errorf("stage %v disagrees: model mean %v, sim mean %v (ratio %.2f)",
						st, mm, sm, r)
				}
			}
			// The simulator's sampled mean of per-request maxima always
			// sits at or above the quantile-approximation point.
			if sres.MeanCI.Point+sres.Sample.Mean() == 0 {
				t.Fatal("sim plane produced no sample")
			}
			if math.IsNaN(sres.MeanCI.Lo) || sres.MeanCI.Lo > sres.MeanCI.Hi {
				t.Errorf("bad mean CI [%v, %v]", sres.MeanCI.Lo, sres.MeanCI.Hi)
			}
		})
	}
}

// TestCrossPlaneHotKeyCoalesced extends the cross-validation to the
// coalesced miss path: with single-flight coalescing on over a hot
// Zipf miss keyspace, the simulator's total must still land inside the
// model plane's Theorem 1 band — the band is unchanged by coalescing
// (memorylessness: the residual of an Exp(µD) window is Exp(µD)), so
// this pins that coalescing moves backend load, not latency bounds.
// The scenario is deliberately moderate: under extreme herds the
// within-request window correlation legitimately pulls the sim total
// below the naive band (see sim.TestCoalescedTDDistributionMatchesNaive).
func TestCrossPlaneHotKeyCoalesced(t *testing.T) {
	ctx := context.Background()
	s := scenarios()[0]
	s.Name = "facebook-hotkey-coalesced"
	s.Coalesce = true
	s.Keys = 200
	s.ZipfS = 1.0

	mres, err := ModelPlane{}.Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := (SimPlane{}).Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if !mres.Total.Contains(sres.Point(), 0.08) {
		t.Errorf("coalesced sim total %v outside model band [%v, %v] (+8%%)",
			sres.Point(), mres.Total.Lo, mres.Total.Hi)
	}
	// Both planes expose the delayed-hit stage.
	if mres.Breakdown.MeanOf(telemetry.StageCoalesceWait) <= 0 {
		t.Error("model breakdown missing coalesce_wait stage")
	}
	cw, ok := sres.Breakdown[telemetry.StageCoalesceWait]
	if !ok || cw.Count == 0 || cw.Mean <= 0 {
		t.Fatalf("sim breakdown missing coalesce_wait samples: %+v", cw)
	}
	// The stage means must agree: both are Exp(µD) residuals.
	if r := cw.Mean / mres.Breakdown.MeanOf(telemetry.StageCoalesceWait); r < 0.5 || r > 2 {
		t.Errorf("coalesce_wait disagrees: model %v, sim %v (ratio %.2f)",
			mres.Breakdown.MeanOf(telemetry.StageCoalesceWait), cw.Mean, r)
	}
	// Miss accounting: every miss fetched or fanned in, and the hot
	// keyspace produced real coalescing.
	if sres.Sim.BackendFetches+sres.Sim.DelayedHits != sres.Sim.MissCount {
		t.Errorf("fetches(%d) + delayed(%d) != misses(%d)",
			sres.Sim.BackendFetches, sres.Sim.DelayedHits, sres.Sim.MissCount)
	}
	if sres.Sim.DelayedHits == 0 {
		t.Error("hot-key coalesced run produced no delayed hits")
	}
	// The analytic delayed-hit fraction must predict the sim's fetch
	// savings (loose band: D varies with the realized key mix).
	d, err := DelayedHitFraction(s.TotalKeyRate*s.MissRatio, s.MuD, s.Keys, s.ZipfS)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(sres.Sim.DelayedHits) / float64(sres.Sim.MissCount)
	if d <= 0 || got < d*0.5 || got > d*1.5 {
		t.Errorf("delayed-hit fraction: predicted %.3f, sim measured %.3f", d, got)
	}
}

// TestCrossPlaneProxiedConsistency extends the cross-validation to the
// proxy tier: with a ProxySpec interposed, the composition simulator's
// proxied total must still land inside the model plane's (proxy-stage
// augmented) Theorem 1 band with the usual 8% slack, and both planes
// must agree the proxy made things strictly slower than direct.
func TestCrossPlaneProxiedConsistency(t *testing.T) {
	ctx := context.Background()
	direct := scenarios()[0]
	proxied := direct
	proxied.Name = "facebook-proxied"
	proxied.Proxy = &ProxySpec{}

	mdir, err := ModelPlane{}.Run(ctx, direct)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := ModelPlane{}.Run(ctx, proxied)
	if err != nil {
		t.Fatal(err)
	}
	sdir, err := (SimPlane{}).Run(ctx, direct)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := (SimPlane{}).Run(ctx, proxied)
	if err != nil {
		t.Fatal(err)
	}
	if !mres.Total.Contains(sres.Point(), 0.08) {
		t.Errorf("proxied sim total %v outside model band [%v, %v] (+8%%)",
			sres.Point(), mres.Total.Lo, mres.Total.Hi)
	}
	if mres.Total.Lo <= mdir.Total.Lo || sres.Point() <= sdir.Point() {
		t.Errorf("proxy hop should cost latency: model %v vs %v, sim %v vs %v",
			mres.Total.Lo, mdir.Total.Lo, sres.Point(), sdir.Point())
	}
	// Both planes expose the hop in the stage decomposition.
	if mres.Breakdown.MeanOf(telemetry.StageProxyHop) <= 0 {
		t.Error("model breakdown missing proxy_hop stage")
	}
	ph, ok := sres.Breakdown[telemetry.StageProxyHop]
	if !ok || ph.Count == 0 || ph.Mean <= 0 {
		t.Errorf("sim breakdown missing proxy_hop samples: %+v", ph)
	}
	if sres.Sim == nil || sres.Sim.TP == nil || sres.Sim.TP.Count() == 0 {
		t.Fatal("sim result missing the TP histogram")
	}
	// Replicated reads through the proxy hedge the memcached stage but
	// charge the duplicated traffic to the servers. The invariant is
	// therefore conditional on load: the fastest-of-2 draw must beat a
	// single draw at the same (doubled) per-server key rate.
	light := scenarios()[1]
	repl := light
	repl.Name = "light-proxied-replicated"
	repl.Proxy = &ProxySpec{Policy: "replicate", Replicas: 2}
	rres, err := (SimPlane{}).Run(ctx, repl)
	if err != nil {
		t.Fatal(err)
	}
	inflated := light
	inflated.Name = "light-proxied-inflated"
	inflated.TotalKeyRate *= 2
	inflated.Proxy = &ProxySpec{}
	ires, err := (SimPlane{}).Run(ctx, inflated)
	if err != nil {
		t.Fatal(err)
	}
	if rres.TS.Mid() >= ires.TS.Mid() {
		t.Errorf("replicated TS %v not below equal-load direct TS %v",
			rres.TS.Mid(), ires.TS.Mid())
	}
	// The integrated simulator has no proxy stream: asking for one is an
	// explicit error, not a silently direct run.
	if _, err := (SimPlane{Mode: SimIntegrated}).Run(ctx, proxied); err == nil {
		t.Error("sim-integrated accepted a ProxySpec")
	}
	// A bogus policy is rejected up front on every plane.
	bad := proxied
	bad.Proxy = &ProxySpec{Policy: "quantum"}
	if _, err := (ModelPlane{}).Run(ctx, bad); err == nil {
		t.Error("model plane accepted unknown proxy policy")
	}
	if _, err := (SimPlane{}).Run(ctx, bad); err == nil {
		t.Error("sim plane accepted unknown proxy policy")
	}
}

// TestCrossPlaneNoisyNeighbor extends the cross-validation to the
// tenant QoS layer: a two-tenant mix (a victim inside its contract, an
// aggressor offering 3× its op quota) behind the proxy's token
// buckets. The composition simulator runs the same bucket code on the
// offered virtual timeline; its total over the admitted traffic must
// land inside the model plane's Theorem 1 band priced at the admitted
// Λ′ — and both planes must agree on who shed: the victim nothing,
// the aggressor ≈2/3 of its offer.
func TestCrossPlaneNoisyNeighbor(t *testing.T) {
	ctx := context.Background()
	s := scenarios()[0]
	s.Name = "facebook-noisy"
	s.Proxy = &ProxySpec{}
	quota := s.TotalKeyRate / 2 / 3 // a third of the aggressor's half
	s.Tenants = []tenant.Spec{
		{Name: "victim", Share: 0.5},
		{Name: "aggressor", Rate: quota, Share: 0.5},
	}

	mres, err := ModelPlane{}.Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := (SimPlane{}).Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if !mres.Total.Contains(sres.Point(), 0.08) {
		t.Errorf("tenant-shed sim total %v outside model band [%v, %v] (+8%%)",
			sres.Point(), mres.Total.Lo, mres.Total.Hi)
	}
	// The model's band is exactly the no-tenant band at Λ′: pricing at
	// the admitted rate is the whole analytic treatment of shedding.
	admitted := s
	admitted.Tenants = nil
	admitted.TotalKeyRate = s.TotalKeyRate/2 + quota
	ares, err := ModelPlane{}.Run(ctx, admitted)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Total != ares.Total {
		t.Errorf("tenant model band [%v, %v] != admitted-rate band [%v, %v]",
			mres.Total.Lo, mres.Total.Hi, ares.Total.Lo, ares.Total.Hi)
	}
	// Both planes report per-tenant results in declared order.
	for _, res := range []*Result{mres, sres} {
		if len(res.Tenants) != 2 || res.Tenants[0].Name != "victim" ||
			res.Tenants[1].Name != "aggressor" {
			t.Fatalf("%s plane tenants = %+v", res.Plane, res.Tenants)
		}
	}
	victim, aggr := sres.Tenants[0], sres.Tenants[1]
	if victim.Shed != 0 {
		t.Errorf("victim shed %d keys, want 0", victim.Shed)
	}
	if aggr.Shed == 0 {
		t.Error("aggressor shed nothing at 3× quota")
	}
	// The aggressor's realized shed fraction tracks the analytic 2/3
	// (loose band: the bucket burst admits a little above quota).
	offeredKeys := float64(aggr.Issued)
	if frac := float64(aggr.Shed) / offeredKeys; frac < 0.5 || frac > 0.8 {
		t.Errorf("aggressor shed fraction %.3f, want ≈2/3", frac)
	}
	// Model rates: victim admitted in full, aggressor clamped to quota.
	mv, ma := mres.Tenants[0], mres.Tenants[1]
	if mv.Admitted != mv.Offered || ma.Admitted != quota {
		t.Errorf("model rates: victim %v/%v, aggressor %v (quota %v)",
			mv.Admitted, mv.Offered, ma.Admitted, quota)
	}
	// Sheds surface on the shared stage ledger, and the per-tenant
	// latency samples cover every admitted-key request.
	ts, ok := sres.Breakdown[telemetry.StageTenantShed]
	if !ok || ts.Count != sres.Sim.TenantShedKeys || sres.Sim.TenantShedKeys == 0 {
		t.Errorf("tenant_shed stage count %v != sim shed keys %d",
			ts.Count, sres.Sim.TenantShedKeys)
	}
	if victim.Latency == nil || victim.Latency.Count() == 0 ||
		aggr.Latency == nil || aggr.Latency.Count() == 0 {
		t.Error("sim per-tenant latency histograms empty")
	}
	// The integrated simulator has no tenant stream: explicit error.
	if _, err := (SimPlane{Mode: SimIntegrated}).Run(ctx, s); err == nil {
		t.Error("sim-integrated accepted tenant specs")
	}
	// Tenants without a proxy are rejected up front on every plane.
	noProxy := s
	noProxy.Proxy = nil
	if _, err := (ModelPlane{}).Run(ctx, noProxy); err == nil {
		t.Error("model plane accepted tenants without a proxy")
	}
	if _, err := (SimPlane{}).Run(ctx, noProxy); err == nil {
		t.Error("sim plane accepted tenants without a proxy")
	}
}

// TestLivePlaneSmoke brings the full TCP stack up for a scaled-down
// scenario and checks the common Result surface is populated and the
// measured breakdown is coherent (total ≈ wait + service per key).
func TestLivePlaneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane needs real time")
	}
	s := Scenario{
		Name:         "live-smoke",
		N:            10,
		LoadRatios:   []float64{0.5, 0.5},
		TotalKeyRate: 4000,
		Q:            0.1,
		Xi:           0.15,
		MuS:          2000,
		MissRatio:    0.01,
		MuD:          1000,
		Ops:          1200,
		Workers:      32,
		Duration:     30 * time.Second,
		Seed:         3,
	}
	res, err := LivePlane{}.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Live == nil || res.Live.Issued == 0 {
		t.Fatal("live plane issued no operations")
	}
	if res.Sample == nil || res.Sample.Count() == 0 {
		t.Fatal("live plane recorded no latency sample")
	}
	mean := res.Sample.Mean()
	if mean <= 0 {
		t.Fatalf("non-positive mean latency %v", mean)
	}
	wait := res.Breakdown.MeanOf(telemetry.StageQueueWait)
	service := res.Breakdown.MeanOf(telemetry.StageService)
	if service <= 0 {
		t.Fatal("live breakdown missing service stage")
	}
	// Server-side wait+service cannot exceed the client-observed
	// per-key latency (which adds network + client overhead).
	if wait+service > mean*1.05 {
		t.Errorf("server-side stages %v exceed client mean %v", wait+service, mean)
	}
	if res.Breakdown.MeanOf(telemetry.StageForkJoin) < 0 {
		t.Error("negative fork-join stage")
	}
}

// TestLivePlaneProxiedSmoke runs the scaled-down live scenario through
// a real TCP proxy in front of the server pool and checks the run
// completes with proxy_hop telemetry in the breakdown.
func TestLivePlaneProxiedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane needs real time")
	}
	s := Scenario{
		Name:         "live-proxied-smoke",
		N:            10,
		LoadRatios:   []float64{0.5, 0.5},
		TotalKeyRate: 4000,
		Q:            0.1,
		Xi:           0.15,
		MuS:          2000,
		MissRatio:    0.01,
		MuD:          1000,
		Ops:          1200,
		Workers:      32,
		Duration:     30 * time.Second,
		Seed:         3,
		Proxy:        &ProxySpec{},
	}
	res, err := LivePlane{}.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Live == nil || res.Live.Issued == 0 {
		t.Fatal("proxied live plane issued no operations")
	}
	if res.Sample == nil || res.Sample.Count() == 0 {
		t.Fatal("proxied live plane recorded no latency sample")
	}
	ph, ok := res.Breakdown[telemetry.StageProxyHop]
	if !ok || ph.Count == 0 {
		t.Fatalf("proxied live breakdown missing proxy_hop samples: %+v", ph)
	}
	if res.Breakdown.MeanOf(telemetry.StageService) <= 0 {
		t.Fatal("proxied live breakdown missing server-side service stage")
	}
}

// TestSimPlaneTraced checks Scenario.Tracer reaches the composition
// simulator: virtual-time request spans land in the ring.
func TestSimPlaneTraced(t *testing.T) {
	tr := otrace.New(otrace.Options{})
	s := Scenario{
		Name:          "sim-traced",
		N:             20,
		LoadRatios:    []float64{0.5, 0.5},
		TotalKeyRate:  2 * 40000,
		Q:             0.1,
		Xi:            0.15,
		MuS:           60000,
		MuD:           1000,
		Requests:      200,
		KeysPerServer: 20000,
		Seed:          5,
		Tracer:        tr,
	}
	if _, err := (SimPlane{}).Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	if len(spans) == 0 {
		t.Fatal("sim plane recorded no spans")
	}
	roots := 0
	for _, sp := range spans {
		if sp.Comp == "sim" && sp.Name == "request" {
			roots++
		}
	}
	if roots != 200 {
		t.Errorf("sim/request roots = %d, want 200", roots)
	}
}

// TestLivePlaneTraced runs the scaled-down live scenario with a tracer
// on the Scenario and checks every tier contributed wall-clock spans.
func TestLivePlaneTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane needs real time")
	}
	tr := otrace.New(otrace.Options{RingSize: 1 << 16})
	s := Scenario{
		Name:         "live-traced",
		N:            10,
		LoadRatios:   []float64{0.5, 0.5},
		TotalKeyRate: 4000,
		Q:            0.1,
		Xi:           0.15,
		MuS:          2000,
		MissRatio:    0.05,
		MuD:          1000,
		Ops:          600,
		Workers:      16,
		Duration:     30 * time.Second,
		Seed:         3,
		Tracer:       tr,
	}
	res, err := LivePlane{}.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Live == nil || res.Live.Issued == 0 {
		t.Fatal("traced live plane issued no operations")
	}
	comps := map[string]int{}
	for _, sp := range tr.Snapshot() {
		comps[sp.Comp]++
	}
	for _, comp := range []string{"client", "server", "backend"} {
		if comps[comp] == 0 {
			t.Errorf("no %s spans in live trace (got %v)", comp, comps)
		}
	}
}
