package plane

import (
	"context"
	"fmt"
	"math"

	"memqlat/internal/core"
	"memqlat/internal/slo"
	"memqlat/internal/telemetry"
)

// PredictedBands runs the model plane on s and returns the Theorem-1
// per-stage breakdown shaped for use as SLO watchdog band anchors
// (slo.Config.Predicted).
//
// It differs from the model plane's own Breakdown in one place: the
// queue_wait quantiles. The crossplane table predicts queue-wait
// quantiles with an exponential shape around the eq. 3 mean — fine for
// eyeballing a diff column, but as an alert band it false-alarms at low
// utilization, where the wait distribution has a large atom at zero and
// a conditional tail far longer than 4.6× the mean. The watchdog band
// instead inverts the eq. 3 law directly: the batch wait satisfies
//
//	P{W > t} = δ·e^{−R·t},  R = (1−δ)·(1−q)·µ_S
//
// so quantile(p) = max(0, ln(δ/(1−p))/R), shifted by the same-batch
// service term q/(1−q)/µ_S that the mean prediction carries. Below the
// 1−δ quantile the band's floor is the batch term alone — exactly the
// "most keys don't wait" regime the exponential shape misprices.
//
// All other stages keep the model plane's quantiles, so drift judged
// against these bands is drift against the same closed form the
// crossplane table prints.
func PredictedBands(s Scenario) (telemetry.Breakdown, error) {
	res, err := ModelPlane{}.Run(context.Background(), s)
	if err != nil {
		return nil, err
	}
	b := res.Breakdown
	model, err := s.withDefaults().admittedScenario().Config()
	if err != nil {
		return nil, err
	}
	if err := sharpenQueueWait(b, model); err != nil {
		return nil, err
	}
	return b, nil
}

// sharpenQueueWait replaces the exp-around-mean queue_wait quantiles in
// b with the atom-plus-exponential eq. 3 law (see PredictedBands).
func sharpenQueueWait(b telemetry.Breakdown, m *core.Config) error {
	bq, err := m.HeaviestQueue()
	if err != nil {
		return err
	}
	delta, err := bq.Delta()
	if err != nil {
		return err
	}
	rate := (1 - delta) * bq.BatchServiceRate()
	batch := m.Q / (1 - m.Q) / m.MuS
	st := b[telemetry.StageQueueWait]
	st.P50 = waitQuantile(0.50, delta, rate) + batch
	st.P95 = waitQuantile(0.95, delta, rate) + batch
	st.P99 = waitQuantile(0.99, delta, rate) + batch
	b[telemetry.StageQueueWait] = st
	return nil
}

// waitQuantile inverts P{W > t} = δ·e^{−R·t}: the p-th quantile of the
// batch waiting time, zero for any p inside the 1−δ atom at the origin.
func waitQuantile(p, delta, rate float64) float64 {
	if !(delta > 0) || p <= 1-delta {
		return 0
	}
	return math.Log(delta/(1-p)) / rate
}

// BandsFromModel lowers a -slo flag's queueing parameters (slo.Model)
// to a single-server Scenario and returns its watchdog bands. This is
// how the standalone daemons — which have no Scenario, only a flag
// string — anchor their watchdogs to the same Theorem-1 closed form the
// harness uses.
func BandsFromModel(m slo.Model) (telemetry.Breakdown, error) {
	if !(m.Lambda > 0) {
		return nil, fmt.Errorf("plane: slo model needs lambda > 0 to anchor bands")
	}
	if !(m.MuS > 0) {
		return nil, fmt.Errorf("plane: slo model needs mus > 0 to anchor bands")
	}
	if m.Miss > 0 && !(m.MuD > 0) {
		return nil, fmt.Errorf("plane: slo model with miss > 0 needs mud > 0")
	}
	mud := m.MuD
	if mud <= 0 {
		// No miss stage is priced; Validate still wants a positive rate.
		mud = 1
	}
	n := m.N
	if n <= 0 {
		n = 1
	}
	s := Scenario{
		Name:         "slo-band",
		N:            n,
		LoadRatios:   core.BalancedLoad(1),
		TotalKeyRate: m.Lambda,
		Q:            m.Q,
		Xi:           m.Xi,
		MuS:          m.MuS,
		MissRatio:    m.Miss,
		MuD:          mud,
	}
	return PredictedBands(s)
}

// ProxyHopBand returns the proxy_hop watchdog band for a standalone
// proxy fed aggregate key rate m.Lambda at service rate m.MuS: the same
// single GI^X/M/1 stage the model plane prices for Scenario.Proxy,
// with the per-key sojourn given an exponential shape around its mean.
func ProxyHopBand(m slo.Model) (telemetry.Breakdown, error) {
	if !(m.Lambda > 0) || !(m.MuS > 0) {
		return nil, fmt.Errorf("plane: proxy slo model needs lambda > 0 and mus > 0")
	}
	n := m.N
	if n <= 0 {
		n = 1
	}
	pc := &core.Config{
		N:            n,
		LoadRatios:   core.BalancedLoad(1),
		TotalKeyRate: m.Lambda,
		Q:            m.Q,
		Xi:           m.Xi,
		MuS:          m.MuS,
		MuD:          1, // unused by the hop stage; satisfies validation
	}
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	hop, err := proxyStageMean(pc)
	if err != nil {
		return nil, err
	}
	return telemetry.Breakdown{telemetry.StageProxyHop: expStage(hop)}, nil
}
