package plane

import (
	"context"
	"time"

	"memqlat/internal/mrc"
	"memqlat/internal/telemetry"
)

// ModelPlane evaluates a Scenario with the closed-form machinery of
// internal/core: Theorem 1 bounds for the totals and the per-stage
// means its ingredients predict for the Breakdown, so the analytic
// decomposition lines up column-for-column with the measured planes.
type ModelPlane struct{}

// Name implements Plane.
func (ModelPlane) Name() string { return "model" }

// Run implements Plane.
func (p ModelPlane) Run(ctx context.Context, s Scenario) (*Result, error) {
	start := time.Now()
	s = s.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lim, err := s.validateTenants()
	if err != nil {
		return nil, err
	}
	// QoS sheds ahead of every queue, so the shared stages are priced at
	// the admitted rate Λ' (identity without tenants). That is the whole
	// analytic story of the noisy-neighbor scenario: the aggressor's
	// excess never enters λ, so the victims' band is the Λ' band.
	priced := s.admittedScenario()
	model, err := priced.Config()
	if err != nil {
		return nil, err
	}
	var split mrc.TierSplit
	if s.Extstore != nil {
		split, err = s.ExtstoreSplit()
		if err != nil {
			return nil, err
		}
		// Tiered miss stage: a RAM miss is absorbed by the disk tier
		// with probability β (the MRC's conditional disk-hit fraction)
		// at mean 1/µ_disk, else it pays the backend's 1/µ_D — so the
		// per-miss mean is the mixture and Theorem 1's database stage
		// is priced at the blended rate 1/µ' = β/µ_disk + (1−β)/µ_D.
		beta := split.DiskHitFraction()
		model.MuD = 1 / (beta/s.Extstore.MuDisk + (1-beta)/s.MuD)
	}
	est, err := model.Estimate()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Plane:    p.Name(),
		Scenario: s,
		Total:    est.Total,
		TN:       est.TN,
		TS:       est.TS,
		TD:       est.TD,
		Elapsed:  time.Since(start),
	}
	res.Breakdown, err = predictBreakdown(model, est.TS.Mid())
	if err != nil {
		return nil, err
	}
	if s.Extstore != nil {
		// The bounds price the blend, but the breakdown keeps the
		// stages separate the way the measured planes record them:
		// miss_penalty stays the backend's Exp(µ_D) and the disk reads
		// get their own disk_read stage.
		if s.MissRatio > 0 {
			res.Breakdown[telemetry.StageMissPenalty] = expStage(1 / s.MuD)
			res.Breakdown[telemetry.StageDiskRead] = diskStage(*s.Extstore)
		}
		res.Extstore = &ExtstoreResult{Predicted: split}
	}
	if s.Coalesce && s.MissRatio > 0 {
		// Delayed-hit stage: a coalesced miss that attaches to an
		// in-flight fetch waits out the residual of the leader's
		// Exp(µ_D) window, and by memorylessness the residual is
		// Exp(µ_D) too. The stage therefore mirrors miss_penalty and
		// the Theorem-1 totals are unchanged — coalescing moves backend
		// load (Λ·r·(1−D) fetches instead of Λ·r; see
		// DelayedHitFraction), not per-request latency bounds.
		res.Breakdown[telemetry.StageCoalesceWait] = expStage(1 / s.MuD)
	}
	if s.Proxy != nil {
		pc, err := priced.proxyConfig()
		if err != nil {
			return nil, err
		}
		pest, err := pc.Estimate()
		if err != nil {
			return nil, err
		}
		// The proxy is one more stage in series, with its own fork-join
		// over the request's N keys: Theorem 1 bounds compose additively
		// with the memcached/database stages.
		res.Total.Lo += pest.TS.Lo
		res.Total.Hi += pest.TS.Hi
		hop, err := proxyStageMean(pc)
		if err != nil {
			return nil, err
		}
		// Per-key proxy sojourn: exponential shape around the predicted
		// mean, matching the queue-wait treatment.
		res.Breakdown[telemetry.StageProxyHop] = expStage(hop)
	}
	if lim != nil {
		offered, admitted, _ := s.tenantRates()
		res.Tenants = make([]TenantResult, len(s.Tenants))
		for i, tn := range lim.Tenants() {
			res.Tenants[i] = TenantResult{
				Name:     tn.Name(),
				Class:    tn.Class(),
				Offered:  offered[i],
				Admitted: admitted[i],
			}
		}
	}
	return res, nil
}
