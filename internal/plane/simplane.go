package plane

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/mrc"
	"memqlat/internal/sim"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
)

// SimMode selects which simulator realizes the scenario.
type SimMode int

const (
	// SimComposition is the two-stage composition simulator
	// (sim.SimulateRequests): per-server GI^X/M/1 key streams composed
	// into fork-join requests under the model's independence
	// assumption. It is the paper's "Experiment" column.
	SimComposition SimMode = iota
	// SimIntegrated is the event-scheduled fork-join system
	// (sim.SimulateIntegrated), whose per-server arrivals emerge from
	// the request stream — the ablation of the independence assumption.
	SimIntegrated
)

// SimPlane evaluates a Scenario on the virtual-time simulator.
type SimPlane struct {
	// Mode selects the simulator (default SimComposition).
	Mode SimMode
}

// Name implements Plane.
func (p SimPlane) Name() string {
	if p.Mode == SimIntegrated {
		return "sim-integrated"
	}
	return "sim"
}

// Run implements Plane.
func (p SimPlane) Run(ctx context.Context, s Scenario) (*Result, error) {
	start := time.Now()
	s = s.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := s.validateTenants(); err != nil {
		return nil, err
	}
	if len(s.Tenants) > 0 && p.Mode == SimIntegrated {
		return nil, fmt.Errorf("plane: scenario %q: the integrated simulator does not model tenant QoS (use the composition sim)", s.Name)
	}
	if s.SLO != nil && p.Mode == SimIntegrated {
		return nil, fmt.Errorf("plane: scenario %q: the integrated simulator does not replay the SLO watchdog (use the composition sim)", s.Name)
	}
	var split mrc.TierSplit
	if s.Extstore != nil {
		if p.Mode == SimIntegrated {
			return nil, fmt.Errorf("plane: scenario %q: the integrated simulator does not model the extstore tier (use the composition sim)", s.Name)
		}
		var err error
		split, err = s.ExtstoreSplit()
		if err != nil {
			return nil, err
		}
	}
	// The surviving streams run at the admitted rate Λ' (identity
	// without tenants); the virtual request clock — and hence the
	// buckets — run at the offered Λ via OfferedKeyRate below.
	priced := s.admittedScenario()
	model, err := priced.Config()
	if err != nil {
		return nil, err
	}
	var proxyModel *core.Config
	if s.Proxy != nil {
		if p.Mode == SimIntegrated {
			return nil, fmt.Errorf("plane: scenario %q: the integrated simulator does not model a proxy tier (use the composition sim)", s.Name)
		}
		proxyModel, err = priced.proxyConfig()
		if err != nil {
			return nil, err
		}
	}
	collector := telemetry.NewCollector()
	res := &Result{
		Plane:    p.Name(),
		Scenario: s,
		TN:       model.NetworkLatency,
	}
	switch p.Mode {
	case SimIntegrated:
		integ, err := sim.SimulateIntegrated(sim.IntegratedConfig{
			Model:    model,
			Requests: s.Requests,
			Seed:     s.Seed,
			Recorder: collector,
			Faults:   s.Faults,
		})
		if err != nil {
			return nil, err
		}
		tsMean := integ.TS.Mean()
		tdMean := integ.TD.Mean()
		totalMean := integ.Total.Mean()
		res.Total = core.Bounds{Lo: totalMean, Hi: totalMean}
		res.TS = core.Bounds{Lo: tsMean, Hi: tsMean}
		res.TD = tdMean
		res.Sample = integ.Total
		res.Integrated = integ
	default:
		rc := sim.RequestConfig{
			Model:          model,
			Requests:       s.Requests,
			KeysPerServer:  s.KeysPerServer,
			Seed:           s.Seed,
			Recorder:       collector,
			Faults:         s.Faults,
			Resilience:     s.Resilience,
			ProxyModel:     proxyModel,
			Tracer:         s.Tracer,
			Coalesce:       s.Coalesce,
			MissKeys:       s.Keys,
			MissZipfS:      s.ZipfS,
			Tenants:        s.Tenants,
			OfferedKeyRate: s.TotalKeyRate,
		}
		if s.Proxy != nil && s.Proxy.Policy == "replicate" {
			rc.ReadReplicas = s.Proxy.Replicas
		}
		if wd := s.SLO; wd != nil {
			// The watchdog replays on the virtual request timeline: the
			// composition loop advances its windows at each arrival
			// instant and tees every request-loop stage into its
			// sketches. The per-server streams are pre-simulated outside
			// that timeline, so queue_wait/service stay out of the sim
			// replay — the drift signals here are the request-scoped
			// stages (miss_penalty, proxy_hop, fork_join, ...). The
			// observer draws nothing, so sims with and without a watchdog
			// are byte-identical and a given seed detects drift at the
			// same window index on every run.
			wd.Arm()
			rc.Observer = wd
		}
		if e := s.Extstore; e != nil {
			rc.Extstore = &sim.ExtstoreSim{
				DiskHitFraction: split.DiskHitFraction(),
				MuDisk:          e.MuDisk,
				Dist:            e.DiskDist,
				Sigma:           e.DiskSigma,
			}
		}
		comp, err := sim.SimulateRequests(rc)
		if err != nil {
			return nil, err
		}
		if wd := s.SLO; wd != nil {
			wd.Flush()
			res.SLO = wd.Status()
		}
		tsEst, err := comp.TSQuantileEstimate(model)
		if err != nil {
			return nil, err
		}
		tdEst, err := comp.TDQuantileEstimate()
		if err != nil {
			return nil, err
		}
		tpEst, err := comp.TPQuantileEstimate(model.N)
		if err != nil {
			return nil, err
		}
		total := comp.TN + tsEst + tdEst + tpEst
		res.Total = core.Bounds{Lo: total, Hi: total}
		res.TS = core.Bounds{Lo: tsEst, Hi: tsEst}
		res.TD = tdEst
		res.Sample = comp.Total
		res.Sim = comp
		if s.Extstore != nil {
			res.Extstore = &ExtstoreResult{
				Predicted: split,
				DiskHits:  comp.DiskHits,
				RAMMisses: comp.MissCount,
			}
		}
		if len(comp.Tenants) > 0 {
			// Realized per-tenant rates on the virtual clock: the run
			// spans Requests×N offered keys at rate Λ.
			offered, _, _ := s.tenantRates()
			virtualDur := float64(s.Requests) * float64(model.N) / s.TotalKeyRate
			res.Tenants = make([]TenantResult, len(comp.Tenants))
			for i, tr := range comp.Tenants {
				res.Tenants[i] = TenantResult{
					Name:     tr.Snapshot.Name,
					Class:    tr.Snapshot.Class,
					Offered:  offered[i],
					Admitted: float64(tr.Snapshot.Admitted) / virtualDur,
					Issued:   tr.Snapshot.Admitted + tr.Snapshot.Shed,
					Shed:     tr.Snapshot.Shed,
					Latency:  tr.Latency,
				}
			}
		}
	}
	res.MeanCI = stats.HistMeanCI(res.Sample, ci95)
	res.Breakdown = collector.Breakdown()
	res.Elapsed = time.Since(start)
	return res, nil
}
