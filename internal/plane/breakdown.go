package plane

import (
	"math"

	"memqlat/internal/core"
	"memqlat/internal/dist"
	"memqlat/internal/telemetry"
)

// predictBreakdown computes the per-stage means the model's
// ingredients imply, in the same units the measured planes record:
//
//   - queue wait: the per-key queueing delay at the heaviest server —
//     the eq. 3 batch waiting time E[W] = δ/R (R = (1−δ)(1−q)µ_S) plus
//     the service of the q/(1−q) same-batch keys ahead of a random key
//     (size-biased geometric batches).
//   - service: the exponential per-key service mean 1/µ_S.
//   - miss penalty: the per-miss database mean 1/µ_D (ρ_D ≈ 0 stage).
//   - fork-join: the maximal-statistics inflation — the E[T_S(N)]
//     point tsPoint minus the mean single-key sojourn.
//
// Stage entries carry Count 1: they are analytic points, not samples.
// Each stage also predicts P50/P95/P99 from the distributional shape
// the model assumes: service and miss penalty are exactly exponential
// (Exp(µ_S), Exp(µ_D)), so their quantiles are −ln(1−p)/µ; the queue
// wait reuses the exponential shape around its predicted mean (the
// heavy-traffic approximation behind eq. 3); the fork-join overhead is
// an analytic point mass — the model prices the join as one number, so
// all its quantiles coincide. These are the "predicted" columns the
// crossplane table diffs against the measured planes' sample quantiles.
func predictBreakdown(m *core.Config, tsPoint float64) (telemetry.Breakdown, error) {
	bq, err := m.HeaviestQueue()
	if err != nil {
		return nil, err
	}
	delta, err := bq.Delta()
	if err != nil {
		return nil, err
	}
	rate := (1 - delta) * bq.BatchServiceRate()
	wait := delta/rate + m.Q/(1-m.Q)/m.MuS
	service := 1 / m.MuS
	forkJoin := tsPoint - (wait + service)
	if forkJoin < 0 {
		forkJoin = 0
	}
	b := telemetry.Breakdown{
		telemetry.StageQueueWait: expStage(wait),
		telemetry.StageService:   expStage(service),
		telemetry.StageForkJoin:  analyticStage(forkJoin),
	}
	if m.MissRatio > 0 {
		b[telemetry.StageMissPenalty] = expStage(1 / m.MuD)
	}
	return b, nil
}

// analyticStage is a point-mass prediction: every quantile is the mean.
func analyticStage(mean float64) telemetry.StageStats {
	return telemetry.StageStats{
		Count: 1, Mean: mean, Total: mean,
		P50: mean, P95: mean, P99: mean,
	}
}

// expStage predicts an exponentially distributed stage with the given
// mean: quantile(p) = −ln(1−p)·mean.
func expStage(mean float64) telemetry.StageStats {
	return telemetry.StageStats{
		Count: 1, Mean: mean, Total: mean,
		P50: -math.Log(0.50) * mean,
		P95: -math.Log(0.05) * mean,
		P99: -math.Log(0.01) * mean,
	}
}

// DelayedHitFraction predicts, for a coalesced run, what fraction of
// misses arrive while their key's backend fetch is already in flight —
// i.e. the fraction of backend fetches coalescing saves.
//
// Misses on key k arrive Poisson at λ_k = Λ·r·w_k (w_k the key's
// popularity weight; Zipf(s) over keys, uniform when s = 0). Each
// fetch holds the key "in flight" for an Exp(µ_D) window, and by
// PASTA the probability a miss lands inside an open window is the
// window's duty cycle. Fetches renew at rate λ_k(1−D_k) with mean
// window 1/µ_D, which solves to the M/G/∞-style duty cycle
//
//	D_k = λ_k / (λ_k + µ_D)
//
// and the aggregate delayed-hit fraction is the miss-weighted average
// D = Σ_k w_k·D_k. The predicted backend fetch rate is Λ·r·(1−D) —
// the "~1 fetch per miss window" acceptance criterion, since each
// window then serves 1/(1−D_k) misses.
func DelayedHitFraction(lambdaMiss, muD float64, keys int, zipfS float64) (float64, error) {
	if keys <= 0 || lambdaMiss <= 0 || muD <= 0 {
		return 0, nil
	}
	weight := func(i int) float64 { return 1 / float64(keys) }
	if zipfS > 0 {
		z, err := dist.NewZipf(keys, zipfS)
		if err != nil {
			return 0, err
		}
		weight = z.Prob
	}
	var d float64
	for i := 0; i < keys; i++ {
		w := weight(i)
		lk := lambdaMiss * w
		d += w * lk / (lk + muD)
	}
	return d, nil
}

// proxyStageMean is the per-key mean sojourn at the proxy queue (queue
// wait + service), the analytic counterpart of the per-key proxy_hop
// samples the measured planes record.
func proxyStageMean(pc *core.Config) (float64, error) {
	bq, err := pc.HeaviestQueue()
	if err != nil {
		return 0, err
	}
	delta, err := bq.Delta()
	if err != nil {
		return 0, err
	}
	rate := (1 - delta) * bq.BatchServiceRate()
	return delta/rate + pc.Q/(1-pc.Q)/pc.MuS + 1/pc.MuS, nil
}
