package plane

import (
	"context"
	"math"
	"testing"
	"time"

	"memqlat/internal/telemetry"
	"memqlat/internal/workload"
)

// tieredScenario is the model/sim tiered matrix point: the paper's
// baseline at N=10 with an SSD tier absorbing most RAM misses. The
// MissRatio is not hand-picked — it is the MRC's own RAM miss ratio at
// RAMItems, which is the rate the live plane's capacity-sized cache
// realizes organically. MuDisk sits at 2× MuD so the model's
// blended-exponential miss stage stays a good approximation of the
// sim's explicit two-point mixture (widely separated rates make the
// mixture visibly non-exponential in the fork-join tail; the tiered
// experiment explores that axis, the cross-plane band pins this one).
func tieredScenario(t *testing.T) Scenario {
	t.Helper()
	s := FromConfig("tiered", workload.WithN(10))
	s.Requests = 8000
	s.KeysPerServer = 150000
	s.Seed = 7
	s.Keys = 2000
	s.ZipfS = 1.0
	s.Extstore = &ExtstoreSpec{RAMItems: 200, TotalItems: 1200, MuDisk: 2000}
	split, err := s.ExtstoreSplit()
	if err != nil {
		t.Fatal(err)
	}
	s.MissRatio = 1 - split.RAMHit
	if s.MissRatio <= 0.05 || split.DiskHitFraction() <= 0.3 {
		t.Fatalf("degenerate tier split %+v — the scenario no longer exercises the tier", split)
	}
	return s
}

// TestCrossPlaneTiered is the acceptance check for the extstore
// subsystem: all three planes price the SSD tier from the same
// miss-ratio curve, so (a) the composition simulator's tiered total
// must land inside the model plane's blended Theorem 1 band with the
// usual 8% slack, and (b) the live plane's realized disk-hit fraction
// — real segment reads over real RAM misses — must be within 1.5× of
// the MRC's two-point prediction.
func TestCrossPlaneTiered(t *testing.T) {
	ctx := context.Background()
	s := tieredScenario(t)
	split, err := s.ExtstoreSplit()
	if err != nil {
		t.Fatal(err)
	}
	beta := split.DiskHitFraction()

	t.Run("model-vs-sim", func(t *testing.T) {
		mres, err := ModelPlane{}.Run(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := (SimPlane{}).Run(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		if !mres.Total.Contains(sres.Point(), 0.08) {
			t.Errorf("tiered sim total %v outside model band [%v, %v] (+8%%)",
				sres.Point(), mres.Total.Lo, mres.Total.Hi)
		}
		// Both planes share the identical MRC prediction — that is what
		// makes their disk columns diffable at all.
		if mres.Extstore == nil || sres.Extstore == nil {
			t.Fatal("tiered run missing the Extstore result surface")
		}
		if mres.Extstore.Predicted != sres.Extstore.Predicted {
			t.Errorf("planes disagree on the MRC split: model %+v, sim %+v",
				mres.Extstore.Predicted, sres.Extstore.Predicted)
		}
		// The model prices the stages separately: miss_penalty stays the
		// backend's 1/µ_D and disk_read carries the 1/µ_disk mean.
		if got := mres.Breakdown.MeanOf(telemetry.StageMissPenalty); math.Abs(got-1/s.MuD) > 1e-12 {
			t.Errorf("model miss_penalty mean = %v, want unblended %v", got, 1/s.MuD)
		}
		if got := mres.Breakdown.MeanOf(telemetry.StageDiskRead); math.Abs(got-1/s.Extstore.MuDisk) > 1e-12 {
			t.Errorf("model disk_read mean = %v, want %v", got, 1/s.Extstore.MuDisk)
		}
		// The sim measured real disk reads at the predicted fraction
		// (binomial over ~20k misses: ±10% is generous).
		ds := sres.Breakdown[telemetry.StageDiskRead]
		if ds.Count == 0 {
			t.Fatal("sim breakdown has no disk_read samples")
		}
		if r := ds.Mean / (1 / s.Extstore.MuDisk); r < 0.9 || r > 1.1 {
			t.Errorf("sim disk_read mean = %v, want ~%v", ds.Mean, 1/s.Extstore.MuDisk)
		}
		if sres.Sim.BackendFetches+sres.Sim.DelayedHits+sres.Sim.DiskHits != sres.Sim.MissCount {
			t.Errorf("fetches(%d) + delayed(%d) + disk(%d) != misses(%d)",
				sres.Sim.BackendFetches, sres.Sim.DelayedHits, sres.Sim.DiskHits, sres.Sim.MissCount)
		}
		got := sres.Extstore.DiskHitFraction()
		if got < beta*0.9 || got > beta*1.1 {
			t.Errorf("sim disk-hit fraction %.3f, MRC predicts %.3f", got, beta)
		}
	})

	t.Run("sim-deterministic", func(t *testing.T) {
		a, err := (SimPlane{}).Run(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (SimPlane{}).Run(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		if a.Point() != b.Point() || a.Extstore.DiskHits != b.Extstore.DiskHits {
			t.Errorf("tiered sim not deterministic: %v/%d vs %v/%d",
				a.Point(), a.Extstore.DiskHits, b.Point(), b.Extstore.DiskHits)
		}
	})

	t.Run("coalesce-composes", func(t *testing.T) {
		cs := s
		cs.Coalesce = true
		sres, err := (SimPlane{}).Run(ctx, cs)
		if err != nil {
			t.Fatal(err)
		}
		// Disk hits are local reads — they never enter the coalescing
		// windows — and the three-way miss accounting must still close.
		if sres.Sim.BackendFetches+sres.Sim.DelayedHits+sres.Sim.DiskHits != sres.Sim.MissCount {
			t.Errorf("coalesced tiered accounting: fetches(%d) + delayed(%d) + disk(%d) != misses(%d)",
				sres.Sim.BackendFetches, sres.Sim.DelayedHits, sres.Sim.DiskHits, sres.Sim.MissCount)
		}
		if sres.Sim.DiskHits == 0 {
			t.Error("coalesced tiered run produced no disk hits")
		}
	})

	t.Run("live-vs-mrc", func(t *testing.T) {
		if testing.Short() {
			t.Skip("live plane needs real time")
		}
		// The live leg runs the same tier spec and key-popularity law at
		// live-sustainable rates. MissRatio stays 0: the capacity-sized
		// RAM cache produces the misses organically, which is the whole
		// point of deriving the split from the MRC.
		ls := Scenario{
			Name:         "tiered-live",
			N:            10,
			LoadRatios:   []float64{0.5, 0.5},
			TotalKeyRate: 4000,
			Q:            0.1,
			Xi:           0.15,
			MuS:          2000,
			MuD:          1000,
			Ops:          8000,
			Workers:      32,
			Duration:     45 * time.Second,
			Seed:         7,
			Keys:         2000,
			ZipfS:        1.0,
			Extstore:     &ExtstoreSpec{RAMItems: 200, TotalItems: 1200, MuDisk: 2000},
		}
		lsplit, err := ls.ExtstoreSplit()
		if err != nil {
			t.Fatal(err)
		}
		lbeta := lsplit.DiskHitFraction()
		res, err := LivePlane{}.Run(context.Background(), ls)
		if err != nil {
			t.Fatal(err)
		}
		er := res.Extstore
		if er == nil {
			t.Fatal("live tiered run missing the Extstore result surface")
		}
		if er.DiskHits == 0 || er.Promotions == 0 {
			t.Fatalf("live tier never served a read: %+v", er)
		}
		if er.RAMMisses == 0 {
			t.Fatal("capacity-sized cache produced no RAM misses")
		}
		if er.SegmentBytes == 0 || er.Segments == 0 {
			t.Fatalf("live tier holds no segments: %+v", er)
		}
		got := er.DiskHitFraction()
		if got < lbeta/1.5 || got > lbeta*1.5 {
			t.Errorf("live disk-hit fraction %.3f outside 1.5x of MRC prediction %.3f (hits=%d, ram misses=%d)",
				got, lbeta, er.DiskHits, er.RAMMisses)
		}
		// Real disk reads landed in the shared breakdown.
		if res.Breakdown[telemetry.StageDiskRead].Count == 0 {
			t.Error("live breakdown has no disk_read samples")
		}
	})
}

// TestTieredScenarioValidation pins the rejection surface: the
// integrated simulator does not model the tier, and malformed specs
// fail on every plane with a named scenario.
func TestTieredScenarioValidation(t *testing.T) {
	ctx := context.Background()
	s := tieredScenario(t)
	if _, err := (SimPlane{Mode: SimIntegrated}).Run(ctx, s); err == nil {
		t.Error("integrated sim accepted an extstore scenario")
	}
	for name, mut := range map[string]func(*ExtstoreSpec){
		"zero-ram":      func(e *ExtstoreSpec) { e.RAMItems = 0 },
		"no-ssd-budget": func(e *ExtstoreSpec) { e.TotalItems = e.RAMItems },
		"bad-mu":        func(e *ExtstoreSpec) { e.MuDisk = 0 },
		"bad-dist":      func(e *ExtstoreSpec) { e.DiskDist = "pareto" },
		"bad-sigma":     func(e *ExtstoreSpec) { e.DiskSigma = -1 },
	} {
		bad := s
		spec := *s.Extstore
		mut(&spec)
		bad.Extstore = &spec
		if _, err := bad.ExtstoreSplit(); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
		if _, err := (ModelPlane{}).Run(ctx, bad); err == nil {
			t.Errorf("%s: model plane accepted invalid spec", name)
		}
		if _, err := (SimPlane{}).Run(ctx, bad); err == nil {
			t.Errorf("%s: sim plane accepted invalid spec", name)
		}
	}
	// Split determinism: same seed, same curve, same prediction.
	a, err := s.ExtstoreSplit()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.ExtstoreSplit()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("ExtstoreSplit not deterministic: %+v vs %+v", a, b)
	}
	if sum := a.RAMHit + a.DiskHit + a.DBMiss; math.Abs(sum-1) > 1e-9 {
		t.Errorf("tier split does not sum to 1: %+v", a)
	}
	// Lognormal pricing keeps the disk stage's mean and orders quantiles.
	ln := s
	spec := *s.Extstore
	spec.DiskDist = DiskDistLogNormal
	ln.Extstore = &spec
	mres, err := ModelPlane{}.Run(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	ds := mres.Breakdown[telemetry.StageDiskRead]
	if math.Abs(ds.Mean-1/spec.MuDisk) > 1e-12 {
		t.Errorf("lognormal disk_read mean = %v, want %v", ds.Mean, 1/spec.MuDisk)
	}
	if !(ds.P50 < ds.P95 && ds.P95 < ds.P99) {
		t.Errorf("lognormal quantiles out of order: %+v", ds)
	}
	if ds.P50 >= ds.Mean {
		t.Errorf("lognormal median %v must sit below the mean %v", ds.P50, ds.Mean)
	}
}
