package sketch

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestNewRejectsBadRelativeError(t *testing.T) {
	for _, alpha := range []float64{-0.01, 0.5, 0.9, math.NaN()} {
		if _, err := New(Options{RelativeError: alpha}); err == nil {
			t.Errorf("New(α=%v): want error, got nil", alpha)
		}
	}
}

func TestDefaultRelativeError(t *testing.T) {
	s := MustNew(Options{})
	if got := s.RelativeError(); got != 0.01 {
		t.Fatalf("default relative error = %v, want 0.01", got)
	}
}

func TestEmptySketch(t *testing.T) {
	s := MustNew(Options{})
	snap := s.Snapshot()
	if snap.Count() != 0 || snap.Quantile(0.5) != 0 || snap.FractionAbove(0) != 0 {
		t.Fatalf("empty snapshot: count=%d p50=%v above=%v, want zeros",
			snap.Count(), snap.Quantile(0.5), snap.FractionAbove(0))
	}
	if snap.Mean() != 0 {
		t.Fatalf("empty mean = %v, want 0", snap.Mean())
	}
}

// TestQuantileRelativeErrorProperty is the accuracy property the
// watchdog's band math depends on: for values spanning the indexable
// range, every sketch quantile stays within the configured relative
// error of the exact sorted-reference value at the same rank.
func TestQuantileRelativeErrorProperty(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.02, 0.05} {
		s := MustNew(Options{RelativeError: alpha})
		rng := rand.New(rand.NewSource(42))
		const n = 20000
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform between 100ns and 10s: seven decades, like a
			// latency distribution with a heavy tail.
			vals[i] = math.Exp(rng.Float64()*math.Log(1e8)) * 1e-7
			s.Stripe(uint64(i)).Record(vals[i])
		}
		sort.Float64s(vals)
		snap := s.Snapshot()
		if snap.Count() != n {
			t.Fatalf("α=%v: count=%d, want %d", alpha, snap.Count(), n)
		}
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
			rank := int(math.Ceil(q * n))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			got := snap.Quantile(q)
			if relErr := math.Abs(got-exact) / exact; relErr > alpha*1.0001 {
				t.Errorf("α=%v q=%v: sketch=%v exact=%v relative error %v > %v",
					alpha, q, got, exact, relErr, alpha)
			}
		}
		if m, em := snap.Mean(), mean(vals); math.Abs(m-em)/em > 1e-9 {
			t.Errorf("α=%v: mean=%v, want exact %v", alpha, m, em)
		}
		if snap.Min() != vals[0] || snap.Max() != vals[n-1] {
			t.Errorf("α=%v: min/max=%v/%v, want %v/%v", alpha, snap.Min(), snap.Max(), vals[0], vals[n-1])
		}
	}
}

func mean(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func TestQuantileEdgeValues(t *testing.T) {
	s := MustNew(Options{})
	s.Record(math.NaN()) // dropped
	s.Record(-1)         // low bucket
	s.Record(0)          // low bucket
	s.Record(5e-10)      // below minValue
	s.Record(2e3)        // overflow
	snap := s.Snapshot()
	if snap.Count() != 4 {
		t.Fatalf("count=%d, want 4 (NaN dropped)", snap.Count())
	}
	if got := snap.Quantile(0.1); got != 0 {
		t.Errorf("p10=%v, want the low bucket's representative 0", got)
	}
	// A single indexable value: min/max clamping pins every quantile to it.
	one := MustNew(Options{})
	one.Record(1e-3)
	osnap := one.Snapshot()
	if p0, p100 := osnap.Quantile(0), osnap.Quantile(1); p0 != 1e-3 || p100 != 1e-3 {
		t.Errorf("single-value quantiles %v/%v, want exactly 1e-3", p0, p100)
	}
	if got := snap.Quantile(1); got != 2e3 {
		t.Errorf("p100=%v, want overflow max 2e3", got)
	}
	if got := snap.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN)=%v, want 0", got)
	}
	// Out-of-range q clamps rather than errors.
	if snap.Quantile(-1) != snap.Quantile(0) || snap.Quantile(2) != snap.Quantile(1) {
		t.Errorf("out-of-range q should clamp")
	}
}

func TestFractionAbove(t *testing.T) {
	s := MustNew(Options{})
	for i := 1; i <= 100; i++ {
		s.Record(float64(i) * 1e-3) // 1ms .. 100ms
	}
	snap := s.Snapshot()
	if got := snap.FractionAbove(50e-3); math.Abs(got-0.5) > 0.03 {
		t.Errorf("FractionAbove(50ms)=%v, want ~0.5", got)
	}
	if got := snap.FractionAbove(1); got != 0 {
		t.Errorf("FractionAbove(1s)=%v, want 0", got)
	}
	if got := snap.FractionAbove(0); got != 1 {
		t.Errorf("FractionAbove(0)=%v, want 1", got)
	}
}

func TestMergeAndReset(t *testing.T) {
	a := MustNew(Options{})
	b := MustNew(Options{})
	for i := 0; i < 1000; i++ {
		a.Record(1e-3)
		b.Stripe(uint64(i)).Record(4e-3)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("Merge(nil): %v", err)
	}
	if got := a.Count(); got != 2000 {
		t.Fatalf("merged count=%d, want 2000", got)
	}
	snap := a.Snapshot()
	if p50, p99 := snap.Quantile(0.5), snap.Quantile(0.99); p50 > 1.2e-3 || p99 < 3.5e-3 {
		t.Fatalf("merged p50=%v p99=%v, want ~1ms / ~4ms", p50, p99)
	}
	a.Reset()
	if got := a.Count(); got != 0 {
		t.Fatalf("count after Reset = %d, want 0", got)
	}
	if snap := a.Snapshot(); snap.Quantile(0.99) != 0 {
		t.Fatalf("p99 after Reset = %v, want 0", snap.Quantile(0.99))
	}

	other := MustNew(Options{RelativeError: 0.05})
	if err := a.Merge(other); err == nil {
		t.Fatalf("Merge across different α: want error")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := MustNew(Options{}), MustNew(Options{})
	for i := 0; i < 500; i++ {
		a.Record(2e-3)
		b.Record(8e-3)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatalf("Snapshot.Merge: %v", err)
	}
	if err := sa.Merge(nil); err != nil {
		t.Fatalf("Snapshot.Merge(nil): %v", err)
	}
	if sa.Count() != 1000 {
		t.Fatalf("merged snapshot count=%d, want 1000", sa.Count())
	}
	if p99 := sa.Quantile(0.99); math.Abs(p99-8e-3)/8e-3 > 0.011 {
		t.Fatalf("merged snapshot p99=%v, want ~8ms", p99)
	}
	mismatched := MustNew(Options{RelativeError: 0.1}).Snapshot()
	if err := sa.Merge(mismatched); err == nil {
		t.Fatalf("Snapshot.Merge across different α: want error")
	}
}

// TestConcurrentRecordSnapshotMerge is the -race gauntlet: 1k goroutines
// hammer Record through sharded stripes while snapshots, merges and
// resets run concurrently. Correctness here is "no race, no lost
// bookkeeping invariants", not exact counts (Reset discards in flight).
func TestConcurrentRecordSnapshotMerge(t *testing.T) {
	s := MustNew(Options{})
	other := MustNew(Options{})
	const goroutines = 1000
	const perG = 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			st := s.Stripe(uint64(g))
			for i := 0; i < perG; i++ {
				st.Record(float64(i+1) * 1e-6)
			}
		}(g)
	}
	var aux sync.WaitGroup
	stop := make(chan struct{})
	aux.Add(2)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := s.Snapshot()
			if snap.Count() < 0 {
				t.Error("negative count")
				return
			}
			_ = snap.Quantile(0.99)
		}
	}()
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			other.Record(1e-3)
			if err := other.Merge(s); err != nil {
				t.Errorf("Merge: %v", err)
				return
			}
			other.Reset()
		}
	}()
	close(start)
	wg.Wait()
	close(stop)
	aux.Wait()
	if got := s.Count(); got != goroutines*perG {
		t.Fatalf("count=%d, want %d", got, goroutines*perG)
	}
}

// BenchmarkSketchRecord is benchdiff-gated in BENCH_slo.json: Record is
// on the per-command hot path of every tier when the watchdog is armed
// and must stay zero-alloc.
func BenchmarkSketchRecord(b *testing.B) {
	s := MustNew(Options{})
	st := s.Stripe(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Record(123e-6)
	}
}
