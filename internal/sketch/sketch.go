// Package sketch implements a mergeable streaming quantile sketch with
// DDSketch-style relative-error guarantees: values are assigned to
// geometric buckets with ratio gamma = (1+α)/(1−α), so any quantile
// estimate is within a relative error of α of the true sample value.
//
// Unlike stats.Histogram (whose Record grows its count slice on
// demand), a Sketch preallocates its entire bucket array at
// construction, so Record never allocates — it is safe on the hottest
// request paths. Contention is bounded by lock striping in the style of
// telemetry.Collector: unsharded Records land in stripe 0, and workers
// holding distinct Stripe handles never serialize on one mutex.
//
// Snapshot, Merge and Reset make the sketch a rolling-window primitive:
// the SLO watchdog snapshots and resets one sketch per telemetry stage
// at every window boundary and evaluates the frozen snapshot off the
// hot path.
package sketch

import (
	"fmt"
	"math"
	"sync"
)

// numStripes is the number of independent lock domains. Power of two so
// Stripe can mask instead of divide.
const numStripes = 8

// The indexable value range, in seconds: [minValue, maxValue] covers
// 1 ns to ~17 min of latency. Values below minValue (including zero and
// negatives) land in a dedicated low bucket; values above maxValue land
// in an overflow bucket and are reported as the observed maximum.
const (
	minValue = 1e-9
	maxValue = 1e3
)

// Options configures a Sketch.
type Options struct {
	// RelativeError is the quantile accuracy bound α in (0, 0.5):
	// Quantile(q) is within ±α·v of the true sample value v.
	// 0 selects the default of 0.01 (1%).
	RelativeError float64
}

// config holds the derived bucketing parameters shared by a sketch and
// its snapshots.
type config struct {
	alpha       float64
	gamma       float64
	logGamma    float64
	invLogGamma float64
	// keyMin is the bucket key of minValue; bucket slot i>0 holds key
	// keyMin+i-1. Slot 0 is the low bucket, slot buckets-1 overflow.
	keyMin  int
	buckets int
}

func newConfig(alpha float64) (config, error) {
	if alpha == 0 {
		alpha = 0.01
	}
	if !(alpha > 0 && alpha < 0.5) {
		return config{}, fmt.Errorf("sketch: relative error %v must be in (0, 0.5)", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	logGamma := math.Log(gamma)
	keyOf := func(v float64) int { return int(math.Ceil(math.Log(v) / logGamma)) }
	keyMin := keyOf(minValue)
	keyMax := keyOf(maxValue)
	return config{
		alpha:       alpha,
		gamma:       gamma,
		logGamma:    logGamma,
		invLogGamma: 1 / logGamma,
		keyMin:      keyMin,
		buckets:     keyMax - keyMin + 3, // low bucket + keys + overflow
	}, nil
}

// index maps a value to its bucket slot. NaN, negatives and values
// below minValue map to the low bucket (slot 0).
func (c *config) index(v float64) int {
	if !(v >= minValue) {
		return 0
	}
	i := int(math.Ceil(math.Log(v)*c.invLogGamma)) - c.keyMin + 1
	if i >= c.buckets-1 {
		return c.buckets - 1
	}
	if i < 1 {
		// Guard against float rounding at the minValue boundary.
		return 1
	}
	return i
}

// value returns the representative value of bucket slot i: the point
// within the bucket whose maximum relative error over the bucket's
// range is exactly α (2·γ^k/(γ+1)).
func (c *config) value(i int) float64 {
	if i == 0 {
		return 0
	}
	k := c.keyMin + i - 1
	return 2 * math.Exp(float64(k)*c.logGamma) / (c.gamma + 1)
}

// Stripe is one lock domain of a Sketch. Its Record only contends with
// workers mapped to the same stripe.
type Stripe struct {
	cfg    *config
	mu     sync.Mutex
	counts []int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

// Record adds one observation to the stripe. It never allocates.
func (st *Stripe) Record(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := st.cfg.index(v)
	st.mu.Lock()
	st.counts[i]++
	st.n++
	st.sum += v
	if v < st.min {
		st.min = v
	}
	if v > st.max {
		st.max = v
	}
	st.mu.Unlock()
}

// Sketch is a thread-safe streaming quantile sketch. The zero value is
// not usable; construct with New.
type Sketch struct {
	cfg     config
	stripes [numStripes]Stripe
}

// New constructs an empty sketch.
func New(opts Options) (*Sketch, error) {
	cfg, err := newConfig(opts.RelativeError)
	if err != nil {
		return nil, err
	}
	s := &Sketch{cfg: cfg}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.cfg = &s.cfg
		st.counts = make([]int64, cfg.buckets)
		st.min = math.Inf(1)
		st.max = math.Inf(-1)
	}
	return s, nil
}

// MustNew is New for statically known-valid options.
func MustNew(opts Options) *Sketch {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// RelativeError reports the configured accuracy bound α.
func (s *Sketch) RelativeError() float64 { return s.cfg.alpha }

// Record adds one observation via stripe 0. Hot paths with many
// concurrent workers should take a per-worker handle via Stripe.
func (s *Sketch) Record(v float64) { s.stripes[0].Record(v) }

// Stripe returns the lock-stripe handle for the worker identified by
// hint; observations through distinct handles do not serialize.
func (s *Sketch) Stripe(hint uint64) *Stripe {
	return &s.stripes[hint&(numStripes-1)]
}

// Count reports the number of recorded observations across all stripes.
func (s *Sketch) Count() int64 {
	var n int64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += st.n
		st.mu.Unlock()
	}
	return n
}

// Reset discards all observations, keeping the bucketing parameters.
func (s *Sketch) Reset() {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for j := range st.counts {
			st.counts[j] = 0
		}
		st.n = 0
		st.sum = 0
		st.min = math.Inf(1)
		st.max = math.Inf(-1)
		st.mu.Unlock()
	}
}

// Merge folds other's observations into s (stripe 0). The sketches must
// share their relative-error configuration. Other is read under its
// stripe locks and left untouched.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return nil
	}
	if s.cfg.alpha != other.cfg.alpha || s.cfg.buckets != other.cfg.buckets {
		return fmt.Errorf("sketch: merging sketches with different bucketing (α %v vs %v)",
			s.cfg.alpha, other.cfg.alpha)
	}
	snap := other.Snapshot()
	dst := &s.stripes[0]
	dst.mu.Lock()
	for i, c := range snap.counts {
		dst.counts[i] += c
	}
	dst.n += snap.n
	dst.sum += snap.sum
	if snap.min < dst.min {
		dst.min = snap.min
	}
	if snap.max > dst.max {
		dst.max = snap.max
	}
	dst.mu.Unlock()
	return nil
}

// Snapshot returns a frozen, mergeable copy of the sketch's current
// state, merged across stripes. Snapshot allocates; it is meant for
// window boundaries and reporting, not the record path.
func (s *Sketch) Snapshot() *Snapshot {
	snap := &Snapshot{
		cfg:    s.cfg,
		counts: make([]int64, s.cfg.buckets),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for j, c := range st.counts {
			snap.counts[j] += c
		}
		snap.n += st.n
		snap.sum += st.sum
		if st.min < snap.min {
			snap.min = st.min
		}
		if st.max > snap.max {
			snap.max = st.max
		}
		st.mu.Unlock()
	}
	return snap
}

// Snapshot is an immutable point-in-time view of a Sketch. It is safe
// for concurrent reads; Merge mutates the receiver and must not race
// with readers.
type Snapshot struct {
	cfg    config
	counts []int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

// Count reports the number of observations in the snapshot.
func (sn *Snapshot) Count() int64 { return sn.n }

// Sum reports the summed observations.
func (sn *Snapshot) Sum() float64 { return sn.sum }

// Mean reports the exact sample mean (0 when empty).
func (sn *Snapshot) Mean() float64 {
	if sn.n == 0 {
		return 0
	}
	return sn.sum / float64(sn.n)
}

// Min reports the smallest observation (+Inf when empty).
func (sn *Snapshot) Min() float64 { return sn.min }

// Max reports the largest observation (−Inf when empty).
func (sn *Snapshot) Max() float64 { return sn.max }

// Quantile estimates the q-th quantile (q clamped to [0,1]); the
// estimate is within relative error α of the sample value at rank
// ceil(q·n) for values in the indexable range. Returns 0 when empty.
func (sn *Snapshot) Quantile(q float64) float64 {
	if sn.n == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(sn.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range sn.counts {
		cum += c
		if cum >= rank {
			if i == sn.cfg.buckets-1 {
				// Overflow bucket: the max is the best statement.
				return sn.max
			}
			// Exact min/max beat bucket representatives at the edges.
			return clamp(sn.cfg.value(i), sn.min, sn.max)
		}
	}
	return sn.max
}

// FractionAbove reports the fraction of observations strictly above x,
// up to bucket resolution (observations in x's own bucket count as not
// above). The SLO watchdog's burn rate is FractionAbove(target).
func (sn *Snapshot) FractionAbove(x float64) float64 {
	if sn.n == 0 {
		return 0
	}
	idx := sn.cfg.index(x)
	var above int64
	for i := idx + 1; i < len(sn.counts); i++ {
		above += sn.counts[i]
	}
	return float64(above) / float64(sn.n)
}

// Merge folds other into sn. The snapshots must share bucketing.
func (sn *Snapshot) Merge(other *Snapshot) error {
	if other == nil {
		return nil
	}
	if sn.cfg.alpha != other.cfg.alpha || sn.cfg.buckets != other.cfg.buckets {
		return fmt.Errorf("sketch: merging snapshots with different bucketing (α %v vs %v)",
			sn.cfg.alpha, other.cfg.alpha)
	}
	for i, c := range other.counts {
		sn.counts[i] += c
	}
	sn.n += other.n
	sn.sum += other.sum
	if other.min < sn.min {
		sn.min = other.min
	}
	if other.max > sn.max {
		sn.max = other.max
	}
	return nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
