package queueing

import (
	"errors"
	"math"
	"testing"
)

func TestNewMM1Validation(t *testing.T) {
	if _, err := NewMM1(-1, 1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := NewMM1(1, 0); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := NewMM1(math.NaN(), 1); err == nil {
		t.Error("NaN lambda accepted")
	}
}

func TestMM1KnownValues(t *testing.T) {
	// Paper's worked example flavour: muD = 1000/s (1ms mean service),
	// light load.
	m, err := NewMM1(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Utilization(), 0.1, 1e-12) {
		t.Errorf("rho = %v", m.Utilization())
	}
	got, err := m.MeanSojourn()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.0/900, 1e-12) {
		t.Errorf("mean sojourn = %v, want %v", got, 1.0/900)
	}
	ql, err := m.MeanQueueLength()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ql, 0.1/0.9, 1e-12) {
		t.Errorf("queue length = %v", ql)
	}
}

func TestMM1SojournCDFAndQuantile(t *testing.T) {
	m, _ := NewMM1(0, 1000) // idle: pure exponential service
	cdf, err := m.SojournCDF(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cdf, 1-1/math.E, 1e-9) {
		t.Errorf("CDF(mean) = %v", cdf)
	}
	if v, _ := m.SojournCDF(-1); v != 0 {
		t.Error("CDF(-1) != 0")
	}
	qv, err := m.SojournQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(qv, math.Ln2/1000, 1e-9) {
		t.Errorf("median = %v", qv)
	}
	c2, _ := m.SojournCDF(qv)
	if !almostEqual(c2, 0.5, 1e-9) {
		t.Errorf("CDF(median) = %v", c2)
	}
}

func TestMM1Unstable(t *testing.T) {
	m, _ := NewMM1(1000, 1000)
	if m.Stable() {
		t.Error("rho=1 reported stable")
	}
	if _, err := m.MeanSojourn(); !errors.Is(err, ErrUnstable) {
		t.Errorf("MeanSojourn err = %v", err)
	}
	if _, err := m.SojournCDF(1); !errors.Is(err, ErrUnstable) {
		t.Errorf("SojournCDF err = %v", err)
	}
	if _, err := m.SojournQuantile(0.5); !errors.Is(err, ErrUnstable) {
		t.Errorf("SojournQuantile err = %v", err)
	}
	if _, err := m.MeanQueueLength(); !errors.Is(err, ErrUnstable) {
		t.Errorf("MeanQueueLength err = %v", err)
	}
}

func TestMM1QuantileValidation(t *testing.T) {
	m, _ := NewMM1(1, 10)
	for _, k := range []float64{-0.5, 1, math.NaN()} {
		if _, err := m.SojournQuantile(k); err == nil {
			t.Errorf("quantile %v accepted", k)
		}
	}
}
