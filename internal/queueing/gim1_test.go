package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"memqlat/internal/dist"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	// Relative comparison with a tiny absolute floor so that
	// microsecond-scale quantities are compared meaningfully.
	return math.Abs(a-b) <= tol*math.Max(1e-15, math.Max(math.Abs(a), math.Abs(b)))
}

func mustExp(t *testing.T, rate float64) dist.Exponential {
	t.Helper()
	e, err := dist.NewExponential(rate)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustGP(t *testing.T, xi, lambda float64) dist.GeneralizedPareto {
	t.Helper()
	g, err := dist.NewGeneralizedPareto(xi, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBatchQueueValidation(t *testing.T) {
	exp := mustExp(t, 1)
	if _, err := NewBatchQueue(nil, 0.1, 1); err == nil {
		t.Error("nil interarrival accepted")
	}
	if _, err := NewBatchQueue(exp, -0.1, 1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := NewBatchQueue(exp, 1, 1); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := NewBatchQueue(exp, 0.1, 0); err == nil {
		t.Error("muS=0 accepted")
	}
}

func TestBatchQueueRates(t *testing.T) {
	// Facebook workload: lambda (keys) = 62.5K, q = 0.1, muS = 80K.
	// Batch rate = (1-q)*lambda = 56.25K; utilization = 62.5/80 = 0.78125.
	batchRate := (1 - 0.1) * 62500.0
	bq, err := NewBatchQueue(mustExp(t, batchRate), 0.1, 80000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(bq.KeyArrivalRate(), 62500, 1e-9) {
		t.Errorf("key rate = %v", bq.KeyArrivalRate())
	}
	if !almostEqual(bq.Utilization(), 62500.0/80000, 1e-9) {
		t.Errorf("rho = %v", bq.Utilization())
	}
	if !almostEqual(bq.BatchServiceRate(), 72000, 1e-9) {
		t.Errorf("muB = %v", bq.BatchServiceRate())
	}
	if !bq.Stable() {
		t.Error("should be stable")
	}
}

// For Poisson batch arrivals with q=0 the GI/M/1 delta equals rho
// exactly (M/M/1 special case).
func TestDeltaPoissonEqualsRho(t *testing.T) {
	tests := []struct{ lambda, mu float64 }{
		{30000, 80000},
		{62500, 80000},
		{10, 100},
		{99, 100},
	}
	for _, tt := range tests {
		bq, err := NewBatchQueue(mustExp(t, tt.lambda), 0, tt.mu)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := bq.Delta()
		if err != nil {
			t.Fatal(err)
		}
		want := tt.lambda / tt.mu
		if !almostEqual(delta, want, 1e-9) {
			t.Errorf("lambda=%v mu=%v: delta = %v, want rho = %v", tt.lambda, tt.mu, delta, want)
		}
	}
}

// D/M/1 (deterministic arrivals) has a known delta: delta = e^{-mu(1-delta)/lambda}.
// Spot check at rho = 0.5: delta solves delta = e^{-2(1-delta)}, delta ≈ 0.2032.
func TestDeltaDeterministicArrivals(t *testing.T) {
	d, err := dist.NewDeterministic(1.0 / 50) // batch rate 50
	if err != nil {
		t.Fatal(err)
	}
	bq, err := NewBatchQueue(d, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := bq.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(delta, 0.20319, 1e-3) {
		t.Errorf("D/M/1 delta = %v, want ~0.20319", delta)
	}
}

func TestDeltaUnstable(t *testing.T) {
	bq, err := NewBatchQueue(mustExp(t, 100), 0, 100) // rho = 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bq.Delta(); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
	bq2, _ := NewBatchQueue(mustExp(t, 150), 0, 100) // rho = 1.5
	if _, err := bq2.Delta(); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
}

// delta is the root of the fixed-point equation: verify the residual.
func TestDeltaSatisfiesFixedPoint(t *testing.T) {
	for _, xi := range []float64{0, 0.15, 0.4, 0.6} {
		gp := mustGP(t, xi, 56250) // batch arrival process
		bq, err := NewBatchQueue(gp, 0.1, 80000)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := bq.Delta()
		if err != nil {
			t.Fatal(err)
		}
		if delta <= 0 || delta >= 1 {
			t.Fatalf("xi=%v: delta = %v out of (0,1)", xi, delta)
		}
		want := gp.LaplaceTransform((1 - delta) * bq.BatchServiceRate())
		if !almostEqual(delta, want, 1e-9) {
			t.Errorf("xi=%v: fixed point residual: delta=%v L=%v", xi, delta, want)
		}
	}
}

// Burstier arrivals (larger xi) must give larger delta (longer delays)
// at equal utilization.
func TestDeltaIncreasesWithBurstiness(t *testing.T) {
	prev := -1.0
	for _, xi := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		bq, err := NewBatchQueue(mustGP(t, xi, 56250), 0.1, 80000)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := bq.Delta()
		if err != nil {
			t.Fatal(err)
		}
		if delta <= prev {
			t.Errorf("delta(xi=%v) = %v not greater than previous %v", xi, delta, prev)
		}
		prev = delta
	}
}

// delta increases with utilization for a fixed arrival shape.
func TestDeltaIncreasesWithUtilization(t *testing.T) {
	prev := -1.0
	for _, lambda := range []float64{10000, 30000, 50000, 70000} {
		bq, err := NewBatchQueue(mustGP(t, 0.15, (1-0.1)*lambda), 0.1, 80000)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := bq.Delta()
		if err != nil {
			t.Fatal(err)
		}
		if delta <= prev {
			t.Errorf("delta(lambda=%v) = %v not increasing", lambda, delta)
		}
		prev = delta
	}
}

func TestCDFsAndQuantilesConsistent(t *testing.T) {
	bq, err := NewBatchQueue(mustGP(t, 0.15, 56250), 0.1, 80000)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0, 0.25, 0.5, 0.9, 0.99} {
		tq, err := bq.WaitingQuantile(k)
		if err != nil {
			t.Fatal(err)
		}
		if tq > 0 {
			cdf, err := bq.WaitingCDF(tq)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(cdf, k, 1e-9) {
				t.Errorf("waiting CDF(quantile(%v)) = %v", k, cdf)
			}
		}
		tc, err := bq.SojournQuantile(k)
		if err != nil {
			t.Fatal(err)
		}
		cdf, err := bq.SojournCDF(tc)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(cdf, k, 1e-9) {
			t.Errorf("sojourn CDF(quantile(%v)) = %v", k, cdf)
		}
	}
	// Negative times.
	if v, _ := bq.WaitingCDF(-1); v != 0 {
		t.Error("waiting CDF(-1) != 0")
	}
	if v, _ := bq.SojournCDF(-1); v != 0 {
		t.Error("sojourn CDF(-1) != 0")
	}
}

func TestQuantileArgValidation(t *testing.T) {
	bq, _ := NewBatchQueue(mustExp(t, 10), 0, 100)
	for _, k := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := bq.WaitingQuantile(k); err == nil {
			t.Errorf("waiting quantile %v accepted", k)
		}
		if _, err := bq.SojournQuantile(k); err == nil {
			t.Errorf("sojourn quantile %v accepted", k)
		}
	}
}

func TestKeyLatencyBoundsOrdered(t *testing.T) {
	bq, err := NewBatchQueue(mustGP(t, 0.15, 56250), 0.1, 80000)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0.0; k < 1; k += 0.05 {
		lo, hi, err := bq.KeyLatencyBounds(k)
		if err != nil {
			t.Fatal(err)
		}
		if lo < 0 || hi < lo {
			t.Errorf("k=%v: bounds out of order lo=%v hi=%v", k, lo, hi)
		}
	}
}

func TestMeanSojourn(t *testing.T) {
	// M/M/1 with q=0: mean sojourn = 1/(mu - lambda).
	bq, _ := NewBatchQueue(mustExp(t, 50), 0, 100)
	got, err := bq.MeanSojourn()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.0/50, 1e-9) {
		t.Errorf("mean sojourn = %v, want 0.02", got)
	}
}

// Property: delta in (0,1) and quantiles non-negative and increasing in k
// across a range of stable parameterizations.
func TestPropertyDeltaAndQuantiles(t *testing.T) {
	f := func(rawXi, rawRho, rawQ float64) bool {
		xi := math.Abs(math.Mod(rawXi, 0.85))
		rho := 0.05 + math.Abs(math.Mod(rawRho, 0.88))
		q := math.Abs(math.Mod(rawQ, 0.5))
		muS := 80000.0
		keyRate := rho * muS
		gp, err := dist.NewGeneralizedPareto(xi, (1-q)*keyRate)
		if err != nil {
			return false
		}
		bq, err := NewBatchQueue(gp, q, muS)
		if err != nil {
			return false
		}
		delta, err := bq.Delta()
		if err != nil {
			return false
		}
		if delta <= 0 || delta >= 1 {
			return false
		}
		prev := -1.0
		for k := 0.1; k < 1; k += 0.2 {
			v, err := bq.SojournQuantile(k)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// GI/M/1 queue-length law: arriving batches see Geometric(1-delta)
// batches in system. Validate the PMF and its mean against an M/M/1
// case where delta = rho exactly.
func TestArrivalQueueLengthLaw(t *testing.T) {
	bq, err := NewBatchQueue(mustExp(t, 50), 0, 100) // M/M/1 rho=0.5
	if err != nil {
		t.Fatal(err)
	}
	p0, err := bq.ArrivalQueueLengthPMF(0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p0, 0.5, 1e-9) {
		t.Errorf("P{L=0} = %v, want 0.5", p0)
	}
	p2, err := bq.ArrivalQueueLengthPMF(2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p2, 0.125, 1e-9) {
		t.Errorf("P{L=2} = %v, want 0.125", p2)
	}
	mean, err := bq.MeanArrivalQueueLength()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mean, 1, 1e-9) { // rho/(1-rho) = 1
		t.Errorf("E[L] = %v, want 1", mean)
	}
	if _, err := bq.ArrivalQueueLengthPMF(-1); err == nil {
		t.Error("negative length accepted")
	}
	// PMF sums to ~1.
	var sum float64
	for n := 0; n < 200; n++ {
		p, err := bq.ArrivalQueueLengthPMF(n)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("PMF sum = %v", sum)
	}
}
