// Package queueing implements the queueing-theoretic machinery of the
// paper: the GI^X/M/1 batch queue that models a Memcached server
// (§3, §4.3) and the M/M/1 queue that models the back-end database
// (§4.4).
package queueing

import (
	"errors"
	"fmt"
	"math"

	"memqlat/internal/dist"
)

// ErrUnstable is returned when the offered load meets or exceeds
// capacity (ρ >= 1), in which case δ and all latency quantities diverge.
var ErrUnstable = errors.New("queueing: utilization >= 1, queue unstable")

// BatchQueue is the paper's GI^X/M/1 model of one Memcached server:
//
//   - batches arrive with general i.i.d. inter-arrival gaps TX,
//   - each batch carries X keys, X ~ Geometric: P{X=n} = q^{n-1}(1-q),
//   - each key's service time is exponential with rate µ_S.
//
// The geometric sum of exponentials is exponential, so batches are
// served at rate µ_B = (1-q)·µ_S and the system is analyzed as a GI/M/1
// queue on batches (paper §4.3.1).
type BatchQueue struct {
	// Interarrival is the distribution of the gap between batches.
	Interarrival dist.Interarrival
	// Q is the concurrent probability (geometric batch parameter).
	Q float64
	// MuS is the per-key service rate at the server.
	MuS float64
}

// NewBatchQueue validates the parameters.
func NewBatchQueue(interarrival dist.Interarrival, q, muS float64) (*BatchQueue, error) {
	if interarrival == nil {
		return nil, errors.New("queueing: nil interarrival distribution")
	}
	if q < 0 || q >= 1 || math.IsNaN(q) {
		return nil, fmt.Errorf("queueing: concurrent probability q=%v must be in [0, 1)", q)
	}
	if !(muS > 0) {
		return nil, fmt.Errorf("queueing: service rate muS=%v must be positive", muS)
	}
	if !(interarrival.Mean() > 0) {
		return nil, fmt.Errorf("queueing: interarrival mean %v must be positive", interarrival.Mean())
	}
	return &BatchQueue{Interarrival: interarrival, Q: q, MuS: muS}, nil
}

// BatchServiceRate returns µ_B = (1-q)·µ_S.
func (b *BatchQueue) BatchServiceRate() float64 { return (1 - b.Q) * b.MuS }

// BatchArrivalRate returns 1/E[TX].
func (b *BatchQueue) BatchArrivalRate() float64 { return 1 / b.Interarrival.Mean() }

// KeyArrivalRate returns λ = E[X]/E[TX] = 1/((1-q)·E[TX]).
func (b *BatchQueue) KeyArrivalRate() float64 {
	return b.BatchArrivalRate() / (1 - b.Q)
}

// Utilization returns ρ_S = λ/µ_S (equivalently batch-rate/µ_B).
func (b *BatchQueue) Utilization() float64 { return b.KeyArrivalRate() / b.MuS }

// Stable reports whether ρ_S < 1.
func (b *BatchQueue) Stable() bool { return b.Utilization() < 1 }

// Delta solves the paper's eq. 6 (Table 1 form):
//
//	δ = L_TX((1-δ)·(1-q)·µ_S),  δ ∈ (0, 1),
//
// by bisection on h(δ) = δ − L_TX((1−δ)µ_B). The root is unique in (0,1)
// for a stable queue. Returns ErrUnstable when ρ >= 1.
func (b *BatchQueue) Delta() (float64, error) {
	if !b.Stable() {
		return 0, fmt.Errorf("%w (rho=%.4f)", ErrUnstable, b.Utilization())
	}
	muB := b.BatchServiceRate()
	h := func(delta float64) float64 {
		return delta - b.Interarrival.LaplaceTransform((1-delta)*muB)
	}
	lo, hi := 0.0, 1-1e-12
	// h(0) = -L(µ_B) < 0 always. h near 1 must be > 0 when stable; guard
	// against numerical transforms that barely miss it.
	if h(hi) <= 0 {
		return 0, fmt.Errorf("%w (no interior root; rho=%.6f)", ErrUnstable, b.Utilization())
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if h(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-14 {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// decayRate returns (1−δ)(1−q)µ_S, the exponential decay rate shared by
// eqs. 4–5, computing δ on demand.
func (b *BatchQueue) decayRate() (delta, rate float64, err error) {
	delta, err = b.Delta()
	if err != nil {
		return 0, 0, err
	}
	return delta, (1 - delta) * b.BatchServiceRate(), nil
}

// WaitingCDF evaluates the batch queueing-time distribution (eq. 4):
//
//	T_Q(t) = 1 − δ·e^{−(1−δ)(1−q)µ_S·t}.
func (b *BatchQueue) WaitingCDF(t float64) (float64, error) {
	delta, rate, err := b.decayRate()
	if err != nil {
		return 0, err
	}
	if t < 0 {
		return 0, nil
	}
	return 1 - delta*math.Exp(-rate*t), nil
}

// SojournCDF evaluates the batch completion-time distribution (eq. 5):
//
//	T_C(t) = 1 − e^{−(1−δ)(1−q)µ_S·t}.
func (b *BatchQueue) SojournCDF(t float64) (float64, error) {
	_, rate, err := b.decayRate()
	if err != nil {
		return 0, err
	}
	if t < 0 {
		return 0, nil
	}
	return 1 - math.Exp(-rate*t), nil
}

// WaitingQuantile evaluates eq. 7, the k-th quantile of the batch
// queueing time:
//
//	(T_Q)_k = max{ (ln δ − ln(1−k)) / ((1−δ)(1−q)µ_S), 0 }.
func (b *BatchQueue) WaitingQuantile(k float64) (float64, error) {
	if err := checkQuantile(k); err != nil {
		return 0, err
	}
	delta, rate, err := b.decayRate()
	if err != nil {
		return 0, err
	}
	v := (math.Log(delta) - math.Log(1-k)) / rate
	if v < 0 {
		return 0, nil
	}
	return v, nil
}

// SojournQuantile evaluates eq. 8, the k-th quantile of the batch
// completion time:
//
//	(T_C)_k = −ln(1−k) / ((1−δ)(1−q)µ_S).
func (b *BatchQueue) SojournQuantile(k float64) (float64, error) {
	if err := checkQuantile(k); err != nil {
		return 0, err
	}
	_, rate, err := b.decayRate()
	if err != nil {
		return 0, err
	}
	return -math.Log(1-k) / rate, nil
}

// KeyLatencyBounds evaluates eq. 9: the k-th quantile of the
// per-key processing latency T_S at the server is bounded by the batch
// queueing-time quantile below and the batch completion-time quantile
// above:
//
//	(T_Q)_k < (T_S)_k <= (T_C)_k.
func (b *BatchQueue) KeyLatencyBounds(k float64) (lo, hi float64, err error) {
	lo, err = b.WaitingQuantile(k)
	if err != nil {
		return 0, 0, err
	}
	hi, err = b.SojournQuantile(k)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// MeanSojourn returns the mean batch completion time 1/((1−δ)(1−q)µ_S).
func (b *BatchQueue) MeanSojourn() (float64, error) {
	_, rate, err := b.decayRate()
	if err != nil {
		return 0, err
	}
	return 1 / rate, nil
}

// ArrivalQueueLengthPMF returns P{L = n}: the probability that an
// arriving batch finds n batches in the system. For GI/M/1 this is the
// geometric law (1−δ)·δ^n — δ's operational meaning, and a second,
// independent handle for validating the root against simulation.
func (b *BatchQueue) ArrivalQueueLengthPMF(n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("queueing: queue length %d must be >= 0", n)
	}
	delta, err := b.Delta()
	if err != nil {
		return 0, err
	}
	return (1 - delta) * math.Pow(delta, float64(n)), nil
}

// MeanArrivalQueueLength returns E[L] = δ/(1−δ), the mean number of
// batches an arrival finds in the system.
func (b *BatchQueue) MeanArrivalQueueLength() (float64, error) {
	delta, err := b.Delta()
	if err != nil {
		return 0, err
	}
	return delta / (1 - delta), nil
}

func checkQuantile(k float64) error {
	if math.IsNaN(k) || k < 0 || k >= 1 {
		return fmt.Errorf("queueing: quantile level %v must be in [0, 1)", k)
	}
	return nil
}
