package queueing

import (
	"fmt"
	"math"
)

// MM1 is the classic M/M/1 queue used by the paper to model the back-end
// database stage (§4.4): Poisson arrivals at rate Lambda, exponential
// service at rate Mu, one server, FIFO.
type MM1 struct {
	// Lambda is the arrival rate.
	Lambda float64
	// Mu is the service rate.
	Mu float64
}

// NewMM1 validates lambda >= 0 and mu > 0.
func NewMM1(lambda, mu float64) (*MM1, error) {
	if lambda < 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("queueing: mm1 lambda=%v must be >= 0", lambda)
	}
	if !(mu > 0) {
		return nil, fmt.Errorf("queueing: mm1 mu=%v must be positive", mu)
	}
	return &MM1{Lambda: lambda, Mu: mu}, nil
}

// Utilization returns ρ = λ/µ.
func (m *MM1) Utilization() float64 { return m.Lambda / m.Mu }

// Stable reports ρ < 1.
func (m *MM1) Stable() bool { return m.Utilization() < 1 }

// SojournCDF evaluates the response-time distribution (paper eq. 19):
//
//	T_D(t) = 1 − e^{−(1−ρ)µ·t}.
func (m *MM1) SojournCDF(t float64) (float64, error) {
	if !m.Stable() {
		return 0, fmt.Errorf("%w (rho=%.4f)", ErrUnstable, m.Utilization())
	}
	if t < 0 {
		return 0, nil
	}
	return 1 - math.Exp(-(1-m.Utilization())*m.Mu*t), nil
}

// MeanSojourn returns 1/((1−ρ)µ) = 1/(µ−λ).
func (m *MM1) MeanSojourn() (float64, error) {
	if !m.Stable() {
		return 0, fmt.Errorf("%w (rho=%.4f)", ErrUnstable, m.Utilization())
	}
	return 1 / (m.Mu - m.Lambda), nil
}

// SojournQuantile returns the k-th quantile of the response time,
// −ln(1−k)/((1−ρ)µ).
func (m *MM1) SojournQuantile(k float64) (float64, error) {
	if err := checkQuantile(k); err != nil {
		return 0, err
	}
	if !m.Stable() {
		return 0, fmt.Errorf("%w (rho=%.4f)", ErrUnstable, m.Utilization())
	}
	return -math.Log(1-k) / ((1 - m.Utilization()) * m.Mu), nil
}

// MeanQueueLength returns the mean number in system, ρ/(1−ρ).
func (m *MM1) MeanQueueLength() (float64, error) {
	if !m.Stable() {
		return 0, fmt.Errorf("%w (rho=%.4f)", ErrUnstable, m.Utilization())
	}
	rho := m.Utilization()
	return rho / (1 - rho), nil
}
