package queueing_test

import (
	"fmt"

	"memqlat/internal/dist"
	"memqlat/internal/queueing"
)

// One Memcached server under the paper's Facebook workload: Generalized
// Pareto batch gaps (ξ=0.15), 10% key concurrency, 80K keys/s service.
func ExampleBatchQueue_Delta() {
	arrival, err := dist.NewGeneralizedPareto(0.15, (1-0.1)*62500)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bq, err := queueing.NewBatchQueue(arrival, 0.1, 80000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	delta, err := bq.Delta()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mean, err := bq.MeanSojourn()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("utilization %.1f%%, δ = %.4f, mean per-key latency %.0fµs\n",
		bq.Utilization()*100, delta, mean*1e6)
	// Output:
	// utilization 78.1%, δ = 0.8104, mean per-key latency 73µs
}

// For Poisson arrivals the GI/M/1 root δ reduces to the M/M/1
// utilization, and the eq. 9 bounds collapse around the familiar
// exponential sojourn quantiles.
func ExampleBatchQueue_KeyLatencyBounds() {
	arrival, err := dist.NewExponential(40000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bq, err := queueing.NewBatchQueue(arrival, 0, 80000) // M/M/1, ρ = 0.5
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	lo, hi, err := bq.KeyLatencyBounds(0.9)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("p90 per-key latency in [%.1fµs, %.1fµs]\n", lo*1e6, hi*1e6)
	// Output:
	// p90 per-key latency in [40.2µs, 57.6µs]
}
