// Package protocol implements the memcached ASCII (text) protocol:
// server-side command parsing, server-side response writing, and
// client-side response parsing. It covers the commands the paper's
// workload exercises (get/gets/set and friends) plus the common
// management commands, with noreply support.
package protocol

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Op enumerates protocol commands.
type Op int

// Supported operations.
const (
	OpGet Op = iota + 1
	OpGets
	OpSet
	OpAdd
	OpReplace
	OpAppend
	OpPrepend
	OpCas
	OpDelete
	OpIncr
	OpDecr
	OpTouch
	OpGat
	OpGats
	OpStats
	OpFlushAll
	OpVersion
	OpVerbosity
	OpQuit
)

// String implements fmt.Stringer.
func (o Op) String() string {
	names := map[Op]string{
		OpGet: "get", OpGets: "gets", OpSet: "set", OpAdd: "add",
		OpReplace: "replace", OpAppend: "append", OpPrepend: "prepend",
		OpCas: "cas", OpDelete: "delete", OpIncr: "incr", OpDecr: "decr",
		OpTouch: "touch", OpGat: "gat", OpGats: "gats",
		OpStats: "stats", OpFlushAll: "flush_all",
		OpVersion: "version", OpVerbosity: "verbosity", OpQuit: "quit",
	}
	if s, ok := names[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// MaxValueBytes bounds the data block a parser will accept (matches the
// cache's 1 MiB default item limit).
const MaxValueBytes = 1 << 20

// MaxLineBytes bounds a single command line (multi-get of many keys).
const MaxLineBytes = 8 << 10

// ClientError is a malformed-request error; servers report it as
// CLIENT_ERROR and keep the connection open.
type ClientError struct {
	Msg string
}

// Error implements error.
func (e *ClientError) Error() string { return "protocol: client error: " + e.Msg }

// ErrQuit is returned by ReadCommand when the peer sent quit.
var ErrQuit = errors.New("protocol: quit")

// Command is one parsed request.
type Command struct {
	Op      Op
	Key     string
	Keys    []string // get/gets
	Flags   uint32
	Exptime int64 // raw exptime token (memcached semantics)
	Value   []byte
	CAS     uint64
	Delta   uint64 // incr/decr amount
	Noreply bool
	Level   int // verbosity
}

// ReadCommand parses one request from r. Malformed requests yield a
// *ClientError (recoverable); I/O failures yield the underlying error;
// a quit command yields ErrQuit.
func ReadCommand(r *bufio.Reader) (*Command, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return nil, &ClientError{Msg: "empty command"}
	}
	op := string(fields[0])
	args := fields[1:]
	switch op {
	case "get", "gets":
		return parseGet(op, args)
	case "set", "add", "replace", "append", "prepend":
		return parseStorage(op, args, r)
	case "cas":
		return parseCas(args, r)
	case "delete":
		return parseDelete(args)
	case "incr", "decr":
		return parseIncrDecr(op, args)
	case "touch":
		return parseTouch(args)
	case "gat", "gats":
		return parseGat(op, args)
	case "stats":
		cmd := &Command{Op: OpStats}
		if len(args) >= 1 {
			cmd.Key = string(args[0]) // sub-statistic: "items", "slabs", ...
		}
		return cmd, nil
	case "flush_all":
		return parseFlushAll(args)
	case "version":
		return &Command{Op: OpVersion}, nil
	case "verbosity":
		return parseVerbosity(args)
	case "quit":
		return nil, ErrQuit
	default:
		return nil, &ClientError{Msg: "unknown command " + op}
	}
}

func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if errors.Is(err, bufio.ErrBufferFull) {
		// Drain the oversized line, then report a client error.
		for errors.Is(err, bufio.ErrBufferFull) {
			_, err = r.ReadSlice('\n')
		}
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, err
		}
		return nil, &ClientError{Msg: "line too long"}
	}
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

func parseGet(op string, args [][]byte) (*Command, error) {
	if len(args) == 0 {
		return nil, &ClientError{Msg: op + " requires at least one key"}
	}
	cmd := &Command{Op: OpGet, Keys: make([]string, len(args))}
	if op == "gets" {
		cmd.Op = OpGets
	}
	for i, a := range args {
		cmd.Keys[i] = string(a)
	}
	return cmd, nil
}

// parseStorageHeader parses "<key> <flags> <exptime> <bytes>" and the
// optional trailing noreply, returning the value length.
func parseStorageHeader(op string, args [][]byte, extra int) (cmd *Command, length int, err error) {
	want := 4 + extra
	noreply := false
	if len(args) == want+1 && string(args[want]) == "noreply" {
		noreply = true
		args = args[:want]
	}
	if len(args) != want {
		return nil, 0, &ClientError{Msg: "bad " + op + " argument count"}
	}
	flags, err := strconv.ParseUint(string(args[1]), 10, 32)
	if err != nil {
		return nil, 0, &ClientError{Msg: "bad flags"}
	}
	exptime, err := strconv.ParseInt(string(args[2]), 10, 64)
	if err != nil {
		return nil, 0, &ClientError{Msg: "bad exptime"}
	}
	length64, err := strconv.ParseUint(string(args[3]), 10, 31)
	if err != nil || length64 > MaxValueBytes {
		return nil, 0, &ClientError{Msg: "bad data length"}
	}
	cmd = &Command{
		Key:     string(args[0]),
		Flags:   uint32(flags),
		Exptime: exptime,
		Noreply: noreply,
	}
	return cmd, int(length64), nil
}

func readDataBlock(r *bufio.Reader, length int) ([]byte, error) {
	buf := make([]byte, length+2)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if !bytes.HasSuffix(buf, []byte("\r\n")) {
		return nil, &ClientError{Msg: "bad data chunk terminator"}
	}
	return buf[:length], nil
}

func parseStorage(op string, args [][]byte, r *bufio.Reader) (*Command, error) {
	cmd, length, err := parseStorageHeader(op, args, 0)
	if err != nil {
		return nil, err
	}
	switch op {
	case "set":
		cmd.Op = OpSet
	case "add":
		cmd.Op = OpAdd
	case "replace":
		cmd.Op = OpReplace
	case "append":
		cmd.Op = OpAppend
	case "prepend":
		cmd.Op = OpPrepend
	}
	cmd.Value, err = readDataBlock(r, length)
	if err != nil {
		return nil, err
	}
	return cmd, nil
}

func parseCas(args [][]byte, r *bufio.Reader) (*Command, error) {
	cmd, length, err := parseStorageHeader("cas", args, 1)
	if err != nil {
		return nil, err
	}
	cas, err := strconv.ParseUint(string(args[4]), 10, 64)
	if err != nil {
		return nil, &ClientError{Msg: "bad cas token"}
	}
	cmd.Op = OpCas
	cmd.CAS = cas
	cmd.Value, err = readDataBlock(r, length)
	if err != nil {
		return nil, err
	}
	return cmd, nil
}

func parseDelete(args [][]byte) (*Command, error) {
	noreply := false
	if len(args) == 2 && string(args[1]) == "noreply" {
		noreply = true
		args = args[:1]
	}
	if len(args) != 1 {
		return nil, &ClientError{Msg: "bad delete argument count"}
	}
	return &Command{Op: OpDelete, Key: string(args[0]), Noreply: noreply}, nil
}

func parseIncrDecr(op string, args [][]byte) (*Command, error) {
	noreply := false
	if len(args) == 3 && string(args[2]) == "noreply" {
		noreply = true
		args = args[:2]
	}
	if len(args) != 2 {
		return nil, &ClientError{Msg: "bad " + op + " argument count"}
	}
	delta, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		return nil, &ClientError{Msg: "invalid numeric delta argument"}
	}
	cmd := &Command{Op: OpIncr, Key: string(args[0]), Delta: delta, Noreply: noreply}
	if op == "decr" {
		cmd.Op = OpDecr
	}
	return cmd, nil
}

func parseTouch(args [][]byte) (*Command, error) {
	noreply := false
	if len(args) == 3 && string(args[2]) == "noreply" {
		noreply = true
		args = args[:2]
	}
	if len(args) != 2 {
		return nil, &ClientError{Msg: "bad touch argument count"}
	}
	exptime, err := strconv.ParseInt(string(args[1]), 10, 64)
	if err != nil {
		return nil, &ClientError{Msg: "bad exptime"}
	}
	return &Command{Op: OpTouch, Key: string(args[0]), Exptime: exptime, Noreply: noreply}, nil
}

// parseGat parses "gat <exptime> <key>+" (get-and-touch).
func parseGat(op string, args [][]byte) (*Command, error) {
	if len(args) < 2 {
		return nil, &ClientError{Msg: op + " requires an exptime and at least one key"}
	}
	exptime, err := strconv.ParseInt(string(args[0]), 10, 64)
	if err != nil {
		return nil, &ClientError{Msg: "bad exptime"}
	}
	cmd := &Command{Op: OpGat, Exptime: exptime, Keys: make([]string, len(args)-1)}
	if op == "gats" {
		cmd.Op = OpGats
	}
	for i, a := range args[1:] {
		cmd.Keys[i] = string(a)
	}
	return cmd, nil
}

func parseFlushAll(args [][]byte) (*Command, error) {
	cmd := &Command{Op: OpFlushAll}
	for _, a := range args {
		if string(a) == "noreply" {
			cmd.Noreply = true
			continue
		}
		delay, err := strconv.ParseInt(string(a), 10, 64)
		if err != nil {
			return nil, &ClientError{Msg: "bad flush_all delay"}
		}
		cmd.Exptime = delay
	}
	return cmd, nil
}

func parseVerbosity(args [][]byte) (*Command, error) {
	cmd := &Command{Op: OpVerbosity}
	if len(args) >= 1 {
		lvl, err := strconv.Atoi(string(args[0]))
		if err != nil {
			return nil, &ClientError{Msg: "bad verbosity level"}
		}
		cmd.Level = lvl
	}
	if len(args) == 2 && string(args[1]) == "noreply" {
		cmd.Noreply = true
	}
	return cmd, nil
}
