// Package protocol implements the memcached ASCII (text) protocol:
// server-side command parsing, server-side response writing, and
// client-side response parsing. It covers the commands the paper's
// workload exercises (get/gets/set and friends) plus the common
// management commands, with noreply support.
package protocol

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
)

// Op enumerates protocol commands.
type Op int

// Supported operations.
const (
	OpGet Op = iota + 1
	OpGets
	OpSet
	OpAdd
	OpReplace
	OpAppend
	OpPrepend
	OpCas
	OpDelete
	OpIncr
	OpDecr
	OpTouch
	OpGat
	OpGats
	OpStats
	OpFlushAll
	OpVersion
	OpVerbosity
	OpQuit
	// OpTrace is the out-of-band tracing header "mq_trace <trace>
	// <parent>": it carries a request-scoped trace context (two decimal
	// uint64 IDs, stored in CAS and Delta) that applies to the next
	// command on the connection. It elicits no reply, so untraced
	// pipelines are byte-identical to traced ones minus the headers.
	OpTrace
)

// String implements fmt.Stringer.
func (o Op) String() string {
	names := map[Op]string{
		OpGet: "get", OpGets: "gets", OpSet: "set", OpAdd: "add",
		OpReplace: "replace", OpAppend: "append", OpPrepend: "prepend",
		OpCas: "cas", OpDelete: "delete", OpIncr: "incr", OpDecr: "decr",
		OpTouch: "touch", OpGat: "gat", OpGats: "gats",
		OpStats: "stats", OpFlushAll: "flush_all",
		OpVersion: "version", OpVerbosity: "verbosity", OpQuit: "quit",
		OpTrace: "mq_trace",
	}
	if s, ok := names[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// MaxValueBytes bounds the data block a parser will accept (matches the
// cache's 1 MiB default item limit).
const MaxValueBytes = 1 << 20

// MaxLineBytes bounds a single command line (multi-get of many keys).
const MaxLineBytes = 8 << 10

// ClientError is a malformed-request error; servers report it as
// CLIENT_ERROR and keep the connection open.
type ClientError struct {
	Msg string
}

// Error implements error.
func (e *ClientError) Error() string { return "protocol: client error: " + e.Msg }

// ErrQuit is returned by ReadCommand when the peer sent quit.
var ErrQuit = errors.New("protocol: quit")

// Command is one parsed request. Parser.Next fills the byte-slice key
// fields (KeyB, KeyList), which alias parser-owned buffers; ReadCommand
// additionally materializes them into the owning string fields (Key,
// Keys) and clones Value, so its result has no aliasing hazards.
type Command struct {
	Op      Op
	Key     string   // single-key ops (ReadCommand only)
	Keys    []string // get/gets/gat (ReadCommand only)
	KeyB    []byte   // single-key ops; valid until the next Parser.Next
	KeyList [][]byte // get/gets/gat; valid until the next Parser.Next
	Flags   uint32
	Exptime int64 // raw exptime token (memcached semantics)
	Value   []byte
	CAS     uint64
	Delta   uint64 // incr/decr amount
	Noreply bool
	Level   int // verbosity
}

// ReadCommand parses one request from r into a freshly allocated,
// self-owned Command. Malformed requests yield a *ClientError
// (recoverable); I/O failures yield the underlying error; a quit
// command yields ErrQuit. Hot paths that read many commands from one
// connection should hold a Parser instead and call Next.
func ReadCommand(r *bufio.Reader) (*Command, error) {
	p := Parser{r: r}
	cmd, err := p.Next()
	if err != nil {
		return nil, err
	}
	out := *cmd
	out.Key = string(cmd.KeyB)
	out.KeyB = nil
	if cmd.KeyList != nil {
		out.Keys = make([]string, len(cmd.KeyList))
		for i, k := range cmd.KeyList {
			out.Keys[i] = string(k)
		}
		out.KeyList = nil
	}
	out.Value = bytes.Clone(cmd.Value)
	return &out, nil
}

func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if errors.Is(err, bufio.ErrBufferFull) {
		// Drain the oversized line, then report a client error.
		for errors.Is(err, bufio.ErrBufferFull) {
			_, err = r.ReadSlice('\n')
		}
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, err
		}
		return nil, &ClientError{Msg: "line too long"}
	}
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

// readDataBlock reads a length-byte data block plus CRLF into a fresh
// buffer (client-side response parsing; the server path uses
// Parser.readData's reusable scratch instead).
func readDataBlock(r *bufio.Reader, length int) ([]byte, error) {
	buf := make([]byte, length+2)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if !bytes.HasSuffix(buf, []byte("\r\n")) {
		return nil, &ClientError{Msg: "bad data chunk terminator"}
	}
	return buf[:length], nil
}
