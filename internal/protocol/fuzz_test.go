package protocol_test

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"memqlat/internal/protocol"
)

// FuzzParseCommand feeds arbitrary byte streams to both the one-shot
// ReadCommand and a persistent Parser and requires that they agree
// command-for-command — same ops, same fields, same errors — and that
// neither panics or returns out-of-bounds values. The seed corpus
// covers truncated data blocks, oversized declared lengths, oversized
// lines, bad terminators and junk.
func FuzzParseCommand(f *testing.F) {
	seeds := []string{
		"get k\r\n",
		"gets a b c\r\n",
		"set k 0 0 5\r\nhello\r\n",
		"set k 0 0 5\r\nhel",         // truncated data block
		"set k 0 0 1048577\r\nx\r\n", // oversized declared length
		"set k 0 0 -1\r\nx\r\n",      // negative length
		"set k 1 2\r\n",              // missing length field
		"cas k 1 2 3 99\r\nabc\r\n",  // wrong data length for cas
		"cas k 0 0 3 nan\r\nabc\r\n", // bad cas token
		"incr k 10\r\ndecr k 2 noreply\r\n",
		"touch k 30\r\ndelete k\r\n",
		"gat 30 a b\r\ngats -1 c\r\n",
		"stats items\r\nversion\r\nverbosity 1\r\nflush_all 10 noreply\r\n",
		"set k 0 0 2\r\nab\r\nget k\r\n", // storage then retrieval
		"set k 0 0 2\r\nabXYget k\r\n",   // bad terminator, resync
		"bogus cmd\r\n",
		"\r\n",
		" \t \r\n",
		"quit\r\n",
		"get " + strings.Repeat("k", 300) + "\r\n",
		strings.Repeat("x", 9000) + "\r\nget k\r\n", // oversized line, then recovery
		"get k1 k2\r\nset k1 0 0 0\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r1 := bufio.NewReader(bytes.NewReader(data))
		p := protocol.NewParser(bufio.NewReader(bytes.NewReader(data)))
		// The stream parser sees the same bytes in one feed; its line
		// limit matches the bufio.Reader buffer the blocking parsers
		// read through, so "line too long" triggers identically.
		sp := protocol.NewStreamParser(4096)
		sp.Feed(data)
		spLive := true
		for i := 0; i < 64; i++ {
			c1, err1 := protocol.ReadCommand(r1)
			c2, err2 := p.Next()
			if spLive {
				c3, err3 := sp.Next()
				if errors.Is(err3, protocol.ErrIncomplete) {
					// The tail is a partial frame: the blocking parsers
					// will now produce EOF-flavored results the stream
					// parser (which has no EOF) cannot, so it retires.
					spLive = false
				} else {
					if (err2 == nil) != (err3 == nil) {
						t.Fatalf("command %d: Parser err=%v, StreamParser err=%v", i, err2, err3)
					}
					if err2 != nil && err2.Error() != err3.Error() {
						t.Fatalf("command %d: stream error text diverged: %q vs %q", i, err2, err3)
					}
					if err2 == nil {
						if c2.Op != c3.Op || c2.Flags != c3.Flags || c2.Exptime != c3.Exptime ||
							c2.CAS != c3.CAS || c2.Delta != c3.Delta ||
							c2.Noreply != c3.Noreply || c2.Level != c3.Level {
							t.Fatalf("command %d: stream scalar fields diverged:\n%+v\n%+v", i, c2, c3)
						}
						if !bytes.Equal(c2.Value, c3.Value) {
							t.Fatalf("command %d: stream value %q vs %q", i, c2.Value, c3.Value)
						}
					}
				}
			}
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("command %d: ReadCommand err=%v, Parser err=%v", i, err1, err2)
			}
			if err1 != nil {
				if err1.Error() != err2.Error() {
					t.Fatalf("command %d: error text diverged: %q vs %q", i, err1, err2)
				}
				var ce *protocol.ClientError
				if errors.As(err1, &ce) {
					continue // recoverable: both streams consumed identically
				}
				return // quit or I/O error ends the stream
			}
			if c1.Op != c2.Op || c1.Flags != c2.Flags || c1.Exptime != c2.Exptime ||
				c1.CAS != c2.CAS || c1.Delta != c2.Delta ||
				c1.Noreply != c2.Noreply || c1.Level != c2.Level {
				t.Fatalf("command %d: scalar fields diverged:\n%+v\n%+v", i, c1, c2)
			}
			if c1.Key != string(c2.KeyB) {
				t.Fatalf("command %d: key %q vs %q", i, c1.Key, c2.KeyB)
			}
			if len(c1.Keys) != len(c2.KeyList) {
				t.Fatalf("command %d: %d keys vs %d", i, len(c1.Keys), len(c2.KeyList))
			}
			for j := range c1.Keys {
				if c1.Keys[j] != string(c2.KeyList[j]) {
					t.Fatalf("command %d key %d: %q vs %q", i, j, c1.Keys[j], c2.KeyList[j])
				}
			}
			if !bytes.Equal(c1.Value, c2.Value) {
				t.Fatalf("command %d: value %q vs %q", i, c1.Value, c2.Value)
			}
			if len(c2.Value) > protocol.MaxValueBytes {
				t.Fatalf("command %d: value of %d bytes exceeds MaxValueBytes", i, len(c2.Value))
			}
		}
	})
}
