package protocol_test

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"memqlat/internal/protocol"
)

// ownedCommand is a self-owned snapshot of a parsed Command, safe to
// retain across parser calls.
type ownedCommand struct {
	op      protocol.Op
	key     string
	keys    []string
	flags   uint32
	exptime int64
	value   string
	cas     uint64
	delta   uint64
	noreply bool
	level   int
}

func snapshot(c *protocol.Command) ownedCommand {
	o := ownedCommand{
		op: c.Op, key: string(c.KeyB), flags: c.Flags, exptime: c.Exptime,
		value: string(c.Value), cas: c.CAS, delta: c.Delta,
		noreply: c.Noreply, level: c.Level,
	}
	if c.Key != "" {
		o.key = c.Key
	}
	for _, k := range c.KeyList {
		o.keys = append(o.keys, string(k))
	}
	for _, k := range c.Keys {
		o.keys = append(o.keys, k)
	}
	return o
}

// streamSession is one scripted wire stream plus the results every
// parser must agree on.
var streamSession = strings.Join([]string{
	"get one\r\n",
	"gets a b c\r\n",
	"set k1 42 0 5\r\nhello\r\n",
	"add k2 0 30 3\r\nabc\r\n",
	"replace k1 0 0 2\r\nxy\r\n",
	"append k1 0 0 1\r\nz\r\n",
	"prepend k1 0 0 1\r\nw\r\n",
	"cas k1 7 0 4 99\r\nwxyz\r\n",
	"set nr 0 0 2 noreply\r\nok\r\n",
	"delete k2\r\n",
	"delete k2 noreply\r\n",
	"incr ctr 10\r\n",
	"decr ctr 2 noreply\r\n",
	"touch k1 300\r\n",
	"gat 60 a b\r\n",
	"gats -1 c\r\n",
	"stats items\r\n",
	"stats\r\n",
	"flush_all 10 noreply\r\n",
	"version\r\n",
	"verbosity 1 noreply\r\n",
	"mq_trace 12345 678\r\n",
	"set big 1 2 10\r\n0123456789\r\n",
}, "")

// parseAll drains a parser-producing function into owned snapshots,
// stopping at the first non-recoverable error.
func parseAllBlocking(t *testing.T, data string) []ownedCommand {
	t.Helper()
	p := protocol.NewParser(bufio.NewReader(strings.NewReader(data)))
	var out []ownedCommand
	for {
		cmd, err := p.Next()
		if err != nil {
			if protocol.IsRecoverable(err) {
				continue
			}
			return out
		}
		out = append(out, snapshot(cmd))
	}
}

// TestStreamParserByteAtATime feeds the full command-type session one
// byte at a time: every frame is split at every possible boundary —
// inside the command line, between line and data block, inside the data
// block, inside the CRLF terminator — and the parsed command sequence
// must be identical to the blocking parser reading the same stream.
func TestStreamParserByteAtATime(t *testing.T) {
	want := parseAllBlocking(t, streamSession)
	sp := protocol.NewStreamParser(0)
	var got []ownedCommand
	for i := 0; i < len(streamSession); i++ {
		sp.Feed([]byte{streamSession[i]})
		for {
			cmd, err := sp.Next()
			if errors.Is(err, protocol.ErrIncomplete) {
				break
			}
			if err != nil {
				t.Fatalf("byte %d: unexpected error %v", i, err)
			}
			got = append(got, snapshot(cmd))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d commands, want %d", len(got), len(want))
	}
	for i := range want {
		a, b := got[i], want[i]
		if a.op != b.op || a.key != b.key || a.flags != b.flags ||
			a.exptime != b.exptime || a.value != b.value || a.cas != b.cas ||
			a.delta != b.delta || a.noreply != b.noreply || a.level != b.level {
			t.Errorf("command %d diverged:\nstream   %+v\nblocking %+v", i, a, b)
		}
		if len(a.keys) != len(b.keys) {
			t.Errorf("command %d: %d keys vs %d", i, len(a.keys), len(b.keys))
			continue
		}
		for j := range a.keys {
			if a.keys[j] != b.keys[j] {
				t.Errorf("command %d key %d: %q vs %q", i, j, a.keys[j], b.keys[j])
			}
		}
	}
}

// TestStreamParserChunkSizes re-parses the session at several chunk
// granularities (2, 3, 7, 1024 bytes) — frame splits land on different
// boundaries each time, the result must not change.
func TestStreamParserChunkSizes(t *testing.T) {
	want := parseAllBlocking(t, streamSession)
	for _, chunk := range []int{2, 3, 7, 1024} {
		sp := protocol.NewStreamParser(0)
		var got []ownedCommand
		for i := 0; i < len(streamSession); i += chunk {
			end := i + chunk
			if end > len(streamSession) {
				end = len(streamSession)
			}
			sp.Feed([]byte(streamSession[i:end]))
			for {
				cmd, err := sp.Next()
				if errors.Is(err, protocol.ErrIncomplete) {
					break
				}
				if err != nil {
					t.Fatalf("chunk=%d: unexpected error %v", chunk, err)
				}
				got = append(got, snapshot(cmd))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: parsed %d commands, want %d", chunk, len(got), len(want))
		}
	}
}

// TestStreamParserRecoverableErrors checks that malformed input leaves
// the stream resynchronized: the bad frame is consumed, later commands
// still parse.
func TestStreamParserRecoverableErrors(t *testing.T) {
	sp := protocol.NewStreamParser(64)
	feedAll := func(s string) []error {
		var errs []error
		sp.Feed([]byte(s))
		for {
			_, err := sp.Next()
			if errors.Is(err, protocol.ErrIncomplete) {
				return errs
			}
			errs = append(errs, err)
		}
	}

	// Unknown command, then a good one.
	errs := feedAll("bogus x\r\nget k\r\n")
	if len(errs) != 2 || !protocol.IsRecoverable(errs[0]) || errs[1] != nil {
		t.Fatalf("unknown-command errors = %v", errs)
	}
	// Bad data terminator: the declared block is consumed, stream resyncs.
	errs = feedAll("set k 0 0 2\r\nabXYget k\r\n")
	if len(errs) < 1 || !protocol.IsRecoverable(errs[0]) {
		t.Fatalf("bad-terminator errors = %v", errs)
	}
	// Oversized line split across feeds: errors once, then recovers.
	sp2 := protocol.NewStreamParser(16)
	long := strings.Repeat("x", 40)
	sp2.Feed([]byte(long[:20]))
	if _, err := sp2.Next(); !errors.Is(err, protocol.ErrIncomplete) {
		t.Fatalf("mid-oversized-line error = %v, want ErrIncomplete", err)
	}
	sp2.Feed([]byte(long[20:] + "\r\nget k\r\n"))
	_, err := sp2.Next()
	var ce *protocol.ClientError
	if !errors.As(err, &ce) || ce.Msg != "line too long" {
		t.Fatalf("oversized line error = %v", err)
	}
	cmd, err := sp2.Next()
	if err != nil || cmd.Op != protocol.OpGet {
		t.Fatalf("post-resync parse = %v, %v", cmd, err)
	}
	// Quit surfaces as ErrQuit.
	sp3 := protocol.NewStreamParser(0)
	sp3.Feed([]byte("quit\r\n"))
	if _, err := sp3.Next(); !errors.Is(err, protocol.ErrQuit) {
		t.Fatalf("quit error = %v", err)
	}
}

// TestStreamParserLargeValueSplit stores a value crossing the shrink
// threshold, split into uneven chunks, and checks the buffer is
// released afterwards (no capacity pinned by an idle connection).
func TestStreamParserLargeValueSplit(t *testing.T) {
	val := bytes.Repeat([]byte("v"), 100<<10)
	frame := append([]byte("set big 0 0 102400\r\n"), val...)
	frame = append(frame, '\r', '\n')
	sp := protocol.NewStreamParser(0)
	for len(frame) > 0 {
		n := 30 << 10
		if n > len(frame) {
			n = len(frame)
		}
		sp.Feed(frame[:n])
		frame = frame[n:]
		cmd, err := sp.Next()
		if errors.Is(err, protocol.ErrIncomplete) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if cmd.Op != protocol.OpSet || len(cmd.Value) != 100<<10 {
			t.Fatalf("parsed %v with %d value bytes", cmd.Op, len(cmd.Value))
		}
	}
	if sp.Buffered() != 0 {
		t.Fatalf("buffered = %d after full drain", sp.Buffered())
	}
}
