package protocol

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Canonical one-line replies.
const (
	RespStored    = "STORED"
	RespNotStored = "NOT_STORED"
	RespExists    = "EXISTS"
	RespNotFound  = "NOT_FOUND"
	RespDeleted   = "DELETED"
	RespTouched   = "TOUCHED"
	RespOK        = "OK"
	RespEnd       = "END"
	RespError     = "ERROR"
)

var crlf = []byte("\r\n")

// Writer emits protocol responses to a buffered stream.
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w.
func NewWriter(w *bufio.Writer) *Writer { return &Writer{w: w} }

// Line writes a bare reply line (one of the Resp* constants or a
// numeric incr/decr result).
func (w *Writer) Line(s string) error {
	if _, err := w.w.WriteString(s); err != nil {
		return err
	}
	_, err := w.w.Write(crlf)
	return err
}

// Value writes one VALUE block; pass withCAS for gets responses.
func (w *Writer) Value(key string, flags uint32, cas uint64, value []byte, withCAS bool) error {
	if withCAS {
		if _, err := fmt.Fprintf(w.w, "VALUE %s %d %d %d\r\n", key, flags, len(value), cas); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w.w, "VALUE %s %d %d\r\n", key, flags, len(value)); err != nil {
			return err
		}
	}
	if _, err := w.w.Write(value); err != nil {
		return err
	}
	_, err := w.w.Write(crlf)
	return err
}

// ValueBytes writes one VALUE block without allocating: the header is
// appended into the bufio writer's spare capacity (flushing first when
// the header might not fit), so pipelined gets coalesce into the
// writer's buffer and go out in one syscall at the next Flush.
func (w *Writer) ValueBytes(key []byte, flags uint32, cas uint64, value []byte, withCAS bool) error {
	// Worst-case header: "VALUE " + key + 3 numbers + spaces + CRLF.
	if w.w.Available() < len(key)+64 {
		if err := w.w.Flush(); err != nil {
			return err
		}
	}
	buf := w.w.AvailableBuffer()
	buf = append(buf, "VALUE "...)
	buf = append(buf, key...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, uint64(flags), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, uint64(len(value)), 10)
	if withCAS {
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, cas, 10)
	}
	buf = append(buf, '\r', '\n')
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	if _, err := w.w.Write(value); err != nil {
		return err
	}
	_, err := w.w.Write(crlf)
	return err
}

// End terminates a retrieval response.
func (w *Writer) End() error { return w.Line(RespEnd) }

// Number writes an incr/decr result without allocating.
func (w *Writer) Number(n uint64) error {
	if w.w.Available() < 22 { // 20 digits + CRLF
		if err := w.w.Flush(); err != nil {
			return err
		}
	}
	buf := w.w.AvailableBuffer()
	buf = strconv.AppendUint(buf, n, 10)
	buf = append(buf, '\r', '\n')
	_, err := w.w.Write(buf)
	return err
}

// Stat writes one STAT line.
func (w *Writer) Stat(name, value string) error {
	_, err := fmt.Fprintf(w.w, "STAT %s %s\r\n", name, value)
	return err
}

// Version writes a VERSION line.
func (w *Writer) Version(v string) error { return w.Line("VERSION " + v) }

// ClientErrorf reports a malformed request without closing the stream.
func (w *Writer) ClientErrorf(format string, args ...any) error {
	_, err := fmt.Fprintf(w.w, "CLIENT_ERROR "+format+"\r\n", args...)
	return err
}

// ServerErrorf reports an internal failure.
func (w *Writer) ServerErrorf(format string, args ...any) error {
	_, err := fmt.Fprintf(w.w, "SERVER_ERROR "+format+"\r\n", args...)
	return err
}

// Flush pushes buffered output to the connection.
func (w *Writer) Flush() error { return w.w.Flush() }

// ---- Client-side response parsing ----

// ValueItem is one VALUE block of a retrieval response.
type ValueItem struct {
	Key   string
	Flags uint32
	CAS   uint64
	Value []byte
}

// ServerError is an error reply from the server (ERROR, CLIENT_ERROR or
// SERVER_ERROR).
type ServerError struct {
	Line string
}

// Error implements error.
func (e *ServerError) Error() string { return "protocol: server replied " + e.Line }

// ReadRetrieval parses a get/gets response: zero or more VALUE blocks
// terminated by END.
func ReadRetrieval(r *bufio.Reader) ([]ValueItem, error) {
	var items []ValueItem
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if string(line) == RespEnd {
			return items, nil
		}
		if isErrorLine(line) {
			return nil, &ServerError{Line: string(line)}
		}
		fields := bytes.Fields(line)
		if len(fields) < 4 || string(fields[0]) != "VALUE" {
			return nil, fmt.Errorf("protocol: unexpected retrieval line %q", line)
		}
		flags, err := strconv.ParseUint(string(fields[2]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("protocol: bad flags in %q", line)
		}
		length, err := strconv.ParseUint(string(fields[3]), 10, 31)
		if err != nil || length > MaxValueBytes {
			return nil, fmt.Errorf("protocol: bad length in %q", line)
		}
		item := ValueItem{Key: string(fields[1]), Flags: uint32(flags)}
		if len(fields) >= 5 {
			cas, err := strconv.ParseUint(string(fields[4]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("protocol: bad cas in %q", line)
			}
			item.CAS = cas
		}
		item.Value, err = readDataBlock(r, int(length))
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
}

// ReadLineReply reads a one-line reply (STORED, DELETED, a number, ...).
// Error replies surface as *ServerError.
func ReadLineReply(r *bufio.Reader) (string, error) {
	line, err := readLine(r)
	if err != nil {
		return "", err
	}
	if isErrorLine(line) {
		return "", &ServerError{Line: string(line)}
	}
	return string(line), nil
}

// ReadStats parses a stats response: STAT lines until END.
func ReadStats(r *bufio.Reader) (map[string]string, error) {
	out := make(map[string]string)
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if string(line) == RespEnd {
			return out, nil
		}
		if isErrorLine(line) {
			return nil, &ServerError{Line: string(line)}
		}
		fields := bytes.SplitN(line, []byte(" "), 3)
		if len(fields) != 3 || string(fields[0]) != "STAT" {
			return nil, fmt.Errorf("protocol: unexpected stats line %q", line)
		}
		out[string(fields[1])] = string(fields[2])
	}
}

func isErrorLine(line []byte) bool {
	return bytes.Equal(line, []byte(RespError)) ||
		bytes.HasPrefix(line, []byte("CLIENT_ERROR ")) ||
		bytes.HasPrefix(line, []byte("SERVER_ERROR "))
}

// IsRecoverable reports whether err allows the server loop to continue
// the connection (malformed request) rather than closing it (I/O error).
func IsRecoverable(err error) bool {
	var ce *ClientError
	return errors.As(err, &ce)
}

// EOFOrNil normalizes a clean peer close: io.EOF becomes nil so callers
// can distinguish orderly shutdown from failures.
func EOFOrNil(err error) error {
	if errors.Is(err, io.EOF) {
		return nil
	}
	return err
}
