package protocol

import (
	"bufio"
	"io"
)

// Parser parses commands from one connection into reusable
// per-connection buffers, so a pipelined stream of commands costs zero
// heap allocations per command. The server owns one Parser per
// connection; ReadCommand wraps a throwaway Parser for callers that
// want an owning Command.
//
// Aliasing contract: the Command returned by Next, together with its
// KeyB, KeyList and Value fields, aliases parser-owned scratch and the
// bufio.Reader's internal buffer. Everything is valid only until the
// next call to Next; callers that retain any of it must copy first
// (the cache's SetBytes/GetInto do).
type Parser struct {
	r       *bufio.Reader
	cmd     Command
	fields  [][]byte // reused field-splitter output
	keyList [][]byte // reused multi-key list backing
	keyBuf  []byte   // storage-op key copy that must survive the data read
	scratch []byte   // reused data-block buffer (grows to the largest value)
	capture bool     // accumulate wire frames for Frame
	frame   []byte   // reused frame buffer (command line + data block)
}

// CaptureFrames toggles frame capture: when on, each successful Next
// additionally records the command's wire bytes for Frame. Off by
// default — the server's parse loop never pays for it.
func (p *Parser) CaptureFrames(on bool) {
	p.capture = on
	p.frame = p.frame[:0]
}

// Frame returns the wire bytes of the command most recently returned by
// Next — the command line (normalized to a single CRLF terminator) plus
// the data block for storage ops — so a proxy can forward the frame
// verbatim without re-serializing. The slice aliases a reused parser
// buffer: valid until the next Next, and only meaningful after a
// successful Next with capture enabled.
func (p *Parser) Frame() []byte { return p.frame }

// NewParser returns a Parser reading from r.
func NewParser(r *bufio.Reader) *Parser { return &Parser{r: r} }

// appendFields splits line on ASCII whitespace, appending the fields to
// dst (the protocol is ASCII; keys cannot contain bytes <= ' ').
func appendFields(dst [][]byte, line []byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && asciiSpace(line[i]) {
			i++
		}
		start := i
		for i < len(line) && !asciiSpace(line[i]) {
			i++
		}
		if i > start {
			dst = append(dst, line[start:i])
		}
	}
	return dst
}

func asciiSpace(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// parseUintB parses a plain decimal (digits only, like strconv.ParseUint
// with a sign prefix disallowed) bounded to bitSize bits, without
// materializing a string.
func parseUintB(b []byte, bitSize int) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	max := uint64(1)<<uint(bitSize) - 1 // shift >= 64 yields 0; 0-1 wraps to MaxUint64
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (max-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// parseIntB parses an optionally signed decimal bounded to bitSize bits.
func parseIntB(b []byte, bitSize int) (int64, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	n, ok := parseUintB(b, 64)
	if !ok {
		return 0, false
	}
	limit := uint64(1) << uint(bitSize-1)
	switch {
	case neg && n == limit:
		return -int64(limit-1) - 1, true
	case neg && n < limit:
		return -int64(n), true
	case !neg && n < limit:
		return int64(n), true
	}
	return 0, false
}

// Next parses one command. Malformed requests yield a *ClientError
// (recoverable); I/O failures yield the underlying error; a quit
// command yields ErrQuit. See the type comment for the aliasing rules
// of the returned Command.
func (p *Parser) Next() (*Command, error) {
	line, err := readLine(p.r)
	if err != nil {
		return nil, err
	}
	if p.capture {
		p.frame = append(append(p.frame[:0], line...), '\r', '\n')
	}
	cmd, need, err := p.parseLine(line)
	if err != nil {
		return nil, err
	}
	if need >= 0 {
		cmd.Value, err = p.readData(need)
		if err != nil {
			return nil, err
		}
	}
	return cmd, nil
}

// parseLine parses one complete command line (terminator already
// stripped) into the parser's reusable Command. Storage commands return
// need >= 0: the command is incomplete until the caller supplies the
// need-byte data block (plus CRLF); every other command returns
// need == -1, complete as is. This is the resumable seam shared by the
// blocking Next and the non-blocking StreamParser: the line is parsed
// without touching the input stream, so the data block can arrive in a
// later read.
func (p *Parser) parseLine(line []byte) (cmd *Command, need int, err error) {
	p.fields = appendFields(p.fields[:0], line)
	if len(p.fields) == 0 {
		return nil, -1, &ClientError{Msg: "empty command"}
	}
	cmd = &p.cmd
	*cmd = Command{}
	op := p.fields[0]
	args := p.fields[1:]
	switch string(op) { // compiled to an alloc-free switch
	case "get":
		cmd, err = p.parseGet(OpGet, "get", args)
		return cmd, -1, err
	case "gets":
		cmd, err = p.parseGet(OpGets, "gets", args)
		return cmd, -1, err
	case "set":
		return p.parseStorage(OpSet, "set", args)
	case "add":
		return p.parseStorage(OpAdd, "add", args)
	case "replace":
		return p.parseStorage(OpReplace, "replace", args)
	case "append":
		return p.parseStorage(OpAppend, "append", args)
	case "prepend":
		return p.parseStorage(OpPrepend, "prepend", args)
	case "cas":
		return p.parseCas(args)
	case "delete":
		cmd, err = p.parseDelete(args)
		return cmd, -1, err
	case "incr":
		cmd, err = p.parseIncrDecr(OpIncr, "incr", args)
		return cmd, -1, err
	case "decr":
		cmd, err = p.parseIncrDecr(OpDecr, "decr", args)
		return cmd, -1, err
	case "touch":
		cmd, err = p.parseTouch(args)
		return cmd, -1, err
	case "gat":
		cmd, err = p.parseGat(OpGat, "gat", args)
		return cmd, -1, err
	case "gats":
		cmd, err = p.parseGat(OpGats, "gats", args)
		return cmd, -1, err
	case "stats":
		cmd.Op = OpStats
		if len(args) >= 1 {
			cmd.KeyB = args[0] // sub-statistic: "items", "slabs", ...
		}
		return cmd, -1, nil
	case "flush_all":
		cmd, err = p.parseFlushAll(args)
		return cmd, -1, err
	case "version":
		cmd.Op = OpVersion
		return cmd, -1, nil
	case "verbosity":
		cmd, err = p.parseVerbosity(args)
		return cmd, -1, err
	case "quit":
		return nil, -1, ErrQuit
	case "mq_trace":
		cmd, err = p.parseTrace(args)
		return cmd, -1, err
	default:
		return nil, -1, &ClientError{Msg: "unknown command " + string(op)}
	}
}

// parseTrace parses "mq_trace <trace> <parent>": the trace ID lands in
// CAS, the parent span ID in Delta. A zero trace ID is rejected — it
// would silently mean "untraced" downstream.
func (p *Parser) parseTrace(args [][]byte) (*Command, error) {
	if len(args) != 2 {
		return nil, &ClientError{Msg: "mq_trace requires <trace> <parent>"}
	}
	trace, ok := parseUintB(args[0], 64)
	if !ok || trace == 0 {
		return nil, &ClientError{Msg: "bad mq_trace trace id"}
	}
	parent, ok := parseUintB(args[1], 64)
	if !ok {
		return nil, &ClientError{Msg: "bad mq_trace parent id"}
	}
	p.cmd.Op = OpTrace
	p.cmd.CAS = trace
	p.cmd.Delta = parent
	return &p.cmd, nil
}

func (p *Parser) parseGet(op Op, name string, args [][]byte) (*Command, error) {
	if len(args) == 0 {
		return nil, &ClientError{Msg: name + " requires at least one key"}
	}
	p.cmd.Op = op
	p.keyList = append(p.keyList[:0], args...)
	p.cmd.KeyList = p.keyList
	return &p.cmd, nil
}

// parseStorageHeader parses "<key> <flags> <exptime> <bytes>" plus the
// optional trailing noreply into p.cmd, returning the value length. The
// key is copied into the parser's key buffer because reading the data
// block invalidates the command line it pointed into.
func (p *Parser) parseStorageHeader(name string, args [][]byte, extra int) (length int, err error) {
	want := 4 + extra
	noreply := false
	if len(args) == want+1 && string(args[want]) == "noreply" {
		noreply = true
		args = args[:want]
	}
	if len(args) != want {
		return 0, &ClientError{Msg: "bad " + name + " argument count"}
	}
	flags, ok := parseUintB(args[1], 32)
	if !ok {
		return 0, &ClientError{Msg: "bad flags"}
	}
	exptime, ok := parseIntB(args[2], 64)
	if !ok {
		return 0, &ClientError{Msg: "bad exptime"}
	}
	length64, ok := parseUintB(args[3], 31)
	if !ok || length64 > MaxValueBytes {
		return 0, &ClientError{Msg: "bad data length"}
	}
	p.keyBuf = append(p.keyBuf[:0], args[0]...)
	p.cmd.KeyB = p.keyBuf
	p.cmd.Flags = uint32(flags)
	p.cmd.Exptime = exptime
	p.cmd.Noreply = noreply
	return int(length64), nil
}

// readData reads a length-byte data block plus its CRLF terminator into
// the parser's reusable scratch buffer.
func (p *Parser) readData(length int) ([]byte, error) {
	need := length + 2
	if cap(p.scratch) < need {
		p.scratch = make([]byte, need)
	}
	buf := p.scratch[:need]
	if _, err := io.ReadFull(p.r, buf); err != nil {
		return nil, err
	}
	if buf[length] != '\r' || buf[length+1] != '\n' {
		return nil, &ClientError{Msg: "bad data chunk terminator"}
	}
	if p.capture {
		p.frame = append(p.frame, buf...)
	}
	return buf[:length], nil
}

func (p *Parser) parseStorage(op Op, name string, args [][]byte) (*Command, int, error) {
	length, err := p.parseStorageHeader(name, args, 0)
	if err != nil {
		return nil, -1, err
	}
	p.cmd.Op = op
	return &p.cmd, length, nil
}

func (p *Parser) parseCas(args [][]byte) (*Command, int, error) {
	length, err := p.parseStorageHeader("cas", args, 1)
	if err != nil {
		return nil, -1, err
	}
	cas, ok := parseUintB(args[4], 64)
	if !ok {
		return nil, -1, &ClientError{Msg: "bad cas token"}
	}
	p.cmd.Op = OpCas
	p.cmd.CAS = cas
	return &p.cmd, length, nil
}

func (p *Parser) parseDelete(args [][]byte) (*Command, error) {
	noreply := false
	if len(args) == 2 && string(args[1]) == "noreply" {
		noreply = true
		args = args[:1]
	}
	if len(args) != 1 {
		return nil, &ClientError{Msg: "bad delete argument count"}
	}
	p.cmd.Op = OpDelete
	p.cmd.KeyB = args[0]
	p.cmd.Noreply = noreply
	return &p.cmd, nil
}

func (p *Parser) parseIncrDecr(op Op, name string, args [][]byte) (*Command, error) {
	noreply := false
	if len(args) == 3 && string(args[2]) == "noreply" {
		noreply = true
		args = args[:2]
	}
	if len(args) != 2 {
		return nil, &ClientError{Msg: "bad " + name + " argument count"}
	}
	delta, ok := parseUintB(args[1], 64)
	if !ok {
		return nil, &ClientError{Msg: "invalid numeric delta argument"}
	}
	p.cmd.Op = op
	p.cmd.KeyB = args[0]
	p.cmd.Delta = delta
	p.cmd.Noreply = noreply
	return &p.cmd, nil
}

func (p *Parser) parseTouch(args [][]byte) (*Command, error) {
	noreply := false
	if len(args) == 3 && string(args[2]) == "noreply" {
		noreply = true
		args = args[:2]
	}
	if len(args) != 2 {
		return nil, &ClientError{Msg: "bad touch argument count"}
	}
	exptime, ok := parseIntB(args[1], 64)
	if !ok {
		return nil, &ClientError{Msg: "bad exptime"}
	}
	p.cmd.Op = OpTouch
	p.cmd.KeyB = args[0]
	p.cmd.Exptime = exptime
	p.cmd.Noreply = noreply
	return &p.cmd, nil
}

// parseGat parses "gat <exptime> <key>+" (get-and-touch).
func (p *Parser) parseGat(op Op, name string, args [][]byte) (*Command, error) {
	if len(args) < 2 {
		return nil, &ClientError{Msg: name + " requires an exptime and at least one key"}
	}
	exptime, ok := parseIntB(args[0], 64)
	if !ok {
		return nil, &ClientError{Msg: "bad exptime"}
	}
	p.cmd.Op = op
	p.cmd.Exptime = exptime
	p.keyList = append(p.keyList[:0], args[1:]...)
	p.cmd.KeyList = p.keyList
	return &p.cmd, nil
}

func (p *Parser) parseFlushAll(args [][]byte) (*Command, error) {
	p.cmd.Op = OpFlushAll
	for _, a := range args {
		if string(a) == "noreply" {
			p.cmd.Noreply = true
			continue
		}
		delay, ok := parseIntB(a, 64)
		if !ok {
			return nil, &ClientError{Msg: "bad flush_all delay"}
		}
		p.cmd.Exptime = delay
	}
	return &p.cmd, nil
}

func (p *Parser) parseVerbosity(args [][]byte) (*Command, error) {
	p.cmd.Op = OpVerbosity
	if len(args) >= 1 {
		lvl, ok := parseIntB(args[0], 64)
		if !ok {
			return nil, &ClientError{Msg: "bad verbosity level"}
		}
		p.cmd.Level = int(lvl)
	}
	if len(args) == 2 && string(args[1]) == "noreply" {
		p.cmd.Noreply = true
	}
	return &p.cmd, nil
}
