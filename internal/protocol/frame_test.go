package protocol

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestParserFrameCapture(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		frame string
	}{
		{"get", "get foo\r\n", "get foo\r\n"},
		{"multiget", "get a b c\r\n", "get a b c\r\n"},
		{"bare-lf-normalized", "get foo\n", "get foo\r\n"},
		{"set", "set k 1 0 3\r\nabc\r\n", "set k 1 0 3\r\nabc\r\n"},
		{"set-noreply", "set k 0 0 2 noreply\r\nhi\r\n", "set k 0 0 2 noreply\r\nhi\r\n"},
		{"cas", "cas k 0 0 1 42\r\nx\r\n", "cas k 0 0 1 42\r\nx\r\n"},
		{"delete", "delete k noreply\r\n", "delete k noreply\r\n"},
		{"incr", "incr k 5\r\n", "incr k 5\r\n"},
		{"gat", "gat 30 a b\r\n", "gat 30 a b\r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewParser(bufio.NewReader(strings.NewReader(tc.in)))
			p.CaptureFrames(true)
			if _, err := p.Next(); err != nil {
				t.Fatal(err)
			}
			if got := string(p.Frame()); got != tc.frame {
				t.Errorf("frame %q, want %q", got, tc.frame)
			}
		})
	}
}

// The captured frame must re-parse to the same command — that is the
// passthrough contract the proxy forwards on.
func TestParserFrameRoundTrip(t *testing.T) {
	in := "get a b\r\nset k 7 0 4\r\nwxyz\r\ndelete gone\r\n"
	p := NewParser(bufio.NewReader(strings.NewReader(in)))
	p.CaptureFrames(true)
	for {
		cmd, err := p.Next()
		if err != nil {
			break
		}
		reparse := NewParser(bufio.NewReader(bytes.NewReader(p.Frame())))
		cmd2, err := reparse.Next()
		if err != nil {
			t.Fatalf("frame %q does not re-parse: %v", p.Frame(), err)
		}
		if cmd.Op != cmd2.Op || string(cmd.KeyB) != string(cmd2.KeyB) ||
			string(cmd.Value) != string(cmd2.Value) || cmd.Noreply != cmd2.Noreply {
			t.Fatalf("frame %q re-parsed differently", p.Frame())
		}
	}
}

func TestParserFrameCaptureOffByDefault(t *testing.T) {
	p := NewParser(bufio.NewReader(strings.NewReader("get foo\r\n")))
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
	if len(p.Frame()) != 0 {
		t.Errorf("frame %q captured without opt-in", p.Frame())
	}
}

func TestParserFrameCaptureZeroAlloc(t *testing.T) {
	in := []byte(strings.Repeat("get some-key-0123456789\r\nset k 0 0 8\r\nvalue-xy\r\n", 64))
	br := bufio.NewReader(bytes.NewReader(in))
	p := NewParser(br)
	p.CaptureFrames(true)
	// Warm the reusable buffers.
	for {
		if _, err := p.Next(); err != nil {
			break
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		br.Reset(bytes.NewReader(in))
		for {
			if _, err := p.Next(); err != nil {
				return
			}
		}
	})
	// One alloc per run is the bytes.Reader; the per-command cost must
	// be zero.
	if allocs > 1 {
		t.Errorf("capture costs %v allocs per stream, want <= 1", allocs)
	}
}
