package protocol

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func reader(s string) *bufio.Reader {
	return bufio.NewReader(strings.NewReader(s))
}

func TestParseGet(t *testing.T) {
	cmd, err := ReadCommand(reader("get foo\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpGet || len(cmd.Keys) != 1 || cmd.Keys[0] != "foo" {
		t.Errorf("cmd = %+v", cmd)
	}
}

func TestParseMultiGet(t *testing.T) {
	cmd, err := ReadCommand(reader("gets a b c\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpGets || len(cmd.Keys) != 3 || cmd.Keys[2] != "c" {
		t.Errorf("cmd = %+v", cmd)
	}
}

func TestParseGetNoKeys(t *testing.T) {
	_, err := ReadCommand(reader("get\r\n"))
	var ce *ClientError
	if !errors.As(err, &ce) {
		t.Errorf("err = %v", err)
	}
}

func TestParseSet(t *testing.T) {
	cmd, err := ReadCommand(reader("set foo 42 100 5\r\nhello\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpSet || cmd.Key != "foo" || cmd.Flags != 42 ||
		cmd.Exptime != 100 || string(cmd.Value) != "hello" || cmd.Noreply {
		t.Errorf("cmd = %+v", cmd)
	}
}

func TestParseSetNoreply(t *testing.T) {
	cmd, err := ReadCommand(reader("set foo 0 0 2 noreply\r\nhi\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !cmd.Noreply {
		t.Error("noreply not parsed")
	}
}

func TestParseSetBinaryValue(t *testing.T) {
	// Values may contain \r\n bytes; only the length delimits them.
	raw := "set k 0 0 4\r\na\r\nb\r\n" // value is "a\r\nb"... wait, 4 bytes: 'a','\r','\n','b'
	cmd, err := ReadCommand(reader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cmd.Value, []byte("a\r\nb")) {
		t.Errorf("value = %q", cmd.Value)
	}
}

func TestParseStorageVariants(t *testing.T) {
	tests := []struct {
		give string
		want Op
	}{
		{"add k 0 0 1\r\nx\r\n", OpAdd},
		{"replace k 0 0 1\r\nx\r\n", OpReplace},
		{"append k 0 0 1\r\nx\r\n", OpAppend},
		{"prepend k 0 0 1\r\nx\r\n", OpPrepend},
	}
	for _, tt := range tests {
		cmd, err := ReadCommand(reader(tt.give))
		if err != nil {
			t.Fatalf("%q: %v", tt.give, err)
		}
		if cmd.Op != tt.want {
			t.Errorf("%q: op = %v", tt.give, cmd.Op)
		}
	}
}

func TestParseCas(t *testing.T) {
	cmd, err := ReadCommand(reader("cas k 1 2 3 99\r\nabc\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpCas || cmd.CAS != 99 || string(cmd.Value) != "abc" {
		t.Errorf("cmd = %+v", cmd)
	}
	cmd, err = ReadCommand(reader("cas k 1 2 3 99 noreply\r\nabc\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !cmd.Noreply {
		t.Error("cas noreply not parsed")
	}
}

func TestParseStorageErrors(t *testing.T) {
	bad := []string{
		"set k 0 0\r\n",              // missing length
		"set k x 0 5\r\nhello\r\n",   // bad flags
		"set k 0 x 5\r\nhello\r\n",   // bad exptime
		"set k 0 0 x\r\nhello\r\n",   // bad length
		"set k 0 0 -1\r\nhello\r\n",  // negative length
		"set k 0 0 5 extra junk\r\n", // too many args
		"cas k 0 0 3 xx\r\nabc\r\n",  // bad cas token
		"set k 0 0 1048577\r\n",      // over MaxValueBytes
	}
	for _, give := range bad {
		_, err := ReadCommand(reader(give))
		var ce *ClientError
		if !errors.As(err, &ce) {
			t.Errorf("%q: err = %v, want ClientError", give, err)
		}
	}
}

func TestParseBadTerminator(t *testing.T) {
	_, err := ReadCommand(reader("set k 0 0 5\r\nhelloXX"))
	var ce *ClientError
	if !errors.As(err, &ce) {
		t.Errorf("err = %v", err)
	}
}

func TestParseDelete(t *testing.T) {
	cmd, err := ReadCommand(reader("delete k\r\n"))
	if err != nil || cmd.Op != OpDelete || cmd.Key != "k" {
		t.Fatalf("cmd=%+v err=%v", cmd, err)
	}
	cmd, _ = ReadCommand(reader("delete k noreply\r\n"))
	if !cmd.Noreply {
		t.Error("delete noreply")
	}
	if _, err := ReadCommand(reader("delete\r\n")); err == nil {
		t.Error("delete without key accepted")
	}
	if _, err := ReadCommand(reader("delete a b\r\n")); err == nil {
		t.Error("delete extra arg accepted")
	}
}

func TestParseIncrDecr(t *testing.T) {
	cmd, err := ReadCommand(reader("incr n 5\r\n"))
	if err != nil || cmd.Op != OpIncr || cmd.Delta != 5 {
		t.Fatalf("cmd=%+v err=%v", cmd, err)
	}
	cmd, err = ReadCommand(reader("decr n 3 noreply\r\n"))
	if err != nil || cmd.Op != OpDecr || cmd.Delta != 3 || !cmd.Noreply {
		t.Fatalf("cmd=%+v err=%v", cmd, err)
	}
	if _, err := ReadCommand(reader("incr n abc\r\n")); err == nil {
		t.Error("non-numeric delta accepted")
	}
	if _, err := ReadCommand(reader("incr n\r\n")); err == nil {
		t.Error("missing delta accepted")
	}
}

func TestParseTouch(t *testing.T) {
	cmd, err := ReadCommand(reader("touch k 60\r\n"))
	if err != nil || cmd.Op != OpTouch || cmd.Exptime != 60 {
		t.Fatalf("cmd=%+v err=%v", cmd, err)
	}
	if _, err := ReadCommand(reader("touch k abc\r\n")); err == nil {
		t.Error("bad exptime accepted")
	}
}

func TestParseManagement(t *testing.T) {
	cmd, err := ReadCommand(reader("stats\r\n"))
	if err != nil || cmd.Op != OpStats {
		t.Fatalf("stats: %+v %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("version\r\n"))
	if err != nil || cmd.Op != OpVersion {
		t.Fatalf("version: %+v %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("flush_all\r\n"))
	if err != nil || cmd.Op != OpFlushAll {
		t.Fatalf("flush_all: %+v %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("flush_all 10 noreply\r\n"))
	if err != nil || cmd.Exptime != 10 || !cmd.Noreply {
		t.Fatalf("flush_all args: %+v %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("verbosity 2\r\n"))
	if err != nil || cmd.Op != OpVerbosity || cmd.Level != 2 {
		t.Fatalf("verbosity: %+v %v", cmd, err)
	}
	if _, err := ReadCommand(reader("verbosity abc\r\n")); err == nil {
		t.Error("bad verbosity accepted")
	}
}

func TestParseQuit(t *testing.T) {
	if _, err := ReadCommand(reader("quit\r\n")); !errors.Is(err, ErrQuit) {
		t.Errorf("err = %v", err)
	}
}

func TestParseUnknownCommand(t *testing.T) {
	_, err := ReadCommand(reader("bogus\r\n"))
	var ce *ClientError
	if !errors.As(err, &ce) {
		t.Errorf("err = %v", err)
	}
	if !IsRecoverable(err) {
		t.Error("client error not recoverable")
	}
}

func TestParseOversizedLine(t *testing.T) {
	long := "get " + strings.Repeat("k ", MaxLineBytes) + "\r\n"
	r := bufio.NewReaderSize(strings.NewReader(long+"get ok\r\n"), 4096)
	_, err := ReadCommand(r)
	var ce *ClientError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v", err)
	}
	// The stream recovers: the next command parses.
	cmd, err := ReadCommand(r)
	if err != nil || cmd.Keys[0] != "ok" {
		t.Errorf("recovery failed: %+v %v", cmd, err)
	}
}

func TestOpString(t *testing.T) {
	if OpGet.String() != "get" || OpCas.String() != "cas" {
		t.Error("op names wrong")
	}
	if Op(99).String() == "" {
		t.Error("unknown op empty")
	}
}

// Round trip: server writes a response, client parses it back.
func TestValueRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(bufio.NewWriter(&buf))
	if err := w.Value("k1", 7, 99, []byte("hello"), true); err != nil {
		t.Fatal(err)
	}
	if err := w.Value("k2", 0, 0, []byte("x\r\ny"), false); err != nil {
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	items, err := ReadRetrieval(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Key != "k1" || items[0].Flags != 7 || items[0].CAS != 99 ||
		string(items[0].Value) != "hello" {
		t.Errorf("item0 = %+v", items[0])
	}
	if string(items[1].Value) != "x\r\ny" || items[1].CAS != 0 {
		t.Errorf("item1 = %+v", items[1])
	}
}

func TestReadRetrievalErrors(t *testing.T) {
	if _, err := ReadRetrieval(reader("SERVER_ERROR out of memory\r\n")); err == nil {
		t.Error("server error not surfaced")
	}
	var se *ServerError
	_, err := ReadRetrieval(reader("CLIENT_ERROR bad\r\n"))
	if !errors.As(err, &se) {
		t.Errorf("err = %v", err)
	}
	if _, err := ReadRetrieval(reader("GARBAGE\r\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadRetrieval(reader("VALUE k x 5\r\nhello\r\nEND\r\n")); err == nil {
		t.Error("bad flags accepted")
	}
	if _, err := ReadRetrieval(reader("VALUE k 0 xx\r\n")); err == nil {
		t.Error("bad length accepted")
	}
}

func TestReadLineReply(t *testing.T) {
	got, err := ReadLineReply(reader("STORED\r\n"))
	if err != nil || got != RespStored {
		t.Fatalf("%q %v", got, err)
	}
	if _, err := ReadLineReply(reader("ERROR\r\n")); err == nil {
		t.Error("ERROR not surfaced")
	}
	var se *ServerError
	_, err = ReadLineReply(reader("SERVER_ERROR boom\r\n"))
	if !errors.As(err, &se) || !strings.Contains(se.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(bufio.NewWriter(&buf))
	_ = w.Stat("hits", "10")
	_ = w.Stat("misses", "2")
	_ = w.End()
	_ = w.Flush()
	m, err := ReadStats(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if m["hits"] != "10" || m["misses"] != "2" {
		t.Errorf("stats = %v", m)
	}
	if _, err := ReadStats(reader("JUNK\r\n")); err == nil {
		t.Error("junk stats accepted")
	}
	if _, err := ReadStats(reader("SERVER_ERROR x\r\n")); err == nil {
		t.Error("error stats accepted")
	}
}

func TestWriterHelpers(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(bufio.NewWriter(&buf))
	_ = w.Number(42)
	_ = w.Version("memqlat-1.0")
	_ = w.ClientErrorf("bad %s", "thing")
	_ = w.ServerErrorf("oops %d", 3)
	_ = w.Flush()
	out := buf.String()
	for _, want := range []string{"42\r\n", "VERSION memqlat-1.0\r\n",
		"CLIENT_ERROR bad thing\r\n", "SERVER_ERROR oops 3\r\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q: %q", want, out)
		}
	}
}

// Property: any set command round-trips its value byte-for-byte.
func TestPropertySetValueRoundTrip(t *testing.T) {
	f := func(value []byte) bool {
		if len(value) > 1024 {
			value = value[:1024]
		}
		var req bytes.Buffer
		req.WriteString("set k 0 0 ")
		req.WriteString(itoa(len(value)))
		req.WriteString("\r\n")
		req.Write(value)
		req.WriteString("\r\n")
		cmd, err := ReadCommand(bufio.NewReader(&req))
		if err != nil {
			return false
		}
		return bytes.Equal(cmd.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the parser never panics on arbitrary input bytes.
func TestPropertyParserNoPanic(t *testing.T) {
	f := func(junk []byte) bool {
		r := bufio.NewReader(bytes.NewReader(junk))
		for i := 0; i < 10; i++ {
			if _, err := ReadCommand(r); err != nil {
				if IsRecoverable(err) {
					continue
				}
				return true // stream-level stop is fine
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestParseGat(t *testing.T) {
	cmd, err := ReadCommand(reader("gat 60 k1 k2\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpGat || cmd.Exptime != 60 || len(cmd.Keys) != 2 || cmd.Keys[1] != "k2" {
		t.Errorf("cmd = %+v", cmd)
	}
	cmd, err = ReadCommand(reader("gats 0 k\r\n"))
	if err != nil || cmd.Op != OpGats {
		t.Fatalf("gats: %+v %v", cmd, err)
	}
	if _, err := ReadCommand(reader("gat 60\r\n")); err == nil {
		t.Error("gat without keys accepted")
	}
	if _, err := ReadCommand(reader("gat abc k\r\n")); err == nil {
		t.Error("gat bad exptime accepted")
	}
	if OpGat.String() != "gat" || OpGats.String() != "gats" {
		t.Error("gat op names wrong")
	}
}

func TestParseStatsSection(t *testing.T) {
	cmd, err := ReadCommand(reader("stats items\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpStats || cmd.Key != "items" {
		t.Errorf("cmd = %+v", cmd)
	}
	cmd, err = ReadCommand(reader("stats\r\n"))
	if err != nil || cmd.Key != "" {
		t.Fatalf("bare stats: %+v %v", cmd, err)
	}
}
