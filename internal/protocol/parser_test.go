package protocol

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// TestParserReusesBuffers checks the aliasing contract: a pipelined
// stream parsed by one Parser yields correct commands while the
// returned Command struct and its buffers are recycled between calls.
func TestParserReusesBuffers(t *testing.T) {
	stream := "set k1 7 0 3\r\nabc\r\n" +
		"get k1 k2\r\n" +
		"set k2 0 0 5\r\nhello\r\n" +
		"incr n 42 noreply\r\n" +
		"gat 30 k1\r\n"
	p := NewParser(bufio.NewReader(strings.NewReader(stream)))

	cmd, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpSet || string(cmd.KeyB) != "k1" || cmd.Flags != 7 || string(cmd.Value) != "abc" {
		t.Errorf("set parsed as %+v", cmd)
	}

	prev := cmd
	cmd, err = p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cmd != prev {
		t.Error("Parser.Next did not reuse the Command struct")
	}
	if cmd.Op != OpGet || len(cmd.KeyList) != 2 ||
		string(cmd.KeyList[0]) != "k1" || string(cmd.KeyList[1]) != "k2" {
		t.Errorf("get parsed as %+v", cmd)
	}
	if cmd.KeyB != nil || cmd.Value != nil {
		t.Errorf("stale fields not cleared: %+v", cmd)
	}

	cmd, err = p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpSet || string(cmd.KeyB) != "k2" || string(cmd.Value) != "hello" {
		t.Errorf("second set parsed as %+v", cmd)
	}

	cmd, err = p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpIncr || string(cmd.KeyB) != "n" || cmd.Delta != 42 || !cmd.Noreply {
		t.Errorf("incr parsed as %+v", cmd)
	}

	cmd, err = p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpGat || cmd.Exptime != 30 || len(cmd.KeyList) != 1 || string(cmd.KeyList[0]) != "k1" {
		t.Errorf("gat parsed as %+v", cmd)
	}
}

// TestParserZeroAllocSteadyState pins the tentpole guarantee: once
// warm, parsing pipelined gets and sets allocates nothing.
func TestParserZeroAllocSteadyState(t *testing.T) {
	frame := []byte("get kxyz\r\nset kxyz 0 0 5\r\nhello\r\n")
	var stream bytes.Buffer
	reader := bytes.NewReader(nil)
	br := bufio.NewReader(reader)
	p := NewParser(br)
	// Warm the parser's scratch buffers once.
	stream.Write(frame)
	reader.Reset(stream.Bytes())
	br.Reset(reader)
	for i := 0; i < 2; i++ {
		if _, err := p.Next(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		reader.Reset(stream.Bytes())
		br.Reset(reader)
		for i := 0; i < 2; i++ {
			if _, err := p.Next(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state parse allocates %v times per frame, want 0", allocs)
	}
}

// TestParseNumericBounds covers the hand-rolled numeric parsers against
// the strconv behavior the old parser relied on.
func TestParseNumericBounds(t *testing.T) {
	uintCases := []struct {
		in   string
		bits int
		want uint64
		ok   bool
	}{
		{"0", 64, 0, true},
		{"42", 64, 42, true},
		{"18446744073709551615", 64, 1<<64 - 1, true},
		{"18446744073709551616", 64, 0, false}, // overflow
		{"4294967295", 32, 1<<32 - 1, true},
		{"4294967296", 32, 0, false},
		{"007", 64, 7, true},
		{"", 64, 0, false},
		{"-1", 64, 0, false}, // sign not permitted
		{"+1", 64, 0, false},
		{"1a", 64, 0, false},
		{"1_0", 64, 0, false},
	}
	for _, tc := range uintCases {
		got, ok := parseUintB([]byte(tc.in), tc.bits)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("parseUintB(%q, %d) = (%d, %v), want (%d, %v)", tc.in, tc.bits, got, ok, tc.want, tc.ok)
		}
	}
	intCases := []struct {
		in   string
		bits int
		want int64
		ok   bool
	}{
		{"0", 64, 0, true},
		{"-1", 64, -1, true},
		{"+5", 64, 5, true},
		{"9223372036854775807", 64, 1<<63 - 1, true},
		{"9223372036854775808", 64, 0, false},
		{"-9223372036854775808", 64, -1 << 63, true},
		{"-9223372036854775809", 64, 0, false},
		{"-", 64, 0, false},
		{"", 64, 0, false},
	}
	for _, tc := range intCases {
		got, ok := parseIntB([]byte(tc.in), tc.bits)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("parseIntB(%q, %d) = (%d, %v), want (%d, %v)", tc.in, tc.bits, got, ok, tc.want, tc.ok)
		}
	}
}

// TestWriterValueBytesMatchesValue checks the zero-alloc writer emits
// byte-identical output to the fmt-based Value path.
func TestWriterValueBytesMatchesValue(t *testing.T) {
	value := bytes.Repeat([]byte("v"), 100)
	for _, withCAS := range []bool{false, true} {
		var a, b bytes.Buffer
		wa := NewWriter(bufio.NewWriter(&a))
		wb := NewWriter(bufio.NewWriter(&b))
		if err := wa.Value("key1", 7, 99, value, withCAS); err != nil {
			t.Fatal(err)
		}
		if err := wb.ValueBytes([]byte("key1"), 7, 99, value, withCAS); err != nil {
			t.Fatal(err)
		}
		if err := wa.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := wb.Flush(); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("withCAS=%v: Value wrote %q, ValueBytes wrote %q", withCAS, a.String(), b.String())
		}
	}
}

// TestWriterValueBytesFlushGuard fills the writer's buffer to just
// below the header guard and checks the block still comes out intact.
func TestWriterValueBytesFlushGuard(t *testing.T) {
	var out bytes.Buffer
	bw := bufio.NewWriterSize(&out, 128)
	w := NewWriter(bw)
	pad := strings.Repeat("x", 100)
	if _, err := bw.WriteString(pad); err != nil {
		t.Fatal(err)
	}
	if err := w.ValueBytes([]byte("key"), 1, 2, []byte("abcde"), true); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := pad + "VALUE key 1 5 2\r\nabcde\r\n"
	if out.String() != want {
		t.Errorf("output = %q, want %q", out.String(), want)
	}
}

// TestWriterNumberZeroAlloc pins Number's allocation-free guarantee.
func TestWriterNumberZeroAlloc(t *testing.T) {
	w := NewWriter(bufio.NewWriterSize(discardWriter{}, 4096))
	allocs := testing.AllocsPerRun(100, func() {
		if err := w.Number(18446744073709551615); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Number allocates %v times per call, want 0", allocs)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestParseTrace(t *testing.T) {
	p := NewParser(bufio.NewReader(strings.NewReader(
		"mq_trace 7 9\r\nmq_trace 18446744073709551615 0\r\n")))
	cmd, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpTrace || cmd.CAS != 7 || cmd.Delta != 9 {
		t.Fatalf("mq_trace parsed as %+v", cmd)
	}
	cmd, err = p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cmd.CAS != 1<<64-1 || cmd.Delta != 0 {
		t.Fatalf("max-id mq_trace parsed as %+v", cmd)
	}
	for _, bad := range []string{
		"mq_trace\r\n",
		"mq_trace 1\r\n",
		"mq_trace 1 2 3\r\n",
		"mq_trace 0 2\r\n", // zero trace id means "untraced": rejected
		"mq_trace x 2\r\n",
		"mq_trace 1 -2\r\n",
	} {
		p := NewParser(bufio.NewReader(strings.NewReader(bad)))
		if _, err := p.Next(); err == nil {
			t.Errorf("accepted %q", bad)
		} else if _, ok := err.(*ClientError); !ok {
			t.Errorf("%q yielded non-client error %v", bad, err)
		}
	}
}
