package protocol

import (
	"bytes"
	"errors"
)

// ErrIncomplete is returned by StreamParser.Next when the buffered
// bytes do not yet hold a complete frame: the caller should feed more
// input when the connection next becomes readable. It is a state, not a
// failure — nothing has been consumed and the parse resumes exactly
// where it stopped.
var ErrIncomplete = errors.New("protocol: incomplete frame")

// streamShrinkCap bounds how much buffer capacity an idle StreamParser
// retains: once the buffer drains, anything larger is released so a
// connection that once carried a large value does not pin that memory
// for the rest of its (possibly very long) life.
const streamShrinkCap = 64 << 10

// StreamParser parses commands from a byte stream delivered in
// arbitrary chunks — the non-blocking twin of Parser. The event-loop
// server feeds it whatever a readiness-driven read returned (possibly a
// partial line, possibly many pipelined commands, possibly a data block
// split at any byte boundary) and drains complete commands with Next;
// ErrIncomplete means "wait for more input".
//
// Aliasing contract: like Parser.Next, the returned Command and its
// byte-slice fields alias parser-owned buffers and are valid only until
// the next call to Feed or Next.
//
// Frame capture is not supported; the proxy, which needs it, reads with
// a blocking Parser.
type StreamParser struct {
	p       Parser
	maxLine int
	buf     []byte // unconsumed input, appended by Feed
	off     int    // consumed prefix of buf
	// need >= 0 means a storage command line has been parsed and the
	// command is pending its need-byte data block (plus CRLF).
	need int
	// discard eats input through the next '\n' after an oversized
	// command line, mirroring the blocking parser's resync behavior.
	discard bool
}

// NewStreamParser returns a StreamParser. maxLine bounds a single
// command line, matching the blocking server's line limit (its
// bufio.Reader size); 0 applies the 16 KiB default the server uses.
func NewStreamParser(maxLine int) *StreamParser {
	if maxLine <= 0 {
		maxLine = 16 << 10
	}
	return &StreamParser{maxLine: maxLine, need: -1}
}

// Feed appends a chunk of input. The chunk is copied, so the caller may
// reuse its read buffer immediately. Commands previously returned by
// Next are invalidated.
func (s *StreamParser) Feed(data []byte) {
	if s.off == len(s.buf) {
		s.buf = s.buf[:0]
		s.off = 0
	} else if s.off > 4096 && s.off > len(s.buf)/2 {
		n := copy(s.buf, s.buf[s.off:])
		s.buf = s.buf[:n]
		s.off = 0
	}
	s.buf = append(s.buf, data...)
}

// Buffered reports how many fed bytes are not yet consumed.
func (s *StreamParser) Buffered() int { return len(s.buf) - s.off }

// release recycles the buffer once fully consumed, dropping outsized
// capacity so long-lived mostly-idle connections stay cheap.
func (s *StreamParser) release() {
	if s.off != len(s.buf) {
		return
	}
	if cap(s.buf) > streamShrinkCap {
		s.buf = nil
	} else {
		s.buf = s.buf[:0]
	}
	s.off = 0
}

// Next parses the next complete command out of the buffered input.
// ErrIncomplete means a partial frame is buffered; *ClientError reports
// a malformed request with the stream resynchronized past it (the
// connection can continue); ErrQuit reports an orderly quit.
func (s *StreamParser) Next() (*Command, error) {
	if s.discard {
		i := bytes.IndexByte(s.buf[s.off:], '\n')
		if i < 0 {
			s.off = len(s.buf)
			s.release()
			return nil, ErrIncomplete
		}
		s.off += i + 1
		s.discard = false
		s.release()
		return nil, &ClientError{Msg: "line too long"}
	}
	if s.need >= 0 {
		total := s.need + 2
		if s.Buffered() < total {
			return nil, ErrIncomplete
		}
		block := s.buf[s.off : s.off+total]
		s.off += total
		need := s.need
		s.need = -1
		if block[need] != '\r' || block[need+1] != '\n' {
			s.release()
			return nil, &ClientError{Msg: "bad data chunk terminator"}
		}
		cmd := &s.p.cmd
		cmd.Value = block[:need]
		s.release()
		return cmd, nil
	}
	i := bytes.IndexByte(s.buf[s.off:], '\n')
	if i < 0 {
		if s.Buffered() >= s.maxLine {
			// The line already overflows the limit; eat through its
			// eventual newline, exactly like the blocking reader drains
			// an ErrBufferFull line.
			s.discard = true
			s.off = len(s.buf)
			s.release()
		}
		return nil, ErrIncomplete
	}
	line := s.buf[s.off : s.off+i]
	s.off += i + 1
	if len(line) >= s.maxLine {
		s.release()
		return nil, &ClientError{Msg: "line too long"}
	}
	line = bytes.TrimRight(line, "\r\n")
	cmd, need, err := s.p.parseLine(line)
	if err != nil {
		s.release()
		return nil, err
	}
	if need >= 0 {
		s.need = need
		return s.Next()
	}
	return cmd, nil
}
