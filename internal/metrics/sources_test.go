package metrics

import (
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"testing"

	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/otrace"
	"memqlat/internal/proxy"
	"memqlat/internal/server"
)

// startStack brings up one server, a proxy in front of it, and a client
// pointed at the server directly.
func startStack(t *testing.T) (*server.Server, *proxy.Proxy, *client.Client) {
	t.Helper()
	ch, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Cache: ch, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })

	px, err := proxy.New(proxy.Options{Upstreams: []string{l.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = px.Serve(pl) }()
	t.Cleanup(func() { _ = px.Close() })

	cl, err := client.New(client.Options{Servers: []string{l.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return srv, px, cl
}

func TestRegisterStackSources(t *testing.T) {
	srv, px, cl := startStack(t)
	if err := cl.Set("mk", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("mk"); err != nil {
		t.Fatal(err)
	}
	tr := otrace.New(otrace.Options{})
	tr.End(tr.Begin(otrace.Ctx{}, "client", "get", 0))

	reg := NewRegistry()
	RegisterServers(reg, []*server.Server{srv})
	RegisterProxy(reg, px)
	RegisterClient(reg, cl)
	RegisterTracer(reg, tr)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`memqlat_server_commands_total{server="0",op="get"} 1`,
		`memqlat_server_commands_total{server="0",op="set"} 1`,
		`memqlat_cache_operations_total{server="0",result="hit"} 1`,
		`memqlat_cache_shard_items{`,
		"memqlat_cache_lock_waits_total",
		"memqlat_proxy_commands_total 0",
		`memqlat_proxy_upstream_queue_depth{upstream="0"} 0`,
		`memqlat_proxy_breaker_state{upstream="0"} -1`,
		`memqlat_client_pool_dials_total{server="0"} 1`,
		`memqlat_client_breaker_state{server="0"} -1`,
		"memqlat_trace_spans_kept 1",
		"memqlat_trace_spans_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Cache shard occupancy sums to the item count.
	items := srv.Cache().Stats().Items
	var sum float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "memqlat_cache_shard_items{") {
			f := strings.Fields(line)
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			sum += v
		}
	}
	if int64(sum) != items {
		t.Errorf("shard items sum = %v, cache reports %d", sum, items)
	}
}

func TestBreakerStateValue(t *testing.T) {
	for state, want := range map[string]float64{
		"closed": 0, "half-open": 1, "open": 2, "disabled": -1, "???": -1,
	} {
		if got := breakerStateValue(state); got != want {
			t.Errorf("breakerStateValue(%q) = %v, want %v", state, got, want)
		}
	}
}
