package metrics

import (
	"context"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"

	"memqlat/internal/backend"
	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/coalesce"
	"memqlat/internal/otrace"
	"memqlat/internal/proxy"
	"memqlat/internal/server"
	"memqlat/internal/tenant"
)

// startStack brings up one server, a proxy in front of it, and a client
// pointed at the server directly.
func startStack(t *testing.T) (*server.Server, *proxy.Proxy, *client.Client) {
	t.Helper()
	ch, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Cache: ch, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })

	px, err := proxy.New(proxy.Options{Upstreams: []string{l.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = px.Serve(pl) }()
	t.Cleanup(func() { _ = px.Close() })

	cl, err := client.New(client.Options{Servers: []string{l.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return srv, px, cl
}

func TestRegisterStackSources(t *testing.T) {
	srv, px, cl := startStack(t)
	if err := cl.Set("mk", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("mk"); err != nil {
		t.Fatal(err)
	}
	tr := otrace.New(otrace.Options{})
	tr.End(tr.Begin(otrace.Ctx{}, "client", "get", 0))

	reg := NewRegistry()
	RegisterServers(reg, []*server.Server{srv})
	RegisterProxy(reg, px)
	RegisterClient(reg, cl)
	RegisterTracer(reg, tr)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`memqlat_server_commands_total{server="0",op="get"} 1`,
		`memqlat_server_commands_total{server="0",op="set"} 1`,
		`memqlat_cache_operations_total{server="0",result="hit"} 1`,
		`memqlat_cache_shard_items{`,
		"memqlat_cache_lock_waits_total",
		"memqlat_proxy_commands_total 0",
		`memqlat_proxy_upstream_queue_depth{upstream="0"} 0`,
		`memqlat_proxy_breaker_state{upstream="0"} -1`,
		`memqlat_client_pool_dials_total{server="0"} 1`,
		`memqlat_client_breaker_state{server="0"} -1`,
		"memqlat_trace_spans_kept 1",
		"memqlat_trace_spans_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Cache shard occupancy sums to the item count.
	items := srv.Cache().Stats().Items
	var sum float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "memqlat_cache_shard_items{") {
			f := strings.Fields(line)
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			sum += v
		}
	}
	if int64(sum) != items {
		t.Errorf("shard items sum = %v, cache reports %d", sum, items)
	}
}

// TestRegisterCoalesceBackend drives a coalesced miss through a group
// backed by a single-queue backend and checks both ledgers surface on
// the exposition: fetches vs fan-ins on the group, lookups and queue
// gauges on the database.
func TestRegisterCoalesceBackend(t *testing.T) {
	g := coalesce.New(coalesce.Policy{})
	db, err := backend.New(backend.Options{
		MuD: 50000, Seed: 1, Mode: backend.ModeSingleQueue, QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	fetch := func(ctx context.Context) ([]byte, error) { return db.Get(ctx, "hot") }
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Do(context.Background(), "hot", fetch); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	g.Invalidate("idle") // not in flight: must NOT count

	reg := NewRegistry()
	RegisterCoalesce(reg, g)
	RegisterBackend(reg, db)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	st := g.Stats()
	if st.Fetches+st.FanIns != 4 || st.Fetches == 0 {
		t.Fatalf("fetches=%d fanins=%d, want 4 outcomes with >=1 fetch", st.Fetches, st.FanIns)
	}
	for _, want := range []string{
		"memqlat_coalesce_inflight_keys 0",
		"memqlat_coalesce_waiters 0",
		"memqlat_coalesce_fetches_total " + strconv.FormatInt(st.Fetches, 10),
		"memqlat_coalesce_fanins_total " + strconv.FormatInt(st.FanIns, 10),
		"memqlat_coalesce_sheds_total 0",
		"memqlat_coalesce_invalidations_total 0",
		"memqlat_backend_lookups_total " + strconv.FormatInt(st.Fetches, 10),
		"memqlat_backend_dropped_total 0",
		"memqlat_backend_queue_depth 0",
		"memqlat_backend_queue_peak",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// A nil/non-coalescing group registers no families at all.
	empty := NewRegistry()
	RegisterCoalesce(empty, nil)
	RegisterBackend(empty, nil)
	sb.Reset()
	if err := empty.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "memqlat_coalesce") || strings.Contains(sb.String(), "memqlat_backend") {
		t.Error("nil sources should register nothing")
	}
}

// TestRegisterTenants drives a limiter directly (one admitted tenant,
// one over quota, plus catch-all traffic) and checks the per-tenant
// ledger surfaces on the exposition with the implicit "*" row.
func TestRegisterTenants(t *testing.T) {
	lim, err := tenant.New([]tenant.Spec{
		{Name: "acme"},
		{Name: "evil", Rate: 100, Burst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lim.FromKey([]byte("acme:k")).Admit(0, 1, 10)
	lim.FromKey([]byte("acme:k")).Observe(0.002)
	ev := lim.FromKey([]byte("evil:k"))
	ev.Admit(0, 1, 0)                                // drains the 1-token burst
	ev.Admit(0, 1, 5)                                // shed
	lim.FromKey([]byte("unprefixed")).Admit(0, 1, 0) // catch-all

	reg := NewRegistry()
	RegisterTenants(reg, lim)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`memqlat_tenant_admitted_total{tenant="acme"} 1`,
		`memqlat_tenant_shed_total{tenant="acme"} 0`,
		`memqlat_tenant_admitted_total{tenant="evil"} 1`,
		`memqlat_tenant_shed_total{tenant="evil"} 1`,
		`memqlat_tenant_admitted_bytes_total{tenant="acme"} 10`,
		`memqlat_tenant_shed_bytes_total{tenant="evil"} 5`,
		`memqlat_tenant_tokens{tenant="evil"} 0`,
		`memqlat_tenant_admitted_total{tenant="*"} 1`,
		`memqlat_tenant_latency_quantile_seconds{tenant="acme",q="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// A nil limiter registers nothing.
	empty := NewRegistry()
	RegisterTenants(empty, nil)
	sb.Reset()
	if err := empty.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "memqlat_tenant") {
		t.Error("nil limiter should register nothing")
	}
}

func TestBreakerStateValue(t *testing.T) {
	for state, want := range map[string]float64{
		"closed": 0, "half-open": 1, "open": 2, "disabled": -1, "???": -1,
	} {
		if got := breakerStateValue(state); got != want {
			t.Errorf("breakerStateValue(%q) = %v, want %v", state, got, want)
		}
	}
}
