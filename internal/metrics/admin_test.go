package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"memqlat/internal/otrace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("memqlat_up", "x", func() float64 { return 1 })
	a := NewAdmin(reg)
	tr := otrace.New(otrace.Options{})
	sp := tr.Begin(otrace.Ctx{}, "client", "get", 0)
	tr.End(sp)
	a.AttachTracer(tr)
	srv := httptest.NewServer(a)
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "memqlat_up 1") {
		t.Errorf("/metrics = %d, %q", code, body)
	}
	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var health struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_s"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz not JSON: %v in %q", err, body)
	}
	if health.Status != "ok" || health.Uptime < 0 {
		t.Errorf("healthz payload %+v", health)
	}
	code, body = get(t, srv, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	if n, err := otrace.ParseChrome([]byte(body)); err != nil || n != 1 {
		t.Errorf("/trace parse = %d, %v", n, err)
	}
	code, body = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestAdminStartClose(t *testing.T) {
	a := NewAdmin(nil)
	addr, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz over real listener = %d", resp.StatusCode)
	}
	// /metrics with a nil registry renders an empty 200.
	resp, err = http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Errorf("nil-registry /metrics = %d, %q", resp.StatusCode, body)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing an admin that never started is a no-op.
	if err := NewAdmin(nil).Close(); err != nil {
		t.Fatal(err)
	}
}
