package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"memqlat/internal/slo"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
)

// TestHistogramExemplarExposition exercises the OpenMetrics exemplar
// suffix: the exemplar must ride the first bucket containing its value,
// fall back to +Inf when it exceeds every bound, carry the timestamp
// only when one was recorded, and vanish entirely on nil exemplars.
func TestHistogramExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := stats.NewHistogram()
	for i := 0; i < 4; i++ {
		h.Record(1.5e-4)
	}
	bounds := []float64{1e-4, 1e-3, 1e-2}
	r.HistogramWithExemplars("memqlat_ex_seconds", "Exemplar test.", bounds,
		func(emit func(Labels, *stats.Histogram, *Exemplar)) {
			emit(L("s", "mid"), h, &Exemplar{TraceID: "00000000deadbeef", Value: 2e-4, Unix: 1.5})
			emit(L("s", "big"), h, &Exemplar{TraceID: "ff", Value: 5})
			emit(L("s", "plain"), h, nil)
		})
	out := render(t, r)
	for _, want := range []string{
		// The 2e-4 exemplar lands in the (1e-4, 1e-3] bucket with its
		// Unix timestamp; earlier and later buckets stay clean.
		`memqlat_ex_seconds_bucket{s="mid",le="0.001"} 4 # {trace_id="00000000deadbeef"} 0.0002 1.500` + "\n",
		`memqlat_ex_seconds_bucket{s="mid",le="0.0001"} 0` + "\n",
		`memqlat_ex_seconds_bucket{s="mid",le="0.01"} 4` + "\n",
		// Beyond every bound: the exemplar rides +Inf, no timestamp.
		`memqlat_ex_seconds_bucket{s="big",le="+Inf"} 4 # {trace_id="ff"} 5` + "\n",
		`memqlat_ex_seconds_bucket{s="big",le="0.01"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `s="plain"`) && strings.Contains(line, "# {") {
			t.Errorf("nil exemplar leaked a suffix: %q", line)
		}
	}
}

// TestRegisterTelemetryExemplars checks the stage histograms pick up
// the most recent traced observation from the exemplar store.
func TestRegisterTelemetryExemplars(t *testing.T) {
	c := telemetry.NewCollector()
	for i := 0; i < 8; i++ {
		c.Observe(telemetry.StageService, 2e-4)
	}
	ex := telemetry.NewExemplarStore()
	ex.Record(telemetry.StageService, 0xabc, 2e-4, 42.25)

	r := NewRegistry()
	RegisterTelemetryExemplars(r, c, ex)
	out := render(t, r)
	if want := `trace_id="0000000000000abc"`; !strings.Contains(out, want) {
		t.Errorf("exposition missing exemplar %q\n%s", want, out)
	}
	if !strings.Contains(out, `memqlat_stage_latency_seconds_bucket{stage="service"`) {
		t.Errorf("stage histogram missing\n%s", out)
	}
}

// TestRegisterSLO arms a real watchdog on a point-mass band, drives a
// window far out of band, and checks every memqlat_slo_* family lands
// on the exposition with the drift attributed.
func TestRegisterSLO(t *testing.T) {
	wd, err := slo.NewWatchdog(slo.Config{
		Window: 0.25,
		K:      1,
		Band:   2,
		Target: 1e-3, // every 10ms request burns budget
		Predicted: telemetry.Breakdown{
			telemetry.StageService: {Count: 100, P50: 1e-3, P95: 1e-3, P99: 1e-3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wd.Arm()
	for i := 0; i < 40; i++ {
		wd.Observe(telemetry.StageService, 1e-2) // 10x the predicted median
		wd.RequestTotal(0.1, 1e-2)
	}
	wd.Advance(0.3) // closes window 0: drift at K=1, budget fully burned

	r := NewRegistry()
	RegisterSLO(r, wd)
	out := render(t, r)
	for _, want := range []string{
		"memqlat_slo_armed 1",
		"memqlat_slo_windows_closed_total 1",
		`memqlat_slo_stage_predicted_seconds{stage="service",q="0.5"} 0.001`,
		`memqlat_slo_stage_observed_seconds{stage="service",q="0.5"}`,
		`memqlat_slo_stage_drift_streak{stage="service"} 1`,
		`memqlat_slo_stage_drifting{stage="service"} 1`,
		`memqlat_slo_stage_drift_magnitude{stage="service"}`,
		`memqlat_slo_burn_rate{window="short"}`,
		`memqlat_slo_burn_rate{window="long"}`,
		"memqlat_slo_drift_alerts_total 1",
		"memqlat_slo_burn_alerts_total",
		"memqlat_slo_burn_active",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// A nil watchdog registers nothing.
	empty := NewRegistry()
	RegisterSLO(empty, nil)
	if got := render(t, empty); strings.Contains(got, "memqlat_slo") {
		t.Errorf("nil watchdog should register nothing:\n%s", got)
	}
}

// TestAdminHandleMount checks extra handlers (the /debug/watch surface)
// mount on the admin mux and the registry accessor round-trips.
func TestAdminHandleMount(t *testing.T) {
	reg := NewRegistry()
	a := NewAdmin(reg)
	if a.Registry() != reg {
		t.Error("Registry() did not return the registry the admin serves")
	}
	a.Handle("/debug/watch", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("watch-ok"))
	}))
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/watch", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "watch-ok" {
		t.Errorf("mounted handler: code=%d body=%q", rec.Code, rec.Body.String())
	}
}
