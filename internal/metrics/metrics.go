// Package metrics is a dependency-free Prometheus text-format
// exposition layer for the memqlat binaries. It is pull-based: nothing
// is recorded through it — instead, sources register collection
// closures that read counters, gauges and the telemetry seam's
// log-bucketed histograms at scrape time, so an idle /metrics endpoint
// costs the hot path nothing and a disabled one (no -admin flag) costs
// it literally zero.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"memqlat/internal/stats"
)

// Labels is an ordered list of label key/value pairs, as produced by L.
type Labels []string

// L builds Labels from alternating key, value strings. An odd count
// drops the trailing key.
func L(kv ...string) Labels {
	return Labels(kv[:len(kv)&^1])
}

// familyKind is the Prometheus metric type of one family.
type familyKind uint8

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one registered metric family; gather runs at scrape time.
type family struct {
	name, help string
	kind       familyKind
	// bounds is the le ladder for histogram families.
	bounds []float64
	gather func(e *emitter)
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. A nil Registry accepts no registrations (methods
// no-op) and renders an empty page, so binaries can thread an optional
// registry without nil checks.
type Registry struct {
	mu   sync.Mutex
	fams []*family
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(f *family) {
	if r == nil {
		return
	}
	if !validName(f.name) {
		panic("metrics: invalid metric name " + f.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.fams {
		if existing.name == f.name {
			panic("metrics: duplicate metric name " + f.name)
		}
	}
	r.fams = append(r.fams, f)
}

// Counter registers a single-series counter read from fn at scrape
// time. fn must be monotone non-decreasing to honour counter
// semantics.
func (r *Registry) Counter(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindCounter, gather: func(e *emitter) {
		e.sample(name, nil, fn())
	}})
}

// Gauge registers a single-series gauge read from fn at scrape time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindGauge, gather: func(e *emitter) {
		e.sample(name, nil, fn())
	}})
}

// CounterVec registers a labelled counter family; fn emits one sample
// per label set at scrape time.
func (r *Registry) CounterVec(name, help string, fn func(emit func(l Labels, v float64))) {
	r.add(&family{name: name, help: help, kind: kindCounter, gather: func(e *emitter) {
		fn(func(l Labels, v float64) { e.sample(name, l, v) })
	}})
}

// GaugeVec registers a labelled gauge family; fn emits one sample per
// label set at scrape time.
func (r *Registry) GaugeVec(name, help string, fn func(emit func(l Labels, v float64))) {
	r.add(&family{name: name, help: help, kind: kindGauge, gather: func(e *emitter) {
		fn(func(l Labels, v float64) { e.sample(name, l, v) })
	}})
}

// Histogram registers a labelled histogram family backed by the stats
// package's log-bucketed histograms; fn emits one histogram per label
// set at scrape time. bounds is the exposed le ladder (seconds); nil
// uses DefaultLatencyBounds. Cumulative bucket counts come from
// Histogram.CumulativeCount, so the page and the internal quantiles
// describe the same distribution at bucket resolution.
func (r *Registry) Histogram(name, help string, bounds []float64, fn func(emit func(l Labels, h *stats.Histogram))) {
	r.HistogramWithExemplars(name, help, bounds,
		func(emit func(l Labels, h *stats.Histogram, ex *Exemplar)) {
			fn(func(l Labels, h *stats.Histogram) { emit(l, h, nil) })
		})
}

// Exemplar is an OpenMetrics exemplar: one recent raw observation,
// tagged with the trace that produced it, rendered after the bucket
// line whose range contains Value ("# {trace_id=...} value ts").
type Exemplar struct {
	TraceID string
	Value   float64
	Unix    float64
}

// HistogramWithExemplars is Histogram for sources that can attach an
// exemplar per series; a nil exemplar emits a plain histogram.
func (r *Registry) HistogramWithExemplars(name, help string, bounds []float64, fn func(emit func(l Labels, h *stats.Histogram, ex *Exemplar))) {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds not sorted for " + name)
	}
	r.add(&family{name: name, help: help, kind: kindHistogram, bounds: bounds, gather: func(e *emitter) {
		fn(func(l Labels, h *stats.Histogram, ex *Exemplar) { e.histogram(name, l, bounds, h, ex) })
	}})
}

// DefaultLatencyBounds is a 1-2-5 log ladder from 1µs to 10s — wide
// enough for every stage the planes record, coarse enough that a page
// with one histogram per stage stays readable. The backing histograms
// keep ~1% resolution regardless; the ladder only shapes exposition.
var DefaultLatencyBounds = []float64{
	1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1, 2, 5, 10,
}

// WritePrometheus renders every family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	e := &emitter{}
	for _, f := range fams {
		fmt.Fprintf(&e.b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&e.b, "# TYPE %s %s\n", f.name, f.kind)
		f.gather(e)
	}
	_, err := w.Write([]byte(e.b.String()))
	return err
}

// emitter accumulates exposition lines.
type emitter struct {
	b strings.Builder
}

func (e *emitter) sample(name string, l Labels, v float64) {
	e.b.WriteString(name)
	e.labels(l, "", "")
	e.b.WriteByte(' ')
	e.b.WriteString(formatValue(v))
	e.b.WriteByte('\n')
}

func (e *emitter) histogram(name string, l Labels, bounds []float64, h *stats.Histogram, ex *Exemplar) {
	count := h.Count()
	exPending := ex != nil
	for _, ub := range bounds {
		e.b.WriteString(name)
		e.b.WriteString("_bucket")
		e.labels(l, "le", formatValue(ub))
		e.b.WriteByte(' ')
		e.b.WriteString(strconv.FormatInt(h.CumulativeCount(ub), 10))
		if exPending && ex.Value <= ub {
			// The exemplar rides the first bucket whose range contains
			// its value (OpenMetrics: one exemplar per bucket, on the
			// bucket the observation landed in).
			e.exemplar(ex)
			exPending = false
		}
		e.b.WriteByte('\n')
	}
	e.b.WriteString(name)
	e.b.WriteString("_bucket")
	e.labels(l, "le", "+Inf")
	e.b.WriteByte(' ')
	e.b.WriteString(strconv.FormatInt(count, 10))
	if exPending {
		e.exemplar(ex)
	}
	e.b.WriteByte('\n')

	var sum float64
	if count > 0 {
		sum = h.Mean() * float64(count)
	}
	e.b.WriteString(name)
	e.b.WriteString("_sum")
	e.labels(l, "", "")
	e.b.WriteByte(' ')
	e.b.WriteString(formatValue(sum))
	e.b.WriteByte('\n')
	e.b.WriteString(name)
	e.b.WriteString("_count")
	e.labels(l, "", "")
	e.b.WriteByte(' ')
	e.b.WriteString(strconv.FormatInt(count, 10))
	e.b.WriteByte('\n')
}

// exemplar appends an OpenMetrics exemplar suffix to the current line.
func (e *emitter) exemplar(ex *Exemplar) {
	e.b.WriteString(` # {trace_id="`)
	e.b.WriteString(escapeLabel(ex.TraceID))
	e.b.WriteString(`"} `)
	e.b.WriteString(formatValue(ex.Value))
	if ex.Unix > 0 {
		e.b.WriteByte(' ')
		e.b.WriteString(strconv.FormatFloat(ex.Unix, 'f', 3, 64))
	}
}

// labels writes {k="v",...}, appending the extra pair (the histogram
// le label) when extraKey is non-empty.
func (e *emitter) labels(l Labels, extraKey, extraVal string) {
	if len(l) < 2 && extraKey == "" {
		return
	}
	e.b.WriteByte('{')
	first := true
	for i := 0; i+1 < len(l); i += 2 {
		if !first {
			e.b.WriteByte(',')
		}
		first = false
		e.b.WriteString(l[i])
		e.b.WriteString(`="`)
		e.b.WriteString(escapeLabel(l[i+1]))
		e.b.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			e.b.WriteByte(',')
		}
		e.b.WriteString(extraKey)
		e.b.WriteString(`="`)
		e.b.WriteString(escapeLabel(extraVal))
		e.b.WriteByte('"')
	}
	e.b.WriteByte('}')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
