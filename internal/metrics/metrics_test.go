package metrics

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("memqlat_ops_total", "Total operations.", func() float64 { return 42 })
	r.Gauge("memqlat_conns", "Open connections.", func() float64 { return 3 })
	r.GaugeVec("memqlat_pool_idle", "Idle conns per server.", func(emit func(Labels, float64)) {
		emit(L("server", "0"), 1)
		emit(L("server", "1"), 2)
	})
	out := render(t, r)
	for _, want := range []string{
		"# HELP memqlat_ops_total Total operations.",
		"# TYPE memqlat_ops_total counter",
		"memqlat_ops_total 42",
		"# TYPE memqlat_conns gauge",
		"memqlat_conns 3",
		`memqlat_pool_idle{server="0"} 1`,
		`memqlat_pool_idle{server="1"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := stats.NewHistogram()
	for i := 0; i < 10; i++ {
		h.Record(1.5e-4) // between the 1e-4 and 2e-4 bounds
	}
	h.Record(100) // beyond the top bound: only visible in +Inf
	r.Histogram("memqlat_lat_seconds", "Latency.", nil, func(emit func(Labels, *stats.Histogram)) {
		emit(L("stage", "service"), h)
	})
	out := render(t, r)
	for _, want := range []string{
		"# TYPE memqlat_lat_seconds histogram",
		`memqlat_lat_seconds_bucket{stage="service",le="0.0001"} 0`,
		`memqlat_lat_seconds_bucket{stage="service",le="0.0002"} 10`,
		`memqlat_lat_seconds_bucket{stage="service",le="+Inf"} 11`,
		`memqlat_lat_seconds_count{stage="service"} 11`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// _sum must carry the exact total.
	if !strings.Contains(out, `memqlat_lat_seconds_sum{stage="service"} `) {
		t.Errorf("missing _sum line:\n%s", out)
	}
	// Cumulative counts must be non-decreasing across the ladder.
	prev := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "memqlat_lat_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts decreased at %q", line)
		}
		prev = n
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_name", "x", func() float64 { return 0 })
	mustPanic(t, "duplicate", func() {
		r.Counter("ok_name", "x", func() float64 { return 0 })
	})
	mustPanic(t, "invalid name", func() {
		r.Gauge("bad name", "x", func() float64 { return 0 })
	})
	mustPanic(t, "unsorted bounds", func() {
		r.Histogram("h_name", "x", []float64{2, 1}, func(func(Labels, *stats.Histogram)) {})
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s accepted", what)
		}
	}()
	fn()
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "x", func() float64 { return 1 }) // must not panic
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry rendered %q", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("esc", "x", func(emit func(Labels, float64)) {
		emit(L("k", "a\"b\\c\nd"), 1)
	})
	out := render(t, r)
	if !strings.Contains(out, `esc{k="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", out)
	}
}

func TestSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inf_gauge", "x", func() float64 { return math.Inf(1) })
	out := render(t, r)
	if !strings.Contains(out, "inf_gauge +Inf\n") {
		t.Errorf("missing +Inf rendering:\n%s", out)
	}
}

// TestRegisterTelemetryAgreement scrapes a collector through the
// registry and checks the page agrees with the Breakdown the server's
// `stats telemetry` section prints: same counts, and quantile gauges
// identical to the StageStats quantiles.
func TestRegisterTelemetryAgreement(t *testing.T) {
	c := telemetry.NewCollector()
	for i := 1; i <= 500; i++ {
		c.Observe(telemetry.StageService, float64(i)*1e-6)
	}
	c.Observe(telemetry.StageMissPenalty, 2e-3)
	r := NewRegistry()
	RegisterTelemetry(r, c)
	out := render(t, r)
	b := c.Breakdown()
	svc := b[telemetry.StageService]
	wantCount := `memqlat_stage_latency_seconds_count{stage="service"} 500`
	if !strings.Contains(out, wantCount+"\n") {
		t.Errorf("missing %q:\n%s", wantCount, out)
	}
	for q, v := range map[string]float64{"0.5": svc.P50, "0.95": svc.P95, "0.99": svc.P99} {
		want := `memqlat_stage_latency_quantile_seconds{stage="service",q="` + q + `"} ` + formatValue(v)
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `memqlat_stage_observations_total{stage="miss_penalty"} 1`+"\n") {
		t.Errorf("missing miss_penalty observation count:\n%s", out)
	}
	// Unobserved stages expose empty histograms, not quantile gauges.
	if strings.Contains(out, `memqlat_stage_latency_quantile_seconds{stage="retry"`) {
		t.Errorf("quantile gauge emitted for unobserved stage:\n%s", out)
	}
}
