package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"memqlat/internal/otrace"
)

// Admin is the observability HTTP plane every memqlat binary can
// expose behind -admin: /metrics (Prometheus text), /healthz,
// /debug/pprof and, when a tracer is attached, /trace (Chrome
// trace-event JSON of the span ring). It uses its own mux, not
// http.DefaultServeMux, so importing net/http/pprof side effects never
// leak onto a data-plane listener.
type Admin struct {
	reg   *Registry
	mux   *http.ServeMux
	srv   *http.Server
	l     net.Listener
	start time.Time
}

// NewAdmin builds an Admin plane over reg (nil renders an empty
// /metrics page).
func NewAdmin(reg *Registry) *Admin {
	a := &Admin{
		reg:   reg,
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	a.mux.HandleFunc("/metrics", a.handleMetrics)
	a.mux.HandleFunc("/healthz", a.handleHealthz)
	a.mux.HandleFunc("/debug/pprof/", pprof.Index)
	a.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	a.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	a.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	a.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return a
}

// Registry returns the registry the admin plane serves.
func (a *Admin) Registry() *Registry { return a.reg }

// Handle mounts an extra handler on the admin mux.
func (a *Admin) Handle(pattern string, h http.Handler) {
	a.mux.Handle(pattern, h)
}

// AttachTracer serves t's span ring as Chrome trace-event JSON on
// /trace, so a live binary's recent requests can be pulled straight
// into chrome://tracing.
func (a *Admin) AttachTracer(t *otrace.Tracer) {
	a.mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChrome(w)
	})
}

func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.reg.WritePrometheus(w)
}

func (a *Admin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(a.start).Seconds(),
	})
}

// Start listens on addr and serves in the background; the returned
// address is the resolved listener address (useful with ":0").
func (a *Admin) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: admin listen %s: %w", addr, err)
	}
	a.l = l
	a.srv = &http.Server{Handler: a.mux}
	go func() { _ = a.srv.Serve(l) }()
	return l.Addr(), nil
}

// Close stops the admin listener; safe when never started.
func (a *Admin) Close() error {
	if a.srv == nil {
		return nil
	}
	return a.srv.Close()
}

// ServeHTTP exposes the admin mux directly (tests, embedding).
func (a *Admin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}
