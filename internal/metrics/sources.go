package metrics

import (
	"strconv"

	"memqlat/internal/backend"
	"memqlat/internal/client"
	"memqlat/internal/coalesce"
	"memqlat/internal/otrace"
	"memqlat/internal/protocol"
	"memqlat/internal/proxy"
	"memqlat/internal/server"
	"memqlat/internal/slo"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
	"memqlat/internal/tenant"
)

// RegisterTelemetry exposes a telemetry Collector's per-stage latency
// decomposition: one histogram family labelled by stage, backed by the
// same merged log-bucketed histograms Breakdown summarizes, plus a
// quantile gauge family so the page states p50/p95/p99 directly — the
// numbers `stats telemetry` and the crossplane experiment print.
func RegisterTelemetry(r *Registry, c *telemetry.Collector) {
	RegisterTelemetryExemplars(r, c, nil)
}

// RegisterTelemetryExemplars is RegisterTelemetry with OpenMetrics
// exemplars: each stage's histogram attaches the most recent traced
// observation from ex (trace_id, value, timestamp) to the bucket that
// contains it. A nil store emits plain histograms — binaries opt in
// with a flag precisely because classic Prometheus text parsers may
// reject the exemplar suffix.
func RegisterTelemetryExemplars(r *Registry, c *telemetry.Collector, ex *telemetry.ExemplarStore) {
	if r == nil || c == nil {
		return
	}
	r.HistogramWithExemplars("memqlat_stage_latency_seconds",
		"Per-stage latency decomposition (Theorem 1 stages plus resilience stages).",
		nil, func(emit func(Labels, *stats.Histogram, *Exemplar)) {
			hs := c.Histograms()
			for _, stage := range telemetry.Stages() {
				var e *Exemplar
				if x := ex.Stage(stage); x != nil {
					e = &Exemplar{TraceID: x.TraceID, Value: x.Value, Unix: x.Unix}
				}
				emit(L("stage", stage.String()), hs[stage], e)
			}
		})
	r.GaugeVec("memqlat_stage_latency_quantile_seconds",
		"Per-stage latency quantiles at histogram bucket resolution.",
		func(emit func(Labels, float64)) {
			b := c.Breakdown()
			for _, stage := range telemetry.Stages() {
				st := b[stage]
				if st.Count == 0 {
					continue
				}
				name := stage.String()
				emit(L("stage", name, "q", "0.5"), st.P50)
				emit(L("stage", name, "q", "0.95"), st.P95)
				emit(L("stage", name, "q", "0.99"), st.P99)
			}
		})
	r.CounterVec("memqlat_stage_observations_total",
		"Observation count per telemetry stage.",
		func(emit func(Labels, float64)) {
			b := c.Breakdown()
			for _, stage := range telemetry.Stages() {
				emit(L("stage", stage.String()), float64(b[stage].Count))
			}
		})
}

// itoa is strconv.Itoa under a name that reads well in label-building
// call sites below.
func itoa(i int) string { return strconv.Itoa(i) }

// breakerStateValue encodes a breaker state string as a gauge value so
// dashboards can alert on transitions: 0 closed, 1 half-open, 2 open,
// -1 disabled.
func breakerStateValue(state string) float64 {
	switch state {
	case "closed":
		return 0
	case "half-open":
		return 1
	case "open":
		return 2
	}
	return -1
}

// RegisterServers exposes a cluster of servers on one registry:
// connection/command counters, the per-command latency histogram behind
// "stats latency", and the backing cache's occupancy, hit/miss,
// eviction and shard-lock contention counters. The "server" label is
// the slice index — the same numbering the model and simulator use.
func RegisterServers(r *Registry, srvs []*server.Server) {
	if r == nil || len(srvs) == 0 {
		return
	}
	r.GaugeVec("memqlat_server_connections_current",
		"Open downstream connections per server.",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				emit(L("server", itoa(i)), float64(s.Counters().CurrConns))
			}
		})
	r.CounterVec("memqlat_server_connections_total",
		"Connections ever accepted per server.",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				emit(L("server", itoa(i)), float64(s.Counters().TotalConns))
			}
		})
	r.CounterVec("memqlat_server_connections_rejected_total",
		"Connections rejected (MaxConns cap or refuse-fault window).",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				emit(L("server", itoa(i)), float64(s.Counters().RejectedConns))
			}
		})
	r.CounterVec("memqlat_server_commands_total",
		"Commands dispatched per server and protocol op.",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				for op := protocol.OpGet; op <= protocol.OpTrace; op++ {
					if n := s.OpCount(op); n > 0 {
						emit(L("server", itoa(i), "op", op.String()), float64(n))
					}
				}
			}
		})
	r.Histogram("memqlat_server_command_latency_seconds",
		"Per-command handling latency, rescaled to population counts: unshaped servers time 1 in sample_every commands, so bucket counts are multiplied by sample_every at scrape time (Horvitz-Thompson; see DESIGN.md).",
		nil, func(emit func(Labels, *stats.Histogram)) {
			for i, s := range srvs {
				h := s.LatencyHistogram()
				// LatencyHistogram returns a private copy, so the scrape
				// can rescale it in place. Without this, a page mixing
				// sampled (1-in-k) and always-timed (shaped/traced)
				// servers under-weights the sampled ones k-fold.
				if k := s.LatencySampleEvery(); k > 1 {
					h.Scale(int64(k))
				}
				emit(L("server", itoa(i)), h)
			}
		})
	r.GaugeVec("memqlat_server_latency_sample_every",
		"The k of each server's 1-in-k command timing (1 = every command, 0 = timing off).",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				emit(L("server", itoa(i)), float64(s.LatencySampleEvery()))
			}
		})
	// Event-loop core gauges: absent (no series) on the goroutine core,
	// so dashboards can tell the cores apart by family presence.
	r.GaugeVec("memqlat_server_loop_connections",
		"Connections owned by each event-loop goroutine (eventloop core only).",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				for li, ls := range s.LoopStats() {
					emit(L("server", itoa(i), "loop", itoa(li)), float64(ls.Conns))
				}
			}
		})
	r.CounterVec("memqlat_server_loop_wakeups_total",
		"epoll_wait returns per event-loop goroutine (readiness batches).",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				for li, ls := range s.LoopStats() {
					emit(L("server", itoa(i), "loop", itoa(li)), float64(ls.Wakeups))
				}
			}
		})
	r.CounterVec("memqlat_server_loop_flush_batches_total",
		"Coalesced reply flushes per event-loop goroutine (one per connection per batch with output).",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				for li, ls := range s.LoopStats() {
					emit(L("server", itoa(i), "loop", itoa(li)), float64(ls.FlushBatches))
				}
			}
		})
	r.CounterVec("memqlat_server_loop_commands_total",
		"Commands dispatched per event-loop goroutine.",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				for li, ls := range s.LoopStats() {
					emit(L("server", itoa(i), "loop", itoa(li)), float64(ls.Commands))
				}
			}
		})
	r.GaugeVec("memqlat_cache_shard_items",
		"Cached items per server and shard (occupancy balance).",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				for sh, st := range s.Cache().ShardStats() {
					emit(L("server", itoa(i), "shard", itoa(sh)), float64(st.Items))
				}
			}
		})
	r.GaugeVec("memqlat_cache_shard_bytes",
		"Cached bytes per server and shard.",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				for sh, st := range s.Cache().ShardStats() {
					emit(L("server", itoa(i), "shard", itoa(sh)), float64(st.Bytes))
				}
			}
		})
	r.CounterVec("memqlat_cache_operations_total",
		"Cache hit/miss/set/eviction/expiration counts per server.",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				st := s.Cache().Stats()
				srv := itoa(i)
				emit(L("server", srv, "result", "hit"), float64(st.Hits))
				emit(L("server", srv, "result", "miss"), float64(st.Misses))
				emit(L("server", srv, "result", "set"), float64(st.Sets))
				emit(L("server", srv, "result", "eviction"), float64(st.Evictions))
				emit(L("server", srv, "result", "expiration"), float64(st.Expirations))
			}
		})
	r.CounterVec("memqlat_cache_lock_waits_total",
		"Contended shard-lock acquisitions per server.",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				emit(L("server", itoa(i)), float64(s.Cache().Stats().LockWaits))
			}
		})
	r.CounterVec("memqlat_cache_lock_wait_seconds_total",
		"Summed shard-lock blocked time per server.",
		func(emit func(Labels, float64)) {
			for i, s := range srvs {
				emit(L("server", itoa(i)), s.Cache().Stats().LockWaitSeconds)
			}
		})
}

// RegisterProxy exposes the proxy's forwarding counters, per-upstream
// pipeline depth and failover breaker states.
func RegisterProxy(r *Registry, p *proxy.Proxy) {
	if r == nil || p == nil {
		return
	}
	r.Counter("memqlat_proxy_commands_total",
		"Commands the proxy dispatched.",
		func() float64 { return float64(p.Stats().Commands) })
	r.Counter("memqlat_proxy_forwarded_total",
		"Upstream sends (fan-out legs count individually).",
		func() float64 { return float64(p.Stats().Forwarded) })
	r.Counter("memqlat_proxy_failovers_total",
		"Keys routed off their owner by an open breaker.",
		func() float64 { return float64(p.Stats().Failovers) })
	r.GaugeVec("memqlat_proxy_upstream_queue_depth",
		"Outstanding pipelined requests per upstream server.",
		func(emit func(Labels, float64)) {
			for i, d := range p.UpstreamQueueDepths() {
				emit(L("upstream", itoa(i)), float64(d))
			}
		})
	r.GaugeVec("memqlat_proxy_breaker_state",
		"Failover breaker per upstream: 0 closed, 1 half-open, 2 open, -1 disabled.",
		func(emit func(Labels, float64)) {
			for i := 0; i < p.Stats().Upstreams; i++ {
				emit(L("upstream", itoa(i)), breakerStateValue(p.BreakerState(i)))
			}
		})
}

// RegisterTenants exposes the QoS limiter's per-tenant ledger: the
// admitted/shed op and byte counters the noisy-neighbor smoke asserts
// on, the live bucket levels, and the admitted-traffic latency
// histogram with its headline quantiles. The "tenant" label is the
// spec name; the implicit catch-all appears as "*" once it has seen
// traffic.
func RegisterTenants(r *Registry, lim *tenant.Limiter) {
	if r == nil || lim == nil {
		return
	}
	// handles returns every tenant with traffic-bearing state: the
	// declared ones in order, then the implicit catch-all if active.
	handles := func() []*tenant.Tenant {
		ts := lim.Tenants()
		def := lim.Default()
		for _, t := range ts {
			if t == def {
				return ts
			}
		}
		if s := def.Snapshot(); s.Admitted > 0 || s.Shed > 0 {
			ts = append(ts[:len(ts):len(ts)], def)
		}
		return ts
	}
	r.CounterVec("memqlat_tenant_admitted_total",
		"Operations admitted past the tenant's token bucket.",
		func(emit func(Labels, float64)) {
			for _, s := range lim.Snapshots() {
				emit(L("tenant", s.Name), float64(s.Admitted))
			}
		})
	r.CounterVec("memqlat_tenant_shed_total",
		"Operations refused by the tenant's token bucket (shed before queue).",
		func(emit func(Labels, float64)) {
			for _, s := range lim.Snapshots() {
				emit(L("tenant", s.Name), float64(s.Shed))
			}
		})
	r.CounterVec("memqlat_tenant_admitted_bytes_total",
		"Stored bytes admitted past the tenant's byte bucket.",
		func(emit func(Labels, float64)) {
			for _, s := range lim.Snapshots() {
				emit(L("tenant", s.Name), float64(s.AdmBytes))
			}
		})
	r.CounterVec("memqlat_tenant_shed_bytes_total",
		"Stored bytes refused by the tenant's byte bucket.",
		func(emit func(Labels, float64)) {
			for _, s := range lim.Snapshots() {
				emit(L("tenant", s.Name), float64(s.ShedBytes))
			}
		})
	r.GaugeVec("memqlat_tenant_tokens",
		"Current op-token level of the tenant's bucket.",
		func(emit func(Labels, float64)) {
			for _, s := range lim.Snapshots() {
				emit(L("tenant", s.Name), s.Tokens)
			}
		})
	r.GaugeVec("memqlat_tenant_byte_tokens",
		"Current byte-token level of the tenant's bucket.",
		func(emit func(Labels, float64)) {
			for _, s := range lim.Snapshots() {
				emit(L("tenant", s.Name), s.ByteTokens)
			}
		})
	r.Histogram("memqlat_tenant_latency_seconds",
		"Admitted-traffic latency per tenant (proxy hop on the data plane).",
		nil, func(emit func(Labels, *stats.Histogram)) {
			for _, t := range handles() {
				emit(L("tenant", t.Name()), t.Latency())
			}
		})
	r.GaugeVec("memqlat_tenant_latency_quantile_seconds",
		"Admitted-traffic latency quantiles per tenant.",
		func(emit func(Labels, float64)) {
			for _, t := range handles() {
				h := t.Latency()
				if h.Count() == 0 {
					continue
				}
				name := t.Name()
				emit(L("tenant", name, "q", "0.5"), h.MustQuantile(0.5))
				emit(L("tenant", name, "q", "0.95"), h.MustQuantile(0.95))
				emit(L("tenant", name, "q", "0.99"), h.MustQuantile(0.99))
			}
		})
}

// RegisterClient exposes the client's per-server pool counters and
// breaker states (the mcbench admin page).
func RegisterClient(r *Registry, c *client.Client) {
	if r == nil || c == nil {
		return
	}
	r.GaugeVec("memqlat_client_pool_idle",
		"Pooled idle connections per server.",
		func(emit func(Labels, float64)) {
			for i := 0; i < c.NumServers(); i++ {
				ps, err := c.PoolStats(i)
				if err != nil {
					continue
				}
				emit(L("server", itoa(i)), float64(ps.Idle))
			}
		})
	r.CounterVec("memqlat_client_pool_dials_total",
		"Connections dialed per server.",
		func(emit func(Labels, float64)) {
			for i := 0; i < c.NumServers(); i++ {
				ps, err := c.PoolStats(i)
				if err != nil {
					continue
				}
				emit(L("server", itoa(i)), float64(ps.Dials))
			}
		})
	r.CounterVec("memqlat_client_pool_discards_total",
		"Connections closed instead of recycled, with the liveness screen's share.",
		func(emit func(Labels, float64)) {
			for i := 0; i < c.NumServers(); i++ {
				ps, err := c.PoolStats(i)
				if err != nil {
					continue
				}
				emit(L("server", itoa(i), "reason", "all"), float64(ps.Discards))
				emit(L("server", itoa(i), "reason", "stale"), float64(ps.StaleDrops))
			}
		})
	r.GaugeVec("memqlat_client_breaker_state",
		"Client breaker per server: 0 closed, 1 half-open, 2 open, -1 disabled.",
		func(emit func(Labels, float64)) {
			for i := 0; i < c.NumServers(); i++ {
				emit(L("server", itoa(i)), breakerStateValue(c.BreakerState(i)))
			}
		})
}

// RegisterCoalesce exposes a single-flight group's miss-coalescing
// counters: how many keys have a fetch in flight right now, how many
// callers are attached, and the cumulative fetch/fan-in/shed ledger —
// fan-ins are backend fetches saved, the herd-protection headline.
func RegisterCoalesce(r *Registry, g *coalesce.Group) {
	if r == nil || !g.Coalescing() {
		return
	}
	r.Gauge("memqlat_coalesce_inflight_keys",
		"Keys with a backend fetch currently in flight.",
		func() float64 { return float64(g.Stats().InflightKeys) })
	r.Gauge("memqlat_coalesce_waiters",
		"Callers currently attached to in-flight fetches (excluding leaders).",
		func() float64 { return float64(g.Stats().Waiters) })
	r.Counter("memqlat_coalesce_fetches_total",
		"Backend fetches actually issued (one per single-flight leader).",
		func() float64 { return float64(g.Stats().Fetches) })
	r.Counter("memqlat_coalesce_fanins_total",
		"Callers that attached to an existing fetch — backend fetches saved.",
		func() float64 { return float64(g.Stats().FanIns) })
	r.Counter("memqlat_coalesce_sheds_total",
		"Callers rejected because a key's waiter count hit MaxWaiters.",
		func() float64 { return float64(g.Stats().Sheds) })
	r.Counter("memqlat_coalesce_invalidations_total",
		"Writes that invalidated an in-flight fetch (stale write-back suppressed).",
		func() float64 { return float64(g.Stats().Invalidations) })
}

// RegisterBackend exposes the simulated database's load counters,
// including the single-queue depth gauges that make a thundering herd
// visible (both zero in concurrent mode).
func RegisterBackend(r *Registry, db *backend.DB) {
	if r == nil || db == nil {
		return
	}
	r.Counter("memqlat_backend_lookups_total",
		"Database lookups served (the post-coalescing fetch load).",
		func() float64 { return float64(db.Stats().Lookups) })
	r.Counter("memqlat_backend_dropped_total",
		"Lookups rejected at the single-queue admission bound.",
		func() float64 { return float64(db.Stats().Dropped) })
	r.Gauge("memqlat_backend_queue_depth",
		"Current single-queue backlog (0 in concurrent mode).",
		func() float64 { return float64(db.Stats().QueueDepth) })
	r.Gauge("memqlat_backend_queue_peak",
		"Single-queue backlog high-watermark since start.",
		func() float64 { return float64(db.Stats().QueuePeak) })
}

// RegisterSLO exposes the watchdog's state as the memqlat_slo_* metric
// families: the model band anchors and last-window observed quantiles
// per stage, the drift bookkeeping (streak, drifting flag, magnitude),
// the burn rates and the alert counters — everything /debug/watch
// serves, shaped for scraping. Each family snapshots the watchdog at
// scrape time; an idle page costs the recording hot path nothing.
func RegisterSLO(r *Registry, wd *slo.Watchdog) {
	if r == nil || wd == nil {
		return
	}
	r.Gauge("memqlat_slo_armed",
		"1 once the watchdog is armed and ingesting observations.",
		func() float64 {
			if wd.Armed() {
				return 1
			}
			return 0
		})
	r.Counter("memqlat_slo_windows_closed_total",
		"Rolling windows closed and evaluated since arming.",
		func() float64 { return float64(wd.Status().WindowsClosed) })
	r.GaugeVec("memqlat_slo_stage_predicted_seconds",
		"Theorem-1 band anchor per stage and quantile (the model's prediction).",
		func(emit func(Labels, float64)) {
			for _, ss := range wd.Status().Stages {
				if ss.Predicted == nil {
					continue
				}
				emit(L("stage", ss.Stage, "q", "0.5"), ss.Predicted.P50)
				emit(L("stage", ss.Stage, "q", "0.95"), ss.Predicted.P95)
				emit(L("stage", ss.Stage, "q", "0.99"), ss.Predicted.P99)
			}
		})
	r.GaugeVec("memqlat_slo_stage_observed_seconds",
		"Observed quantiles of the last evaluated window per stage.",
		func(emit func(Labels, float64)) {
			for _, ss := range wd.Status().Stages {
				if ss.Count == 0 {
					continue
				}
				emit(L("stage", ss.Stage, "q", "0.5"), ss.Observed.P50)
				emit(L("stage", ss.Stage, "q", "0.95"), ss.Observed.P95)
				emit(L("stage", ss.Stage, "q", "0.99"), ss.Observed.P99)
			}
		})
	r.GaugeVec("memqlat_slo_stage_drift_streak",
		"Consecutive windows the stage has sat outside its model band.",
		func(emit func(Labels, float64)) {
			for _, ss := range wd.Status().Stages {
				emit(L("stage", ss.Stage), float64(ss.Streak))
			}
		})
	r.GaugeVec("memqlat_slo_stage_drifting",
		"1 while the stage's drift streak has reached K (alert condition).",
		func(emit func(Labels, float64)) {
			for _, ss := range wd.Status().Stages {
				v := 0.0
				if ss.Drifting {
					v = 1
				}
				emit(L("stage", ss.Stage), v)
			}
		})
	r.GaugeVec("memqlat_slo_stage_drift_magnitude",
		"Worst observed/predicted quantile ratio of the last evaluated window (1 = on-model).",
		func(emit func(Labels, float64)) {
			for _, ss := range wd.Status().Stages {
				if ss.Count == 0 {
					continue
				}
				emit(L("stage", ss.Stage), ss.Magnitude)
			}
		})
	r.GaugeVec("memqlat_slo_burn_rate",
		"Error-budget burn rate over the short and long alignment windows.",
		func(emit func(Labels, float64)) {
			st := wd.Status()
			emit(L("window", "short"), st.BurnShort)
			emit(L("window", "long"), st.BurnLong)
		})
	r.Gauge("memqlat_slo_burn_active",
		"1 while both burn windows exceed the alert threshold.",
		func() float64 {
			if wd.Status().BurnActive {
				return 1
			}
			return 0
		})
	r.Counter("memqlat_slo_drift_alerts_total",
		"Drift alert episodes fired since arming.",
		func() float64 { return float64(wd.Status().DriftAlerts) })
	r.Counter("memqlat_slo_burn_alerts_total",
		"Burn-rate alert episodes fired since arming.",
		func() float64 { return float64(wd.Status().BurnAlerts) })
}

// RegisterTracer exposes the trace ring's retention counters so a
// scraper can tell how much of the trace survived (total - kept spans
// were evicted).
func RegisterTracer(r *Registry, t *otrace.Tracer) {
	if r == nil || !t.Enabled() {
		return
	}
	r.Gauge("memqlat_trace_spans_kept",
		"Spans currently retained in the trace ring.",
		func() float64 { kept, _ := t.Stats(); return float64(kept) })
	r.Counter("memqlat_trace_spans_total",
		"Spans recorded over the tracer's lifetime.",
		func() float64 { _, total := t.Stats(); return float64(total) })
}
