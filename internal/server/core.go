package server

import "net"

// Connection-core names accepted by Options.ConnCore and the
// -conn-core flags.
const (
	// CoreGoroutines is the legacy core: one goroutine per connection,
	// blocking reads, per-connection buffers. It is the default and the
	// configuration the paper reproduction runs on.
	CoreGoroutines = "goroutines"
	// CoreEventLoop multiplexes every connection onto a small set of
	// epoll-driven loop goroutines (default GOMAXPROCS): readiness-driven
	// batched reads feed per-connection resumable parsers, replies
	// coalesce into one write per connection per batch, and an idle
	// connection costs a few hundred bytes instead of a goroutine stack.
	// Linux only.
	CoreEventLoop = "eventloop"
)

// ConnCores lists the selectable connection cores.
func ConnCores() []string { return []string{CoreGoroutines, CoreEventLoop} }

// connCore owns connections after the accept loop admits them. Both
// implementations run the same per-command path (serveCommand), the
// same parser semantics and the same telemetry; they differ only in how
// connections map onto goroutines.
type connCore interface {
	// attach takes ownership of an accepted connection. It returns false
	// when the server is closed (the caller then closes the conn and
	// stops accepting); in every other case the core is responsible for
	// eventually closing the connection and decrementing currConns.
	attach(conn net.Conn, id uint64) bool
	// shutdown closes every attached connection and waits for the
	// core's goroutines to exit. Called once, from Server.Close.
	shutdown()
	// loopStats snapshots per-loop gauges (nil for the goroutine core).
	loopStats() []LoopStat
}

// LoopStat is a snapshot of one event-loop goroutine's gauges, exposed
// through Server.LoopStats and the metrics registry.
type LoopStat struct {
	// Conns is the number of connections currently owned by the loop.
	Conns int64
	// Wakeups counts epoll_wait returns (readiness batches serviced).
	Wakeups int64
	// FlushBatches counts coalesced reply flushes: one per connection
	// per readiness batch that produced output, so FlushBatches/Commands
	// measures how much reply coalescing the pipelining achieves.
	FlushBatches int64
	// Commands counts commands the loop has dispatched.
	Commands int64
}
