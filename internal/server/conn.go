package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"time"

	"memqlat/internal/dist"
	"memqlat/internal/fault"
	"memqlat/internal/otrace"
	"memqlat/internal/protocol"
	"memqlat/internal/telemetry"
)

// connState is the per-connection reusable scratch the dispatch path
// appends into, so steady-state gets allocate nothing.
type connState struct {
	val []byte // GetInto destination; grows to the largest value seen
	// trace is the pending mq_trace header: it scopes the next command
	// on the connection, then resets.
	trace otrace.Ctx
}

// connSession bundles the per-connection dispatch state both cores
// thread through serveCommand: telemetry handle, latency stripe,
// service-time shaper, sampling sequence and reusable scratch.
type connSession struct {
	st connState
	// rec/lat: connections mapped to different stripes never serialize
	// on observability.
	rec telemetry.Recorder
	lat *latencyStripe
	// shaper draws exponential service times when ServiceRate > 0.
	shaper *rand.Rand
	// cmdSeq is the per-connection sequence driving latency sampling.
	cmdSeq uint64
	// blackhole is the lazily built reply sink for Drop faults.
	blackhole *protocol.Writer
}

// newSession builds the dispatch state for connection id.
func (s *Server) newSession(id uint64) *connSession {
	cs := &connSession{
		rec: telemetry.Shard(s.rec, id),
		lat: s.latency.stripe(id),
	}
	if s.opts.ServiceRate > 0 {
		cs.shaper = dist.SubRand(s.opts.Seed, id)
	}
	return cs
}

// primaryKey returns the key that routes a command to a service channel
// (first key of multi-key ops; nil for keyless commands).
func primaryKey(cmd *protocol.Command) []byte {
	if cmd.KeyB != nil {
		return cmd.KeyB
	}
	if len(cmd.KeyList) > 0 {
		return cmd.KeyList[0]
	}
	return nil
}

// serveCommand runs one parsed command through the full service path —
// counters, trace propagation, fault injection, the shaped service
// channel, dispatch and timing — identically on both connection cores.
// closeConn asks the caller to tear the connection down with the reply
// unwritten (fault reset/refuse); err reports a write failure.
func (s *Server) serveCommand(w *protocol.Writer, cmd *protocol.Command, cs *connSession) (closeConn bool, err error) {
	s.cmdCount.Add(1)
	if cmd.Op >= 0 && int(cmd.Op) < len(s.opCounts) {
		s.opCounts[cmd.Op].Add(1)
	}
	if cmd.Op == protocol.OpTrace {
		// Trace header: stash the context for the next command. No
		// reply, no fault evaluation — it is metadata, not work.
		cs.st.trace = otrace.Ctx{Trace: cmd.CAS, Span: cmd.Delta}
		return false, nil
	}
	// Shaped servers time every command (the queue-wait split needs
	// it); unshaped ones sample 1 in TimingSample per connection
	// (default 8), so the latency/telemetry histograms estimate the
	// same distribution without paying two clock reads and two
	// histogram inserts on every operation of the raw hot path.
	timed := cs.shaper != nil || (!s.timingOff && cs.cmdSeq&s.timingMask == 0)
	cs.cmdSeq++
	// A pending trace header upgrades the command to traced: spans
	// are recorded against the tracer's run clock, and the command
	// is always timed so span durations exist.
	var srvSpan otrace.Span
	if tc := cs.st.trace; tc.Valid() {
		cs.st.trace = otrace.Ctx{}
		if tr := s.opts.Tracer; tr.Enabled() {
			srvSpan = tr.Begin(tc, "server", "handle", s.opts.ID)
			timed = true
		}
	}
	var began time.Time
	if timed {
		began = time.Now()
	}
	act := s.opts.Fault.Eval()
	if act.Delay > 0 {
		time.Sleep(time.Duration(act.Delay * float64(time.Second)))
	}
	if act.Outcome == fault.Reset || act.Outcome == fault.Refuse {
		// Tear the connection down mid-operation, reply unwritten.
		return true, nil
	}
	var waited time.Duration
	if cs.shaper != nil {
		service := time.Duration(cs.shaper.ExpFloat64() / s.opts.ServiceRate * float64(time.Second))
		ch := 0
		if len(s.serviceCh) > 1 {
			ch = s.opts.Cache.ShardIndex(primaryKey(cmd)) % len(s.serviceCh)
		}
		s.serviceCh[ch].Lock()
		// Time spent acquiring the service channel is the live
		// server's queueing delay (the W of GI^X/M/1).
		waited = time.Since(began)
		time.Sleep(service)
		s.serviceCh[ch].Unlock()
		cs.rec.Observe(telemetry.StageQueueWait, waited.Seconds())
	}
	out := w
	if act.Outcome == fault.Drop {
		// The server does the work but the reply is lost: the client
		// is left waiting for its op timeout.
		if cs.blackhole == nil {
			cs.blackhole = protocol.NewWriter(bufio.NewWriter(io.Discard))
		}
		out = cs.blackhole
	}
	if err := s.dispatch(out, cmd, cs); err != nil {
		return false, err
	}
	if timed {
		total := time.Since(began)
		cs.lat.record(total.Seconds())
		cs.rec.Observe(telemetry.StageService, (total - waited).Seconds())
		if srvSpan.ID != 0 {
			// A traced command doubles as the stage histograms' exemplar:
			// the freshest observation a scrape can link back to a trace.
			if ex := s.opts.Exemplars; ex != nil {
				unix := float64(time.Now().UnixNano()) / 1e9
				if waited > 0 {
					ex.Record(telemetry.StageQueueWait, srvSpan.Trace, waited.Seconds(), unix)
				}
				ex.Record(telemetry.StageService, srvSpan.Trace, (total - waited).Seconds(), unix)
			}
			tr := s.opts.Tracer
			// Child spans mirror the queue_wait/service telemetry
			// split inside the handle span's window.
			if waited > 0 {
				tr.Emit(otrace.Span{
					Trace: srvSpan.Trace, ID: tr.NewID(), Parent: srvSpan.ID,
					Comp: "server", Name: "queue_wait", Server: s.opts.ID,
					Start: srvSpan.Start, Dur: waited.Seconds(),
				})
			}
			tr.Emit(otrace.Span{
				Trace: srvSpan.Trace, ID: tr.NewID(), Parent: srvSpan.ID,
				Comp: "server", Name: "service", Server: s.opts.ID,
				Start: srvSpan.Start + waited.Seconds(), Dur: (total - waited).Seconds(),
			})
			tr.End(srvSpan)
		}
	}
	return false, nil
}

// goroutineCore is the legacy connection core: each attached connection
// gets its own goroutine running a blocking read loop. Simple, fair,
// and exactly the configuration the paper reproduction measures — but a
// 100k-connection fan-in pays 100k stacks and read buffers.
type goroutineCore struct {
	s *Server
}

func (c *goroutineCore) attach(conn net.Conn, id uint64) bool {
	s := c.s
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			s.currConns.Add(-1)
			_ = conn.Close()
		}()
		if err := s.handleConn(conn, id); err != nil && !errors.Is(err, net.ErrClosed) {
			s.logger.Printf("server: conn %d: %v", id, err)
		}
	}()
	return true
}

// shutdown is a no-op: Server.Close closes the conns map entries, which
// unblocks every handler goroutine, and s.wg waits for them.
func (c *goroutineCore) shutdown() {}

func (c *goroutineCore) loopStats() []LoopStat { return nil }

// handleConn runs the request loop for one connection.
func (s *Server) handleConn(conn net.Conn, id uint64) error {
	r := bufio.NewReaderSize(conn, s.opts.ReadBuffer)
	w := protocol.NewWriter(bufio.NewWriterSize(conn, s.opts.WriteBuffer))
	p := protocol.NewParser(r)
	cs := s.newSession(id)
	for {
		if s.opts.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout)); err != nil {
				return fmt.Errorf("set idle deadline: %w", err)
			}
		}
		cmd, err := p.Next()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// Idle connection: close it quietly.
				_ = w.Flush()
				return nil
			}
			switch {
			case errors.Is(err, protocol.ErrQuit):
				return w.Flush()
			case protocol.IsRecoverable(err):
				if werr := w.ClientErrorf("%v", err); werr != nil {
					return werr
				}
				if werr := w.Flush(); werr != nil {
					return werr
				}
				continue
			default:
				_ = w.Flush()
				return protocol.EOFOrNil(err)
			}
		}
		closeConn, err := s.serveCommand(w, cmd, cs)
		if err != nil {
			return err
		}
		if closeConn {
			return nil
		}
		// Flush when the pipeline is drained (no buffered next command).
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return err
			}
		}
	}
}
