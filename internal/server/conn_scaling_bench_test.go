package server

// Connection-count scaling benchmark: the C100K story. A mostly-idle
// fleet of N connections parks on the event-loop server while a small
// hot subset pumps pipelined gets; ns/op and the reported latency
// quantiles measure whether fan-in itself degrades the hot path. On
// the goroutine core every parked connection costs a goroutine stack
// and buffers; on the event loop it costs an epoll entry and a small
// struct, which is what keeps p99 flat as N grows.
//
// Scales that would overrun RLIMIT_NOFILE (each in-process connection
// burns two fds, client and server end) are skipped, so the checked-in
// BENCH_conns.json baseline only carries scales runnable at the common
// 20k fd limit; larger tiers appear as "new" entries on hardware with
// a raised limit. Client source addresses rotate through 127.0.0.0/8
// so ephemeral ports never run out.

import (
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"memqlat/internal/cache"
)

const scalingHotConns = 16

// raiseNoFile lifts the soft fd limit to the hard limit and returns
// what we ended up with.
func raiseNoFile() uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 1024
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
		_ = syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	return uint64(rl.Cur)
}

// dialFleet opens n connections to addr and leaves them idle. Source
// IPs rotate across 127.0.0.2..127.0.0.201 so each source gets its own
// ephemeral port range. Dials run on a few goroutines; failures abort.
func dialFleet(tb testing.TB, addr string, n int) []net.Conn {
	tb.Helper()
	conns := make([]net.Conn, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				d := net.Dialer{
					Timeout:   10 * time.Second,
					KeepAlive: -1,
					LocalAddr: &net.TCPAddr{IP: net.IPv4(127, 0, 0, byte(2+i%200))},
				}
				c, err := d.Dial("tcp", addr)
				if err != nil {
					select {
					case errc <- fmt.Errorf("dial %d/%d: %w", i, n, err):
					default:
					}
					return
				}
				conns[i] = c
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
		tb.Fatal(err)
	default:
	}
	tb.Cleanup(func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	})
	return conns
}

// startScalingServer builds an event-loop server sized for n
// connections with the hot keyset loaded.
func startScalingServer(tb testing.TB, n int) (*Server, string) {
	tb.Helper()
	c, err := cache.New(cache.Options{MaxBytes: 256 << 20})
	if err != nil {
		tb.Fatal(err)
	}
	value := []byte(strings.Repeat("v", hotValueLen))
	for i := 0; i < hotKeys; i++ {
		if err := c.Set(hotKey(i), value, 0, 0); err != nil {
			tb.Fatal(err)
		}
	}
	srv, err := New(Options{
		Cache:    c,
		ConnCore: CoreEventLoop,
		MaxConns: n + scalingHotConns + 16,
		Logger:   log.New(io.Discard, "", 0),
	})
	if err != nil {
		tb.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	tb.Cleanup(func() { _ = srv.Close() })
	return srv, l.Addr().String()
}

// scalingQuantiles are batch-latency quantiles in seconds.
type scalingQuantiles struct{ p50, p95, p99 float64 }

// runScalingLoad pumps totalOps pipelined gets through the hot subset
// against a server holding idleConns parked connections, returning
// per-op latency quantiles (batch RTT divided by batch size).
func runScalingLoad(tb testing.TB, addr string, totalOps int64) scalingQuantiles {
	tb.Helper()
	type worker struct {
		nc      net.Conn
		batch   []byte
		resp    []byte
		ops     int64
		samples []float64
	}
	workers := make([]*worker, scalingHotConns)
	for i := range workers {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			tb.Fatal(err)
		}
		batch, ops, respLen := hotBatch("get", i*16)
		workers[i] = &worker{nc: nc, batch: batch, resp: make([]byte, respLen), ops: int64(ops)}
	}
	defer func() {
		for _, w := range workers {
			_ = w.nc.Close()
		}
	}()
	var remaining atomic.Int64
	remaining.Store(totalOps)
	var wg sync.WaitGroup
	errs := make(chan error, len(workers))
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for remaining.Add(-w.ops) > -w.ops {
				start := time.Now()
				if _, err := w.nc.Write(w.batch); err != nil {
					errs <- err
					return
				}
				if _, err := io.ReadFull(w.nc, w.resp); err != nil {
					errs <- err
					return
				}
				w.samples = append(w.samples, time.Since(start).Seconds()/float64(w.ops))
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		tb.Fatal(err)
	default:
	}
	var all []float64
	for _, w := range workers {
		all = append(all, w.samples...)
	}
	sort.Float64s(all)
	q := func(level float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(level * float64(len(all)-1))
		return all[i]
	}
	return scalingQuantiles{p50: q(0.50), p95: q(0.95), p99: q(0.99)}
}

// scalingScales is the 1k → 100k connection ladder.
var scalingScales = []int{1000, 5000, 10000, 50000, 100000}

// fdsFor estimates the fds one in-process scale needs: two per parked
// connection plus hot subset, listener, epoll/pipe fds and slack.
func fdsFor(conns int) uint64 { return uint64(2*(conns+scalingHotConns) + 256) }

// BenchmarkConnScaling reports hot-path per-op cost and latency
// quantiles at each connection count. Run with a fixed -benchtime Nx
// (see make bench-conns) so the expensive fleet setup happens once per
// scale instead of once per b.N probe.
func BenchmarkConnScaling(b *testing.B) {
	if runtime.GOOS != "linux" {
		b.Skip("event loop requires linux")
	}
	limit := raiseNoFile()
	for _, conns := range scalingScales {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			if need := fdsFor(conns); limit < need {
				b.Skipf("RLIMIT_NOFILE=%d < %d needed for %d in-process connections", limit, need, conns)
			}
			_, addr := startScalingServer(b, conns)
			dialFleet(b, addr, conns-scalingHotConns)
			b.ReportAllocs()
			b.ResetTimer()
			q := runScalingLoad(b, addr, int64(b.N))
			b.StopTimer()
			b.ReportMetric(q.p50*1e9, "p50-ns/op")
			b.ReportMetric(q.p95*1e9, "p95-ns/op")
			b.ReportMetric(q.p99*1e9, "p99-ns/op")
		})
	}
}

// TestConnScalingP99 is the acceptance gate behind the benchmark: with
// ≥50k connections parked on the event loop, hot-path p99 must stay
// within 2x of the 1k-connection p99 (with a 1ms floor so sub-ms jitter
// on loaded CI machines cannot flake the ratio). Skipped where the fd
// limit cannot hold 50k in-process connections; the bench CI job runs
// it on hardware that can.
func TestConnScalingP99(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.GOOS != "linux" {
		t.Skip("event loop requires linux")
	}
	limit := raiseNoFile()
	const bigScale = 50000
	if need := fdsFor(bigScale); limit < need {
		t.Skipf("RLIMIT_NOFILE=%d < %d needed for %d in-process connections", limit, need, bigScale)
	}
	const ops = 200000
	measure := func(conns int) scalingQuantiles {
		_, addr := startScalingServer(t, conns)
		dialFleet(t, addr, conns-scalingHotConns)
		return runScalingLoad(t, addr, ops)
	}
	base := measure(1000)
	big := measure(bigScale)
	t.Logf("p99: 1k=%.1fµs %dk=%.1fµs", base.p99*1e6, bigScale/1000, big.p99*1e6)
	bound := 2 * base.p99
	if floor := 1e-3; bound < floor {
		bound = floor
	}
	if big.p99 > bound {
		t.Errorf("p99 at %d conns = %.1fµs, exceeds 2x the 1k-connection p99 (%.1fµs)",
			bigScale, big.p99*1e6, base.p99*1e6)
	}
}
