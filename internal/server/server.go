// Package server hosts the cache behind the memcached text protocol
// over TCP: accept loop, one goroutine per connection, pipelining-aware
// buffered I/O, graceful shutdown, connection limits and a stats
// surface. An optional service-time shaper reproduces the paper's
// exponential per-key service model (rate µ_S) so that live runs
// exercise the same dynamics the theory describes.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/coalesce"
	"memqlat/internal/extstore"
	"memqlat/internal/fault"
	"memqlat/internal/otrace"
	"memqlat/internal/protocol"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
)

// Version is reported by the version command.
const Version = "memqlat-0.9"

// thirtyDays is memcached's threshold separating relative exptimes from
// absolute unix timestamps.
const thirtyDays = 60 * 60 * 24 * 30

// Options configures a Server.
type Options struct {
	// Cache is the backing store (required).
	Cache *cache.Cache
	// MaxConns caps concurrent connections (default 1024).
	MaxConns int
	// ServiceRate, when positive, delays every command by an
	// exponential draw of mean 1/ServiceRate, emulating a Memcached
	// server with service rate µ_S (paper §5.1 measures 80 Kps).
	ServiceRate float64
	// ServiceChannels is the number of independent service channels the
	// shaped path may occupy concurrently (default 1: the single-server
	// GI^X/M/1 queue the paper models). Values > 1 emulate a
	// multi-threaded memcached where commands for different cache shards
	// are serviced in parallel; commands are routed to channels by key
	// shard so per-key ordering is preserved.
	ServiceChannels int
	// Seed feeds the service-time shaper.
	Seed uint64
	// Logger receives connection-level errors (default log.Default()).
	Logger *log.Logger
	// ReadBuffer / WriteBuffer size the per-connection buffers
	// (default 16 KiB).
	ReadBuffer  int
	WriteBuffer int
	// IdleTimeout closes connections that send no command for this
	// long (0 = never).
	IdleTimeout time.Duration
	// Recorder, when set, additionally receives the server's per-stage
	// observations (queue wait on the service channel, service time) —
	// the live plane threads one harness-wide collector through here.
	// The server always keeps its own collector for "stats telemetry".
	Recorder telemetry.Recorder
	// Fault, when set, is this server's handle into the shared fault
	// injector: refuse windows reject connections at accept, and every
	// command is run through the injector (slow/stall delays, dropped
	// replies, connection resets). Nil = healthy.
	Fault *fault.Point
	// TimingSample controls how often an unshaped connection times a
	// command for the latency/telemetry histograms: 1 times every
	// command, N > 1 times 1 in N (rounded up to a power of two so the
	// hot path masks instead of dividing), and any negative value turns
	// timing off. 0 keeps the existing default of 1 in 8, so the
	// zero-value Options behave exactly as before this field existed.
	// Shaped connections (ServiceRate > 0) always time every command —
	// the queue-wait split needs it. See "stats latency" for how the
	// sampling bias is reported.
	TimingSample int
	// Tracer, when set, records request-scoped spans for commands whose
	// connection sent an mq_trace header. Nil (the default) disables
	// tracing; the per-command cost is then a single branch.
	Tracer *otrace.Tracer
	// Exemplars, when set alongside Tracer, retains each stage's most
	// recent traced observation so /metrics can attach OpenMetrics
	// exemplars (trace_id) to the stage histogram buckets. Nil (the
	// default) records nothing; untraced commands never touch it.
	Exemplars *telemetry.ExemplarStore
	// ID labels this server's spans when a cluster shares one Tracer
	// (the live plane numbers servers as the model does).
	ID int
	// ConnCore selects the connection-handling core: CoreGoroutines
	// (default, one goroutine per connection — the paper-repro
	// configuration) or CoreEventLoop (an epoll event loop multiplexing
	// all connections onto a few poller/worker goroutines; Linux only).
	// Empty means CoreGoroutines.
	ConnCore string
	// LoopWorkers sets how many event-loop goroutines CoreEventLoop
	// runs (default GOMAXPROCS). Ignored by CoreGoroutines.
	LoopWorkers int
	// Filler, when set, turns GET/GETS misses into server-side
	// read-through: the missing key is fetched from the Filler (the
	// store of record), stored with FillTTL and served in the same
	// reply. dispatch is the seam shared by both connection cores, so
	// goroutine and event-loop servers fill identically. Nil keeps the
	// memcached default — misses are silently omitted — and the miss
	// path stays a single branch.
	Filler Filler
	// FillTTL is the exptime applied to read-through fills (0 = never
	// expires; negative stores the value already expired, which keeps a
	// benchmark in steady-state miss).
	FillTTL time.Duration
	// Coalesce, when set alongside Filler, collapses concurrent
	// read-through fetches for the same key into one in-flight backend
	// call (single-flight miss coalescing; see internal/coalesce).
	// Nil means every miss fetches independently.
	Coalesce *coalesce.Policy
	// Extstore, when set, adds a log-structured SSD tier behind the RAM
	// cache: LRU victims are appended to it asynchronously (the server
	// installs the cache's OnEvict hook), GET misses consult it before
	// the Filler, disk hits are re-promoted into RAM with their
	// remaining TTL, and every mutation invalidates the key's disk
	// record alongside the coalescer. The server does not own the
	// store's lifecycle — the caller opens and closes it. Nil keeps the
	// RAM-only configuration: the miss path pays one nil check.
	Extstore *extstore.Store
}

// Filler fetches a missed key from the store of record for the
// server-side read-through path (same shape as client.Filler;
// backend.DB satisfies both).
type Filler interface {
	Get(ctx context.Context, key string) ([]byte, error)
}

// Server is a memcached-protocol TCP server.
type Server struct {
	opts   Options
	logger *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	totalConns   atomic.Int64
	currConns    atomic.Int64
	rejectedConn atomic.Int64
	cmdCount     atomic.Int64
	opCounts     [protocol.OpTrace + 1]atomic.Int64
	startTime    time.Time

	// timingMask drives unshaped-connection latency sampling: a command
	// is timed when cmdSeq&timingMask == 0. timingOff disables sampling
	// entirely (TimingSample < 0).
	timingMask uint64
	timingOff  bool

	// telem aggregates the per-stage decomposition served by "stats
	// telemetry"; rec tees it with the Options.Recorder (if any).
	telem *telemetry.Collector
	rec   telemetry.Recorder

	// serviceCh holds the shaped path's service channels. With the
	// default single channel, shaped service serializes across
	// connections so a shaped server behaves as ONE queueing server (the
	// model's single service channel), not one per connection. With
	// Options.ServiceChannels > 1, commands contend only within their
	// key's channel.
	serviceCh []sync.Mutex

	// latency tracks per-command handling time, served by "stats
	// latency" (a memqlat observability extension).
	latency latencyTracker

	// core owns connection handling after accept: either one goroutine
	// per connection or the shared event loop (see core.go).
	core connCore

	// coalescer single-flights the read-through path when
	// Options.Coalesce is set; nil otherwise (naive fills).
	coalescer *coalesce.Group
	fills     atomic.Int64 // read-through fetches served (hit after fill)
	fillErrs  atomic.Int64 // read-through fetches that failed (miss kept)

	// diskHits/promotions count GET misses the extstore tier absorbed
	// and how many of those were stored back into the RAM tier.
	diskHits   atomic.Int64
	promotions atomic.Int64
}

// latencyStripes is the number of lock domains in latencyTracker
// (power of two: connections map to stripes by masked id).
const latencyStripes = 8

// latencyTracker is a striped latency histogram: each connection records
// into its own stripe so per-command timing never serializes the
// connections against each other; snapshot merges the stripes.
type latencyTracker struct {
	stripes [latencyStripes]latencyStripe
}

type latencyStripe struct {
	mu   sync.Mutex
	hist *stats.Histogram
}

// stripe returns the lock domain for the connection identified by hint.
func (l *latencyTracker) stripe(hint uint64) *latencyStripe {
	return &l.stripes[hint&(latencyStripes-1)]
}

func (ls *latencyStripe) record(seconds float64) {
	ls.mu.Lock()
	if ls.hist == nil {
		ls.hist = stats.NewHistogram()
	}
	ls.hist.Record(seconds)
	ls.mu.Unlock()
}

type statRow struct{ k, v string }

func (l *latencyTracker) snapshot() []statRow {
	merged := stats.NewHistogram()
	for i := range l.stripes {
		ls := &l.stripes[i]
		ls.mu.Lock()
		if ls.hist != nil {
			// Identical bucketing by construction; Merge cannot fail.
			_ = merged.Merge(ls.hist)
		}
		ls.mu.Unlock()
	}
	if merged.Count() == 0 {
		return []statRow{{"latency:count", "0"}}
	}
	rows := []statRow{
		{"latency:count", fmt.Sprintf("%d", merged.Count())},
		{"latency:mean_us", fmt.Sprintf("%.1f", merged.Mean()*1e6)},
	}
	for _, q := range []struct {
		name  string
		level float64
	}{{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}, {"p999", 0.999}} {
		rows = append(rows, statRow{
			"latency:" + q.name + "_us",
			fmt.Sprintf("%.1f", merged.MustQuantile(q.level)*1e6),
		})
	}
	return rows
}

// New validates options and constructs a Server.
func New(opts Options) (*Server, error) {
	if opts.Cache == nil {
		return nil, errors.New("server: Cache is required")
	}
	if opts.MaxConns == 0 {
		opts.MaxConns = 1024
	}
	if opts.MaxConns < 0 {
		return nil, fmt.Errorf("server: MaxConns=%d must be positive", opts.MaxConns)
	}
	if opts.ServiceRate < 0 {
		return nil, fmt.Errorf("server: ServiceRate=%v must be >= 0", opts.ServiceRate)
	}
	if opts.ServiceChannels < 0 {
		return nil, fmt.Errorf("server: ServiceChannels=%d must be >= 0", opts.ServiceChannels)
	}
	if opts.ServiceChannels == 0 {
		opts.ServiceChannels = 1
	}
	if opts.ReadBuffer == 0 {
		opts.ReadBuffer = 16 << 10
	}
	if opts.WriteBuffer == 0 {
		opts.WriteBuffer = 16 << 10
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.Default()
	}
	if opts.TimingSample == 0 {
		opts.TimingSample = 8
	}
	timingOff := opts.TimingSample < 0
	var timingMask uint64
	if !timingOff {
		timingMask = uint64(nextPow2(opts.TimingSample)) - 1
	}
	telem := telemetry.NewCollector()
	s := &Server{
		opts:       opts,
		logger:     logger,
		conns:      make(map[net.Conn]struct{}),
		startTime:  time.Now(),
		telem:      telem,
		rec:        telemetry.Tee(telem, opts.Recorder),
		serviceCh:  make([]sync.Mutex, opts.ServiceChannels),
		timingMask: timingMask,
		timingOff:  timingOff,
	}
	// Shard-lock contention in the cache surfaces as the lock_wait
	// telemetry stage; the TryLock fast path records nothing when
	// uncontended, so healthy runs keep the stage zero-elided.
	opts.Cache.OnLockWait(func(seconds float64) {
		s.rec.Observe(telemetry.StageLockWait, seconds)
	})
	if ext := opts.Extstore; ext != nil {
		// LRU victims feed the disk tier. PutAsync never blocks (the
		// hook runs under the cache shard lock): a full queue sheds the
		// write, which the tier's drop counter records.
		opts.Cache.OnEvict(func(key string, value []byte, flags uint32, expires time.Time) {
			ext.PutAsync(key, value, flags, expires)
		})
	}
	if opts.Coalesce != nil {
		if opts.Filler == nil {
			return nil, errors.New("server: Coalesce requires Filler (nothing to coalesce)")
		}
		pol := *opts.Coalesce
		if pol.Recorder == nil {
			pol.Recorder = s.rec // coalesce_wait lands in "stats telemetry" too
		}
		s.coalescer = coalesce.New(pol)
	}
	if opts.LoopWorkers < 0 {
		return nil, fmt.Errorf("server: LoopWorkers=%d must be >= 0", opts.LoopWorkers)
	}
	switch opts.ConnCore {
	case "", CoreGoroutines:
		s.opts.ConnCore = CoreGoroutines
		s.core = &goroutineCore{s: s}
	case CoreEventLoop:
		core, err := newEventLoopCore(s)
		if err != nil {
			return nil, err
		}
		s.core = core
	default:
		return nil, fmt.Errorf("server: unknown ConnCore %q (want %q or %q)",
			opts.ConnCore, CoreGoroutines, CoreEventLoop)
	}
	return s, nil
}

// Serve accepts connections on l until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.listener = l
	s.mu.Unlock()

	var connID uint64
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		if s.currConns.Load() >= int64(s.opts.MaxConns) {
			s.rejectedConn.Add(1)
			_ = conn.Close()
			continue
		}
		if p := s.opts.Fault; p != nil && p.Inj != nil && p.Now != nil &&
			p.Inj.RefusedAt(p.Server, p.Now()) {
			s.rejectedConn.Add(1)
			_ = conn.Close()
			continue
		}
		s.totalConns.Add(1)
		s.currConns.Add(1)
		connID++
		if !s.core.attach(conn, connID) {
			// The server closed while this connection was being accepted.
			s.totalConns.Add(-1)
			s.currConns.Add(-1)
			_ = conn.Close()
			return nil
		}
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(l)
}

// Addr returns the bound address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting, closes all connections and waits for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	if s.core != nil {
		s.core.shutdown()
	}
	s.wg.Wait()
	return err
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ttlFromExptime applies memcached exptime semantics: 0 = never,
// negative = immediately expired, <= 30 days = relative seconds,
// > 30 days = absolute unix timestamp.
func ttlFromExptime(exptime int64, now time.Time) time.Duration {
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return -time.Second
	case exptime <= thirtyDays:
		return time.Duration(exptime) * time.Second
	default:
		d := time.Unix(exptime, 0).Sub(now)
		if d <= 0 {
			return -time.Second
		}
		return d
	}
}

// reply writes a one-line response unless the command asked noreply.
func reply(w *protocol.Writer, cmd *protocol.Command, line string) error {
	if cmd.Noreply {
		return nil
	}
	return w.Line(line)
}

func (s *Server) dispatch(w *protocol.Writer, cmd *protocol.Command, cs *connSession) error {
	c := s.opts.Cache
	st := &cs.st
	now := time.Now()
	switch cmd.Op {
	case protocol.OpGet, protocol.OpGets:
		// The zero-alloc path: keys alias the parser's buffers, values
		// are copied into the connection's reusable scratch under the
		// shard lock, and the response header is built in the bufio
		// writer's spare capacity.
		withCAS := cmd.Op == protocol.OpGets
		for _, key := range cmd.KeyList {
			v, flags, cas, err := c.GetInto(key, st.val[:0])
			if err != nil {
				if s.opts.Extstore != nil {
					dv, dflags, ok := s.diskFill(key, cs)
					if ok {
						// The re-promoted RAM copy carries a fresh CAS
						// this reply never saw; like the fill path, the
						// disk hit is served without one.
						if err := w.ValueBytes(key, dflags, 0, dv, withCAS); err != nil {
							return err
						}
						continue
					}
				}
				if s.opts.Filler == nil {
					continue // missing keys are silently omitted
				}
				fv, ok := s.fillMiss(key)
				if !ok {
					continue // fetch failed or negative: stays a miss
				}
				// The filled value is shared with coalesced waiters, so
				// it is served read-only and never copied into st.val.
				if err := w.ValueBytes(key, 0, 0, fv, withCAS); err != nil {
					return err
				}
				continue
			}
			st.val = v
			if err := w.ValueBytes(key, flags, cas, v, withCAS); err != nil {
				return err
			}
		}
		return w.End()

	case protocol.OpSet:
		// SetBytes copies key and value, so the parser scratch that
		// cmd.Value aliases is safe to reuse on the next command.
		s.invalidateFill(cmd.KeyB)
		return s.storageReply(w, cmd, c.SetBytes(cmd.KeyB, cmd.Value, cmd.Flags, ttlFromExptime(cmd.Exptime, now)))
	case protocol.OpAdd:
		s.invalidateFill(cmd.KeyB)
		return s.storageReply(w, cmd, c.Add(string(cmd.KeyB), bytes.Clone(cmd.Value), cmd.Flags, ttlFromExptime(cmd.Exptime, now)))
	case protocol.OpReplace:
		s.invalidateFill(cmd.KeyB)
		return s.storageReply(w, cmd, c.Replace(string(cmd.KeyB), bytes.Clone(cmd.Value), cmd.Flags, ttlFromExptime(cmd.Exptime, now)))
	case protocol.OpAppend:
		// concat copies the suffix under the shard lock; no clone needed.
		s.invalidateFill(cmd.KeyB)
		return s.storageReply(w, cmd, c.Append(string(cmd.KeyB), cmd.Value))
	case protocol.OpPrepend:
		s.invalidateFill(cmd.KeyB)
		return s.storageReply(w, cmd, c.Prepend(string(cmd.KeyB), cmd.Value))
	case protocol.OpCas:
		s.invalidateFill(cmd.KeyB)
		return s.storageReply(w, cmd,
			c.CompareAndSwap(string(cmd.KeyB), bytes.Clone(cmd.Value), cmd.Flags, ttlFromExptime(cmd.Exptime, now), cmd.CAS))

	case protocol.OpDelete:
		s.invalidateFill(cmd.KeyB)
		err := c.Delete(string(cmd.KeyB))
		switch {
		case err == nil:
			return reply(w, cmd, protocol.RespDeleted)
		case errors.Is(err, cache.ErrNotFound):
			return reply(w, cmd, protocol.RespNotFound)
		default:
			return s.cacheError(w, cmd, err)
		}

	case protocol.OpIncr, protocol.OpDecr:
		delta := int64(cmd.Delta)
		if cmd.Op == protocol.OpDecr {
			delta = -delta
		}
		s.invalidateFill(cmd.KeyB)
		n, err := c.IncrDecr(string(cmd.KeyB), delta)
		switch {
		case err == nil:
			if cmd.Noreply {
				return nil
			}
			return w.Number(n)
		case errors.Is(err, cache.ErrNotFound):
			return reply(w, cmd, protocol.RespNotFound)
		case errors.Is(err, cache.ErrNotNumeric):
			if cmd.Noreply {
				return nil
			}
			return w.ClientErrorf("cannot increment or decrement non-numeric value")
		default:
			return s.cacheError(w, cmd, err)
		}

	case protocol.OpTouch:
		err := c.Touch(string(cmd.KeyB), ttlFromExptime(cmd.Exptime, now))
		switch {
		case err == nil:
			return reply(w, cmd, protocol.RespTouched)
		case errors.Is(err, cache.ErrNotFound):
			return reply(w, cmd, protocol.RespNotFound)
		default:
			return s.cacheError(w, cmd, err)
		}

	case protocol.OpGat, protocol.OpGats:
		withCAS := cmd.Op == protocol.OpGats
		ttl := ttlFromExptime(cmd.Exptime, now)
		for _, key := range cmd.KeyList {
			it, err := c.GetAndTouch(string(key), ttl)
			if err != nil {
				continue
			}
			if err := w.ValueBytes(key, it.Flags, it.CAS, it.Value, withCAS); err != nil {
				return err
			}
		}
		return w.End()

	case protocol.OpStats:
		return s.writeStats(w, string(cmd.KeyB))

	case protocol.OpFlushAll:
		c.FlushAll()
		if ext := s.opts.Extstore; ext != nil {
			// Both tiers flush: a disk record surviving flush_all would
			// resurrect on the next miss.
			_ = ext.FlushAll()
		}
		return reply(w, cmd, protocol.RespOK)

	case protocol.OpVersion:
		return w.Version(Version)

	case protocol.OpVerbosity:
		return reply(w, cmd, protocol.RespOK)

	default:
		return w.Line(protocol.RespError)
	}
}

// storageReply maps cache errors of storage commands to protocol lines.
// fillMiss runs the server-side read-through for one missed GET key:
// fetch from the Filler (single-flighted when Options.Coalesce is set),
// write the value back with FillTTL, and return it for serving. A fetch
// error or negative result keeps memcached miss semantics — the key is
// omitted from the reply. The returned slice may be shared with
// coalesced waiters on other connections and must be treated read-only.
func (s *Server) fillMiss(key []byte) ([]byte, bool) {
	k := string(key)
	var value []byte
	var err error
	if s.coalescer != nil {
		var res coalesce.Result
		res, err = s.coalescer.Do(context.Background(), k, func(ctx context.Context) ([]byte, error) {
			return s.opts.Filler.Get(ctx, k)
		})
		if err == nil {
			value = res.Value
			// Only the leader writes back, and only if no storage verb
			// invalidated the fetch while it was in flight.
			if !res.Shared && !res.Stale && value != nil {
				_ = s.opts.Cache.SetBytes(key, value, 0, s.opts.FillTTL)
			}
		}
	} else {
		value, err = s.opts.Filler.Get(context.Background(), k)
		if err == nil && value != nil {
			_ = s.opts.Cache.SetBytes(key, value, 0, s.opts.FillTTL)
		}
	}
	if err != nil || value == nil {
		if err != nil {
			s.fillErrs.Add(1)
		}
		return nil, false
	}
	s.fills.Add(1)
	return value, true
}

// diskFill serves one missed GET key from the extstore tier: a timed
// segment read (the disk_read telemetry stage) followed by
// re-promotion into the RAM tier under the record's remaining TTL, so
// the next read of a hot key is a RAM hit again. The value lands in
// the connection scratch like a RAM hit; a steady-state disk hit
// allocates nothing once the scratch has grown.
func (s *Server) diskFill(key []byte, cs *connSession) ([]byte, uint32, bool) {
	began := time.Now()
	v, flags, expires, err := s.opts.Extstore.Lookup(key, cs.st.val[:0])
	if err != nil {
		return nil, 0, false
	}
	cs.rec.Observe(telemetry.StageDiskRead, time.Since(began).Seconds())
	s.diskHits.Add(1)
	cs.st.val = v
	var ttl time.Duration
	if !expires.IsZero() {
		// Lookup only returns unexpired records, so the remaining TTL is
		// positive barring a clock race (which stores it pre-expired —
		// harmless).
		ttl = time.Until(expires)
	}
	// SetBytes copies key and value; the disk record stays indexed and
	// is simply shadowed by the RAM copy until the next eviction
	// supersedes it.
	if s.opts.Cache.SetBytes(key, v, flags, ttl) == nil {
		s.promotions.Add(1)
	}
	return v, flags, true
}

// invalidateFill marks any in-flight coalesced fetch for key stale so
// its write-back cannot clobber the mutation this command is about to
// apply, and drops the key's extstore record so a stale disk copy
// cannot outlive the mutation. A pair of nil checks when both features
// are off.
func (s *Server) invalidateFill(key []byte) {
	if s.coalescer != nil {
		s.coalescer.Invalidate(string(key))
	}
	if ext := s.opts.Extstore; ext != nil {
		ext.Delete(key)
	}
}

func (s *Server) storageReply(w *protocol.Writer, cmd *protocol.Command, err error) error {
	switch {
	case err == nil:
		return reply(w, cmd, protocol.RespStored)
	case errors.Is(err, cache.ErrNotStored):
		return reply(w, cmd, protocol.RespNotStored)
	case errors.Is(err, cache.ErrExists):
		return reply(w, cmd, protocol.RespExists)
	case errors.Is(err, cache.ErrNotFound):
		return reply(w, cmd, protocol.RespNotFound)
	default:
		return s.cacheError(w, cmd, err)
	}
}

// cacheError reports validation failures as CLIENT_ERROR.
func (s *Server) cacheError(w *protocol.Writer, cmd *protocol.Command, err error) error {
	if cmd.Noreply {
		return nil
	}
	switch {
	case errors.Is(err, cache.ErrKeyInvalid), errors.Is(err, cache.ErrValueTooLarge):
		return w.ClientErrorf("%v", err)
	default:
		return w.ServerErrorf("%v", err)
	}
}

func (s *Server) writeStats(w *protocol.Writer, section string) error {
	switch section {
	case "items", "slabs":
		// Per-size-class accounting, in the spirit of memcached's
		// "stats items"/"stats slabs" output.
		for i, sc := range s.opts.Cache.SlabClasses() {
			cls := i + 1
			if err := w.Stat(fmt.Sprintf("items:%d:chunk_size", cls),
				fmt.Sprintf("%d", sc.ChunkSize)); err != nil {
				return err
			}
			if err := w.Stat(fmt.Sprintf("items:%d:number", cls),
				fmt.Sprintf("%d", sc.Items)); err != nil {
				return err
			}
			if err := w.Stat(fmt.Sprintf("items:%d:bytes", cls),
				fmt.Sprintf("%d", sc.Bytes)); err != nil {
				return err
			}
		}
		return w.End()
	case "latency":
		// memqlat extension: server-side per-command latency quantiles.
		snap := s.latency.snapshot()
		for _, row := range snap {
			if err := w.Stat(row.k, row.v); err != nil {
				return err
			}
		}
		// Sampling bias disclosure: unshaped connections head-sample
		// 1 in sample_every commands per connection, so bursty
		// pipelines under-represent mid-burst commands; shaped
		// connections (and traced commands) are always timed.
		sampleEvery := int64(s.timingMask) + 1
		if s.timingOff {
			sampleEvery = 0
		}
		if err := w.Stat("latency:sample_every", fmt.Sprintf("%d", sampleEvery)); err != nil {
			return err
		}
		if err := w.Stat("latency:sample_bias",
			"head-sampled 1-in-sample_every per connection (0=off); shaped and traced commands always timed"); err != nil {
			return err
		}
		return w.End()
	case "commands":
		// memqlat extension: per-command counters, one row per
		// protocol op the server has dispatched.
		for op := protocol.OpGet; op <= protocol.OpTrace; op++ {
			if err := w.Stat("cmd_"+op.String(),
				fmt.Sprintf("%d", s.opCounts[op].Load())); err != nil {
				return err
			}
		}
		return w.End()
	case "telemetry":
		// memqlat extension: the per-stage latency decomposition the
		// evaluation planes diff (queue wait / service; the miss
		// penalty and fork-join stages live in the backend and load
		// generator, so they read 0 here).
		b := s.telem.Breakdown()
		for _, stage := range telemetry.Stages() {
			st := b[stage]
			name := stage.String()
			rows := []statRow{
				{name + ":count", fmt.Sprintf("%d", st.Count)},
				{name + ":mean_us", fmt.Sprintf("%.1f", st.Mean*1e6)},
				{name + ":p50_us", fmt.Sprintf("%.1f", st.P50*1e6)},
				{name + ":p95_us", fmt.Sprintf("%.1f", st.P95*1e6)},
				{name + ":p99_us", fmt.Sprintf("%.1f", st.P99*1e6)},
			}
			for _, row := range rows {
				if err := w.Stat(row.k, row.v); err != nil {
					return err
				}
			}
		}
		return w.End()
	case "":
		// fall through to the general table below
	default:
		return w.ClientErrorf("unknown stats section %q", section)
	}
	st := s.opts.Cache.Stats()
	rows := []struct{ k, v string }{
		{"version", Version},
		{"conn_core", s.opts.ConnCore},
		{"uptime", fmt.Sprintf("%d", int64(time.Since(s.startTime).Seconds()))},
		{"curr_connections", fmt.Sprintf("%d", s.currConns.Load())},
		{"total_connections", fmt.Sprintf("%d", s.totalConns.Load())},
		{"rejected_connections", fmt.Sprintf("%d", s.rejectedConn.Load())},
		{"cmd_total", fmt.Sprintf("%d", s.cmdCount.Load())},
		{"curr_items", fmt.Sprintf("%d", st.Items)},
		{"bytes", fmt.Sprintf("%d", st.Bytes)},
		{"limit_maxbytes", fmt.Sprintf("%d", st.MaxBytes)},
		{"cmd_get", fmt.Sprintf("%d", st.Gets)},
		{"cmd_set", fmt.Sprintf("%d", st.Sets)},
		{"get_hits", fmt.Sprintf("%d", st.Hits)},
		{"get_misses", fmt.Sprintf("%d", st.Misses)},
		{"evictions", fmt.Sprintf("%d", st.Evictions)},
		{"expired_unfetched", fmt.Sprintf("%d", st.Expirations)},
	}
	if ext := s.opts.Extstore; ext != nil {
		es := ext.Stats()
		rows = append(rows,
			struct{ k, v string }{"extstore_disk_hits", fmt.Sprintf("%d", s.diskHits.Load())},
			struct{ k, v string }{"extstore_promotions", fmt.Sprintf("%d", s.promotions.Load())},
			struct{ k, v string }{"extstore_keys", fmt.Sprintf("%d", es.Keys)},
			struct{ k, v string }{"extstore_segments", fmt.Sprintf("%d", es.Segments)},
			struct{ k, v string }{"extstore_segment_bytes", fmt.Sprintf("%d", es.SegmentBytes)},
			struct{ k, v string }{"extstore_dead_bytes", fmt.Sprintf("%d", es.DeadBytes)},
			struct{ k, v string }{"extstore_puts", fmt.Sprintf("%d", es.Puts)},
			struct{ k, v string }{"extstore_drops", fmt.Sprintf("%d", es.Drops)},
			struct{ k, v string }{"extstore_compactions", fmt.Sprintf("%d", es.Compactions)},
			struct{ k, v string }{"extstore_relocated", fmt.Sprintf("%d", es.Relocated)})
	}
	if s.opts.Filler != nil {
		rows = append(rows,
			struct{ k, v string }{"fill_hits", fmt.Sprintf("%d", s.fills.Load())},
			struct{ k, v string }{"fill_errors", fmt.Sprintf("%d", s.fillErrs.Load())})
		if cs := s.coalescer.Stats(); s.coalescer.Coalescing() {
			rows = append(rows,
				struct{ k, v string }{"coalesce_inflight_keys", fmt.Sprintf("%d", cs.InflightKeys)},
				struct{ k, v string }{"coalesce_fetches", fmt.Sprintf("%d", cs.Fetches)},
				struct{ k, v string }{"coalesce_fanins", fmt.Sprintf("%d", cs.FanIns)},
				struct{ k, v string }{"coalesce_sheds", fmt.Sprintf("%d", cs.Sheds)},
				struct{ k, v string }{"coalesce_invalidations", fmt.Sprintf("%d", cs.Invalidations)})
		}
	}
	for _, row := range rows {
		if err := w.Stat(row.k, row.v); err != nil {
			return err
		}
	}
	return w.End()
}

// --- observability accessors -----------------------------------------
// The metrics registry scrapes these instead of round-tripping "stats"
// over the wire; they snapshot the same counters the protocol surface
// reports.

// Counters is a snapshot of the server's connection/command counters.
type Counters struct {
	CurrConns     int64
	TotalConns    int64
	RejectedConns int64
	Commands      int64
}

// Counters snapshots the connection and command counters.
func (s *Server) Counters() Counters {
	return Counters{
		CurrConns:     s.currConns.Load(),
		TotalConns:    s.totalConns.Load(),
		RejectedConns: s.rejectedConn.Load(),
		Commands:      s.cmdCount.Load(),
	}
}

// OpCount reports how many commands of op the server dispatched.
func (s *Server) OpCount(op protocol.Op) int64 {
	if op < 0 || int(op) >= len(s.opCounts) {
		return 0
	}
	return s.opCounts[op].Load()
}

// Telemetry exposes the server's own per-stage collector (the one
// "stats telemetry" prints).
func (s *Server) Telemetry() *telemetry.Collector { return s.telem }

// ConnCoreName reports which connection core the server runs.
func (s *Server) ConnCoreName() string { return s.opts.ConnCore }

// LoopStats snapshots the event-loop core's per-loop gauges. It returns
// nil on the goroutine core, which has no loops to report.
func (s *Server) LoopStats() []LoopStat { return s.core.loopStats() }

// Cache exposes the backing store for occupancy metrics.
func (s *Server) Cache() *cache.Cache { return s.opts.Cache }

// Coalescer exposes the single-flight group behind the read-through
// path for stats and metrics scraping; nil unless Options.Coalesce was
// set.
func (s *Server) Coalescer() *coalesce.Group { return s.coalescer }

// FillCounts reports read-through outcomes: fills served and fetch
// errors. Both are zero without Options.Filler.
func (s *Server) FillCounts() (fills, errs int64) {
	return s.fills.Load(), s.fillErrs.Load()
}

// Extstore exposes the disk tier behind the RAM cache; nil unless
// Options.Extstore was set.
func (s *Server) Extstore() *extstore.Store { return s.opts.Extstore }

// ExtstoreCounts reports how many GET misses the disk tier served and
// how many of those were re-promoted into RAM. Both are zero without
// Options.Extstore.
func (s *Server) ExtstoreCounts() (diskHits, promotions int64) {
	return s.diskHits.Load(), s.promotions.Load()
}

// LatencySampleEvery reports the k of the server's 1-in-k command
// timing: 1 on shaped servers (every command is timed), timingMask+1 on
// unshaped ones, and 0 when timing is off. Scrapers use it to rescale
// the sampled LatencyHistogram into population estimates (see
// Histogram.Scale).
func (s *Server) LatencySampleEvery() int {
	switch {
	case s.timingOff:
		return 0
	case s.opts.ServiceRate > 0:
		return 1
	}
	return int(s.timingMask) + 1
}

// LatencyHistogram snapshots the merged per-command latency histogram
// behind "stats latency". The copy is private to the caller.
func (s *Server) LatencyHistogram() *stats.Histogram {
	merged := stats.NewHistogram()
	for i := range s.latency.stripes {
		ls := &s.latency.stripes[i]
		ls.mu.Lock()
		if ls.hist != nil {
			// Identical bucketing by construction; Merge cannot fail.
			_ = merged.Merge(ls.hist)
		}
		ls.mu.Unlock()
	}
	return merged
}
