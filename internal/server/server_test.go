package server

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/otrace"
	"memqlat/internal/protocol"
	"memqlat/internal/telemetry"
)

// startServer launches a server on a loopback listener and returns its
// address plus a cleanup-registered shutdown.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	if opts.Cache == nil {
		c, err := cache.New(cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = c
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

// dial opens a raw protocol session.
func dial(t *testing.T, addr string) (*bufio.Reader, *bufio.Writer, net.Conn) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return bufio.NewReader(conn), bufio.NewWriter(conn), conn
}

func send(t *testing.T, w *bufio.Writer, s string) {
	t.Helper()
	if _, err := w.WriteString(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func readLine(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(line, "\r\n")
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("nil cache accepted")
	}
	c, _ := cache.New(cache.Options{})
	if _, err := New(Options{Cache: c, MaxConns: -1}); err == nil {
		t.Error("negative MaxConns accepted")
	}
	if _, err := New(Options{Cache: c, ServiceRate: -1}); err == nil {
		t.Error("negative ServiceRate accepted")
	}
}

func TestSetGetEndToEnd(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "set hello 42 0 5\r\nworld\r\n")
	if got := readLine(t, r); got != "STORED" {
		t.Fatalf("set reply = %q", got)
	}
	send(t, w, "get hello\r\n")
	if got := readLine(t, r); got != "VALUE hello 42 5" {
		t.Fatalf("value header = %q", got)
	}
	if got := readLine(t, r); got != "world" {
		t.Fatalf("value body = %q", got)
	}
	if got := readLine(t, r); got != "END" {
		t.Fatalf("end = %q", got)
	}
}

func TestGetMissOmitted(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "get nope\r\n")
	if got := readLine(t, r); got != "END" {
		t.Fatalf("reply = %q", got)
	}
}

func TestMultiGetPartial(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "set a 0 0 1\r\nx\r\n")
	readLine(t, r)
	send(t, w, "set b 0 0 1\r\ny\r\n")
	readLine(t, r)
	send(t, w, "get a missing b\r\n")
	var lines []string
	for {
		line := readLine(t, r)
		lines = append(lines, line)
		if line == "END" {
			break
		}
	}
	joined := strings.Join(lines, "|")
	if !strings.Contains(joined, "VALUE a 0 1|x") || !strings.Contains(joined, "VALUE b 0 1|y") {
		t.Errorf("multiget = %q", joined)
	}
	if strings.Contains(joined, "missing") {
		t.Errorf("missing key leaked: %q", joined)
	}
}

func TestGetsReturnsCAS(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "set k 0 0 1\r\nv\r\n")
	readLine(t, r)
	send(t, w, "gets k\r\n")
	header := readLine(t, r)
	var key string
	var flags, length int
	var cas uint64
	if _, err := fmt.Sscanf(header, "VALUE %s %d %d %d", &key, &flags, &length, &cas); err != nil {
		t.Fatalf("header %q: %v", header, err)
	}
	if cas == 0 {
		t.Error("zero cas token")
	}
	readLine(t, r) // body
	readLine(t, r) // END

	// cas with the right token succeeds, with a stale token returns EXISTS.
	send(t, w, fmt.Sprintf("cas k 0 0 2 %d\r\nv2\r\n", cas))
	if got := readLine(t, r); got != "STORED" {
		t.Fatalf("cas reply = %q", got)
	}
	send(t, w, fmt.Sprintf("cas k 0 0 2 %d\r\nv3\r\n", cas))
	if got := readLine(t, r); got != "EXISTS" {
		t.Fatalf("stale cas reply = %q", got)
	}
}

func TestStorageCommandFamily(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	steps := []struct{ give, want string }{
		{"replace k 0 0 1\r\nx\r\n", "NOT_STORED"},
		{"add k 0 0 1\r\nx\r\n", "STORED"},
		{"add k 0 0 1\r\ny\r\n", "NOT_STORED"},
		{"append k 0 0 2\r\nyz\r\n", "STORED"},
		{"prepend k 0 0 2\r\nwv\r\n", "STORED"},
		{"delete k\r\n", "DELETED"},
		{"delete k\r\n", "NOT_FOUND"},
		{"cas k 0 0 1 5\r\nx\r\n", "NOT_FOUND"},
	}
	for _, s := range steps {
		send(t, w, s.give)
		if got := readLine(t, r); got != s.want {
			t.Errorf("%q -> %q, want %q", s.give, got, s.want)
		}
	}
}

func TestIncrDecrEndToEnd(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "set n 0 0 2\r\n10\r\n")
	readLine(t, r)
	send(t, w, "incr n 5\r\n")
	if got := readLine(t, r); got != "15" {
		t.Errorf("incr = %q", got)
	}
	send(t, w, "decr n 100\r\n")
	if got := readLine(t, r); got != "0" {
		t.Errorf("decr = %q", got)
	}
	send(t, w, "incr missing 1\r\n")
	if got := readLine(t, r); got != "NOT_FOUND" {
		t.Errorf("incr missing = %q", got)
	}
	send(t, w, "set s 0 0 3\r\nabc\r\n")
	readLine(t, r)
	send(t, w, "incr s 1\r\n")
	if got := readLine(t, r); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("incr non-numeric = %q", got)
	}
}

func TestTouchAndExpiry(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "set k 0 0 1\r\nv\r\n")
	readLine(t, r)
	send(t, w, "touch k 100\r\n")
	if got := readLine(t, r); got != "TOUCHED" {
		t.Errorf("touch = %q", got)
	}
	send(t, w, "touch missing 100\r\n")
	if got := readLine(t, r); got != "NOT_FOUND" {
		t.Errorf("touch missing = %q", got)
	}
	// Negative exptime stores an immediately-expired item.
	send(t, w, "set dead 0 -1 1\r\nv\r\n")
	readLine(t, r)
	send(t, w, "get dead\r\n")
	if got := readLine(t, r); got != "END" {
		t.Errorf("expired item served: %q", got)
	}
}

func TestNoreplySuppressesResponses(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "set k 0 0 1 noreply\r\nv\r\nget k\r\n")
	// First reply must be the get's VALUE, not STORED.
	if got := readLine(t, r); got != "VALUE k 0 1" {
		t.Fatalf("first reply = %q", got)
	}
}

func TestStatsVersionFlush(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "version\r\n")
	if got := readLine(t, r); !strings.HasPrefix(got, "VERSION ") {
		t.Errorf("version = %q", got)
	}
	send(t, w, "set k 0 0 1\r\nv\r\n")
	readLine(t, r)
	send(t, w, "stats\r\n")
	stats := make(map[string]string)
	for {
		line := readLine(t, r)
		if line == "END" {
			break
		}
		var k, v string
		if _, err := fmt.Sscanf(line, "STAT %s %s", &k, &v); err != nil {
			t.Fatalf("stat line %q: %v", line, err)
		}
		stats[k] = v
	}
	if stats["cmd_set"] != "1" || stats["curr_items"] != "1" {
		t.Errorf("stats = %v", stats)
	}
	send(t, w, "flush_all\r\n")
	if got := readLine(t, r); got != "OK" {
		t.Errorf("flush = %q", got)
	}
	send(t, w, "get k\r\n")
	if got := readLine(t, r); got != "END" {
		t.Errorf("item survived flush: %q", got)
	}
	send(t, w, "verbosity 1\r\n")
	if got := readLine(t, r); got != "OK" {
		t.Errorf("verbosity = %q", got)
	}
}

func TestMalformedCommandKeepsConnection(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "bogus\r\n")
	if got := readLine(t, r); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("reply = %q", got)
	}
	// Connection still works.
	send(t, w, "version\r\n")
	if got := readLine(t, r); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("post-error reply = %q", got)
	}
}

func TestQuitClosesConnection(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, conn := dial(t, addr)
	send(t, w, "quit\r\n")
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := r.ReadByte(); err != io.EOF {
		t.Errorf("expected EOF after quit, got %v", err)
	}
}

func TestMaxConnsRejectsExcess(t *testing.T) {
	srv, addr := startServer(t, Options{MaxConns: 1})
	r1, w1, _ := dial(t, addr)
	send(t, w1, "version\r\n")
	readLine(t, r1) // first connection is live

	// Second connection gets closed immediately.
	conn2, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	_ = conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn2.Read(buf); err == nil {
		t.Error("excess connection not closed")
	}
	if srv.rejectedConn.Load() == 0 {
		t.Error("rejection not counted")
	}
}

func TestServiceRateShaping(t *testing.T) {
	// ServiceRate 200/s -> mean 5ms per op; 20 ops should take >= ~50ms.
	_, addr := startServer(t, Options{ServiceRate: 200, Seed: 1})
	r, w, _ := dial(t, addr)
	start := time.Now()
	for i := 0; i < 20; i++ {
		send(t, w, "version\r\n")
		readLine(t, r)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("20 shaped ops took only %v", elapsed)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			w := bufio.NewWriter(conn)
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k-%d-%d", g, i)
				fmt.Fprintf(w, "set %s 0 0 1\r\nv\r\n", key)
				_ = w.Flush()
				line, err := r.ReadString('\n')
				if err != nil || !strings.HasPrefix(line, "STORED") {
					t.Errorf("set %s: %q %v", key, line, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTTLFromExptime(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tests := []struct {
		give int64
		want time.Duration
	}{
		{0, 0},
		{-5, -time.Second},
		{60, time.Minute},
		{thirtyDays, time.Duration(thirtyDays) * time.Second},
		{now.Unix() + 3600, time.Hour},
		{now.Unix() - 100, -time.Second}, // absolute timestamp in the past
	}
	for _, tt := range tests {
		if got := ttlFromExptime(tt.give, now); got != tt.want {
			t.Errorf("ttlFromExptime(%d) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestGatEndToEnd(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "set k 5 0 3\r\nabc\r\n")
	readLine(t, r)
	send(t, w, "gat 3600 k missing\r\n")
	if got := readLine(t, r); got != "VALUE k 5 3" {
		t.Fatalf("gat header = %q", got)
	}
	if got := readLine(t, r); got != "abc" {
		t.Fatalf("gat body = %q", got)
	}
	if got := readLine(t, r); got != "END" {
		t.Fatalf("gat end = %q", got)
	}
	// gats returns a CAS token.
	send(t, w, "gats 3600 k\r\n")
	header := readLine(t, r)
	var key string
	var flags, length int
	var cas uint64
	if _, err := fmt.Sscanf(header, "VALUE %s %d %d %d", &key, &flags, &length, &cas); err != nil {
		t.Fatalf("gats header %q: %v", header, err)
	}
	if cas == 0 {
		t.Error("gats returned zero cas")
	}
	readLine(t, r)
	readLine(t, r)
}

func TestStatsSections(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "set k 0 0 5\r\nhello\r\n")
	readLine(t, r)
	send(t, w, "get k\r\n")
	readLine(t, r)
	readLine(t, r)
	readLine(t, r)

	send(t, w, "stats items\r\n")
	sawChunk := false
	for {
		line := readLine(t, r)
		if line == "END" {
			break
		}
		if strings.Contains(line, "chunk_size") {
			sawChunk = true
		}
	}
	if !sawChunk {
		t.Error("stats items missing chunk_size rows")
	}

	send(t, w, "stats latency\r\n")
	sawCount := false
	for {
		line := readLine(t, r)
		if line == "END" {
			break
		}
		if strings.HasPrefix(line, "STAT latency:count") {
			sawCount = true
		}
	}
	if !sawCount {
		t.Error("stats latency missing count")
	}

	send(t, w, "stats bogus\r\n")
	if got := readLine(t, r); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("unknown section reply = %q", got)
	}
}

func TestStatsCommandsSection(t *testing.T) {
	_, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "set k 0 0 5\r\nhello\r\n")
	readLine(t, r)
	for i := 0; i < 3; i++ {
		send(t, w, "get k\r\n")
		readLine(t, r)
		readLine(t, r)
		readLine(t, r)
	}
	send(t, w, "incr k 1\r\n") // fails on non-numeric value, still dispatched
	readLine(t, r)

	send(t, w, "stats commands\r\n")
	counts := make(map[string]string)
	for {
		line := readLine(t, r)
		if line == "END" {
			break
		}
		parts := strings.Fields(line) // STAT cmd_<op> <n>
		if len(parts) == 3 && parts[0] == "STAT" {
			counts[parts[1]] = parts[2]
		}
	}
	if counts["cmd_get"] != "3" {
		t.Errorf("cmd_get = %q, want 3 (all: %v)", counts["cmd_get"], counts)
	}
	if counts["cmd_set"] != "1" {
		t.Errorf("cmd_set = %q, want 1", counts["cmd_set"])
	}
	if counts["cmd_incr"] != "1" {
		t.Errorf("cmd_incr = %q, want 1", counts["cmd_incr"])
	}
	if counts["cmd_delete"] != "0" {
		t.Errorf("cmd_delete = %q, want 0", counts["cmd_delete"])
	}
}

func TestStatsTelemetrySection(t *testing.T) {
	// A shaped server records both the queue-wait and service stages.
	_, addr := startServer(t, Options{ServiceRate: 50000})
	r, w, _ := dial(t, addr)
	for i := 0; i < 5; i++ {
		send(t, w, "get k\r\n")
		readLine(t, r)
	}
	send(t, w, "stats telemetry\r\n")
	vals := make(map[string]string)
	for {
		line := readLine(t, r)
		if line == "END" {
			break
		}
		parts := strings.Fields(line)
		if len(parts) == 3 && parts[0] == "STAT" {
			vals[parts[1]] = parts[2]
		}
	}
	// 5 gets + the stats command itself have gone through service by
	// the time the stats reply is assembled; at minimum the 5 gets.
	for _, key := range []string{"queue_wait:count", "service:count"} {
		n, err := strconv.Atoi(vals[key])
		if err != nil || n < 5 {
			t.Errorf("%s = %q, want >= 5 (all: %v)", key, vals[key], vals)
		}
	}
	for _, key := range []string{"service:mean_us", "service:p50_us", "service:p99_us"} {
		f, err := strconv.ParseFloat(vals[key], 64)
		if err != nil || f <= 0 {
			t.Errorf("%s = %q, want > 0", key, vals[key])
		}
	}
	// The miss-penalty and fork-join stages belong to the backend and
	// the load generator; a server must report them as empty.
	if vals["miss_penalty:count"] != "0" || vals["fork_join:count"] != "0" {
		t.Errorf("server-side stages not empty: %v", vals)
	}
}

// TestRecorderTee checks an external recorder (the live plane's
// harness-wide collector) sees the same observations as the server's
// own "stats telemetry" collector.
func TestRecorderTee(t *testing.T) {
	ext := telemetry.NewCollector()
	_, addr := startServer(t, Options{ServiceRate: 50000, Recorder: ext})
	r, w, _ := dial(t, addr)
	for i := 0; i < 4; i++ {
		send(t, w, "get k\r\n")
		readLine(t, r)
	}
	b := ext.Breakdown()
	if b[telemetry.StageService].Count < 4 {
		t.Errorf("external recorder saw %d service observations, want >= 4",
			b[telemetry.StageService].Count)
	}
	if b[telemetry.StageQueueWait].Count < 4 {
		t.Errorf("external recorder saw %d queue-wait observations, want >= 4",
			b[telemetry.StageQueueWait].Count)
	}
}

func TestIdleTimeoutClosesConnection(t *testing.T) {
	_, addr := startServer(t, Options{IdleTimeout: 50 * time.Millisecond})
	r, w, conn := dial(t, addr)
	send(t, w, "version\r\n")
	readLine(t, r)
	// Go silent: the server should close the connection.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("idle connection not closed")
	}
}

func TestTraceHeaderScopesNextCommand(t *testing.T) {
	tr := otrace.New(otrace.Options{})
	_, addr := startServer(t, Options{Tracer: tr, ID: 3})
	r, w, _ := dial(t, addr)
	// The header elicits no reply; the following get is traced, the one
	// after it is not.
	send(t, w, "mq_trace 77 5\r\nget k\r\nget k\r\n")
	if got := readLine(t, r); got != "END" {
		t.Fatalf("traced get reply = %q", got)
	}
	if got := readLine(t, r); got != "END" {
		t.Fatalf("untraced get reply = %q", got)
	}
	spans := tr.Snapshot()
	var handle, service int
	for _, sp := range spans {
		if sp.Trace != 77 || sp.Server != 3 {
			t.Errorf("span %+v: want Trace=77 Server=3", sp)
		}
		switch {
		case sp.Comp == "server" && sp.Name == "handle":
			handle++
			if sp.Parent != 5 {
				t.Errorf("handle span parent = %d, want 5", sp.Parent)
			}
		case sp.Comp == "server" && sp.Name == "service":
			service++
		}
	}
	if handle != 1 || service != 1 {
		t.Errorf("spans = %d handle, %d service (want 1, 1); all: %+v",
			handle, service, spans)
	}
}

func TestTraceHeaderWithoutTracerIsIgnored(t *testing.T) {
	srv, addr := startServer(t, Options{})
	r, w, _ := dial(t, addr)
	send(t, w, "mq_trace 9 0\r\nversion\r\n")
	if got := readLine(t, r); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("version after untraced header = %q", got)
	}
	if n := srv.OpCount(protocol.OpTrace); n != 1 {
		t.Errorf("OpCount(OpTrace) = %d, want 1", n)
	}
}

func TestTimingSampleEveryCommand(t *testing.T) {
	srv, addr := startServer(t, Options{TimingSample: 1})
	r, w, _ := dial(t, addr)
	const n = 20
	for i := 0; i < n; i++ {
		send(t, w, "get k\r\n")
		readLine(t, r)
	}
	if got := srv.LatencyHistogram().Count(); got != n {
		t.Errorf("TimingSample=1 recorded %d of %d commands", got, n)
	}
	b := srv.Telemetry().Breakdown()
	if b[telemetry.StageService].Count != n {
		t.Errorf("service stage count = %d, want %d", b[telemetry.StageService].Count, n)
	}
}

func TestTimingSampleOff(t *testing.T) {
	srv, addr := startServer(t, Options{TimingSample: -1})
	r, w, _ := dial(t, addr)
	for i := 0; i < 20; i++ {
		send(t, w, "get k\r\n")
		readLine(t, r)
	}
	if got := srv.LatencyHistogram().Count(); got != 0 {
		t.Errorf("TimingSample=-1 recorded %d commands, want 0", got)
	}
	// The disclosure rows still render, with sample_every = 0.
	send(t, w, "stats latency\r\n")
	var sawOff bool
	for {
		line := readLine(t, r)
		if line == "END" {
			break
		}
		if line == "STAT latency:sample_every 0" {
			sawOff = true
		}
	}
	if !sawOff {
		t.Error("stats latency did not report sample_every 0")
	}
}

func TestTimingSampleRoundsUp(t *testing.T) {
	srv, err := New(Options{Cache: mustCache(t), TimingSample: 5})
	if err != nil {
		t.Fatal(err)
	}
	if srv.timingMask != 7 {
		t.Errorf("TimingSample=5 mask = %d, want 7 (1 in 8)", srv.timingMask)
	}
}

func mustCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
