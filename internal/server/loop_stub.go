//go:build !linux

package server

import "errors"

// newEventLoopCore is unavailable off Linux: the event loop is built on
// epoll. Select CoreGoroutines (the default) instead.
func newEventLoopCore(s *Server) (connCore, error) {
	return nil, errors.New("server: ConnCore \"eventloop\" requires linux (epoll)")
}
