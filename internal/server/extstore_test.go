package server

import (
	"bufio"
	"fmt"
	"runtime"
	"testing"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/extstore"
	"memqlat/internal/protocol"
)

// tieredServer starts a server whose RAM tier holds only a couple of
// small items, backed by an extstore tier in a temp dir, so a handful
// of sets reliably spills the LRU tail to disk.
func tieredServer(t *testing.T, core string) (*Server, *extstore.Store, string) {
	t.Helper()
	ext, err := extstore.Open(extstore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ext.Close() })
	c, err := cache.New(cache.Options{MaxBytes: 1, Shards: 1, MaxItemSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, Options{Cache: c, Extstore: ext, ConnCore: core})
	return srv, ext, addr
}

// expectValue reads one VALUE reply plus terminator.
func expectValue(t *testing.T, r *bufio.Reader, key, flags, body string) {
	t.Helper()
	want := []string{fmt.Sprintf("VALUE %s %s %d", key, flags, len(body)), body, "END"}
	for i, w := range want {
		if got := readLine(t, r); got != w {
			t.Fatalf("line %d = %q, want %q", i, got, w)
		}
	}
}

// TestTieredReadPathBothCores drives the full RAM→disk→RAM cycle
// through the protocol on each connection core (dispatch is the shared
// seam): evicted values are served from the disk tier, re-promoted
// into RAM, mutations invalidate the disk index, and flush_all clears
// both tiers.
func TestTieredReadPathBothCores(t *testing.T) {
	cores := []string{CoreGoroutines}
	if runtime.GOOS == "linux" {
		cores = append(cores, CoreEventLoop)
	}
	for _, core := range cores {
		t.Run(core, func(t *testing.T) {
			srv, ext, addr := tieredServer(t, core)
			r, w, _ := dial(t, addr)

			// Spill: the tiny RAM tier evicts all but the newest keys.
			for i := 0; i < 10; i++ {
				send(t, w, fmt.Sprintf("set key-%04d 7 0 8\r\nvalue-%02d\r\n", i, i))
				if got := readLine(t, r); got != "STORED" {
					t.Fatalf("set %d reply = %q", i, got)
				}
			}
			ext.Flush()
			if ext.Len() == 0 {
				t.Fatal("no evictions reached the disk tier")
			}

			// The oldest key left RAM long ago; the disk tier must serve
			// it with its original flags and value.
			send(t, w, "get key-0000\r\n")
			expectValue(t, r, "key-0000", "7", "value-00")
			hits, promos := srv.ExtstoreCounts()
			if hits != 1 || promos != 1 {
				t.Fatalf("extstore counts = (%d hits, %d promotions), want (1, 1)", hits, promos)
			}
			// Re-promotion makes the next read a RAM hit: disk counters
			// must not move.
			send(t, w, "get key-0000\r\n")
			expectValue(t, r, "key-0000", "7", "value-00")
			if hits, _ := srv.ExtstoreCounts(); hits != 1 {
				t.Fatalf("disk hits after re-promotion = %d, want still 1", hits)
			}

			// A delete must drop the disk record even when the key is no
			// longer in RAM — otherwise the next get would resurrect it.
			send(t, w, "delete key-0001\r\n")
			readLine(t, r) // DELETED or NOT_FOUND depending on RAM residency
			send(t, w, "get key-0001\r\n")
			if got := readLine(t, r); got != "END" {
				t.Fatalf("get after delete = %q, want END (stale disk copy served?)", got)
			}

			// An overwrite of a disk-resident key invalidates the old
			// record; once the new value is evicted in turn, the disk
			// tier must serve the fresh bytes.
			send(t, w, "set key-0002 0 0 8\r\nfresh-02\r\n")
			if got := readLine(t, r); got != "STORED" {
				t.Fatalf("overwrite reply = %q", got)
			}
			for i := 10; i < 14; i++ {
				send(t, w, fmt.Sprintf("set key-%04d 0 0 8\r\nvalue-%02d\r\n", i, i))
				readLine(t, r)
			}
			ext.Flush()
			send(t, w, "get key-0002\r\n")
			expectValue(t, r, "key-0002", "0", "fresh-02")

			// gets on a disk hit serves the value without a CAS (the
			// promoted copy owns a fresh one), mirroring the fill path.
			send(t, w, "set gets-key 0 0 4\r\nbody\r\n")
			readLine(t, r)
			for i := 14; i < 18; i++ {
				send(t, w, fmt.Sprintf("set key-%04d 0 0 8\r\nvalue-%02d\r\n", i, i))
				readLine(t, r)
			}
			ext.Flush()
			send(t, w, "gets gets-key\r\n")
			if got := readLine(t, r); got != "VALUE gets-key 0 4 0" {
				t.Fatalf("gets disk-hit header = %q, want CAS 0", got)
			}
			readLine(t, r) // body
			readLine(t, r) // END

			// The stats surface reports the tier.
			send(t, w, "stats\r\n")
			sawDiskHits := false
			for {
				line := readLine(t, r)
				if line == "END" {
					break
				}
				if line == fmt.Sprintf("STAT extstore_disk_hits %d", srv.diskHits.Load()) {
					sawDiskHits = true
				}
			}
			if !sawDiskHits {
				t.Fatal("stats did not report extstore_disk_hits")
			}

			// flush_all clears BOTH tiers: nothing may resurrect from disk.
			send(t, w, "flush_all\r\n")
			if got := readLine(t, r); got != "OK" {
				t.Fatalf("flush_all reply = %q", got)
			}
			if ext.Len() != 0 {
				t.Fatalf("disk tier holds %d keys after flush_all", ext.Len())
			}
			send(t, w, "get key-0003\r\n")
			if got := readLine(t, r); got != "END" {
				t.Fatalf("get after flush_all = %q, want END", got)
			}
		})
	}
}

// TestTieredTTLSurvivesDemotion: a key stored with a TTL keeps its
// deadline across eviction to disk and re-promotion — the promoted RAM
// copy must not outlive the original exptime.
func TestTieredTTLSurvivesDemotion(t *testing.T) {
	srv, ext, addr := tieredServer(t, CoreGoroutines)
	r, w, _ := dial(t, addr)

	send(t, w, "set ttl-key 0 1 7\r\nexpires\r\n")
	if got := readLine(t, r); got != "STORED" {
		t.Fatalf("set reply = %q", got)
	}
	// Push it to disk.
	for i := 0; i < 4; i++ {
		send(t, w, fmt.Sprintf("set pad-%04d 0 0 8\r\npadding!\r\n", i))
		readLine(t, r)
	}
	ext.Flush()

	// Served from disk and re-promoted while still live.
	send(t, w, "get ttl-key\r\n")
	expectValue(t, r, "ttl-key", "0", "expires")
	if hits, _ := srv.ExtstoreCounts(); hits != 1 {
		t.Fatalf("disk hits = %d, want 1", hits)
	}

	// After the deadline the promoted copy must be gone too.
	time.Sleep(1100 * time.Millisecond)
	send(t, w, "get ttl-key\r\n")
	if got := readLine(t, r); got != "END" {
		t.Fatalf("get after expiry = %q, want END (promotion dropped the TTL?)", got)
	}
}

// TestTieredMissFallsThroughToFiller: with both a disk tier and a
// Filler, a key on neither tier still read-throughs from the store of
// record.
func TestTieredMissFallsThroughToFiller(t *testing.T) {
	ext, err := extstore.Open(extstore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ext.Close() })
	filler := &stubFiller{values: map[string][]byte{"db-only": []byte("from-db")}}
	srv, addr := startServer(t, Options{Extstore: ext, Filler: filler})
	r, w, _ := dial(t, addr)

	send(t, w, "get db-only\r\n")
	expectValue(t, r, "db-only", "0", "from-db")
	if hits, _ := srv.ExtstoreCounts(); hits != 0 {
		t.Fatalf("disk hits = %d, want 0 (key was never evicted)", hits)
	}
	if fills, _ := srv.FillCounts(); fills != 1 {
		t.Fatalf("fills = %d, want 1", fills)
	}
	if srv.Extstore() != ext {
		t.Fatal("Extstore() accessor does not expose the tier")
	}
	if srv.OpCount(protocol.OpGet) != 1 {
		t.Fatalf("get count = %d", srv.OpCount(protocol.OpGet))
	}
}
