package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/coalesce"
)

// stubFiller is a controllable store of record for read-through tests.
type stubFiller struct {
	mu      sync.Mutex
	values  map[string][]byte
	err     error
	delay   time.Duration
	fetches atomic.Int64
}

func (f *stubFiller) Get(ctx context.Context, key string) ([]byte, error) {
	f.fetches.Add(1)
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	return f.values[key], nil
}

func TestReadThroughFill(t *testing.T) {
	filler := &stubFiller{values: map[string][]byte{"db-key": []byte("from-db")}}
	srv, addr := startServer(t, Options{Filler: filler})
	r, w, _ := dial(t, addr)

	// First get misses the cache, fills from the store of record.
	send(t, w, "get db-key\r\n")
	if got := readLine(t, r); got != "VALUE db-key 0 7" {
		t.Fatalf("filled value header = %q", got)
	}
	if got := readLine(t, r); got != "from-db" {
		t.Fatalf("filled value = %q", got)
	}
	if got := readLine(t, r); got != "END" {
		t.Fatalf("terminator = %q", got)
	}
	// Second get is a plain cache hit: no new fetch.
	send(t, w, "get db-key\r\n")
	for i, want := range []string{"VALUE db-key 0 7", "from-db", "END"} {
		if got := readLine(t, r); got != want {
			t.Fatalf("line %d after write-back = %q, want %q", i, got, want)
		}
	}
	if got := filler.fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1 (write-back must serve the second get)", got)
	}
	if fills, errs := srv.FillCounts(); fills != 1 || errs != 0 {
		t.Fatalf("fill counts = (%d, %d), want (1, 0)", fills, errs)
	}

	// A key the store of record does not have stays a miss (negative
	// result), and a failing store keeps miss semantics too.
	send(t, w, "get nope\r\n")
	if got := readLine(t, r); got != "END" {
		t.Fatalf("negative result reply = %q, want END", got)
	}
	filler.mu.Lock()
	filler.err = errors.New("db down")
	filler.mu.Unlock()
	send(t, w, "get other\r\n")
	if got := readLine(t, r); got != "END" {
		t.Fatalf("fetch-error reply = %q, want END", got)
	}
	if _, errs := srv.FillCounts(); errs != 1 {
		t.Fatalf("fill errors = %d, want 1", errs)
	}
}

func TestNewCoalesceRequiresFiller(t *testing.T) {
	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Cache: c, Coalesce: &coalesce.Policy{}}); err == nil {
		t.Fatal("Coalesce without Filler accepted")
	}
}

// TestReadThroughCoalescedBothCores drives a hot-key miss storm against
// each connection core: with FillTTL negative every fill is stored
// already expired, so every get re-misses, and single-flight coalescing
// must keep the backend fetch count far below the get count on both
// cores (dispatch is the shared seam).
func TestReadThroughCoalescedBothCores(t *testing.T) {
	cores := []string{CoreGoroutines}
	if runtime.GOOS == "linux" {
		cores = append(cores, CoreEventLoop)
	}
	for _, core := range cores {
		t.Run(core, func(t *testing.T) {
			filler := &stubFiller{
				values: map[string][]byte{"hot": []byte("v")},
				delay:  2 * time.Millisecond,
			}
			opts := Options{
				ConnCore: core,
				Filler:   filler,
				FillTTL:  -time.Second,
				Coalesce: &coalesce.Policy{},
			}
			if core == CoreEventLoop {
				// A fill blocks its loop for the fetch duration, so
				// single-flight collapse on this core comes from fetches
				// coalescing ACROSS loops; pin several loops so the test
				// does not degenerate to full serialization on 1-CPU CI.
				opts.LoopWorkers = 4
			}
			srv, addr := startServer(t, opts)

			const conns = 16
			const gets = 10
			var wg sync.WaitGroup
			for i := 0; i < conns; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					r, w, _ := dial(t, addr)
					for j := 0; j < gets; j++ {
						send(t, w, "get hot\r\n")
						if got := readLine(t, r); got != "VALUE hot 0 1" {
							t.Errorf("header = %q", got)
							return
						}
						if got := readLine(t, r); got != "v" {
							t.Errorf("value = %q", got)
							return
						}
						if got := readLine(t, r); got != "END" {
							t.Errorf("terminator = %q", got)
							return
						}
					}
				}()
			}
			wg.Wait()

			total := int64(conns * gets)
			fetched := filler.fetches.Load()
			if fetched >= total/2 {
				t.Fatalf("fetches = %d of %d gets; coalescing is not collapsing the herd", fetched, total)
			}
			st := srv.Coalescer().Stats()
			if st.Fetches != fetched {
				t.Errorf("coalescer fetches = %d, filler saw %d", st.Fetches, fetched)
			}
			if st.Fetches+st.FanIns != total {
				t.Errorf("fetches(%d) + fanins(%d) != gets(%d)", st.Fetches, st.FanIns, total)
			}
			t.Logf("%s: %d gets -> %d fetches, %d fan-ins", core, total, st.Fetches, st.FanIns)
		})
	}
}

// TestReadThroughInvalidation: a set racing the in-flight fill must win
// — the fetched value may be served to the waiting gets, but it must
// not be written back over the set.
func TestReadThroughInvalidation(t *testing.T) {
	filler := &stubFiller{
		values: map[string][]byte{"k": []byte("old")},
		delay:  20 * time.Millisecond,
	}
	srv, addr := startServer(t, Options{Filler: filler, Coalesce: &coalesce.Policy{}})

	getDone := make(chan struct{})
	go func() {
		defer close(getDone)
		r, w, _ := dial(t, addr)
		send(t, w, "get k\r\n")
		readLine(t, r) // VALUE header (fetched value)
		readLine(t, r) // body
		readLine(t, r) // END
	}()
	// Let the fetch start, then set the key mid-fetch.
	for srv.Coalescer().Stats().InflightKeys == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	r, w, _ := dial(t, addr)
	send(t, w, "set k 0 0 3\r\nnew\r\n")
	if got := readLine(t, r); got != "STORED" {
		t.Fatalf("set reply = %q", got)
	}
	<-getDone

	// The fill's write-back must have been suppressed: k still holds
	// the set value.
	send(t, w, "get k\r\n")
	if got := readLine(t, r); got != "VALUE k 0 3" {
		t.Fatalf("post-race header = %q (stale write-back resurrected the fetched value?)", got)
	}
	if got := readLine(t, r); got != "new" {
		t.Fatalf("post-race value = %q, want %q", got, "new")
	}
	if got := srv.Coalescer().Stats().Invalidations; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
}
