//go:build linux

package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"memqlat/internal/protocol"
)

// maxPendingOut caps the reply bytes buffered for a connection whose
// socket will not drain (a slow or stuck reader). Beyond this the
// connection is cut — the alternative is unbounded memory held hostage
// by the slowest client.
const maxPendingOut = 8 << 20

// eventLoopCore multiplexes every connection onto a small set of
// epoll-driven loops. Each loop goroutine owns its connections
// outright: registration, reads, parsing, dispatch, flushing and
// teardown all happen on the loop, so per-connection state needs no
// locks and a raw fd is never touched off its owner (no close/reuse
// races). Cross-goroutine requests (attach, shutdown) go through a
// mutex-protected pending list plus a self-pipe wakeup.
//
// The economics vs. the goroutine core: an idle connection here costs
// one epoll registration and a ~100-byte struct — parser, reply scratch
// and telemetry session are allocated lazily on the first byte received
// and the parser buffer is released whenever it drains — instead of a
// goroutine stack plus dedicated read/write buffers. That is what makes
// 100k mostly-idle connections cheap while the hot subset still runs
// the same zero-copy dispatch path as the legacy core.
type eventLoopCore struct {
	s     *Server
	loops []*evLoop
	stop  sync.Once
}

// newEventLoopCore starts the loop goroutines (LoopWorkers, default
// GOMAXPROCS). Loops start immediately — they idle in epoll_wait until
// Serve attaches connections.
func newEventLoopCore(s *Server) (connCore, error) {
	n := s.opts.LoopWorkers
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &eventLoopCore{s: s}
	for i := 0; i < n; i++ {
		l, err := newEvLoop(s, i)
		if err != nil {
			e.shutdown()
			return nil, fmt.Errorf("server: event loop %d: %w", i, err)
		}
		e.loops = append(e.loops, l)
		go l.run()
	}
	return e, nil
}

func (e *eventLoopCore) attach(conn net.Conn, id uint64) bool {
	l := e.loops[int(id)%len(e.loops)]
	fd, err := connFD(conn)
	if err != nil {
		// Not a pollable socket; drop it and keep serving.
		e.s.logger.Printf("server: conn %d: %v", id, err)
		_ = conn.Close()
		e.s.currConns.Add(-1)
		return true
	}
	c := &evConn{loop: l, fd: fd, conn: conn, id: id, lastActive: time.Now().UnixNano()}
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		return false
	}
	l.pending = append(l.pending, c)
	l.mu.Unlock()
	l.wake()
	return true
}

func (e *eventLoopCore) shutdown() {
	e.stop.Do(func() {
		for _, l := range e.loops {
			l.mu.Lock()
			l.closing = true
			l.mu.Unlock()
			l.wake()
		}
		for _, l := range e.loops {
			<-l.done
		}
	})
}

func (e *eventLoopCore) loopStats() []LoopStat {
	out := make([]LoopStat, len(e.loops))
	for i, l := range e.loops {
		out[i] = LoopStat{
			Conns:        l.nconns.Load(),
			Wakeups:      l.wakeups.Load(),
			FlushBatches: l.flushes.Load(),
			Commands:     l.commands.Load(),
		}
	}
	return out
}

// connFD extracts the file descriptor of a pollable connection. The fd
// stays valid because only the owning loop ever closes the conn.
func connFD(conn net.Conn) (int32, error) {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return 0, fmt.Errorf("connection %T is not pollable", conn)
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return 0, err
	}
	var fd int32
	if err := rc.Control(func(u uintptr) { fd = int32(u) }); err != nil {
		return 0, err
	}
	return fd, nil
}

// evLoop is one poller/worker goroutine: an epoll instance, the
// connections registered with it, and per-loop scratch (read buffer,
// reply writer) shared by all of them — safe because the loop services
// one connection at a time and flushes before moving on.
type evLoop struct {
	s    *Server
	idx  int
	epfd int
	// wakeR/wakeW are the self-pipe: writing one byte makes epoll_wait
	// return so the loop notices pending attaches or shutdown.
	wakeR, wakeW int

	mu      sync.Mutex
	pending []*evConn
	closing bool

	conns map[int32]*evConn

	// Per-loop scratch. bw sinks into the current connection (retargeted
	// with Reset); w wraps bw once — protocol.Writer holds only the
	// bufio pointer, so it follows the retarget.
	readBuf []byte
	bw      *bufio.Writer
	w       *protocol.Writer

	nconns   atomic.Int64
	wakeups  atomic.Int64
	flushes  atomic.Int64
	commands atomic.Int64

	done chan struct{}
}

func newEvLoop(s *Server, idx int) (*evLoop, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("epoll_create1: %w", err)
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		_ = syscall.Close(epfd)
		return nil, fmt.Errorf("pipe2: %w", err)
	}
	l := &evLoop{
		s: s, idx: idx, epfd: epfd, wakeR: p[0], wakeW: p[1],
		conns:   make(map[int32]*evConn),
		readBuf: make([]byte, s.opts.ReadBuffer),
		done:    make(chan struct{}),
	}
	l.bw = bufio.NewWriterSize(io.Discard, s.opts.WriteBuffer)
	l.w = protocol.NewWriter(l.bw)
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(l.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, l.wakeR, &ev); err != nil {
		_ = syscall.Close(epfd)
		_ = syscall.Close(p[0])
		_ = syscall.Close(p[1])
		return nil, fmt.Errorf("epoll_ctl wakeup: %w", err)
	}
	return l, nil
}

// wake makes epoll_wait return. A full pipe means a wakeup is already
// queued, which is all we need.
func (l *evLoop) wake() {
	var b [1]byte
	_, _ = syscall.Write(l.wakeW, b[:])
}

func (l *evLoop) run() {
	defer close(l.done)
	events := make([]syscall.EpollEvent, 128)
	var lastSweep time.Time
	for {
		msec := -1
		if idle := l.s.opts.IdleTimeout; idle > 0 {
			// Tick at a fraction of the timeout so reaping is timely
			// without busy-waking an otherwise idle loop.
			tick := idle / 4
			if tick < 100*time.Millisecond {
				tick = 100 * time.Millisecond
			}
			if tick > time.Second {
				tick = time.Second
			}
			msec = int(tick / time.Millisecond)
		}
		n, err := syscall.EpollWait(l.epfd, events, msec)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			l.s.logger.Printf("server: event loop %d: epoll_wait: %v", l.idx, err)
			l.teardown()
			return
		}
		l.wakeups.Add(1)
		now := time.Now()
		for i := 0; i < n; i++ {
			ev := &events[i]
			if int(ev.Fd) == l.wakeR {
				if l.drainWake() {
					l.teardown()
					return
				}
				continue
			}
			c := l.conns[ev.Fd]
			if c == nil {
				continue
			}
			if ev.Events&syscall.EPOLLOUT != 0 {
				l.flushOut(c)
			}
			if c.closed {
				continue
			}
			if ev.Events&(syscall.EPOLLIN|syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
				l.readable(c, now)
			}
		}
		if idle := l.s.opts.IdleTimeout; idle > 0 && now.Sub(lastSweep) >= idle/4 {
			lastSweep = now
			l.reapIdle(now, idle)
		}
	}
}

// drainWake empties the self-pipe and registers pending connections.
// It reports whether the loop should shut down.
func (l *evLoop) drainWake() bool {
	var buf [64]byte
	for {
		n, err := syscall.Read(l.wakeR, buf[:])
		if n < len(buf) || err != nil {
			break
		}
	}
	l.mu.Lock()
	pend := l.pending
	l.pending = nil
	closing := l.closing
	l.mu.Unlock()
	for _, c := range pend {
		if closing {
			_ = c.conn.Close()
			l.s.currConns.Add(-1)
			continue
		}
		l.register(c)
	}
	return closing
}

func (l *evLoop) register(c *evConn) {
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP, Fd: c.fd}
	if err := syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_ADD, int(c.fd), &ev); err != nil {
		l.s.logger.Printf("server: conn %d: epoll add: %v", c.id, err)
		_ = c.conn.Close()
		l.s.currConns.Add(-1)
		return
	}
	l.conns[c.fd] = c
	l.nconns.Add(1)
}

// teardown closes everything the loop owns; runs once, on the loop
// goroutine, as its last act.
func (l *evLoop) teardown() {
	for _, c := range l.conns {
		c.closed = true
		_ = c.conn.Close()
		l.s.currConns.Add(-1)
	}
	l.conns = nil
	l.nconns.Store(0)
	// Late attaches park on l.closing and are closed by drainWake's
	// caller side (attach refuses once closing is set).
	_ = syscall.Close(l.epfd)
	_ = syscall.Close(l.wakeR)
	_ = syscall.Close(l.wakeW)
}

func (l *evLoop) reapIdle(now time.Time, idle time.Duration) {
	cutoff := now.Add(-idle).UnixNano()
	for _, c := range l.conns {
		if c.lastActive < cutoff {
			l.closeConn(c, nil)
		}
	}
}

// closeConn tears a connection down: deregisters (the kernel drops the
// epoll entry when the fd closes), releases state and fixes counters.
func (l *evLoop) closeConn(c *evConn, err error) {
	if c.closed {
		return
	}
	c.closed = true
	delete(l.conns, c.fd)
	_ = c.conn.Close()
	l.nconns.Add(-1)
	l.s.currConns.Add(-1)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		l.s.logger.Printf("server: conn %d: %v", c.id, err)
	}
}

// readable drains the socket and runs every complete command that
// arrived — the readiness-driven batch. Replies coalesce in the
// per-loop writer and go out in (at most) one write syscall at the end.
func (l *evLoop) readable(c *evConn, now time.Time) {
	c.lastActive = now.UnixNano()
	eof := false
	var rerr error
	got := false
	for {
		n, err := syscall.Read(int(c.fd), l.readBuf)
		if n > 0 {
			if c.sess == nil {
				// First byte ever: build the parser and dispatch state.
				// Idle connections never pay for these.
				c.sess = l.s.newSession(c.id)
				c.sp = protocol.NewStreamParser(l.s.opts.ReadBuffer)
			}
			c.sp.Feed(l.readBuf[:n])
			got = true
		}
		if err != nil {
			if err == syscall.EAGAIN {
				break
			}
			if err == syscall.EINTR {
				continue
			}
			rerr = fmt.Errorf("read: %w", err)
			eof = true
			break
		}
		if n == 0 { // orderly EOF
			eof = true
			break
		}
		if n < len(l.readBuf) {
			break
		}
	}
	if got && !l.process(c) {
		return // connection closed during processing
	}
	if eof {
		// Serve what was buffered (done above), then drop the conn. Any
		// reply still in c.out is unsendable on a read-dead socket only
		// if the peer fully closed; half-close still drains via EPOLLOUT,
		// but a vanished peer errors there and closes us anyway.
		if len(c.out) > 0 && rerr == nil {
			c.closeAfterFlush = true
			return
		}
		l.closeConn(c, rerr)
	}
}

// process drains complete commands from the connection's parser through
// the shared service path, then flushes the batch. Reports false when
// the connection was closed.
func (l *evLoop) process(c *evConn) bool {
	s := l.s
	l.bw.Reset(c)
	w := l.w
	quit := false
	for !quit {
		cmd, err := c.sp.Next()
		if err != nil {
			if errors.Is(err, protocol.ErrIncomplete) {
				break
			}
			switch {
			case errors.Is(err, protocol.ErrQuit):
				quit = true
				continue
			case protocol.IsRecoverable(err):
				if werr := w.ClientErrorf("%v", err); werr != nil {
					l.closeConn(c, werr)
					return false
				}
				continue
			default:
				l.closeConn(c, err)
				return false
			}
		}
		l.commands.Add(1)
		closeConn, serr := s.serveCommand(w, cmd, c.sess)
		if serr != nil {
			l.closeConn(c, serr)
			return false
		}
		if closeConn {
			// Fault reset: reply unwritten, pending output discarded.
			c.out = nil
			l.closeConn(c, nil)
			return false
		}
	}
	if l.bw.Buffered() > 0 {
		l.flushes.Add(1)
		if err := l.bw.Flush(); err != nil {
			l.closeConn(c, err)
			return false
		}
	}
	if quit {
		if len(c.out) == 0 {
			l.closeConn(c, nil)
			return false
		}
		c.closeAfterFlush = true
	}
	return true
}

// flushOut pushes pending reply bytes when the socket signals writable,
// disarming EPOLLOUT once drained.
func (l *evLoop) flushOut(c *evConn) {
	for len(c.out) > 0 {
		n, err := syscall.Write(int(c.fd), c.out)
		if n > 0 {
			c.out = c.out[n:]
		}
		if err != nil {
			if err == syscall.EAGAIN {
				return
			}
			if err == syscall.EINTR {
				continue
			}
			l.closeConn(c, fmt.Errorf("write: %w", err))
			return
		}
		if n == 0 {
			return
		}
	}
	c.out = nil // release capacity; idle conns hold no reply buffer
	c.setWritable(false)
	if c.closeAfterFlush {
		l.closeConn(c, nil)
	}
}

// evConn is one connection owned by an event loop. The zero-ish state
// right after attach (no sess, no parser, no out buffer) is the idle
// footprint; everything else arrives with the first byte.
type evConn struct {
	loop *evLoop
	fd   int32
	conn net.Conn
	id   uint64

	sess *connSession
	sp   *protocol.StreamParser
	// out holds reply bytes the socket would not accept; EPOLLOUT stays
	// armed while it is non-empty.
	out             []byte
	wantW           bool
	closeAfterFlush bool
	closed          bool
	werr            error
	lastActive      int64 // UnixNano of last readiness
}

// Write is the sink under the loop's bufio writer: it tries the socket
// directly when nothing is queued (the common case — one syscall per
// batch) and spills the remainder to the out buffer otherwise.
func (c *evConn) Write(p []byte) (int, error) {
	if c.werr != nil {
		return 0, c.werr
	}
	total := len(p)
	if len(c.out) == 0 {
		for len(p) > 0 {
			n, err := syscall.Write(int(c.fd), p)
			if n > 0 {
				p = p[n:]
			}
			if err != nil {
				if err == syscall.EAGAIN {
					break
				}
				if err == syscall.EINTR {
					continue
				}
				c.werr = fmt.Errorf("write: %w", err)
				return total - len(p), c.werr
			}
			if n == 0 {
				break
			}
		}
		if len(p) == 0 {
			return total, nil
		}
	}
	if len(c.out)+len(p) > maxPendingOut {
		c.werr = fmt.Errorf("write: %d pending reply bytes, client not draining", len(c.out)+len(p))
		return total - len(p), c.werr
	}
	c.out = append(c.out, p...)
	c.setWritable(true)
	return total, nil
}

// setWritable arms or disarms EPOLLOUT for the connection.
func (c *evConn) setWritable(on bool) {
	if c.wantW == on {
		return
	}
	c.wantW = on
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP, Fd: c.fd}
	if on {
		ev.Events |= syscall.EPOLLOUT
	}
	_ = syscall.EpollCtl(c.loop.epfd, syscall.EPOLL_CTL_MOD, int(c.fd), &ev)
}
