package server

// Hot-path benchmarks for the live server: pipelined get/set/multiget
// over real TCP connections. The client side is deliberately
// allocation-free (prebuilt request batches, fixed-size expected
// responses read with io.ReadFull), so allocs/op reported by -benchmem
// is the server-side cost of parsing, cache access and response
// formatting. Baselines live in BENCH_server.json; the CI bench job
// fails on >20% ns/op regression or any new allocs on the zero-alloc
// get path.

import (
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"memqlat/internal/cache"
)

const (
	hotKeys     = 256 // distinct keys, fixed-width names → fixed-size replies
	hotValueLen = 100
)

func hotKey(i int) string { return fmt.Sprintf("k%04d", i%hotKeys) }

// startHotServer brings up an unshaped server on a loopback listener
// with hotKeys pre-populated fixed-size values.
func startHotServer(b *testing.B, core string) (*Server, net.Addr) {
	b.Helper()
	c, err := cache.New(cache.Options{MaxBytes: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	value := []byte(strings.Repeat("v", hotValueLen))
	for i := 0; i < hotKeys; i++ {
		if err := c.Set(hotKey(i), value, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := New(Options{Cache: c, ConnCore: core, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	return srv, l.Addr()
}

// hotBatch builds one pipelined request batch plus the exact byte count
// of the server's reply, so workers can io.ReadFull without parsing.
//
//	get:      pipeline of single-key gets (op = one get)
//	set:      pipeline of sets             (op = one set)
//	multiget: pipeline of 8-key gets       (op = one 8-key command)
func hotBatch(op string, offset int) (batch []byte, ops int, respLen int) {
	var sb strings.Builder
	value := strings.Repeat("v", hotValueLen)
	// One VALUE block: "VALUE k0000 0 100\r\n" + value + "\r\n"
	valueBlock := len("VALUE k0000 0 100\r\n") + hotValueLen + 2
	switch op {
	case "get":
		ops = 64
		for i := 0; i < ops; i++ {
			fmt.Fprintf(&sb, "get %s\r\n", hotKey(offset+i))
		}
		respLen = ops * (valueBlock + len("END\r\n"))
	case "set":
		ops = 64
		for i := 0; i < ops; i++ {
			fmt.Fprintf(&sb, "set %s 0 0 %d\r\n%s\r\n", hotKey(offset+i), hotValueLen, value)
		}
		respLen = ops * len("STORED\r\n")
	case "multiget":
		ops = 16
		for i := 0; i < ops; i++ {
			sb.WriteString("get")
			for j := 0; j < 8; j++ {
				fmt.Fprintf(&sb, " %s", hotKey(offset+i*8+j))
			}
			sb.WriteString("\r\n")
		}
		respLen = ops * (8*valueBlock + len("END\r\n"))
	default:
		panic("unknown op " + op)
	}
	return []byte(sb.String()), ops, respLen
}

// BenchmarkServerHotPath drives the server end to end: conns workers
// each own one TCP connection and pump pipelined batches until b.N ops
// are done. ns/op is per command; the get path must stay 0 allocs/op.
// The legacy goroutine core keeps its original benchmark names (the
// long-running baseline series); the event-loop core runs the same
// matrix under a core=eventloop prefix with its own baselines, holding
// both cores to the zero-alloc gate.
func BenchmarkServerHotPath(b *testing.B) {
	for _, op := range []string{"get", "set", "multiget"} {
		for _, conns := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/conns=%d", op, conns), func(b *testing.B) {
				benchHotPath(b, CoreGoroutines, op, conns)
			})
		}
	}
	if runtime.GOOS != "linux" {
		return
	}
	for _, op := range []string{"get", "set", "multiget"} {
		for _, conns := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("core=eventloop/%s/conns=%d", op, conns), func(b *testing.B) {
				benchHotPath(b, CoreEventLoop, op, conns)
			})
		}
	}
}

func benchHotPath(b *testing.B, core, op string, conns int) {
	srv, addr := startHotServer(b, core)
	defer srv.Close()
	type worker struct {
		nc    net.Conn
		batch []byte
		resp  []byte
		ops   int64
	}
	workers := make([]*worker, conns)
	for i := range workers {
		nc, err := net.Dial("tcp", addr.String())
		if err != nil {
			b.Fatal(err)
		}
		defer nc.Close()
		batch, ops, respLen := hotBatch(op, i*16)
		workers[i] = &worker{nc: nc, batch: batch, resp: make([]byte, respLen), ops: int64(ops)}
	}
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	b.ReportAllocs()
	b.ResetTimer()
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for remaining.Add(-w.ops) > -w.ops {
				if _, err := w.nc.Write(w.batch); err != nil {
					errs <- err
					return
				}
				if _, err := io.ReadFull(w.nc, w.resp); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
}
