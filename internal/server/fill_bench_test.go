package server

// Benchmark for the coalesced read-through miss path: every get misses
// (fills are written back already expired), so each op exercises the
// full miss pipeline — parse, cache miss, single-flight Do, filler
// fetch or fan-in, reply. With all connections hammering one key the
// coalescer is under maximal contention, which is exactly the
// thundering-herd regime the seam exists for. The naive sub-benchmarks
// run the same workload without the coalescer as the overhead control.
// Baselines live in BENCH_server.json next to the hot-path series.

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/coalesce"
)

// benchFiller returns a fixed-size value for any key, counting fetches.
type benchFiller struct {
	value   []byte
	fetches atomic.Int64
}

func (f *benchFiller) Get(ctx context.Context, key string) ([]byte, error) {
	f.fetches.Add(1)
	return f.value, nil
}

func BenchmarkCoalescedMiss(b *testing.B) {
	for _, mode := range []string{"naive", "coalesced"} {
		for _, conns := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/conns=%d", mode, conns), func(b *testing.B) {
				benchFillMiss(b, mode == "coalesced", conns)
			})
		}
	}
}

func benchFillMiss(b *testing.B, coalesced bool, conns int) {
	c, err := cache.New(cache.Options{MaxBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	filler := &benchFiller{value: []byte(strings.Repeat("v", hotValueLen))}
	opts := Options{
		Cache:   c,
		Filler:  filler,
		FillTTL: -time.Second, // write-backs land expired: every get misses
		Logger:  log.New(io.Discard, "", 0),
	}
	if coalesced {
		opts.Coalesce = &coalesce.Policy{}
	}
	srv, err := New(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()

	// One pipelined batch of gets for the single hot key; the fill is
	// served like a hit, so the reply size is exact and parse-free.
	const pipelined = 64
	key := "hot00"
	var sb strings.Builder
	for i := 0; i < pipelined; i++ {
		fmt.Fprintf(&sb, "get %s\r\n", key)
	}
	batch := []byte(sb.String())
	respLen := pipelined * (len("VALUE hot00 0 100\r\n") + hotValueLen + 2 + len("END\r\n"))

	type worker struct {
		nc   net.Conn
		resp []byte
	}
	workers := make([]*worker, conns)
	for i := range workers {
		nc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer nc.Close()
		workers[i] = &worker{nc: nc, resp: make([]byte, respLen)}
	}
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	b.ReportAllocs()
	b.ResetTimer()
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for remaining.Add(-pipelined) > -pipelined {
				if _, err := w.nc.Write(batch); err != nil {
					errs <- err
					return
				}
				if _, err := io.ReadFull(w.nc, w.resp); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	fills, _ := srv.FillCounts()
	if fills == 0 {
		b.Fatal("benchmark never exercised the fill path")
	}
	b.ReportMetric(float64(filler.fetches.Load())/float64(b.N), "fetches/op")
}
