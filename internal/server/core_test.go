package server

import (
	"fmt"
	"io"
	"net"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/fault"
)

// testCores lists the connection cores runnable on this platform.
func testCores(t *testing.T) []string {
	t.Helper()
	if runtime.GOOS != "linux" {
		return []string{CoreGoroutines}
	}
	return ConnCores()
}

// coreScript is a deterministic single-connection workload touching
// every command family: storage ops (with noreply), retrievals,
// multigets with misses, arithmetic, touch/delete, trace headers, a
// malformed command, stats and an orderly quit. Identical server state
// before the script ⇒ identical reply bytes, on any core.
var coreScript = strings.Join([]string{
	"set a 1 0 3\r\nfoo\r\n",
	"set b 2 0 3\r\nbar\r\n",
	"get a\r\n",
	"get a b missing\r\n",
	"gets a b\r\n",
	"add a 0 0 1\r\nx\r\n",
	"add c 0 0 1\r\nx\r\n",
	"replace c 0 0 2\r\nxy\r\n",
	"append c 0 0 1\r\nz\r\n",
	"prepend c 0 0 1\r\nw\r\n",
	"cas a 0 0 1 1\r\nX\r\n",
	"set nr 0 0 2 noreply\r\nok\r\n",
	"get nr\r\n",
	"incr missing 1\r\n",
	"set n 0 0 1\r\n5\r\n",
	"incr n 10\r\n",
	"decr n 3\r\n",
	"touch a 100\r\n",
	"touch missing 100\r\n",
	"delete b\r\n",
	"delete b\r\n",
	"mq_trace 1 2\r\n",
	"get a\r\n",
	"bogus nonsense\r\n",
	"version\r\n",
	"verbosity 1\r\n",
	"stats commands\r\n",
	"quit\r\n",
}, "")

// runScript plays a wire script against a fresh server on the given
// core, in chunkSize-byte writes, and returns everything the server
// replied (the connection must end with quit so reads hit EOF).
func runScript(t *testing.T, opts Options, script string, chunkSize int) (*Server, string) {
	t.Helper()
	srv, addr := startServer(t, opts)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < len(script); i += chunkSize {
		end := i + chunkSize
		if end > len(script) {
			end = len(script)
		}
		if _, err := conn.Write([]byte(script[i:end])); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read replies: %v", err)
	}
	return srv, string(reply)
}

// TestConnCoreEquivalence drives both cores through the same scripted
// workload — once in large writes, once split into 3-byte chunks so
// every frame crosses a read boundary — and requires byte-identical
// responses and identical telemetry stage sets. ServiceRate is set so
// the shaped path (queue wait + service channel) runs too.
func TestConnCoreEquivalence(t *testing.T) {
	type result struct {
		reply  string
		stages []string
	}
	for _, chunk := range []int{1 << 20, 3} {
		results := map[string]result{}
		for _, core := range testCores(t) {
			srv, reply := runScript(t, Options{
				ConnCore:    core,
				ServiceRate: 1e6, // ~1µs shaped service: exercises queue_wait without slowing the test
			}, coreScript, chunk)
			results[core] = result{reply: reply, stages: srv.Telemetry().Breakdown().StageSet()}
			if !strings.Contains(reply, "VALUE a 1 3\r\nfoo") {
				t.Fatalf("core %s: script replies look wrong:\n%q", core, reply)
			}
		}
		want, ok := results[CoreGoroutines]
		if !ok {
			t.Fatal("goroutine core missing")
		}
		for core, got := range results {
			if got.reply != want.reply {
				t.Errorf("chunk=%d: core %s replies diverge from %s:\n%q\nvs\n%q",
					chunk, core, CoreGoroutines, got.reply, want.reply)
			}
			if !reflect.DeepEqual(got.stages, want.stages) {
				t.Errorf("chunk=%d: core %s stage set %v, want %v", chunk, core, got.stages, want.stages)
			}
		}
	}
}

// TestConnCoreFaultReset checks that a reset fault tears the connection
// down before any reply on both cores.
func TestConnCoreFaultReset(t *testing.T) {
	sched, err := fault.ParseSchedule("reset:srv=all")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	var clock fault.Clock
	clock.Start()
	for _, core := range testCores(t) {
		t.Run(core, func(t *testing.T) {
			_, addr := startServer(t, Options{
				ConnCore: core,
				Fault:    &fault.Point{Inj: inj, Server: 0, Now: clock.Now},
			})
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := conn.Write([]byte("get a\r\n")); err != nil {
				t.Fatal(err)
			}
			reply, _ := io.ReadAll(conn)
			if len(reply) != 0 {
				t.Fatalf("reset fault still produced a reply: %q", reply)
			}
		})
	}
}

// TestConnCoreStress hammers each core with concurrent pipelined
// clients (run under -race in CI): every client owns its keys, mixes
// noreply storage with verified gets and multigets, and checks each
// reply exactly.
func TestConnCoreStress(t *testing.T) {
	const clients = 8
	ops := 200
	if testing.Short() {
		ops = 40
	}
	for _, core := range testCores(t) {
		t.Run(core, func(t *testing.T) {
			srv, addr := startServer(t, Options{ConnCore: core, MaxConns: clients + 4})
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					errs <- stressClient(addr, g, ops)
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Error(err)
				}
			}
			if got := srv.Counters().Commands; got == 0 {
				t.Error("no commands counted")
			}
		})
	}
}

func stressClient(addr string, g, ops int) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(60 * time.Second))
	r := strings.Builder{}
	var expect []string
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("k%d-%d", g, i%7)
		v := fmt.Sprintf("v%d-%d", g, i)
		switch i % 4 {
		case 0:
			fmt.Fprintf(&r, "set %s 0 0 %d\r\n%s\r\n", k, len(v), v)
			expect = append(expect, "STORED\r\n")
		case 1:
			fmt.Fprintf(&r, "set %s 0 0 %d noreply\r\n%s\r\n", k, len(v), v)
		case 2:
			// The previous iteration (noreply set) stored v(i-1) under
			// k(i-1): read it back and verify.
			pk := fmt.Sprintf("k%d-%d", g, (i-1)%7)
			pv := fmt.Sprintf("v%d-%d", g, i-1)
			fmt.Fprintf(&r, "get %s\r\n", pk)
			expect = append(expect, fmt.Sprintf("VALUE %s 0 %d\r\n%s\r\nEND\r\n", pk, len(pv), pv))
		case 3:
			// Keys cycle mod 7 and ops mod 4 (coprime), so k{i%7} was
			// last written by the reply set at iteration i-7 — a miss
			// on the first lap.
			fmt.Fprintf(&r, "get %s no-such-%d\r\n", k, g)
			if i >= 7 {
				pv := fmt.Sprintf("v%d-%d", g, i-7)
				expect = append(expect, fmt.Sprintf("VALUE %s 0 %d\r\n%s\r\nEND\r\n", k, len(pv), pv))
			} else {
				expect = append(expect, "END\r\n")
			}
		}
	}
	r.WriteString("quit\r\n")
	if _, err := conn.Write([]byte(r.String())); err != nil {
		return fmt.Errorf("client %d: write: %w", g, err)
	}
	got, err := io.ReadAll(conn)
	if err != nil {
		return fmt.Errorf("client %d: read: %w", g, err)
	}
	want := strings.Join(expect, "")
	if string(got) != want {
		return fmt.Errorf("client %d: replies diverge:\ngot  %q\nwant %q", g, got, want)
	}
	return nil
}

// TestEventLoopIdleTimeout checks the loop core reaps connections that
// go quiet, while an active one survives (mirrors the goroutine-core
// idle test).
func TestEventLoopIdleTimeout(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("event loop requires linux")
	}
	_, addr := startServer(t, Options{ConnCore: CoreEventLoop, IdleTimeout: 300 * time.Millisecond})
	r, w, conn := dial(t, addr)
	send(t, w, "set k 0 0 1\r\nx\r\n")
	if got := readLine(t, r); got != "STORED" {
		t.Fatalf("set reply = %q", got)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.ReadByte(); err != io.EOF {
		t.Fatalf("idle connection read = %v, want EOF", err)
	}
}

// TestEventLoopBackpressure forces the coalesced-flush slow path: the
// client pipelines far more reply bytes than the socket buffer holds
// without reading, so the loop must park the overflow and drain it via
// writability events — then everything must still arrive intact,
// including the quit-after-drain close.
func TestEventLoopBackpressure(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("event loop requires linux")
	}
	_, addr := startServer(t, Options{ConnCore: CoreEventLoop})
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))

	val := strings.Repeat("x", 256<<10)
	if _, err := conn.Write([]byte(fmt.Sprintf("set big 0 0 %d\r\n%s\r\n", len(val), val))); err != nil {
		t.Fatal(err)
	}
	const gets = 32
	req := strings.Repeat("get big\r\n", gets) + "quit\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	// Let the server hit EAGAIN with nobody reading.
	time.Sleep(200 * time.Millisecond)
	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read replies: %v", err)
	}
	wantOne := fmt.Sprintf("VALUE big 0 %d\r\n%s\r\nEND\r\n", len(val), val)
	want := "STORED\r\n" + strings.Repeat(wantOne, gets)
	if string(reply) != want {
		t.Fatalf("backpressure replies corrupted: got %d bytes, want %d (first divergence at %d)",
			len(reply), len(want), firstDiff(string(reply), want))
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestConnCoreValidation covers Options.ConnCore / LoopWorkers input
// checking and the stats row naming the active core.
func TestConnCoreValidation(t *testing.T) {
	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Cache: c, ConnCore: "fibers"}); err == nil {
		t.Error("unknown ConnCore accepted")
	}
	if _, err := New(Options{Cache: c, LoopWorkers: -1}); err == nil {
		t.Error("negative LoopWorkers accepted")
	}
	srv, addr := startServer(t, Options{})
	if got := srv.ConnCoreName(); got != CoreGoroutines {
		t.Errorf("default core = %q", got)
	}
	if stats := srv.LoopStats(); stats != nil {
		t.Errorf("goroutine core LoopStats = %v, want nil", stats)
	}
	r, w, _ := dial(t, addr)
	send(t, w, "stats\r\n")
	found := false
	for {
		line := readLine(t, r)
		if line == "END" {
			break
		}
		if line == "STAT conn_core goroutines" {
			found = true
		}
	}
	if !found {
		t.Error("stats missing conn_core row")
	}
}

// TestEventLoopLoopStats checks the loop gauges move.
func TestEventLoopLoopStats(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("event loop requires linux")
	}
	srv, addr := startServer(t, Options{ConnCore: CoreEventLoop, LoopWorkers: 2})
	r, w, _ := dial(t, addr)
	send(t, w, "set k 0 0 1\r\nx\r\nget k\r\n")
	if got := readLine(t, r); got != "STORED" {
		t.Fatalf("set reply = %q", got)
	}
	for _, want := range []string{"VALUE k 0 1", "x", "END"} {
		if got := readLine(t, r); got != want {
			t.Fatalf("get reply = %q, want %q", got, want)
		}
	}
	stats := srv.LoopStats()
	if len(stats) != 2 {
		t.Fatalf("LoopStats len = %d, want 2", len(stats))
	}
	var conns, cmds int64
	for _, ls := range stats {
		conns += ls.Conns
		cmds += ls.Commands
	}
	if conns != 1 {
		t.Errorf("total loop conns = %d, want 1", conns)
	}
	if cmds < 2 {
		t.Errorf("total loop commands = %d, want >= 2", cmds)
	}
}
