package proxy

import (
	"bufio"
	"bytes"
	"errors"
	"testing"

	"memqlat/internal/protocol"
)

// FuzzProxyFrame fuzzes the proxy's forwarding contract: every command
// the parser accepts must yield a captured wire frame that re-parses to
// an equivalent command. A frame that parses differently would make the
// proxy forward a request the upstream interprets differently than the
// downstream sent it.
func FuzzProxyFrame(f *testing.F) {
	f.Add([]byte("get a b c\r\n"))
	f.Add([]byte("gets one\r\n"))
	f.Add([]byte("set k 7 0 3\r\nabc\r\n"))
	f.Add([]byte("set k 0 0 2 noreply\r\nhi\r\nget k\r\n"))
	f.Add([]byte("cas k 0 0 1 99\r\nx\r\n"))
	f.Add([]byte("delete gone noreply\r\n"))
	f.Add([]byte("incr n 5\r\ndecr n 2\r\n"))
	f.Add([]byte("touch k 30\r\n"))
	f.Add([]byte("gat 60 a b\r\ngats 1 z\r\n"))
	f.Add([]byte("flush_all 10\r\nversion\r\nverbosity 2\r\n"))
	f.Add([]byte("get a\nget b\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := protocol.NewParser(bufio.NewReader(bytes.NewReader(data)))
		p.CaptureFrames(true)
		for i := 0; i < 64; i++ {
			cmd, err := p.Next()
			if err != nil {
				var ce *protocol.ClientError
				if errors.As(err, &ce) {
					// Malformed command: the stream stays parseable.
					continue
				}
				return // quit / EOF / i/o
			}
			frame := p.Frame()
			if len(frame) < 2 || frame[len(frame)-2] != '\r' || frame[len(frame)-1] != '\n' {
				t.Fatalf("frame %q not CRLF-terminated", frame)
			}
			rp := protocol.NewParser(bufio.NewReader(bytes.NewReader(frame)))
			cmd2, err := rp.Next()
			if err != nil {
				t.Fatalf("frame %q does not re-parse: %v", frame, err)
			}
			if cmd.Op != cmd2.Op || cmd.Noreply != cmd2.Noreply ||
				cmd.Flags != cmd2.Flags || cmd.Exptime != cmd2.Exptime ||
				cmd.CAS != cmd2.CAS || cmd.Delta != cmd2.Delta ||
				!bytes.Equal(cmd.KeyB, cmd2.KeyB) || !bytes.Equal(cmd.Value, cmd2.Value) {
				t.Fatalf("frame %q re-parsed to a different command", frame)
			}
			if len(cmd.KeyList) != len(cmd2.KeyList) {
				t.Fatalf("frame %q re-parsed with %d keys, want %d",
					frame, len(cmd2.KeyList), len(cmd.KeyList))
			}
			for j := range cmd.KeyList {
				if !bytes.Equal(cmd.KeyList[j], cmd2.KeyList[j]) {
					t.Fatalf("frame %q re-parsed with key %q, want %q",
						frame, cmd2.KeyList[j], cmd.KeyList[j])
				}
			}
		}
	})
}
