package proxy

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"testing"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/route"
	"memqlat/internal/server"
)

// startBackends brings up n real memqlat servers on loopback listeners.
func startBackends(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = startBackend(t)
	}
	return addrs
}

func startBackend(t testing.TB) string {
	t.Helper()
	c, err := cache.New(cache.Options{MaxBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Cache: c, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

// startProxy brings the proxy up on a loopback listener.
func startProxy(t testing.TB, opts Options) (*Proxy, string) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(l) }()
	t.Cleanup(func() { _ = p.Close() })
	return p, l.Addr().String()
}

// testConn is a raw text-protocol client for asserting exact framing.
type testConn struct {
	t  testing.TB
	nc net.Conn
	r  *bufio.Reader
}

func dialConn(t testing.TB, addr string) *testConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	_ = nc.SetDeadline(time.Now().Add(30 * time.Second))
	return &testConn{t: t, nc: nc, r: bufio.NewReader(nc)}
}

func (c *testConn) send(s string) {
	c.t.Helper()
	if _, err := c.nc.Write([]byte(s)); err != nil {
		c.t.Fatal(err)
	}
}

func (c *testConn) line() string {
	c.t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read line: %v (got %q)", err, line)
	}
	return strings.TrimRight(line, "\r\n")
}

func (c *testConn) expect(want string) {
	c.t.Helper()
	if got := c.line(); got != want {
		c.t.Fatalf("reply %q, want %q", got, want)
	}
}

// retrieval reads one full retrieval reply (VALUE blocks through END)
// and returns key -> value.
func (c *testConn) retrieval() map[string]string {
	c.t.Helper()
	out := map[string]string{}
	for {
		line := c.line()
		if line == "END" {
			return out
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[0] != "VALUE" {
			c.t.Fatalf("unexpected retrieval line %q", line)
		}
		var n int
		if _, err := fmt.Sscanf(f[3], "%d", &n); err != nil {
			c.t.Fatalf("bad VALUE bytes in %q", line)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			c.t.Fatal(err)
		}
		out[f[1]] = string(buf[:n])
	}
}

func (c *testConn) set(key, value string) {
	c.t.Helper()
	c.send(fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", key, len(value), value))
	c.expect("STORED")
}

func TestProxyPassthroughBasic(t *testing.T) {
	addrs := startBackends(t, 2)
	p, paddr := startProxy(t, Options{Upstreams: addrs})
	c := dialConn(t, paddr)

	c.set("alpha", "one")
	c.set("beta", "two-two")

	c.send("get alpha\r\n")
	if got := c.retrieval(); got["alpha"] != "one" {
		t.Fatalf("get alpha = %v", got)
	}
	c.send("gets beta\r\n")
	if got := c.retrieval(); got["beta"] != "two-two" {
		t.Fatalf("gets beta = %v", got)
	}
	c.send("incr alpha 1\r\n")
	if line := c.line(); !strings.HasPrefix(line, "CLIENT_ERROR") {
		t.Fatalf("incr on non-numeric = %q, want CLIENT_ERROR", line)
	}
	c.send("delete alpha\r\n")
	c.expect("DELETED")
	c.send("get alpha\r\n")
	if got := c.retrieval(); len(got) != 0 {
		t.Fatalf("deleted key still present: %v", got)
	}
	c.send("version\r\n")
	c.expect("VERSION memqlat-proxy")
	c.send("verbosity 1\r\n")
	c.expect("OK")
	c.send("touch beta 100\r\n")
	c.expect("TOUCHED")
	c.send("flush_all\r\n")
	c.expect("OK")
	c.send("get beta\r\n")
	if got := c.retrieval(); len(got) != 0 {
		t.Fatalf("flushed key still present: %v", got)
	}
	if s := p.Stats(); s.Commands == 0 || s.Forwarded == 0 {
		t.Fatalf("stats not counting: %+v", s)
	}
}

func TestProxyLocalStats(t *testing.T) {
	addrs := startBackends(t, 1)
	_, paddr := startProxy(t, Options{Upstreams: addrs})
	c := dialConn(t, paddr)
	c.set("k", "v")
	c.send("stats\r\n")
	sawProxy := false
	for {
		line := c.line()
		if line == "END" {
			break
		}
		if line == "STAT proxy memqlat" {
			sawProxy = true
		}
		if !strings.HasPrefix(line, "STAT ") {
			t.Fatalf("unexpected stats line %q", line)
		}
	}
	if !sawProxy {
		t.Fatal("stats reply missing proxy marker")
	}
}

// TestProxyPipelinedNoreplyOrdering is the satellite ordering test: a
// single write carrying noreply storage ops interleaved with reads of
// the same keys must observe the writes, and replies must come back in
// command order.
func TestProxyPipelinedNoreplyOrdering(t *testing.T) {
	addrs := startBackends(t, 1)
	_, paddr := startProxy(t, Options{Upstreams: addrs})
	c := dialConn(t, paddr)

	c.send("set o1 0 0 2 noreply\r\nv1\r\n" +
		"set o2 0 0 2 noreply\r\nv2\r\n" +
		"get o1\r\n" +
		"get o2\r\n" +
		"delete o1 noreply\r\n" +
		"get o1\r\n" +
		"set o1 0 0 2 noreply\r\nv3\r\n" +
		"get o1\r\n")
	if got := c.retrieval(); got["o1"] != "v1" {
		t.Fatalf("reply 1: got %v, want o1=v1", got)
	}
	if got := c.retrieval(); got["o2"] != "v2" {
		t.Fatalf("reply 2: got %v, want o2=v2", got)
	}
	if got := c.retrieval(); len(got) != 0 {
		t.Fatalf("reply 3: noreply delete not ordered before read: %v", got)
	}
	if got := c.retrieval(); got["o1"] != "v3" {
		t.Fatalf("reply 4: noreply re-set not ordered before read: %v", got)
	}
}

// TestProxyInterleavedMultiGetFraming is the satellite framing test:
// pipelined multi-gets whose keys interleave across three upstream
// servers must come back as well-formed retrieval replies in command
// order, each carrying exactly its own keys.
func TestProxyInterleavedMultiGetFraming(t *testing.T) {
	addrs := startBackends(t, 3)
	_, paddr := startProxy(t, Options{Upstreams: addrs})
	c := dialConn(t, paddr)

	const nkeys = 12
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("mk%02d", i)
		c.set(keys[i], fmt.Sprintf("value-%02d", i))
	}

	// Three pipelined multi-gets with interleaved, overlapping key sets,
	// a missing key in the middle, and a trailing single-line command.
	var sb strings.Builder
	sb.WriteString("get " + strings.Join(keys[0:6], " ") + "\r\n")
	sb.WriteString("get mk06 missing-key mk07\r\n")
	sb.WriteString("get " + strings.Join(keys[6:12], " ") + " mk00\r\n")
	sb.WriteString("version\r\n")
	c.send(sb.String())

	r1 := c.retrieval()
	if len(r1) != 6 {
		t.Fatalf("reply 1 has %d keys: %v", len(r1), r1)
	}
	for i := 0; i < 6; i++ {
		if r1[keys[i]] != fmt.Sprintf("value-%02d", i) {
			t.Fatalf("reply 1 wrong value for %s: %v", keys[i], r1)
		}
	}
	r2 := c.retrieval()
	if len(r2) != 2 || r2["mk06"] == "" || r2["mk07"] == "" {
		t.Fatalf("reply 2 = %v, want exactly mk06+mk07", r2)
	}
	r3 := c.retrieval()
	if len(r3) != 7 {
		t.Fatalf("reply 3 has %d keys: %v", len(r3), r3)
	}
	for i := 6; i < 12; i++ {
		if r3[keys[i]] != fmt.Sprintf("value-%02d", i) {
			t.Fatalf("reply 3 wrong value for %s: %v", keys[i], r3)
		}
	}
	if r3["mk00"] != "value-00" {
		t.Fatalf("reply 3 missing cross-group key mk00: %v", r3)
	}
	c.expect("VERSION memqlat-proxy")
}

// fixedSelector routes every key to one server (failover determinism).
type fixedSelector struct{ n, target int }

func (f fixedSelector) Pick(string) int { return f.target }
func (f fixedSelector) N() int          { return f.n }

func TestProxyFailover(t *testing.T) {
	live := startBackend(t)
	// A listener that is immediately closed: connecting fails fast.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()

	p, paddr := startProxy(t, Options{
		Upstreams: []string{live, deadAddr},
		Selector:  fixedSelector{n: 2, target: 1},
		Policy:    PolicyFailover,
		Breaker: &route.BreakerPolicy{
			Window:           4,
			MinSamples:       2,
			FailureThreshold: 0.5,
			Cooldown:         time.Hour,
			HalfOpenProbes:   1,
		},
	})
	c := dialConn(t, paddr)

	// The first attempts hit the dead owner and fail; once the breaker
	// trips, traffic fails over to the live server (a clean miss).
	recovered := false
	for i := 0; i < 10; i++ {
		c.send("get failkey\r\n")
		line := c.line()
		if line == "END" {
			recovered = true
			break
		}
		if !strings.HasPrefix(line, "SERVER_ERROR") {
			t.Fatalf("unexpected reply %q", line)
		}
	}
	if !recovered {
		t.Fatalf("failover never engaged; breaker state %q", p.BreakerState(1))
	}
	if p.BreakerState(1) != "open" {
		t.Fatalf("dead upstream breaker %q, want open", p.BreakerState(1))
	}
	if p.Stats().Failovers == 0 {
		t.Fatal("failover counter never incremented")
	}
	// Writes fail over too, and land on the live server.
	c.send("set failkey 0 0 2\r\nok\r\n")
	c.expect("STORED")
	c.send("get failkey\r\n")
	if got := c.retrieval(); got["failkey"] != "ok" {
		t.Fatalf("failed-over write not readable: %v", got)
	}
}

func TestProxyReplicatedWriteAndRead(t *testing.T) {
	addrs := startBackends(t, 3)
	_, paddr := startProxy(t, Options{
		Upstreams: addrs,
		Policy:    PolicyReplicate,
		Replicas:  2,
	})
	c := dialConn(t, paddr)

	c.set("rkey", "replicated")

	// Exactly Replicas backends hold the key.
	holders := 0
	for _, addr := range addrs {
		bc := dialConn(t, addr)
		bc.send("get rkey\r\n")
		if got := bc.retrieval(); got["rkey"] == "replicated" {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("key on %d backends, want 2", holders)
	}

	// Replicated read races the replicas and returns the value.
	c.send("get rkey\r\n")
	if got := c.retrieval(); got["rkey"] != "replicated" {
		t.Fatalf("replicated read = %v", got)
	}

	// A replicated delete removes every copy; the joined line reply is
	// still a single DELETED.
	c.send("delete rkey\r\n")
	c.expect("DELETED")
	for _, addr := range addrs {
		bc := dialConn(t, addr)
		bc.send("get rkey\r\n")
		if got := bc.retrieval(); len(got) != 0 {
			t.Fatalf("replica at %s kept deleted key: %v", addr, got)
		}
	}
}

// TestProxyReplicatedReadSurvivesReplicaLoss kills one backend and
// checks the racing read still answers from the surviving replica.
func TestProxyReplicatedReadSurvivesReplicaLoss(t *testing.T) {
	// Backends managed by hand so one can be torn down mid-test.
	addrs := make([]string, 3)
	srvs := make([]*server.Server, 3)
	for i := range addrs {
		ca, err := cache.New(cache.Options{MaxBytes: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Options{Cache: ca, Logger: log.New(io.Discard, "", 0)})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(l) }()
		addrs[i], srvs[i] = l.Addr().String(), srv
		t.Cleanup(func() { _ = srv.Close() })
	}
	sel, err := route.NewRingSelector(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, paddr := startProxy(t, Options{
		Upstreams: addrs,
		Selector:  sel,
		Policy:    PolicyReplicate,
		Replicas:  2,
	})
	c := dialConn(t, paddr)
	c.set("lost", "still-here")

	// Kill the key's owner; its replica (ring successor) survives.
	owner := route.PickKey(sel, []byte("lost"))
	_ = srvs[owner].Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		c2 := dialConn(t, paddr)
		c2.send("get lost\r\n")
		line := c2.line()
		if strings.HasPrefix(line, "VALUE lost") {
			buf := make([]byte, len("still-here")+2)
			if _, err := io.ReadFull(c2.r, buf); err != nil {
				t.Fatal(err)
			}
			if string(buf[:len(buf)-2]) != "still-here" {
				t.Fatalf("wrong surviving value %q", buf)
			}
			c2.expect("END")
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicated read never recovered; last reply %q", line)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestProxyOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("no upstreams accepted")
	}
	sel, _ := route.NewRingSelector(3, 0)
	if _, err := New(Options{Upstreams: []string{"a:1"}, Selector: sel}); err == nil {
		t.Error("selector/upstream cardinality mismatch accepted")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	for _, name := range []string{"", "direct", "failover", "replicate"} {
		if _, err := ParsePolicy(name); err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
		}
	}
	if PolicyReplicate.String() != "replicate" {
		t.Error("policy stringer broken")
	}
}

func TestProxyClientError(t *testing.T) {
	addrs := startBackends(t, 1)
	_, paddr := startProxy(t, Options{Upstreams: addrs})
	c := dialConn(t, paddr)
	c.send("bogus-command\r\n")
	if line := c.line(); !strings.HasPrefix(line, "CLIENT_ERROR") {
		t.Fatalf("reply %q, want CLIENT_ERROR", line)
	}
	// The connection survives a client error.
	c.set("after", "ok")
}
