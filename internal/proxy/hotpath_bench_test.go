package proxy

// Hot-path benchmarks for the proxy data plane: pipelined get/set/
// multiget through a real TCP proxy in front of a real memqlat server.
// The bench client is allocation-free (prebuilt batches, fixed-size
// replies read with io.ReadFull), so allocs/op is the combined
// proxy + server cost; the server's own hot path is already zero-alloc
// (BENCH_server.json), so any allocation that appears here is the
// proxy's. Baselines live in BENCH_proxy.json; the CI bench job fails
// on >20% ns/op regression or any allocation appearing on the
// zero-alloc get passthrough.

import (
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"memqlat/internal/cache"
	"memqlat/internal/server"
)

const (
	benchKeys     = 256 // fixed-width names -> fixed-size replies
	benchValueLen = 100
)

func benchKey(i int) string { return fmt.Sprintf("k%04d", i%benchKeys) }

// startBenchProxy brings up nBackends servers pre-populated with
// benchKeys fixed-size values and a proxy in front of them, and returns
// the proxy's address.
func startBenchProxy(b *testing.B, nBackends int) string {
	b.Helper()
	addrs := make([]string, nBackends)
	for s := 0; s < nBackends; s++ {
		c, err := cache.New(cache.Options{MaxBytes: 256 << 20})
		if err != nil {
			b.Fatal(err)
		}
		value := []byte(strings.Repeat("v", benchValueLen))
		for i := 0; i < benchKeys; i++ {
			if err := c.Set(benchKey(i), value, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		srv, err := server.New(server.Options{Cache: c, Logger: log.New(io.Discard, "", 0)})
		if err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() { _ = srv.Serve(l) }()
		b.Cleanup(func() { _ = srv.Close() })
		addrs[s] = l.Addr().String()
	}
	p, err := New(Options{
		Upstreams: addrs,
		Logger:    log.New(io.Discard, "", 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = p.Serve(l) }()
	b.Cleanup(func() { _ = p.Close() })
	return l.Addr().String()
}

// benchBatch builds one pipelined request batch plus the exact byte
// count of the reply, so workers can io.ReadFull without parsing.
//
//	get:      pipeline of single-key gets (op = one get)
//	set:      pipeline of sets            (op = one set)
//	multiget: pipeline of 8-key gets      (op = one 8-key command)
func benchBatch(op string, offset int) (batch []byte, ops int, respLen int) {
	var sb strings.Builder
	value := strings.Repeat("v", benchValueLen)
	valueBlock := len("VALUE k0000 0 100\r\n") + benchValueLen + 2
	switch op {
	case "get":
		ops = 64
		for i := 0; i < ops; i++ {
			fmt.Fprintf(&sb, "get %s\r\n", benchKey(offset+i))
		}
		respLen = ops * (valueBlock + len("END\r\n"))
	case "set":
		ops = 64
		for i := 0; i < ops; i++ {
			fmt.Fprintf(&sb, "set %s 0 0 %d\r\n%s\r\n", benchKey(offset+i), benchValueLen, value)
		}
		respLen = ops * len("STORED\r\n")
	case "multiget":
		ops = 16
		for i := 0; i < ops; i++ {
			sb.WriteString("get")
			for k := 0; k < 8; k++ {
				sb.WriteString(" ")
				sb.WriteString(benchKey(offset + i*8 + k))
			}
			sb.WriteString("\r\n")
		}
		respLen = ops * (8*valueBlock + len("END\r\n"))
	default:
		panic("unknown op " + op)
	}
	return []byte(sb.String()), ops, respLen
}

// BenchmarkProxyHotPath measures the proxied data plane. The get and
// set variants are single-upstream passthroughs (the zero-alloc
// contract); multiget-split forces the fork-join path by fronting two
// backends, whose reply assembly buffers per part.
func BenchmarkProxyHotPath(b *testing.B) {
	for _, bc := range []struct {
		name     string
		op       string
		backends int
		conns    int
	}{
		{"get/conns=1", "get", 1, 1},
		{"get/conns=4", "get", 1, 4},
		{"set/conns=1", "set", 1, 1},
		{"multiget/conns=1", "multiget", 1, 1},
		{"multiget-split/conns=1", "multiget", 2, 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			addr := startBenchProxy(b, bc.backends)
			type worker struct {
				nc    net.Conn
				batch []byte
				resp  []byte
				ops   int64
			}
			workers := make([]*worker, bc.conns)
			for i := range workers {
				nc, err := net.Dial("tcp", addr)
				if err != nil {
					b.Fatal(err)
				}
				defer nc.Close()
				batch, ops, respLen := benchBatch(bc.op, i*16)
				workers[i] = &worker{nc: nc, batch: batch, resp: make([]byte, respLen), ops: int64(ops)}
			}
			pump := func(w *worker) error {
				if _, err := w.nc.Write(w.batch); err != nil {
					return err
				}
				_, err := io.ReadFull(w.nc, w.resp)
				return err
			}
			// Warm the upstream pool, parser buffers and pending freelists
			// so the timed region measures steady state.
			for _, w := range workers {
				for i := 0; i < 4; i++ {
					if err := pump(w); err != nil {
						b.Fatal(err)
					}
				}
			}
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			var wg sync.WaitGroup
			errs := make(chan error, bc.conns)
			b.ReportAllocs()
			b.ResetTimer()
			for _, w := range workers {
				wg.Add(1)
				go func(w *worker) {
					defer wg.Done()
					for remaining.Add(-w.ops) > -w.ops {
						if err := pump(w); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
		})
	}
}
