package proxy

import (
	"fmt"
	"io"
	"log"
	"net"
	"testing"

	"memqlat/internal/cache"
	"memqlat/internal/otrace"
	"memqlat/internal/server"
)

// startTracedBackends brings up n servers sharing tr, numbered 0..n-1.
func startTracedBackends(t testing.TB, n int, tr *otrace.Tracer) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		c, err := cache.New(cache.Options{MaxBytes: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Options{
			Cache: c, Logger: log.New(io.Discard, "", 0), Tracer: tr, ID: i,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(l) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs[i] = l.Addr().String()
	}
	return addrs
}

func spansByKind(spans []otrace.Span) map[string][]otrace.Span {
	out := make(map[string][]otrace.Span)
	for _, sp := range spans {
		out[sp.Comp+"/"+sp.Name] = append(out[sp.Comp+"/"+sp.Name], sp)
	}
	return out
}

func TestTraceHeaderPropagatesThroughProxy(t *testing.T) {
	tr := otrace.New(otrace.Options{})
	backends := startTracedBackends(t, 2, tr)
	_, addr := startProxy(t, Options{Upstreams: backends, Tracer: tr})
	c := dialConn(t, addr)
	c.set("tkey", "tv")

	// A client-minted context: trace 41, parent span 7.
	c.send("mq_trace 41 7\r\nget tkey\r\n")
	got := c.retrieval()
	if got["tkey"] != "tv" {
		t.Fatalf("traced get = %v", got)
	}
	kinds := spansByKind(tr.Snapshot())
	hops := kinds["proxy/hop"]
	if len(hops) != 1 || hops[0].Trace != 41 || hops[0].Parent != 7 {
		t.Fatalf("proxy/hop spans = %+v, want one with trace 41 parent 7", hops)
	}
	handles := kinds["server/handle"]
	if len(handles) != 1 || handles[0].Trace != 41 || handles[0].Parent != hops[0].ID {
		t.Errorf("server/handle spans = %+v, want one under hop %d", handles, hops[0].ID)
	}
}

func TestTraceSplitMultiGetFansOut(t *testing.T) {
	tr := otrace.New(otrace.Options{})
	backends := startTracedBackends(t, 4, tr)
	_, addr := startProxy(t, Options{Upstreams: backends, Tracer: tr})
	c := dialConn(t, addr)
	keys := ""
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("sk-%d", i)
		c.set(k, "v")
		keys += " " + k
	}
	c.send("mq_trace 99 0\r\nget" + keys + "\r\n")
	if got := c.retrieval(); len(got) != 16 {
		t.Fatalf("split read returned %d keys, want 16", len(got))
	}
	kinds := spansByKind(tr.Snapshot())
	hops := kinds["proxy/hop"]
	if len(hops) != 1 {
		t.Fatalf("proxy/hop spans = %d, want 1", len(hops))
	}
	handles := kinds["server/handle"]
	if len(handles) < 2 {
		t.Fatalf("server/handle spans = %d, want >= 2 (split fan-out)", len(handles))
	}
	servers := map[int]bool{}
	for _, h := range handles {
		if h.Trace != 99 || h.Parent != hops[0].ID {
			t.Errorf("handle %+v not under hop %d trace 99", h, hops[0].ID)
		}
		servers[h.Server] = true
	}
	if len(servers) < 2 {
		t.Errorf("fan-out hit %d servers, want >= 2", len(servers))
	}
}

func TestUntracedProxyPathRecordsNothing(t *testing.T) {
	tr := otrace.New(otrace.Options{})
	backends := startTracedBackends(t, 2, tr)
	_, addr := startProxy(t, Options{Upstreams: backends, Tracer: tr})
	c := dialConn(t, addr)
	c.set("plain", "v")
	c.send("get plain\r\n")
	if got := c.retrieval(); got["plain"] != "v" {
		t.Fatalf("get = %v", got)
	}
	if kept, total := tr.Stats(); kept != 0 || total != 0 {
		t.Errorf("untraced traffic recorded %d/%d spans", kept, total)
	}
}

func TestUpstreamQueueDepths(t *testing.T) {
	backends := startTracedBackends(t, 2, nil)
	p, addr := startProxy(t, Options{Upstreams: backends})
	depths := p.UpstreamQueueDepths()
	if len(depths) != 2 {
		t.Fatalf("depths = %v, want 2 entries", depths)
	}
	c := dialConn(t, addr)
	c.set("qk", "v")
	// Steady state: queues drain back to zero.
	for _, d := range p.UpstreamQueueDepths() {
		if d < 0 {
			t.Errorf("negative queue depth %d", d)
		}
	}
}
