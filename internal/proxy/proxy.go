// Package proxy is the mcrouter-style memcached proxy tier: it
// multiplexes many downstream client connections onto a small pool of
// pipelined upstream connections per server, routes keys with the same
// selectors a direct client uses (internal/route), and adds route
// policies on top — direct, primary-with-failover driven by the
// per-server circuit breaker, and replicated reads (fan out to r
// replicas, first reply wins). Multi-gets are split per owning server
// and rejoined fork-join style, which is the paper's fork-join point
// moved into the proxy.
//
// The data plane is allocation-free in steady state: commands are
// forwarded as the exact wire frames the protocol Parser captured
// (no re-parse, no re-serialization), pending-reply records are
// freelist-recycled, and replies relay through reusable buffers.
package proxy

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"memqlat/internal/otrace"
	"memqlat/internal/route"
	"memqlat/internal/telemetry"
	"memqlat/internal/tenant"
)

// Policy selects how the proxy routes keys to upstream servers.
type Policy int

const (
	// PolicyDirect routes every key to its selector-assigned owner.
	PolicyDirect Policy = iota
	// PolicyFailover routes to the owner unless its circuit breaker is
	// open, in which case the key fails over to the next ring successor
	// whose breaker admits traffic.
	PolicyFailover
	// PolicyReplicate fans single-key reads out to Replicas servers
	// (owner plus ring successors) and keeps the first reply; writes
	// broadcast to the same replica set so the copies stay coherent.
	PolicyReplicate
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyDirect:
		return "direct"
	case PolicyFailover:
		return "failover"
	case PolicyReplicate:
		return "replicate"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a policy name ("direct", "failover", "replicate").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "direct":
		return PolicyDirect, nil
	case "failover":
		return PolicyFailover, nil
	case "replicate":
		return PolicyReplicate, nil
	}
	return 0, fmt.Errorf("proxy: unknown route policy %q (known: direct, failover, replicate)", s)
}

// Options configures a Proxy.
type Options struct {
	// Upstreams are the memcached server addresses (required).
	Upstreams []string
	// Selector maps keys to upstream indices (default: ketama ring over
	// len(Upstreams) servers — the client's default, so proxied and
	// direct deployments agree on ownership).
	Selector route.Selector
	// Policy is the route policy (default PolicyDirect).
	Policy Policy
	// Replicas is the replication degree of PolicyReplicate (default 2,
	// capped at len(Upstreams)).
	Replicas int
	// UpstreamConns is the pipelined connection pool size per upstream
	// server (default 2). Keys stick to one connection by hash, so a
	// noreply write and a subsequent read of the same key stay ordered.
	UpstreamConns int
	// Breaker tunes the per-server circuit breaker PolicyFailover
	// consults (default route.BreakerPolicy zero value + defaults).
	Breaker *route.BreakerPolicy
	// DialTimeout bounds upstream dials (default 2s).
	DialTimeout time.Duration
	// UpstreamTimeout bounds waiting for one upstream reply (default
	// 5s); a timeout abandons the connection and fails its pipeline.
	UpstreamTimeout time.Duration
	// ReadBuffer / WriteBuffer size the per-connection bufio buffers
	// (default 16 KiB).
	ReadBuffer  int
	WriteBuffer int
	// Recorder, when set, receives StageProxyHop observations: the
	// forward-path cost (parse + route + upstream enqueue) per command.
	Recorder telemetry.Recorder
	// Tracer, when set, joins traced commands (ones preceded by an
	// mq_trace header) with a proxy hop span and re-propagates the
	// context to the upstream servers. Nil disables tracing.
	Tracer *otrace.Tracer
	// Tenants, when set, arms the multi-tenant QoS layer: every keyed
	// command is charged to the tenant its key prefix names, and
	// over-limit silver/bronze tenants are shed with a SERVER_ERROR
	// before anything queues upstream. Nil disables QoS entirely (no
	// per-command overhead).
	Tenants *tenant.Limiter
	// TenantClock supplies the admission clock in seconds for Tenants
	// (the run's fault.Clock on the live plane, so throttling starts at
	// the shared epoch). Default: wall seconds since proxy creation.
	TenantClock func() float64
	// Logger, when set, receives accept/teardown diagnostics.
	Logger *log.Logger
}

func (o Options) withDefaults() (Options, error) {
	if len(o.Upstreams) == 0 {
		return o, errors.New("proxy: at least one upstream required")
	}
	if o.Selector == nil {
		sel, err := route.NewRingSelector(len(o.Upstreams), 0)
		if err != nil {
			return o, err
		}
		o.Selector = sel
	}
	if o.Selector.N() != len(o.Upstreams) {
		return o, fmt.Errorf("proxy: selector for %d servers, %d upstreams",
			o.Selector.N(), len(o.Upstreams))
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > len(o.Upstreams) {
		o.Replicas = len(o.Upstreams)
	}
	if o.UpstreamConns <= 0 {
		o.UpstreamConns = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.UpstreamTimeout <= 0 {
		o.UpstreamTimeout = 5 * time.Second
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 16 << 10
	}
	if o.WriteBuffer <= 0 {
		o.WriteBuffer = 16 << 10
	}
	if o.Logger == nil {
		o.Logger = log.New(io.Discard, "", 0)
	}
	return o, nil
}

// Proxy is one proxy instance. Construct with New, drive with Serve
// (once per listener), stop with Close.
type Proxy struct {
	opts     Options
	sel      route.Selector
	rec      telemetry.Recorder
	tracer   *otrace.Tracer // nil = tracing disabled
	log      *log.Logger
	ups      [][]*upstream    // [server][conn]
	breakers []*route.Breaker // per server; nil unless PolicyFailover

	tenants   *tenant.Limiter // nil = QoS disabled
	tenantNow func() float64
	epoch     time.Time // default TenantClock base

	cmds        atomic.Int64 // commands dispatched
	forwarded   atomic.Int64 // upstream sends (legs count individually)
	failovers   atomic.Int64 // keys routed off their owner
	tenantSheds atomic.Int64 // commands shed by tenant QoS
	connSeq     atomic.Uint64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
}

// New validates opts and builds the upstream pool. Upstream connections
// dial lazily on first use.
func New(opts Options) (*Proxy, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		opts:      opts,
		sel:       opts.Selector,
		rec:       telemetry.OrNop(opts.Recorder),
		tracer:    opts.Tracer,
		log:       opts.Logger,
		tenants:   opts.Tenants,
		epoch:     time.Now(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	p.tenantNow = opts.TenantClock
	if p.tenantNow == nil {
		p.tenantNow = func() float64 { return time.Since(p.epoch).Seconds() }
	}
	p.ups = make([][]*upstream, len(opts.Upstreams))
	for s, addr := range opts.Upstreams {
		p.ups[s] = make([]*upstream, opts.UpstreamConns)
		for c := range p.ups[s] {
			p.ups[s][c] = &upstream{p: p, srv: s, addr: addr}
		}
	}
	if opts.Policy == PolicyFailover {
		var pol route.BreakerPolicy
		if opts.Breaker != nil {
			pol = *opts.Breaker
		}
		pol = *(&pol).WithDefaults()
		p.breakers = make([]*route.Breaker, len(opts.Upstreams))
		for i := range p.breakers {
			p.breakers[i] = route.NewBreaker(pol)
		}
	}
	return p, nil
}

// Serve accepts downstream connections on l until l or the proxy
// closes.
func (p *Proxy) Serve(l net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("proxy: closed")
	}
	p.listeners[l] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.listeners, l)
		p.mu.Unlock()
		_ = l.Close()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = nc.Close()
			return nil
		}
		p.conns[nc] = struct{}{}
		p.mu.Unlock()
		go func() {
			p.handleConn(nc, p.connSeq.Add(1))
			p.mu.Lock()
			delete(p.conns, nc)
			p.mu.Unlock()
		}()
	}
}

// Close stops the listeners, downstream connections and upstream pool.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for l := range p.listeners {
		_ = l.Close()
	}
	for nc := range p.conns {
		_ = nc.Close()
	}
	p.mu.Unlock()
	for _, conns := range p.ups {
		for _, u := range conns {
			u.close()
		}
	}
	return nil
}

// Stats is the proxy's introspection surface (and its "stats" reply).
type Stats struct {
	Commands    int64
	Forwarded   int64
	Failovers   int64
	TenantSheds int64
	Policy      Policy
	Upstreams   int
}

// Stats snapshots the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Commands:    p.cmds.Load(),
		Forwarded:   p.forwarded.Load(),
		Failovers:   p.failovers.Load(),
		TenantSheds: p.tenantSheds.Load(),
		Policy:      p.opts.Policy,
		Upstreams:   len(p.opts.Upstreams),
	}
}

// Tenants exposes the QoS limiter (nil when QoS is disabled) so the
// admin plane can register per-tenant metric families.
func (p *Proxy) Tenants() *tenant.Limiter { return p.tenants }

// BreakerState reports upstream srv's breaker state ("disabled" unless
// PolicyFailover).
func (p *Proxy) BreakerState(srv int) string {
	if p.breakers == nil || srv < 0 || srv >= len(p.breakers) {
		return "disabled"
	}
	return p.breakers[srv].State()
}

// routeKey picks the serving upstream for key: the selector's owner,
// shifted to the next ring successor with a closed breaker under
// PolicyFailover.
func (p *Proxy) routeKey(key []byte) int {
	srv := route.PickKey(p.sel, key)
	if p.breakers == nil {
		return srv
	}
	n := p.sel.N()
	now := time.Now()
	for i := 0; i < n; i++ {
		s := srv + i
		if s >= n {
			s -= n
		}
		if p.breakers[s].Allow(now) {
			if i > 0 {
				p.failovers.Add(1)
			}
			return s
		}
	}
	return srv
}

// recordOutcome feeds the failover breakers (no-op otherwise).
func (p *Proxy) recordOutcome(srv int, failure bool) {
	if p.breakers == nil || srv < 0 {
		return
	}
	p.breakers[srv].Record(failure, time.Now())
}

// UpstreamQueueDepths snapshots the outstanding pipelined requests per
// upstream server (summed over that server's connections) — the proxy's
// queue-depth gauge on the admin plane.
func (p *Proxy) UpstreamQueueDepths() []int {
	out := make([]int, len(p.ups))
	for s, conns := range p.ups {
		for _, u := range conns {
			u.mu.Lock()
			if u.cur != nil && !u.cur.broken {
				out[s] += len(u.cur.pend)
			}
			u.mu.Unlock()
		}
	}
	return out
}

// connFor maps a key hash to an upstream connection index. Keys stick
// to one pipelined connection so noreply writes and subsequent reads of
// the same key serialize on one upstream FIFO.
func (p *Proxy) connFor(h uint64) int {
	return int((h >> 33) % uint64(p.opts.UpstreamConns))
}
