package proxy

// BenchmarkProxyQoS measures the tenant admission check on the proxy
// data plane. The contract gated by BENCH_proxy.json: arming the QoS
// layer adds zero allocations per op to the get passthrough — both
// when the command is admitted (prefix lookup + bucket math + per-
// tenant latency record) and when it is shed (local SERVER_ERROR via
// the recycled pending freelist).

import (
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"memqlat/internal/cache"
	"memqlat/internal/server"
	"memqlat/internal/tenant"
)

func qosBenchKey(i int) string { return fmt.Sprintf("t:%04d", i%benchKeys) }

// startQoSBenchProxy brings up one backend populated with tenant-
// prefixed keys and a QoS-armed proxy in front of it.
func startQoSBenchProxy(b *testing.B, specs []tenant.Spec) string {
	b.Helper()
	c, err := cache.New(cache.Options{MaxBytes: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	value := []byte(strings.Repeat("v", benchValueLen))
	for i := 0; i < benchKeys; i++ {
		if err := c.Set(qosBenchKey(i), value, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := server.New(server.Options{Cache: c, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		b.Fatal(err)
	}
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(sl) }()
	b.Cleanup(func() { _ = srv.Close() })
	lim, err := tenant.New(specs)
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(Options{
		Upstreams: []string{sl.Addr().String()},
		Tenants:   lim,
		Logger:    log.New(io.Discard, "", 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = p.Serve(pl) }()
	b.Cleanup(func() { _ = p.Close() })
	return pl.Addr().String()
}

func BenchmarkProxyQoS(b *testing.B) {
	for _, bc := range []struct {
		name string
		spec tenant.Spec
	}{
		// admitted: the bucket never runs dry — pure admission overhead
		// on top of the get passthrough.
		{"get-admitted/conns=1", tenant.Spec{Name: "t", Rate: 1e12, Burst: 1e9}},
		// shed: the bucket starts empty and refills at a negligible
		// rate — measures the shed-before-queue fast path.
		{"get-shed/conns=1", tenant.Spec{Name: "t", Rate: 1e-9, Burst: 1e-9}},
	} {
		shed := bc.spec.Rate < 1
		b.Run(bc.name, func(b *testing.B) {
			addr := startQoSBenchProxy(b, []tenant.Spec{bc.spec})
			const ops = 64
			var sb strings.Builder
			for i := 0; i < ops; i++ {
				fmt.Fprintf(&sb, "get %s\r\n", qosBenchKey(i))
			}
			batch := []byte(sb.String())
			valueBlock := len("VALUE t:0000 0 100\r\n") + benchValueLen + 2
			respLen := ops * (valueBlock + len("END\r\n"))
			if shed {
				respLen = ops * len(tenantShedLine)
			}
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				b.Fatal(err)
			}
			defer nc.Close()
			resp := make([]byte, respLen)
			pump := func() error {
				if _, err := nc.Write(batch); err != nil {
					return err
				}
				_, err := io.ReadFull(nc, resp)
				return err
			}
			for i := 0; i < 4; i++ {
				if err := pump(); err != nil {
					b.Fatal(err)
				}
			}
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			var wg sync.WaitGroup
			errs := make(chan error, 1)
			b.ReportAllocs()
			b.ResetTimer()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for remaining.Add(-ops) > -ops {
					if err := pump(); err != nil {
						errs <- err
						return
					}
				}
			}()
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
		})
	}
}
