package proxy

import (
	"fmt"
	"math"
	"testing"

	"memqlat/internal/telemetry"
	"memqlat/internal/tenant"
)

func qosLimiter(t testing.TB, specs ...tenant.Spec) *tenant.Limiter {
	t.Helper()
	l, err := tenant.New(specs)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestProxyTenantShedding drives an over-limit silver tenant and an
// unlimited victim through one proxy: the aggressor sheds with the
// tenant SERVER_ERROR once its bucket drains, the victim never sheds,
// and counters/telemetry agree with the wire.
func TestProxyTenantShedding(t *testing.T) {
	addrs := startBackends(t, 1)
	lim := qosLimiter(t,
		tenant.Spec{Name: "evil", Rate: 1000, Burst: 2},
		tenant.Spec{Name: "acme"},
	)
	clock := 0.0
	col := telemetry.NewCollector()
	p, addr := startProxy(t, Options{
		Upstreams:   addrs,
		Tenants:     lim,
		TenantClock: func() float64 { return clock }, // frozen: no refill
		Recorder:    col,
	})
	c := dialConn(t, addr)
	c.set("acme:1", "victimvalue")
	c.set("evil:1", "aggressorvalue") // 1 of 2 burst tokens

	// Burst is 2 ops and the clock is frozen: one more op admits,
	// everything after sheds.
	c.send("get evil:1\r\n")
	if got := c.retrieval(); got["evil:1"] != "aggressorvalue" {
		t.Fatalf("admitted read lost: %v", got)
	}
	for i := 0; i < 3; i++ {
		c.send("get evil:1\r\n")
		c.expect(tenant.ShedMsg)
	}
	// The victim is untouched by the aggressor's empty bucket.
	for i := 0; i < 5; i++ {
		c.send("get acme:1\r\n")
		if got := c.retrieval(); got["acme:1"] != "victimvalue" {
			t.Fatalf("victim read lost: %v", got)
		}
	}
	// Refill: one second at 1000/s refills to the burst cap.
	clock = 1.0
	c.send("get evil:1\r\n")
	if got := c.retrieval(); got["evil:1"] != "aggressorvalue" {
		t.Fatalf("refilled read lost: %v", got)
	}

	st := p.Stats()
	if st.TenantSheds != 3 {
		t.Fatalf("TenantSheds = %d, want 3", st.TenantSheds)
	}
	evil := lim.Lookup("evil").Snapshot()
	acme := lim.Lookup("acme").Snapshot()
	if evil.Shed != 3 {
		t.Fatalf("evil shed = %d, want 3", evil.Shed)
	}
	if acme.Shed != 0 {
		t.Fatalf("acme shed = %d, want 0", acme.Shed)
	}
	if acme.Admitted != 6 { // 1 set + 5 gets
		t.Fatalf("acme admitted = %d, want 6", acme.Admitted)
	}
	if bd := col.Breakdown(); bd[telemetry.StageTenantShed].Count != 3 {
		t.Fatalf("tenant_shed stage count = %d, want 3", bd[telemetry.StageTenantShed].Count)
	}
	if lim.Lookup("acme").Latency().Count() == 0 {
		t.Fatal("admitted commands must feed the per-tenant latency histogram")
	}

	// The stats command reports the per-tenant rows.
	c.send("stats\r\n")
	rows := map[string]string{}
	for {
		line := c.line()
		if line == "END" {
			break
		}
		var k, v string
		if _, err := fmt.Sscanf(line, "STAT %s %s", &k, &v); err != nil {
			t.Fatalf("bad stats line %q", line)
		}
		rows[k] = v
	}
	if rows["tenant_sheds"] != "3" || rows["tenant_evil_shed"] != "3" || rows["tenant_acme_shed"] != "0" {
		t.Fatalf("stats rows = %v", rows)
	}
}

// TestProxyTenantByteQuota sheds storage traffic on bytes while reads
// (zero stored bytes) keep flowing.
func TestProxyTenantByteQuota(t *testing.T) {
	addrs := startBackends(t, 1)
	lim := qosLimiter(t, tenant.Spec{Name: "blob", ByteRate: 100, ByteBurst: 150})
	_, addr := startProxy(t, Options{
		Upstreams:   addrs,
		Tenants:     lim,
		TenantClock: func() float64 { return 0 },
	})
	c := dialConn(t, addr)
	c.set("blob:1", string(make([]byte, 120))) // 150 -> 30 byte tokens
	c.send(fmt.Sprintf("set blob:2 0 0 %d\r\n%s\r\n", 120, string(make([]byte, 120))))
	c.expect(tenant.ShedMsg)
	c.send("get blob:1\r\n")
	if got := c.retrieval(); len(got["blob:1"]) != 120 {
		t.Fatalf("read after byte shed: %v", got)
	}
	s := lim.Lookup("blob").Snapshot()
	if s.ShedBytes != 120 || s.AdmBytes != 120 {
		t.Fatalf("byte accounting: adm=%d shed=%d", s.AdmBytes, s.ShedBytes)
	}
}

// TestProxyTenantNoreplyShedDropped: a shed noreply write is dropped
// silently — no reply line that would desynchronize the pipeline.
func TestProxyTenantNoreplyShedDropped(t *testing.T) {
	addrs := startBackends(t, 1)
	lim := qosLimiter(t, tenant.Spec{Name: "q", Rate: 10, Burst: 1})
	p, addr := startProxy(t, Options{
		Upstreams:   addrs,
		Tenants:     lim,
		TenantClock: func() float64 { return 0 },
	})
	c := dialConn(t, addr)
	c.send("set q:1 0 0 1 noreply\r\na\r\n") // admitted (burst 1)
	c.send("set q:2 0 0 1 noreply\r\nb\r\n") // shed, no reply
	c.send("version\r\n")                    // control plane: exempt
	c.expect("VERSION memqlat-proxy")
	if s := lim.Lookup("q").Snapshot(); s.Shed != 1 || s.Admitted != 1 {
		t.Fatalf("noreply accounting: %+v", s)
	}
	if st := p.Stats(); st.TenantSheds != 1 {
		t.Fatalf("TenantSheds = %d", st.TenantSheds)
	}
}

// TestProxyTenantMultigetCharge: an n-key get charges n op tokens to
// the first key's tenant (matching the sim's per-key charging).
func TestProxyTenantMultigetCharge(t *testing.T) {
	addrs := startBackends(t, 1)
	lim := qosLimiter(t, tenant.Spec{Name: "mg", Rate: 10, Burst: 4})
	_, addr := startProxy(t, Options{
		Upstreams:   addrs,
		Tenants:     lim,
		TenantClock: func() float64 { return 0 },
	})
	c := dialConn(t, addr)
	c.send("get mg:1 mg:2 mg:3\r\n") // 3 tokens of 4
	c.retrieval()
	c.send("get mg:1 mg:2\r\n") // needs 2, only 1 left
	c.expect(tenant.ShedMsg)
	if s := lim.Lookup("mg").Snapshot(); s.Admitted != 3 || s.Shed != 2 {
		t.Fatalf("multiget accounting: %+v", s)
	}
}

// TestProxyTenantGoldNeverShed: gold tenants blast past their nominal
// rate without a single shed.
func TestProxyTenantGoldNeverShed(t *testing.T) {
	addrs := startBackends(t, 1)
	lim := qosLimiter(t, tenant.Spec{Name: "vip", Class: tenant.ClassGold, Rate: 1, Burst: 1})
	_, addr := startProxy(t, Options{
		Upstreams:   addrs,
		Tenants:     lim,
		TenantClock: func() float64 { return 0 },
	})
	c := dialConn(t, addr)
	c.set("vip:1", "x")
	for i := 0; i < 20; i++ {
		c.send("get vip:1\r\n")
		if got := c.retrieval(); got["vip:1"] != "x" {
			t.Fatalf("gold read %d lost: %v", i, got)
		}
	}
	if s := lim.Lookup("vip").Snapshot(); s.Shed != 0 || s.Admitted != 21 {
		t.Fatalf("gold accounting: %+v", s)
	}
}

// TestProxyTenantDefaultClockThrottles: without an explicit
// TenantClock the proxy meters on wall seconds since creation, so a
// tight bucket still sheds under a burst.
func TestProxyTenantDefaultClockThrottles(t *testing.T) {
	addrs := startBackends(t, 1)
	lim := qosLimiter(t, tenant.Spec{Name: "w", Rate: 1, Burst: 2})
	_, addr := startProxy(t, Options{Upstreams: addrs, Tenants: lim})
	c := dialConn(t, addr)
	c.set("w:1", "x")
	sheds := 0
	for i := 0; i < 10; i++ {
		c.send("get w:1\r\n")
		if line := c.line(); line == tenant.ShedMsg {
			sheds++
			continue
		}
		// consume the rest of the retrieval reply
		if _, err := c.r.ReadString('\n'); err != nil { // value line
			t.Fatal(err)
		}
		c.expect("END")
	}
	if sheds == 0 {
		t.Fatal("tight bucket on the wall clock never shed")
	}
	if s := lim.Lookup("w").Snapshot(); s.Shed != int64(sheds) {
		t.Fatalf("limiter shed %d, wire saw %d", s.Shed, sheds)
	}
}

// TestProxyTenantPreStartClockAdmitsAll: a -Inf clock (fault.Clock
// before Start) admits everything — the populate phase runs
// unthrottled.
func TestProxyTenantPreStartClockAdmitsAll(t *testing.T) {
	addrs := startBackends(t, 1)
	lim := qosLimiter(t, tenant.Spec{Name: "p", Rate: 1, Burst: 1})
	_, addr := startProxy(t, Options{
		Upstreams:   addrs,
		Tenants:     lim,
		TenantClock: func() float64 { return math.Inf(-1) },
	})
	c := dialConn(t, addr)
	for i := 0; i < 20; i++ {
		c.set(fmt.Sprintf("p:%d", i), "x")
	}
	if s := lim.Lookup("p").Snapshot(); s.Shed != 0 || s.Admitted != 20 {
		t.Fatalf("pre-start accounting: %+v", s)
	}
}
