package proxy

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"memqlat/internal/protocol"
)

// pendQueueDepth bounds outstanding pipelined requests per upstream
// connection; a full pipeline breaks the connection rather than block a
// sender that holds the pool lock.
const pendQueueDepth = 4096

var (
	errPipelineFull     = errors.New("proxy: upstream pipeline full")
	errUpstreamProtocol = errors.New("proxy: upstream protocol desync")
)

// upstream is one pipelined connection slot to one server: at most one
// live uconn at a time, redialed lazily after a break.
type upstream struct {
	p    *Proxy
	srv  int
	addr string

	mu  sync.Mutex
	cur *uconn
}

// uconn is one live upstream connection. Writers append frames to w and
// enqueue the matching pending on pend (both under upstream.mu); the
// readLoop goroutine pops pendings in FIFO order — the order the server
// replies in — and resolves each against its downstream.
type uconn struct {
	u    *upstream
	nc   net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	pend chan *pending

	broken  bool // guarded by u.mu; set exactly once
	scratch []byte
}

// send writes frame to the upstream pipeline and registers pd (nil for
// noreply fire-and-forget) for the matching reply. hdr, when non-empty,
// is an mq_trace header written immediately before frame under the same
// lock, so no other downstream's frame can interleave and steal the
// trace scope. flush pushes the write buffer immediately; otherwise the
// readLoop flushes when it starts waiting on a reply. Once pd is
// enqueued the read loop owns its resolution, so send reports only
// pre-enqueue failures to the caller.
func (u *upstream) send(hdr, frame []byte, pd *pending, flush bool) error {
	u.mu.Lock()
	c := u.cur
	if c == nil || c.broken {
		var err error
		if c, err = u.dialLocked(); err != nil {
			u.mu.Unlock()
			return err
		}
	}
	if len(hdr) > 0 {
		if _, err := c.w.Write(hdr); err != nil {
			u.breakLocked(c)
			u.mu.Unlock()
			return err
		}
	}
	if _, err := c.w.Write(frame); err != nil {
		u.breakLocked(c)
		u.mu.Unlock()
		return err
	}
	if pd != nil {
		select {
		case c.pend <- pd:
		default:
			u.breakLocked(c)
			u.mu.Unlock()
			return errPipelineFull
		}
	}
	if flush {
		if err := c.w.Flush(); err != nil {
			u.breakLocked(c)
			u.mu.Unlock()
			if pd != nil {
				// The read loop drains the broken pipeline and fails pd;
				// reporting the error here would resolve it twice.
				return nil
			}
			return err
		}
	}
	u.mu.Unlock()
	return nil
}

// dialLocked establishes a fresh uconn and starts its read loop (caller
// holds u.mu).
func (u *upstream) dialLocked() (*uconn, error) {
	nc, err := net.DialTimeout("tcp", u.addr, u.p.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &uconn{
		u:    u,
		nc:   nc,
		r:    bufio.NewReaderSize(nc, u.p.opts.ReadBuffer),
		w:    bufio.NewWriterSize(nc, u.p.opts.WriteBuffer),
		pend: make(chan *pending, pendQueueDepth),
	}
	u.cur = c
	go c.readLoop()
	return c, nil
}

// breakLocked retires a uconn: no further sends land on it, its pend
// channel closes so the read loop can finish draining, and the socket
// closes to unblock any in-flight read (caller holds u.mu).
func (u *upstream) breakLocked(c *uconn) {
	if c.broken {
		return
	}
	c.broken = true
	close(c.pend)
	_ = c.nc.Close()
}

// abandon is breakLocked for callers that do not hold u.mu.
func (u *upstream) abandon(c *uconn) {
	u.mu.Lock()
	u.breakLocked(c)
	u.mu.Unlock()
}

// close tears the upstream down (proxy shutdown).
func (u *upstream) close() {
	u.mu.Lock()
	if u.cur != nil {
		u.breakLocked(u.cur)
	}
	u.mu.Unlock()
}

// readLoop resolves pendings in pipeline order. A processing error
// means the connection's reply stream is unusable: the conn is retired
// and every remaining pending fails with SERVER_ERROR.
func (c *uconn) readLoop() {
	for pd := range c.pend {
		if err := c.process(pd); err != nil {
			c.u.abandon(c)
			for pd := range c.pend {
				c.failPending(pd)
			}
			return
		}
	}
}

// process reads one reply off the wire and resolves pd. It fully
// resolves pd in every case; a non-nil return means the uconn must be
// abandoned (reply stream desynced or dead).
func (c *uconn) process(pd *pending) error {
	u := c.u
	u.mu.Lock()
	if !c.broken {
		if err := c.w.Flush(); err != nil {
			u.breakLocked(c)
		}
	}
	u.mu.Unlock()
	_ = c.nc.SetReadDeadline(time.Now().Add(u.p.opts.UpstreamTimeout))

	switch pd.role {
	case roleDirect:
		return c.processDirect(pd)
	case rolePart:
		return c.processPart(pd)
	case roleRaceLeg:
		return c.processRaceLeg(pd)
	case roleJoinLine:
		return c.processJoinLine(pd)
	}
	return errUpstreamProtocol
}

// processDirect relays an unsplit passthrough reply: streamed straight
// to the downstream socket when pd heads the reply queue (the zero-copy
// hot path), buffered into pd otherwise.
func (c *uconn) processDirect(pd *pending) error {
	d := pd.d
	srv := pd.srv
	d.mu.Lock()
	if pd == d.head && d.err == nil {
		fail, err := c.copyReply(dsWriter{d}, pd.kind, false)
		if err != nil {
			// The downstream stream may hold a partial reply; its framing
			// cannot be recovered.
			d.poisonLocked(err)
		}
		pd.done = true
		d.advanceLocked()
		d.mu.Unlock()
		c.u.p.recordOutcome(srv, err != nil || fail)
		return err
	}
	start := len(pd.buf)
	fail, err := c.copyReply(appender{&pd.buf}, pd.kind, false)
	if err != nil {
		pd.buf = append(pd.buf[:start], serverErrorLine...)
	}
	pd.done = true
	d.advanceLocked()
	d.mu.Unlock()
	c.u.p.recordOutcome(srv, err != nil || fail)
	return err
}

// processPart folds one split-multi-get part into its join slot: VALUE
// blocks append, the part's END (or error line) is swallowed, and the
// last part to land appends the joined reply's END. A failed part
// degrades its keys to misses.
func (c *uconn) processPart(pd *pending) error {
	d := pd.d
	srv := pd.srv
	d.mu.Lock()
	slot := pd.slot
	start := len(slot.buf)
	fail, err := c.copyReply(appender{&slot.buf}, kindRetrieval, true)
	if err != nil || fail {
		slot.buf = slot.buf[:start]
	}
	slot.remaining--
	if slot.remaining == 0 {
		slot.buf = append(slot.buf, "END\r\n"...)
		slot.done = true
	}
	d.finishLegLocked(pd, slot)
	d.mu.Unlock()
	c.u.p.recordOutcome(srv, err != nil || fail)
	return err
}

// processRaceLeg resolves one replicated-read leg: the first leg whose
// reply bytes arrive claims the slot; losers drain their replies to
// keep the pipeline aligned.
func (c *uconn) processRaceLeg(pd *pending) error {
	d := pd.d
	srv := pd.srv
	_, perr := c.r.Peek(1)
	d.mu.Lock()
	slot := pd.slot
	if perr != nil {
		slot.remaining--
		if !slot.claimed && !slot.done && slot.remaining == 0 {
			slot.buf = append(slot.buf[:0], serverErrorLine...)
			slot.done = true
		}
		d.finishLegLocked(pd, slot)
		d.mu.Unlock()
		c.u.p.recordOutcome(srv, true)
		return perr
	}
	if !slot.claimed && !slot.done && d.err == nil {
		slot.claimed = true
		fail, err := c.copyReply(appender{&slot.buf}, kindRetrieval, false)
		if err != nil {
			slot.buf = slot.buf[:0]
			slot.claimed = false
			slot.remaining--
			if slot.remaining == 0 {
				slot.buf = append(slot.buf[:0], serverErrorLine...)
				slot.done = true
			}
			d.finishLegLocked(pd, slot)
			d.mu.Unlock()
			c.u.p.recordOutcome(srv, true)
			return err
		}
		slot.done = true
		slot.remaining--
		d.finishLegLocked(pd, slot)
		d.mu.Unlock()
		c.u.p.recordOutcome(srv, fail)
		return nil
	}
	// Loser: the slot is already resolved; discard this leg's reply
	// outside the downstream lock.
	slot.remaining--
	d.finishLegLocked(pd, slot)
	d.mu.Unlock()
	fail, err := c.copyReply(io.Discard, kindRetrieval, false)
	c.u.p.recordOutcome(srv, err != nil || fail)
	return err
}

// processJoinLine folds one broadcast reply line into its join slot
// (error lines win the fold).
func (c *uconn) processJoinLine(pd *pending) error {
	line, err := c.r.ReadSlice('\n')
	srv := pd.srv
	if err != nil {
		pd.d.legFold(pd, serverErrorBytes, true)
		c.u.p.recordOutcome(srv, true)
		return err
	}
	fail := isErrLine(line)
	pd.d.legFold(pd, line, fail)
	c.u.p.recordOutcome(srv, fail)
	return nil
}

// failPending resolves a pending whose reply will never arrive (broken
// pipeline drain).
func (c *uconn) failPending(pd *pending) {
	d := pd.d
	srv := pd.srv
	switch pd.role {
	case roleDirect:
		d.failSlot(pd)
	case rolePart, roleRaceLeg:
		d.legDone(pd, true)
	case roleJoinLine:
		d.legFold(pd, serverErrorBytes, true)
	}
	c.u.p.recordOutcome(srv, true)
}

// copyReply relays one reply from the upstream stream into dst.
// kindLine replies are a single terminal line; kindRetrieval replies
// are VALUE blocks closed by END or an error line. partMode swallows
// the terminal line (split-join parts contribute only VALUE blocks).
// fail reports an error-line reply; a non-nil error means the stream is
// desynced and the conn must go.
func (c *uconn) copyReply(dst io.Writer, kind replyKind, partMode bool) (fail bool, err error) {
	for {
		line, err := c.r.ReadSlice('\n')
		if err != nil {
			return false, err
		}
		if kind == kindRetrieval && hasPrefix(line, "VALUE ") {
			n, ok := valueLineBytes(line)
			if !ok {
				return false, errUpstreamProtocol
			}
			if _, werr := dst.Write(line); werr != nil {
				return false, werr
			}
			if cerr := c.copyN(dst, n+2); cerr != nil {
				return false, cerr
			}
			continue
		}
		isErr := isErrLine(line)
		if !partMode {
			if _, werr := dst.Write(line); werr != nil {
				return false, werr
			}
		}
		if kind == kindRetrieval && !isErr && !isEnd(line) {
			// A retrieval stream may only close with END or an error line;
			// anything else means we lost framing.
			return true, errUpstreamProtocol
		}
		return isErr, nil
	}
}

// copyN relays exactly n upstream bytes to dst through the conn's
// reusable scratch buffer.
func (c *uconn) copyN(dst io.Writer, n int) error {
	if cap(c.scratch) == 0 {
		c.scratch = make([]byte, 32<<10)
	}
	buf := c.scratch[:cap(c.scratch)]
	for n > 0 {
		chunk := n
		if chunk > len(buf) {
			chunk = len(buf)
		}
		if _, err := io.ReadFull(c.r, buf[:chunk]); err != nil {
			return err
		}
		if _, err := dst.Write(buf[:chunk]); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

// dsWriter streams reply bytes straight to the downstream socket's
// buffered writer (caller holds d.mu). Downstream write failures poison
// the downstream but report success, so the upstream reply finishes
// draining and the pipeline stays aligned.
type dsWriter struct{ d *downstream }

func (w dsWriter) Write(p []byte) (int, error) {
	d := w.d
	if d.err == nil {
		if _, err := d.w.Write(p); err != nil {
			d.poisonLocked(err)
		}
	}
	return len(p), nil
}

// appender accumulates reply bytes into a pending's reusable buffer.
// It is a one-pointer struct so converting it to io.Writer does not
// allocate (pointer-shaped values box directly).
type appender struct{ buf *[]byte }

func (a appender) Write(p []byte) (int, error) {
	*a.buf = append(*a.buf, p...)
	return len(p), nil
}

// valueLineBytes extracts the <bytes> field of a "VALUE <key> <flags>
// <bytes> [<cas>]" line.
func valueLineBytes(line []byte) (int, bool) {
	i, field := 0, 0
	for field < 3 {
		for i < len(line) && line[i] != ' ' {
			i++
		}
		for i < len(line) && line[i] == ' ' {
			i++
		}
		field++
	}
	n, start := 0, i
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		n = n*10 + int(line[i]-'0')
		if n > protocol.MaxValueBytes {
			return 0, false
		}
		i++
	}
	return n, i > start
}

// isEnd reports whether line is the END terminator of a retrieval.
func isEnd(line []byte) bool {
	return len(line) >= 3 && line[0] == 'E' && line[1] == 'N' && line[2] == 'D' &&
		(len(line) == 3 || line[3] == '\r' || line[3] == '\n')
}
