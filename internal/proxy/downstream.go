package proxy

import (
	"bufio"
	"errors"
	"net"
	"strconv"
	"sync"
	"time"

	"memqlat/internal/otrace"
	"memqlat/internal/protocol"
	"memqlat/internal/route"
	"memqlat/internal/telemetry"
	"memqlat/internal/tenant"
)

// replyKind is the wire framing of one upstream reply.
type replyKind uint8

const (
	// kindLine is a single terminal line (STORED, DELETED, a number, …).
	kindLine replyKind = iota
	// kindRetrieval is zero or more VALUE blocks closed by END (or an
	// error line).
	kindRetrieval
)

// role distinguishes how a pending participates in reply assembly.
type role uint8

const (
	// roleDirect is both the upstream leg and the downstream reply slot:
	// the unsplit passthrough hot path.
	roleDirect role = iota
	// roleSlot is a downstream reply slot fed by separate legs (split
	// multi-get join, replicated-read race, or a local reply).
	roleSlot
	// rolePart is one upstream leg of a split multi-get; its VALUE
	// blocks append to the slot, its END is swallowed.
	rolePart
	// roleRaceLeg is one upstream leg of a replicated read; the first
	// to produce bytes claims the slot, the rest drain.
	roleRaceLeg
	// roleJoinLine is one upstream leg of a line-reply broadcast
	// (replicated write, flush_all); lines fold into the slot with
	// error lines preferred.
	roleJoinLine
)

// pending is one entry of the in-order reply machinery: downstream
// slots queue in command order, upstream legs feed them. Instances are
// freelist-recycled per downstream, so the steady-state data plane
// allocates nothing.
type pending struct {
	d    *downstream
	slot *pending // legs: the slot they feed
	next *pending
	kind replyKind
	role role
	srv  int // origin upstream (breaker bookkeeping)

	done      bool   // slot: reply bytes complete
	popped    bool   // slot: left the queue (awaiting straggler legs)
	claimed   bool   // race slot: a winner is delivering
	remaining int    // slot: outstanding legs
	buf       []byte // buffered reply bytes (reused)
}

// downstream is one client connection's state: the parser side runs in
// the handler goroutine; the reply queue is shared with the upstream
// readers under mu.
type downstream struct {
	p   *Proxy
	nc  net.Conn
	w   *bufio.Writer
	rec telemetry.Recorder

	mu     sync.Mutex
	cond   *sync.Cond
	head   *pending
	tail   *pending
	free   *pending
	err    error // poisoned output stream
	groups []splitGroup

	// trace is the pending mq_trace header from the client: it scopes
	// the next command. hdr is the regenerated upstream header for the
	// in-flight dispatch (reused buffer; empty when untraced).
	trace otrace.Ctx
	hdr   []byte
}

// splitGroup accumulates one (server, connection) share of a split
// multi-get; the slice is reused across commands.
type splitGroup struct {
	srv, conn int
	frame     []byte
	used      bool
}

func (p *Proxy) handleConn(nc net.Conn, hint uint64) {
	defer func() { _ = nc.Close() }()
	d := &downstream{
		p:   p,
		nc:  nc,
		w:   bufio.NewWriterSize(nc, p.opts.WriteBuffer),
		rec: telemetry.Shard(p.rec, hint),
	}
	d.cond = sync.NewCond(&d.mu)
	br := bufio.NewReaderSize(nc, p.opts.ReadBuffer)
	parser := protocol.NewParser(br)
	parser.CaptureFrames(true)
	for {
		cmd, err := parser.Next()
		if err != nil {
			var ce *protocol.ClientError
			if errors.As(err, &ce) {
				d.localLine("CLIENT_ERROR " + ce.Msg + "\r\n")
				continue
			}
			// quit, EOF or a broken connection: deliver what is owed,
			// then hang up.
			d.drain()
			return
		}
		if cmd.Op == protocol.OpTrace {
			// Trace header: scope the next command. No reply, no
			// forwarding — the proxy re-propagates it per upstream leg.
			d.trace = otrace.Ctx{Trace: cmd.CAS, Span: cmd.Delta}
			continue
		}
		start := time.Now()
		tn := p.dispatch(d, cmd, parser.Frame(), br.Buffered() == 0)
		hop := time.Since(start).Seconds()
		d.rec.Observe(telemetry.StageProxyHop, hop)
		if tn != nil {
			tn.Observe(hop)
		}
		if d.poisoned() {
			return
		}
	}
}

// dispatch routes one parsed command. frame is the exact wire bytes
// (Parser.Frame), valid only for the duration of the call — sends copy
// it into upstream write buffers synchronously. It returns the tenant
// the command was admitted for (nil when QoS is off, the command is
// control-plane, or it was shed) so the caller can charge the hop
// latency to the right tenant.
func (p *Proxy) dispatch(d *downstream, cmd *protocol.Command, frame []byte, flush bool) *tenant.Tenant {
	p.cmds.Add(1)
	var tn *tenant.Tenant
	if p.tenants != nil {
		var admitted bool
		tn, admitted = p.admit(cmd)
		if !admitted {
			p.tenantSheds.Add(1)
			d.rec.Observe(telemetry.StageTenantShed, 0)
			d.trace = otrace.Ctx{} // a shed command consumes its trace scope
			if !cmd.Noreply {
				d.localLine(tenantShedLine)
			}
			return nil
		}
	}
	// A traced command gets a hop span covering the forward path (the
	// same window StageProxyHop measures) and a regenerated header that
	// parents every upstream leg under the hop.
	var hop otrace.Span
	d.hdr = d.hdr[:0]
	if tc := d.trace; tc.Valid() {
		d.trace = otrace.Ctx{}
		if tr := p.tracer; tr.Enabled() {
			hop = tr.Begin(tc, "proxy", "hop", -1)
			d.hdr = appendTraceHeader(d.hdr, hop.Trace, hop.ID)
		}
	}
	defer p.tracer.End(hop)
	switch cmd.Op {
	case protocol.OpGet, protocol.OpGets, protocol.OpGat, protocol.OpGats:
		p.dispatchRead(d, cmd, frame, flush)
	case protocol.OpStats:
		d.localStats()
	case protocol.OpVersion:
		d.localLine("VERSION memqlat-proxy\r\n")
	case protocol.OpVerbosity:
		// Accepted and ignored, like memcached.
		if !cmd.Noreply {
			d.localLine("OK\r\n")
		}
	case protocol.OpFlushAll:
		p.broadcast(d, frame, cmd.Noreply, flush, -1, 0)
	default:
		// Keyed single-reply ops: storage, delete, incr/decr, touch.
		if p.opts.Policy == PolicyReplicate {
			h := route.Hash64B(cmd.KeyB)
			p.broadcast(d, frame, cmd.Noreply, flush, route.PickKey(p.sel, cmd.KeyB), h)
		} else {
			h := route.Hash64B(cmd.KeyB)
			p.forward(d, frame, kindLine, p.routeKey(cmd.KeyB), p.connFor(h), flush, cmd.Noreply)
		}
	}
	return tn
}

// admit runs the tenant QoS check for one command: keyed commands are
// charged to the tenant their (first) key's prefix names — one op
// token per key, plus stored bytes for the storage family — and
// control-plane commands (stats, version, verbosity, flush_all) pass
// free. Zero-alloc: prefix lookup and bucket math only.
func (p *Proxy) admit(cmd *protocol.Command) (*tenant.Tenant, bool) {
	var key []byte
	ops, nbytes := 1, 0
	switch cmd.Op {
	case protocol.OpGet, protocol.OpGets, protocol.OpGat, protocol.OpGats:
		if len(cmd.KeyList) == 0 {
			return nil, true
		}
		key, ops = cmd.KeyList[0], len(cmd.KeyList)
	case protocol.OpStats, protocol.OpVersion, protocol.OpVerbosity, protocol.OpFlushAll:
		return nil, true
	default:
		key, nbytes = cmd.KeyB, len(cmd.Value)
	}
	tn := p.tenants.FromKey(key)
	if !tn.Admit(p.tenantNow(), ops, nbytes) {
		return tn, false
	}
	return tn, true
}

// dispatchRead handles the retrieval family: direct passthrough when
// every key lands on one upstream connection, fork-join split
// otherwise, first-reply-wins racing for single-key reads under
// PolicyReplicate.
func (p *Proxy) dispatchRead(d *downstream, cmd *protocol.Command, frame []byte, flush bool) {
	keys := cmd.KeyList
	if p.opts.Policy == PolicyReplicate && len(keys) == 1 {
		p.raceRead(d, keys[0], frame, flush)
		return
	}
	srv0, conn0, single := 0, 0, true
	for i, k := range keys {
		h := route.Hash64B(k)
		srv, conn := p.routeKey(k), p.connFor(h)
		if i == 0 {
			srv0, conn0 = srv, conn
		} else if srv != srv0 || conn != conn0 {
			single = false
			break
		}
	}
	if single {
		p.forward(d, frame, kindRetrieval, srv0, conn0, flush, false)
		return
	}
	p.splitRead(d, cmd, flush)
}

// forward sends frame to one upstream as a direct passthrough: the
// pending is both leg and slot, replies relay in command order.
func (p *Proxy) forward(d *downstream, frame []byte, kind replyKind, srv, conn int, flush, noreply bool) {
	u := p.ups[srv][conn]
	if noreply {
		if err := u.send(d.hdr, frame, nil, flush); err != nil {
			p.recordOutcome(srv, true)
			return
		}
		p.forwarded.Add(1)
		return
	}
	d.mu.Lock()
	pd := d.allocLocked()
	pd.role, pd.kind, pd.srv = roleDirect, kind, srv
	d.pushLocked(pd)
	d.mu.Unlock()
	if err := u.send(d.hdr, frame, pd, flush); err != nil {
		p.recordOutcome(srv, true)
		d.failSlot(pd)
		return
	}
	p.forwarded.Add(1)
}

// splitRead forks a multi-key retrieval across its owning upstream
// connections and rejoins the parts in a single slot. A failed part
// degrades its keys to misses (absent from the reply), matching
// memcached's partial-result semantics.
func (p *Proxy) splitRead(d *downstream, cmd *protocol.Command, flush bool) {
	d.mu.Lock()
	for i := range d.groups {
		d.groups[i].used = false
	}
	active := 0
	for _, k := range cmd.KeyList {
		h := route.Hash64B(k)
		srv, conn := p.routeKey(k), p.connFor(h)
		var g *splitGroup
		for i := 0; i < active; i++ {
			if d.groups[i].srv == srv && d.groups[i].conn == conn {
				g = &d.groups[i]
				break
			}
		}
		if g == nil {
			if active == len(d.groups) {
				d.groups = append(d.groups, splitGroup{})
			}
			g = &d.groups[active]
			active++
			g.srv, g.conn, g.used = srv, conn, true
			g.frame = appendReadVerb(g.frame[:0], cmd)
		}
		g.frame = append(g.frame, ' ')
		g.frame = append(g.frame, k...)
	}
	slot := d.allocLocked()
	slot.role, slot.kind = roleSlot, kindRetrieval
	slot.remaining = active
	d.pushLocked(slot)
	d.mu.Unlock()
	for i := 0; i < active; i++ {
		g := &d.groups[i]
		g.frame = append(g.frame, '\r', '\n')
		d.mu.Lock()
		leg := d.allocLocked()
		leg.role, leg.slot, leg.srv = rolePart, slot, g.srv
		d.mu.Unlock()
		if err := p.ups[g.srv][g.conn].send(d.hdr, g.frame, leg, flush); err != nil {
			p.recordOutcome(g.srv, true)
			d.legDone(leg, true)
			continue
		}
		p.forwarded.Add(1)
	}
}

// appendReadVerb writes the retrieval verb (and the gat family's
// exptime) that heads each split-group frame.
func appendReadVerb(b []byte, cmd *protocol.Command) []byte {
	switch cmd.Op {
	case protocol.OpGets:
		b = append(b, "gets"...)
	case protocol.OpGat:
		b = append(b, "gat "...)
		b = strconv.AppendInt(b, cmd.Exptime, 10)
	case protocol.OpGats:
		b = append(b, "gats "...)
		b = strconv.AppendInt(b, cmd.Exptime, 10)
	default:
		b = append(b, "get"...)
	}
	return b
}

// raceRead fans a single-key read out to the replica set; the first
// upstream to produce reply bytes claims the slot.
func (p *Proxy) raceRead(d *downstream, key []byte, frame []byte, flush bool) {
	h := route.Hash64B(key)
	owner := route.PickKey(p.sel, key)
	n := p.sel.N()
	r := p.opts.Replicas
	d.mu.Lock()
	slot := d.allocLocked()
	slot.role, slot.kind = roleSlot, kindRetrieval
	slot.remaining = r
	d.pushLocked(slot)
	d.mu.Unlock()
	conn := p.connFor(h)
	for i := 0; i < r; i++ {
		srv := owner + i
		if srv >= n {
			srv -= n
		}
		d.mu.Lock()
		leg := d.allocLocked()
		leg.role, leg.slot, leg.srv = roleRaceLeg, slot, srv
		d.mu.Unlock()
		if err := p.ups[srv][conn].send(d.hdr, frame, leg, flush); err != nil {
			p.recordOutcome(srv, true)
			d.legDone(leg, true)
			continue
		}
		p.forwarded.Add(1)
	}
}

// broadcast sends frame to a set of upstreams and folds the line
// replies into one: every server for flush_all (owner < 0), the
// replica set of owner otherwise. Error lines win the fold, so the
// client sees the worst outcome of the set.
func (p *Proxy) broadcast(d *downstream, frame []byte, noreply, flush bool, owner int, h uint64) {
	n := p.sel.N()
	count, conn := n, 0
	if owner >= 0 {
		count, conn = p.opts.Replicas, p.connFor(h)
	}
	var slot *pending
	if !noreply {
		d.mu.Lock()
		slot = d.allocLocked()
		slot.role, slot.kind = roleSlot, kindLine
		slot.remaining = count
		d.pushLocked(slot)
		d.mu.Unlock()
	}
	for i := 0; i < count; i++ {
		srv := i
		if owner >= 0 {
			srv = owner + i
			if srv >= n {
				srv -= n
			}
		}
		var leg *pending
		if slot != nil {
			d.mu.Lock()
			leg = d.allocLocked()
			leg.role, leg.slot, leg.srv = roleJoinLine, slot, srv
			d.mu.Unlock()
		}
		if err := p.ups[srv][conn].send(d.hdr, frame, leg, flush); err != nil {
			p.recordOutcome(srv, true)
			if leg != nil {
				d.legFold(leg, serverErrorBytes, true)
			}
			continue
		}
		p.forwarded.Add(1)
	}
}

// appendTraceHeader renders the upstream mq_trace header for a traced
// dispatch into a reusable buffer.
func appendTraceHeader(b []byte, trace, span uint64) []byte {
	b = append(b, "mq_trace "...)
	b = strconv.AppendUint(b, trace, 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, span, 10)
	return append(b, '\r', '\n')
}

const serverErrorLine = "SERVER_ERROR proxy: upstream unavailable\r\n"

var serverErrorBytes = []byte(serverErrorLine)

// tenantShedLine is the reply of a QoS-shed command; tenant.ShedMsg so
// clients and loadgen classify sheds without importing the proxy.
const tenantShedLine = tenant.ShedMsg + "\r\n"

// --- queue machinery -------------------------------------------------

// allocLocked pops a recycled pending (caller holds mu).
func (d *downstream) allocLocked() *pending {
	pd := d.free
	if pd == nil {
		pd = &pending{d: d}
	} else {
		d.free = pd.next
		buf := pd.buf[:0]
		*pd = pending{d: d, buf: buf}
	}
	return pd
}

// pushLocked appends a slot to the reply queue (caller holds mu).
func (d *downstream) pushLocked(pd *pending) {
	pd.next = nil
	if d.tail == nil {
		d.head, d.tail = pd, pd
	} else {
		d.tail.next = pd
		d.tail = pd
	}
}

// recycleLocked returns a pending to the freelist (caller holds mu).
func (d *downstream) recycleLocked(pd *pending) {
	buf := pd.buf[:0]
	*pd = pending{buf: buf}
	pd.next = d.free
	d.free = pd
}

// advanceLocked relays every finished reply at the head of the queue,
// streams the finished prefix of a blocked multi-get join, and flushes
// (caller holds mu).
func (d *downstream) advanceLocked() {
	wrote := false
	for d.head != nil && d.head.done {
		pd := d.head
		if d.err == nil && len(pd.buf) > 0 {
			if _, err := d.w.Write(pd.buf); err != nil {
				d.poisonLocked(err)
			}
		}
		wrote = true
		d.head = pd.next
		if d.head == nil {
			d.tail = nil
		}
		pd.popped = true
		if pd.remaining == 0 {
			d.recycleLocked(pd)
		}
	}
	if h := d.head; h != nil && !h.done && h.role == roleSlot &&
		h.kind == kindRetrieval && len(h.buf) > 0 && d.err == nil {
		// A multi-get join blocked on slower parts: its completed VALUE
		// blocks are whole, stream them now.
		if _, err := d.w.Write(h.buf); err != nil {
			d.poisonLocked(err)
		}
		h.buf = h.buf[:0]
		wrote = true
	}
	if wrote && d.err == nil {
		if err := d.w.Flush(); err != nil {
			d.poisonLocked(err)
		}
	}
	if d.head == nil {
		d.cond.Broadcast()
	}
}

// poisonLocked marks the downstream's output stream broken; the handler
// exits on its next loop and pending writes are discarded (caller
// holds mu).
func (d *downstream) poisonLocked(err error) {
	if d.err == nil {
		d.err = err
		_ = d.nc.Close()
	}
	d.cond.Broadcast()
}

func (d *downstream) poisoned() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err != nil
}

// drain blocks until every queued reply has been relayed (quit/EOF
// teardown), then flushes.
func (d *downstream) drain() {
	d.mu.Lock()
	for d.head != nil && d.err == nil {
		d.cond.Wait()
	}
	if d.err == nil {
		_ = d.w.Flush()
	}
	d.mu.Unlock()
}

// failSlot resolves a roleDirect pending whose send failed with a
// SERVER_ERROR reply.
func (d *downstream) failSlot(pd *pending) {
	d.mu.Lock()
	pd.buf = append(pd.buf[:0], serverErrorLine...)
	pd.done = true
	d.advanceLocked()
	d.mu.Unlock()
}

// legDone resolves one part/race leg that produced no bytes (send
// failure or drained pipeline): the join degrades those keys to
// misses; a race slot fails only when every leg is gone.
func (d *downstream) legDone(leg *pending, failed bool) {
	d.mu.Lock()
	slot := leg.slot
	slot.remaining--
	switch leg.role {
	case rolePart:
		if slot.remaining == 0 {
			slot.buf = append(slot.buf, "END\r\n"...)
			slot.done = true
		}
	case roleRaceLeg:
		if failed && !slot.claimed && slot.remaining == 0 {
			slot.buf = append(slot.buf[:0], serverErrorLine...)
			slot.done = true
		}
	}
	d.finishLegLocked(leg, slot)
	d.mu.Unlock()
}

// legFold resolves one broadcast leg by folding its reply line into
// the slot (error lines win).
func (d *downstream) legFold(leg *pending, line []byte, failure bool) {
	d.mu.Lock()
	slot := leg.slot
	if len(slot.buf) == 0 || (failure && !isErrLine(slot.buf)) {
		slot.buf = append(slot.buf[:0], line...)
	}
	slot.remaining--
	if slot.remaining == 0 {
		slot.done = true
	}
	d.finishLegLocked(leg, slot)
	d.mu.Unlock()
}

// finishLegLocked recycles a completed leg, recycles its slot if the
// slot already left the queue and this was the last straggler, and
// advances (caller holds mu).
func (d *downstream) finishLegLocked(leg, slot *pending) {
	d.recycleLocked(leg)
	if slot.popped && slot.remaining == 0 {
		d.recycleLocked(slot)
	} else {
		d.advanceLocked()
	}
}

// localLine enqueues a proxy-generated single-line reply.
func (d *downstream) localLine(line string) {
	d.mu.Lock()
	pd := d.allocLocked()
	pd.role, pd.kind = roleSlot, kindLine
	pd.buf = append(pd.buf[:0], line...)
	pd.done = true
	d.pushLocked(pd)
	d.advanceLocked()
	d.mu.Unlock()
}

// localStats answers "stats" with the proxy's own counters; per-server
// statistics live on the upstreams themselves.
func (d *downstream) localStats() {
	st := d.p.Stats()
	buf := make([]byte, 0, 192)
	buf = appendStat(buf, "proxy", "memqlat")
	buf = appendStat(buf, "policy", st.Policy.String())
	buf = appendStatInt(buf, "upstream_servers", int64(st.Upstreams))
	buf = appendStatInt(buf, "upstream_conns", int64(d.p.opts.UpstreamConns))
	buf = appendStatInt(buf, "cmd_total", st.Commands)
	buf = appendStatInt(buf, "forwarded", st.Forwarded)
	buf = appendStatInt(buf, "failovers", st.Failovers)
	if tl := d.p.tenants; tl != nil {
		buf = appendStatInt(buf, "tenant_sheds", st.TenantSheds)
		for _, s := range tl.Snapshots() {
			buf = appendStatInt(buf, "tenant_"+s.Name+"_admitted", s.Admitted)
			buf = appendStatInt(buf, "tenant_"+s.Name+"_shed", s.Shed)
		}
	}
	buf = append(buf, "END\r\n"...)
	d.mu.Lock()
	pd := d.allocLocked()
	pd.role, pd.kind = roleSlot, kindRetrieval
	pd.buf = append(pd.buf[:0], buf...)
	pd.done = true
	d.pushLocked(pd)
	d.advanceLocked()
	d.mu.Unlock()
}

func appendStat(b []byte, k, v string) []byte {
	b = append(b, "STAT "...)
	b = append(b, k...)
	b = append(b, ' ')
	b = append(b, v...)
	return append(b, '\r', '\n')
}

func appendStatInt(b []byte, k string, v int64) []byte {
	b = append(b, "STAT "...)
	b = append(b, k...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, v, 10)
	return append(b, '\r', '\n')
}

// isErrLine reports whether a reply line is an error line (the same
// prefixes the client treats as errors).
func isErrLine(line []byte) bool {
	return hasPrefix(line, "ERROR") || hasPrefix(line, "CLIENT_ERROR") ||
		hasPrefix(line, "SERVER_ERROR")
}

func hasPrefix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}
