package workload

import (
	"math"
	"testing"
)

func TestFacebookBaselineValid(t *testing.T) {
	c := Facebook()
	if err := c.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	if c.M() != 4 {
		t.Errorf("M = %d", c.M())
	}
	if got := c.ServerKeyRate(0); got != FacebookLambda {
		t.Errorf("per-server rate = %v", got)
	}
	if got := c.MaxUtilization(); math.Abs(got-0.78125) > 1e-9 {
		t.Errorf("utilization = %v", got)
	}
}

func TestBuildersOverrideOneFactor(t *testing.T) {
	if got := WithQ(0.3).Q; got != 0.3 {
		t.Errorf("WithQ: %v", got)
	}
	if got := WithXi(0.6).Xi; got != 0.6 {
		t.Errorf("WithXi: %v", got)
	}
	if got := WithLambda(40000).ServerKeyRate(0); got != 40000 {
		t.Errorf("WithLambda: %v", got)
	}
	if got := WithMuS(100000).MuS; got != 100000 {
		t.Errorf("WithMuS: %v", got)
	}
	c := WithMissRatio(0.05, 10)
	if c.MissRatio != 0.05 || c.N != 10 {
		t.Errorf("WithMissRatio: %+v", c)
	}
	if got := WithN(1000).N; got != 1000 {
		t.Errorf("WithN: %v", got)
	}
	// Builders must not mutate each other's state.
	base := Facebook()
	_ = WithQ(0.5)
	if base.Q != FacebookQ {
		t.Error("builder mutated shared state")
	}
}

func TestWithImbalance(t *testing.T) {
	c, err := WithImbalance(0.7, 80000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	p1, _ := c.MaxLoadRatio()
	if p1 != 0.7 {
		t.Errorf("p1 = %v", p1)
	}
	if c.TotalKeyRate != 80000 {
		t.Errorf("total rate = %v", c.TotalKeyRate)
	}
	if _, err := WithImbalance(0.1, 80000); err == nil {
		t.Error("p1 below 1/m accepted")
	}
}

func TestBaselineEstimatable(t *testing.T) {
	if _, err := Facebook().Estimate(); err != nil {
		t.Fatalf("baseline not estimatable: %v", err)
	}
}
