// Package workload provides the paper's §5.1 experimental configuration
// (a statistical model of the Facebook trace from Atikoglu et al.,
// SIGMETRICS'12) and builders for every parameter sweep in the paper's
// evaluation section.
package workload

import (
	"memqlat/internal/core"
)

// Paper §5.1 constants (per Memcached server unless noted).
const (
	// FacebookLambda is the average key arrival rate per server (62.5 Kps;
	// mean inter-arrival gap 16 µs).
	FacebookLambda = 62500.0
	// FacebookXi is the burst degree of the Generalized Pareto
	// inter-arrival gaps.
	FacebookXi = 0.15
	// FacebookQ is the concurrent probability of keys.
	FacebookQ = 0.1
	// FacebookMuS is the measured per-key service rate of a Memcached
	// server (80 Kps ≈ 12.5 µs per key).
	FacebookMuS = 80000.0
	// FacebookN is the number of Memcached keys per end-user request.
	FacebookN = 150
	// FacebookMissRatio is the cache miss ratio.
	FacebookMissRatio = 0.01
	// FacebookMuD is the database service rate (1 Kps; 1 ms mean).
	FacebookMuD = 1000.0
	// FacebookServers is the number of Memcached servers in the testbed.
	FacebookServers = 4
	// FacebookNetworkLatency is the constant network latency T_N(N)
	// reported in Table 3 (20 µs).
	FacebookNetworkLatency = 20e-6
)

// Facebook returns the paper's §5.1 baseline configuration: four
// balanced servers each observing 62.5 Kps of bursty keys.
func Facebook() *core.Config {
	return &core.Config{
		N:              FacebookN,
		LoadRatios:     core.BalancedLoad(FacebookServers),
		TotalKeyRate:   FacebookLambda * FacebookServers,
		Q:              FacebookQ,
		Xi:             FacebookXi,
		MuS:            FacebookMuS,
		MissRatio:      FacebookMissRatio,
		MuD:            FacebookMuD,
		NetworkLatency: FacebookNetworkLatency,
	}
}

// WithQ returns the baseline with the concurrent probability replaced
// (Fig. 5 sweep).
func WithQ(q float64) *core.Config {
	c := Facebook()
	c.Q = q
	return c
}

// WithXi returns the baseline with the burst degree replaced (Fig. 6).
func WithXi(xi float64) *core.Config {
	c := Facebook()
	c.Xi = xi
	return c
}

// WithLambda returns the baseline with the per-server key arrival rate
// replaced (Fig. 7/8).
func WithLambda(lambda float64) *core.Config {
	c := Facebook()
	c.TotalKeyRate = lambda * FacebookServers
	return c
}

// WithMuS returns the baseline with the server service rate replaced
// (Fig. 9).
func WithMuS(muS float64) *core.Config {
	c := Facebook()
	c.MuS = muS
	return c
}

// WithImbalance returns the Fig. 10 configuration: a single aggregate
// key stream of totalRate distributed so the heaviest of the baseline's
// servers receives fraction p1.
func WithImbalance(p1, totalRate float64) (*core.Config, error) {
	c := Facebook()
	ratios, err := core.UnbalancedLoad(FacebookServers, p1)
	if err != nil {
		return nil, err
	}
	c.LoadRatios = ratios
	c.TotalKeyRate = totalRate
	return c, nil
}

// WithMissRatio returns the baseline with the cache miss ratio and keys
// per request replaced (Fig. 11).
func WithMissRatio(r float64, n int) *core.Config {
	c := Facebook()
	c.MissRatio = r
	c.N = n
	return c
}

// WithN returns the baseline with the keys-per-request count replaced
// (Fig. 12/13).
func WithN(n int) *core.Config {
	c := Facebook()
	c.N = n
	return c
}
