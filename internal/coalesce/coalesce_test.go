package coalesce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memqlat/internal/telemetry"
)

// gate is a fetch whose start and completion the test controls.
type gate struct {
	started chan struct{} // closed when the fetch has begun
	release chan struct{} // fetch blocks until this closes
	calls   atomic.Int64
	value   []byte
	err     error
}

func newGate(value []byte, err error) *gate {
	return &gate{
		started: make(chan struct{}),
		release: make(chan struct{}),
		value:   value,
		err:     err,
	}
}

func (f *gate) fetch(ctx context.Context) ([]byte, error) {
	if f.calls.Add(1) == 1 {
		close(f.started)
	}
	select {
	case <-f.release:
		return f.value, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func TestSingleFlightFanIn(t *testing.T) {
	g := New(Policy{})
	f := newGate([]byte("payload"), nil)

	const n = 16
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup

	// Leader first so the call is registered before the waiters arrive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = g.Do(context.Background(), "hot", f.fetch)
	}()
	<-f.started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.Do(context.Background(), "hot", f.fetch)
		}(i)
	}
	waitFor(t, func() bool { return g.Stats().Waiters == n-1 })
	close(f.release)
	wg.Wait()

	if got := f.calls.Load(); got != 1 {
		t.Fatalf("fetch ran %d times, want 1", got)
	}
	shared := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: unexpected error %v", i, errs[i])
		}
		if string(results[i].Value) != "payload" {
			t.Fatalf("caller %d: value %q", i, results[i].Value)
		}
		if results[i].Stale {
			t.Fatalf("caller %d: unexpected Stale", i)
		}
		if results[i].Shared {
			shared++
		}
	}
	if shared != n-1 {
		t.Fatalf("shared results = %d, want %d", shared, n-1)
	}
	st := g.Stats()
	if st.Fetches != 1 || st.FanIns != int64(n-1) || st.Sheds != 0 {
		t.Fatalf("stats = %+v, want 1 fetch, %d fan-ins, 0 sheds", st, n-1)
	}
	if st.InflightKeys != 0 || st.Waiters != 0 {
		t.Fatalf("stats after completion = %+v, want empty table", st)
	}
}

func TestNegativeResultFanOut(t *testing.T) {
	g := New(Policy{})
	f := newGate(nil, nil) // backend says "no such key"

	var wg sync.WaitGroup
	results := make([]Result, 4)
	errs := make([]error, 4)
	wg.Add(1)
	go func() { defer wg.Done(); results[0], errs[0] = g.Do(context.Background(), "absent", f.fetch) }()
	<-f.started
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); results[i], errs[i] = g.Do(context.Background(), "absent", f.fetch) }(i)
	}
	waitFor(t, func() bool { return g.Stats().Waiters == 3 })
	close(f.release)
	wg.Wait()

	for i := range results {
		if errs[i] != nil || results[i].Value != nil {
			t.Fatalf("caller %d: (%q, %v), want negative result (nil, nil)", i, results[i].Value, errs[i])
		}
	}
	if got := f.calls.Load(); got != 1 {
		t.Fatalf("fetch ran %d times, want 1", got)
	}
}

// TestErrorFanOut checks that a failed fetch delivers the same error to
// every participant exactly once: one error return per Do call, all
// identical, and no caller left hanging.
func TestErrorFanOut(t *testing.T) {
	g := New(Policy{})
	fetchErr := errors.New("backend down")
	f := newGate(nil, fetchErr)

	const n = 8
	var wg sync.WaitGroup
	var deliveries atomic.Int64
	errsCh := make(chan error, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := g.Do(context.Background(), "hot", f.fetch)
		deliveries.Add(1)
		errsCh <- err
	}()
	<-f.started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := g.Do(context.Background(), "hot", f.fetch)
			deliveries.Add(1)
			errsCh <- err
		}()
	}
	waitFor(t, func() bool { return g.Stats().Waiters == n-1 })
	close(f.release)
	wg.Wait()
	close(errsCh)

	if got := deliveries.Load(); got != n {
		t.Fatalf("error delivered %d times, want exactly %d (once per caller)", got, n)
	}
	for err := range errsCh {
		if !errors.Is(err, fetchErr) {
			t.Fatalf("caller saw %v, want %v", err, fetchErr)
		}
	}
}

// TestWaiterCancellationMidFetch cancels one waiter's context while the
// fetch is in flight: the cancelled waiter returns promptly with its
// context error, and the surviving participants still get the value.
func TestWaiterCancellationMidFetch(t *testing.T) {
	g := New(Policy{})
	f := newGate([]byte("v"), nil)

	var wg sync.WaitGroup
	var leaderRes Result
	var leaderErr error
	wg.Add(1)
	go func() { defer wg.Done(); leaderRes, leaderErr = g.Do(context.Background(), "hot", f.fetch) }()
	<-f.started

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := g.Do(ctx, "hot", f.fetch)
		waiterErr <- err
	}()
	waitFor(t, func() bool { return g.Stats().Waiters == 1 })
	cancel()

	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	// The fetch must still be alive for the leader.
	if got := g.Stats().InflightKeys; got != 1 {
		t.Fatalf("in-flight keys after waiter cancel = %d, want 1", got)
	}
	close(f.release)
	wg.Wait()
	if leaderErr != nil || string(leaderRes.Value) != "v" {
		t.Fatalf("leader got (%q, %v), want (v, nil)", leaderRes.Value, leaderErr)
	}
}

// TestAllAbandonCancelsFetch: when the leader and every waiter abandon,
// the fetch context is cancelled and the table entry removed, so the
// next miss on the key starts a fresh fetch.
func TestAllAbandonCancelsFetch(t *testing.T) {
	g := New(Policy{})
	fetchCancelled := make(chan struct{})
	started := make(chan struct{})
	var calls atomic.Int64
	fetch := func(ctx context.Context) ([]byte, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-ctx.Done()
			close(fetchCancelled)
			return nil, ctx.Err()
		}
		return []byte("fresh"), nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Do(ctx, "hot", fetch)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning leader got %v, want context.Canceled", err)
	}
	select {
	case <-fetchCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("fetch context was not cancelled after every participant abandoned")
	}
	waitFor(t, func() bool { return g.Stats().InflightKeys == 0 })

	res, err := g.Do(context.Background(), "hot", fetch)
	if err != nil || string(res.Value) != "fresh" {
		t.Fatalf("post-abandon fetch got (%q, %v), want (fresh, nil)", res.Value, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("fetch ran %d times, want 2 (abandoned + fresh)", got)
	}
}

// TestSetDuringFetchInvalidation: an Invalidate racing the fetch marks
// every participant's result stale so no one writes the fetched value
// back over the newer Set/Delete.
func TestSetDuringFetchInvalidation(t *testing.T) {
	g := New(Policy{})
	f := newGate([]byte("old"), nil)

	var wg sync.WaitGroup
	results := make([]Result, 2)
	wg.Add(1)
	go func() { defer wg.Done(); results[0], _ = g.Do(context.Background(), "hot", f.fetch) }()
	<-f.started
	wg.Add(1)
	go func() { defer wg.Done(); results[1], _ = g.Do(context.Background(), "hot", f.fetch) }()
	waitFor(t, func() bool { return g.Stats().Waiters == 1 })

	g.Invalidate("hot") // the Set landed while the fetch was in flight
	close(f.release)
	wg.Wait()

	for i, r := range results {
		if !r.Stale {
			t.Fatalf("caller %d: Stale=false after mid-fetch Invalidate", i)
		}
		if string(r.Value) != "old" {
			t.Fatalf("caller %d: value %q, want the fetched value", i, r.Value)
		}
	}
	if got := g.Stats().Invalidations; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
	// Invalidate with nothing in flight is a no-op.
	g.Invalidate("hot")
	if got := g.Stats().Invalidations; got != 1 {
		t.Fatalf("idle Invalidate counted: %d, want 1", got)
	}
}

func TestMaxWaitersShed(t *testing.T) {
	g := New(Policy{MaxWaiters: 2})
	f := newGate([]byte("v"), nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = g.Do(context.Background(), "hot", f.fetch) }()
	<-f.started
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); _, _ = g.Do(context.Background(), "hot", f.fetch) }()
	}
	waitFor(t, func() bool { return g.Stats().Waiters == 2 })

	// The bound is reached: the next arrival sheds synchronously.
	_, err := g.Do(context.Background(), "hot", f.fetch)
	if !errors.Is(err, ErrTooManyWaiters) {
		t.Fatalf("over-bound waiter got %v, want ErrTooManyWaiters", err)
	}
	close(f.release)
	wg.Wait()

	st := g.Stats()
	if st.Sheds != 1 || st.FanIns != 2 || st.Fetches != 1 {
		t.Fatalf("stats = %+v, want 1 shed, 2 fan-ins, 1 fetch", st)
	}
}

func TestUnboundedWaiters(t *testing.T) {
	g := New(Policy{MaxWaiters: -1})
	f := newGate([]byte("v"), nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = g.Do(context.Background(), "k", f.fetch) }()
	<-f.started
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); _, _ = g.Do(context.Background(), "k", f.fetch) }()
	}
	waitFor(t, func() bool { return g.Stats().Waiters == 8 })
	close(f.release)
	wg.Wait()
	if st := g.Stats(); st.Sheds != 0 {
		t.Fatalf("unbounded group shed %d waiters", st.Sheds)
	}
}

func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	g := New(Policy{Shards: 3}) // rounds up to 4
	if len(g.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(g.shards))
	}
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i)
			res, err := g.Do(context.Background(), key, func(context.Context) ([]byte, error) {
				calls.Add(1)
				return []byte(key), nil
			})
			if err != nil || string(res.Value) != key {
				t.Errorf("key %s: (%q, %v)", key, res.Value, err)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 8 {
		t.Fatalf("fetches = %d, want 8 (one per distinct key)", got)
	}
}

func TestCoalesceWaitRecorded(t *testing.T) {
	col := telemetry.NewCollector()
	g := New(Policy{Recorder: col})
	f := newGate([]byte("v"), nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = g.Do(context.Background(), "hot", f.fetch) }()
	<-f.started
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = g.Do(context.Background(), "hot", f.fetch) }()
	waitFor(t, func() bool { return g.Stats().Waiters == 1 })
	close(f.release)
	wg.Wait()

	b := col.Breakdown()
	if got := b[telemetry.StageCoalesceWait].Count; got != 1 {
		t.Fatalf("coalesce_wait count = %d, want 1 (one waiter)", got)
	}
	if b[telemetry.StageMissPenalty].Count != 0 {
		t.Fatal("group must not record miss_penalty; that is the caller's stage")
	}
}

func TestNilGroup(t *testing.T) {
	var g *Group
	if g.Coalescing() {
		t.Fatal("nil group reports Coalescing")
	}
	g.Invalidate("k") // must not panic
	if st := g.Stats(); st != (Stats{}) {
		t.Fatalf("nil group stats = %+v, want zero", st)
	}
	if !New(Policy{}).Coalescing() {
		t.Fatal("live group reports !Coalescing")
	}
}

// TestStressSingleKeyRace hammers one key with 1k goroutines across
// several fetch windows under -race: every caller must get a value or
// a shed, the fetch count must stay far below the caller count, and
// the table must drain to empty.
func TestStressSingleKeyRace(t *testing.T) {
	g := New(Policy{MaxWaiters: 256})
	var fetches atomic.Int64
	fetch := func(ctx context.Context) ([]byte, error) {
		fetches.Add(1)
		time.Sleep(200 * time.Microsecond)
		return []byte("v"), nil
	}

	const goroutines = 1000
	const rounds = 5
	var wg sync.WaitGroup
	var values, sheds atomic.Int64
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := g.Do(context.Background(), "hot", fetch)
				switch {
				case err == nil && string(res.Value) == "v":
					values.Add(1)
				case errors.Is(err, ErrTooManyWaiters):
					sheds.Add(1)
				default:
					t.Errorf("goroutine %d round %d: (%q, %v)", i, r, res.Value, err)
					return
				}
				if i%3 == 0 {
					g.Invalidate("hot")
				}
			}
		}(i)
	}
	wg.Wait()

	if got := values.Load() + sheds.Load(); got != goroutines*rounds {
		t.Fatalf("outcomes = %d, want %d", got, goroutines*rounds)
	}
	f := fetches.Load()
	if f == 0 || f > goroutines*rounds/10 {
		t.Fatalf("fetches = %d for %d calls; coalescing is not collapsing the herd", f, goroutines*rounds)
	}
	waitFor(t, func() bool {
		st := g.Stats()
		return st.InflightKeys == 0 && st.Waiters == 0
	})
	if st := g.Stats(); st.Sheds != sheds.Load() {
		t.Fatalf("stats.Sheds = %d, callers saw %d", st.Sheds, sheds.Load())
	}
	t.Logf("stress: %d calls -> %d fetches, %d fan-ins, %d sheds",
		goroutines*rounds, f, g.Stats().FanIns, g.Stats().Sheds)
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
