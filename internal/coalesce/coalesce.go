// Package coalesce implements per-key single-flight miss coalescing:
// the robustness subsystem that turns a hot-key miss storm into one
// in-flight backend fetch with waiters.
//
// Without coalescing, k concurrent misses on the same key issue k
// independent backend fetches — the "delayed hit" pathology (Jiang &
// Ma, arXiv:2505.15531; Manohar et al., arXiv:2006.00376): the backend
// sees a thundering herd exactly when the cache is least able to
// absorb it, ModeSingleQueue backends shed with ErrOverloaded, and
// client retries amplify the storm. With coalescing, the first miss
// (the leader) runs the fetch; every concurrent miss on the same key
// attaches to the pending call and receives the same value, error or
// negative result when it completes. The waiters' extra latency is the
// residual of the leader's fetch and is recorded as the
// telemetry.StageCoalesceWait stage, which the model plane prices
// analytically (see DESIGN.md §13).
//
// The in-flight table is sharded like the cache (FNV-1a over the key)
// so coalescing adds no global lock to the miss path. The per-key
// waiter count is bounded (Policy.MaxWaiters): past the bound, extra
// arrivals shed with ErrTooManyWaiters instead of pinning an unbounded
// number of goroutines to one pathological key — shedding the 1025th
// waiter is strictly better than letting a stalled backend accumulate
// every connection in the process.
package coalesce

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"memqlat/internal/telemetry"
)

// ErrTooManyWaiters is returned by Do when the per-key waiter bound is
// reached: the caller is shed instead of attaching to the in-flight
// fetch. Callers should treat it like a backend overload error
// (fail the miss, optionally retry with backoff).
var ErrTooManyWaiters = errors.New("coalesce: too many waiters for key")

// Policy configures a Group.
type Policy struct {
	// Shards is the number of lock domains for the in-flight table,
	// rounded up to a power of two. 0 means DefaultShards.
	Shards int
	// MaxWaiters bounds how many callers may be attached to one key's
	// in-flight fetch (the leader does not count). Extra arrivals shed
	// with ErrTooManyWaiters. 0 means DefaultMaxWaiters; negative means
	// unbounded.
	MaxWaiters int
	// Recorder receives a StageCoalesceWait observation for every
	// waiter that fanned in (the time it spent attached to the fetch).
	// Nil disables recording.
	Recorder telemetry.Recorder
}

// Defaults for Policy zero values.
const (
	DefaultShards     = 16
	DefaultMaxWaiters = 1024
)

// Result is the outcome of one Do call.
type Result struct {
	// Value is the fetched value. A nil Value with a nil error is a
	// negative result (key absent at the backend) and fans out to every
	// waiter like any other outcome.
	Value []byte
	// Shared reports that this caller was a waiter on another caller's
	// fetch rather than the leader that ran it.
	Shared bool
	// Stale reports that the key was invalidated (Invalidate was
	// called: a Set or Delete raced the fetch) while the fetch was in
	// flight. The value is still returned — it was correct when the
	// fetch was issued — but callers must not write it back to the
	// cache or they would resurrect the overwritten/deleted entry.
	Stale bool
}

// Stats is a point-in-time snapshot of a Group's counters.
type Stats struct {
	// InflightKeys is the number of keys with a fetch currently in
	// flight.
	InflightKeys int
	// Waiters is the number of callers currently attached to in-flight
	// fetches (excluding leaders).
	Waiters int
	// Fetches counts backend fetches actually issued (one per leader).
	Fetches int64
	// FanIns counts callers that attached to an existing fetch instead
	// of issuing their own — i.e. backend fetches saved.
	FanIns int64
	// Sheds counts callers rejected with ErrTooManyWaiters.
	Sheds int64
	// Invalidations counts Invalidate calls that hit an in-flight key.
	Invalidations int64
}

// call is one in-flight fetch.
type call struct {
	done chan struct{} // closed after value/err are set

	// value and err are written once by the fetch goroutine before
	// done is closed; readers must wait on done first.
	value []byte
	err   error

	invalidated atomic.Bool

	// refs counts the callers still waiting on this fetch (leader +
	// waiters), guarded by the shard mutex. When the last caller
	// abandons (context cancelled), the fetch itself is cancelled and
	// the table entry removed so the next miss starts fresh.
	refs    int
	waiters int
	cancel  context.CancelFunc
}

type shard struct {
	mu    sync.Mutex
	calls map[string]*call
}

// Group coalesces concurrent fetches per key. The zero value is not
// usable; construct with New. A nil *Group is a valid no-op handle for
// which Coalescing() reports false.
type Group struct {
	shards     []shard
	mask       uint64
	maxWaiters int
	rec        telemetry.Recorder

	fetches       atomic.Int64
	fanIns        atomic.Int64
	sheds         atomic.Int64
	invalidations atomic.Int64
	curWaiters    atomic.Int64
}

// New builds a Group from the policy.
func New(p Policy) *Group {
	n := p.Shards
	if n <= 0 {
		n = DefaultShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	mw := p.MaxWaiters
	if mw == 0 {
		mw = DefaultMaxWaiters
	}
	g := &Group{
		shards:     make([]shard, pow),
		mask:       uint64(pow - 1),
		maxWaiters: mw,
		rec:        telemetry.OrNop(p.Recorder),
	}
	for i := range g.shards {
		g.shards[i].calls = make(map[string]*call)
	}
	return g
}

// Coalescing reports whether g is a live group (nil-receiver safe), so
// call sites can keep a single pointer field and one nil check on the
// miss path.
func (g *Group) Coalescing() bool { return g != nil }

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func (g *Group) shardFor(key string) *shard {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return &g.shards[h&g.mask]
}

// Do fetches key once per in-flight window: if no fetch for key is
// pending, the caller becomes the leader, fetch runs (on a context
// detached from ctx's cancellation but cancelled when every
// participant abandons), and its outcome — value, error or negative
// result — fans out to everyone attached. If a fetch is already
// pending, the caller attaches as a waiter (subject to the MaxWaiters
// bound) and blocks until the fetch completes or ctx is done.
//
// The fetch function must honor its context and must not retain the
// returned byte slice's ownership — the same slice fans out to every
// participant, so all of them (and fetch itself) must treat it as
// read-only after return.
func (g *Group) Do(ctx context.Context, key string, fetch func(context.Context) ([]byte, error)) (Result, error) {
	sh := g.shardFor(key)

	sh.mu.Lock()
	if c, ok := sh.calls[key]; ok {
		if g.maxWaiters >= 0 && c.waiters >= g.maxWaiters {
			sh.mu.Unlock()
			g.sheds.Add(1)
			return Result{}, ErrTooManyWaiters
		}
		c.waiters++
		c.refs++
		sh.mu.Unlock()
		g.curWaiters.Add(1)
		defer g.curWaiters.Add(-1)

		start := time.Now()
		select {
		case <-c.done:
			g.fanIns.Add(1)
			g.rec.Observe(telemetry.StageCoalesceWait, time.Since(start).Seconds())
			return Result{Value: c.value, Shared: true, Stale: c.invalidated.Load()}, c.err
		case <-ctx.Done():
			g.abandon(sh, key, c)
			return Result{}, ctx.Err()
		}
	}

	// Leader: register the call, then run the fetch in its own
	// goroutine so the leader can abandon on its own deadline without
	// killing the fetch the waiters still depend on. The fetch context
	// inherits ctx's values (trace propagation) but not its
	// cancellation; it is cancelled only when every participant has
	// abandoned.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &call{done: make(chan struct{}), refs: 1, cancel: cancel}
	sh.calls[key] = c
	sh.mu.Unlock()
	g.fetches.Add(1)

	go func() {
		v, err := fetch(fctx)
		sh.mu.Lock()
		c.value, c.err = v, err
		close(c.done)
		if sh.calls[key] == c {
			delete(sh.calls, key)
		}
		sh.mu.Unlock()
		cancel()
	}()

	select {
	case <-c.done:
		return Result{Value: c.value, Stale: c.invalidated.Load()}, c.err
	case <-ctx.Done():
		g.abandon(sh, key, c)
		return Result{}, ctx.Err()
	}
}

// abandon drops one participant from c after its context fired. When
// the last participant leaves, the fetch is cancelled and the table
// entry removed so the next miss on the key starts a fresh fetch
// instead of attaching to a doomed one.
func (g *Group) abandon(sh *shard, key string, c *call) {
	sh.mu.Lock()
	c.refs--
	last := c.refs == 0
	if last && sh.calls[key] == c {
		delete(sh.calls, key)
	}
	sh.mu.Unlock()
	if last {
		c.cancel()
	}
}

// Invalidate marks key's in-flight fetch (if any) stale: a Set or
// Delete has superseded whatever value the fetch will return, so
// participants must not write the fetched value back to the cache.
// Safe to call on a nil Group and on keys with no pending fetch.
func (g *Group) Invalidate(key string) {
	if g == nil {
		return
	}
	sh := g.shardFor(key)
	sh.mu.Lock()
	c, ok := sh.calls[key]
	sh.mu.Unlock()
	if ok {
		c.invalidated.Store(true)
		g.invalidations.Add(1)
	}
}

// Stats snapshots the group's counters. Safe on a nil Group (zero
// stats).
func (g *Group) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	s := Stats{
		Fetches:       g.fetches.Load(),
		FanIns:        g.fanIns.Load(),
		Sheds:         g.sheds.Load(),
		Invalidations: g.invalidations.Load(),
		Waiters:       int(g.curWaiters.Load()),
	}
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		s.InflightKeys += len(sh.calls)
		sh.mu.Unlock()
	}
	return s
}
