package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"testing"
	"time"

	"memqlat/internal/backend"
	"memqlat/internal/cache"
	"memqlat/internal/server"
)

// startCluster launches n memcached servers on loopback and returns
// their addresses.
func startCluster(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		c, err := cache.New(cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Options{Cache: c, Logger: log.New(io.Discard, "", 0)})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(l)
		}()
		t.Cleanup(func() {
			_ = srv.Close()
			<-done
		})
	}
	return addrs
}

func newClient(t *testing.T, addrs []string, mutate func(*Options)) *Client {
	t.Helper()
	opts := Options{Servers: addrs}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("no servers accepted")
	}
	sel, _ := NewModuloSelector(2)
	if _, err := New(Options{Servers: []string{"a"}, Selector: sel}); err == nil {
		t.Error("selector/server count mismatch accepted")
	}
	if _, err := New(Options{Servers: []string{"a"}, PoolSize: -1}); err == nil {
		t.Error("negative pool accepted")
	}
}

func TestSetGetDelete(t *testing.T) {
	addrs := startCluster(t, 2)
	c := newClient(t, addrs, nil)
	if err := c.Set("k", []byte("v"), 7, 0); err != nil {
		t.Fatal(err)
	}
	it, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v" || it.Flags != 7 {
		t.Errorf("item = %+v", it)
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("err = %v", err)
	}
	if err := c.Delete("k"); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestConditionalStores(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs, nil)
	if err := c.Replace("k", []byte("v"), 0, 0); !errors.Is(err, ErrNotStored) {
		t.Errorf("replace absent: %v", err)
	}
	if err := c.Add("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("k", []byte("v2"), 0, 0); !errors.Is(err, ErrNotStored) {
		t.Errorf("add present: %v", err)
	}
	if err := c.Replace("k", []byte("v3"), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCASFlow(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs, nil)
	_ = c.Set("k", []byte("v1"), 0, 0)
	it, err := c.Gets("k")
	if err != nil {
		t.Fatal(err)
	}
	if it.CAS == 0 {
		t.Fatal("zero cas")
	}
	if err := c.CompareAndSwap("k", []byte("v2"), 0, 0, it.CAS); err != nil {
		t.Fatal(err)
	}
	if err := c.CompareAndSwap("k", []byte("v3"), 0, 0, it.CAS); !errors.Is(err, ErrCASConflict) {
		t.Errorf("stale cas err = %v", err)
	}
}

func TestIncrDecrTouch(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs, nil)
	_ = c.Set("n", []byte("41"), 0, 0)
	n, err := c.Incr("n", 1)
	if err != nil || n != 42 {
		t.Fatalf("incr: %v %v", n, err)
	}
	n, err = c.Decr("n", 2)
	if err != nil || n != 40 {
		t.Fatalf("decr: %v %v", n, err)
	}
	if _, err := c.Incr("missing", 1); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("incr missing: %v", err)
	}
	if err := c.Touch("n", time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.Touch("missing", time.Hour); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("touch missing: %v", err)
	}
}

func TestMultiGetForkJoin(t *testing.T) {
	addrs := startCluster(t, 4)
	c := newClient(t, addrs, nil)
	var keys []string
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", i)
		keys = append(keys, k)
		if err := c.Set(k, []byte(fmt.Sprintf("val-%d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	keys = append(keys, "absent-1", "absent-2")
	out, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("got %d items", len(out))
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", i)
		if string(out[k].Value) != fmt.Sprintf("val-%d", i) {
			t.Errorf("%s = %q", k, out[k].Value)
		}
	}
	if _, ok := out["absent-1"]; ok {
		t.Error("absent key present")
	}
	// The 50 keys must actually spread over all 4 servers.
	seen := make(map[int]bool)
	for _, k := range keys {
		seen[c.pickServer(k)] = true
	}
	if len(seen) != 4 {
		t.Errorf("keys hit only %d servers", len(seen))
	}
}

func TestGetThroughFillsOnMiss(t *testing.T) {
	addrs := startCluster(t, 2)
	db, err := backend.New(backend.Options{MuD: 1e6, ValueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	c := newClient(t, addrs, func(o *Options) { o.Filler = db })

	it, hit, err := c.GetThrough(context.Background(), "warm-me")
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first read reported a hit")
	}
	if !bytes.Equal(it.Value, db.ValueFor("warm-me")) {
		t.Error("filled value mismatch")
	}
	// Second read hits the cache.
	it2, hit2, err := c.GetThrough(context.Background(), "warm-me")
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Error("second read missed")
	}
	if !bytes.Equal(it2.Value, it.Value) {
		t.Error("cached value differs from filled value")
	}
}

func TestGetThroughWithoutFiller(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs, nil)
	if _, _, err := c.GetThrough(context.Background(), "nope"); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("err = %v", err)
	}
}

func TestFlushAllAndStats(t *testing.T) {
	addrs := startCluster(t, 2)
	c := newClient(t, addrs, nil)
	_ = c.Set("a", []byte("1"), 0, 0)
	_ = c.Set("b", []byte("2"), 0, 0)
	st, err := c.ServerStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st["version"] == "" {
		t.Error("missing version stat")
	}
	if _, err := c.ServerStats(5); err == nil {
		t.Error("bad index accepted")
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("a"); !errors.Is(err, ErrCacheMiss) {
		t.Error("item survived flush")
	}
}

func TestClientClosed(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs, nil)
	_ = c.Close()
	_ = c.Close() // idempotent
	if err := c.Set("k", []byte("v"), 0, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
}

func TestDeadServerSurfacesError(t *testing.T) {
	c := newClient(t, []string{"127.0.0.1:1"}, func(o *Options) {
		o.DialTimeout = 200 * time.Millisecond
	})
	if _, err := c.Get("k"); err == nil {
		t.Error("dead server did not error")
	}
}

func TestConnectionReuse(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs, func(o *Options) { o.PoolSize = 1 })
	for i := 0; i < 20; i++ {
		if err := c.Set("k", []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get("k"); err != nil {
			t.Fatal(err)
		}
	}
	// All 40 ops over one pooled connection: the server should report
	// few total connections.
	st, err := c.ServerStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st["total_connections"] > "3" { // string compare fine for single digit
		t.Errorf("total_connections = %s", st["total_connections"])
	}
}

func TestGetAndTouch(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs, nil)
	if err := c.Set("k", []byte("v"), 3, time.Second); err != nil {
		t.Fatal(err)
	}
	it, err := c.GetAndTouch("k", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v" || it.Flags != 3 {
		t.Errorf("item = %+v", it)
	}
	if _, err := c.GetAndTouch("missing", time.Hour); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("gat missing: %v", err)
	}
}

func TestMissDoesNotPoisonConnection(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs, func(o *Options) { o.PoolSize = 1 })
	// Interleave misses and hits on the single pooled connection: a miss
	// must not discard the connection.
	_ = c.Set("k", []byte("v"), 0, 0)
	for i := 0; i < 10; i++ {
		if _, err := c.Get("missing"); !errors.Is(err, ErrCacheMiss) {
			t.Fatalf("miss %d: %v", i, err)
		}
		if _, err := c.Get("k"); err != nil {
			t.Fatalf("hit %d: %v", i, err)
		}
	}
	st, err := c.ServerStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st["total_connections"] > "3" {
		t.Errorf("misses churned connections: total_connections = %s", st["total_connections"])
	}
}
