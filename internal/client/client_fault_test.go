package client

import (
	"bufio"
	"errors"
	"io"
	"log"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/server"
	"memqlat/internal/telemetry"
)

// scriptedServer is a minimal fake memcached endpoint whose per-request
// behavior the test controls: handle receives each request line and
// writes whatever reply (or misbehavior) the scenario calls for.
// Returning false closes the connection.
func scriptedServer(t *testing.T, handle func(w net.Conn, line string) bool) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				r := bufio.NewReader(nc)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if !handle(nc, strings.TrimRight(line, "\r\n")) {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

// startStoppableServer runs one real server whose lifecycle the test
// drives: the returned stop closes it, and restart brings a fresh
// server up on the same address.
func startStoppableServer(t *testing.T) (addr string, stop func(), restart func()) {
	t.Helper()
	boot := func(a string) func() {
		c, err := cache.New(cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Options{Cache: c, Logger: log.New(io.Discard, "", 0)})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", a)
		if err != nil {
			t.Fatal(err)
		}
		if addr == "" {
			addr = l.Addr().String()
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(l)
		}()
		return func() {
			_ = srv.Close()
			<-done
		}
	}
	stopCur := boot("127.0.0.1:0")
	stop = func() { stopCur() }
	restart = func() { stopCur = boot(addr) }
	t.Cleanup(func() { stopCur() })
	return addr, stop, restart
}

// TestFaultPoisoningSemantics is the table-driven connection-recycling
// contract: protocol-level outcomes (miss, NOT_STORED, EXISTS cas
// conflict, SERVER_ERROR lines) leave the stream at a command boundary
// and the connection MUST be recycled; transport and parse failures
// MUST discard it. Verified through the pool introspection counters.
func TestFaultPoisoningSemantics(t *testing.T) {
	realAddr := startCluster(t, 1)[0]

	cases := []struct {
		name string
		addr func(t *testing.T) string
		op   func(t *testing.T, c *Client) error
		// wantErr matches the expected error; nil means success.
		wantErr func(err error) bool
		recycle bool
	}{
		{
			name:    "miss recycles",
			addr:    func(*testing.T) string { return realAddr },
			op:      func(_ *testing.T, c *Client) error { _, err := c.Get("absent"); return err },
			wantErr: func(err error) bool { return errors.Is(err, ErrCacheMiss) },
			recycle: true,
		},
		{
			name: "not-stored recycles",
			addr: func(*testing.T) string { return realAddr },
			op: func(t *testing.T, c *Client) error {
				if err := c.Set("ns", []byte("v"), 0, 0); err != nil {
					t.Fatal(err)
				}
				return c.Add("ns", []byte("w"), 0, 0)
			},
			wantErr: func(err error) bool { return errors.Is(err, ErrNotStored) },
			recycle: true,
		},
		{
			name: "cas conflict recycles",
			addr: func(*testing.T) string { return realAddr },
			op: func(t *testing.T, c *Client) error {
				if err := c.Set("cc", []byte("v"), 0, 0); err != nil {
					t.Fatal(err)
				}
				it, err := c.Gets("cc")
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Set("cc", []byte("w"), 0, 0); err != nil {
					t.Fatal(err)
				}
				return c.CompareAndSwap("cc", []byte("x"), 0, 0, it.CAS)
			},
			wantErr: func(err error) bool { return errors.Is(err, ErrCASConflict) },
			recycle: true,
		},
		{
			name: "server error recycles",
			addr: func(t *testing.T) string {
				return scriptedServer(t, func(w net.Conn, _ string) bool {
					_, _ = w.Write([]byte("SERVER_ERROR out of memory\r\n"))
					return true
				})
			},
			op: func(_ *testing.T, c *Client) error { _, err := c.Get("k"); return err },
			wantErr: func(err error) bool {
				return err != nil && strings.Contains(err.Error(), "SERVER_ERROR")
			},
			recycle: true,
		},
		{
			name: "parse garbage discards",
			addr: func(t *testing.T) string {
				return scriptedServer(t, func(w net.Conn, _ string) bool {
					_, _ = w.Write([]byte("WAT 0 banana\r\n"))
					return true
				})
			},
			op:      func(_ *testing.T, c *Client) error { _, err := c.Get("k"); return err },
			wantErr: func(err error) bool { return err != nil },
			recycle: false,
		},
		{
			name: "mid-reply close discards",
			addr: func(t *testing.T) string {
				return scriptedServer(t, func(w net.Conn, _ string) bool {
					_, _ = w.Write([]byte("VALUE k 0 5\r\nab"))
					return false // hang up inside the data block
				})
			},
			op:      func(_ *testing.T, c *Client) error { _, err := c.Get("k"); return err },
			wantErr: func(err error) bool { return err != nil },
			recycle: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newClient(t, []string{tc.addr(t)}, func(o *Options) {
				o.PoolSize = 2
				o.OpTimeout = 2 * time.Second
			})
			err := tc.op(t, c)
			if !tc.wantErr(err) {
				t.Fatalf("op error = %v", err)
			}
			ps, perr := c.PoolStats(0)
			if perr != nil {
				t.Fatal(perr)
			}
			if tc.recycle {
				if ps.Idle == 0 || ps.Discards != 0 {
					t.Errorf("want recycled conn: stats %+v", ps)
				}
			} else {
				if ps.Discards == 0 {
					t.Errorf("want discarded conn: stats %+v", ps)
				}
				if ps.Idle != 0 {
					t.Errorf("poisoned conn returned to pool: stats %+v", ps)
				}
			}
		})
	}
}

// TestFaultStaleConnectionScreen kills and restarts a server underneath
// a pooled connection: the acquire-time liveness probe must detect the
// dead connection and redial instead of failing the first request after
// the restart.
func TestFaultStaleConnectionScreen(t *testing.T) {
	addr, stop, restart := startStoppableServer(t)
	c := newClient(t, []string{addr}, func(o *Options) { o.PoolSize = 1 })
	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	stop()
	restart()
	// Let the FIN from the dying server reach the pooled connection and
	// the idle age pass the probe threshold.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Get("k"); !errors.Is(err, ErrCacheMiss) {
		// The restarted server is empty, so a clean redial sees a miss;
		// any transport error means the stale connection leaked through.
		t.Fatalf("Get after restart = %v, want cache miss over fresh conn", err)
	}
	ps, err := c.PoolStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.StaleDrops == 0 {
		t.Errorf("liveness screen never fired: stats %+v", ps)
	}
	if ps.Dials < 2 {
		t.Errorf("expected a redial after restart: stats %+v", ps)
	}
}

// TestFaultMaxConnIdle ages a pooled connection past MaxConnIdle and
// checks the acquire path drops it by age alone.
func TestFaultMaxConnIdle(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs, func(o *Options) {
		o.PoolSize = 1
		o.MaxConnIdle = 20 * time.Millisecond
	})
	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	if _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	ps, err := c.PoolStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.StaleDrops != 1 || ps.Dials != 2 {
		t.Errorf("idle-age cutoff did not recycle: stats %+v", ps)
	}
}

// TestFaultExptimeLongTTL pins the >30-day exptime fix: long TTLs must
// be sent as absolute unix timestamps (the protocol reinterprets large
// relative values), and a long-TTL item must survive a round trip.
func TestFaultExptimeLongTTL(t *testing.T) {
	if got := exptimeFromTTL(0); got != 0 {
		t.Errorf("exptime(0) = %d", got)
	}
	if got := exptimeFromTTL(500 * time.Millisecond); got != 1 {
		t.Errorf("exptime(500ms) = %d, want 1", got)
	}
	if got := exptimeFromTTL(time.Hour); got != 3600 {
		t.Errorf("exptime(1h) = %d, want 3600", got)
	}
	if got := exptimeFromTTL(30 * 24 * time.Hour); got != thirtyDays {
		t.Errorf("exptime(30d) = %d, want %d (still relative at the boundary)", got, thirtyDays)
	}
	ttl := 40 * 24 * time.Hour
	want := time.Now().Add(ttl).Unix()
	got := exptimeFromTTL(ttl)
	if got < want-2 || got > want+2 {
		t.Errorf("exptime(40d) = %d, want absolute ~%d", got, want)
	}

	addrs := startCluster(t, 1)
	c := newClient(t, addrs, nil)
	if err := c.Set("longttl", []byte("v"), 0, ttl); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("longttl"); err != nil {
		t.Fatalf("40-day-TTL item unreadable: %v (exptime sent as relative?)", err)
	}
}

// TestFaultRetryRecoversTransient points a retry-enabled client at a
// server that kills the first two get attempts: the read must succeed
// on the third attempt and record the backoff waits under StageRetry.
func TestFaultRetryRecoversTransient(t *testing.T) {
	var gets atomic.Int64
	addr := scriptedServer(t, func(w net.Conn, line string) bool {
		if !strings.HasPrefix(line, "get ") {
			return false
		}
		if gets.Add(1) <= 2 {
			return false // hang up without replying: transport error
		}
		_, _ = w.Write([]byte("VALUE k 0 1\r\nv\r\nEND\r\n"))
		return true
	})
	col := telemetry.NewCollector()
	c := newClient(t, []string{addr}, func(o *Options) {
		o.Resilience = Resilience{Retry: &RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}}
		o.Recorder = col
	})
	it, err := c.Get("k")
	if err != nil {
		t.Fatalf("retried Get = %v", err)
	}
	if string(it.Value) != "v" {
		t.Fatalf("value = %q", it.Value)
	}
	if n := gets.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3", n)
	}
	if got := col.Breakdown()[telemetry.StageRetry].Count; got != 2 {
		t.Errorf("StageRetry count = %d, want 2", got)
	}
}

// TestFaultRetryNotOnProtocolOutcome: a miss is an answer, not a
// failure — the retry path must not re-ask.
func TestFaultRetryNotOnProtocolOutcome(t *testing.T) {
	var gets atomic.Int64
	addr := scriptedServer(t, func(w net.Conn, line string) bool {
		if strings.HasPrefix(line, "get ") {
			gets.Add(1)
			_, _ = w.Write([]byte("END\r\n"))
		}
		return true
	})
	c := newClient(t, []string{addr}, func(o *Options) {
		o.Resilience = Resilience{Retry: &RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}}
	})
	if _, err := c.Get("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("Get = %v, want miss", err)
	}
	if n := gets.Load(); n != 1 {
		t.Errorf("miss was retried: %d attempts", n)
	}
}

// TestFaultBreakerOpensAndRecovers drives the full breaker state
// machine over a real outage: closed → open while the server is down
// (ops shed with ErrBreakerOpen), then half-open → closed once the
// server returns after the cooldown.
func TestFaultBreakerOpensAndRecovers(t *testing.T) {
	// Reserve an address, then close the listener so dials are refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()

	col := telemetry.NewCollector()
	c := newClient(t, []string{addr}, func(o *Options) {
		o.DialTimeout = 200 * time.Millisecond
		o.Resilience = Resilience{Breaker: &BreakerPolicy{
			Window:           4,
			FailureThreshold: 0.5,
			MinSamples:       2,
			Cooldown:         60 * time.Millisecond,
		}}
		o.Recorder = col
	})
	for i := 0; i < 2; i++ {
		if _, err := c.Get("k"); err == nil {
			t.Fatal("Get against dead server succeeded")
		}
	}
	if st := c.BreakerState(0); st != "open" {
		t.Fatalf("breaker state after failures = %q, want open", st)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("shed Get = %v, want ErrBreakerOpen", err)
	}
	if got := col.Breakdown()[telemetry.StageBreakerShed].Count; got == 0 {
		t.Error("shed not observed under StageBreakerShed")
	}

	// Bring a real server up on the reserved address and let the
	// cooldown elapse: the next op is the half-open probe.
	ca, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Cache: ca, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l2) }()
	t.Cleanup(func() { _ = srv.Close(); <-done })

	time.Sleep(80 * time.Millisecond)
	if _, err := c.Get("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("probe Get = %v, want miss from recovered server", err)
	}
	if st := c.BreakerState(0); st != "closed" {
		t.Errorf("breaker state after recovery = %q, want closed", st)
	}
}

// TestFaultHedgedGetCutsTail stalls the primary read far past the hedge
// trigger: the hedge leg must answer well before the stall resolves.
func TestFaultHedgedGetCutsTail(t *testing.T) {
	var gets atomic.Int64
	addr := scriptedServer(t, func(w net.Conn, line string) bool {
		if !strings.HasPrefix(line, "get ") {
			return false
		}
		if gets.Add(1) == 1 {
			time.Sleep(400 * time.Millisecond) // the stalled primary
		}
		_, _ = w.Write([]byte("VALUE k 0 1\r\nv\r\nEND\r\n"))
		return true
	})
	col := telemetry.NewCollector()
	c := newClient(t, []string{addr}, func(o *Options) {
		o.Resilience = Resilience{Hedge: &HedgePolicy{Delay: 5 * time.Millisecond}}
		o.Recorder = col
	})
	began := time.Now()
	it, err := c.Get("k")
	if err != nil {
		t.Fatalf("hedged Get = %v", err)
	}
	if string(it.Value) != "v" {
		t.Fatalf("value = %q", it.Value)
	}
	if d := time.Since(began); d > 200*time.Millisecond {
		t.Errorf("hedged read took %v despite fast second leg", d)
	}
	if got := col.Breakdown()[telemetry.StageHedgeWait].Count; got != 1 {
		t.Errorf("StageHedgeWait count = %d, want 1", got)
	}
}

// TestFaultMultiGetPartialUnderServerKill is the degraded fork-join
// acceptance test: with one of two servers killed mid-run, MultiGet
// must surface the surviving server's items alongside the error, and
// MultiGetDegraded must attribute failures key by key.
func TestFaultMultiGetPartialUnderServerKill(t *testing.T) {
	deadAddr, stopDead, _ := startStoppableServer(t)
	liveAddr := startCluster(t, 1)[0]
	c := newClient(t, []string{deadAddr, liveAddr}, nil)

	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var onDead, onLive []string
	for _, k := range keys {
		if err := c.Set(k, []byte("v-"+k), 0, 0); err != nil {
			t.Fatal(err)
		}
		if c.pickServer(k) == 0 {
			onDead = append(onDead, k)
		} else {
			onLive = append(onLive, k)
		}
	}
	if len(onDead) == 0 || len(onLive) == 0 {
		t.Fatalf("degenerate key split: dead=%v live=%v", onDead, onLive)
	}

	stopDead()
	time.Sleep(20 * time.Millisecond)

	out, err := c.MultiGet(keys)
	if err == nil {
		t.Fatal("MultiGet with a dead server reported no error")
	}
	if len(out) != len(onLive) {
		t.Fatalf("partial results lost: got %d items, want %d (%v)", len(out), len(onLive), out)
	}
	for _, k := range onLive {
		if it, ok := out[k]; !ok || string(it.Value) != "v-"+k {
			t.Errorf("surviving key %q missing or wrong: %+v", k, it)
		}
	}

	got, keyErrs := c.MultiGetDegraded(keys)
	if len(got) != len(onLive) {
		t.Errorf("degraded read lost items: %d, want %d", len(got), len(onLive))
	}
	if len(keyErrs) != len(onDead) {
		t.Fatalf("per-key errors = %v, want one per dead-server key %v", keyErrs, onDead)
	}
	for _, k := range onDead {
		if keyErrs[k] == nil {
			t.Errorf("dead-server key %q has no error", k)
		}
	}
	for _, k := range onLive {
		if keyErrs[k] != nil {
			t.Errorf("healthy key %q marked failed: %v", k, keyErrs[k])
		}
	}
}

// TestFaultMultiGetHealthyUnchanged: with every server up, the partial
// -result change must be invisible.
func TestFaultMultiGetHealthyUnchanged(t *testing.T) {
	addrs := startCluster(t, 2)
	c := newClient(t, addrs, nil)
	keys := []string{"x1", "x2", "x3", "x4"}
	for _, k := range keys {
		if err := c.Set(k, []byte(k), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	out, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(keys) {
		t.Fatalf("healthy MultiGet returned %d/%d items", len(out), len(keys))
	}
	got, keyErrs := c.MultiGetDegraded(keys)
	if len(keyErrs) != 0 || len(got) != len(keys) {
		t.Fatalf("healthy degraded read: items=%d errs=%v", len(got), keyErrs)
	}
}
