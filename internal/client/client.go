package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"memqlat/internal/protocol"
)

// Common errors.
var (
	// ErrCacheMiss: the key was not in the cache.
	ErrCacheMiss = errors.New("client: cache miss")
	// ErrNotStored: a conditional store's precondition failed.
	ErrNotStored = errors.New("client: not stored")
	// ErrCASConflict: a CompareAndSwap lost the race.
	ErrCASConflict = errors.New("client: cas conflict")
	// ErrClosed: the client was closed.
	ErrClosed = errors.New("client: closed")
)

// Item is a cached value.
type Item struct {
	Key   string
	Value []byte
	Flags uint32
	CAS   uint64
}

// Filler fetches a missed key from the store of record (the back-end
// database): the cache-miss relay path of the paper's model.
type Filler interface {
	Get(ctx context.Context, key string) ([]byte, error)
}

// Options configures a Client.
type Options struct {
	// Servers lists memcached server addresses (required).
	Servers []string
	// Selector maps keys to servers (default: ketama ring).
	Selector Selector
	// PoolSize caps idle connections per server (default 4).
	PoolSize int
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds one round trip (default 2s).
	OpTimeout time.Duration
	// Filler, when set, is consulted on Get misses via GetThrough and
	// the fetched value is written back to the cache.
	Filler Filler
	// FillTTL is the expiry used for filled values (default 0 = none).
	FillTTL time.Duration
}

// Client is a connection-pooled memcached client.
type Client struct {
	opts     Options
	selector Selector

	mu     sync.Mutex
	pools  []chan *conn
	closed bool
}

// conn is one pooled connection.
type conn struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

// New validates options and constructs a Client.
func New(opts Options) (*Client, error) {
	if len(opts.Servers) == 0 {
		return nil, errors.New("client: at least one server required")
	}
	if opts.Selector == nil {
		ring, err := NewRingSelector(len(opts.Servers), 0)
		if err != nil {
			return nil, err
		}
		opts.Selector = ring
	}
	if opts.Selector.N() != len(opts.Servers) {
		return nil, fmt.Errorf("client: selector covers %d servers, have %d",
			opts.Selector.N(), len(opts.Servers))
	}
	if opts.PoolSize == 0 {
		opts.PoolSize = 4
	}
	if opts.PoolSize < 0 {
		return nil, fmt.Errorf("client: PoolSize=%d must be positive", opts.PoolSize)
	}
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.OpTimeout == 0 {
		opts.OpTimeout = 2 * time.Second
	}
	c := &Client{opts: opts, selector: opts.Selector}
	c.pools = make([]chan *conn, len(opts.Servers))
	for i := range c.pools {
		c.pools[i] = make(chan *conn, opts.PoolSize)
	}
	return c, nil
}

// Close releases all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, pool := range c.pools {
		for {
			select {
			case cn := <-pool:
				_ = cn.nc.Close()
			default:
				goto next
			}
		}
	next:
	}
	return nil
}

// acquire returns a pooled or fresh connection to server idx.
func (c *Client) acquire(idx int) (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	pool := c.pools[idx]
	c.mu.Unlock()
	select {
	case cn := <-pool:
		return cn, nil
	default:
	}
	nc, err := net.DialTimeout("tcp", c.opts.Servers[idx], c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.opts.Servers[idx], err)
	}
	return &conn{
		nc: nc,
		r:  bufio.NewReader(nc),
		w:  bufio.NewWriter(nc),
	}, nil
}

// release returns a healthy connection to the pool (or closes it when
// the pool is full or the client closed).
func (c *Client) release(idx int, cn *conn, healthy bool) {
	if !healthy {
		_ = cn.nc.Close()
		return
	}
	c.mu.Lock()
	closed := c.closed
	pool := c.pools[idx]
	c.mu.Unlock()
	if closed {
		_ = cn.nc.Close()
		return
	}
	select {
	case pool <- cn:
	default:
		_ = cn.nc.Close()
	}
}

// roundTrip runs fn on a connection to server idx with the op deadline
// applied, recycling the connection on success.
func (c *Client) roundTrip(idx int, fn func(*conn) error) error {
	cn, err := c.acquire(idx)
	if err != nil {
		return err
	}
	if err := cn.nc.SetDeadline(time.Now().Add(c.opts.OpTimeout)); err != nil {
		c.release(idx, cn, false)
		return fmt.Errorf("client: set deadline: %w", err)
	}
	if err := fn(cn); err != nil {
		// Protocol-level outcomes (miss, not-stored, cas conflict,
		// server error lines) leave the stream positioned at a command
		// boundary and the connection reusable; only transport/parse
		// errors poison it.
		c.release(idx, cn, isProtocolOutcome(err))
		return err
	}
	c.release(idx, cn, true)
	return nil
}

// isProtocolOutcome reports whether err is an application-level reply
// rather than a broken connection.
func isProtocolOutcome(err error) bool {
	var se *protocol.ServerError
	return errors.Is(err, ErrCacheMiss) ||
		errors.Is(err, ErrNotStored) ||
		errors.Is(err, ErrCASConflict) ||
		errors.As(err, &se)
}

// pickServer exposes the key-to-server mapping (used by the load
// generator to steer per-server load).
func (c *Client) pickServer(key string) int { return c.selector.Pick(key) }

// ServerFor returns the address that owns key.
func (c *Client) ServerFor(key string) string {
	return c.opts.Servers[c.pickServer(key)]
}

// Get fetches one key, returning ErrCacheMiss when absent.
func (c *Client) Get(key string) (Item, error) {
	items, err := c.getFromServer(c.pickServer(key), []string{key}, false)
	if err != nil {
		return Item{}, err
	}
	if len(items) == 0 {
		return Item{}, ErrCacheMiss
	}
	return items[0], nil
}

// Gets fetches one key with its CAS token.
func (c *Client) Gets(key string) (Item, error) {
	items, err := c.getFromServer(c.pickServer(key), []string{key}, true)
	if err != nil {
		return Item{}, err
	}
	if len(items) == 0 {
		return Item{}, ErrCacheMiss
	}
	return items[0], nil
}

func (c *Client) getFromServer(idx int, keys []string, withCAS bool) ([]Item, error) {
	verb := "get"
	if withCAS {
		verb = "gets"
	}
	var out []Item
	err := c.roundTrip(idx, func(cn *conn) error {
		if _, err := cn.w.WriteString(verb); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := cn.w.WriteString(" " + k); err != nil {
				return err
			}
		}
		if _, err := cn.w.WriteString("\r\n"); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		items, err := protocol.ReadRetrieval(cn.r)
		if err != nil {
			return err
		}
		out = make([]Item, len(items))
		for i, it := range items {
			out[i] = Item{Key: it.Key, Value: it.Value, Flags: it.Flags, CAS: it.CAS}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GetThrough fetches key from the cache, falling back to the configured
// Filler (the database) on a miss and writing the value back — the
// paper's two-stage read path. The returned bool reports whether the
// read hit the cache.
func (c *Client) GetThrough(ctx context.Context, key string) (Item, bool, error) {
	it, err := c.Get(key)
	if err == nil {
		return it, true, nil
	}
	if !errors.Is(err, ErrCacheMiss) {
		return Item{}, false, err
	}
	if c.opts.Filler == nil {
		return Item{}, false, ErrCacheMiss
	}
	value, err := c.opts.Filler.Get(ctx, key)
	if err != nil {
		return Item{}, false, fmt.Errorf("client: fill %q: %w", key, err)
	}
	// Write-back is best-effort: a racing eviction must not fail the read.
	_ = c.Set(key, value, 0, c.opts.FillTTL)
	return Item{Key: key, Value: value}, false, nil
}

// MultiGet fetches many keys with fork-join fan-out: keys are grouped by
// owning server, the groups are issued in parallel, and the call returns
// when the slowest server answers — exactly the request/N-keys join the
// model analyzes. Missing keys are absent from the result map.
func (c *Client) MultiGet(keys []string) (map[string]Item, error) {
	groups := make(map[int][]string)
	for _, k := range keys {
		idx := c.pickServer(k)
		groups[idx] = append(groups[idx], k)
	}
	var (
		mu       sync.Mutex
		firstErr error
		out      = make(map[string]Item, len(keys))
		wg       sync.WaitGroup
	)
	for idx, group := range groups {
		idx, group := idx, group
		wg.Add(1)
		go func() {
			defer wg.Done()
			items, err := c.getFromServer(idx, group, false)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for _, it := range items {
				out[it.Key] = it
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// storage runs one storage-class command.
func (c *Client) storage(verb, key string, value []byte, flags uint32, ttl time.Duration, cas uint64) error {
	exptime := exptimeFromTTL(ttl)
	return c.roundTrip(c.pickServer(key), func(cn *conn) error {
		var header string
		if verb == "cas" {
			header = fmt.Sprintf("cas %s %d %d %d %d\r\n", key, flags, exptime, len(value), cas)
		} else {
			header = fmt.Sprintf("%s %s %d %d %d\r\n", verb, key, flags, exptime, len(value))
		}
		if _, err := cn.w.WriteString(header); err != nil {
			return err
		}
		if _, err := cn.w.Write(value); err != nil {
			return err
		}
		if _, err := cn.w.WriteString("\r\n"); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		line, err := protocol.ReadLineReply(cn.r)
		if err != nil {
			return err
		}
		switch line {
		case protocol.RespStored:
			return nil
		case protocol.RespNotStored:
			return ErrNotStored
		case protocol.RespExists:
			return ErrCASConflict
		case protocol.RespNotFound:
			return ErrCacheMiss
		default:
			return fmt.Errorf("client: unexpected reply %q", line)
		}
	})
}

func exptimeFromTTL(ttl time.Duration) int64 {
	if ttl <= 0 {
		return 0
	}
	secs := int64(ttl / time.Second)
	if secs == 0 {
		secs = 1
	}
	return secs
}

// Set stores a value unconditionally.
func (c *Client) Set(key string, value []byte, flags uint32, ttl time.Duration) error {
	return c.storage("set", key, value, flags, ttl, 0)
}

// Add stores a value only if absent.
func (c *Client) Add(key string, value []byte, flags uint32, ttl time.Duration) error {
	return c.storage("add", key, value, flags, ttl, 0)
}

// Replace stores a value only if present.
func (c *Client) Replace(key string, value []byte, flags uint32, ttl time.Duration) error {
	return c.storage("replace", key, value, flags, ttl, 0)
}

// CompareAndSwap stores a value if the CAS token still matches.
func (c *Client) CompareAndSwap(key string, value []byte, flags uint32, ttl time.Duration, cas uint64) error {
	return c.storage("cas", key, value, flags, ttl, cas)
}

// Delete removes a key; ErrCacheMiss when absent.
func (c *Client) Delete(key string) error {
	return c.roundTrip(c.pickServer(key), func(cn *conn) error {
		if _, err := fmt.Fprintf(cn.w, "delete %s\r\n", key); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		line, err := protocol.ReadLineReply(cn.r)
		if err != nil {
			return err
		}
		switch line {
		case protocol.RespDeleted:
			return nil
		case protocol.RespNotFound:
			return ErrCacheMiss
		default:
			return fmt.Errorf("client: unexpected reply %q", line)
		}
	})
}

// Incr atomically adds delta to a numeric value.
func (c *Client) Incr(key string, delta uint64) (uint64, error) {
	return c.incrDecr("incr", key, delta)
}

// Decr atomically subtracts delta (floored at zero).
func (c *Client) Decr(key string, delta uint64) (uint64, error) {
	return c.incrDecr("decr", key, delta)
}

func (c *Client) incrDecr(verb, key string, delta uint64) (uint64, error) {
	var result uint64
	err := c.roundTrip(c.pickServer(key), func(cn *conn) error {
		if _, err := fmt.Fprintf(cn.w, "%s %s %d\r\n", verb, key, delta); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		line, err := protocol.ReadLineReply(cn.r)
		if err != nil {
			return err
		}
		if line == protocol.RespNotFound {
			return ErrCacheMiss
		}
		n, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return fmt.Errorf("client: unexpected reply %q", line)
		}
		result = n
		return nil
	})
	return result, err
}

// GetAndTouch atomically fetches a key and refreshes its TTL (the
// protocol's gat command); ErrCacheMiss when absent.
func (c *Client) GetAndTouch(key string, ttl time.Duration) (Item, error) {
	var out Item
	err := c.roundTrip(c.pickServer(key), func(cn *conn) error {
		if _, err := fmt.Fprintf(cn.w, "gat %d %s\r\n", exptimeFromTTL(ttl), key); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		items, err := protocol.ReadRetrieval(cn.r)
		if err != nil {
			return err
		}
		if len(items) == 0 {
			return ErrCacheMiss
		}
		out = Item{
			Key:   items[0].Key,
			Value: items[0].Value,
			Flags: items[0].Flags,
			CAS:   items[0].CAS,
		}
		return nil
	})
	if err != nil {
		return Item{}, err
	}
	return out, nil
}

// Touch refreshes a key's TTL.
func (c *Client) Touch(key string, ttl time.Duration) error {
	return c.roundTrip(c.pickServer(key), func(cn *conn) error {
		if _, err := fmt.Fprintf(cn.w, "touch %s %d\r\n", key, exptimeFromTTL(ttl)); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		line, err := protocol.ReadLineReply(cn.r)
		if err != nil {
			return err
		}
		switch line {
		case protocol.RespTouched:
			return nil
		case protocol.RespNotFound:
			return ErrCacheMiss
		default:
			return fmt.Errorf("client: unexpected reply %q", line)
		}
	})
}

// ServerStats fetches the stats table from server idx.
func (c *Client) ServerStats(idx int) (map[string]string, error) {
	if idx < 0 || idx >= len(c.opts.Servers) {
		return nil, fmt.Errorf("client: server index %d out of range", idx)
	}
	var out map[string]string
	err := c.roundTrip(idx, func(cn *conn) error {
		if _, err := cn.w.WriteString("stats\r\n"); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		m, err := protocol.ReadStats(cn.r)
		if err != nil {
			return err
		}
		out = m
		return nil
	})
	return out, err
}

// FlushAll clears every server.
func (c *Client) FlushAll() error {
	for idx := range c.opts.Servers {
		err := c.roundTrip(idx, func(cn *conn) error {
			if _, err := cn.w.WriteString("flush_all\r\n"); err != nil {
				return err
			}
			if err := cn.w.Flush(); err != nil {
				return err
			}
			line, err := protocol.ReadLineReply(cn.r)
			if err != nil {
				return err
			}
			if line != protocol.RespOK {
				return fmt.Errorf("client: unexpected reply %q", line)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
