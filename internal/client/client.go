package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"memqlat/internal/coalesce"
	"memqlat/internal/dist"
	"memqlat/internal/otrace"
	"memqlat/internal/protocol"
	"memqlat/internal/route"
	"memqlat/internal/telemetry"
)

// Common errors.
var (
	// ErrCacheMiss: the key was not in the cache.
	ErrCacheMiss = errors.New("client: cache miss")
	// ErrNotStored: a conditional store's precondition failed.
	ErrNotStored = errors.New("client: not stored")
	// ErrCASConflict: a CompareAndSwap lost the race.
	ErrCASConflict = errors.New("client: cas conflict")
	// ErrClosed: the client was closed.
	ErrClosed = errors.New("client: closed")
	// ErrBreakerOpen: the server's circuit breaker is shedding load.
	ErrBreakerOpen = errors.New("client: circuit breaker open")
)

// thirtyDays is memcached's threshold separating relative exptimes from
// absolute unix timestamps.
const thirtyDays = 60 * 60 * 24 * 30

// Item is a cached value.
type Item struct {
	Key   string
	Value []byte
	Flags uint32
	CAS   uint64
}

// Filler fetches a missed key from the store of record (the back-end
// database): the cache-miss relay path of the paper's model.
type Filler interface {
	Get(ctx context.Context, key string) ([]byte, error)
}

// Options configures a Client.
type Options struct {
	// Servers lists memcached server addresses (required).
	Servers []string
	// Selector maps keys to servers (default: ketama ring).
	Selector Selector
	// PoolSize caps idle connections per server (default 4).
	PoolSize int
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds one round trip (default 2s).
	OpTimeout time.Duration
	// MaxConnIdle drops pooled connections idle longer than this at
	// acquire time, so a connection parked across a server restart is
	// screened instead of poisoning the next request (default 2m;
	// negative disables the age check).
	MaxConnIdle time.Duration
	// Filler, when set, is consulted on Get misses via GetThrough and
	// the fetched value is written back to the cache.
	Filler Filler
	// FillTTL is the expiry used for filled values (default 0 = none).
	FillTTL time.Duration
	// Coalesce, when set, collapses concurrent GetThrough misses on the
	// same key into one in-flight Filler fetch (single-flight miss
	// coalescing): the first miss leads the fetch, concurrent misses
	// attach as waiters and share its outcome. Nil keeps the naive
	// one-fetch-per-miss behavior.
	Coalesce *coalesce.Policy
	// Seed seeds the client's jitter RNG (retry backoff) so resilience
	// behavior is reproducible under a run seed. 0 seeds from the wall
	// clock.
	Seed uint64
	// Resilience configures retries, hedged reads and circuit breakers
	// (zero value = all off, the seed behavior).
	Resilience Resilience
	// Recorder, when set, receives the client-side resilience telemetry:
	// StageRetry per backoff wait, StageHedgeWait per fired hedge,
	// StageBreakerShed per shed operation.
	Recorder telemetry.Recorder
	// Tracer, when set, opens a request-scoped span per read (a root
	// span per Get/MultiGet/GetThrough, a child per server RPC) and
	// propagates the context in-band via mq_trace headers so server
	// spans land in the same trace. Nil disables tracing.
	Tracer *otrace.Tracer
}

// Client is a connection-pooled memcached client with an optional
// resilient read path: budget-limited retries, percentile-triggered
// hedged reads, per-server circuit breakers and degraded-mode fork-join
// (MultiGetDegraded).
type Client struct {
	opts     Options
	selector Selector
	rec      telemetry.Recorder
	tracer   *otrace.Tracer // nil = tracing disabled

	retry       *RetryPolicy
	hedge       *HedgePolicy
	breakers    []*route.Breaker // per server; nil when disabled
	retryBudget *tokenBucket
	readLat     *latencyDigest
	coalescer   *coalesce.Group // nil = naive miss path

	jitterMu sync.Mutex
	jitter   func() float64

	dials      []atomic.Int64 // per-server connections dialed
	discards   []atomic.Int64 // per-server connections discarded
	staleDrops []atomic.Int64 // per-server discards by the liveness screen

	mu     sync.Mutex
	pools  []chan *conn
	closed bool
}

// conn is one pooled connection.
type conn struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
	// idleSince is when the connection was parked in the pool (or
	// dialed); the acquire-time liveness screen keys off it.
	idleSince time.Time
}

// New validates options and constructs a Client.
func New(opts Options) (*Client, error) {
	if len(opts.Servers) == 0 {
		return nil, errors.New("client: at least one server required")
	}
	if opts.Selector == nil {
		ring, err := NewRingSelector(len(opts.Servers), 0)
		if err != nil {
			return nil, err
		}
		opts.Selector = ring
	}
	if opts.Selector.N() != len(opts.Servers) {
		return nil, fmt.Errorf("client: selector covers %d servers, have %d",
			opts.Selector.N(), len(opts.Servers))
	}
	if opts.PoolSize == 0 {
		opts.PoolSize = 4
	}
	if opts.PoolSize < 0 {
		return nil, fmt.Errorf("client: PoolSize=%d must be positive", opts.PoolSize)
	}
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.OpTimeout == 0 {
		opts.OpTimeout = 2 * time.Second
	}
	if opts.MaxConnIdle == 0 {
		opts.MaxConnIdle = 2 * time.Minute
	}
	c := &Client{
		opts:     opts,
		selector: opts.Selector,
		rec:      telemetry.OrNop(opts.Recorder),
		tracer:   opts.Tracer,
	}
	n := len(opts.Servers)
	c.pools = make([]chan *conn, n)
	for i := range c.pools {
		c.pools[i] = make(chan *conn, opts.PoolSize)
	}
	c.dials = make([]atomic.Int64, n)
	c.discards = make([]atomic.Int64, n)
	c.staleDrops = make([]atomic.Int64, n)
	if p := opts.Resilience.Retry; p != nil {
		c.retry = p.withDefaults()
		c.retryBudget = newTokenBucket(c.retry.BudgetRatio, c.retry.BudgetBurst)
	}
	if p := opts.Resilience.Hedge; p != nil {
		c.hedge = p.withDefaults()
		c.readLat = newLatencyDigest()
	}
	if p := opts.Resilience.Breaker; p != nil {
		pol := *p.WithDefaults()
		c.breakers = make([]*route.Breaker, n)
		for i := range c.breakers {
			c.breakers[i] = route.NewBreaker(pol)
		}
	}
	if p := opts.Coalesce; p != nil {
		pol := *p
		if pol.Recorder == nil {
			pol.Recorder = c.rec
		}
		c.coalescer = coalesce.New(pol)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	rng := dist.SubRand(seed, 0x7e7)
	c.jitter = rng.Float64
	return c, nil
}

// Coalescer exposes the single-flight group behind GetThrough for
// stats and metrics scraping; nil when coalescing is off.
func (c *Client) Coalescer() *coalesce.Group { return c.coalescer }

// jitterFloat draws one uniform jitter value under the client's lock.
func (c *Client) jitterFloat() float64 {
	c.jitterMu.Lock()
	defer c.jitterMu.Unlock()
	return c.jitter()
}

// Close releases all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, pool := range c.pools {
		for {
			select {
			case cn := <-pool:
				_ = cn.nc.Close()
			default:
				goto next
			}
		}
	next:
	}
	return nil
}

// probeAfterIdle is how long a connection must have been parked before
// the acquire-time screen spends a read-probe syscall on it; fresher
// connections are handed out directly.
const probeAfterIdle = 10 * time.Millisecond

// acquire returns a pooled or fresh connection to server idx. Pooled
// connections are screened for liveness so a server restart does not
// poison the first request issued afterwards.
func (c *Client) acquire(idx int) (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	pool := c.pools[idx]
	c.mu.Unlock()
	for {
		select {
		case cn := <-pool:
			if c.connAlive(cn) {
				return cn, nil
			}
			_ = cn.nc.Close()
			c.discards[idx].Add(1)
			c.staleDrops[idx].Add(1)
			continue
		default:
		}
		break
	}
	nc, err := net.DialTimeout("tcp", c.opts.Servers[idx], c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.opts.Servers[idx], err)
	}
	c.dials[idx].Add(1)
	return &conn{
		nc:        nc,
		r:         bufio.NewReader(nc),
		w:         bufio.NewWriter(nc),
		idleSince: time.Now(),
	}, nil
}

// connAlive cheaply screens a pooled connection: connections idle past
// MaxConnIdle are dropped, and ones idle longer than a beat get a
// non-blocking read probe that detects a peer that closed (a server
// restart sends FIN/RST) without consuming stream data. A deadline-based
// probe cannot do this — an already-expired read deadline short-circuits
// before the syscall — so the probe reads the raw fd directly.
func (c *Client) connAlive(cn *conn) bool {
	idle := time.Since(cn.idleSince)
	if c.opts.MaxConnIdle > 0 && idle > c.opts.MaxConnIdle {
		return false
	}
	if idle < probeAfterIdle {
		return true
	}
	if cn.r.Buffered() > 0 {
		// Unsolicited bytes on an idle connection: protocol desync.
		return false
	}
	return !connDead(cn.nc)
}

// connDead probes the socket with one non-blocking zero-consumption
// read: EAGAIN means a healthy idle peer, EOF/RST means it is gone, and
// readable bytes mean the stream desynchronized.
func connDead(nc net.Conn) bool {
	sc, ok := nc.(syscall.Conn)
	if !ok {
		return false
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return true
	}
	dead := false
	probeErr := raw.Read(func(fd uintptr) bool {
		var buf [1]byte
		n, err := syscall.Read(int(fd), buf[:])
		switch {
		case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK:
			dead = false
		case err != nil, n == 0:
			dead = true // RST, or orderly EOF
		default:
			dead = true // the peer spoke unprompted
		}
		return true // never block the poller
	})
	return dead || probeErr != nil
}

// release returns a healthy connection to the pool (or closes it when
// the pool is full or the client closed).
func (c *Client) release(idx int, cn *conn, healthy bool) {
	if !healthy {
		_ = cn.nc.Close()
		c.discards[idx].Add(1)
		return
	}
	c.mu.Lock()
	closed := c.closed
	pool := c.pools[idx]
	c.mu.Unlock()
	if closed {
		_ = cn.nc.Close()
		return
	}
	cn.idleSince = time.Now()
	select {
	case pool <- cn:
	default:
		_ = cn.nc.Close()
		c.discards[idx].Add(1)
	}
}

// roundTrip runs fn on a connection to server idx — one attempt, no
// retry. All mutating commands go through here.
func (c *Client) roundTrip(idx int, fn func(*conn) error) error {
	return c.roundTripOnce(idx, fn)
}

// roundTripRead is the idempotent-read path: the same round trip, but
// transport-level failures are retried under the RetryPolicy (capped
// exponential backoff + jitter, spent from the token budget).
func (c *Client) roundTripRead(idx int, fn func(*conn) error) error {
	attempts := 1
	if c.retry != nil {
		attempts = c.retry.MaxAttempts
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if !c.retryBudget.take() {
				return err
			}
			wait := c.retry.backoff(attempt-1, c.jitterFloat())
			time.Sleep(wait)
			c.rec.Observe(telemetry.StageRetry, wait.Seconds())
		}
		err = c.roundTripOnce(idx, fn)
		if err == nil || !retryable(err) {
			return err
		}
	}
	return err
}

// retryable reports whether err is a transport-level failure worth
// re-issuing an idempotent read for. Protocol outcomes are answers; a
// shed (breaker open) or closed client will not get better by asking
// again immediately.
func retryable(err error) bool {
	return !isProtocolOutcome(err) &&
		!errors.Is(err, ErrBreakerOpen) &&
		!errors.Is(err, ErrClosed)
}

// roundTripOnce runs fn on a connection with the op deadline applied,
// recycling the connection on success and feeding the server's circuit
// breaker with the outcome.
func (c *Client) roundTripOnce(idx int, fn func(*conn) error) error {
	if br := c.breakerFor(idx); br != nil && !br.Allow(time.Now()) {
		c.rec.Observe(telemetry.StageBreakerShed, 0)
		return fmt.Errorf("client: server %s: %w", c.opts.Servers[idx], ErrBreakerOpen)
	}
	cn, err := c.acquire(idx)
	if err != nil {
		c.recordOutcome(idx, false)
		return err
	}
	if err := cn.nc.SetDeadline(time.Now().Add(c.opts.OpTimeout)); err != nil {
		c.release(idx, cn, false)
		c.recordOutcome(idx, false)
		return fmt.Errorf("client: set deadline: %w", err)
	}
	if err := fn(cn); err != nil {
		// Protocol-level outcomes (miss, not-stored, cas conflict,
		// server error lines) leave the stream positioned at a command
		// boundary and the connection reusable; only transport/parse
		// errors poison it.
		ok := isProtocolOutcome(err)
		c.release(idx, cn, ok)
		c.recordOutcome(idx, ok)
		return err
	}
	c.release(idx, cn, true)
	c.recordOutcome(idx, true)
	return nil
}

// breakerFor returns server idx's breaker (nil when disabled).
func (c *Client) breakerFor(idx int) *route.Breaker {
	if c.breakers == nil {
		return nil
	}
	return c.breakers[idx]
}

// recordOutcome feeds the breaker and the retry budget.
func (c *Client) recordOutcome(idx int, success bool) {
	if br := c.breakerFor(idx); br != nil {
		br.Record(!success, time.Now())
	}
	if success && c.retryBudget != nil {
		c.retryBudget.earn()
	}
}

// isProtocolOutcome reports whether err is an application-level reply
// rather than a broken connection.
func isProtocolOutcome(err error) bool {
	var se *protocol.ServerError
	return errors.Is(err, ErrCacheMiss) ||
		errors.Is(err, ErrNotStored) ||
		errors.Is(err, ErrCASConflict) ||
		errors.As(err, &se)
}

// pickServer exposes the key-to-server mapping (used by the load
// generator to steer per-server load).
func (c *Client) pickServer(key string) int { return c.selector.Pick(key) }

// ServerFor returns the address that owns key.
func (c *Client) ServerFor(key string) string {
	return c.opts.Servers[c.pickServer(key)]
}

// NumServers reports how many servers the client spreads keys across
// (the per-server metrics and pool-stats index range).
func (c *Client) NumServers() int { return len(c.opts.Servers) }

// BreakerState reports server idx's breaker state ("closed", "open",
// "half-open", or "disabled").
func (c *Client) BreakerState(idx int) string {
	if idx < 0 || idx >= len(c.opts.Servers) || c.breakers == nil {
		return "disabled"
	}
	return c.breakers[idx].State()
}

// PoolStats is the per-server connection-pool introspection surface
// (used by the poisoning-semantics tests and debug tooling).
type PoolStats struct {
	// Idle is the number of pooled connections right now.
	Idle int
	// Dials counts connections ever dialed to the server.
	Dials int64
	// Discards counts connections closed instead of recycled (poisoned,
	// stale, or pool overflow).
	Discards int64
	// StaleDrops counts the Discards attributed to the acquire-time
	// liveness screen.
	StaleDrops int64
}

// PoolStats snapshots server idx's pool counters.
func (c *Client) PoolStats(idx int) (PoolStats, error) {
	if idx < 0 || idx >= len(c.opts.Servers) {
		return PoolStats{}, fmt.Errorf("client: server index %d out of range", idx)
	}
	c.mu.Lock()
	idle := len(c.pools[idx])
	c.mu.Unlock()
	return PoolStats{
		Idle:       idle,
		Dials:      c.dials[idx].Load(),
		Discards:   c.discards[idx].Load(),
		StaleDrops: c.staleDrops[idx].Load(),
	}, nil
}

// Get fetches one key, returning ErrCacheMiss when absent.
func (c *Client) Get(key string) (Item, error) {
	return c.get(otrace.Ctx{}, key, false)
}

// Gets fetches one key with its CAS token.
func (c *Client) Gets(key string) (Item, error) {
	return c.get(otrace.Ctx{}, key, true)
}

// get is the shared single-key read: it opens a span (a fresh root
// trace when parent is zero) and fetches from the key's owner.
func (c *Client) get(parent otrace.Ctx, key string, withCAS bool) (Item, error) {
	idx := c.pickServer(key)
	name := "get"
	if withCAS {
		name = "gets"
	}
	sp := c.tracer.Begin(parent, "client", name, idx)
	defer c.tracer.End(sp)
	items, err := c.getFromServer(sp.Ctx(), idx, []string{key}, withCAS)
	if err != nil {
		return Item{}, err
	}
	if len(items) == 0 {
		return Item{}, ErrCacheMiss
	}
	return items[0], nil
}

// getFromServer fetches keys from server idx. Plain gets ride the
// resilient read path: retries under the RetryPolicy and, when hedging
// is enabled, a duplicate request to a second pooled connection once
// the primary outlives the hedge trigger. CAS reads (gets) never hedge
// — racing tokens would be ambiguous.
func (c *Client) getFromServer(parent otrace.Ctx, idx int, keys []string, withCAS bool) ([]Item, error) {
	if c.hedge != nil && !withCAS {
		return c.hedgedGet(parent, idx, keys)
	}
	return c.getOnce(parent, idx, keys, withCAS)
}

// getOnce issues one get/gets round trip (with retries when enabled)
// and feeds the hedge trigger's latency digest. When parent carries a
// trace, each attempt gets its own rpc span and the server is told the
// context in-band (an mq_trace header ahead of every frame), so retried
// and hedged attempts are distinguishable in the trace.
func (c *Client) getOnce(parent otrace.Ctx, idx int, keys []string, withCAS bool) ([]Item, error) {
	verb := "get"
	if withCAS {
		verb = "gets"
	}
	var out []Item
	began := time.Now()
	err := c.roundTripRead(idx, func(cn *conn) error {
		var rpc otrace.Span
		if parent.Valid() {
			rpc = c.tracer.Begin(parent, "client", "rpc", idx)
			defer c.tracer.End(rpc)
		}
		// Frame the key set into pipelined command lines, each kept
		// under the server's MaxLineBytes bound, so a multi-get of any
		// size survives the line-length limit. All frames share one
		// flush and their replies are read back-to-back, so the extra
		// frames cost no extra round trips.
		frames := 0
		for i := 0; i < len(keys); {
			if rpc.ID != 0 {
				if _, err := fmt.Fprintf(cn.w, "mq_trace %d %d\r\n", rpc.Trace, rpc.ID); err != nil {
					return err
				}
			}
			if _, err := cn.w.WriteString(verb); err != nil {
				return err
			}
			line := len(verb)
			frames++
			for i < len(keys) && (line == len(verb) || line+1+len(keys[i])+2 <= protocol.MaxLineBytes) {
				if err := cn.w.WriteByte(' '); err != nil {
					return err
				}
				if _, err := cn.w.WriteString(keys[i]); err != nil {
					return err
				}
				line += 1 + len(keys[i])
				i++
			}
			if _, err := cn.w.WriteString("\r\n"); err != nil {
				return err
			}
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		merged := make([]Item, 0, len(keys))
		for f := 0; f < frames; f++ {
			items, err := protocol.ReadRetrieval(cn.r)
			if err != nil {
				return err
			}
			for _, it := range items {
				merged = append(merged, Item{Key: it.Key, Value: it.Value, Flags: it.Flags, CAS: it.CAS})
			}
		}
		out = merged
		return nil
	})
	if c.readLat != nil && err == nil {
		c.readLat.add(time.Since(began).Seconds())
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// hedgeTrigger returns the current hedge delay: the fixed Delay when
// configured, else the observed read-latency percentile (floored), else
// the fallback while the digest warms up.
func (c *Client) hedgeTrigger() time.Duration {
	if c.hedge.Delay > 0 {
		return c.hedge.Delay
	}
	if q, ok := c.readLat.quantile(c.hedge.Percentile, c.hedge.MinSamples); ok {
		d := time.Duration(q * float64(time.Second))
		if d < minHedgeDelay {
			d = minHedgeDelay
		}
		return d
	}
	return c.hedge.FallbackDelay
}

// hedgedGet races the primary read against a hedge fired after the
// trigger delay. The first success wins; if the first reply is a
// failure and a hedge is outstanding, the slower leg gets to answer.
// Both legs run complete round trips, so the loser's connection is
// recycled normally.
func (c *Client) hedgedGet(parent otrace.Ctx, idx int, keys []string) ([]Item, error) {
	type legResult struct {
		items []Item
		err   error
	}
	ch := make(chan legResult, 2)
	issue := func() {
		items, err := c.getOnce(parent, idx, keys, false)
		ch <- legResult{items, err}
	}
	go issue()
	delay := c.hedgeTrigger()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.items, r.err
	case <-timer.C:
	}
	c.rec.Observe(telemetry.StageHedgeWait, delay.Seconds())
	go issue()
	r := <-ch
	if r.err == nil {
		return r.items, nil
	}
	// First responder failed; the other leg may still save the read.
	r2 := <-ch
	if r2.err == nil {
		return r2.items, nil
	}
	return nil, r.err
}

// GetThrough fetches key from the cache, falling back to the configured
// Filler (the database) on a miss and writing the value back — the
// paper's two-stage read path. The returned bool reports whether the
// read hit the cache.
func (c *Client) GetThrough(ctx context.Context, key string) (Item, bool, error) {
	// The root span covers the whole two-stage read; the cache get and
	// the backend fill nest under it (the backend reads the context via
	// otrace.FromContext and emits its own span).
	root := c.tracer.Begin(otrace.FromContext(ctx), "client", "get_through", c.pickServer(key))
	defer c.tracer.End(root)
	it, err := c.get(root.Ctx(), key, false)
	if err == nil {
		return it, true, nil
	}
	if !errors.Is(err, ErrCacheMiss) {
		return Item{}, false, err
	}
	if c.opts.Filler == nil {
		return Item{}, false, ErrCacheMiss
	}
	if c.coalescer.Coalescing() {
		res, cerr := c.coalescer.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
			return c.opts.Filler.Get(otrace.ContextWith(fctx, root.Ctx()), key)
		})
		if cerr != nil {
			return Item{}, false, fmt.Errorf("client: fill %q: %w", key, cerr)
		}
		// Only the leader writes back, and only if no Set/Delete raced
		// the fetch: waiters would just re-store the same bytes, and a
		// stale write-back would resurrect an overwritten entry.
		if !res.Shared && !res.Stale {
			_ = c.Set(key, res.Value, 0, c.opts.FillTTL)
		}
		return Item{Key: key, Value: res.Value}, false, nil
	}
	value, err := c.opts.Filler.Get(otrace.ContextWith(ctx, root.Ctx()), key)
	if err != nil {
		return Item{}, false, fmt.Errorf("client: fill %q: %w", key, err)
	}
	// Write-back is best-effort: a racing eviction must not fail the read.
	_ = c.Set(key, value, 0, c.opts.FillTTL)
	return Item{Key: key, Value: value}, false, nil
}

// MultiGet fetches many keys with fork-join fan-out: keys are grouped by
// owning server, the groups are issued in parallel, and the call returns
// when the slowest server answers — exactly the request/N-keys join the
// model analyzes. Missing keys are absent from the result map.
//
// When a server group fails, the items healthy groups returned are
// still in the map alongside the first error — partial results are
// never thrown away. Callers that need per-key failure attribution use
// MultiGetDegraded.
func (c *Client) MultiGet(keys []string) (map[string]Item, error) {
	out, keyErrs := c.multiGet(keys)
	if len(keyErrs) == 0 {
		return out, nil
	}
	// Surface the first failed key's error in input order (determinism
	// for callers that log it).
	for _, k := range keys {
		if err, ok := keyErrs[k]; ok {
			return out, err
		}
	}
	return out, nil
}

// MultiGetDegraded is the degraded-mode fork-join read: it returns
// every item the healthy legs produced plus a per-key error map for
// the keys whose server leg failed, instead of failing the whole
// request when one leg dies. Keys that simply missed are in neither
// map. An empty error map means every leg answered.
func (c *Client) MultiGetDegraded(keys []string) (map[string]Item, map[string]error) {
	return c.multiGet(keys)
}

// multiGet runs the grouped fan-out and attributes group failures to
// their keys.
func (c *Client) multiGet(keys []string) (map[string]Item, map[string]error) {
	groups := make(map[int][]string)
	for _, k := range keys {
		idx := c.pickServer(k)
		groups[idx] = append(groups[idx], k)
	}
	// The root span is the fork-join the model analyzes: its duration is
	// the max over the per-server leg spans beneath it.
	root := c.tracer.Begin(otrace.Ctx{}, "client", "multiget", -1)
	defer c.tracer.End(root)
	var (
		mu      sync.Mutex
		out     = make(map[string]Item, len(keys))
		keyErrs map[string]error
		wg      sync.WaitGroup
	)
	for idx, group := range groups {
		idx, group := idx, group
		wg.Add(1)
		go func() {
			defer wg.Done()
			leg := c.tracer.Begin(root.Ctx(), "client", "leg", idx)
			defer c.tracer.End(leg)
			items, err := c.getFromServer(leg.Ctx(), idx, group, false)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if keyErrs == nil {
					keyErrs = make(map[string]error)
				}
				for _, k := range group {
					keyErrs[k] = err
				}
				return
			}
			for _, it := range items {
				out[it.Key] = it
			}
		}()
	}
	wg.Wait()
	return out, keyErrs
}

// storage runs one storage-class command. A successful store
// invalidates any in-flight coalesced fetch for the key so waiters do
// not write the now-superseded fetched value back over it.
func (c *Client) storage(verb, key string, value []byte, flags uint32, ttl time.Duration, cas uint64) error {
	exptime := exptimeFromTTL(ttl)
	defer c.coalescer.Invalidate(key)
	return c.roundTrip(c.pickServer(key), func(cn *conn) error {
		var header string
		if verb == "cas" {
			header = fmt.Sprintf("cas %s %d %d %d %d\r\n", key, flags, exptime, len(value), cas)
		} else {
			header = fmt.Sprintf("%s %s %d %d %d\r\n", verb, key, flags, exptime, len(value))
		}
		if _, err := cn.w.WriteString(header); err != nil {
			return err
		}
		if _, err := cn.w.Write(value); err != nil {
			return err
		}
		if _, err := cn.w.WriteString("\r\n"); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		line, err := protocol.ReadLineReply(cn.r)
		if err != nil {
			return err
		}
		switch line {
		case protocol.RespStored:
			return nil
		case protocol.RespNotStored:
			return ErrNotStored
		case protocol.RespExists:
			return ErrCASConflict
		case protocol.RespNotFound:
			return ErrCacheMiss
		default:
			return fmt.Errorf("client: unexpected reply %q", line)
		}
	})
}

// exptimeFromTTL maps a TTL to the protocol's exptime field. Memcached
// interprets exptimes above 30 days as absolute unix timestamps, so
// long TTLs must be sent as now+ttl — sending the raw second count
// would name a moment in 1970 and expire the item immediately.
func exptimeFromTTL(ttl time.Duration) int64 {
	if ttl == 0 {
		return 0
	}
	if ttl < 0 {
		// Memcached semantics: negative exptime = already expired. Used
		// by steady-miss workloads (hot-key herds) where write-backs
		// must not mask subsequent misses.
		return -1
	}
	secs := int64(ttl / time.Second)
	if secs == 0 {
		secs = 1
	}
	if secs > thirtyDays {
		return time.Now().Add(ttl).Unix()
	}
	return secs
}

// Set stores a value unconditionally.
func (c *Client) Set(key string, value []byte, flags uint32, ttl time.Duration) error {
	return c.storage("set", key, value, flags, ttl, 0)
}

// Add stores a value only if absent.
func (c *Client) Add(key string, value []byte, flags uint32, ttl time.Duration) error {
	return c.storage("add", key, value, flags, ttl, 0)
}

// Replace stores a value only if present.
func (c *Client) Replace(key string, value []byte, flags uint32, ttl time.Duration) error {
	return c.storage("replace", key, value, flags, ttl, 0)
}

// CompareAndSwap stores a value if the CAS token still matches.
func (c *Client) CompareAndSwap(key string, value []byte, flags uint32, ttl time.Duration, cas uint64) error {
	return c.storage("cas", key, value, flags, ttl, cas)
}

// Delete removes a key; ErrCacheMiss when absent. Like the storage
// verbs it invalidates any in-flight coalesced fetch for the key.
func (c *Client) Delete(key string) error {
	defer c.coalescer.Invalidate(key)
	return c.roundTrip(c.pickServer(key), func(cn *conn) error {
		if _, err := fmt.Fprintf(cn.w, "delete %s\r\n", key); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		line, err := protocol.ReadLineReply(cn.r)
		if err != nil {
			return err
		}
		switch line {
		case protocol.RespDeleted:
			return nil
		case protocol.RespNotFound:
			return ErrCacheMiss
		default:
			return fmt.Errorf("client: unexpected reply %q", line)
		}
	})
}

// Incr atomically adds delta to a numeric value.
func (c *Client) Incr(key string, delta uint64) (uint64, error) {
	return c.incrDecr("incr", key, delta)
}

// Decr atomically subtracts delta (floored at zero).
func (c *Client) Decr(key string, delta uint64) (uint64, error) {
	return c.incrDecr("decr", key, delta)
}

func (c *Client) incrDecr(verb, key string, delta uint64) (uint64, error) {
	var result uint64
	err := c.roundTrip(c.pickServer(key), func(cn *conn) error {
		if _, err := fmt.Fprintf(cn.w, "%s %s %d\r\n", verb, key, delta); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		line, err := protocol.ReadLineReply(cn.r)
		if err != nil {
			return err
		}
		if line == protocol.RespNotFound {
			return ErrCacheMiss
		}
		n, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return fmt.Errorf("client: unexpected reply %q", line)
		}
		result = n
		return nil
	})
	return result, err
}

// GetAndTouch atomically fetches a key and refreshes its TTL (the
// protocol's gat command); ErrCacheMiss when absent.
func (c *Client) GetAndTouch(key string, ttl time.Duration) (Item, error) {
	var out Item
	err := c.roundTrip(c.pickServer(key), func(cn *conn) error {
		if _, err := fmt.Fprintf(cn.w, "gat %d %s\r\n", exptimeFromTTL(ttl), key); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		items, err := protocol.ReadRetrieval(cn.r)
		if err != nil {
			return err
		}
		if len(items) == 0 {
			return ErrCacheMiss
		}
		out = Item{
			Key:   items[0].Key,
			Value: items[0].Value,
			Flags: items[0].Flags,
			CAS:   items[0].CAS,
		}
		return nil
	})
	if err != nil {
		return Item{}, err
	}
	return out, nil
}

// Touch refreshes a key's TTL.
func (c *Client) Touch(key string, ttl time.Duration) error {
	return c.roundTrip(c.pickServer(key), func(cn *conn) error {
		if _, err := fmt.Fprintf(cn.w, "touch %s %d\r\n", key, exptimeFromTTL(ttl)); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		line, err := protocol.ReadLineReply(cn.r)
		if err != nil {
			return err
		}
		switch line {
		case protocol.RespTouched:
			return nil
		case protocol.RespNotFound:
			return ErrCacheMiss
		default:
			return fmt.Errorf("client: unexpected reply %q", line)
		}
	})
}

// ServerStats fetches the stats table from server idx.
func (c *Client) ServerStats(idx int) (map[string]string, error) {
	if idx < 0 || idx >= len(c.opts.Servers) {
		return nil, fmt.Errorf("client: server index %d out of range", idx)
	}
	var out map[string]string
	err := c.roundTrip(idx, func(cn *conn) error {
		if _, err := cn.w.WriteString("stats\r\n"); err != nil {
			return err
		}
		if err := cn.w.Flush(); err != nil {
			return err
		}
		m, err := protocol.ReadStats(cn.r)
		if err != nil {
			return err
		}
		out = m
		return nil
	})
	return out, err
}

// FlushAll clears every server.
func (c *Client) FlushAll() error {
	for idx := range c.opts.Servers {
		err := c.roundTrip(idx, func(cn *conn) error {
			if _, err := cn.w.WriteString("flush_all\r\n"); err != nil {
				return err
			}
			if err := cn.w.Flush(); err != nil {
				return err
			}
			line, err := protocol.ReadLineReply(cn.r)
			if err != nil {
				return err
			}
			if line != protocol.RespOK {
				return fmt.Errorf("client: unexpected reply %q", line)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
