// Package client is the Memcached-client substrate (the front-end web
// server side of the paper's Fig. 1): it hashes keys to servers,
// multiplexes pooled TCP connections, fans a request's keys out to all
// servers in parallel and joins on the last value (the fork-join that
// the paper's model analyzes), and relays misses to the back-end
// database.
package client

import "memqlat/internal/route"

// The selector implementations live in internal/route so the proxy
// tier routes keys identically to a direct client; these aliases keep
// the client's historical API surface intact.

// Selector maps a key to a server index in [0, n).
type Selector = route.Selector

// ModuloSelector is the simplest key-to-server mapping: hash mod n.
type ModuloSelector = route.ModuloSelector

// RingSelector is a ketama-style consistent-hash ring with virtual
// nodes and incremental membership; see route.RingSelector.
type RingSelector = route.RingSelector

// WeightedSelector realizes an arbitrary load distribution {p_j}; see
// route.WeightedSelector.
type WeightedSelector = route.WeightedSelector

// NewModuloSelector validates n >= 1.
func NewModuloSelector(n int) (*ModuloSelector, error) { return route.NewModuloSelector(n) }

// NewRingSelector builds a ring over n servers with the given number of
// virtual nodes per server (default 160 when vnodes <= 0).
func NewRingSelector(n, vnodes int) (*RingSelector, error) { return route.NewRingSelector(n, vnodes) }

// NewWeightedSelector validates the weight vector.
func NewWeightedSelector(weights []float64) (*WeightedSelector, error) {
	return route.NewWeightedSelector(weights)
}
