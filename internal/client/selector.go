// Package client is the Memcached-client substrate (the front-end web
// server side of the paper's Fig. 1): it hashes keys to servers,
// multiplexes pooled TCP connections, fans a request's keys out to all
// servers in parallel and joins on the last value (the fork-join that
// the paper's model analyzes), and relays misses to the back-end
// database.
package client

import (
	"fmt"
	"hash/fnv"
	"sort"

	"memqlat/internal/dist"
)

// Selector maps a key to a server index in [0, n).
type Selector interface {
	// Pick returns the index of the server responsible for key.
	Pick(key string) int
	// N returns the number of servers.
	N() int
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a SplitMix64 finalizer: FNV alone clusters badly on similar
// strings (sequential keys, vnode labels), which skews ring balance;
// the avalanche spreads the points uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ModuloSelector is the simplest key-to-server mapping: hash mod n.
type ModuloSelector struct {
	n int
}

var _ Selector = (*ModuloSelector)(nil)

// NewModuloSelector validates n >= 1.
func NewModuloSelector(n int) (*ModuloSelector, error) {
	if n < 1 {
		return nil, fmt.Errorf("client: modulo selector needs n >= 1, got %d", n)
	}
	return &ModuloSelector{n: n}, nil
}

// Pick implements Selector.
func (m *ModuloSelector) Pick(key string) int { return int(hash64(key) % uint64(m.n)) }

// N implements Selector.
func (m *ModuloSelector) N() int { return m.n }

// RingSelector is a ketama-style consistent-hash ring with virtual
// nodes: servers can be added or removed with only ~1/n of keys moving.
type RingSelector struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash   uint64
	server int
}

var _ Selector = (*RingSelector)(nil)

// NewRingSelector builds a ring over n servers with the given number of
// virtual nodes per server (default 160 when vnodes <= 0).
func NewRingSelector(n, vnodes int) (*RingSelector, error) {
	if n < 1 {
		return nil, fmt.Errorf("client: ring selector needs n >= 1, got %d", n)
	}
	if vnodes <= 0 {
		vnodes = 160
	}
	points := make([]ringPoint, 0, n*vnodes)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			points = append(points, ringPoint{
				hash:   hash64(fmt.Sprintf("server-%d#vnode-%d", s, v)),
				server: s,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].hash < points[j].hash })
	return &RingSelector{points: points, n: n}, nil
}

// Pick implements Selector: the first ring point clockwise of the key's
// hash owns it.
func (r *RingSelector) Pick(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].server
}

// N implements Selector.
func (r *RingSelector) N() int { return r.n }

// WeightedSelector realizes an arbitrary load distribution {p_j}: key
// ownership is assigned by deterministic hashing into the cumulative
// weight table, so repeated Picks of one key agree while the aggregate
// key stream splits in the requested proportions. It is how the Fig. 10
// imbalance experiments steer p1 of the load to one server.
type WeightedSelector struct {
	weights *dist.Weighted
}

var _ Selector = (*WeightedSelector)(nil)

// NewWeightedSelector validates the weight vector.
func NewWeightedSelector(weights []float64) (*WeightedSelector, error) {
	w, err := dist.NewWeighted(weights)
	if err != nil {
		return nil, fmt.Errorf("client: weighted selector: %w", err)
	}
	return &WeightedSelector{weights: w}, nil
}

// Pick implements Selector: the key's hash, mapped to [0,1), indexes the
// cumulative weight table.
func (w *WeightedSelector) Pick(key string) int {
	u := float64(hash64(key)>>11) / float64(1<<53)
	// Binary search over the cumulative table via Prob sums would cost
	// allocations; reuse dist.Weighted's search by turning u into a
	// quantile lookup.
	return w.weights.PickQuantile(u)
}

// N implements Selector.
func (w *WeightedSelector) N() int { return w.weights.N() }
