package client

import (
	"testing"
	"time"
)

// TestBackoffFullJitter pins the full-jitter shape: uniform in [0, d)
// with no floor, exponential doubling capped at MaxBackoff. A floor
// (equal jitter) would re-synchronize a coalesced herd whose waiters
// all saw the same fetch error at the same instant.
func TestBackoffFullJitter(t *testing.T) {
	p := (&RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}).withDefaults()
	if got := p.backoff(1, 0); got != 0 {
		t.Errorf("backoff(1, jitter=0) = %v, want 0 (full jitter has no floor)", got)
	}
	if got := p.backoff(1, 0.5); got != 500*time.Microsecond {
		t.Errorf("backoff(1, jitter=0.5) = %v, want 500µs", got)
	}
	// Attempt 3 doubles twice: window [0, 4ms). Attempt 5 would be 16ms
	// but caps at MaxBackoff.
	if got := p.backoff(3, 1); got != 4*time.Millisecond {
		t.Errorf("backoff(3, jitter=1) = %v, want 4ms", got)
	}
	if got := p.backoff(5, 1); got != 8*time.Millisecond {
		t.Errorf("backoff(5, jitter=1) = %v, want MaxBackoff 8ms", got)
	}
}

// TestBackoffDeterministicUnderSeed: equal Options.Seed must give equal
// jitter streams, so a seeded run replays its retry schedule exactly.
func TestBackoffDeterministicUnderSeed(t *testing.T) {
	mk := func(seed uint64) *Client {
		c, err := New(Options{Servers: []string{"127.0.0.1:1"}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b, other := mk(42), mk(42), mk(43)
	same, diff := true, true
	for i := 0; i < 16; i++ {
		av, bv, ov := a.jitterFloat(), b.jitterFloat(), other.jitterFloat()
		if av != bv {
			same = false
		}
		if av != ov {
			diff = false
		}
	}
	if !same {
		t.Error("equal seeds produced different jitter streams")
	}
	if diff {
		t.Error("different seeds produced identical jitter streams")
	}
}
