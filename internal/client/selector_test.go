package client

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestModuloSelector(t *testing.T) {
	if _, err := NewModuloSelector(0); err == nil {
		t.Error("n=0 accepted")
	}
	m, err := NewModuloSelector(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Errorf("N = %d", m.N())
	}
	for i := 0; i < 100; i++ {
		idx := m.Pick(fmt.Sprintf("key-%d", i))
		if idx < 0 || idx >= 4 {
			t.Fatalf("pick out of range: %d", idx)
		}
	}
}

func TestRingSelectorValidation(t *testing.T) {
	if _, err := NewRingSelector(0, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRingSelectorBalance(t *testing.T) {
	r, err := NewRingSelector(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Pick(fmt.Sprintf("key-%d", i))]++
	}
	for s, c := range counts {
		share := float64(c) / n
		if share < 0.15 || share > 0.35 {
			t.Errorf("server %d share = %v, want ~0.25", s, share)
		}
	}
}

func TestRingSelectorStability(t *testing.T) {
	// Removing one server moves only ~1/n of the keys.
	r4, _ := NewRingSelector(4, 0)
	r3, _ := NewRingSelector(3, 0)
	moved := 0
	const n = 20000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		a, b := r4.Pick(key), r3.Pick(key)
		// Keys on servers 0-2 should mostly stay put.
		if a < 3 && a != b {
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.25 {
		t.Errorf("consistent hashing moved %v of stable keys", frac)
	}
}

func TestRingSelectorDeterministic(t *testing.T) {
	a, _ := NewRingSelector(5, 100)
	b, _ := NewRingSelector(5, 100)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Pick(key) != b.Pick(key) {
			t.Fatal("ring not deterministic")
		}
	}
}

func TestWeightedSelectorValidation(t *testing.T) {
	if _, err := NewWeightedSelector(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewWeightedSelector([]float64{-1, 2}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedSelectorProportions(t *testing.T) {
	w, err := NewWeightedSelector([]float64{0.7, 0.1, 0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 4 {
		t.Errorf("N = %d", w.N())
	}
	counts := make([]int, 4)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[w.Pick(fmt.Sprintf("key-%d", i))]++
	}
	if share := float64(counts[0]) / n; math.Abs(share-0.7) > 0.03 {
		t.Errorf("heavy server share = %v, want ~0.7", share)
	}
	for s := 1; s < 4; s++ {
		if share := float64(counts[s]) / n; math.Abs(share-0.1) > 0.02 {
			t.Errorf("light server %d share = %v, want ~0.1", s, share)
		}
	}
}

// Property: every selector is deterministic per key and in range.
func TestPropertySelectorsDeterministicInRange(t *testing.T) {
	mod, _ := NewModuloSelector(7)
	ring, _ := NewRingSelector(7, 40)
	wt, _ := NewWeightedSelector([]float64{1, 2, 3, 4, 5, 6, 7})
	sels := []Selector{mod, ring, wt}
	f := func(key string) bool {
		for _, s := range sels {
			a := s.Pick(key)
			if a != s.Pick(key) {
				return false
			}
			if a < 0 || a >= s.N() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
