package client

import (
	"math"
	"sort"
	"sync"
	"time"

	"memqlat/internal/fault"
	"memqlat/internal/route"
)

// Resilience bundles the client's recovery policies. The zero value
// disables all of them (the seed behavior). Each policy is optional and
// independently tunable; ResilienceFromSpec lifts the plane-neutral
// fault.Resilience knobs a Scenario carries into these policies so the
// live plane and the simulator interpret one spec.
type Resilience struct {
	// Retry re-issues idempotent reads after transport-level failures.
	Retry *RetryPolicy
	// Hedge fires a duplicate read when the primary is slow.
	Hedge *HedgePolicy
	// Breaker sheds load to servers that keep failing.
	Breaker *BreakerPolicy
}

// RetryPolicy is capped exponential backoff with jitter, spent from a
// token budget so a dead server cannot multiply load. Only idempotent
// reads (get/gets and MultiGet legs) retry, and only on transport
// errors — protocol outcomes (miss, NOT_STORED, ...) are answers, not
// failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 3).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff (default 1ms); attempt k
	// waits BaseBackoff·2^(k-1), full-jittered, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff (default 8·BaseBackoff).
	MaxBackoff time.Duration
	// BudgetRatio is the retry tokens earned per successful operation
	// (default 0.1 — at most ~10% extra load in steady state).
	BudgetRatio float64
	// BudgetBurst caps banked tokens (default 10).
	BudgetBurst float64
}

func (p *RetryPolicy) withDefaults() *RetryPolicy {
	out := *p
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.BaseBackoff <= 0 {
		out.BaseBackoff = time.Millisecond
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 8 * out.BaseBackoff
	}
	if out.BudgetRatio <= 0 {
		out.BudgetRatio = 0.1
	}
	if out.BudgetBurst <= 0 {
		out.BudgetBurst = 10
	}
	return &out
}

// backoff returns the jittered wait before retry attempt k (1-based).
func (p *RetryPolicy) backoff(k int, jitter float64) time.Duration {
	d := float64(p.BaseBackoff) * math.Pow(2, float64(k-1))
	if max := float64(p.MaxBackoff); d > max {
		d = max
	}
	// Full jitter: uniform in [0, d) so synchronized clients
	// desynchronize. Equal jitter (d/2 + U·d/2) keeps a d/2 floor that
	// re-aligns a coalesced herd whose waiters all erred out at the same
	// instant — they would re-arrive inside the same half-window and
	// re-form the thundering herd the coalescer just collapsed.
	return time.Duration(d * jitter)
}

// HedgePolicy duplicates a slow read to a second connection and keeps
// the fastest reply. The trigger is percentile-based by default: the
// hedge fires once the primary has been outstanding longer than the
// configured quantile of recently observed read latency.
type HedgePolicy struct {
	// Delay, when positive, is a fixed hedge trigger.
	Delay time.Duration
	// Percentile is the adaptive trigger quantile (default 0.95).
	Percentile float64
	// MinSamples is how many reads must be observed before the adaptive
	// trigger arms (default 50; before that FallbackDelay is used).
	MinSamples int
	// FallbackDelay triggers hedges before the digest warms up
	// (default 10ms).
	FallbackDelay time.Duration
}

func (p *HedgePolicy) withDefaults() *HedgePolicy {
	out := *p
	if out.Percentile <= 0 || out.Percentile >= 1 {
		out.Percentile = 0.95
	}
	if out.MinSamples <= 0 {
		out.MinSamples = 50
	}
	if out.FallbackDelay <= 0 {
		out.FallbackDelay = 10 * time.Millisecond
	}
	return &out
}

// minHedgeDelay floors the adaptive trigger so sub-µs observed
// latencies cannot degenerate into hedging every read.
const minHedgeDelay = 100 * time.Microsecond

// BreakerPolicy is the per-server circuit breaker policy. It lives in
// internal/route (the proxy's failover policy shares the same state
// machine); the alias keeps the client API unchanged.
type BreakerPolicy = route.BreakerPolicy

// ResilienceFromSpec lifts the plane-neutral spec into client policies.
func ResilienceFromSpec(spec fault.Resilience) Resilience {
	spec = spec.WithDefaults()
	var r Resilience
	if spec.Retries > 0 {
		r.Retry = &RetryPolicy{
			MaxAttempts: spec.Retries + 1,
			BaseBackoff: time.Duration(spec.RetryBackoff * float64(time.Second)),
		}
	}
	if spec.HedgeDelay > 0 || spec.HedgePercentile > 0 {
		r.Hedge = &HedgePolicy{
			Delay:      time.Duration(spec.HedgeDelay * float64(time.Second)),
			Percentile: spec.HedgePercentile,
		}
	}
	if spec.BreakerThreshold > 0 {
		r.Breaker = &BreakerPolicy{
			Window:           spec.BreakerWindow,
			FailureThreshold: spec.BreakerThreshold,
			Cooldown:         time.Duration(spec.BreakerCooldown * float64(time.Second)),
		}
	}
	return r
}

// tokenBucket is the retry budget: successes earn fractional tokens,
// each retry spends one.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

func newTokenBucket(ratio, burst float64) *tokenBucket {
	// Start full so cold-start failures can retry immediately.
	return &tokenBucket{tokens: burst, ratio: ratio, burst: burst}
}

// earn credits one successful operation.
func (t *tokenBucket) earn() {
	t.mu.Lock()
	t.tokens = math.Min(t.tokens+t.ratio, t.burst)
	t.mu.Unlock()
}

// take spends one token; false means the budget is exhausted.
func (t *tokenBucket) take() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// latencyDigest is a fixed-size reservoir of recent read latencies with
// a lazily recomputed quantile — the adaptive hedge trigger's input.
type latencyDigest struct {
	mu      sync.Mutex
	buf     []float64
	idx     int
	filled  int
	stale   int
	cachedQ float64
	cachedP float64
}

const digestSize = 512

// recomputing the quantile every insert would be O(n log n) per op;
// every 32 inserts keeps the trigger fresh at negligible cost.
const digestRefresh = 32

func newLatencyDigest() *latencyDigest {
	return &latencyDigest{buf: make([]float64, digestSize)}
}

func (d *latencyDigest) add(v float64) {
	d.mu.Lock()
	d.buf[d.idx] = v
	d.idx = (d.idx + 1) % len(d.buf)
	if d.filled < len(d.buf) {
		d.filled++
	}
	d.stale++
	d.mu.Unlock()
}

// quantile returns the p-quantile of the reservoir once it holds at
// least minSamples observations.
func (d *latencyDigest) quantile(p float64, minSamples int) (float64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.filled < minSamples {
		return 0, false
	}
	if d.cachedQ == 0 || d.cachedP != p || d.stale >= digestRefresh {
		tmp := make([]float64, d.filled)
		copy(tmp, d.buf[:d.filled])
		sort.Float64s(tmp)
		k := int(p * float64(len(tmp)-1))
		d.cachedQ = tmp[k]
		d.cachedP = p
		d.stale = 0
	}
	return d.cachedQ, true
}
