package client

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"testing"

	"memqlat/internal/backend"
	"memqlat/internal/cache"
	"memqlat/internal/otrace"
	"memqlat/internal/server"
)

// startTracedCluster launches n servers sharing one tracer, numbered
// 0..n-1 — the live plane's wiring.
func startTracedCluster(t *testing.T, n int, tr *otrace.Tracer) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		c, err := cache.New(cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Options{
			Cache: c, Logger: log.New(io.Discard, "", 0), Tracer: tr, ID: i,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(l)
		}()
		t.Cleanup(func() {
			_ = srv.Close()
			<-done
		})
	}
	return addrs
}

// byKind indexes a span snapshot by "comp/name".
func byKind(spans []otrace.Span) map[string][]otrace.Span {
	out := make(map[string][]otrace.Span)
	for _, sp := range spans {
		out[sp.Comp+"/"+sp.Name] = append(out[sp.Comp+"/"+sp.Name], sp)
	}
	return out
}

func TestTraceSpansEndToEnd(t *testing.T) {
	tr := otrace.New(otrace.Options{})
	addrs := startTracedCluster(t, 2, tr)
	c := newClient(t, addrs, func(o *Options) { o.Tracer = tr })

	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	kinds := byKind(tr.Snapshot())
	roots := kinds["client/get"]
	if len(roots) != 1 {
		t.Fatalf("client/get spans = %d, want 1 (kinds: %v)", len(roots), kinds)
	}
	root := roots[0]
	if root.Parent != 0 || root.Trace == 0 {
		t.Errorf("root span = %+v, want fresh parentless trace", root)
	}
	rpcs := kinds["client/rpc"]
	if len(rpcs) != 1 || rpcs[0].Parent != root.ID || rpcs[0].Trace != root.Trace {
		t.Errorf("client/rpc spans = %+v, want one child of %d", rpcs, root.ID)
	}
	// The server's handle span joined the same trace over the wire.
	handles := kinds["server/handle"]
	if len(handles) != 1 || handles[0].Trace != root.Trace || handles[0].Parent != rpcs[0].ID {
		t.Errorf("server/handle spans = %+v, want one under rpc %d trace %d",
			handles, rpcs[0].ID, root.Trace)
	}
	if len(kinds["server/service"]) != 1 {
		t.Errorf("server/service spans = %d, want 1", len(kinds["server/service"]))
	}
}

func TestTraceMultiGetForkJoin(t *testing.T) {
	tr := otrace.New(otrace.Options{})
	addrs := startTracedCluster(t, 2, tr)
	c := newClient(t, addrs, func(o *Options) { o.Tracer = tr })

	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("fj-%d", i)
		if err := c.Set(keys[i], []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.MultiGet(keys); err != nil {
		t.Fatal(err)
	}
	kinds := byKind(tr.Snapshot())
	roots := kinds["client/multiget"]
	if len(roots) != 1 {
		t.Fatalf("client/multiget spans = %d, want 1", len(roots))
	}
	legs := kinds["client/leg"]
	if len(legs) == 0 || len(legs) > 2 {
		t.Fatalf("client/leg spans = %d, want 1..2 (one per contacted server)", len(legs))
	}
	seen := map[int]bool{}
	for _, leg := range legs {
		if leg.Parent != roots[0].ID || leg.Trace != roots[0].Trace {
			t.Errorf("leg %+v not parented under multiget root", leg)
		}
		if seen[leg.Server] {
			t.Errorf("duplicate leg for server %d", leg.Server)
		}
		seen[leg.Server] = true
	}
	if got := len(kinds["server/handle"]); got != len(legs) {
		t.Errorf("server/handle spans = %d, want %d (one per leg)", got, len(legs))
	}
}

func TestTraceGetThroughMissPath(t *testing.T) {
	tr := otrace.New(otrace.Options{})
	addrs := startTracedCluster(t, 1, tr)
	db, err := backend.New(backend.Options{MuD: 1e6, ValueSize: 8, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	c := newClient(t, addrs, func(o *Options) {
		o.Filler = db
		o.Tracer = tr
	})
	if _, hit, err := c.GetThrough(context.Background(), "cold"); err != nil || hit {
		t.Fatalf("GetThrough = hit=%v err=%v, want miss", hit, err)
	}
	kinds := byKind(tr.Snapshot())
	roots := kinds["client/get_through"]
	if len(roots) != 1 {
		t.Fatalf("client/get_through spans = %d, want 1", len(roots))
	}
	lookups := kinds["backend/lookup"]
	if len(lookups) != 1 || lookups[0].Trace != roots[0].Trace || lookups[0].Parent != roots[0].ID {
		t.Errorf("backend/lookup spans = %+v, want one under root %+v", lookups, roots[0])
	}
	// The nested cache read is a child of the same root.
	gets := kinds["client/get"]
	if len(gets) != 1 || gets[0].Parent != roots[0].ID {
		t.Errorf("client/get spans = %+v, want one under root", gets)
	}
}

func TestUntracedClientSendsNoHeaders(t *testing.T) {
	tr := otrace.New(otrace.Options{})
	addrs := startTracedCluster(t, 1, tr)
	c := newClient(t, addrs, nil) // no tracer on the client
	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	if kept, total := tr.Stats(); kept != 0 || total != 0 {
		t.Errorf("server tracer saw %d/%d spans from an untraced client", kept, total)
	}
}
