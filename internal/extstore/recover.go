package extstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// recover rebuilds the in-memory index from the segment files on
// disk, in segment-id order so later records win. The invariants:
//
//   - every frame is checksum-verified; the scan of a segment stops at
//     the first frame that fails (torn tail or bit rot), so the index
//     covers exactly the durable prefix of the log;
//   - the highest-id unsealed segment is the live one: its torn tail
//     is physically truncated and appends resume at the cut;
//   - tombstones erase earlier puts, so invalidations survive the
//     crash too;
//   - sealed segments with damage are not truncated (they are
//     read-only); indexing just stops at the damage and the skipped
//     bytes are accounted as truncated.
//
// Called from Open before any concurrency exists.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("extstore: %w", err)
	}
	type found struct {
		id   uint64
		path string
	}
	var files []found
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id, ok := parseSegFileName(e.Name())
		if !ok {
			continue
		}
		files = append(files, found{id: id, path: filepath.Join(s.opts.Dir, e.Name())})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].id < files[j].id })

	for i, f := range files {
		last := i == len(files)-1
		if err := s.recoverSegment(f.id, f.path, last); err != nil {
			return err
		}
	}
	if len(files) > 0 {
		s.nextID = files[len(files)-1].id + 1
	}
	return nil
}

func parseSegFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// recoverSegment scans one file, indexing its records. When last is
// true and the segment is unsealed it becomes the active segment,
// truncated at the valid prefix.
func (s *Store) recoverSegment(id uint64, path string, last bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("extstore: %w", err)
	}
	hdrID, ok := parseSegHeader(data)
	if !ok || hdrID != id {
		// Foreign or mangled file: leave it alone, index nothing.
		s.truncated.Add(int64(len(data)))
		return nil
	}
	seg := &segment{id: id, path: path}
	// Register before scanning so same-segment overwrites credit their
	// dead bytes here (creditDeadRecovery resolves through the map).
	s.segments[id] = seg
	validEnd, sealed := s.iterFrames(data, func(off int64, h frameHeader, key, value []byte) bool {
		switch h.typ {
		case recPut:
			lc := loc{seg: id, off: off, size: uint32(frameSize(h.keyLen, h.valLen)), expires: h.expires}
			sh := s.shardFor(key)
			old, existed := sh.m[string(key)]
			sh.m[string(key)] = lc
			if existed {
				s.creditDeadRecovery(old)
			} else {
				s.keys.Add(1)
			}
		case recDelete:
			sh := s.shardFor(key)
			if old, existed := sh.m[string(key)]; existed {
				delete(sh.m, string(key))
				s.keys.Add(-1)
				s.creditDeadRecovery(old)
			}
			seg.dead.Add(frameSize(h.keyLen, 0)) // tombstone is dead weight
		}
		return true
	})
	if torn := int64(len(data)) - validEnd; torn > 0 {
		s.truncated.Add(torn)
	}
	seg.size.Store(validEnd)
	seg.sealed = sealed

	mode := os.O_RDONLY
	liveTail := last && !sealed
	if liveTail {
		mode = os.O_RDWR
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return fmt.Errorf("extstore: %w", err)
	}
	seg.file = f
	if liveTail {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return fmt.Errorf("extstore: truncate torn tail: %w", err)
		}
		s.active = seg
	} else {
		// A damaged sealed segment, or a non-final unsealed one (the
		// process died before the footer landed): read-only from here.
		seg.sealed = true
	}
	return nil
}

// creditDeadRecovery accounts an overwritten/erased record's bytes to
// its segment during recovery, when the segment may not be registered
// yet (same-segment overwrites) — so it resolves through s.segments
// first and falls back to the torn counter only if the segment is
// genuinely gone.
func (s *Store) creditDeadRecovery(old loc) {
	if seg := s.segments[old.seg]; seg != nil {
		seg.dead.Add(int64(old.size))
	}
}

// finishRecovery finalizes the RecoveredRecords stat after recovery.
func (s *Store) finishRecovery() {
	s.recovered = s.keys.Load()
}
