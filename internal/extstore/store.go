package extstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Store.
type Options struct {
	// Dir is the directory holding segment files (created if absent).
	Dir string
	// SegmentBytes caps one segment file before rotation
	// (default 4 MiB, floor 4 KiB).
	SegmentBytes int64
	// MaxBytes caps the total on-disk footprint (default 64 MiB).
	// When live data alone exceeds it, whole oldest segments are
	// dropped — the disk tier is a cache, not a durable store.
	MaxBytes int64
	// MaxValueBytes caps a single value (default 1 MiB). Frames
	// claiming larger values are treated as corruption on scan.
	MaxValueBytes int
	// IndexShards is the number of index lock domains (default 16,
	// rounded up to a power of two).
	IndexShards int
	// QueueDepth bounds the async write queue fed by RAM evictions
	// (default 1024). A full queue drops the eviction — the value
	// falls through to the backend on its next miss.
	QueueDepth int
	// CompactThreshold is the dead-byte fraction of a sealed segment
	// that triggers compaction (default 0.5).
	CompactThreshold float64
	// Clock substitutes the time source for tests (default time.Now).
	Clock func() time.Time
}

func (o *Options) withDefaults() error {
	if o.Dir == "" {
		return fmt.Errorf("extstore: Dir is required")
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SegmentBytes < 4<<10 {
		o.SegmentBytes = 4 << 10
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 64 << 20
	}
	if o.MaxBytes < 2*o.SegmentBytes {
		o.MaxBytes = 2 * o.SegmentBytes
	}
	if o.MaxValueBytes == 0 {
		o.MaxValueBytes = 1 << 20
	}
	if o.IndexShards <= 0 {
		o.IndexShards = 16
	}
	o.IndexShards = nextPow2(o.IndexShards)
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.CompactThreshold <= 0 || o.CompactThreshold > 1 {
		o.CompactThreshold = 0.5
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// loc is one index entry: where a key's latest record lives.
type loc struct {
	seg     uint64
	off     int64
	size    uint32 // whole frame: header + key + value
	expires int64  // unix nanos; 0 = never
}

// segment is one append-only file. size and dead are atomics because
// readers and Stats observe them while the writer appends.
type segment struct {
	id     uint64
	path   string
	file   *os.File
	size   atomic.Int64 // valid bytes, including header (and footer once sealed)
	dead   atomic.Int64 // bytes of overwritten/deleted/expired records
	sealed bool         // guarded by Store.wmu
}

type indexShard struct {
	mu sync.RWMutex
	m  map[string]loc
}

type putReq struct {
	key     string
	value   []byte
	flags   uint32
	expires int64
}

// Store is the SSD tier. All methods are safe for concurrent use.
type Store struct {
	opts  Options
	clock func() time.Time

	// wmu serializes the write path: appends, rotation, compaction.
	wmu        sync.Mutex
	active     *segment
	nextID     uint64
	wbuf       []byte
	compacting bool

	// segmu guards the segment map and segment file lifetime: readers
	// hold RLock across ReadAt so compaction cannot close a file
	// under them.
	segmu    sync.RWMutex
	segments map[uint64]*segment

	shards    []indexShard
	shardMask uint64

	queue  chan putReq
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	keys        atomic.Int64
	gets        atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	expired     atomic.Int64
	puts        atomic.Int64
	putBytes    atomic.Int64
	drops       atomic.Int64
	deletes     atomic.Int64
	corrupt     atomic.Int64
	compactions atomic.Int64
	relocated   atomic.Int64
	reclaimed   atomic.Int64
	droppedSegs atomic.Int64
	truncated   atomic.Int64

	// recovered is written once during Open, before concurrency starts.
	recovered int64
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Keys         int64
	Segments     int
	SegmentBytes int64 // total on-disk footprint
	DeadBytes    int64 // reclaimable bytes awaiting compaction

	Gets    int64
	Hits    int64 // disk hits
	Misses  int64
	Expired int64 // lazy expirations observed on read or compaction

	Puts     int64
	PutBytes int64
	Drops    int64 // async writes shed on a full queue
	Deletes  int64
	Corrupt  int64 // records failing checksum at read time

	Compactions      int64
	Relocated        int64 // live records moved by compaction
	ReclaimedBytes   int64
	DroppedSegments  int64 // whole segments evicted for the byte budget
	TruncatedBytes   int64 // torn tail removed at recovery
	RecoveredRecords int64 // live records indexed at open
}

// Open creates or recovers a store in opts.Dir. Existing segment files
// are scanned in id order to rebuild the index: later records win,
// tombstones erase, and the first frame that fails validation in the
// live (highest-id, unsealed) segment marks the torn tail — the file
// is truncated there and appends resume at that offset.
func Open(opts Options) (*Store, error) {
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("extstore: %w", err)
	}
	s := &Store{
		opts:      opts,
		clock:     opts.Clock,
		segments:  make(map[uint64]*segment),
		shards:    make([]indexShard, opts.IndexShards),
		shardMask: uint64(opts.IndexShards - 1),
		queue:     make(chan putReq, opts.QueueDepth),
		stop:      make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i].m = make(map[string]loc)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.finishRecovery()
	if s.active == nil {
		if err := s.openActiveLocked(); err != nil {
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// openActiveLocked creates a fresh active segment. Callers hold wmu or
// have exclusive access (Open).
func (s *Store) openActiveLocked() error {
	id := s.nextID
	s.nextID++
	path := filepath.Join(s.opts.Dir, segFileName(id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("extstore: %w", err)
	}
	hdr := appendSegHeader(nil, id)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("extstore: %w", err)
	}
	seg := &segment{id: id, path: path, file: f}
	seg.size.Store(segHeaderSize)
	s.segmu.Lock()
	s.segments[id] = seg
	s.segmu.Unlock()
	s.active = seg
	return nil
}

func segFileName(id uint64) string {
	return fmt.Sprintf("seg-%016x.log", id)
}

func (s *Store) shardFor(key []byte) *indexShard {
	return &s.shards[fnv64a(key)&s.shardMask]
}

func fnv64a(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

func validateKey(key []byte) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return ErrKeyInvalid
	}
	return nil
}

// nano converts an absolute expiry to the on-disk representation.
func nano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// GetInto looks key up in the disk tier, appending the value to dst.
// The record's checksum is verified on every read, so a latent torn
// write surfaces as ErrCorrupt (and the entry is dropped) rather than
// as silently wrong bytes. When dst has sufficient capacity the call
// does not allocate.
func (s *Store) GetInto(key, dst []byte) (value []byte, flags uint32, err error) {
	value, flags, _, err = s.lookup(key, dst)
	return value, flags, err
}

// Lookup is GetInto plus the record's expiry deadline (zero when the
// record never expires) — the server's re-promotion path needs the
// remaining TTL to store the disk hit back into the RAM tier without
// resurrecting it past its deadline.
func (s *Store) Lookup(key, dst []byte) (value []byte, flags uint32, expires time.Time, err error) {
	value, flags, exp, err := s.lookup(key, dst)
	if exp != 0 {
		expires = time.Unix(0, exp)
	}
	return value, flags, expires, err
}

func (s *Store) lookup(key, dst []byte) (value []byte, flags uint32, exp int64, err error) {
	if err := validateKey(key); err != nil {
		return nil, 0, 0, err
	}
	if s.closed.Load() {
		return nil, 0, 0, ErrClosed
	}
	s.gets.Add(1)
	sh := s.shardFor(key)
	for attempt := 0; attempt < 2; attempt++ {
		sh.mu.RLock()
		lc, ok := sh.m[string(key)]
		sh.mu.RUnlock()
		if !ok {
			s.misses.Add(1)
			return nil, 0, 0, ErrNotFound
		}
		if lc.expires != 0 && s.clock().UnixNano() >= lc.expires {
			s.dropEntry(key, lc)
			s.expired.Add(1)
			s.misses.Add(1)
			return nil, 0, 0, ErrNotFound
		}
		s.segmu.RLock()
		seg := s.segments[lc.seg]
		if seg == nil {
			// Compacted between the index read and here: the index
			// already points at the relocated record — retry once.
			s.segmu.RUnlock()
			continue
		}
		value, flags, err = s.readRecord(seg, lc, key, dst)
		s.segmu.RUnlock()
		if err == ErrCorrupt {
			s.dropEntry(key, lc)
			s.corrupt.Add(1)
			s.misses.Add(1)
			return nil, 0, 0, ErrCorrupt
		}
		if err != nil {
			s.misses.Add(1)
			return nil, 0, 0, err
		}
		s.hits.Add(1)
		return value, flags, lc.expires, nil
	}
	s.misses.Add(1)
	return nil, 0, 0, ErrNotFound
}

// readRecord reads and verifies one frame. Caller holds segmu.RLock
// so the file cannot be closed mid-read. The whole frame is read into
// dst's spare capacity in a single pread and the value shifted down
// over the header+key afterwards, so a caller that provisions dst
// (value size + frame overhead) pays zero allocations.
func (s *Store) readRecord(seg *segment, lc loc, key, dst []byte) ([]byte, uint32, error) {
	if int(lc.size) < frameHeaderSize+len(key) {
		return nil, 0, ErrCorrupt
	}
	base := len(dst)
	total := base + int(lc.size)
	if cap(dst) >= total {
		dst = dst[:total]
	} else {
		nd := make([]byte, total, total+frameHeaderSize+MaxKeyLen)
		copy(nd, dst)
		dst = nd
	}
	frame := dst[base:total]
	if _, err := seg.file.ReadAt(frame, lc.off); err != nil {
		return nil, 0, ErrCorrupt
	}
	h := parseFrameHeader(frame)
	if h.typ != recPut || h.keyLen != len(key) ||
		frameSize(h.keyLen, h.valLen) != int64(lc.size) ||
		!bytes.Equal(frame[frameHeaderSize:frameHeaderSize+h.keyLen], key) {
		return nil, 0, ErrCorrupt
	}
	crc := crc32Update(0, frame[:19])
	crc = crc32Update(crc, frame[frameHeaderSize:])
	if crc != h.crc {
		return nil, 0, ErrCorrupt
	}
	copy(frame, frame[frameHeaderSize+h.keyLen:])
	return dst[:base+h.valLen], h.flags, nil
}

// dropEntry removes key from the index iff it still maps to lc,
// crediting the dead bytes to the owning segment.
func (s *Store) dropEntry(key []byte, lc loc) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	cur, ok := sh.m[string(key)]
	if ok && cur == lc {
		delete(sh.m, string(key))
		s.keys.Add(-1)
	} else {
		ok = false
	}
	sh.mu.Unlock()
	if ok {
		s.addDead(lc.seg, int64(lc.size))
	}
}

func (s *Store) addDead(segID uint64, n int64) {
	s.segmu.RLock()
	if seg := s.segments[segID]; seg != nil {
		seg.dead.Add(n)
	}
	s.segmu.RUnlock()
}

// Put synchronously appends key→value to the log and indexes it.
func (s *Store) Put(key, value []byte, flags uint32, expires time.Time) error {
	if err := validateKey(key); err != nil {
		return err
	}
	if len(value) > s.opts.MaxValueBytes {
		return ErrValueTooLarge
	}
	if s.closed.Load() {
		return ErrClosed
	}
	exp := nano(expires)
	if exp != 0 && s.clock().UnixNano() >= exp {
		return nil // already expired: nothing worth writing
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.putLocked(key, value, flags, exp)
}

// PutAsync enqueues a write on the bounded eviction queue, reporting
// whether it was accepted. This is the cache.OnEvict feed: it must
// never block the shard lock of the RAM tier, so a full queue sheds
// the write instead of waiting. Key and value are copied.
func (s *Store) PutAsync(key string, value []byte, flags uint32, expires time.Time) bool {
	if s.closed.Load() {
		return false
	}
	if len(key) == 0 || len(key) > MaxKeyLen || len(value) > s.opts.MaxValueBytes {
		s.drops.Add(1)
		return false
	}
	exp := nano(expires)
	if exp != 0 && s.clock().UnixNano() >= exp {
		return false // expired victim: not worth a disk write
	}
	owned := append(make([]byte, 0, len(value)), value...)
	select {
	case s.queue <- putReq{key: key, value: owned, flags: flags, expires: exp}:
		return true
	default:
		s.drops.Add(1)
		return false
	}
}

// writer drains the eviction queue onto the log.
func (s *Store) writer() {
	defer s.wg.Done()
	apply := func(r putReq) {
		s.wmu.Lock()
		if !s.closed.Load() {
			_ = s.putLocked([]byte(r.key), r.value, r.flags, r.expires)
		}
		s.wmu.Unlock()
	}
	for {
		select {
		case r := <-s.queue:
			apply(r)
		case <-s.stop:
			for {
				select {
				case r := <-s.queue:
					apply(r)
				default:
					return
				}
			}
		}
	}
}

// putLocked appends one record and indexes it. Caller holds wmu.
func (s *Store) putLocked(key, value []byte, flags uint32, exp int64) error {
	fsize := frameSize(len(key), len(value))
	if s.active.size.Load()+fsize+frameHeaderSize > s.opts.SegmentBytes &&
		s.active.size.Load() > segHeaderSize {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	seg := s.active
	off := seg.size.Load()
	s.wbuf = appendFrame(s.wbuf[:0], recPut, key, value, flags, exp)
	if err := s.writeFrameLocked(seg, off); err != nil {
		return err
	}
	lc := loc{seg: seg.id, off: off, size: uint32(fsize), expires: exp}
	sh := s.shardFor(key)
	sh.mu.Lock()
	old, existed := sh.m[string(key)]
	sh.m[string(key)] = lc
	if !existed {
		s.keys.Add(1)
	}
	sh.mu.Unlock()
	if existed {
		s.addDead(old.seg, int64(old.size))
	}
	s.puts.Add(1)
	s.putBytes.Add(fsize)
	s.maybeCompactLocked()
	return nil
}

// writeFrameLocked writes s.wbuf at off, rolling the segment back to
// off on a short write so the log never contains a half-frame followed
// by more appends (recovery would truncate everything after it).
func (s *Store) writeFrameLocked(seg *segment, off int64) error {
	if _, err := seg.file.WriteAt(s.wbuf, off); err != nil {
		_ = seg.file.Truncate(off)
		return fmt.Errorf("extstore: append: %w", err)
	}
	seg.size.Store(off + int64(len(s.wbuf)))
	return nil
}

// Delete invalidates key in the disk tier, appending a tombstone so
// the invalidation survives a crash. Reports whether the key was
// present on disk.
func (s *Store) Delete(key []byte) bool {
	if validateKey(key) != nil || s.closed.Load() {
		return false
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	lc, ok := sh.m[string(key)]
	if ok {
		delete(sh.m, string(key))
		s.keys.Add(-1)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	s.addDead(lc.seg, int64(lc.size))
	s.deletes.Add(1)
	s.wmu.Lock()
	if !s.closed.Load() {
		off := s.active.size.Load()
		s.wbuf = appendFrame(s.wbuf[:0], recDelete, key, nil, 0, 0)
		if s.writeFrameLocked(s.active, off) == nil {
			// A tombstone is dead weight from birth.
			s.active.dead.Add(frameSize(len(key), 0))
		}
	}
	s.wmu.Unlock()
	return true
}

// FlushAll atomically drops the entire disk tier: the index is
// cleared, every segment file is unlinked and a fresh active segment
// is opened — the disk half of a memcached flush_all. Queued async
// writes that drain after the flush re-enter the tier as ordinary
// puts, mirroring a set that races flush_all on the RAM tier.
func (s *Store) FlushAll() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		clear(sh.m)
		sh.mu.Unlock()
	}
	s.keys.Store(0)
	s.segmu.RLock()
	doomed := make([]*segment, 0, len(s.segments))
	for _, seg := range s.segments {
		doomed = append(doomed, seg)
	}
	s.segmu.RUnlock()
	for _, seg := range doomed {
		s.reclaimed.Add(seg.size.Load())
		s.removeSegmentLocked(seg)
	}
	s.active = nil
	return s.openActiveLocked()
}

// Len reports the number of indexed keys.
func (s *Store) Len() int64 { return s.keys.Load() }

// Bytes reports the total on-disk footprint.
func (s *Store) Bytes() int64 {
	var n int64
	s.segmu.RLock()
	for _, seg := range s.segments {
		n += seg.size.Load()
	}
	s.segmu.RUnlock()
	return n
}

// Dir reports the segment directory (the live plane surfaces it so CI
// can collect segment files on failure).
func (s *Store) Dir() string { return s.opts.Dir }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	var segs int
	var bytes, dead int64
	s.segmu.RLock()
	for _, seg := range s.segments {
		segs++
		bytes += seg.size.Load()
		dead += seg.dead.Load()
	}
	s.segmu.RUnlock()
	return Stats{
		Keys:             s.keys.Load(),
		Segments:         segs,
		SegmentBytes:     bytes,
		DeadBytes:        dead,
		Gets:             s.gets.Load(),
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		Expired:          s.expired.Load(),
		Puts:             s.puts.Load(),
		PutBytes:         s.putBytes.Load(),
		Drops:            s.drops.Load(),
		Deletes:          s.deletes.Load(),
		Corrupt:          s.corrupt.Load(),
		Compactions:      s.compactions.Load(),
		Relocated:        s.relocated.Load(),
		ReclaimedBytes:   s.reclaimed.Load(),
		DroppedSegments:  s.droppedSegs.Load(),
		TruncatedBytes:   s.truncated.Load(),
		RecoveredRecords: s.recovered,
	}
}

// Flush blocks until every write enqueued before the call has been
// applied (tests and graceful drains use it; the hot path never does).
// The writer applies items strictly in order, so an empty queue plus
// an acquired-and-released write lock means all prior enqueues landed.
func (s *Store) Flush() {
	for len(s.queue) > 0 && !s.closed.Load() {
		time.Sleep(100 * time.Microsecond)
	}
	s.wmu.Lock()
	//nolint:staticcheck // the lock acquisition is the barrier
	s.wmu.Unlock()
}

// Close stops the async writer (draining queued writes) and closes all
// segment files. The store is unusable afterwards.
func (s *Store) Close() error {
	if s.closed.Load() {
		return ErrClosed
	}
	close(s.stop)
	s.wg.Wait()
	s.closed.Store(true)
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.segmu.Lock()
	defer s.segmu.Unlock()
	var first error
	for _, seg := range s.segments {
		if err := seg.file.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
