package extstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// logOp is one append the property test performed, with its on-disk
// frame size — enough to replay the durable prefix independently of
// the store's own scanner.
type logOp struct {
	del   bool
	key   string
	value string
	size  int64
}

// TestCrashRecoveryProperty is the torn-tail property test: append N
// records (puts, overwrites, deletes) into a single live segment,
// "crash" (close the files without sealing), truncate the segment at
// a random byte, reopen, and assert the rebuilt index equals a replay
// of exactly the frames that fit the truncated prefix — nothing
// resurrected, nothing lost, no partial frame admitted.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			dir := t.TempDir()
			// One big segment so the random cut always lands in the
			// live log rather than a sealed file.
			s, err := Open(Options{Dir: dir, SegmentBytes: 64 << 20})
			if err != nil {
				t.Fatal(err)
			}
			var ops []logOp
			present := map[string]bool{}
			n := 50 + rng.Intn(150)
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("key-%03d", rng.Intn(40))
				if present[key] && rng.Intn(5) == 0 {
					if !s.Delete([]byte(key)) {
						t.Fatalf("Delete(%s) = false, want true", key)
					}
					ops = append(ops, logOp{del: true, key: key, size: frameSize(len(key), 0)})
					present[key] = false
					continue
				}
				value := fmt.Sprintf("%s#%d#%s", key, i, randHex(rng, rng.Intn(64)))
				if err := s.Put([]byte(key), []byte(value), uint32(i), time.Time{}); err != nil {
					t.Fatal(err)
				}
				ops = append(ops, logOp{key: key, value: value, size: frameSize(len(key), len(value))})
				present[key] = true
			}
			segPath := s.active.path
			logSize := s.active.size.Load()
			s.Close() // simulate crash: no footer is written

			// Truncate at a random byte anywhere in the frame region.
			cut := segHeaderSize + rng.Int63n(logSize-segHeaderSize+1)
			if err := os.Truncate(segPath, cut); err != nil {
				t.Fatal(err)
			}

			// Replay the durable prefix: frames wholly inside the cut.
			want := map[string]string{}
			off := int64(segHeaderSize)
			durable := 0
			for _, op := range ops {
				if off+op.size > cut {
					break
				}
				if op.del {
					delete(want, op.key)
				} else {
					want[op.key] = op.value
				}
				off += op.size
				durable++
			}

			r, err := Open(Options{Dir: dir, SegmentBytes: 64 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			if got := r.Len(); got != int64(len(want)) {
				t.Fatalf("recovered %d keys, want %d (cut=%d of %d, %d/%d ops durable)",
					got, len(want), cut, logSize, durable, len(ops))
			}
			for key, value := range want {
				v, _, err := r.GetInto([]byte(key), nil)
				if err != nil {
					t.Fatalf("recovered Get(%s): %v", key, err)
				}
				if string(v) != value {
					t.Fatalf("recovered Get(%s) = %q, want %q", key, v, value)
				}
			}
			// The torn bytes are accounted and physically gone.
			if cut > off {
				if st := r.Stats(); st.TruncatedBytes != cut-off {
					t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, cut-off)
				}
			}
			fi, err := os.Stat(segPath)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != off {
				t.Fatalf("live segment is %d bytes after reopen, want durable prefix %d", fi.Size(), off)
			}

			// And the reopened store keeps working: new appends land
			// after the cut and read back.
			if err := r.Put([]byte("post-crash"), []byte("alive"), 0, time.Time{}); err != nil {
				t.Fatal(err)
			}
			if v, _, err := r.GetInto([]byte("post-crash"), nil); err != nil || string(v) != "alive" {
				t.Fatalf("post-crash put/get = %q, %v", v, err)
			}
		})
	}
}

func randHex(rng *rand.Rand, n int) string {
	const hex = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hex[rng.Intn(len(hex))]
	}
	return string(b)
}

// TestRecoveryMultiSegment covers the sealed-segment path: rotation
// writes footers, reopen trusts them, and tombstones plus overwrites
// resolve across segment boundaries.
func TestRecoveryMultiSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10, MaxBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 300)
	for i := 0; i < 60; i++ {
		if err := s.Put([]byte(fmt.Sprintf("multi-%03d", i)), val, uint32(i), time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some early keys (their new records live in later
	// segments) and delete others.
	if err := s.Put([]byte("multi-001"), []byte("fresh"), 99, time.Time{}); err != nil {
		t.Fatal(err)
	}
	s.Delete([]byte("multi-002"))
	wantKeys := s.Len()
	s.Close()

	r, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10, MaxBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Len(); got != wantKeys {
		t.Fatalf("recovered %d keys, want %d", got, wantKeys)
	}
	if v, flags, err := r.GetInto([]byte("multi-001"), nil); err != nil || string(v) != "fresh" || flags != 99 {
		t.Fatalf("overwrite lost in recovery: %q flags=%d err=%v", v, flags, err)
	}
	if _, _, err := r.GetInto([]byte("multi-002"), nil); err != ErrNotFound {
		t.Fatalf("tombstone lost in recovery: err = %v, want ErrNotFound", err)
	}
	if v, _, err := r.GetInto([]byte("multi-059"), nil); err != nil || !bytes.Equal(v, val) {
		t.Fatalf("tail key lost in recovery: err = %v", err)
	}
	if st := r.Stats(); st.RecoveredRecords != wantKeys {
		t.Fatalf("RecoveredRecords = %d, want %d", st.RecoveredRecords, wantKeys)
	}
}

// TestRecoveryExpiredEntries: expiry deadlines survive the round trip
// and expired records recovered into the index die on first read.
func TestRecoveryExpiredEntries(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(Options{Dir: dir, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("short"), []byte("v"), 0, clk.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("long"), []byte("v"), 0, clk.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	clk.Advance(30 * time.Minute)
	r, err := Open(Options{Dir: dir, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.GetInto([]byte("short"), nil); err != ErrNotFound {
		t.Fatalf("expired key err = %v, want ErrNotFound", err)
	}
	if _, _, err := r.GetInto([]byte("long"), nil); err != nil {
		t.Fatalf("live key err = %v", err)
	}
}

// TestRecoveryIgnoresForeignFiles: stray files in the directory are
// neither indexed nor destroyed.
func TestRecoveryIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(stray, []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	bogus := filepath.Join(dir, segFileName(7))
	if err := os.WriteFile(bogus, []byte("wrong magic but right name"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n := s.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
	if _, err := os.Stat(stray); err != nil {
		t.Fatalf("stray file disturbed: %v", err)
	}
}
