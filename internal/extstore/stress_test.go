package extstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentReadAppendCompact is the -race stress test: readers,
// synchronous and async writers, a deleter and an explicit compactor
// all hammer one store. Values embed their key, so any read that
// returns the wrong record's bytes (a torn relocation, a stale index
// entry served after its segment was reclaimed) fails loudly rather
// than silently.
func TestConcurrentReadAppendCompact(t *testing.T) {
	s := mustOpen(t, Options{
		SegmentBytes: 8 << 10,
		MaxBytes:     1 << 20,
		QueueDepth:   256,
	})
	const (
		keySpace = 64
		writers  = 3
		readers  = 4
		opsPer   = 400
	)
	keyOf := func(i int) string { return fmt.Sprintf("stress-%03d", i) }
	valOf := func(key string, n int) []byte {
		return []byte(fmt.Sprintf("%s|%04d|%s", key, n, bytes.Repeat([]byte("p"), 64+n%128)))
	}

	var wrongReads atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPer; i++ {
				key := keyOf(rng.Intn(keySpace))
				switch rng.Intn(10) {
				case 0:
					s.Delete([]byte(key))
				case 1:
					s.PutAsync(key, valOf(key, i), 0, time.Time{})
				default:
					if err := s.Put([]byte(key), valOf(key, i), 0, time.Time{}); err != nil {
						t.Errorf("Put(%s): %v", key, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			dst := make([]byte, 0, 512)
			for i := 0; i < opsPer*2; i++ {
				key := keyOf(rng.Intn(keySpace))
				v, _, err := s.GetInto([]byte(key), dst[:0])
				if err != nil {
					continue // miss/raced delete: fine
				}
				if !bytes.HasPrefix(v, []byte(key+"|")) {
					wrongReads.Add(1)
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := s.Compact(); err != nil && err != ErrClosed {
				t.Errorf("Compact: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	s.Flush()
	if n := wrongReads.Load(); n != 0 {
		t.Fatalf("%d reads returned bytes for the wrong key", n)
	}
	// Post-stress sanity: everything still indexed reads back clean.
	for i := 0; i < keySpace; i++ {
		key := keyOf(i)
		v, _, err := s.GetInto([]byte(key), nil)
		if err != nil {
			continue
		}
		if !bytes.HasPrefix(v, []byte(key+"|")) {
			t.Fatalf("final Get(%s) returned foreign bytes", key)
		}
	}
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("stress produced %d corrupt reads", st.Corrupt)
	}
}
