package extstore

import (
	"fmt"
	"os"
)

// rotateLocked seals the active segment (footer frame marks it
// cleanly complete) and opens a fresh one. Caller holds wmu.
func (s *Store) rotateLocked() error {
	seg := s.active
	off := seg.size.Load()
	s.wbuf = appendFrame(s.wbuf[:0], recFooter, nil, nil, 0, 0)
	if err := s.writeFrameLocked(seg, off); err != nil {
		return err
	}
	seg.sealed = true
	return s.openActiveLocked()
}

// maybeCompactLocked reclaims space after appends: sealed segments
// whose dead fraction crossed the threshold are compacted (live,
// unexpired records relocate to the active segment; the file is
// removed), and when live data alone still exceeds the byte budget,
// whole oldest segments are evicted. Caller holds wmu; the compacting
// flag stops the relocation appends from re-entering.
func (s *Store) maybeCompactLocked() {
	if s.compacting {
		return
	}
	s.compacting = true
	defer func() { s.compacting = false }()
	// Bound the passes: each pass removes one segment, so the segment
	// count at entry is a natural ceiling.
	for passes := s.segmentCount() + 1; passes > 0; passes-- {
		victim, ratio := s.pickVictimLocked()
		switch {
		case victim != nil && ratio >= s.opts.CompactThreshold:
			s.compactSegmentLocked(victim)
		case s.Bytes() > s.opts.MaxBytes && victim != nil && ratio > 0.05:
			s.compactSegmentLocked(victim)
		case s.Bytes() > s.opts.MaxBytes:
			if !s.dropOldestLocked() {
				return
			}
		default:
			return
		}
	}
}

// Compact runs one full reclamation pass regardless of thresholds:
// every sealed segment with any dead bytes is rewritten. Tests and
// operators use it; the hot path relies on maybeCompactLocked.
func (s *Store) Compact() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.compacting {
		return nil
	}
	s.compacting = true
	defer func() { s.compacting = false }()
	for {
		victim, ratio := s.pickVictimLocked()
		if victim == nil || ratio <= 0 {
			return nil
		}
		if err := s.compactSegmentLocked(victim); err != nil {
			return err
		}
	}
}

func (s *Store) segmentCount() int {
	s.segmu.RLock()
	n := len(s.segments)
	s.segmu.RUnlock()
	return n
}

// pickVictimLocked returns the sealed segment with the highest dead
// fraction. Caller holds wmu.
func (s *Store) pickVictimLocked() (*segment, float64) {
	var best *segment
	var bestRatio float64
	s.segmu.RLock()
	for _, seg := range s.segments {
		if seg == s.active || !seg.sealed {
			continue
		}
		size := seg.size.Load()
		if size <= segHeaderSize {
			continue
		}
		ratio := float64(seg.dead.Load()) / float64(size)
		if best == nil || ratio > bestRatio {
			best, bestRatio = seg, ratio
		}
	}
	s.segmu.RUnlock()
	return best, bestRatio
}

// compactSegmentLocked relocates the victim's live records to the
// active segment and removes its file. Caller holds wmu with the
// compacting flag set. Readers retry through the index, which is
// repointed before the segment disappears.
func (s *Store) compactSegmentLocked(victim *segment) error {
	data, err := s.readSegment(victim)
	if err != nil {
		return err
	}
	now := s.clock().UnixNano()
	var relocated int64
	s.iterFrames(data, func(off int64, h frameHeader, key, value []byte) bool {
		if h.typ != recPut {
			return true
		}
		want := loc{seg: victim.id, off: off, size: uint32(frameSize(h.keyLen, h.valLen)), expires: h.expires}
		sh := s.shardFor(key)
		sh.mu.RLock()
		cur, ok := sh.m[string(key)]
		sh.mu.RUnlock()
		if !ok || cur != want {
			return true // overwritten or deleted: dead already
		}
		if h.expires != 0 && now >= h.expires {
			s.dropEntry(key, want)
			s.expired.Add(1)
			return true
		}
		// Relocate: append to the active log, repoint the index.
		if err := s.putLocked(key, value, h.flags, h.expires); err != nil {
			return false
		}
		s.puts.Add(-1) // relocations are not user puts
		relocated++
		return true
	})
	s.relocated.Add(relocated)
	s.compactions.Add(1)
	s.reclaimed.Add(victim.size.Load())
	s.removeSegmentLocked(victim)
	return nil
}

// dropOldestLocked evicts the lowest-id sealed segment wholesale —
// the budget enforcement of last resort when live data alone exceeds
// MaxBytes. Its still-live keys fall back to backend misses.
func (s *Store) dropOldestLocked() bool {
	var oldest *segment
	s.segmu.RLock()
	for _, seg := range s.segments {
		if seg == s.active || !seg.sealed {
			continue
		}
		if oldest == nil || seg.id < oldest.id {
			oldest = seg
		}
	}
	s.segmu.RUnlock()
	if oldest == nil {
		return false
	}
	data, err := s.readSegment(oldest)
	if err == nil {
		s.iterFrames(data, func(off int64, h frameHeader, key, value []byte) bool {
			if h.typ != recPut {
				return true
			}
			want := loc{seg: oldest.id, off: off, size: uint32(frameSize(h.keyLen, h.valLen)), expires: h.expires}
			s.dropEntry(key, want)
			return true
		})
	}
	s.droppedSegs.Add(1)
	s.reclaimed.Add(oldest.size.Load())
	s.removeSegmentLocked(oldest)
	return true
}

// readSegment snapshots a segment's valid bytes (header included).
func (s *Store) readSegment(seg *segment) ([]byte, error) {
	size := seg.size.Load()
	data := make([]byte, size)
	if _, err := seg.file.ReadAt(data, 0); err != nil {
		return nil, fmt.Errorf("extstore: compact read: %w", err)
	}
	return data, nil
}

// removeSegmentLocked unmaps, closes and unlinks a segment. Taking
// segmu exclusively here is what makes in-flight ReadAt safe: readers
// hold the shared side for the duration of the read.
func (s *Store) removeSegmentLocked(seg *segment) {
	s.segmu.Lock()
	delete(s.segments, seg.id)
	s.segmu.Unlock()
	seg.file.Close()
	os.Remove(seg.path)
}

// iterFrames walks the frames in a scanned segment image, verifying
// every checksum, stopping at the footer, a torn or corrupt frame, or
// when fn returns false. It returns the byte offset of the valid
// prefix (the truncation point for a torn live segment) and whether a
// clean footer was reached. fn may be nil to validate only.
func (s *Store) iterFrames(data []byte, fn func(off int64, h frameHeader, key, value []byte) bool) (validEnd int64, sealed bool) {
	off := int64(segHeaderSize)
	n := int64(len(data))
	for off+frameHeaderSize <= n {
		h := parseFrameHeader(data[off:])
		switch h.typ {
		case recFooter:
			if h.keyLen != 0 || h.valLen != 0 || crc32Update(0, data[off:off+19]) != h.crc {
				return off, false
			}
			return off + frameHeaderSize, true
		case recPut, recDelete:
			end := off + frameSize(h.keyLen, h.valLen)
			if h.keyLen == 0 || h.keyLen > MaxKeyLen ||
				h.valLen > s.opts.MaxValueBytes || end > n {
				return off, false
			}
			crc := crc32Update(0, data[off:off+19])
			crc = crc32Update(crc, data[off+frameHeaderSize:end])
			if crc != h.crc {
				return off, false
			}
			if fn != nil {
				key := data[off+frameHeaderSize : off+frameHeaderSize+int64(h.keyLen)]
				value := data[off+frameHeaderSize+int64(h.keyLen) : end]
				if !fn(off, h, key, value) {
					return off, false
				}
			}
			off = end
		default:
			return off, false
		}
	}
	return off, false
}
