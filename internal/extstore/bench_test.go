package extstore

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkExtstoreRead is the disk-hit path: index lookup, two preads
// and a checksum. With a preallocated dst it must stay allocation-free
// — the server's miss path calls this before touching the backend.
func BenchmarkExtstoreRead(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), SegmentBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const keys = 1024
	val := make([]byte, 256)
	for i := range val {
		val[i] = byte(i)
	}
	keyBufs := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyBufs[i] = []byte(fmt.Sprintf("bench-key-%06d", i))
		if err := s.Put(keyBufs[i], val, 0, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, err := s.GetInto(keyBufs[i%keys], dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		if len(v) != len(val) {
			b.Fatal("short read")
		}
	}
}

// BenchmarkExtstoreWrite is the eviction-fed append path: frame
// encode, one pwrite, index update (rotation and compaction amortized
// in).
func BenchmarkExtstoreWrite(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), SegmentBytes: 16 << 20, MaxBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 256)
	const keys = 4096
	keyBufs := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyBufs[i] = []byte(fmt.Sprintf("bench-key-%06d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(keyBufs[i%keys], val, 0, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
}
