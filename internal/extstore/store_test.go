package extstore

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable time source for expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := mustOpen(t, Options{})
	cases := []struct {
		key   string
		value string
		flags uint32
	}{
		{"alpha", "value-one", 7},
		{"beta", "", 0}, // empty value
		{"gamma", string(bytes.Repeat([]byte{0xAB}, 4096)), 42}, // binary
	}
	for _, c := range cases {
		if err := s.Put([]byte(c.key), []byte(c.value), c.flags, time.Time{}); err != nil {
			t.Fatalf("Put(%q): %v", c.key, err)
		}
	}
	for _, c := range cases {
		v, flags, err := s.GetInto([]byte(c.key), nil)
		if err != nil {
			t.Fatalf("GetInto(%q): %v", c.key, err)
		}
		if string(v) != c.value || flags != c.flags {
			t.Fatalf("GetInto(%q) = %d bytes flags=%d, want %d bytes flags=%d",
				c.key, len(v), flags, len(c.value), c.flags)
		}
	}
	if _, _, err := s.GetInto([]byte("absent"), nil); err != ErrNotFound {
		t.Fatalf("GetInto(absent) err = %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Keys != 3 {
		t.Fatalf("stats = %+v, want 3 hits 1 miss 3 keys", st)
	}
}

func TestGetIntoAppendsToDst(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Put([]byte("k"), []byte("world"), 0, time.Time{}); err != nil {
		t.Fatal(err)
	}
	dst := append(make([]byte, 0, 64), "hello "...)
	v, _, err := s.GetInto([]byte("k"), dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "hello world" {
		t.Fatalf("GetInto appended %q, want %q", v, "hello world")
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	s := mustOpen(t, Options{})
	key := []byte("k")
	for i := 0; i < 10; i++ {
		if err := s.Put(key, []byte(fmt.Sprintf("v%d", i)), uint32(i), time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	v, flags, err := s.GetInto(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v9" || flags != 9 {
		t.Fatalf("got %q flags=%d, want v9 flags=9", v, flags)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if st := s.Stats(); st.DeadBytes == 0 {
		t.Fatal("overwrites should accumulate dead bytes")
	}
}

func TestDelete(t *testing.T) {
	s := mustOpen(t, Options{})
	key := []byte("k")
	if s.Delete(key) {
		t.Fatal("Delete(absent) = true, want false")
	}
	if err := s.Put(key, []byte("v"), 0, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if !s.Delete(key) {
		t.Fatal("Delete(present) = false, want true")
	}
	if _, _, err := s.GetInto(key, nil); err != ErrNotFound {
		t.Fatalf("Get after delete err = %v, want ErrNotFound", err)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
}

func TestExpiry(t *testing.T) {
	clk := newFakeClock()
	s := mustOpen(t, Options{Clock: clk.Now})
	key := []byte("k")
	if err := s.Put(key, []byte("v"), 0, clk.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetInto(key, nil); err != nil {
		t.Fatalf("fresh get: %v", err)
	}
	clk.Advance(2 * time.Minute)
	if _, _, err := s.GetInto(key, nil); err != ErrNotFound {
		t.Fatalf("expired get err = %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
	// Storing an already-expired value is a silent no-op.
	if err := s.Put([]byte("dead"), []byte("v"), 0, clk.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetInto([]byte("dead"), nil); err != ErrNotFound {
		t.Fatalf("pre-expired put should not be stored, got err = %v", err)
	}
}

func TestValidation(t *testing.T) {
	s := mustOpen(t, Options{MaxValueBytes: 128})
	if err := s.Put(nil, []byte("v"), 0, time.Time{}); err != ErrKeyInvalid {
		t.Fatalf("empty key err = %v, want ErrKeyInvalid", err)
	}
	long := bytes.Repeat([]byte("k"), MaxKeyLen+1)
	if err := s.Put(long, []byte("v"), 0, time.Time{}); err != ErrKeyInvalid {
		t.Fatalf("long key err = %v, want ErrKeyInvalid", err)
	}
	big := bytes.Repeat([]byte("v"), 129)
	if err := s.Put([]byte("k"), big, 0, time.Time{}); err != ErrValueTooLarge {
		t.Fatalf("big value err = %v, want ErrValueTooLarge", err)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	s := mustOpen(t, Options{SegmentBytes: 4 << 10, MaxBytes: 1 << 20})
	val := bytes.Repeat([]byte("x"), 256)
	// Hammer a small key set so most bytes in sealed segments are
	// overwritten garbage.
	for round := 0; round < 40; round++ {
		for i := 0; i < 16; i++ {
			key := []byte(fmt.Sprintf("key-%02d", i))
			if err := s.Put(key, val, uint32(round), time.Time{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("expected compactions, stats = %+v", st)
	}
	if st.Keys != 16 {
		t.Fatalf("Keys = %d, want 16", st.Keys)
	}
	for i := 0; i < 16; i++ {
		key := []byte(fmt.Sprintf("key-%02d", i))
		v, flags, err := s.GetInto(key, nil)
		if err != nil {
			t.Fatalf("Get(%s) after compaction: %v", key, err)
		}
		if !bytes.Equal(v, val) || flags != 39 {
			t.Fatalf("Get(%s) = %d bytes flags=%d, want %d bytes flags=39", key, len(v), flags, len(val))
		}
	}
	// Live bytes are 16 records; the footprint must be a small
	// multiple of that, not the full write history.
	live := int64(16) * frameSize(6, len(val))
	if got := s.Bytes(); got > 8*live+2*(4<<10) {
		t.Fatalf("Bytes = %d, want near live set %d", got, live)
	}
}

func TestCompactionHonorsTTL(t *testing.T) {
	clk := newFakeClock()
	s := mustOpen(t, Options{SegmentBytes: 4 << 10, Clock: clk.Now})
	val := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("ttl-%03d", i))
		if err := s.Put(key, val, 0, clk.Now().Add(time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Hour)
	// Reads observe the expirations, crediting dead bytes to their
	// segments so compaction has something to reclaim.
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("ttl-%03d", i))
		if _, _, err := s.GetInto(key, nil); err != ErrNotFound {
			t.Fatalf("expired Get(%s) err = %v, want ErrNotFound", key, err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Relocated != 0 {
		t.Fatalf("Relocated = %d, want 0 (every record expired)", st.Relocated)
	}
	if st.Compactions == 0 {
		t.Fatal("expected the all-dead sealed segments to be compacted away")
	}
	if st.Keys != 0 {
		t.Fatalf("Keys = %d, want 0", st.Keys)
	}
}

func TestBudgetDropsOldestSegments(t *testing.T) {
	s := mustOpen(t, Options{SegmentBytes: 4 << 10, MaxBytes: 8 << 10})
	val := bytes.Repeat([]byte("x"), 512)
	// Unique keys: nothing is dead, so the only way to stay under
	// budget is dropping whole old segments.
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("uniq-%04d", i))
		if err := s.Put(key, val, 0, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.DroppedSegments == 0 {
		t.Fatalf("expected dropped segments, stats = %+v", st)
	}
	if got := s.Bytes(); got > s.opts.MaxBytes+s.opts.SegmentBytes {
		t.Fatalf("Bytes = %d, want <= budget %d plus one segment slack", got, s.opts.MaxBytes)
	}
	// The newest keys must still be present.
	if _, _, err := s.GetInto([]byte("uniq-0199"), nil); err != nil {
		t.Fatalf("newest key lost: %v", err)
	}
}

func TestPutAsyncAndFlush(t *testing.T) {
	s := mustOpen(t, Options{})
	for i := 0; i < 64; i++ {
		if !s.PutAsync(fmt.Sprintf("async-%02d", i), []byte("v"), 0, time.Time{}) {
			t.Fatalf("PutAsync(%d) rejected", i)
		}
	}
	s.Flush()
	if n := s.Len(); n != 64 {
		t.Fatalf("Len = %d after flush, want 64", n)
	}
}

func TestPutAsyncShedsWhenFull(t *testing.T) {
	s := mustOpen(t, Options{QueueDepth: 1})
	// Stall the writer by holding the write lock, then overfill.
	s.wmu.Lock()
	accepted := 0
	for i := 0; i < 64; i++ {
		if s.PutAsync(fmt.Sprintf("shed-%02d", i), []byte("v"), 0, time.Time{}) {
			accepted++
		}
	}
	s.wmu.Unlock()
	if accepted >= 64 {
		t.Fatal("bounded queue accepted every write while the writer was stalled")
	}
	if st := s.Stats(); st.Drops == 0 {
		t.Fatalf("Drops = 0, want > 0")
	}
}

func TestCorruptRecordDetectedOnRead(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	key := []byte("victim")
	val := bytes.Repeat([]byte("v"), 128)
	if err := s.Put(key, val, 0, time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the value region of the only record.
	f, err := os.OpenFile(s.active.path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(segHeaderSize + frameHeaderSize + len(key) + 10)
	if _, err := f.WriteAt([]byte{0xFF ^ 'v'}, off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := s.GetInto(key, nil); err != ErrCorrupt {
		t.Fatalf("corrupt get err = %v, want ErrCorrupt", err)
	}
	// The poisoned entry is dropped: next read is a plain miss.
	if _, _, err := s.GetInto(key, nil); err != ErrNotFound {
		t.Fatalf("second get err = %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
}

func TestClosedStoreRejects(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Put([]byte("k"), []byte("v"), 0, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetInto([]byte("k"), nil); err != ErrClosed {
		t.Fatalf("Get after close err = %v, want ErrClosed", err)
	}
	if err := s.Put([]byte("k"), []byte("v"), 0, time.Time{}); err != ErrClosed {
		t.Fatalf("Put after close err = %v, want ErrClosed", err)
	}
	if s.PutAsync("k", []byte("v"), 0, time.Time{}) {
		t.Fatal("PutAsync after close accepted")
	}
	if err := s.Close(); err != ErrClosed {
		t.Fatalf("double close err = %v, want ErrClosed", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir should fail")
	}
}

func TestLookupFlushAllAndAccessors(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Clock: clk.Now})
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	if got := FrameCost(5, 100); got != frameHeaderSize+105 {
		t.Fatalf("FrameCost(5, 100) = %d, want %d", got, frameHeaderSize+105)
	}

	deadline := clk.Now().Add(time.Minute)
	if err := s.Put([]byte("ttl"), []byte("soon"), 9, deadline); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("keep"), []byte("forever"), 3, time.Time{}); err != nil {
		t.Fatal(err)
	}
	v, flags, exp, err := s.Lookup([]byte("ttl"), nil)
	if err != nil || string(v) != "soon" || flags != 9 {
		t.Fatalf("Lookup(ttl) = %q flags=%d err=%v", v, flags, err)
	}
	if !exp.Equal(deadline) {
		t.Fatalf("Lookup(ttl) expires = %v, want %v", exp, deadline)
	}
	if _, _, exp, err := s.Lookup([]byte("keep"), nil); err != nil || !exp.IsZero() {
		t.Fatalf("Lookup(keep) expires = %v err = %v, want zero deadline", exp, err)
	}
	if _, _, _, err := s.Lookup([]byte("absent"), nil); err != ErrNotFound {
		t.Fatalf("Lookup(absent) err = %v, want ErrNotFound", err)
	}
	clk.Advance(2 * time.Minute)
	if _, _, _, err := s.Lookup([]byte("ttl"), nil); err != ErrNotFound {
		t.Fatalf("Lookup past deadline err = %v, want ErrNotFound", err)
	}

	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after FlushAll = %d, want 0", s.Len())
	}
	if _, _, err := s.GetInto([]byte("keep"), nil); err != ErrNotFound {
		t.Fatalf("GetInto after FlushAll err = %v, want ErrNotFound", err)
	}
	// The flushed tier stays writable: a fresh active segment accepts
	// new puts and serves them back.
	if err := s.Put([]byte("after"), []byte("flush"), 1, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if v, _, err := s.GetInto([]byte("after"), nil); err != nil || string(v) != "flush" {
		t.Fatalf("GetInto after re-put = %q, %v", v, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushAll(); err != ErrClosed {
		t.Fatalf("FlushAll after close err = %v, want ErrClosed", err)
	}
	if _, _, _, err := s.Lookup([]byte("after"), nil); err != ErrClosed {
		t.Fatalf("Lookup after close err = %v, want ErrClosed", err)
	}
}
