// Package extstore is the log-structured SSD-backed second cache tier:
// values evicted from the RAM LRU are appended to on-disk segments and
// indexed in memory, so a subsequent RAM miss becomes a cheap disk hit
// instead of a full backend fetch. The design follows memcached's
// extstore: append-only segment files, an FNV-sharded in-memory
// key→(segment,offset,length) index, TTL-aware compaction that
// reclaims dead and expired bytes, and WAL-style recovery — a crashed
// process rebuilds the index by scanning segments and truncates the
// torn tail of the live segment at the first record that fails its
// checksum.
package extstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Result errors.
var (
	// ErrNotFound: the key is not on disk (or expired, or invalidated).
	ErrNotFound = errors.New("extstore: not found")
	// ErrCorrupt: the record failed its checksum or framing check.
	ErrCorrupt = errors.New("extstore: corrupt record")
	// ErrClosed: the store has been closed.
	ErrClosed = errors.New("extstore: store closed")
	// ErrKeyInvalid: empty or oversized key.
	ErrKeyInvalid = errors.New("extstore: invalid key")
	// ErrValueTooLarge: the value exceeds MaxValueBytes.
	ErrValueTooLarge = errors.New("extstore: value too large")
)

// MaxKeyLen mirrors memcached's 250-byte key limit.
const MaxKeyLen = 250

// Segment files start with a fixed header so a scan can reject foreign
// files before trusting any frame in them.
const (
	segMagic      = "MQXSEG1\n"
	segHeaderSize = 16 // magic (8) + segment id (8)
)

// Record frame types. A segment is a sequence of frames after the
// header: puts carry key+value payloads, deletes are key-only
// tombstones (so invalidations survive a crash), and a footer frame
// marks a cleanly sealed segment — a scan that reaches the footer knows
// the segment is complete; a scan that does not hits either the live
// append point or a torn tail.
const (
	recPut    byte = 1
	recDelete byte = 2
	recFooter byte = 3
)

// frameHeaderSize is the fixed prefix of every frame:
// type (1) + keyLen (2) + valLen (4) + flags (4) + expires (8) + crc (4).
const frameHeaderSize = 23

// crcTable is Castagnoli — hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crc32Update is a shorthand over the shared table.
func crc32Update(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, crcTable, p)
}

// frameHeader is the decoded fixed prefix of a frame.
type frameHeader struct {
	typ     byte
	keyLen  int
	valLen  int
	flags   uint32
	expires int64 // unix nanos; 0 = never expires
	crc     uint32
}

// frameSize is the on-disk footprint of a frame with the given payload.
func frameSize(keyLen, valLen int) int64 {
	return frameHeaderSize + int64(keyLen) + int64(valLen)
}

// appendFrame encodes one frame (header + key + value) onto buf. The
// CRC covers the header prefix (sans CRC field) plus both payloads, so
// a torn write anywhere in the frame is detected on scan.
func appendFrame(buf []byte, typ byte, key, value []byte, flags uint32, expires int64) []byte {
	var hdr [frameHeaderSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint16(hdr[1:3], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[3:7], uint32(len(value)))
	binary.LittleEndian.PutUint32(hdr[7:11], flags)
	binary.LittleEndian.PutUint64(hdr[11:19], uint64(expires))
	crc := crc32.Update(0, crcTable, hdr[:19])
	crc = crc32.Update(crc, crcTable, key)
	crc = crc32.Update(crc, crcTable, value)
	binary.LittleEndian.PutUint32(hdr[19:23], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// parseFrameHeader decodes the fixed prefix. b must be at least
// frameHeaderSize long.
func parseFrameHeader(b []byte) frameHeader {
	return frameHeader{
		typ:     b[0],
		keyLen:  int(binary.LittleEndian.Uint16(b[1:3])),
		valLen:  int(binary.LittleEndian.Uint32(b[3:7])),
		flags:   binary.LittleEndian.Uint32(b[7:11]),
		expires: int64(binary.LittleEndian.Uint64(b[11:19])),
		crc:     binary.LittleEndian.Uint32(b[19:23]),
	}
}

// appendSegHeader encodes the segment file header.
func appendSegHeader(buf []byte, id uint64) []byte {
	buf = append(buf, segMagic...)
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], id)
	return append(buf, idb[:]...)
}

// parseSegHeader validates the magic and returns the recorded id.
func parseSegHeader(b []byte) (uint64, bool) {
	if len(b) < segHeaderSize || string(b[:len(segMagic)]) != segMagic {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b[len(segMagic):segHeaderSize]), true
}

// FrameCost reports the on-disk footprint of one stored record (header
// plus key and value payloads), so capacity planners can convert an
// item budget into a MaxBytes segment budget.
func FrameCost(keyLen, valueLen int) int64 { return frameSize(keyLen, valueLen) }
