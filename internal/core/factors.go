package core

// Factor describes one latency factor from the paper's Table 2 together
// with the qualitative law derived in §5.2.
type Factor struct {
	Symbol string
	Name   string
	Law    string
}

// Factors returns the paper's Table 2 with the quantitative findings of
// §5.2/§5.3 attached; cmd/latency-model prints it as a cheat sheet.
func Factors() []Factor {
	return []Factor{
		{
			Symbol: "q",
			Name:   "Concurrent probability of keys per Memcached server",
			Law:    "E[TS(N)] = Θ(1/(1-q)): linear in the mean batch size",
		},
		{
			Symbol: "ξ",
			Name:   "Burst degree of key arrivals (Generalized Pareto shape)",
			Law:    "enters through δ; lowers the utilization cliff ρS(ξ) (Table 4)",
		},
		{
			Symbol: "λ",
			Name:   "Average key arrival rate per Memcached server",
			Law:    "latency has a cliff at ρS = λ/µS ≈ ρS(ξ) (75% for Facebook workload)",
		},
		{
			Symbol: "µS",
			Name:   "Average service rate at each Memcached server",
			Law:    "same cliff in ρS; raising µS past the cliff yields diminishing returns",
		},
		{
			Symbol: "p1",
			Name:   "Largest load ratio among Memcached servers",
			Law:    "latency tracks the heaviest server; balance only matters past the cliff",
		},
		{
			Symbol: "r",
			Name:   "Cache miss ratio",
			Law:    "E[TD(N)] = Θ(r) for small N, Θ(log r) for large N (eq. 25)",
		},
		{
			Symbol: "N",
			Name:   "Keys generated per end-user request",
			Law:    "E[TS(N)] and E[TD(N)] both grow Θ(log N)",
		},
	}
}
