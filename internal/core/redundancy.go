package core

import (
	"fmt"
	"math"
)

// Read-redundancy extension. The paper's related work (§2.2) cites
// "Low latency via redundancy" (Vulimiri et al.) and C3: issue each key
// to d replicas and keep the first answer. Within the paper's model
// this replaces the per-key latency CDF F(t) with 1 − (1−F(t))^d —
// and, because every replica serves the duplicated traffic, inflates
// each server's arrival rate by d. The two effects fight: redundancy
// wins at low utilization and loses past a crossover, which
// ExpectedTSPointRedundant lets you locate.

// ExpectedTSPointRedundant returns the Theorem 1-style point estimate
// (completion-time upper bound) of E[T_S(N)] when every key is sent to
// d replicas and the first response wins.
//
// When inflateLoad is true each server's key arrival rate is multiplied
// by d (the physically consistent accounting: duplicated requests are
// served everywhere). With inflateLoad false the load is held fixed —
// the hypothetical "free replicas" upper bound on the benefit.
func (c *Config) ExpectedTSPointRedundant(d int, inflateLoad bool) (float64, error) {
	if d < 1 {
		return 0, fmt.Errorf("core: replication degree %d must be >= 1", d)
	}
	trial := *c
	if inflateLoad {
		trial.TotalKeyRate = c.TotalKeyRate * float64(d)
	}
	if err := trial.Validate(); err != nil {
		return 0, err
	}
	tails, err := trial.tails()
	if err != nil {
		return 0, err
	}
	// Per-key latency with d-way redundancy: min of d i.i.d. draws from
	// the (completion-form) per-key CDF. Composite over servers, then
	// the N/(N+1) maximal-statistics quantile as usual.
	k := float64(trial.N) / float64(trial.N+1)
	logK := math.Log(k)
	logCDF := func(t float64) float64 {
		var s float64
		for _, st := range tails {
			base := -math.Expm1(-st.rate * t) // completion CDF
			if base <= 0 {
				return math.Inf(-1)
			}
			// 1 - (1-base)^d, computed stably.
			red := -math.Expm1(float64(d) * math.Log1p(-base))
			if red <= 0 {
				return math.Inf(-1)
			}
			s += st.p * math.Log(red)
		}
		return s
	}
	return solveQuantile(logCDF, logK), nil
}

// RedundancyCrossover finds the base utilization (of the heaviest
// server, before duplication) at which d-way redundancy with load
// inflation stops helping: below the returned ρ it lowers E[T_S(N)],
// above it the duplicated load costs more than the hedge saves. Returns
// an error if redundancy never helps even at vanishing load.
func (c *Config) RedundancyCrossover(d int) (float64, error) {
	if d < 2 {
		return 0, fmt.Errorf("core: crossover needs d >= 2, got %d", d)
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	p1, _ := c.MaxLoadRatio()
	// The duplicated system saturates at base utilization 1/d.
	benefit := func(rho float64) (float64, error) {
		trial := *c
		trial.TotalKeyRate = rho * c.MuS / p1
		base, err := trial.ExpectedTSPoint()
		if err != nil {
			return 0, err
		}
		red, err := trial.ExpectedTSPointRedundant(d, true)
		if err != nil {
			return 0, err
		}
		return base - red, nil // positive = redundancy helps
	}
	loRho := 0.02
	hiRho := (1 - 1e-6) / float64(d)
	bLo, err := benefit(loRho)
	if err != nil {
		return 0, err
	}
	if bLo <= 0 {
		return 0, fmt.Errorf("core: %d-way redundancy does not help even at ρ=%.2f", d, loRho)
	}
	// benefit is positive at loRho and negative near saturation of the
	// duplicated system; bisect the sign change.
	for i := 0; i < 60; i++ {
		mid := (loRho + hiRho) / 2
		b, err := benefit(mid)
		if err != nil {
			// Close to duplicated saturation the trial can go unstable;
			// treat as "redundancy hurts" territory.
			hiRho = mid
			continue
		}
		if b > 0 {
			loRho = mid
		} else {
			hiRho = mid
		}
	}
	return (loRho + hiRho) / 2, nil
}
