package core

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	// Relative comparison with a tiny absolute floor so that
	// microsecond-scale quantities are compared meaningfully.
	return math.Abs(a-b) <= tol*math.Max(1e-15, math.Max(math.Abs(a), math.Abs(b)))
}

// facebook mirrors workload.Facebook without importing it (core must not
// depend on higher layers).
func facebook() *Config {
	return &Config{
		N:              150,
		LoadRatios:     BalancedLoad(4),
		TotalKeyRate:   4 * 62500,
		Q:              0.1,
		Xi:             0.15,
		MuS:            80000,
		MissRatio:      0.01,
		MuD:            1000,
		NetworkLatency: 20e-6,
	}
}

func TestBalancedLoad(t *testing.T) {
	p := BalancedLoad(4)
	if len(p) != 4 {
		t.Fatalf("len = %d", len(p))
	}
	for _, v := range p {
		if v != 0.25 {
			t.Fatalf("ratio %v != 0.25", v)
		}
	}
}

func TestUnbalancedLoad(t *testing.T) {
	p, err := UnbalancedLoad(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0.7 {
		t.Errorf("p1 = %v", p[0])
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("sum = %v", sum)
	}
	if _, err := UnbalancedLoad(4, 0.1); err == nil {
		t.Error("p1 below 1/m accepted")
	}
	if _, err := UnbalancedLoad(4, 1.1); err == nil {
		t.Error("p1 > 1 accepted")
	}
	if _, err := UnbalancedLoad(0, 0.5); err == nil {
		t.Error("m=0 accepted")
	}
	// m=1 edge: p1 must be 1.
	p1, err := UnbalancedLoad(1, 1)
	if err != nil || len(p1) != 1 || p1[0] != 1 {
		t.Errorf("m=1: %v %v", p1, err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := facebook()
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero N", func(c *Config) { c.N = 0 }},
		{"empty ratios", func(c *Config) { c.LoadRatios = nil }},
		{"ratios not normalized", func(c *Config) { c.LoadRatios = []float64{0.5, 0.1} }},
		{"negative ratio", func(c *Config) { c.LoadRatios = []float64{1.5, -0.5} }},
		{"zero rate", func(c *Config) { c.TotalKeyRate = 0 }},
		{"q out of range", func(c *Config) { c.Q = 1 }},
		{"negative q", func(c *Config) { c.Q = -0.1 }},
		{"xi out of range", func(c *Config) { c.Xi = 1 }},
		{"zero muS", func(c *Config) { c.MuS = 0 }},
		{"miss ratio > 1", func(c *Config) { c.MissRatio = 1.5 }},
		{"negative miss ratio", func(c *Config) { c.MissRatio = -0.1 }},
		{"zero muD", func(c *Config) { c.MuD = 0 }},
		{"negative network", func(c *Config) { c.NetworkLatency = -1 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			c := facebook()
			tt.mutate(c)
			if err := c.Validate(); err == nil {
				t.Errorf("mutation accepted")
			}
		})
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	c := facebook()
	if c.M() != 4 {
		t.Errorf("M = %d", c.M())
	}
	if !almostEqual(c.ServerKeyRate(0), 62500, 1e-9) {
		t.Errorf("server rate = %v", c.ServerKeyRate(0))
	}
	if !almostEqual(c.ServerUtilization(0), 62500.0/80000, 1e-9) {
		t.Errorf("rho = %v", c.ServerUtilization(0))
	}
	p1, idx := c.MaxLoadRatio()
	if p1 != 0.25 || idx != 0 {
		t.Errorf("max ratio %v@%d", p1, idx)
	}
	if !almostEqual(c.MaxUtilization(), 0.78125, 1e-9) {
		t.Errorf("max rho = %v", c.MaxUtilization())
	}
}

func TestServerQueueErrors(t *testing.T) {
	c := facebook()
	if _, err := c.ServerQueue(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := c.ServerQueue(4); err == nil {
		t.Error("out-of-range index accepted")
	}
	c2 := facebook()
	c2.LoadRatios = []float64{1, 0}
	if _, err := c2.ServerQueue(1); err == nil {
		t.Error("zero-load server queue built")
	}
}

func TestHeaviestQueueMatchesMaxRatio(t *testing.T) {
	c := facebook()
	ratios, err := UnbalancedLoad(4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	c.LoadRatios = ratios
	c.TotalKeyRate = 80000
	bq, err := c.HeaviestQueue()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(bq.KeyArrivalRate(), 0.6*80000, 1e-6) {
		t.Errorf("heaviest key rate = %v", bq.KeyArrivalRate())
	}
}

func TestDatabaseQueue(t *testing.T) {
	c := facebook()
	db, err := c.DatabaseQueue()
	if err != nil {
		t.Fatal(err)
	}
	// Miss arrivals: 0.01 * 250000 = 2500/s >= muD -> unstable!
	// The paper's testbed numbers make the DB stage technically
	// overloaded in aggregate; our model surfaces it. (The paper treats
	// the DB as lightly loaded; see TestFacebookDBStability note.)
	if got := db.Utilization(); !almostEqual(got, 2.5, 1e-9) {
		t.Errorf("db rho = %v", got)
	}
}
