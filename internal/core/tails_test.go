package core

import (
	"math"
	"testing"
)

func TestTSQuantileBoundsOrderedAndMonotone(t *testing.T) {
	c := facebook()
	prevHi := 0.0
	for _, k := range []float64{0.5, 0.9, 0.99, 0.999} {
		b, err := c.TSQuantileBounds(k)
		if err != nil {
			t.Fatal(err)
		}
		if b.Lo < 0 || b.Hi < b.Lo {
			t.Errorf("k=%v: bounds %+v", k, b)
		}
		if b.Hi <= prevHi {
			t.Errorf("k=%v: upper bound not increasing", k)
		}
		prevHi = b.Hi
	}
	for _, k := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := c.TSQuantileBounds(k); err == nil {
			t.Errorf("level %v accepted", k)
		}
	}
}

// The median of TS(N) should be near the mean-of-max scale: both are
// set by ln(N)/rate.
func TestTSQuantileMedianNearMean(t *testing.T) {
	c := facebook()
	med, err := c.TSQuantileBounds(0.5)
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if med.Hi < est.TS.Hi*0.5 || med.Hi > est.TS.Hi*1.5 {
		t.Errorf("median %v vs mean-scale %v", med.Hi, est.TS.Hi)
	}
}

func TestTDQuantileClosedForm(t *testing.T) {
	c := facebook()
	// CDF(quantile(k)) == k for levels above P{K=0}.
	pNoMiss := math.Pow(1-c.MissRatio, float64(c.N)) // ≈ 0.2215
	for _, k := range []float64{0.5, 0.9, 0.99, 0.999} {
		q, err := c.TDQuantile(k)
		if err != nil {
			t.Fatal(err)
		}
		if k <= pNoMiss {
			if q != 0 {
				t.Errorf("k=%v below no-miss mass: q=%v", k, q)
			}
			continue
		}
		if got := c.TDCDF(q); !almostEqual(got, k, 1e-9) {
			t.Errorf("CDF(quantile(%v)) = %v", k, got)
		}
	}
	// Below the no-miss mass the quantile is exactly 0.
	q, err := c.TDQuantile(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Errorf("quantile below P{K=0} = %v, want 0", q)
	}
}

func TestTDQuantileZeroMiss(t *testing.T) {
	c := facebook()
	c.MissRatio = 0
	q, err := c.TDQuantile(0.99)
	if err != nil || q != 0 {
		t.Errorf("q=%v err=%v", q, err)
	}
	if c.TDCDF(0) != 1 {
		t.Error("no-miss CDF should be 1 everywhere")
	}
}

func TestTDCDFProperties(t *testing.T) {
	c := facebook()
	if c.TDCDF(-1) != 0 {
		t.Error("CDF(-1) != 0")
	}
	prev := 0.0
	for x := 0.0; x < 0.02; x += 0.0005 {
		v := c.TDCDF(x)
		if v < prev-1e-12 || v < 0 || v > 1 {
			t.Fatalf("CDF not monotone in [0,1] at %v: %v", x, v)
		}
		prev = v
	}
	if prev < 0.999 {
		t.Errorf("CDF(20ms) = %v, should be ~1", prev)
	}
}

func TestTailsReport(t *testing.T) {
	c := facebook()
	reports, err := c.Tails([]float64{0.5, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[1].TS.Hi <= reports[0].TS.Hi {
		t.Error("p99 not above p50")
	}
	if reports[1].TD <= reports[0].TD {
		t.Error("TD p99 not above p50")
	}
	if _, err := c.Tails([]float64{2}); err == nil {
		t.Error("invalid level accepted")
	}
	bad := facebook()
	bad.N = 0
	if _, err := bad.Tails([]float64{0.5}); err == nil {
		t.Error("invalid config accepted")
	}
}

// The exact TD(N) mean implied by the closed-form CDF should be close
// to the eq. 23 estimate (which approximates the same distribution).
func TestTDClosedFormConsistentWithEq23(t *testing.T) {
	c := facebook()
	// E[TD] = ∫ (1 - CDF) dt via trapezoid on a fine grid.
	var mean float64
	const dt = 1e-5
	for x := 0.0; x < 0.05; x += dt {
		mean += (1 - c.TDCDF(x)) * dt
	}
	est, err := c.ExpectedTD()
	if err != nil {
		t.Fatal(err)
	}
	// eq. 23 approximates the quantile form; expect agreement within the
	// maximal-statistics bias (~30%).
	if mean < est*0.9 || mean > est*1.45 {
		t.Errorf("closed-form mean %v vs eq. 23 %v", mean, est)
	}
}
