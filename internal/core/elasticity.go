package core

import (
	"fmt"
	"math"
	"sort"
)

// Elasticity answers the paper's motivating question — "which factor
// has the most significant impact on the latency" (§1) — numerically:
// the elasticity of the end-user latency bound with respect to factor x
// is d ln T / d ln x, i.e. the % latency change per % factor change at
// the configured operating point. |E| ranks the factors; sign says
// which direction helps.
type Elasticity struct {
	// Factor is the paper's symbol for the knob (Table 2).
	Factor string
	// Description says what was perturbed.
	Description string
	// Value is d ln T / d ln x at the operating point.
	Value float64
}

// totalUpper evaluates the Theorem 1 upper bound on E[T(N)].
func (c *Config) totalUpper() (float64, error) {
	est, err := c.Estimate()
	if err != nil {
		return 0, err
	}
	return est.Total.Hi, nil
}

// Elasticities evaluates every Table 2 factor's elasticity by central
// log-difference at the configured operating point, returned sorted by
// |elasticity| descending (the paper's "most significant" first).
func (c *Config) Elasticities() ([]Elasticity, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	const h = 0.02 // ±2% multiplicative perturbation
	perturb := func(apply func(*Config, float64)) (float64, error) {
		up := *c
		apply(&up, 1+h)
		tUp, err := up.totalUpper()
		if err != nil {
			return 0, err
		}
		down := *c
		apply(&down, 1-h)
		tDown, err := down.totalUpper()
		if err != nil {
			return 0, err
		}
		return (math.Log(tUp) - math.Log(tDown)) / (math.Log(1+h) - math.Log(1-h)), nil
	}

	factors := []struct {
		symbol string
		desc   string
		apply  func(*Config, float64)
	}{
		{"λ", "key arrival rate", func(t *Config, f float64) { t.TotalKeyRate *= f }},
		{"µS", "server service rate", func(t *Config, f float64) { t.MuS *= f }},
		{"q", "concurrent probability", func(t *Config, f float64) { t.Q *= f }},
		{"ξ", "burst degree", func(t *Config, f float64) { t.Xi *= f }},
		{"r", "cache miss ratio", func(t *Config, f float64) { t.MissRatio *= f }},
		{"µD", "database service rate", func(t *Config, f float64) { t.MuD *= f }},
		{"N", "keys per request", func(t *Config, f float64) {
			n := int(math.Round(float64(t.N) * f))
			if n < 1 {
				n = 1
			}
			t.N = n
		}},
	}
	out := make([]Elasticity, 0, len(factors))
	for _, f := range factors {
		v, err := perturb(f.apply)
		if err != nil {
			return nil, fmt.Errorf("factor %s: %w", f.symbol, err)
		}
		out = append(out, Elasticity{Factor: f.symbol, Description: f.desc, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].Value) > math.Abs(out[j].Value)
	})
	return out, nil
}
