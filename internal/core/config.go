// Package core implements the paper's primary contribution: the
// analytical latency model for the Memcached system (Cheng, Ren, Jiang,
// Zhang — "Modeling and Analyzing Latency in the Memcached system",
// ICDCS 2017).
//
// The model (paper §3) extends the classical Fork-Join picture with
// three Memcached-specific enhancements:
//
//  1. an unbalanced load distribution {p_j} across the M Memcached
//     servers,
//  2. a GI^X/M/1 queue per server capturing bursty (Generalized Pareto)
//     and concurrent (geometric batch) key arrivals, and
//  3. an M/M/1 cache-miss stage modeling the back-end database.
//
// Package core turns that model into executable estimators: Theorem 1
// latency bounds, Propositions 1–2, the utilization-cliff analysis of
// Table 4, and the asymptotic laws of §5.2.
package core

import (
	"errors"
	"fmt"
	"math"

	"memqlat/internal/dist"
	"memqlat/internal/queueing"
)

// ArrivalFactory builds the batch inter-arrival distribution for a
// server observing the given batch arrival rate (batches per second).
// The default factory produces the paper's Generalized Pareto gaps.
type ArrivalFactory func(batchRate float64) (dist.Interarrival, error)

// Config describes one Memcached deployment + workload in the model's
// terms (paper Table 1). All rates are per second, all times in seconds.
type Config struct {
	// N is the number of Memcached keys generated per end-user request.
	N int

	// LoadRatios is {p_j}: the fraction of all keys hashed to each of
	// the M servers. Must be non-negative and sum to 1.
	LoadRatios []float64

	// TotalKeyRate is Λ, the aggregate key arrival rate over all
	// servers; server j observes p_j·Λ keys per second.
	TotalKeyRate float64

	// Q is the concurrent probability: batches of keys are geometric
	// with P{X=n} = Q^{n-1}(1-Q).
	Q float64

	// Xi is the burst degree of the Generalized Pareto batch
	// inter-arrival gaps (0 = Poisson).
	Xi float64

	// MuS is the per-key service rate of each Memcached server.
	MuS float64

	// MissRatio is r, the cache miss probability per key.
	MissRatio float64

	// MuD is the database service rate (keys per second).
	MuD float64

	// NetworkLatency is the constant per-key network latency n_i
	// (propagation + transmission; queueing is negligible, §4.2).
	NetworkLatency float64

	// Arrival optionally overrides the batch inter-arrival family.
	// When nil, Generalized Pareto with shape Xi is used.
	Arrival ArrivalFactory
}

// BalancedLoad returns the uniform load distribution over m servers.
func BalancedLoad(m int) []float64 {
	p := make([]float64, m)
	for i := range p {
		p[i] = 1 / float64(m)
	}
	return p
}

// UnbalancedLoad returns a load distribution over m servers where the
// first (heaviest) server receives p1 and the rest share 1-p1 evenly.
// It requires 1/m <= p1 <= 1 so that p1 is indeed the maximum.
func UnbalancedLoad(m int, p1 float64) ([]float64, error) {
	if m < 1 {
		return nil, fmt.Errorf("core: unbalanced load needs m >= 1, got %d", m)
	}
	if p1 < 1/float64(m) || p1 > 1 {
		return nil, fmt.Errorf("core: p1=%v out of [1/m, 1] for m=%d", p1, m)
	}
	p := make([]float64, m)
	p[0] = p1
	if m > 1 {
		rest := (1 - p1) / float64(m-1)
		for i := 1; i < m; i++ {
			p[i] = rest
		}
	}
	return p, nil
}

// Validate checks all parameters for model admissibility.
func (c *Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("core: N=%d must be >= 1", c.N)
	}
	if len(c.LoadRatios) == 0 {
		return errors.New("core: LoadRatios must be non-empty")
	}
	var sum float64
	for j, p := range c.LoadRatios {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("core: LoadRatios[%d]=%v negative", j, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("core: LoadRatios sum to %v, want 1", sum)
	}
	if !(c.TotalKeyRate > 0) {
		return fmt.Errorf("core: TotalKeyRate=%v must be positive", c.TotalKeyRate)
	}
	if c.Q < 0 || c.Q >= 1 || math.IsNaN(c.Q) {
		return fmt.Errorf("core: Q=%v must be in [0, 1)", c.Q)
	}
	if c.Xi < 0 || c.Xi >= 1 || math.IsNaN(c.Xi) {
		return fmt.Errorf("core: Xi=%v must be in [0, 1)", c.Xi)
	}
	if !(c.MuS > 0) {
		return fmt.Errorf("core: MuS=%v must be positive", c.MuS)
	}
	if c.MissRatio < 0 || c.MissRatio > 1 || math.IsNaN(c.MissRatio) {
		return fmt.Errorf("core: MissRatio=%v must be in [0, 1]", c.MissRatio)
	}
	if !(c.MuD > 0) {
		return fmt.Errorf("core: MuD=%v must be positive", c.MuD)
	}
	if c.NetworkLatency < 0 || math.IsNaN(c.NetworkLatency) {
		return fmt.Errorf("core: NetworkLatency=%v must be >= 0", c.NetworkLatency)
	}
	return nil
}

// M returns the number of Memcached servers.
func (c *Config) M() int { return len(c.LoadRatios) }

// ServerKeyRate returns λ_j = p_j·Λ for server j.
func (c *Config) ServerKeyRate(j int) float64 {
	return c.LoadRatios[j] * c.TotalKeyRate
}

// MaxLoadRatio returns p1 = max_j p_j and its index.
func (c *Config) MaxLoadRatio() (p1 float64, idx int) {
	for j, p := range c.LoadRatios {
		if p > p1 {
			p1, idx = p, j
		}
	}
	return p1, idx
}

// ServerUtilization returns ρ_j = λ_j/µ_S.
func (c *Config) ServerUtilization(j int) float64 {
	return c.ServerKeyRate(j) / c.MuS
}

// MaxUtilization returns the utilization of the heaviest server.
func (c *Config) MaxUtilization() float64 {
	p1, _ := c.MaxLoadRatio()
	return p1 * c.TotalKeyRate / c.MuS
}

// arrivalFor builds the batch inter-arrival distribution for a server
// whose key arrival rate is lambdaKeys.
func (c *Config) arrivalFor(lambdaKeys float64) (dist.Interarrival, error) {
	batchRate := (1 - c.Q) * lambdaKeys
	if c.Arrival != nil {
		return c.Arrival(batchRate)
	}
	return dist.NewGeneralizedPareto(c.Xi, batchRate)
}

// ServerQueue builds the GI^X/M/1 model of server j.
func (c *Config) ServerQueue(j int) (*queueing.BatchQueue, error) {
	if j < 0 || j >= c.M() {
		return nil, fmt.Errorf("core: server index %d out of range [0, %d)", j, c.M())
	}
	lam := c.ServerKeyRate(j)
	if !(lam > 0) {
		return nil, fmt.Errorf("core: server %d has zero load; queue undefined", j)
	}
	arr, err := c.arrivalFor(lam)
	if err != nil {
		return nil, fmt.Errorf("server %d arrival: %w", j, err)
	}
	return queueing.NewBatchQueue(arr, c.Q, c.MuS)
}

// HeaviestQueue builds the GI^X/M/1 model of the heaviest-loaded server
// (the one Proposition 1 says dominates end-user latency).
func (c *Config) HeaviestQueue() (*queueing.BatchQueue, error) {
	_, idx := c.MaxLoadRatio()
	return c.ServerQueue(idx)
}

// DatabaseQueue builds an M/M/1 diagnostic view of the miss stage:
// misses from all servers arrive at rate r·Λ and would be served at rate
// µ_D by a single-queue database. The Theorem 1 estimate itself follows
// the paper's ρ_D ≈ 0 approximation (see ExpectedTD); this view is for
// checking how far a deployment is from that assumption and for sizing
// the live backend.
func (c *Config) DatabaseQueue() (*queueing.MM1, error) {
	return queueing.NewMM1(c.MissRatio*c.TotalKeyRate, c.MuD)
}
