package core

import (
	"testing"
)

func TestMaxTotalKeyRateInvertsTheorem1(t *testing.T) {
	c := facebook()
	// The Facebook workload's own TS upper bound (~367µs) should invert
	// back to (approximately) its own aggregate rate.
	ts, err := c.ExpectedTSPoint()
	if err != nil {
		t.Fatal(err)
	}
	rate, err := c.MaxTotalKeyRate(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rate, c.TotalKeyRate, 0.01) {
		t.Errorf("inverted rate %v vs configured %v", rate, c.TotalKeyRate)
	}
	// The returned rate's latency must respect the budget.
	trial := *c
	trial.TotalKeyRate = rate
	got, err := trial.ExpectedTSPoint()
	if err != nil {
		t.Fatal(err)
	}
	if got > ts*1.001 {
		t.Errorf("latency at admitted rate %v exceeds budget %v", got, ts)
	}
}

func TestMaxTotalKeyRateMonotoneInBudget(t *testing.T) {
	c := facebook()
	prev := 0.0
	for _, budget := range []float64{150e-6, 300e-6, 600e-6, 1200e-6} {
		rate, err := c.MaxTotalKeyRate(budget)
		if err != nil {
			t.Fatal(err)
		}
		if rate <= prev {
			t.Errorf("budget %v: rate %v not increasing", budget, rate)
		}
		prev = rate
	}
}

func TestMaxTotalKeyRateErrors(t *testing.T) {
	c := facebook()
	if _, err := c.MaxTotalKeyRate(0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := c.MaxTotalKeyRate(1e-9); err == nil {
		t.Error("budget below the zero-load floor accepted")
	}
	bad := facebook()
	bad.N = 0
	if _, err := bad.MaxTotalKeyRate(1e-3); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCheckNetworkPaperNumbers(t *testing.T) {
	// The paper's §2.2 arithmetic: 10 Gbps, keys <= 200 B at up to
	// 10^5/s per server -> network utilization under 10%.
	c := facebook()
	c.TotalKeyRate = 4 * 100000
	check, err := c.CheckNetwork(10e9, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if check.RequestUtilization > 0.1 {
		t.Errorf("request utilization %v, paper says <10%%", check.RequestUtilization)
	}
	if !check.Negligible {
		t.Error("paper's configuration should pass the negligibility check")
	}
	// A 100 Mbps link at the same rate is NOT negligible.
	check2, err := c.CheckNetwork(100e6, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if check2.Negligible {
		t.Errorf("overloaded link reported negligible: %+v", check2)
	}
}

func TestCheckNetworkValidation(t *testing.T) {
	c := facebook()
	if _, err := c.CheckNetwork(0, 200, 1000); err == nil {
		t.Error("zero link accepted")
	}
	if _, err := c.CheckNetwork(1e9, 0, 1000); err == nil {
		t.Error("zero key size accepted")
	}
	if _, err := c.CheckNetwork(1e9, 200, -1); err == nil {
		t.Error("negative value size accepted")
	}
}
