package core

import (
	"math"
	"testing"
)

func TestCliffValidation(t *testing.T) {
	if _, err := CliffUtilization(-0.1, 0.1, nil); err == nil {
		t.Error("negative xi accepted")
	}
	if _, err := CliffUtilization(1, 0.1, nil); err == nil {
		t.Error("xi=1 accepted")
	}
	if _, err := CliffUtilization(0.1, 1, nil); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := CliffUtilization(0.1, 0.1, &CliffOptions{Method: CliffMethod(99)}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := CliffUtilization(0.1, 0.1, &CliffOptions{Method: CliffDeltaThreshold, DeltaStar: 0}); err != nil {
		t.Errorf("zero deltaStar should default: %v", err)
	}
}

// Calibration anchor: for xi=0 (Poisson) delta = rho exactly, so the
// delta-threshold method returns deltaStar itself — the paper's 77%.
func TestCliffDeltaThresholdPoisson(t *testing.T) {
	got, err := CliffUtilization(0, 0.1, &CliffOptions{Method: CliffDeltaThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.77, 1e-3) {
		t.Errorf("cliff(0) = %v, want 0.77", got)
	}
}

// Proposition 2 / Table 4: the cliff is decreasing in the burst degree,
// for both detectors.
func TestCliffDecreasesWithXi(t *testing.T) {
	for _, method := range []CliffMethod{CliffSlope, CliffDeltaThreshold} {
		prev := 2.0
		for _, xi := range []float64{0, 0.3, 0.6, 0.9} {
			got, err := CliffUtilization(xi, 0.1, &CliffOptions{Method: method})
			if err != nil {
				t.Fatal(err)
			}
			if got <= 0 || got >= 1 {
				t.Fatalf("method %d xi=%v: cliff %v out of (0,1)", method, xi, got)
			}
			if got >= prev {
				t.Errorf("method %d: cliff(xi=%v) = %v not decreasing (prev %v)", method, xi, got, prev)
			}
			prev = got
		}
	}
}

// The Facebook workload (xi=0.15) should cliff near the paper's 75%.
func TestCliffFacebookWorkload(t *testing.T) {
	got, err := CliffUtilization(0.15, 0.1, &CliffOptions{Method: CliffDeltaThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.65 || got > 0.85 {
		t.Errorf("cliff(0.15) = %v, paper says ~0.75", got)
	}
}

// Heavy tails collapse the usable utilization (paper: xi=0.95 -> 9%).
func TestCliffHeavyTailCollapse(t *testing.T) {
	light, err := CliffUtilization(0, 0.1, &CliffOptions{Method: CliffDeltaThreshold})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := CliffUtilization(0.95, 0.1, &CliffOptions{Method: CliffDeltaThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if heavy > light/2 {
		t.Errorf("heavy-tail cliff %v not much below light-tail %v", heavy, light)
	}
}

func TestCliffTable(t *testing.T) {
	rows, err := CliffTable([]float64{0, 0.15, 0.5}, 0.1,
		&CliffOptions{Method: CliffDeltaThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Utilization >= rows[i-1].Utilization {
			t.Errorf("table not decreasing at row %d", i)
		}
	}
	if _, err := CliffTable([]float64{-1}, 0.1, nil); err == nil {
		t.Error("invalid xi row accepted")
	}
}

func TestPaperTable4Xis(t *testing.T) {
	xis := PaperTable4Xis()
	if len(xis) != 20 {
		t.Fatalf("len = %d, want 20", len(xis))
	}
	if xis[0] != 0 || !almostEqual(xis[19], 0.95, 1e-12) {
		t.Errorf("range = [%v, %v]", xis[0], xis[19])
	}
}

// Knee and delta-threshold agree on order of magnitude across xi.
func TestCliffMethodsAgreeRoughly(t *testing.T) {
	for _, xi := range []float64{0, 0.3, 0.6} {
		knee, err := CliffUtilization(xi, 0.1, &CliffOptions{Method: CliffSlope})
		if err != nil {
			t.Fatal(err)
		}
		thr, err := CliffUtilization(xi, 0.1, &CliffOptions{Method: CliffDeltaThreshold})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(knee-thr) > 0.35 {
			t.Errorf("xi=%v: knee %v vs threshold %v diverge", xi, knee, thr)
		}
	}
}
