package core_test

import (
	"fmt"

	"memqlat/internal/core"
)

// The paper's §5.1 Facebook workload, evaluated with Theorem 1.
func ExampleConfig_Estimate() {
	cfg := &core.Config{
		N:              150,                  // keys per end-user request
		LoadRatios:     core.BalancedLoad(4), // four balanced servers
		TotalKeyRate:   4 * 62500,            // λ = 62.5K keys/s each
		Q:              0.1,                  // concurrent probability
		Xi:             0.15,                 // burst degree
		MuS:            80000,                // server service rate
		MissRatio:      0.01,                 // 1% misses
		MuD:            1000,                 // database rate (1 ms mean)
		NetworkLatency: 20e-6,                // constant 20 µs
	}
	est, err := cfg.Estimate()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("TS(N): %.0fµs ~ %.0fµs\n", est.TS.Lo*1e6, est.TS.Hi*1e6)
	fmt.Printf("TD(N): %.0fµs\n", est.TD*1e6)
	fmt.Printf("T(N):  %.0fµs ~ %.0fµs\n", est.Total.Lo*1e6, est.Total.Hi*1e6)
	// Output:
	// TS(N): 352µs ~ 367µs
	// TD(N): 836µs
	// T(N):  836µs ~ 1224µs
}

// Where does latency hit its cliff for the Facebook workload's burst
// degree? (Paper Table 4.)
func ExampleCliffUtilization() {
	rho, err := core.CliffUtilization(0.15, 0.1, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("keep servers below %.0f%% utilization\n", rho*100)
	// Output:
	// keep servers below 74% utilization
}

// The Θ(r) vs Θ(log r) regimes of the miss stage (paper eq. 25).
func ExampleClassifyTDRegime() {
	fmt.Println(core.ClassifyTDRegime(4, 0.01))     // few keys: N·r ≪ 1
	fmt.Println(core.ClassifyTDRegime(10000, 0.01)) // many keys: N·r ≫ 1
	// Output:
	// Θ(r)
	// Θ(log r)
}
