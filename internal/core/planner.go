package core

import (
	"fmt"
	"math"
)

// Capacity-planning inversions of Theorem 1: the paper's
// recommendations (§5.3) phrased as answers a deployer can act on.

// MaxTotalKeyRate returns the largest aggregate key rate Λ whose
// Theorem 1 upper bound on E[T_S(N)] stays within budget, holding every
// other factor of the Config fixed. This inverts the Fig. 7 sweep: it
// is the admission-control limit implied by a latency SLO.
func (c *Config) MaxTotalKeyRate(budget float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if !(budget > 0) {
		return 0, fmt.Errorf("core: latency budget %v must be positive", budget)
	}
	p1, _ := c.MaxLoadRatio()
	// Upper limit: heaviest server saturates at p1·Λ = µS.
	hiRate := c.MuS / p1 * (1 - 1e-9)
	tsAt := func(rate float64) (float64, error) {
		trial := *c
		trial.TotalKeyRate = rate
		return trial.ExpectedTSPoint()
	}
	// Latency at vanishing load is the service floor; an unreachable
	// budget is reported rather than silently clamped.
	floor, err := tsAt(hiRate * 1e-6)
	if err != nil {
		return 0, err
	}
	if budget < floor {
		return 0, fmt.Errorf("core: budget %.3gs below the zero-load floor %.3gs", budget, floor)
	}
	// 60 bisection steps give ~1e-18 relative resolution — far below
	// the model's own accuracy — while keeping the δ-solver call count
	// (each involving numerical Laplace inversion) moderate.
	lo, hi := hiRate*1e-6, hiRate
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		ts, err := tsAt(mid)
		if err != nil || ts > budget {
			hi = mid
			continue
		}
		lo = mid
	}
	return lo, nil
}

// NetworkCheck quantifies the paper's §4.2 assumption that network
// queueing is negligible. Given the link capacity and message sizes it
// reports the network utilization; the constant-latency model is sound
// while the utilization stays low (the paper's testbed: <10%).
type NetworkCheck struct {
	// RequestUtilization is key-traffic load on the client->server link.
	RequestUtilization float64
	// ResponseUtilization is value-traffic load on the server->client
	// link.
	ResponseUtilization float64
	// Negligible reports whether both stay under 30%, the regime where
	// M/M/1-style queueing delay is within ~1.5x of the no-queue delay.
	Negligible bool
}

// CheckNetwork evaluates the assumption for a deployment: linkBits is
// the per-server link capacity in bits/s, keyBytes and valueBytes the
// average message sizes (paper: keys <= 200 B, values <= 1 KB, 10 Gbps).
func (c *Config) CheckNetwork(linkBits float64, keyBytes, valueBytes int) (NetworkCheck, error) {
	if !(linkBits > 0) {
		return NetworkCheck{}, fmt.Errorf("core: link capacity %v must be positive", linkBits)
	}
	if keyBytes <= 0 || valueBytes <= 0 {
		return NetworkCheck{}, fmt.Errorf("core: message sizes must be positive (key %d, value %d)",
			keyBytes, valueBytes)
	}
	p1, _ := c.MaxLoadRatio()
	perServerRate := p1 * c.TotalKeyRate // heaviest server's keys/s
	req := perServerRate * float64(keyBytes) * 8 / linkBits
	resp := perServerRate * float64(valueBytes) * 8 / linkBits
	return NetworkCheck{
		RequestUtilization:  req,
		ResponseUtilization: resp,
		Negligible:          math.Max(req, resp) < 0.3,
	}, nil
}
