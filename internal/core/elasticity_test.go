package core

import (
	"math"
	"testing"
)

func TestElasticitiesFacebookWorkload(t *testing.T) {
	c := facebook()
	es, err := c.Elasticities()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 7 {
		t.Fatalf("factors = %d", len(es))
	}
	byFactor := make(map[string]float64, len(es))
	for i, e := range es {
		byFactor[e.Factor] = e.Value
		if e.Description == "" {
			t.Errorf("factor %s missing description", e.Factor)
		}
		// Sorted by magnitude descending.
		if i > 0 && math.Abs(e.Value) > math.Abs(es[i-1].Value)+1e-12 {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
	// Signs: more load / burst / concurrency / misses / keys hurt;
	// faster servers and database help.
	for _, positive := range []string{"λ", "q", "ξ", "r", "N"} {
		if byFactor[positive] <= 0 {
			t.Errorf("elasticity of %s = %v, want > 0", positive, byFactor[positive])
		}
	}
	for _, negative := range []string{"µS", "µD"} {
		if byFactor[negative] >= 0 {
			t.Errorf("elasticity of %s = %v, want < 0", negative, byFactor[negative])
		}
	}
	// At ρS=78% (past-ish the cliff shoulder) the service-rate and
	// arrival-rate knobs must dominate the miss ratio, matching the
	// paper's recommendation hierarchy.
	if math.Abs(byFactor["µS"]) <= math.Abs(byFactor["r"]) {
		t.Errorf("µS (%v) should outrank r (%v) at high utilization",
			byFactor["µS"], byFactor["r"])
	}
	// µS helps more than µD: the cache stage is the bottleneck... at
	// this config TD dominates T, so µD can outrank µS; just require
	// both to be materially nonzero.
	if math.Abs(byFactor["µD"]) < 0.1 {
		t.Errorf("µD elasticity %v unexpectedly tiny", byFactor["µD"])
	}
}

func TestElasticitiesLowLoad(t *testing.T) {
	// At low utilization the λ elasticity shrinks (flat part of the
	// curve) relative to its high-load value.
	high := facebook()
	esHigh, err := high.Elasticities()
	if err != nil {
		t.Fatal(err)
	}
	low := facebook()
	low.TotalKeyRate = 4 * 20000 // rho = 0.25
	esLow, err := low.Elasticities()
	if err != nil {
		t.Fatal(err)
	}
	get := func(es []Elasticity, f string) float64 {
		for _, e := range es {
			if e.Factor == f {
				return e.Value
			}
		}
		t.Fatalf("factor %s missing", f)
		return 0
	}
	if get(esLow, "λ") >= get(esHigh, "λ") {
		t.Errorf("λ elasticity low=%v not below high=%v",
			get(esLow, "λ"), get(esHigh, "λ"))
	}
}

func TestElasticitiesInvalidConfig(t *testing.T) {
	bad := facebook()
	bad.N = 0
	if _, err := bad.Elasticities(); err == nil {
		t.Error("invalid config accepted")
	}
}
