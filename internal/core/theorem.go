package core

import (
	"fmt"
	"math"
)

// Bounds is a closed interval [Lo, Hi] bounding an expectation.
type Bounds struct {
	Lo, Hi float64
}

// Contains reports whether x lies within the bounds, with a relative
// slack to absorb simulation noise.
func (b Bounds) Contains(x, relSlack float64) bool {
	span := math.Max(math.Abs(b.Hi), 1e-300) * relSlack
	return x >= b.Lo-span && x <= b.Hi+span
}

// Mid returns the midpoint of the interval.
func (b Bounds) Mid() float64 { return (b.Lo + b.Hi) / 2 }

// Estimate is the full Theorem 1 latency decomposition for a Config.
type Estimate struct {
	// TN is the constant maximum network latency T_N(N) (§4.2).
	TN float64
	// TS bounds E[T_S(N)], the expected maximum Memcached-server
	// processing latency over the request's N keys (eq. 14).
	TS Bounds
	// TD is the estimate of E[T_D(N)], the expected maximum database
	// latency (eq. 23).
	TD float64
	// Total bounds E[T(N)] per eq. 1:
	// max{TN, TS, TD} <= T(N) <= TN + TS + TD.
	Total Bounds
	// Delta is the GI/M/1 root at the heaviest server.
	Delta float64
	// DecayRate is (1-δ)(1-q)µ_S, the exponential decay rate of the
	// per-key latency tail at the heaviest server.
	DecayRate float64
}

// Estimate evaluates Theorem 1 for the configuration.
func (c *Config) Estimate() (*Estimate, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	ts, delta, rate, err := c.expectedTS()
	if err != nil {
		return nil, err
	}
	td, err := c.ExpectedTD()
	if err != nil {
		return nil, err
	}
	tn := c.NetworkLatency
	total := Bounds{
		Lo: math.Max(tn, math.Max(ts.Lo, td)),
		Hi: tn + ts.Hi + td,
	}
	return &Estimate{
		TN:        tn,
		TS:        ts,
		TD:        td,
		Total:     total,
		Delta:     delta,
		DecayRate: rate,
	}, nil
}

// ExpectedTSBounds evaluates the Theorem 1 bounds on E[T_S(N)] using the
// composite distribution of eq. 11,
//
//	T_S(1)(t) = Π_j [T_Sj(t)]^{p_j},
//
// and the maximal-statistics approximation E[T_S(N)] = (T_S(1))_{N/(N+1)}
// (eq. 12). Each server's per-key latency CDF is sandwiched by eq. 3
// (queueing time below, completion time above, both exponential forms of
// eqs. 4–5), so the k-quantile of the composite is bounded by solving
//
//	Π_j (1 − δ_j·e^{−R_j·t})^{p_j} = k   (lower bound on the quantile)
//	Π_j (1 − e^{−R_j·t})^{p_j}    = k   (upper bound on the quantile)
//
// with R_j = (1−δ_j)(1−q)µ_S. With balanced identical servers these
// collapse to the paper's Table 3 forms (T_Q)_k and (T_C)_k; with
// unbalanced load they are the exact eq. 11 versions of eq. 14 (strictly
// tighter than the Proposition 1 p1-boost, which Proposition1TSBounds
// still exposes).
func (c *Config) ExpectedTSBounds() (Bounds, error) {
	b, _, _, err := c.expectedTS()
	return b, err
}

// serverTail holds the per-server exponential-tail parameters.
type serverTail struct {
	p     float64 // load ratio p_j
	delta float64
	rate  float64 // (1-δ_j)(1-q)µ_S
}

// tails solves δ for every loaded server.
func (c *Config) tails() ([]serverTail, error) {
	out := make([]serverTail, 0, c.M())
	for j, p := range c.LoadRatios {
		if p == 0 {
			continue
		}
		bq, err := c.ServerQueue(j)
		if err != nil {
			return nil, err
		}
		delta, err := bq.Delta()
		if err != nil {
			return nil, fmt.Errorf("server %d: %w", j, err)
		}
		out = append(out, serverTail{
			p:     p,
			delta: delta,
			rate:  (1 - delta) * bq.BatchServiceRate(),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no loaded servers")
	}
	return out, nil
}

func (c *Config) expectedTS() (Bounds, float64, float64, error) {
	tails, err := c.tails()
	if err != nil {
		return Bounds{}, 0, 0, err
	}
	k := float64(c.N) / float64(c.N+1)

	// log of the composite lower-bounding CDF (waiting-time form).
	logWait := func(t float64) float64 {
		var s float64
		for _, st := range tails {
			s += st.p * math.Log(1-st.delta*math.Exp(-st.rate*t))
		}
		return s
	}
	// log of the composite upper-bounding CDF (completion-time form).
	logComplete := func(t float64) float64 {
		var s float64
		for _, st := range tails {
			v := -math.Expm1(-st.rate * t) // 1 - e^{-rt}, stable near 0
			if v <= 0 {
				return math.Inf(-1)
			}
			s += st.p * math.Log(v)
		}
		return s
	}
	logK := math.Log(k)
	lo := solveQuantile(logWait, logK)
	hi := solveQuantile(logComplete, logK)

	// The heaviest server's parameters summarize the dominant tail.
	heavy := tails[0]
	for _, st := range tails {
		if st.p > heavy.p {
			heavy = st
		}
	}
	return Bounds{Lo: lo, Hi: hi}, heavy.delta, heavy.rate, nil
}

// solveQuantile finds t >= 0 with logCDF(t) = logK for a non-decreasing
// logCDF. Returns 0 when even t=0 already satisfies the level.
func solveQuantile(logCDF func(float64) float64, logK float64) float64 {
	if logCDF(0) >= logK {
		return 0
	}
	hi := 1e-6
	for i := 0; i < 200 && logCDF(hi) < logK; i++ {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if logCDF(mid) < logK {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ExpectedTSPoint returns the single-curve prediction used for the
// paper's "Theorem 1" figure lines: the upper bound of ExpectedTSBounds
// (for balanced servers, ln(N+1)/((1−δ)(1−q)µ_S)). The validation
// tables report both bounds.
func (c *Config) ExpectedTSPoint() (float64, error) {
	b, err := c.ExpectedTSBounds()
	if err != nil {
		return 0, err
	}
	return b.Hi, nil
}

// Proposition1TSBounds evaluates the closed-form eq. 14 bounds derived
// from Proposition 1 (heaviest-server reduction with the k^{1/p1}
// quantile boost):
//
//	max{ (ln δ − ln(1 − k^{1/p1})) / R, 0 } <= E[T_S(N)] <= ln(N+1)/R
//
// with k = N/(N+1), R = (1−δ)(1−q)µ_S at the heaviest server. These are
// valid but looser than ExpectedTSBounds for balanced loads.
func (c *Config) Proposition1TSBounds() (Bounds, error) {
	bq, err := c.HeaviestQueue()
	if err != nil {
		return Bounds{}, err
	}
	delta, err := bq.Delta()
	if err != nil {
		return Bounds{}, fmt.Errorf("heaviest server: %w", err)
	}
	rate := (1 - delta) * bq.BatchServiceRate()
	p1, _ := c.MaxLoadRatio()
	k := float64(c.N) / float64(c.N+1)
	hi := math.Log(float64(c.N)+1) / rate
	kBoost := math.Pow(k, 1/p1)
	lo := (math.Log(delta) - math.Log(1-kBoost)) / rate
	if lo < 0 {
		lo = 0
	}
	return Bounds{Lo: lo, Hi: hi}, nil
}

// ExpectedTD evaluates eq. 23, the estimate of E[T_D(N)]:
//
//	E[T_D(N)] ≈ (1 − (1−r)^N)/µ_D · ln( N·r / (1 − (1−r)^N) + 1 ).
//
// Per the paper's §4.4 the database stage is an M/M/1 whose utilization
// is negligible (the cache absorbs almost all load), so the eq. 19
// response-time CDF reduces to pure exponential service at rate µ_D and
// eq. 23 uses µ_D directly. The simulator models the stage the same way
// (an exponential-delay station), keeping theory and experiment aligned.
func (c *Config) ExpectedTD() (float64, error) {
	r := c.MissRatio
	if r == 0 {
		return 0, nil
	}
	n := float64(c.N)
	pMiss := missAnyProbability(r, c.N) // 1 - (1-r)^N, computed stably
	if pMiss == 0 {
		return 0, nil
	}
	expK := n * r / pMiss // E[K | K > 0]
	return pMiss / c.MuD * math.Log(expK+1), nil
}

// missAnyProbability computes 1-(1-r)^N without catastrophic
// cancellation for tiny r (uses expm1/log1p).
func missAnyProbability(r float64, n int) float64 {
	if r <= 0 {
		return 0
	}
	if r >= 1 {
		return 1
	}
	return -math.Expm1(float64(n) * math.Log1p(-r))
}

// ExpectedMissCount returns E[K] = N·r and the conditional mean
// E[K | K>0] = N·r/(1-(1-r)^N) (eq. 18).
func (c *Config) ExpectedMissCount() (mean, conditional float64) {
	mean = float64(c.N) * c.MissRatio
	p := missAnyProbability(c.MissRatio, c.N)
	if p == 0 {
		return mean, 0
	}
	return mean, mean / p
}

// KeyLatencyBounds exposes eq. 9 for the heaviest server: bounds on the
// k-th quantile of the per-key processing latency T_S.
func (c *Config) KeyLatencyBounds(k float64) (lo, hi float64, err error) {
	bq, err := c.HeaviestQueue()
	if err != nil {
		return 0, 0, err
	}
	return bq.KeyLatencyBounds(k)
}
