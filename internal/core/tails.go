package core

import (
	"fmt"
	"math"
)

// Tail-latency extensions. The paper reports expectations only (§4.5
// argues the expectation is what matters); production SLOs are stated
// as percentiles, so we extend the same model to full distributions:
//
//   - T_S(N) has CDF [T_S(1)(t)]^N (paper eq. 12's underlying
//     distribution), whose quantiles we bound with the same eq. 3
//     sandwich used for the mean;
//   - T_D(N) has the EXACT closed-form CDF (1 − r·e^{−µ_D·t})^N
//     (E[x^K] of the binomial miss count K is ((1−r) + r·x)^N),
//     which is strictly stronger than the paper's eq. 21–23
//     approximation chain.

// TSQuantileBounds bounds the k-th quantile of T_S(N), the maximum
// Memcached-stage latency over a request's N keys.
func (c *Config) TSQuantileBounds(k float64) (Bounds, error) {
	if err := checkLevel(k); err != nil {
		return Bounds{}, err
	}
	tails, err := c.tails()
	if err != nil {
		return Bounds{}, err
	}
	// P{T_S(N) <= t} = Π_j [F_j(t)]^{p_j·N}; solve at level k, i.e. the
	// composite per-key CDF at level k^{1/N}.
	logK := math.Log(k) / float64(c.N)
	logWait := func(t float64) float64 {
		var s float64
		for _, st := range tails {
			s += st.p * math.Log(1-st.delta*math.Exp(-st.rate*t))
		}
		return s
	}
	logComplete := func(t float64) float64 {
		var s float64
		for _, st := range tails {
			v := -math.Expm1(-st.rate * t)
			if v <= 0 {
				return math.Inf(-1)
			}
			s += st.p * math.Log(v)
		}
		return s
	}
	return Bounds{
		Lo: solveQuantile(logWait, logK),
		Hi: solveQuantile(logComplete, logK),
	}, nil
}

// TDQuantile returns the exact k-th quantile of T_D(N):
//
//	P{T_D(N) <= t} = (1 − r·e^{−µ_D·t})^N,
//
// hence t_k = −ln((1 − k^{1/N})/r)/µ_D, clamped at 0 when the request
// is more likely than k to have no miss at all.
func (c *Config) TDQuantile(k float64) (float64, error) {
	if err := checkLevel(k); err != nil {
		return 0, err
	}
	r := c.MissRatio
	if r == 0 {
		return 0, nil
	}
	// k^{1/N} computed stably for large N.
	kRoot := math.Exp(math.Log(k) / float64(c.N))
	x := (1 - kRoot) / r
	if x >= 1 {
		// P{K = 0 for all the mass below k}: the quantile sits at zero
		// (the request had no misses with probability >= k).
		return 0, nil
	}
	return -math.Log(x) / c.MuD, nil
}

// TDCDF evaluates the exact distribution of T_D(N) at t.
func (c *Config) TDCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	r := c.MissRatio
	if r == 0 {
		return 1
	}
	return math.Exp(float64(c.N) * math.Log1p(-r*math.Exp(-c.MuD*t)))
}

// TailReport bundles the latency quantiles an SLO review would ask for.
type TailReport struct {
	Level float64
	TS    Bounds
	TD    float64
}

// Tails evaluates TSQuantileBounds and TDQuantile at each level.
func (c *Config) Tails(levels []float64) ([]TailReport, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make([]TailReport, 0, len(levels))
	for _, k := range levels {
		ts, err := c.TSQuantileBounds(k)
		if err != nil {
			return nil, fmt.Errorf("level %v: %w", k, err)
		}
		td, err := c.TDQuantile(k)
		if err != nil {
			return nil, fmt.Errorf("level %v: %w", k, err)
		}
		out = append(out, TailReport{Level: k, TS: ts, TD: td})
	}
	return out, nil
}

func checkLevel(k float64) error {
	if math.IsNaN(k) || k <= 0 || k >= 1 {
		return fmt.Errorf("core: quantile level %v must be in (0, 1)", k)
	}
	return nil
}
