package core

import (
	"testing"
)

func TestRedundantD1EqualsBaseline(t *testing.T) {
	c := facebook()
	base, err := c.ExpectedTSPoint()
	if err != nil {
		t.Fatal(err)
	}
	red, err := c.ExpectedTSPointRedundant(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(base, red, 1e-9) {
		t.Errorf("d=1 %v != baseline %v", red, base)
	}
}

func TestRedundancyFreeReplicasAlwaysHelp(t *testing.T) {
	c := facebook()
	base, err := c.ExpectedTSPoint()
	if err != nil {
		t.Fatal(err)
	}
	prev := base
	for _, d := range []int{2, 3, 4} {
		red, err := c.ExpectedTSPointRedundant(d, false)
		if err != nil {
			t.Fatal(err)
		}
		if red >= prev {
			t.Errorf("d=%d: free-replica latency %v not below %v", d, red, prev)
		}
		prev = red
	}
}

func TestRedundancyWithLoadHurtsAtHighUtilization(t *testing.T) {
	// At the Facebook workload's 78% utilization, 2x load saturates the
	// servers: redundancy must fail or hurt.
	c := facebook()
	if _, err := c.ExpectedTSPointRedundant(2, true); err == nil {
		t.Error("2x duplication at rho=0.78 should be unstable")
	}
	// At rho=0.3 it should help.
	low := facebook()
	low.TotalKeyRate = 4 * 24000 // rho = 0.3
	base, err := low.ExpectedTSPoint()
	if err != nil {
		t.Fatal(err)
	}
	red, err := low.ExpectedTSPointRedundant(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if red >= base {
		t.Errorf("at rho=0.3, redundancy %v not below baseline %v", red, base)
	}
}

func TestRedundancyCrossoverExists(t *testing.T) {
	c := facebook()
	rho, err := c.RedundancyCrossover(2)
	if err != nil {
		t.Fatal(err)
	}
	if rho <= 0.05 || rho >= 0.5 {
		t.Fatalf("crossover = %v, expected inside (0.05, 0.5)", rho)
	}
	// Just below the crossover redundancy helps; just above it hurts.
	check := func(r float64) (base, red float64) {
		trial := facebook()
		trial.TotalKeyRate = r * trial.MuS / 0.25
		b, err := trial.ExpectedTSPoint()
		if err != nil {
			t.Fatal(err)
		}
		d, err := trial.ExpectedTSPointRedundant(2, true)
		if err != nil {
			t.Fatal(err)
		}
		return b, d
	}
	b1, r1 := check(rho * 0.9)
	if r1 >= b1 {
		t.Errorf("below crossover: red %v >= base %v", r1, b1)
	}
	b2, r2 := check(rho * 1.1)
	if r2 <= b2 {
		t.Errorf("above crossover: red %v <= base %v", r2, b2)
	}
}

func TestRedundancyValidation(t *testing.T) {
	c := facebook()
	if _, err := c.ExpectedTSPointRedundant(0, true); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := c.RedundancyCrossover(1); err == nil {
		t.Error("crossover with d=1 accepted")
	}
	bad := facebook()
	bad.N = 0
	if _, err := bad.RedundancyCrossover(2); err == nil {
		t.Error("invalid config accepted")
	}
}
