package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTable3TDValue reproduces the paper's Table 3 "Theorem 1" row for
// TD(N): 836 µs for N=150, r=0.01, muD=1000.
func TestTable3TDValue(t *testing.T) {
	c := facebook()
	td, err := c.ExpectedTD()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(td, 836e-6, 0.01) {
		t.Errorf("E[TD(150)] = %v s, paper says 836 µs", td)
	}
}

// TestTable3TSRange reproduces the paper's Table 3 "Theorem 1" row for
// TS(N): 351–366 µs for the Facebook workload.
func TestTable3TSRange(t *testing.T) {
	c := facebook()
	b, err := c.ExpectedTSBounds()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports the interval [351µs, 366µs]. Match the upper
	// bound closely and require the lower bound to sit below it in the
	// right neighbourhood.
	if !almostEqual(b.Hi, 366e-6, 0.05) {
		t.Errorf("TS upper = %v s, paper says ~366 µs", b.Hi)
	}
	if b.Lo >= b.Hi {
		t.Errorf("bounds inverted: %+v", b)
	}
	if b.Lo < 300e-6 || b.Lo > 366e-6 {
		t.Errorf("TS lower = %v s, paper says ~351 µs", b.Lo)
	}
}

// TestTable3Total reproduces the Table 3 total-latency bound
// 836 µs ~ 1222 µs.
func TestTable3Total(t *testing.T) {
	c := facebook()
	est, err := c.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(est.Total.Lo, 836e-6, 0.02) {
		t.Errorf("total lower = %v, paper says 836 µs", est.Total.Lo)
	}
	if !almostEqual(est.Total.Hi, 1222e-6, 0.05) {
		t.Errorf("total upper = %v, paper says 1222 µs", est.Total.Hi)
	}
	if est.TN != 20e-6 {
		t.Errorf("TN = %v", est.TN)
	}
	if est.Delta <= 0 || est.Delta >= 1 {
		t.Errorf("delta = %v", est.Delta)
	}
}

func TestEstimateInvalidConfig(t *testing.T) {
	c := facebook()
	c.N = 0
	if _, err := c.Estimate(); err == nil {
		t.Error("invalid config estimated")
	}
}

func TestEstimateUnstableServer(t *testing.T) {
	c := facebook()
	c.TotalKeyRate = 4 * 90000 // rho > 1
	if _, err := c.Estimate(); err == nil {
		t.Error("unstable server estimated")
	}
}

func TestExpectedTDZeroMiss(t *testing.T) {
	c := facebook()
	c.MissRatio = 0
	td, err := c.ExpectedTD()
	if err != nil {
		t.Fatal(err)
	}
	if td != 0 {
		t.Errorf("TD = %v, want 0", td)
	}
}

func TestExpectedTDFullMiss(t *testing.T) {
	c := facebook()
	c.MissRatio = 1
	td, err := c.ExpectedTD()
	if err != nil {
		t.Fatal(err)
	}
	// All N keys miss: E[TD] ≈ ln(N+1)/muD.
	want := math.Log(float64(c.N)+1) / c.MuD
	if !almostEqual(td, want, 1e-9) {
		t.Errorf("TD = %v, want %v", td, want)
	}
}

func TestExpectedTDTinyMissStable(t *testing.T) {
	// r = 1e-12 with N=150: numerically stable via expm1/log1p, and
	// approximately N*r/muD * ln(2) — Θ(r).
	c := facebook()
	c.MissRatio = 1e-12
	td, err := c.ExpectedTD()
	if err != nil {
		t.Fatal(err)
	}
	want := 150e-12 / c.MuD * math.Log(2)
	if !almostEqual(td, want, 0.01) {
		t.Errorf("TD = %v, want ~%v", td, want)
	}
}

func TestMissAnyProbability(t *testing.T) {
	tests := []struct {
		r    float64
		n    int
		want float64
	}{
		{0, 150, 0},
		{1, 5, 1},
		{0.5, 1, 0.5},
		{0.01, 150, 1 - math.Pow(0.99, 150)},
	}
	for _, tt := range tests {
		if got := missAnyProbability(tt.r, tt.n); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("missAny(%v, %d) = %v, want %v", tt.r, tt.n, got, tt.want)
		}
	}
}

func TestExpectedMissCount(t *testing.T) {
	c := facebook()
	mean, cond := c.ExpectedMissCount()
	if !almostEqual(mean, 1.5, 1e-12) {
		t.Errorf("E[K] = %v", mean)
	}
	if cond <= mean {
		t.Errorf("E[K|K>0] = %v should exceed E[K] = %v", cond, mean)
	}
	c.MissRatio = 0
	_, cond0 := c.ExpectedMissCount()
	if cond0 != 0 {
		t.Errorf("cond mean with r=0: %v", cond0)
	}
}

// E[TS(N)] grows logarithmically in N (Fig. 12): doubling ln N adds a
// constant increment equal to the slope.
func TestTSLogGrowth(t *testing.T) {
	c := facebook()
	slope, err := c.TSGrowthSlope()
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, n := range []int{10, 100, 1000, 10000} {
		c.N = n
		ts, err := c.ExpectedTSPoint()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			inc := ts - prev
			want := slope * math.Log(10)
			if !almostEqual(inc, want, 0.05) {
				t.Errorf("N=%d: increment %v, want %v", n, inc, want)
			}
		}
		prev = ts
	}
}

// E[TD(N)] approaches ln(N r + 1)/muD for large N (Fig. 13, §5.2.4).
func TestTDLogGrowthLargeN(t *testing.T) {
	c := facebook()
	c.N = 1000000
	td, err := c.ExpectedTD()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(float64(c.N)*c.MissRatio+1) / c.MuD
	if !almostEqual(td, want, 0.01) {
		t.Errorf("TD = %v, want ~%v", td, want)
	}
}

// Eq. 25: for small N, E[TD] is linear in r; for large N, logarithmic.
func TestTDRegimes(t *testing.T) {
	c := facebook()
	// Small N: doubling r doubles TD.
	c.N = 1
	c.MissRatio = 0.001
	td1, _ := c.ExpectedTD()
	c.MissRatio = 0.002
	td2, _ := c.ExpectedTD()
	if !almostEqual(td2/td1, 2, 0.01) {
		t.Errorf("small-N ratio = %v, want 2 (Θ(r))", td2/td1)
	}
	// Large N: multiplying r by 10 adds ~ln(10)/muD.
	c.N = 100000
	c.MissRatio = 0.001
	td3, _ := c.ExpectedTD()
	c.MissRatio = 0.01
	td4, _ := c.ExpectedTD()
	if !almostEqual(td4-td3, math.Log(10)/c.MuD, 0.05) {
		t.Errorf("large-N increment = %v, want %v (Θ(log r))", td4-td3, math.Log(10)/c.MuD)
	}
}

func TestClassifyTDRegime(t *testing.T) {
	tests := []struct {
		n    int
		r    float64
		want TDRegime
	}{
		{1, 0.01, TDLinear},
		{10, 0.01, TDLinear},
		{100, 0.01, TDTransitional},
		{10000, 0.01, TDLogarithmic},
	}
	for _, tt := range tests {
		if got := ClassifyTDRegime(tt.n, tt.r); got != tt.want {
			t.Errorf("regime(%d, %v) = %v, want %v", tt.n, tt.r, got, tt.want)
		}
	}
	for _, r := range []TDRegime{TDLinear, TDLogarithmic, TDTransitional, TDRegime(99)} {
		if r.String() == "" {
			t.Error("empty String()")
		}
	}
}

// §5.2.1(i): E[TS(N)] = Θ(1/(1-q)) — latency doubles from q=0 to q=0.5
// when the batch process is held fixed.
func TestConcurrencyScalingLinear(t *testing.T) {
	base := facebook()
	ratio, err := ConcurrencyScaling(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ratio, 2, 0.02) {
		t.Errorf("scaling(q=0.5) = %v, want ~2", ratio)
	}
	if _, err := ConcurrencyScaling(base, 1.5); err == nil {
		t.Error("invalid q accepted")
	}
}

// Proposition 2: scaling (Λ, µS) jointly leaves δ unchanged and scales
// latency by 1/c.
func TestProposition2Invariance(t *testing.T) {
	c := facebook()
	for _, scale := range []float64{0.5, 2, 10} {
		dErr, lErr, err := Proposition2Invariant(c, scale)
		if err != nil {
			t.Fatal(err)
		}
		if dErr > 1e-6 {
			t.Errorf("scale %v: delta error %v", scale, dErr)
		}
		if lErr > 1e-6 {
			t.Errorf("scale %v: latency error %v", scale, lErr)
		}
	}
	if _, _, err := Proposition2Invariant(c, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

// Burstier traffic strictly increases E[TS(N)] at fixed utilization
// (Fig. 6 monotonicity).
func TestTSIncreasesWithXi(t *testing.T) {
	prev := 0.0
	for _, xi := range []float64{0, 0.15, 0.3, 0.45, 0.6} {
		c := facebook()
		c.Xi = xi
		ts, err := c.ExpectedTSPoint()
		if err != nil {
			t.Fatal(err)
		}
		if ts <= prev {
			t.Errorf("xi=%v: TS=%v not increasing", xi, ts)
		}
		prev = ts
	}
}

// Heavier imbalance (larger p1 at fixed aggregate rate) increases
// latency (Fig. 10 monotonicity).
func TestTSIncreasesWithImbalance(t *testing.T) {
	prev := 0.0
	for _, p1 := range []float64{0.3, 0.5, 0.7, 0.9} {
		c := facebook()
		ratios, err := UnbalancedLoad(4, p1)
		if err != nil {
			t.Fatal(err)
		}
		c.LoadRatios = ratios
		c.TotalKeyRate = 80000
		ts, err := c.ExpectedTSPoint()
		if err != nil {
			t.Fatal(err)
		}
		if ts <= prev {
			t.Errorf("p1=%v: TS=%v not increasing", p1, ts)
		}
		prev = ts
	}
}

// Bounds sanity under random valid configurations.
func TestPropertyEstimateBounds(t *testing.T) {
	f := func(rawXi, rawRho, rawQ, rawR float64, rawN uint16) bool {
		xi := math.Abs(math.Mod(rawXi, 0.8))
		rho := 0.1 + math.Abs(math.Mod(rawRho, 0.8))
		q := math.Abs(math.Mod(rawQ, 0.5))
		r := math.Abs(math.Mod(rawR, 0.5))
		n := int(rawN)%1000 + 1
		c := &Config{
			N:              n,
			LoadRatios:     BalancedLoad(4),
			TotalKeyRate:   4 * rho * 80000,
			Q:              q,
			Xi:             xi,
			MuS:            80000,
			MissRatio:      r,
			MuD:            1000,
			NetworkLatency: 20e-6,
		}
		est, err := c.Estimate()
		if err != nil {
			return false
		}
		if est.TS.Lo < 0 || est.TS.Hi < est.TS.Lo {
			return false
		}
		if est.TD < 0 {
			return false
		}
		if est.Total.Hi < est.Total.Lo {
			return false
		}
		return est.Total.Lo >= math.Max(est.TN, math.Max(est.TS.Lo, est.TD))-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBoundsHelpers(t *testing.T) {
	b := Bounds{Lo: 1, Hi: 3}
	if b.Mid() != 2 {
		t.Errorf("mid = %v", b.Mid())
	}
	if !b.Contains(2, 0) || !b.Contains(1, 0) || b.Contains(3.5, 0.01) {
		t.Error("contains semantics wrong")
	}
	if !b.Contains(3.1, 0.05) {
		t.Error("relative slack not applied")
	}
}

func TestKeyLatencyBoundsExposed(t *testing.T) {
	c := facebook()
	lo, hi, err := c.KeyLatencyBounds(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0 || hi <= lo {
		t.Errorf("bounds %v %v", lo, hi)
	}
}

func TestFactorsTable(t *testing.T) {
	fs := Factors()
	if len(fs) != 7 {
		t.Fatalf("factor count = %d", len(fs))
	}
	seen := make(map[string]bool)
	for _, f := range fs {
		if f.Symbol == "" || f.Name == "" || f.Law == "" {
			t.Errorf("incomplete factor %+v", f)
		}
		if seen[f.Symbol] {
			t.Errorf("duplicate symbol %s", f.Symbol)
		}
		seen[f.Symbol] = true
	}
}
