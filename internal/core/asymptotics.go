package core

import (
	"fmt"
	"math"
)

// TDRegime classifies the miss-latency scaling regime of eq. 25:
// with few keys per request E[T_D(N)] = Θ(r); with many keys it is
// Θ(log r) — the paper's argument for shrinking N rather than chasing
// tiny miss-ratio improvements.
type TDRegime int

const (
	// TDLinear: E[T_D(N)] grows linearly in the miss ratio (N·r ≪ 1).
	TDLinear TDRegime = iota + 1
	// TDLogarithmic: E[T_D(N)] grows logarithmically in the miss ratio
	// (N·r ≫ 1).
	TDLogarithmic
	// TDTransitional: N·r ≈ 1, between the two asymptotes.
	TDTransitional
)

// String implements fmt.Stringer.
func (r TDRegime) String() string {
	switch r {
	case TDLinear:
		return "Θ(r)"
	case TDLogarithmic:
		return "Θ(log r)"
	case TDTransitional:
		return "transitional"
	default:
		return fmt.Sprintf("TDRegime(%d)", int(r))
	}
}

// ClassifyTDRegime applies eq. 25's small/large-N criterion via the
// expected miss count N·r.
func ClassifyTDRegime(n int, r float64) TDRegime {
	nr := float64(n) * r
	switch {
	case nr < 0.3:
		return TDLinear
	case nr > 3:
		return TDLogarithmic
	default:
		return TDTransitional
	}
}

// TSGrowthSlope returns the per-e-fold slope of E[T_S(N)] in ln N,
// 1/((1−δ)(1−q)µ_S): Theorem 1 predicts E[T_S(N)] = Θ(log N) with this
// coefficient (§5.2.4).
func (c *Config) TSGrowthSlope() (float64, error) {
	_, _, rate, err := c.expectedTS()
	if err != nil {
		return 0, err
	}
	return 1 / rate, nil
}

// TDGrowthSlope returns the large-N per-e-fold slope of E[T_D(N)] in
// ln N, which Theorem 1 predicts converges to 1/µ_D (§5.2.4:
// lim E[T_D(N)] = ln(N·r+1)/µ_D).
func (c *Config) TDGrowthSlope() float64 { return 1 / c.MuD }

// ConcurrencyScaling returns E[T_S(N)] evaluated at concurrency q,
// divided by its value at q=0, holding the key arrival rate λ fixed —
// the paper's §5.2.1(i) observation that latency grows linearly in the
// mean batch size 1/(1-q). (With λ fixed, both the batch arrival rate
// and the batch service rate scale by (1−q), so δ is invariant and the
// ratio is exactly 1/(1−q).)
func ConcurrencyScaling(base *Config, q float64) (float64, error) {
	if q < 0 || q >= 1 {
		return 0, fmt.Errorf("core: q=%v out of [0,1)", q)
	}
	c0 := *base
	c0.Q = 0
	cq := *base
	cq.Q = q
	t0, err := c0.ExpectedTSPoint()
	if err != nil {
		return 0, err
	}
	tq, err := cq.ExpectedTSPoint()
	if err != nil {
		return 0, err
	}
	return tq / t0, nil
}

// Proposition2Invariant checks the scale invariance of Proposition 2:
// scaling (Λ, µ_S) by a common factor c leaves δ unchanged and scales
// E[T_S(N)] by 1/c. It returns the relative error of the two relations.
func Proposition2Invariant(cfg *Config, scale float64) (deltaErr, latencyErr float64, err error) {
	if !(scale > 0) {
		return 0, 0, fmt.Errorf("core: scale=%v must be positive", scale)
	}
	est1, err := cfg.Estimate()
	if err != nil {
		return 0, 0, err
	}
	scaled := *cfg
	scaled.TotalKeyRate = cfg.TotalKeyRate * scale
	scaled.MuS = cfg.MuS * scale
	est2, err := scaled.Estimate()
	if err != nil {
		return 0, 0, err
	}
	deltaErr = math.Abs(est1.Delta-est2.Delta) / est1.Delta
	want := est1.TS.Hi / scale
	latencyErr = math.Abs(est2.TS.Hi-want) / want
	return deltaErr, latencyErr, nil
}
