package core

import (
	"fmt"
	"math"

	"memqlat/internal/dist"
	"memqlat/internal/queueing"
)

// CliffMethod selects how the latency cliff point is operationalized.
// Proposition 2 proves the cliff utilization depends only on the burst
// degree ξ; the paper does not pin down a formula, so we provide two
// complementary detectors (see DESIGN.md §4.2).
type CliffMethod int

const (
	// CliffDeltaThreshold (the default, used for Table 4) reports the
	// utilization at which the GI/M/1 root δ reaches a calibrated level
	// δ* (0.77, chosen so that ξ=0 reproduces the paper's 77%: for
	// Poisson arrivals δ = ρ exactly).
	CliffDeltaThreshold CliffMethod = iota + 1
	// CliffSlope reports the utilization at which the relative latency
	// sensitivity d ln E[T_S]/dρ reaches a calibrated threshold s*
	// (1/(1−0.77) ≈ 4.35 per unit ρ, i.e. a 1 pp utilization increase
	// raising latency by >4.3%; the calibration again anchors ξ=0 at
	// the paper's 77%). A cross-check for the δ-threshold detector.
	CliffSlope
)

// DefaultDeltaStar calibrates CliffDeltaThreshold to the paper's ξ=0 row.
const DefaultDeltaStar = 0.77

// DefaultSlopeStar calibrates CliffSlope to the paper's ξ=0 row:
// for M/M/1, d ln(1/(1−ρ))/dρ = 1/(1−ρ) = 1/(1−0.77) at ρ = 0.77.
const DefaultSlopeStar = 1 / (1 - DefaultDeltaStar)

// CliffOptions tunes the cliff detectors.
type CliffOptions struct {
	Method CliffMethod
	// DeltaStar is the δ level for CliffDeltaThreshold
	// (DefaultDeltaStar when zero).
	DeltaStar float64
	// SlopeStar is the relative-sensitivity threshold for CliffSlope
	// (DefaultSlopeStar when zero).
	SlopeStar float64
}

func (o *CliffOptions) withDefaults() CliffOptions {
	out := CliffOptions{
		Method:    CliffDeltaThreshold,
		DeltaStar: DefaultDeltaStar,
		SlopeStar: DefaultSlopeStar,
	}
	if o == nil {
		return out
	}
	if o.Method != 0 {
		out.Method = o.Method
	}
	if o.DeltaStar > 0 {
		out.DeltaStar = o.DeltaStar
	}
	if o.SlopeStar > 0 {
		out.SlopeStar = o.SlopeStar
	}
	return out
}

// deltaAt solves the GI/M/1 root for Generalized Pareto arrivals with
// burst degree xi and concurrency q at utilization rho. The result is
// scale-free in µ_S (Proposition 2), so a normalized µ_S = 1 is used.
func deltaAt(xi, q, rho float64) (float64, error) {
	const muS = 1.0
	arr, err := dist.NewGeneralizedPareto(xi, (1-q)*rho*muS)
	if err != nil {
		return 0, err
	}
	bq, err := queueing.NewBatchQueue(arr, q, muS)
	if err != nil {
		return 0, err
	}
	return bq.Delta()
}

// CliffUtilization returns the utilization ρ_S(ξ) at which the
// Memcached-server processing latency reaches its cliff, for burst
// degree xi and concurrent probability q (Proposition 2 / Table 4).
func CliffUtilization(xi, q float64, opts *CliffOptions) (float64, error) {
	if xi < 0 || xi >= 1 || math.IsNaN(xi) {
		return 0, fmt.Errorf("core: cliff xi=%v must be in [0, 1)", xi)
	}
	if q < 0 || q >= 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("core: cliff q=%v must be in [0, 1)", q)
	}
	o := opts.withDefaults()
	switch o.Method {
	case CliffSlope:
		return cliffSlope(xi, q, o.SlopeStar)
	case CliffDeltaThreshold:
		return cliffDeltaThreshold(xi, q, o.DeltaStar)
	default:
		return 0, fmt.Errorf("core: unknown cliff method %d", o.Method)
	}
}

// cliffSlope bisects for the ρ at which d ln E[T_S]/dρ = slopeStar,
// where E[T_S] ∝ 1/(1−δ(ρ)). The sensitivity δ'(ρ)/(1−δ(ρ)) is
// increasing in ρ (latency is log-convex in utilization), so bisection
// applies; the derivative is taken by central difference.
func cliffSlope(xi, q, slopeStar float64) (float64, error) {
	if !(slopeStar > 0) {
		return 0, fmt.Errorf("core: slopeStar=%v must be positive", slopeStar)
	}
	sens := func(rho float64) (float64, error) {
		const h = 1e-4
		dPlus, err := deltaAt(xi, q, rho+h)
		if err != nil {
			return 0, err
		}
		dMinus, err := deltaAt(xi, q, rho-h)
		if err != nil {
			return 0, err
		}
		d0, err := deltaAt(xi, q, rho)
		if err != nil {
			return 0, err
		}
		return (dPlus - dMinus) / (2 * h) / (1 - d0), nil
	}
	lo, hi := 1e-3, 1-1e-3
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		s, err := sens(mid)
		if err != nil {
			return 0, err
		}
		if s < slopeStar {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-6 {
			break
		}
	}
	return (lo + hi) / 2, nil
}

func cliffDeltaThreshold(xi, q, deltaStar float64) (float64, error) {
	if deltaStar <= 0 || deltaStar >= 1 {
		return 0, fmt.Errorf("core: deltaStar=%v must be in (0, 1)", deltaStar)
	}
	// δ(ρ) is strictly increasing in ρ with δ(0+) = 0 and δ(1-) = 1:
	// bisection.
	lo, hi := 1e-6, 1-1e-6
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		d, err := deltaAt(xi, q, mid)
		if err != nil {
			return 0, err
		}
		if d < deltaStar {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// CliffRow is one row of Table 4.
type CliffRow struct {
	Xi          float64
	Utilization float64
}

// CliffTable reproduces Table 4: the cliff utilization for each burst
// degree, at concurrent probability q.
func CliffTable(xis []float64, q float64, opts *CliffOptions) ([]CliffRow, error) {
	rows := make([]CliffRow, 0, len(xis))
	for _, xi := range xis {
		u, err := CliffUtilization(xi, q, opts)
		if err != nil {
			return nil, fmt.Errorf("xi=%v: %w", xi, err)
		}
		rows = append(rows, CliffRow{Xi: xi, Utilization: u})
	}
	return rows, nil
}

// PaperTable4Xis lists the ξ values of the paper's Table 4.
func PaperTable4Xis() []float64 {
	xis := make([]float64, 0, 20)
	for xi := 0.0; xi < 0.951; xi += 0.05 {
		xis = append(xis, math.Round(xi*100)/100)
	}
	return xis
}
