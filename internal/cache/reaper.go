package cache

import (
	"fmt"
	"sync"
	"time"
)

// Reaper proactively removes expired items in the background, bounding
// the memory held by dead items between accesses (the cache otherwise
// reaps lazily, on lookup). Modeled on memcached's crawler: each tick it
// samples a bounded number of items per shard, so a tick's cost is
// constant regardless of cache size.
type Reaper struct {
	cache    *Cache
	interval time.Duration
	sample   int

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewReaper creates (but does not start) a reaper that wakes every
// interval and examines up to samplePerShard items in each shard.
func NewReaper(c *Cache, interval time.Duration, samplePerShard int) (*Reaper, error) {
	if c == nil {
		return nil, fmt.Errorf("cache: reaper needs a cache")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("cache: reaper interval %v must be positive", interval)
	}
	if samplePerShard < 1 {
		return nil, fmt.Errorf("cache: reaper sample %d must be >= 1", samplePerShard)
	}
	return &Reaper{
		cache:    c,
		interval: interval,
		sample:   samplePerShard,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Start launches the background goroutine. It may be called once.
func (r *Reaper) Start() {
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				r.cache.ReapExpired(r.sample)
			case <-r.stop:
				return
			}
		}
	}()
}

// Stop signals the goroutine to exit and waits for it.
func (r *Reaper) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

// ReapExpired makes one reaping pass over every shard, examining up to
// samplePerShard items each (map iteration order provides the random
// sample) and removing the expired ones. It returns the number reaped
// and is safe to call directly (the Reaper just calls it on a timer).
func (c *Cache) ReapExpired(samplePerShard int) int {
	if samplePerShard < 1 {
		return 0
	}
	now := c.clock()
	reaped := 0
	for _, s := range c.shards {
		c.lock(s)
		examined := 0
		var victims []string
		for key, e := range s.items {
			if examined >= samplePerShard {
				break
			}
			examined++
			if e.expired(now) {
				victims = append(victims, key)
			}
		}
		for _, key := range victims {
			s.remove(key)
			c.expirations.Add(1)
			reaped++
		}
		s.mu.Unlock()
	}
	return reaped
}
