// Package cache is the in-memory key-value store at the heart of the
// Memcached-server substrate: a sharded hash table with per-shard LRU
// eviction, item TTLs, CAS tokens, byte-budget memory accounting and
// memcached-compatible mutation semantics (set/add/replace/append/
// prepend/cas/incr/decr/touch/delete/flush_all).
package cache

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Common result errors, matching the memcached protocol's reply taxonomy.
var (
	// ErrNotFound: the key does not exist (or is expired).
	ErrNotFound = errors.New("cache: not found")
	// ErrExists: a cas operation lost the race (token mismatch).
	ErrExists = errors.New("cache: cas token mismatch")
	// ErrNotStored: an add/replace/append/prepend precondition failed.
	ErrNotStored = errors.New("cache: not stored")
	// ErrNotNumeric: incr/decr on a non-numeric value.
	ErrNotNumeric = errors.New("cache: value is not a number")
	// ErrValueTooLarge: the value exceeds the per-item limit.
	ErrValueTooLarge = errors.New("cache: value too large")
	// ErrKeyInvalid: empty or oversized key.
	ErrKeyInvalid = errors.New("cache: invalid key")
)

// MaxKeyLen mirrors memcached's 250-byte key limit.
const MaxKeyLen = 250

// DefaultMaxItemSize mirrors memcached's default 1 MiB item limit.
const DefaultMaxItemSize = 1 << 20

// itemOverhead approximates per-item bookkeeping cost for the byte
// budget (entry struct, map bucket share, LRU links).
const itemOverhead = 64

// Item is a stored value returned by Get.
type Item struct {
	Value   []byte
	Flags   uint32
	CAS     uint64
	Expires time.Time // zero when the item never expires
}

// Options configures a Cache.
type Options struct {
	// MaxBytes caps the total memory budget across shards
	// (default 64 MiB). The cap is enforced per shard as MaxBytes/shards.
	MaxBytes int64
	// Shards is the number of independent lock domains (default
	// DefaultShards: GOMAXPROCS rounded up to a power of two, floored at
	// 8 so small machines still spread contended keys). Rounded up to a
	// power of two.
	Shards int
	// MaxItemSize caps a single value (default DefaultMaxItemSize).
	MaxItemSize int
	// Clock substitutes the time source for tests (default time.Now).
	Clock func() time.Time
}

// DefaultShards is the shard count used when Options.Shards is zero:
// one lock domain per schedulable core (GOMAXPROCS rounded up to a
// power of two), floored at 8 so low-core machines still dilute lock
// convoys among concurrent connections.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return nextPow2(n)
}

// Cache is a sharded LRU key-value store. All methods are safe for
// concurrent use.
type Cache struct {
	shards      []*shard
	shardMask   uint64
	maxItemSize int
	clock       func() time.Time
	casCounter  atomic.Uint64

	// onLockWait, when set, receives the seconds a shard-lock
	// acquisition spent blocked. The TryLock fast path keeps the
	// uncontended case observation-free, so the stage stays zero-elided
	// on healthy runs.
	onLockWait atomic.Pointer[func(float64)]

	// onEvict, when set, receives each non-expired LRU victim as it is
	// evicted (expired reaping is not an eviction — those values are
	// dead, not displaced). One atomic load per victim when unset; the
	// store hot path is untouched when no evictions occur.
	onEvict atomic.Pointer[EvictFunc]

	gets        atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	sets        atomic.Int64
	deletes     atomic.Int64
	evictions   atomic.Int64
	expirations atomic.Int64

	// lockWaits / lockWaitNanos count contended shard-lock
	// acquisitions and the total time they spent blocked. Only the
	// TryLock-miss slow path pays for them, so the uncontended hot
	// path is unchanged.
	lockWaits     atomic.Int64
	lockWaitNanos atomic.Int64
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Items       int64
	Bytes       int64
	MaxBytes    int64
	Gets        int64
	Hits        int64
	Misses      int64
	Sets        int64
	Deletes     int64
	Evictions   int64
	Expirations int64
	// LockWaits counts contended shard-lock acquisitions;
	// LockWaitSeconds is their summed blocked time.
	LockWaits       int64
	LockWaitSeconds float64
}

// HitRatio returns Hits/Gets (0 when no gets were served).
func (s Stats) HitRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// New constructs a cache with the given options.
func New(opts Options) (*Cache, error) {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = 64 << 20
	}
	if opts.MaxBytes < 0 {
		return nil, fmt.Errorf("cache: MaxBytes=%d must be positive", opts.MaxBytes)
	}
	if opts.Shards == 0 {
		opts.Shards = DefaultShards()
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("cache: Shards=%d must be positive", opts.Shards)
	}
	if opts.MaxItemSize == 0 {
		opts.MaxItemSize = DefaultMaxItemSize
	}
	if opts.MaxItemSize < 0 {
		return nil, fmt.Errorf("cache: MaxItemSize=%d must be positive", opts.MaxItemSize)
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	n := nextPow2(opts.Shards)
	perShard := opts.MaxBytes / int64(n)
	if perShard < int64(opts.MaxItemSize)+itemOverhead {
		perShard = int64(opts.MaxItemSize) + itemOverhead
	}
	c := &Cache{
		shards:      make([]*shard, n),
		shardMask:   uint64(n - 1),
		maxItemSize: opts.MaxItemSize,
		clock:       opts.Clock,
	}
	for i := range c.shards {
		c.shards[i] = newShard(perShard)
	}
	return c, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FNV-1a parameters, inlined so shard routing never allocates a digest
// (hash/fnv's New64a escapes to the heap on every call).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64a(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

func fnv64aBytes(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

func (c *Cache) shardFor(key string) *shard {
	return c.shards[fnv64a(key)&c.shardMask]
}

// ShardIndex exposes the key-to-shard routing (the server's shaped
// service path uses it to pick a service channel per key).
func (c *Cache) ShardIndex(key []byte) int {
	return int(fnv64aBytes(key) & c.shardMask)
}

// Shards reports the number of lock domains.
func (c *Cache) Shards() int { return len(c.shards) }

// EvictFunc observes one LRU victim: the key, the stored value, its
// flags and its absolute expiry (zero when none). It is called with
// the victim's shard lock held, so it must be fast and must not call
// back into the cache; the value slice is owned by the evicted entry
// and must be copied if retained beyond the call. The extstore tier
// hangs off this hook: victims are enqueued to the SSD log instead of
// vanishing.
type EvictFunc func(key string, value []byte, flags uint32, expires time.Time)

// OnEvict installs f as the eviction observer (nil removes it). Safe
// to call concurrently with cache use. Only genuine LRU displacements
// are reported — entries reaped because their TTL passed are counted
// as expirations and never observed here.
func (c *Cache) OnEvict(f EvictFunc) {
	if f == nil {
		c.onEvict.Store(nil)
		return
	}
	c.onEvict.Store(&f)
}

// OnLockWait installs f as the lock-wait observer: it receives the
// seconds any shard-lock acquisition spent blocked (contended case
// only). Safe to call concurrently with cache use; pass nil to remove.
func (c *Cache) OnLockWait(f func(seconds float64)) {
	if f == nil {
		c.onLockWait.Store(nil)
		return
	}
	c.onLockWait.Store(&f)
}

// lock acquires s.mu, measuring the blocked duration for the lock-wait
// observer when the uncontended TryLock fast path misses.
func (c *Cache) lock(s *shard) {
	if s.mu.TryLock() {
		return
	}
	start := time.Now()
	s.mu.Lock()
	wait := time.Since(start)
	c.lockWaits.Add(1)
	c.lockWaitNanos.Add(wait.Nanoseconds())
	if f := c.onLockWait.Load(); f != nil {
		(*f)(wait.Seconds())
	}
}

func (c *Cache) nextCAS() uint64 { return c.casCounter.Add(1) }

func validateKey(key string) error {
	if key == "" || len(key) > MaxKeyLen {
		return ErrKeyInvalid
	}
	for i := 0; i < len(key); i++ {
		// memcached forbids whitespace and control characters in keys.
		if key[i] <= ' ' || key[i] == 0x7f {
			return ErrKeyInvalid
		}
	}
	return nil
}

// validateKeyBytes mirrors validateKey for the byte-slice hot path.
func validateKeyBytes(key []byte) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return ErrKeyInvalid
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return ErrKeyInvalid
		}
	}
	return nil
}

func (c *Cache) validateValue(value []byte) error {
	if len(value) > c.maxItemSize {
		return ErrValueTooLarge
	}
	return nil
}

// expiryFrom converts a TTL to an absolute deadline: ttl == 0 means no
// expiry; ttl < 0 means already expired (memcached's negative-exptime
// semantics — the item is stored but never retrievable).
func (c *Cache) expiryFrom(ttl time.Duration) time.Time {
	switch {
	case ttl == 0:
		return time.Time{}
	case ttl < 0:
		return c.clock()
	default:
		return c.clock().Add(ttl)
	}
}

// Get returns the item stored at key.
func (c *Cache) Get(key string) (Item, error) {
	if err := validateKey(key); err != nil {
		return Item{}, err
	}
	c.gets.Add(1)
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	e := s.lookup(key, now, &c.expirations)
	if e == nil {
		s.mu.Unlock()
		c.misses.Add(1)
		return Item{}, ErrNotFound
	}
	s.touch(e)
	it := Item{
		Value:   append([]byte(nil), e.value...),
		Flags:   e.flags,
		CAS:     e.cas,
		Expires: e.expires,
	}
	s.mu.Unlock()
	c.hits.Add(1)
	return it, nil
}

// GetInto is the allocation-free read path used by the protocol server:
// it looks up key (a byte slice the cache does not retain), appends the
// stored value to dst and returns the extended slice plus the item's
// flags and CAS token. When dst has sufficient capacity the call does
// not allocate. Errors are those of Get.
func (c *Cache) GetInto(key []byte, dst []byte) (value []byte, flags uint32, cas uint64, err error) {
	if err := validateKeyBytes(key); err != nil {
		return nil, 0, 0, err
	}
	c.gets.Add(1)
	s := c.shards[fnv64aBytes(key)&c.shardMask]
	c.lock(s)
	e := s.lookupBytes(key, c.clock, &c.expirations)
	if e == nil {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, 0, 0, ErrNotFound
	}
	s.touch(e)
	dst = append(dst, e.value...)
	flags, cas = e.flags, e.cas
	s.mu.Unlock()
	c.hits.Add(1)
	return dst, flags, cas, nil
}

// SetBytes is Set for callers that reuse the key and value buffers (the
// protocol hot path parses both into per-connection scratch): the cache
// copies them before the store instead of taking ownership.
func (c *Cache) SetBytes(key, value []byte, flags uint32, ttl time.Duration) error {
	if err := validateKeyBytes(key); err != nil {
		return err
	}
	if err := c.validateValue(value); err != nil {
		return err
	}
	owned := append(make([]byte, 0, len(value)), value...)
	s := c.shards[fnv64aBytes(key)&c.shardMask]
	now := c.clock()
	c.lock(s)
	defer s.mu.Unlock()
	s.store(string(key), owned, flags, c.expiryFrom(ttl), c.nextCAS(), now, c)
	c.sets.Add(1)
	return nil
}

// GetAndTouch atomically fetches the item at key and replaces its
// expiry (the protocol's gat/gats command).
func (c *Cache) GetAndTouch(key string, ttl time.Duration) (Item, error) {
	if err := validateKey(key); err != nil {
		return Item{}, err
	}
	c.gets.Add(1)
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	e := s.lookup(key, now, &c.expirations)
	if e == nil {
		s.mu.Unlock()
		c.misses.Add(1)
		return Item{}, ErrNotFound
	}
	e.expires = c.expiryFrom(ttl)
	s.touch(e)
	it := Item{
		Value:   append([]byte(nil), e.value...),
		Flags:   e.flags,
		CAS:     e.cas,
		Expires: e.expires,
	}
	s.mu.Unlock()
	c.hits.Add(1)
	return it, nil
}

// Set unconditionally stores value at key.
func (c *Cache) Set(key string, value []byte, flags uint32, ttl time.Duration) error {
	if err := validateKey(key); err != nil {
		return err
	}
	if err := c.validateValue(value); err != nil {
		return err
	}
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	defer s.mu.Unlock()
	s.store(key, value, flags, c.expiryFrom(ttl), c.nextCAS(), now, c)
	c.sets.Add(1)
	return nil
}

// Add stores only if the key is absent.
func (c *Cache) Add(key string, value []byte, flags uint32, ttl time.Duration) error {
	if err := validateKey(key); err != nil {
		return err
	}
	if err := c.validateValue(value); err != nil {
		return err
	}
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	defer s.mu.Unlock()
	if s.lookup(key, now, &c.expirations) != nil {
		return ErrNotStored
	}
	s.store(key, value, flags, c.expiryFrom(ttl), c.nextCAS(), now, c)
	c.sets.Add(1)
	return nil
}

// Replace stores only if the key is present.
func (c *Cache) Replace(key string, value []byte, flags uint32, ttl time.Duration) error {
	if err := validateKey(key); err != nil {
		return err
	}
	if err := c.validateValue(value); err != nil {
		return err
	}
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	defer s.mu.Unlock()
	if s.lookup(key, now, &c.expirations) == nil {
		return ErrNotStored
	}
	s.store(key, value, flags, c.expiryFrom(ttl), c.nextCAS(), now, c)
	c.sets.Add(1)
	return nil
}

// Append concatenates value after the existing value. Flags and expiry
// are preserved (memcached semantics).
func (c *Cache) Append(key string, value []byte) error {
	return c.concat(key, value, true)
}

// Prepend concatenates value before the existing value.
func (c *Cache) Prepend(key string, value []byte) error {
	return c.concat(key, value, false)
}

func (c *Cache) concat(key string, value []byte, after bool) error {
	if err := validateKey(key); err != nil {
		return err
	}
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	defer s.mu.Unlock()
	e := s.lookup(key, now, &c.expirations)
	if e == nil {
		return ErrNotStored
	}
	var combined []byte
	if after {
		combined = append(append(make([]byte, 0, len(e.value)+len(value)), e.value...), value...)
	} else {
		combined = append(append(make([]byte, 0, len(e.value)+len(value)), value...), e.value...)
	}
	if err := c.validateValue(combined); err != nil {
		return err
	}
	s.store(key, combined, e.flags, e.expires, c.nextCAS(), now, c)
	c.sets.Add(1)
	return nil
}

// CompareAndSwap stores value only if the caller's token matches the
// item's current CAS.
func (c *Cache) CompareAndSwap(key string, value []byte, flags uint32, ttl time.Duration, casToken uint64) error {
	if err := validateKey(key); err != nil {
		return err
	}
	if err := c.validateValue(value); err != nil {
		return err
	}
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	defer s.mu.Unlock()
	e := s.lookup(key, now, &c.expirations)
	if e == nil {
		return ErrNotFound
	}
	if e.cas != casToken {
		return ErrExists
	}
	s.store(key, value, flags, c.expiryFrom(ttl), c.nextCAS(), now, c)
	c.sets.Add(1)
	return nil
}

// Delete removes the key.
func (c *Cache) Delete(key string) error {
	if err := validateKey(key); err != nil {
		return err
	}
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	defer s.mu.Unlock()
	if s.lookup(key, now, &c.expirations) == nil {
		return ErrNotFound
	}
	s.remove(key)
	c.deletes.Add(1)
	return nil
}

// Touch updates the expiry of an existing key.
func (c *Cache) Touch(key string, ttl time.Duration) error {
	if err := validateKey(key); err != nil {
		return err
	}
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	defer s.mu.Unlock()
	e := s.lookup(key, now, &c.expirations)
	if e == nil {
		return ErrNotFound
	}
	e.expires = c.expiryFrom(ttl)
	return nil
}

// IncrDecr adjusts a decimal uint64 value by delta (negative for decr).
// Decrement saturates at zero (memcached semantics); increment wraps.
// The new value is returned.
func (c *Cache) IncrDecr(key string, delta int64) (uint64, error) {
	if err := validateKey(key); err != nil {
		return 0, err
	}
	s := c.shardFor(key)
	now := c.clock()
	c.lock(s)
	defer s.mu.Unlock()
	e := s.lookup(key, now, &c.expirations)
	if e == nil {
		return 0, ErrNotFound
	}
	cur, err := strconv.ParseUint(string(e.value), 10, 64)
	if err != nil {
		return 0, ErrNotNumeric
	}
	var next uint64
	if delta >= 0 {
		next = cur + uint64(delta)
	} else {
		dec := uint64(-delta)
		if dec > cur {
			next = 0
		} else {
			next = cur - dec
		}
	}
	s.store(key, []byte(strconv.FormatUint(next, 10)), e.flags, e.expires,
		c.nextCAS(), now, c)
	return next, nil
}

// FlushAll discards every item.
func (c *Cache) FlushAll() {
	for _, s := range c.shards {
		c.lock(s)
		s.clear()
		s.mu.Unlock()
	}
}

// Len returns the number of live items (expired-but-unreaped items
// included until their next access).
func (c *Cache) Len() int64 {
	var n int64
	for _, s := range c.shards {
		c.lock(s)
		n += int64(len(s.items))
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the accounted memory usage.
func (c *Cache) Bytes() int64 {
	var n int64
	for _, s := range c.shards {
		c.lock(s)
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	var maxBytes int64
	for _, s := range c.shards {
		maxBytes += s.maxBytes
	}
	return Stats{
		Items:           c.Len(),
		Bytes:           c.Bytes(),
		MaxBytes:        maxBytes,
		Gets:            c.gets.Load(),
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Sets:            c.sets.Load(),
		Deletes:         c.deletes.Load(),
		Evictions:       c.evictions.Load(),
		Expirations:     c.expirations.Load(),
		LockWaits:       c.lockWaits.Load(),
		LockWaitSeconds: float64(c.lockWaitNanos.Load()) / 1e9,
	}
}

// ShardStat is one shard's occupancy snapshot.
type ShardStat struct {
	Items    int64
	Bytes    int64
	MaxBytes int64
}

// ShardStats snapshots per-shard occupancy — the balance view the
// metrics plane exposes so a skewed key distribution (one shard's LRU
// churning while others idle) is visible without guessing from global
// counters.
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i, s := range c.shards {
		c.lock(s)
		out[i] = ShardStat{
			Items:    int64(len(s.items)),
			Bytes:    s.bytes,
			MaxBytes: s.maxBytes,
		}
		s.mu.Unlock()
	}
	return out
}

// entry is one stored item plus its LRU links (intrusive list).
type entry struct {
	key        string
	value      []byte
	flags      uint32
	cas        uint64
	expires    time.Time
	prev, next *entry
}

func (e *entry) cost() int64 {
	return ItemCost(len(e.key), len(e.value))
}

// ItemCost reports the byte-budget charge of one cached item — the key
// and value payloads plus the fixed per-item bookkeeping overhead — so
// capacity planners (e.g. the live plane's tier sizing) can convert an
// item budget into a MaxBytes budget.
func ItemCost(keyLen, valueLen int) int64 {
	return int64(keyLen) + int64(valueLen) + itemOverhead
}

func (e *entry) expired(now time.Time) bool {
	return !e.expires.IsZero() && !now.Before(e.expires)
}

// shard is one lock domain: hash map + LRU list + byte budget.
type shard struct {
	mu       sync.Mutex
	items    map[string]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	bytes    int64
	maxBytes int64
}

func newShard(maxBytes int64) *shard {
	return &shard{
		items:    make(map[string]*entry),
		maxBytes: maxBytes,
	}
}

// lookup returns the live entry for key, reaping it if expired.
// Caller holds mu.
func (s *shard) lookup(key string, now time.Time, expirations *atomic.Int64) *entry {
	e, ok := s.items[key]
	if !ok {
		return nil
	}
	if e.expired(now) {
		s.remove(key)
		expirations.Add(1)
		return nil
	}
	return e
}

// lookupBytes is lookup for byte keys. The map index expression
// s.items[string(key)] is recognized by the compiler, so no string is
// materialized on the hit path; the clock is consulted only when the
// entry carries an expiry, keeping TTL-less reads off time.Now.
// Caller holds mu.
func (s *shard) lookupBytes(key []byte, clock func() time.Time, expirations *atomic.Int64) *entry {
	e, ok := s.items[string(key)]
	if !ok {
		return nil
	}
	if !e.expires.IsZero() && e.expired(clock()) {
		s.remove(e.key)
		expirations.Add(1)
		return nil
	}
	return e
}

// touch moves e to the MRU position. Caller holds mu.
func (s *shard) touch(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) pushFront(e *entry) {
	e.next = s.head
	e.prev = nil
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// store inserts or replaces key, evicting LRU entries to fit the budget.
// Caller holds mu.
func (s *shard) store(key string, value []byte, flags uint32, expires time.Time,
	cas uint64, now time.Time, c *Cache) {
	if old, ok := s.items[key]; ok {
		s.bytes -= old.cost()
		s.unlink(old)
		delete(s.items, key)
	}
	e := &entry{key: key, value: value, flags: flags, cas: cas, expires: expires}
	need := e.cost()
	// Evict expired items first, then LRU, until the new entry fits.
	for s.bytes+need > s.maxBytes && s.tail != nil {
		victim := s.tail
		s.remove(victim.key)
		if victim.expired(now) {
			c.expirations.Add(1)
		} else {
			c.evictions.Add(1)
			// Displaced-but-live victims are observable: the second
			// cache tier catches them here. The entry is already
			// unlinked, so the callback is the value's sole referent.
			if f := c.onEvict.Load(); f != nil {
				(*f)(victim.key, victim.value, victim.flags, victim.expires)
			}
		}
	}
	s.items[key] = e
	s.pushFront(e)
	s.bytes += need
}

// remove deletes key if present. Caller holds mu.
func (s *shard) remove(key string) {
	e, ok := s.items[key]
	if !ok {
		return
	}
	s.bytes -= e.cost()
	s.unlink(e)
	delete(s.items, key)
}

func (s *shard) clear() {
	s.items = make(map[string]*entry)
	s.head, s.tail = nil, nil
	s.bytes = 0
}

// sanity guards against accidental arithmetic regressions in cost().
var _ = func() struct{} {
	if itemOverhead <= 0 || itemOverhead > math.MaxInt32 {
		panic("cache: invalid itemOverhead")
	}
	return struct{}{}
}()
