package cache

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestShardsAccessor(t *testing.T) {
	c, err := New(Options{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Shards(); got != 8 {
		t.Errorf("Shards() = %d, want 8 (5 rounded up to a power of two)", got)
	}
	if idx := c.ShardIndex([]byte("anything")); idx < 0 || idx >= c.Shards() {
		t.Errorf("ShardIndex out of range: %d", idx)
	}
	if n := DefaultShards(); n < 8 || n&(n-1) != 0 {
		t.Errorf("DefaultShards() = %d, want a power of two >= 8", n)
	}
}

func TestOnLockWaitObservesContention(t *testing.T) {
	c, err := New(Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu      sync.Mutex
		waits   int
		waitSum float64
	)
	c.OnLockWait(func(seconds float64) {
		mu.Lock()
		waits++
		waitSum += seconds
		mu.Unlock()
	})

	// Hold the single shard's lock directly so the reader's TryLock fast
	// path misses and the timed slow path (with callback) runs.
	s := c.shards[0]
	s.mu.Lock()
	done := make(chan error, 1)
	go func() {
		_, err := c.Get("k")
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	s.mu.Unlock()
	if err := <-done; !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get under contention = %v, want ErrNotFound", err)
	}
	mu.Lock()
	gotWaits, gotSum := waits, waitSum
	mu.Unlock()
	if gotWaits != 1 || gotSum <= 0 {
		t.Errorf("lock-wait observer: waits=%d sum=%v, want 1 call with positive duration", gotWaits, gotSum)
	}

	// With the observer removed the contended slow path must still work
	// (and must not call the old observer).
	c.OnLockWait(nil)
	s.mu.Lock()
	go func() {
		_, err := c.Get("k")
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	s.mu.Unlock()
	if err := <-done; !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after observer removal = %v, want ErrNotFound", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if waits != gotWaits {
		t.Errorf("observer called %d times after removal, want %d", waits, gotWaits)
	}
}

func TestByteKeyValidation(t *testing.T) {
	c, err := New(Options{MaxItemSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	badKeys := [][]byte{
		nil,
		[]byte(""),
		[]byte(strings.Repeat("k", MaxKeyLen+1)),
		[]byte("has space"),
		[]byte("ctrl\x01char"),
		[]byte("del\x7fchar"),
	}
	for _, key := range badKeys {
		if _, _, _, err := c.GetInto(key, nil); !errors.Is(err, ErrKeyInvalid) {
			t.Errorf("GetInto(%q) = %v, want ErrKeyInvalid", key, err)
		}
		if err := c.SetBytes(key, []byte("v"), 0, 0); !errors.Is(err, ErrKeyInvalid) {
			t.Errorf("SetBytes(%q) = %v, want ErrKeyInvalid", key, err)
		}
	}
	if err := c.SetBytes([]byte("k"), make([]byte, 65), 0, 0); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("oversized SetBytes = %v, want ErrValueTooLarge", err)
	}
	if _, _, _, err := c.GetInto([]byte("absent"), nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetInto miss = %v, want ErrNotFound", err)
	}
}

func TestStringKeyValidation(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	val := []byte("v")
	for name, call := range map[string]func(string) error{
		"Set":     func(k string) error { return c.Set(k, val, 0, 0) },
		"Add":     func(k string) error { return c.Add(k, val, 0, 0) },
		"Replace": func(k string) error { return c.Replace(k, val, 0, 0) },
		"Append":  func(k string) error { return c.Append(k, val) },
		"Prepend": func(k string) error { return c.Prepend(k, val) },
		"CAS":     func(k string) error { return c.CompareAndSwap(k, val, 0, 0, 1) },
		"Delete":  c.Delete,
		"Touch":   func(k string) error { return c.Touch(k, 0) },
		"Incr":    func(k string) error { _, err := c.IncrDecr(k, 1); return err },
		"Get":     func(k string) error { _, err := c.Get(k); return err },
		"GAT":     func(k string) error { _, err := c.GetAndTouch(k, 0); return err },
	} {
		if err := call("bad key"); !errors.Is(err, ErrKeyInvalid) {
			t.Errorf("%s with invalid key = %v, want ErrKeyInvalid", name, err)
		}
	}
}

func TestByteExpiryPaths(t *testing.T) {
	clk := newFakeClock()
	c, err := New(Options{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("ttl-key")
	if err := c.SetBytes(key, []byte("v1"), 3, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got, flags, cas, err := c.GetInto(key, nil)
	if err != nil || string(got) != "v1" || flags != 3 || cas == 0 {
		t.Fatalf("GetInto before expiry = (%q, %d, %d, %v)", got, flags, cas, err)
	}
	clk.Advance(time.Second)
	if _, _, _, err := c.GetInto(key, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetInto after expiry = %v, want ErrNotFound", err)
	}
	if got := c.Stats().Expirations; got != 1 {
		t.Errorf("expirations = %d, want 1", got)
	}

	// Negative TTL: stored but never retrievable (memcached semantics).
	if err := c.SetBytes(key, []byte("v2"), 0, -time.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.GetInto(key, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetInto of negative-TTL item = %v, want ErrNotFound", err)
	}
}
