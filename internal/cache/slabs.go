package cache

import (
	"math/bits"
	"sort"
)

// SlabClass summarizes the items whose per-item cost falls into one
// power-of-two size class — the accounting view memcached exposes via
// "stats slabs"/"stats items". memqlat does not allocate from real
// slabs (Go's allocator does the pooling), but class-level accounting
// is what operators use to reason about eviction pressure per item
// size, so the view is preserved.
type SlabClass struct {
	// ChunkSize is the class upper bound in bytes (power of two).
	ChunkSize int64
	// Items is the number of live items in the class.
	Items int64
	// Bytes is the accounted cost of those items.
	Bytes int64
}

// classFor buckets a cost into its power-of-two class, minimum 64.
func classFor(cost int64) int64 {
	if cost <= 64 {
		return 64
	}
	return 1 << bits.Len64(uint64(cost-1))
}

// SlabClasses walks every shard and aggregates per-class item counts
// and byte totals, returned in ascending chunk-size order. The walk
// holds each shard lock briefly; counts are a consistent snapshot per
// shard but not across shards (same as memcached).
func (c *Cache) SlabClasses() []SlabClass {
	acc := make(map[int64]*SlabClass)
	for _, s := range c.shards {
		c.lock(s)
		for _, e := range s.items {
			cost := e.cost()
			cls := classFor(cost)
			sc, ok := acc[cls]
			if !ok {
				sc = &SlabClass{ChunkSize: cls}
				acc[cls] = sc
			}
			sc.Items++
			sc.Bytes += cost
		}
		s.mu.Unlock()
	}
	out := make([]SlabClass, 0, len(acc))
	for _, sc := range acc {
		out = append(out, *sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ChunkSize < out[j].ChunkSize })
	return out
}
