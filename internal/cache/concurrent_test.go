package cache

// Concurrent-correctness suite for the sharded store: mixed operations
// across shard boundaries under -race, torn-read detection on the
// byte-slice hot paths, per-shard LRU eviction determinism, and
// zero-allocation guarantees for GetInto.

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// shardKeys returns n distinct keys that all route to the shard of the
// given index, so a test can exercise one lock domain deliberately.
func shardKeys(t *testing.T, c *Cache, shard, n int) []string {
	t.Helper()
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("sk%06d", i)
		if c.ShardIndex([]byte(k)) == shard {
			keys = append(keys, k)
		}
		if i > 1_000_000 {
			t.Fatal("could not find enough same-shard keys")
		}
	}
	return keys
}

// TestConcurrentMixedOps hammers one cache with every mutating
// operation from many goroutines across shard boundaries. The
// assertions are deliberately weak (counters consistent, no lost
// structure); the real check is the race detector.
func TestConcurrentMixedOps(t *testing.T) {
	c, err := New(Options{MaxBytes: 8 << 20, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		keys    = 64
		rounds  = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]byte, 0, 64)
			for i := 0; i < rounds; i++ {
				k := fmt.Sprintf("k%02d", (w*13+i)%keys)
				kb := []byte(k)
				switch i % 6 {
				case 0:
					if err := c.Set(k, []byte("v-"+k), 0, 0); err != nil {
						t.Error(err)
					}
				case 1:
					_, _ = c.Get(k)
				case 2:
					if err := c.SetBytes(kb, []byte("b-"+k), 0, 0); err != nil {
						t.Error(err)
					}
				case 3:
					_, _, _, _ = c.GetInto(kb, dst[:0])
				case 4:
					_ = c.Delete(k)
				case 5:
					_ = c.Append(k, []byte("+"))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Gets != st.Hits+st.Misses {
		t.Errorf("gets=%d != hits=%d + misses=%d", st.Gets, st.Hits, st.Misses)
	}
	if got := c.Len(); got < 0 || got > keys {
		t.Errorf("Len() = %d, want 0..%d", got, keys)
	}
}

// TestConcurrentIncrAtomicity verifies incr is atomic across
// connections: N workers x M increments must land exactly N*M.
func TestConcurrentIncrAtomicity(t *testing.T) {
	c, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("ctr", []byte("0"), 0, 0); err != nil {
		t.Fatal(err)
	}
	const workers, incrs = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incrs; i++ {
				if _, err := c.IncrDecr("ctr", 1); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	it, err := c.Get("ctr")
	if err != nil {
		t.Fatal(err)
	}
	n, err := strconv.ParseUint(string(it.Value), 10, 64)
	if err != nil || n != workers*incrs {
		t.Errorf("counter = %q, want %d", it.Value, workers*incrs)
	}
}

// TestConcurrentGetIntoNoTornReads runs writers flipping a key between
// two same-length values while readers GetInto it: every read must
// observe one of the two values in full, never a mix, because the copy
// happens under the shard lock.
func TestConcurrentGetIntoNoTornReads(t *testing.T) {
	c, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte("a"), 128)
	b := bytes.Repeat([]byte("b"), 128)
	if err := c.SetBytes([]byte("flip"), a, 0, 0); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := a
			if i%2 == 1 {
				v = b
			}
			if err := c.SetBytes([]byte("flip"), v, 0, 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, 0, 128)
			for i := 0; i < 2000; i++ {
				v, _, _, err := c.GetInto([]byte("flip"), dst[:0])
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(v, a) && !bytes.Equal(v, b) {
					t.Errorf("torn read: %q", v)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestShardLRUEvictionDeterminism fills ONE shard past its byte budget
// twice with the identical operation sequence and checks both runs
// evict the identical (least-recently-used) keys — per-shard LRU must
// be deterministic, not dependent on global state or map order.
func TestShardLRUEvictionDeterminism(t *testing.T) {
	run := func() (survivors []string, evictions int64) {
		// Per-shard budget of 20 KiB holds nine ~2.1 KiB items; the
		// three late sets must push out exactly the three coldest.
		c, err := New(Options{MaxBytes: 80 << 10, Shards: 4, MaxItemSize: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		keys := shardKeys(t, c, 1, 12)
		value := bytes.Repeat([]byte("x"), 2048)
		for _, k := range keys[:9] {
			if err := c.Set(k, value, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		// Touch the first four so they become MRU before the refill
		// evicts from the tail.
		for _, k := range keys[:4] {
			if _, err := c.Get(k); err != nil {
				t.Fatalf("touch %s: %v", k, err)
			}
		}
		for _, k := range keys[9:] {
			if err := c.Set(k, value, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range keys {
			if _, err := c.Get(k); err == nil {
				survivors = append(survivors, k)
			}
		}
		return survivors, c.Stats().Evictions
	}
	s1, e1 := run()
	s2, e2 := run()
	if fmt.Sprint(s1) != fmt.Sprint(s2) || e1 != e2 {
		t.Errorf("eviction not deterministic:\nrun1: %v (%d evictions)\nrun2: %v (%d evictions)", s1, e1, s2, e2)
	}
	if e1 == 0 {
		t.Error("scenario evicted nothing; budget too large for the test to bite")
	}
	// The MRU-touched keys must be among the survivors: eviction comes
	// strictly from the cold tail of the shard's LRU list.
	alive := make(map[string]bool, len(s1))
	for _, k := range s1 {
		alive[k] = true
	}
	c, err := New(Options{MaxBytes: 80 << 10, Shards: 4, MaxItemSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range shardKeys(t, c, 1, 12)[:4] {
		if !alive[k] {
			t.Errorf("MRU-touched key %s was evicted; survivors: %v", k, s1)
		}
	}
}

// TestGetIntoZeroAlloc pins the hot read path's allocation guarantee:
// with a pre-sized destination, GetInto performs zero allocations.
func TestGetIntoZeroAlloc(t *testing.T) {
	c, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("hotkey")
	if err := c.SetBytes(key, bytes.Repeat([]byte("v"), 100), 0, 0); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(200, func() {
		v, _, _, err := c.GetInto(key, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		dst = v[:0]
	})
	if allocs != 0 {
		t.Errorf("GetInto allocates %v times per call, want 0", allocs)
	}
}
