package cache

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is a controllable time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func newTestCache(t *testing.T, opts Options) (*Cache, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	if opts.Clock == nil {
		opts.Clock = clk.Now
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, clk
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{MaxBytes: -1}); err == nil {
		t.Error("negative MaxBytes accepted")
	}
	if _, err := New(Options{Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	if _, err := New(Options{MaxItemSize: -1}); err == nil {
		t.Error("negative MaxItemSize accepted")
	}
	c, err := New(Options{})
	if err != nil || c == nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	if err := c.Set("k", []byte("v"), 42, 0); err != nil {
		t.Fatal(err)
	}
	it, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v" || it.Flags != 42 {
		t.Errorf("item = %+v", it)
	}
	if it.CAS == 0 {
		t.Error("zero CAS token")
	}
	if !it.Expires.IsZero() {
		t.Error("unexpected expiry")
	}
}

func TestGetMiss(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	if _, err := c.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Gets != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestKeyValidation(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	bad := []string{"", strings.Repeat("x", 251), "has space", "has\ttab", "has\nnl", "del\x7f"}
	for _, k := range bad {
		if err := c.Set(k, []byte("v"), 0, 0); !errors.Is(err, ErrKeyInvalid) {
			t.Errorf("key %q: err = %v", k, err)
		}
		if _, err := c.Get(k); !errors.Is(err, ErrKeyInvalid) {
			t.Errorf("get key %q: err = %v", k, err)
		}
	}
	// 250 bytes is legal.
	if err := c.Set(strings.Repeat("k", 250), []byte("v"), 0, 0); err != nil {
		t.Errorf("250-byte key rejected: %v", err)
	}
}

func TestValueSizeLimit(t *testing.T) {
	c, _ := newTestCache(t, Options{MaxItemSize: 10})
	if err := c.Set("k", make([]byte, 11), 0, 0); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("err = %v", err)
	}
	if err := c.Set("k", make([]byte, 10), 0, 0); err != nil {
		t.Errorf("at-limit value rejected: %v", err)
	}
}

func TestTTLExpiry(t *testing.T) {
	c, clk := newTestCache(t, Options{})
	if err := c.Set("k", []byte("v"), 0, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); err != nil {
		t.Fatalf("fresh item missing: %v", err)
	}
	clk.Advance(2 * time.Second)
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired item err = %v", err)
	}
	if got := c.Stats().Expirations; got != 1 {
		t.Errorf("expirations = %d", got)
	}
}

func TestTouchExtendsLife(t *testing.T) {
	c, clk := newTestCache(t, Options{})
	_ = c.Set("k", []byte("v"), 0, time.Second)
	if err := c.Touch("k", time.Hour); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if _, err := c.Get("k"); err != nil {
		t.Errorf("touched item gone: %v", err)
	}
	if err := c.Touch("absent", time.Hour); !errors.Is(err, ErrNotFound) {
		t.Errorf("touch absent err = %v", err)
	}
}

func TestAddReplaceSemantics(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	if err := c.Replace("k", []byte("v"), 0, 0); !errors.Is(err, ErrNotStored) {
		t.Errorf("replace absent: %v", err)
	}
	if err := c.Add("k", []byte("v1"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("k", []byte("v2"), 0, 0); !errors.Is(err, ErrNotStored) {
		t.Errorf("add existing: %v", err)
	}
	if err := c.Replace("k", []byte("v3"), 0, 0); err != nil {
		t.Fatal(err)
	}
	it, _ := c.Get("k")
	if string(it.Value) != "v3" {
		t.Errorf("value = %q", it.Value)
	}
}

func TestAppendPrepend(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	if err := c.Append("k", []byte("x")); !errors.Is(err, ErrNotStored) {
		t.Errorf("append absent: %v", err)
	}
	_ = c.Set("k", []byte("mid"), 7, 0)
	if err := c.Append("k", []byte("-end")); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepend("k", []byte("start-")); err != nil {
		t.Fatal(err)
	}
	it, _ := c.Get("k")
	if string(it.Value) != "start-mid-end" {
		t.Errorf("value = %q", it.Value)
	}
	if it.Flags != 7 {
		t.Errorf("flags not preserved: %d", it.Flags)
	}
}

func TestCompareAndSwap(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	_ = c.Set("k", []byte("v1"), 0, 0)
	it, _ := c.Get("k")
	if err := c.CompareAndSwap("k", []byte("v2"), 0, 0, it.CAS); err != nil {
		t.Fatal(err)
	}
	// Stale token now fails.
	if err := c.CompareAndSwap("k", []byte("v3"), 0, 0, it.CAS); !errors.Is(err, ErrExists) {
		t.Errorf("stale cas err = %v", err)
	}
	if err := c.CompareAndSwap("absent", []byte("v"), 0, 0, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("cas absent err = %v", err)
	}
	it2, _ := c.Get("k")
	if string(it2.Value) != "v2" {
		t.Errorf("value = %q", it2.Value)
	}
}

func TestDelete(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	_ = c.Set("k", []byte("v"), 0, 0)
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted key still present")
	}
}

func TestIncrDecr(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	_ = c.Set("n", []byte("10"), 0, 0)
	got, err := c.IncrDecr("n", 5)
	if err != nil || got != 15 {
		t.Fatalf("incr: %v %v", got, err)
	}
	got, err = c.IncrDecr("n", -20) // saturates at 0
	if err != nil || got != 0 {
		t.Fatalf("decr: %v %v", got, err)
	}
	_ = c.Set("s", []byte("abc"), 0, 0)
	if _, err := c.IncrDecr("s", 1); !errors.Is(err, ErrNotNumeric) {
		t.Errorf("non-numeric err = %v", err)
	}
	if _, err := c.IncrDecr("absent", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("absent err = %v", err)
	}
	it, _ := c.Get("n")
	if string(it.Value) != "0" {
		t.Errorf("stored value = %q", it.Value)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// One shard, budget for ~3 small items.
	c, _ := newTestCache(t, Options{Shards: 1, MaxBytes: 3 * (2 + 1 + itemOverhead), MaxItemSize: 100})
	_ = c.Set("k1", []byte("a"), 0, 0)
	_ = c.Set("k2", []byte("b"), 0, 0)
	_ = c.Set("k3", []byte("c"), 0, 0)
	// Touch k1 so k2 is LRU, then insert k4 -> k2 evicted.
	if _, err := c.Get("k1"); err != nil {
		t.Fatal(err)
	}
	_ = c.Set("k4", []byte("d"), 0, 0)
	if _, err := c.Get("k2"); !errors.Is(err, ErrNotFound) {
		t.Error("LRU victim k2 survived")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, err := c.Get(k); err != nil {
			t.Errorf("%s evicted unexpectedly: %v", k, err)
		}
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("evictions = %d", got)
	}
}

func TestEvictionRespectsBudget(t *testing.T) {
	c, _ := newTestCache(t, Options{Shards: 1, MaxBytes: 1000, MaxItemSize: 100})
	for i := 0; i < 100; i++ {
		_ = c.Set(fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte("x"), 50), 0, 0)
	}
	if got := c.Bytes(); got > 1000+100+itemOverhead {
		t.Errorf("bytes = %d exceeds budget", got)
	}
	if c.Len() == 0 {
		t.Error("everything evicted")
	}
}

func TestFlushAll(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	for i := 0; i < 10; i++ {
		_ = c.Set(fmt.Sprintf("k%d", i), []byte("v"), 0, 0)
	}
	c.FlushAll()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("len=%d bytes=%d after flush", c.Len(), c.Bytes())
	}
	if _, err := c.Get("k0"); !errors.Is(err, ErrNotFound) {
		t.Error("item survived flush")
	}
}

func TestStatsCounters(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	_ = c.Set("a", []byte("1"), 0, 0)
	_, _ = c.Get("a")
	_, _ = c.Get("b")
	_ = c.Delete("a")
	st := c.Stats()
	if st.Sets != 1 || st.Gets != 2 || st.Hits != 1 || st.Misses != 1 || st.Deletes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Errorf("hit ratio = %v", got)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty hit ratio != 0")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	_ = c.Set("k", []byte("abc"), 0, 0)
	it, _ := c.Get("k")
	it.Value[0] = 'X'
	it2, _ := c.Get("k")
	if string(it2.Value) != "abc" {
		t.Error("Get exposed internal buffer")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := newTestCache(t, Options{Shards: 8, MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("w%d-%d", w, i%50)
				_ = c.Set(k, []byte("v"), 0, 0)
				_, _ = c.Get(k)
				if i%10 == 0 {
					_ = c.Delete(k)
				}
				if i%25 == 0 {
					_, _ = c.IncrDecr("ctr", 1)
				}
			}
		}()
	}
	wg.Wait()
}

// Property: after Set(k, v), Get(k) returns v (until expiry/eviction
// pressure, absent here).
func TestPropertyGetAfterSet(t *testing.T) {
	c, _ := newTestCache(t, Options{MaxBytes: 64 << 20})
	f := func(rawKey []byte, value []byte) bool {
		key := sanitizeKey(rawKey)
		if key == "" {
			return true
		}
		if err := c.Set(key, value, 3, 0); err != nil {
			return false
		}
		it, err := c.Get(key)
		if err != nil {
			return false
		}
		return bytes.Equal(it.Value, value) && it.Flags == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Len() and Bytes() never go negative and bytes stay within
// budget plus one item of slack.
func TestPropertyAccountingInvariants(t *testing.T) {
	c, _ := newTestCache(t, Options{Shards: 2, MaxBytes: 4096, MaxItemSize: 256})
	f := func(ops []uint8) bool {
		for i, op := range ops {
			key := fmt.Sprintf("k%d", int(op)%17)
			switch op % 4 {
			case 0:
				_ = c.Set(key, bytes.Repeat([]byte("v"), int(op)%200), 0, 0)
			case 1:
				_, _ = c.Get(key)
			case 2:
				_ = c.Delete(key)
			case 3:
				_ = c.Set(key, []byte{byte(i)}, 0, 0)
			}
			if c.Len() < 0 || c.Bytes() < 0 {
				return false
			}
		}
		// Per-shard budget is MaxBytes/shards but never below one item;
		// 2 shards * (256+64) slack.
		return c.Bytes() <= 4096+2*(256+itemOverhead)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sanitizeKey(raw []byte) string {
	var b strings.Builder
	for _, ch := range raw {
		if ch > ' ' && ch != 0x7f && b.Len() < MaxKeyLen {
			b.WriteByte(ch)
		}
	}
	return b.String()
}

func TestShardStatsAndLockWaitCounters(t *testing.T) {
	c, err := New(Options{Shards: 4, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := c.Set(key, []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	ss := c.ShardStats()
	if len(ss) != c.Shards() {
		t.Fatalf("ShardStats has %d entries, want %d", len(ss), c.Shards())
	}
	var items, bytes int64
	for i, s := range ss {
		if s.MaxBytes <= 0 {
			t.Errorf("shard %d MaxBytes = %d", i, s.MaxBytes)
		}
		items += s.Items
		bytes += s.Bytes
	}
	if items != c.Len() {
		t.Errorf("shard items sum %d != Len %d", items, c.Len())
	}
	if bytes != c.Bytes() {
		t.Errorf("shard bytes sum %d != Bytes %d", bytes, c.Bytes())
	}
	// Contend one shard hard enough that at least one TryLock misses.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				_, _ = c.Get("key-1")
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.LockWaits < 0 || st.LockWaitSeconds < 0 {
		t.Errorf("negative lock-wait counters: %+v", st)
	}
	if st.LockWaits > 0 && st.LockWaitSeconds <= 0 {
		t.Errorf("lock waits counted (%d) but no blocked time", st.LockWaits)
	}
}
