package cache

import (
	"fmt"
	"testing"
	"time"
)

func TestReaperValidation(t *testing.T) {
	c, _ := newTestCache(t, Options{})
	if _, err := NewReaper(nil, time.Second, 10); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := NewReaper(c, 0, 10); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewReaper(c, time.Second, 0); err == nil {
		t.Error("zero sample accepted")
	}
}

func TestReapExpiredRemovesDeadItems(t *testing.T) {
	c, clk := newTestCache(t, Options{Shards: 2})
	for i := 0; i < 20; i++ {
		_ = c.Set(fmt.Sprintf("dead-%d", i), []byte("v"), 0, time.Second)
	}
	for i := 0; i < 20; i++ {
		_ = c.Set(fmt.Sprintf("live-%d", i), []byte("v"), 0, time.Hour)
	}
	clk.Advance(2 * time.Second)
	// Several passes with a large sample reap everything expired.
	total := 0
	for i := 0; i < 5; i++ {
		total += c.ReapExpired(100)
	}
	if total != 20 {
		t.Errorf("reaped %d, want 20", total)
	}
	if got := c.Len(); got != 20 {
		t.Errorf("len = %d, want 20 live items", got)
	}
	if got := c.Stats().Expirations; got != 20 {
		t.Errorf("expirations = %d", got)
	}
	if c.ReapExpired(0) != 0 {
		t.Error("zero sample should be a no-op")
	}
}

func TestReapExpiredBoundedWork(t *testing.T) {
	c, clk := newTestCache(t, Options{Shards: 1})
	for i := 0; i < 100; i++ {
		_ = c.Set(fmt.Sprintf("k-%d", i), []byte("v"), 0, time.Second)
	}
	clk.Advance(2 * time.Second)
	// One pass with sample 10 examines at most 10 items in the shard.
	if got := c.ReapExpired(10); got > 10 {
		t.Errorf("one bounded pass reaped %d > 10", got)
	}
}

func TestReaperBackgroundLoop(t *testing.T) {
	clk := newFakeClock()
	c, err := New(Options{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_ = c.Set(fmt.Sprintf("k-%d", i), []byte("v"), 0, time.Second)
	}
	clk.Advance(2 * time.Second)
	r, err := NewReaper(c, time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	deadline := time.Now().Add(2 * time.Second)
	for c.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	if got := c.Len(); got != 0 {
		t.Errorf("len = %d after reaping", got)
	}
}

func TestSlabClasses(t *testing.T) {
	c, _ := newTestCache(t, Options{MaxBytes: 16 << 20, MaxItemSize: 1 << 20})
	// Tiny items (cost ~70B -> class 128) and big items (cost ~4KiB+).
	for i := 0; i < 5; i++ {
		_ = c.Set(fmt.Sprintf("small-%d", i), []byte("v"), 0, 0)
	}
	big := make([]byte, 4000)
	for i := 0; i < 3; i++ {
		_ = c.Set(fmt.Sprintf("big-%d", i), big, 0, 0)
	}
	classes := c.SlabClasses()
	if len(classes) < 2 {
		t.Fatalf("classes = %d, want >= 2", len(classes))
	}
	var totalItems, totalBytes int64
	for i, sc := range classes {
		if i > 0 && sc.ChunkSize <= classes[i-1].ChunkSize {
			t.Error("classes not sorted ascending")
		}
		if sc.ChunkSize&(sc.ChunkSize-1) != 0 {
			t.Errorf("chunk size %d not a power of two", sc.ChunkSize)
		}
		totalItems += sc.Items
		totalBytes += sc.Bytes
	}
	if totalItems != 8 {
		t.Errorf("total items = %d", totalItems)
	}
	if totalBytes != c.Bytes() {
		t.Errorf("class bytes %d != cache bytes %d", totalBytes, c.Bytes())
	}
}

func TestClassFor(t *testing.T) {
	tests := []struct {
		give int64
		want int64
	}{
		{1, 64}, {64, 64}, {65, 128}, {128, 128}, {129, 256}, {4096, 4096}, {4097, 8192},
	}
	for _, tt := range tests {
		if got := classFor(tt.give); got != tt.want {
			t.Errorf("classFor(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestGetAndTouch(t *testing.T) {
	c, clk := newTestCache(t, Options{})
	_ = c.Set("k", []byte("v"), 9, time.Second)
	it, err := c.GetAndTouch("k", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v" || it.Flags != 9 {
		t.Errorf("item = %+v", it)
	}
	clk.Advance(10 * time.Second) // would have expired without the touch
	if _, err := c.Get("k"); err != nil {
		t.Errorf("gat did not extend life: %v", err)
	}
	if _, err := c.GetAndTouch("absent", time.Hour); err != ErrNotFound {
		t.Errorf("gat absent: %v", err)
	}
	if _, err := c.GetAndTouch("", time.Hour); err != ErrKeyInvalid {
		t.Errorf("gat invalid key: %v", err)
	}
}
