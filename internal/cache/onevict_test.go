package cache

import (
	"fmt"
	"testing"
	"time"
)

// evictRecord captures one OnEvict callback invocation.
type evictRecord struct {
	key     string
	value   string
	flags   uint32
	expires time.Time
}

// TestOnEvict is the victim-hook table test: which entries reach the
// observer (live LRU victims), which never do (expired reaping,
// deletes, overwrites, flushes), and that removing the hook silences
// it again.
func TestOnEvict(t *testing.T) {
	// One shard with room for ~2 small items, so the third store
	// displaces the LRU tail deterministically.
	budget := int64(2 * (8 + 8 + itemOverhead))
	val := func(s string) []byte { return []byte(s) }

	cases := []struct {
		name string
		run  func(c *Cache, clk *fakeClock)
		want []evictRecord
	}{
		{
			name: "lru displacement reports the victim",
			run: func(c *Cache, _ *fakeClock) {
				c.Set("key-0000", val("value-00"), 7, 0)
				c.Set("key-0001", val("value-01"), 0, 0)
				c.Set("key-0002", val("value-02"), 0, 0) // evicts key-0000
			},
			want: []evictRecord{{key: "key-0000", value: "value-00", flags: 7}},
		},
		{
			name: "expired victims are reaped, not reported",
			run: func(c *Cache, clk *fakeClock) {
				c.Set("key-0000", val("value-00"), 0, time.Minute)
				c.Set("key-0001", val("value-01"), 0, 0)
				clk.Advance(2 * time.Minute)
				c.Set("key-0002", val("value-02"), 0, 0) // key-0000 is dead weight
			},
			want: nil,
		},
		{
			name: "delete and overwrite are not evictions",
			run: func(c *Cache, _ *fakeClock) {
				c.Set("key-0000", val("value-00"), 0, 0)
				c.Set("key-0000", val("value-XX"), 0, 0)
				c.Delete("key-0000")
			},
			want: nil,
		},
		{
			name: "flush drops everything silently",
			run: func(c *Cache, _ *fakeClock) {
				c.Set("key-0000", val("value-00"), 0, 0)
				c.Set("key-0001", val("value-01"), 0, 0)
				c.FlushAll()
			},
			want: nil,
		},
		{
			name: "victim expiry deadline is passed through",
			run: func(c *Cache, clk *fakeClock) {
				c.Set("key-0000", val("value-00"), 0, time.Hour)
				c.Set("key-0001", val("value-01"), 0, 0)
				c.Set("key-0002", val("value-02"), 0, 0)
			},
			want: []evictRecord{{
				key: "key-0000", value: "value-00",
				expires: time.Unix(1_700_000_000, 0).Add(time.Hour),
			}},
		},
		{
			name: "cascading evictions report every victim in LRU order",
			run: func(c *Cache, _ *fakeClock) {
				c.Set("key-0000", val("value-00"), 0, 0)
				c.Set("key-0001", val("value-01"), 0, 0)
				// A value sized near the whole budget displaces both.
				big := make([]byte, int(budget)-len("key-0002")-itemOverhead)
				c.Set("key-0002", big, 0, 0)
			},
			want: []evictRecord{
				{key: "key-0000", value: "value-00"},
				{key: "key-0001", value: "value-01"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, clk := newTestCache(t, Options{MaxBytes: budget, Shards: 1, MaxItemSize: 128})
			var got []evictRecord
			c.OnEvict(func(key string, value []byte, flags uint32, expires time.Time) {
				got = append(got, evictRecord{
					key:     key,
					value:   string(value), // copy: the slice dies with the entry
					flags:   flags,
					expires: expires,
				})
			})
			tc.run(c, clk)
			if len(got) != len(tc.want) {
				t.Fatalf("observed %d evictions %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i].key != tc.want[i].key || got[i].value != tc.want[i].value ||
					got[i].flags != tc.want[i].flags || !got[i].expires.Equal(tc.want[i].expires) {
					t.Fatalf("eviction %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestOnEvictRemoval: a nil hook restores silence and costs nothing.
func TestOnEvictRemoval(t *testing.T) {
	budget := int64(2 * (8 + 8 + itemOverhead))
	c, _ := newTestCache(t, Options{MaxBytes: budget, Shards: 1, MaxItemSize: 128})
	calls := 0
	c.OnEvict(func(string, []byte, uint32, time.Time) { calls++ })
	c.Set("key-0000", []byte("value-00"), 0, 0)
	c.Set("key-0001", []byte("value-01"), 0, 0)
	c.Set("key-0002", []byte("value-02"), 0, 0)
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	c.OnEvict(nil)
	for i := 3; i < 10; i++ {
		c.Set(fmt.Sprintf("key-%04d", i), []byte("value-zz"), 0, 0)
	}
	if calls != 1 {
		t.Fatalf("calls after removal = %d, want still 1", calls)
	}
	if c.Stats().Evictions < 8 {
		t.Fatalf("evictions = %d, want the churn to have kept evicting", c.Stats().Evictions)
	}
}
